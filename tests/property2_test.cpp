// Second property suite: invariants of the extension subsystems —
// compression, quantile sketches, the async engine, stratified coverage,
// and the gradient sketch's distance preservation.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <numeric>
#include <set>

#include "src/core/gradient_selector.hpp"
#include "src/core/haccs_system.hpp"
#include "src/core/stratified_selector.hpp"
#include "src/fl/async_engine.hpp"
#include "src/fl/compression.hpp"
#include "src/select/random_selector.hpp"
#include "src/stats/summary.hpp"

namespace haccs {
namespace {

// ---- Compression properties --------------------------------------------

class CompressionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompressionProperty, SignalConservationWithErrorFeedback) {
  // signal = compressed + residual, exactly, every round, for both
  // compressors (the defining algebra of error feedback).
  Rng rng(GetParam());
  const std::size_t n = 32 + rng.uniform_index(200);
  for (auto kind : {fl::CompressionKind::TopK, fl::CompressionKind::Int8}) {
    fl::CompressionConfig cfg;
    cfg.kind = kind;
    cfg.topk_fraction = 0.25;
    std::vector<float> residual;
    std::vector<float> prev_residual;
    for (int round = 0; round < 4; ++round) {
      std::vector<float> update(n);
      for (auto& v : update) v = static_cast<float>(rng.normal());
      prev_residual = residual;
      if (prev_residual.empty()) prev_residual.assign(n, 0.0f);
      const auto out = fl::compress_update(update, cfg, residual);
      for (std::size_t i = 0; i < n; ++i) {
        const float signal = update[i] + prev_residual[i];
        EXPECT_NEAR(out.dense[i] + residual[i], signal, 1e-4f)
            << "kind " << static_cast<int>(kind) << " idx " << i;
      }
    }
  }
}

TEST_P(CompressionProperty, TopKWireBytesShrinkWithFraction) {
  Rng rng(GetParam() ^ 0x77);
  const std::size_t n = 100 + rng.uniform_index(10000);
  fl::CompressionConfig small, large;
  small.kind = large.kind = fl::CompressionKind::TopK;
  small.topk_fraction = 0.05;
  // Each kept coordinate ships 8 bytes vs 4 dense, so only fractions below
  // 0.5 beat the dense encoding.
  large.topk_fraction = 0.4;
  EXPECT_LT(fl::compressed_wire_bytes(n, small),
            fl::compressed_wire_bytes(n, large));
  EXPECT_LT(fl::compressed_wire_bytes(n, large), fl::dense_wire_bytes(n));
  fl::CompressionConfig q8;
  q8.kind = fl::CompressionKind::Int8;
  EXPECT_LT(fl::compressed_wire_bytes(n, q8), fl::dense_wire_bytes(n));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressionProperty,
                         ::testing::Range<std::uint64_t>(500, 510));

// ---- Quantile sketch properties -----------------------------------------

class QuantileProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuantileProperty, SketchIsMonotoneAndDistanceIsMetricLike) {
  Rng rng(GetParam());
  const std::size_t classes = 2 + rng.uniform_index(6);
  stats::QuantileSummaryConfig cfg;
  cfg.num_quantiles = 3 + rng.uniform_index(12);

  auto random_dataset = [&](std::uint64_t seed) {
    Rng local(seed);
    data::Dataset ds({3}, classes);
    const std::size_t samples = 20 + local.uniform_index(60);
    for (std::size_t i = 0; i < samples; ++i) {
      std::vector<float> v(3);
      for (auto& x : v) x = static_cast<float>(local.normal(0.0, 1.5));
      ds.add(v, static_cast<std::int64_t>(local.uniform_index(classes)));
    }
    return ds;
  };
  const auto a = stats::summarize_quantiles(random_dataset(GetParam() * 3), cfg);
  const auto b = stats::summarize_quantiles(random_dataset(GetParam() * 5), cfg);
  const auto c = stats::summarize_quantiles(random_dataset(GetParam() * 7), cfg);

  for (const auto& qs : a.per_label) {
    for (std::size_t q = 1; q < qs.size(); ++q) {
      EXPECT_LE(qs[q - 1], qs[q]);
    }
  }
  const double dab = stats::quantile_distance(a, b, cfg);
  const double dba = stats::quantile_distance(b, a, cfg);
  const double daa = stats::quantile_distance(a, a, cfg);
  const double dac = stats::quantile_distance(a, c, cfg);
  const double dbc = stats::quantile_distance(b, c, cfg);
  EXPECT_DOUBLE_EQ(dab, dba);
  EXPECT_NEAR(daa, 0.0, 1e-12);
  EXPECT_GE(dab, 0.0);
  EXPECT_LE(dab, 1.0);
  // Weak triangle (the mass-weighted mean is not a strict metric, but the
  // relaxed inequality with slack holds across random instances).
  EXPECT_LE(dab, dac + dbc + 0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileProperty,
                         ::testing::Range<std::uint64_t>(600, 612));

// ---- Gradient sketch preserves relative similarity -----------------------

class SketchProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SketchProperty, SimilarUpdatesStaySimilarUnderProjection) {
  Rng rng(GetParam());
  core::GradientSelectorConfig cfg;
  cfg.sketch_dim = 64;
  core::GradientClusterSelector selector(cfg);
  std::vector<fl::ClientRuntimeInfo> view(3);
  for (std::size_t i = 0; i < 3; ++i) view[i].id = i;
  selector.initialize(view);

  const std::size_t dim = 500;
  std::vector<float> base(dim), near(dim), far(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    base[i] = static_cast<float>(rng.normal());
    near[i] = base[i] + static_cast<float>(rng.normal(0.0, 0.05));
    far[i] = static_cast<float>(rng.normal());
  }
  selector.report_update(0, base, 0);
  selector.report_update(1, near, 0);
  selector.report_update(2, far, 0);

  auto cosine = [&](std::span<const float> a, std::span<const float> b) {
    double dot = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) dot += a[i] * b[i];
    return dot;  // sketches are unit-norm
  };
  const double sim_near = cosine(selector.sketch(0), selector.sketch(1));
  const double sim_far = cosine(selector.sketch(0), selector.sketch(2));
  EXPECT_GT(sim_near, 0.9);
  EXPECT_GT(sim_near, sim_far + 0.3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SketchProperty,
                         ::testing::Range<std::uint64_t>(700, 710));

// ---- Async engine invariants across configurations -----------------------

class AsyncProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(AsyncProperty, InvariantsHoldAcrossBufferAndConcurrency) {
  const auto [max_in_flight, buffer_size] = GetParam();
  data::SyntheticImageConfig gcfg;
  gcfg.classes = 4;
  gcfg.height = 6;
  gcfg.width = 6;
  data::SyntheticImageGenerator gen(gcfg);
  data::PartitionConfig pcfg;
  pcfg.num_clients = 8;
  pcfg.min_samples = 20;
  pcfg.max_samples = 30;
  pcfg.test_samples = 8;
  Rng rng(3);
  const auto fed = data::partition_majority_label(gen, pcfg, rng);

  fl::AsyncEngineConfig cfg;
  cfg.aggregations = 10;
  cfg.max_in_flight = max_in_flight;
  cfg.buffer_size = buffer_size;
  cfg.eval_every = 5;
  cfg.local.sgd.learning_rate = 0.05;
  fl::AsyncFederatedTrainer trainer(fed, core::default_model_factory(fed, 99),
                                    cfg);
  select::RandomSelector selector;
  const auto history = trainer.run(selector);

  ASSERT_EQ(history.records().size(), 10u);
  double prev = 0.0;
  for (const auto& r : history.records()) {
    EXPECT_GE(r.sim_time_s, prev);  // event time is monotone
    prev = r.sim_time_s;
    EXPECT_EQ(r.selected.size(), buffer_size);
    // A client's update is consumed at most once per aggregation.
    std::set<std::size_t> unique(r.selected.begin(), r.selected.end());
    EXPECT_EQ(unique.size(), r.selected.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, AsyncProperty,
    ::testing::Values(std::make_tuple(2u, 1u), std::make_tuple(4u, 2u),
                      std::make_tuple(4u, 4u), std::make_tuple(8u, 3u),
                      std::make_tuple(8u, 8u)));

// ---- Stratified coverage across cluster shapes ----------------------------

class StratifiedProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StratifiedProperty, CoverageIsUniformOverEpochs) {
  Rng rng(GetParam());
  const std::size_t n = 6 + rng.uniform_index(14);
  std::vector<int> labels(n);
  for (auto& l : labels) l = static_cast<int>(rng.uniform_index(4));
  core::StratifiedSelector selector(labels);

  std::vector<fl::ClientRuntimeInfo> view(n);
  for (std::size_t i = 0; i < n; ++i) {
    view[i].id = i;
    view[i].latency_s = rng.uniform(0.5, 5.0);
    view[i].num_samples = 10;
    view[i].last_loss = 1.0;
    view[i].available = true;
  }
  const std::size_t k = 1 + rng.uniform_index(n);
  std::vector<std::size_t> counts(n, 0);
  const std::size_t epochs = 6 * n;
  Rng sel_rng(GetParam() ^ 0xf00);
  for (std::size_t e = 0; e < epochs; ++e) {
    for (std::size_t id : selector.select(k, view, e, sel_rng)) ++counts[id];
  }
  // Everyone participates, and WITHIN each cluster the rotating cursor
  // keeps participation near-uniform. (Across clusters expected counts
  // differ: stratified coverage is per-cluster fair, so a singleton gets
  // one slot per pass while an m-member cluster splits its slots m ways.)
  for (std::size_t c : counts) EXPECT_GT(c, 0u);
  std::map<int, std::pair<std::size_t, std::size_t>> by_cluster;  // min,max
  for (std::size_t i = 0; i < n; ++i) {
    auto [it, inserted] = by_cluster.try_emplace(
        labels[i], std::make_pair(counts[i], counts[i]));
    if (!inserted) {
      it->second.first = std::min(it->second.first, counts[i]);
      it->second.second = std::max(it->second.second, counts[i]);
    }
  }
  for (const auto& [cluster, mm] : by_cluster) {
    EXPECT_LE(mm.second, mm.first + epochs / n + 2)
        << "cluster " << cluster;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StratifiedProperty,
                         ::testing::Range<std::uint64_t>(800, 810));

}  // namespace
}  // namespace haccs
