// Tests for src/data: dataset container, the synthetic generator (class
// separability, determinism, rotation), and all partitioners (mixture
// proportions, Table I encoding, ground-truth groups).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "src/data/dataset.hpp"
#include "src/data/partition.hpp"
#include "src/data/synthetic.hpp"

namespace haccs::data {
namespace {

TEST(Dataset, AddAndRetrieve) {
  Dataset ds({2, 2}, 3);
  const std::vector<float> sample = {1, 2, 3, 4};
  ds.add(sample, 2);
  EXPECT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds.label(0), 2);
  EXPECT_EQ(ds.features(0)[3], 4.0f);
}

TEST(Dataset, RejectsBadInput) {
  Dataset ds({2}, 2);
  const std::vector<float> wrong_size = {1, 2, 3};
  const std::vector<float> ok = {1, 2};
  EXPECT_THROW(ds.add(wrong_size, 0), std::invalid_argument);
  EXPECT_THROW(ds.add(ok, 2), std::invalid_argument);   // label out of range
  EXPECT_THROW(ds.add(ok, -1), std::invalid_argument);
  EXPECT_THROW(Dataset({0}, 2), std::invalid_argument);
  EXPECT_THROW(Dataset({2}, 0), std::invalid_argument);
}

TEST(Dataset, BatchAssembly) {
  Dataset ds({2}, 2);
  ds.add(std::vector<float>{1, 2}, 0);
  ds.add(std::vector<float>{3, 4}, 1);
  ds.add(std::vector<float>{5, 6}, 0);
  const std::vector<std::size_t> idx = {2, 0};
  const Tensor batch = ds.batch_features(idx);
  EXPECT_EQ(batch.shape(), (std::vector<std::size_t>{2, 2}));
  EXPECT_FLOAT_EQ(batch.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(batch.at(1, 1), 2.0f);
  EXPECT_EQ(ds.batch_labels(idx), (std::vector<std::int64_t>{0, 0}));
}

TEST(Dataset, LabelCounts) {
  Dataset ds({1}, 3);
  const std::vector<float> v = {0.0f};
  ds.add(v, 0);
  ds.add(v, 2);
  ds.add(v, 2);
  const auto counts = ds.label_counts();
  EXPECT_DOUBLE_EQ(counts[0], 1.0);
  EXPECT_DOUBLE_EQ(counts[1], 0.0);
  EXPECT_DOUBLE_EQ(counts[2], 2.0);
}

TEST(Dataset, AppendMovesSamples) {
  Dataset a({1}, 2), b({1}, 2);
  const std::vector<float> v = {1.0f};
  a.add(v, 0);
  b.add(v, 1);
  a.append(std::move(b));
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.label(1), 1);
}

TEST(SyntheticGenerator, DeterministicPrototypes) {
  SyntheticImageGenerator g1(SyntheticImageConfig::mnist_like());
  SyntheticImageGenerator g2(SyntheticImageConfig::mnist_like());
  for (std::int64_t c = 0; c < 10; ++c) {
    const auto p1 = g1.prototype(c);
    const auto p2 = g2.prototype(c);
    for (std::size_t i = 0; i < p1.size(); ++i) EXPECT_EQ(p1[i], p2[i]);
  }
}

TEST(SyntheticGenerator, PrototypesDifferAcrossClasses) {
  SyntheticImageGenerator gen(SyntheticImageConfig::mnist_like());
  const auto a = gen.prototype(0);
  const auto b = gen.prototype(1);
  double diff = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff += std::abs(a[i] - b[i]);
  }
  EXPECT_GT(diff / static_cast<double>(a.size()), 0.1);
}

TEST(SyntheticGenerator, SampleIsNoisyPrototype) {
  SyntheticImageConfig cfg;
  cfg.max_shift = 0;  // isolate the noise term
  SyntheticImageGenerator gen(cfg);
  Rng rng(5);
  std::vector<float> sample(gen.sample_size());
  gen.generate(3, rng, sample);
  const auto proto = gen.prototype(3);
  double mse = 0.0;
  for (std::size_t i = 0; i < sample.size(); ++i) {
    const double d = sample[i] - proto[i];
    mse += d * d;
  }
  mse /= static_cast<double>(sample.size());
  EXPECT_NEAR(mse, cfg.noise_stddev * cfg.noise_stddev, 0.05);
}

TEST(SyntheticGenerator, CifarLikeShape) {
  SyntheticImageGenerator gen(SyntheticImageConfig::cifar_like());
  EXPECT_EQ(gen.sample_shape(), (std::vector<std::size_t>{3, 32, 32}));
  EXPECT_EQ(gen.sample_size(), 3u * 32 * 32);
}

TEST(SyntheticGenerator, FemnistClassBounds) {
  EXPECT_NO_THROW(SyntheticImageConfig::femnist_like(62));
  EXPECT_THROW(SyntheticImageConfig::femnist_like(63), std::invalid_argument);
  EXPECT_THROW(SyntheticImageConfig::femnist_like(0), std::invalid_argument);
}

TEST(SyntheticGenerator, FillAddsCountSamples) {
  SyntheticImageGenerator gen(SyntheticImageConfig::mnist_like());
  Dataset ds(gen.sample_shape(), 10);
  Rng rng(7);
  gen.fill(ds, 4, 25, rng);
  EXPECT_EQ(ds.size(), 25u);
  for (std::size_t i = 0; i < ds.size(); ++i) EXPECT_EQ(ds.label(i), 4);
}

TEST(RotateImage, ZeroDegreesIsIdentity) {
  const std::size_t h = 8, w = 8;
  std::vector<float> img(h * w), out(h * w);
  Rng rng(9);
  for (auto& v : img) v = static_cast<float>(rng.normal());
  rotate_image(img, out, 1, h, w, 0.0);
  for (std::size_t i = 0; i < img.size(); ++i) EXPECT_NEAR(out[i], img[i], 1e-5);
}

TEST(RotateImage, FourQuarterTurnsRoundTrip) {
  const std::size_t h = 9, w = 9;  // odd size: exact center pixel
  std::vector<float> img(h * w, 0.0f);
  img[1 * w + 4] = 1.0f;  // a single bright pixel above center
  std::vector<float> current = img, next(h * w);
  for (int i = 0; i < 4; ++i) {
    rotate_image(current, next, 1, h, w, 90.0);
    current = next;
  }
  for (std::size_t i = 0; i < img.size(); ++i) {
    EXPECT_NEAR(current[i], img[i], 1e-4);
  }
}

TEST(RotateImage, FortyFiveDegreesChangesImage) {
  SyntheticImageGenerator gen(SyntheticImageConfig::mnist_like());
  const auto proto = gen.prototype(0);
  std::vector<float> rotated(proto.size());
  rotate_image(proto, rotated, 1, 28, 28, 45.0);
  double diff = 0.0;
  for (std::size_t i = 0; i < proto.size(); ++i) {
    diff += std::abs(rotated[i] - proto[i]);
  }
  EXPECT_GT(diff / static_cast<double>(proto.size()), 0.05);
}

// ---- Partitioners ----

SyntheticImageGenerator small_gen() {
  SyntheticImageConfig cfg;
  cfg.height = 8;
  cfg.width = 8;
  return SyntheticImageGenerator(cfg);
}

TEST(Partition, MajorityLabelProportions) {
  auto gen = small_gen();
  PartitionConfig cfg;
  cfg.num_clients = 20;
  cfg.min_samples = 400;
  cfg.max_samples = 400;
  cfg.test_samples = 10;
  Rng rng(11);
  const auto fed = partition_majority_label(gen, cfg, rng);
  ASSERT_EQ(fed.num_clients(), 20u);
  for (std::size_t i = 0; i < fed.num_clients(); ++i) {
    const auto& mix = fed.true_label_distribution[i];
    // Round-robin majority label with 75% share.
    EXPECT_DOUBLE_EQ(mix[i % 10], 0.75);
    // Exactly four labels with nonzero probability, summing to 1.
    int nonzero = 0;
    double total = 0.0;
    for (double p : mix) {
      if (p > 0.0) ++nonzero;
      total += p;
    }
    EXPECT_EQ(nonzero, 4);
    EXPECT_NEAR(total, 1.0, 1e-9);
    // Empirical majority share close to 75%.
    const auto counts = fed.clients[i].train.label_counts();
    EXPECT_NEAR(counts[i % 10] / 400.0, 0.75, 0.08);
  }
}

TEST(Partition, MajorityLabelVariesDataAmount) {
  auto gen = small_gen();
  PartitionConfig cfg;
  cfg.num_clients = 30;
  cfg.min_samples = 50;
  cfg.max_samples = 150;
  cfg.test_samples = 5;
  Rng rng(13);
  const auto fed = partition_majority_label(gen, cfg, rng);
  std::set<std::size_t> sizes;
  for (const auto& c : fed.clients) {
    EXPECT_GE(c.train.size(), 50u);
    EXPECT_LE(c.train.size(), 150u);
    sizes.insert(c.train.size());
    EXPECT_EQ(c.test.size(), 5u);
  }
  EXPECT_GT(sizes.size(), 3u);  // "the amount of data varies"
}

TEST(Partition, GroupTableMatchesPaper) {
  const auto table = group_partition_table();
  EXPECT_EQ(table[0][0], 6);
  EXPECT_EQ(table[0][1], 7);
  EXPECT_EQ(table[4][0], 0);
  EXPECT_EQ(table[4][1], 4);
  EXPECT_EQ(table[9][0], 1);
  EXPECT_EQ(table[9][1], 3);
}

TEST(Partition, GroupTablePartitionStructure) {
  auto gen = small_gen();
  PartitionConfig cfg;
  cfg.num_clients = 100;
  cfg.min_samples = 60;
  cfg.max_samples = 60;
  cfg.test_samples = 10;
  Rng rng(17);
  const auto fed = partition_group_table(gen, cfg, rng);
  ASSERT_EQ(fed.num_clients(), 100u);
  const auto table = group_partition_table();
  for (std::size_t i = 0; i < 100; ++i) {
    const std::size_t group = i / 10;
    EXPECT_EQ(fed.true_group[i], static_cast<int>(group));
    // Clients only hold the two classes of their group.
    const auto counts = fed.clients[i].train.label_counts();
    for (std::size_t c = 0; c < 10; ++c) {
      const bool in_group = static_cast<int>(c) == table[group][0] ||
                            static_cast<int>(c) == table[group][1];
      if (!in_group) EXPECT_DOUBLE_EQ(counts[c], 0.0) << "client " << i;
    }
  }
}

TEST(Partition, GroupTableRejectsBadClientCount) {
  auto gen = small_gen();
  PartitionConfig cfg;
  cfg.num_clients = 55;
  Rng rng(1);
  EXPECT_THROW(partition_group_table(gen, cfg, rng), std::invalid_argument);
}

TEST(Partition, IidAllLabelsEverywhere) {
  auto gen = small_gen();
  PartitionConfig cfg;
  cfg.num_clients = 8;
  cfg.min_samples = 500;
  cfg.max_samples = 500;
  cfg.test_samples = 10;
  Rng rng(19);
  const auto fed = partition_iid(gen, cfg, rng);
  // All clients share one ground-truth group and equal sizes.
  for (std::size_t i = 0; i < fed.num_clients(); ++i) {
    EXPECT_EQ(fed.true_group[i], 0);
    EXPECT_EQ(fed.clients[i].train.size(), 500u);
    const auto counts = fed.clients[i].train.label_counts();
    for (double c : counts) EXPECT_GT(c, 0.0);
  }
}

TEST(Partition, KRandomLabelsHasExactlyK) {
  auto gen = small_gen();
  PartitionConfig cfg;
  cfg.num_clients = 12;
  cfg.test_samples = 5;
  Rng rng(23);
  const auto fed = partition_k_random_labels(gen, cfg, 5, rng);
  for (const auto& mix : fed.true_label_distribution) {
    int nonzero = 0;
    for (double p : mix) {
      if (p > 0.0) {
        ++nonzero;
        EXPECT_NEAR(p, 0.2, 1e-9);
      }
    }
    EXPECT_EQ(nonzero, 5);
  }
  EXPECT_THROW(partition_k_random_labels(gen, cfg, 0, rng),
               std::invalid_argument);
  EXPECT_THROW(partition_k_random_labels(gen, cfg, 11, rng),
               std::invalid_argument);
}

TEST(Partition, FeatureSkewTiesRotationToMajority) {
  auto gen = small_gen();
  PartitionConfig cfg;
  cfg.num_clients = 20;
  cfg.test_samples = 5;
  Rng rng(29);
  const auto fed = partition_feature_skew(gen, cfg, 45.0, rng);
  for (std::size_t i = 0; i < fed.num_clients(); ++i) {
    const std::size_t majority = i % 10;
    EXPECT_DOUBLE_EQ(fed.rotation[i], majority % 2 == 0 ? 0.0 : 45.0);
  }
  // Rotated and unrotated clients never share a ground-truth group.
  for (std::size_t i = 0; i < fed.num_clients(); ++i) {
    for (std::size_t j = i + 1; j < fed.num_clients(); ++j) {
      if (fed.rotation[i] != fed.rotation[j]) {
        EXPECT_NE(fed.true_group[i], fed.true_group[j]);
      }
    }
  }
}

TEST(Partition, TwoPerLabelStructure) {
  auto gen = small_gen();
  Rng rng(31);
  const auto fed = partition_two_per_label(gen, 200, 10, rng);
  ASSERT_EQ(fed.num_clients(), 20u);
  // Exactly two clients per ground-truth group, identical mixtures.
  std::map<int, int> group_sizes;
  for (int g : fed.true_group) ++group_sizes[g];
  EXPECT_EQ(group_sizes.size(), 10u);
  for (const auto& [g, count] : group_sizes) EXPECT_EQ(count, 2);
  // 70% majority share.
  EXPECT_DOUBLE_EQ(fed.true_label_distribution[0][0], 0.7);
}

TEST(Partition, DirichletProducesValidMixtures) {
  auto gen = small_gen();
  PartitionConfig cfg;
  cfg.num_clients = 15;
  cfg.test_samples = 5;
  Rng rng(37);
  const auto fed = partition_dirichlet(gen, cfg, 0.5, rng);
  for (const auto& mix : fed.true_label_distribution) {
    double total = 0.0;
    for (double p : mix) {
      EXPECT_GE(p, 0.0);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
  EXPECT_THROW(partition_dirichlet(gen, cfg, 0.0, rng), std::invalid_argument);
}

TEST(Partition, DirichletSkewIncreasesWithSmallAlpha) {
  auto gen = small_gen();
  PartitionConfig cfg;
  cfg.num_clients = 40;
  cfg.test_samples = 5;
  Rng rng1(41), rng2(41);
  const auto skewed = partition_dirichlet(gen, cfg, 0.05, rng1);
  const auto smooth = partition_dirichlet(gen, cfg, 50.0, rng2);
  auto avg_max_share = [](const FederatedDataset& fed) {
    double acc = 0.0;
    for (const auto& mix : fed.true_label_distribution) {
      acc += *std::max_element(mix.begin(), mix.end());
    }
    return acc / static_cast<double>(fed.num_clients());
  };
  EXPECT_GT(avg_max_share(skewed), avg_max_share(smooth) + 0.2);
}

TEST(Partition, DeterministicGivenSeed) {
  auto gen = small_gen();
  PartitionConfig cfg;
  cfg.num_clients = 10;
  cfg.test_samples = 4;
  Rng rng1(43), rng2(43);
  const auto a = partition_majority_label(gen, cfg, rng1);
  const auto b = partition_majority_label(gen, cfg, rng2);
  ASSERT_EQ(a.num_clients(), b.num_clients());
  for (std::size_t i = 0; i < a.num_clients(); ++i) {
    ASSERT_EQ(a.clients[i].train.size(), b.clients[i].train.size());
    for (std::size_t s = 0; s < a.clients[i].train.size(); ++s) {
      EXPECT_EQ(a.clients[i].train.label(s), b.clients[i].train.label(s));
      EXPECT_EQ(a.clients[i].train.features(s)[0],
                b.clients[i].train.features(s)[0]);
    }
  }
}

}  // namespace
}  // namespace haccs::data
