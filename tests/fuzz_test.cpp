// Tests for the scenario fuzzer itself (src/testing) plus the Slow* suites
// that run actual fuzz sweeps — those carry the `slow` ctest label and stay
// out of the tier-1 gate (tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include "src/common/mutation.hpp"
#include "src/testing/oracles.hpp"
#include "src/testing/scenario.hpp"
#include "src/testing/shrink.hpp"

namespace haccs {
namespace {

using testing::OracleOptions;
using testing::ScenarioSpec;

// ---------------------------------------------------------------------------
// Tier 1: the fuzzer's own machinery (fast, no training runs)

TEST(FuzzSpec, GenerationIsDeterministic) {
  for (std::uint64_t seed : {0ULL, 1ULL, 7ULL, 123456789ULL}) {
    const auto a = testing::generate_scenario(seed);
    const auto b = testing::generate_scenario(seed);
    EXPECT_EQ(testing::to_spec_string(a), testing::to_spec_string(b));
    EXPECT_EQ(a.seed, seed);
  }
}

TEST(FuzzSpec, SpecStringRoundTrips) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const auto spec = testing::generate_scenario(seed);
    const auto text = testing::to_spec_string(spec);
    const auto parsed = testing::parse_spec_string(text);
    EXPECT_EQ(testing::to_spec_string(parsed), text) << "seed " << seed;
  }
}

TEST(FuzzSpec, GeneratedSpecsValidate) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    EXPECT_NO_THROW(
        testing::validate_spec(testing::generate_scenario(seed)));
  }
}

TEST(FuzzSpec, ParseRejectsUnknownKeysAndBadValues) {
  EXPECT_THROW(testing::parse_spec_string("bogus_key=1"),
               std::invalid_argument);
  EXPECT_THROW(testing::parse_spec_string("clients=abc"),
               std::invalid_argument);
  EXPECT_THROW(testing::parse_spec_string("clients=0"),
               std::invalid_argument);
  // per_round > clients is a validate_spec violation.
  EXPECT_THROW(testing::parse_spec_string("clients=4,per_round=9"),
               std::invalid_argument);
}

TEST(FuzzSpec, OmittedKeysKeepDefaults) {
  const auto spec = testing::parse_spec_string("seed=9,clients=12");
  EXPECT_EQ(spec.seed, 9u);
  EXPECT_EQ(spec.clients, 12u);
  const ScenarioSpec defaults;
  EXPECT_EQ(spec.rounds, defaults.rounds);
  EXPECT_EQ(spec.rho, defaults.rho);
}

TEST(FuzzSpec, ReplayCommandEmbedsFullSpec) {
  const auto spec = testing::generate_scenario(3);
  const auto cmd = testing::replay_command(spec);
  EXPECT_NE(cmd.find("haccs_fuzz --replay"), std::string::npos);
  EXPECT_NE(cmd.find(testing::to_spec_string(spec)), std::string::npos);
}

TEST(FuzzSpec, HasOracleMatchesByPrefix) {
  std::vector<testing::Violation> v = {{"exception:engine_run", "boom"}};
  EXPECT_TRUE(testing::has_oracle(v, "exception"));
  EXPECT_TRUE(testing::has_oracle(v, "exception:engine_run"));
  EXPECT_FALSE(testing::has_oracle(v, "eq7_weights"));
}

// ---------------------------------------------------------------------------
// Slow tier: real oracle sweeps

OracleOptions fast_options() {
  OracleOptions options;
  options.differential = false;  // invariants only: no extra training runs
  options.srswr_draws = 1500;
  return options;
}

TEST(SlowFuzz, FirstSeedsPassAllOracles) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto spec = testing::generate_scenario(seed);
    const auto violations = testing::check_scenario(spec, fast_options());
    for (const auto& v : violations) {
      ADD_FAILURE() << "seed " << seed << " [" << v.oracle << "] "
                    << v.detail << "\n  reproduce: "
                    << testing::replay_command(spec);
    }
  }
}

TEST(SlowFuzz, DifferentialOraclesPassOnAHaccsScenario) {
  // One full differential pass (loopback dispatch, telemetry, kernels) on a
  // fixed mid-complexity spec, to keep the expensive oracles exercised in
  // every slow-tier run even if generated seeds drift away from them.
  const auto spec = testing::parse_spec_string(
      "seed=11,clients=10,per_round=3,rounds=3,classes=6,image=8,"
      "min_samples=20,max_samples=32,test_samples=6,selector=haccs-py,"
      "compression=topk,workers=2,crash=0.1");
  OracleOptions options;
  options.srswr_draws = 1500;
  const auto violations = testing::check_scenario(spec, options);
  for (const auto& v : violations) {
    ADD_FAILURE() << "[" << v.oracle << "] " << v.detail;
  }
}

// The standing proof that the oracle suite has teeth: a deliberately-injected
// bug (drop Eq. 7's ACL normalization, compiled in behind HACCS_MUTATIONS)
// must be caught, shrunk, and replayable.
#if HACCS_MUTATIONS
ScenarioSpec mutation_prone_spec() {
  return testing::parse_spec_string(
      "seed=5,clients=12,per_round=3,rounds=2,classes=6,image=8,"
      "min_samples=20,max_samples=32,test_samples=6,selector=haccs-py,"
      "rho=0.5,crash=0.1,dropout=0.1,compression=int8");
}

TEST(SlowMutation, DroppedEq7NormalizationIsDetected) {
  const auto spec = mutation_prone_spec();
  {
    mutation::ScopedMutation armed(mutation::Kind::DropEq7Normalization);
    const auto violations = testing::check_scenario(spec, fast_options());
    EXPECT_TRUE(testing::has_oracle(violations, "eq7_weights"))
        << "the eq7_weights oracle missed the injected normalization bug";
  }
  // Disarmed, the identical spec must be clean — the detection above really
  // was the mutation, not a latent failure in the spec.
  const auto clean = testing::check_scenario(spec, fast_options());
  for (const auto& v : clean) {
    ADD_FAILURE() << "disarmed spec not clean: [" << v.oracle << "] "
                  << v.detail;
  }
}

TEST(SlowMutation, DroppedFailurePenaltyIsDetectedAndShrinks) {
  const auto spec = mutation_prone_spec();
  OracleOptions options = fast_options();
  options.srswr_draws = 0;  // the failure_penalty oracle needs no draws
  {
    mutation::ScopedMutation armed(mutation::Kind::DropFailurePenalty);
    const auto violations = testing::check_scenario(spec, options);
    EXPECT_TRUE(testing::has_oracle(violations, "failure_penalty"))
        << "the failure_penalty oracle missed the injected bug";

    const auto result =
        testing::shrink_scenario(spec, "failure_penalty", options);
    const auto still = testing::check_scenario(result.spec, options);
    EXPECT_TRUE(testing::has_oracle(still, "failure_penalty"));
    EXPECT_GT(result.reproductions, 0u);
    // The oracle is selector-local, so every workload knob shrinks away.
    EXPECT_EQ(result.spec.crash_rate, 0.0);
    EXPECT_EQ(result.spec.dropout, 0.0);
    EXPECT_EQ(result.spec.compression, fl::CompressionKind::None);
  }
  const auto clean = testing::check_scenario(spec, options);
  for (const auto& v : clean) {
    ADD_FAILURE() << "disarmed spec not clean: [" << v.oracle << "] "
                  << v.detail;
  }
}

TEST(SlowMutation, ClusterDistanceL2SwapIsDetectedAndShrinks) {
  const auto spec = mutation_prone_spec();
  OracleOptions options = fast_options();
  options.srswr_draws = 0;
  {
    mutation::ScopedMutation armed(mutation::Kind::ClusterDistanceL2);
    const auto violations = testing::check_scenario(spec, options);
    EXPECT_TRUE(testing::has_oracle(violations, "distance_recompute"))
        << "the distance_recompute oracle missed the L2-for-Hellinger swap";

    const auto result =
        testing::shrink_scenario(spec, "distance_recompute", options);
    const auto still = testing::check_scenario(result.spec, options);
    EXPECT_TRUE(testing::has_oracle(still, "distance_recompute"));
    EXPECT_GT(result.reproductions, 0u);
    EXPECT_EQ(result.spec.crash_rate, 0.0);
    EXPECT_EQ(result.spec.compression, fl::CompressionKind::None);
  }
  const auto clean = testing::check_scenario(spec, options);
  for (const auto& v : clean) {
    ADD_FAILURE() << "disarmed spec not clean: [" << v.oracle << "] "
                  << v.detail;
  }
}

TEST(SlowMutation, DetectedMutationShrinksToReplayableReproducer) {
  mutation::ScopedMutation armed(mutation::Kind::DropEq7Normalization);
  const auto spec = mutation_prone_spec();
  OracleOptions options = fast_options();
  options.srswr_draws = 0;  // eq7 recomputation alone catches this mutation
  const auto result = testing::shrink_scenario(spec, "eq7_weights", options);

  // The shrunk spec still reproduces and is simpler than where it started:
  // every pure-noise knob this spec carried must have been stripped.
  const auto violations = testing::check_scenario(result.spec, options);
  EXPECT_TRUE(testing::has_oracle(violations, "eq7_weights"));
  EXPECT_GT(result.reproductions, 0u);
  EXPECT_EQ(result.spec.crash_rate, 0.0);
  EXPECT_EQ(result.spec.dropout, 0.0);
  EXPECT_EQ(result.spec.compression, fl::CompressionKind::None);

  const auto cmd = testing::replay_command(result.spec);
  EXPECT_NE(cmd.find("haccs_fuzz --replay"), std::string::npos);
}
#endif  // HACCS_MUTATIONS

}  // namespace
}  // namespace haccs
