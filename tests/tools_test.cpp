// Tests for checkpointing (nn/serialize), confusion-matrix evaluation
// (fl/evaluation), and the stratified coverage selector.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "src/core/stratified_selector.hpp"
#include "src/data/synthetic.hpp"
#include "src/fl/client.hpp"
#include "src/fl/evaluation.hpp"
#include "src/nn/serialize.hpp"

namespace haccs {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Serialize, RoundTripsParameters) {
  Rng rng(3);
  nn::Sequential model = nn::make_mlp(8, {6}, 3, rng);
  const auto original = model.get_parameters();
  const auto path = temp_path("haccs_ckpt_roundtrip.bin");
  nn::save_parameters(model, path);

  // Perturb, then restore.
  auto perturbed = original;
  for (auto& v : perturbed) v += 1.0f;
  model.set_parameters(perturbed);
  nn::load_into(model, path);
  EXPECT_EQ(model.get_parameters(), original);
  std::filesystem::remove(path);
}

TEST(Serialize, LoadRejectsGarbage) {
  const auto path = temp_path("haccs_ckpt_garbage.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a checkpoint";
  }
  EXPECT_THROW(nn::load_parameters(path), std::runtime_error);
  std::filesystem::remove(path);
  EXPECT_THROW(nn::load_parameters(path), std::runtime_error);  // missing
}

TEST(Serialize, LoadRejectsTruncated) {
  Rng rng(5);
  nn::Sequential model = nn::make_mlp(8, {}, 3, rng);
  const auto path = temp_path("haccs_ckpt_truncated.bin");
  nn::save_parameters(model, path);
  // Chop the tail off.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 8);
  EXPECT_THROW(nn::load_parameters(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Serialize, SizeMismatchRejectedAtSet) {
  Rng rng(7);
  nn::Sequential small = nn::make_mlp(4, {}, 2, rng);
  nn::Sequential big = nn::make_mlp(8, {}, 4, rng);
  const auto path = temp_path("haccs_ckpt_mismatch.bin");
  nn::save_parameters(small, path);
  EXPECT_THROW(nn::load_into(big, path), std::invalid_argument);
  std::filesystem::remove(path);
}

TEST(Confusion, CountsAndMetrics) {
  fl::ConfusionMatrix m(3);
  m.add(0, 0);
  m.add(0, 0);
  m.add(0, 1);  // one class-0 sample misread as 1
  m.add(1, 1);
  m.add(2, 1);  // class 2 never predicted correctly
  EXPECT_EQ(m.total(), 5u);
  EXPECT_EQ(m.at(0, 0), 2u);
  EXPECT_EQ(m.at(2, 1), 1u);
  EXPECT_DOUBLE_EQ(m.accuracy(), 3.0 / 5.0);

  const auto recall = m.per_class_recall();
  EXPECT_DOUBLE_EQ(recall[0], 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(recall[1], 1.0);
  EXPECT_DOUBLE_EQ(recall[2], 0.0);

  const auto precision = m.per_class_precision();
  EXPECT_DOUBLE_EQ(precision[0], 1.0);
  EXPECT_DOUBLE_EQ(precision[1], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(precision[2], 0.0);

  EXPECT_THROW(m.add(3, 0), std::invalid_argument);
  EXPECT_THROW(m.add(0, -1), std::invalid_argument);
}

TEST(Confusion, MergeAccumulates) {
  fl::ConfusionMatrix a(2), b(2);
  a.add(0, 0);
  b.add(0, 1);
  b.add(1, 1);
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.at(0, 1), 1u);
  fl::ConfusionMatrix c(3);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(Confusion, FromModelMatchesEvaluate) {
  data::SyntheticImageConfig gcfg;
  gcfg.classes = 4;
  gcfg.height = 6;
  gcfg.width = 6;
  data::SyntheticImageGenerator gen(gcfg);
  data::Dataset ds(gen.sample_shape(), 4);
  Rng rng(9);
  for (std::int64_t c = 0; c < 4; ++c) gen.fill(ds, c, 15, rng);

  Rng model_rng(11);
  nn::Sequential model;
  model.add(std::make_unique<nn::Flatten>());
  model.add(std::make_unique<nn::Dense>(36, 4, model_rng));

  const auto matrix = fl::confusion_matrix(model, ds);
  const auto eval = fl::evaluate(model, ds);
  EXPECT_EQ(matrix.total(), ds.size());
  EXPECT_NEAR(matrix.accuracy(), eval.accuracy, 1e-9);
}

TEST(Fairness, GiniBounds) {
  // Perfectly even participation.
  const std::vector<std::size_t> even = {5, 5, 5, 5};
  EXPECT_NEAR(fl::participation_gini(even), 0.0, 1e-9);
  // All work on one device: Gini -> (n-1)/n.
  const std::vector<std::size_t> skewed = {0, 0, 0, 20};
  EXPECT_NEAR(fl::participation_gini(skewed), 0.75, 1e-9);
  // Monotone: more concentration, higher Gini.
  const std::vector<std::size_t> mild = {4, 5, 5, 6};
  EXPECT_LT(fl::participation_gini(mild), fl::participation_gini(skewed));
  // Nobody selected at all.
  const std::vector<std::size_t> none = {0, 0};
  EXPECT_DOUBLE_EQ(fl::participation_gini(none), 0.0);
  EXPECT_THROW(fl::participation_gini({}), std::invalid_argument);
}

TEST(Fairness, AccuracySpread) {
  const std::vector<double> uniform = {0.9, 0.9, 0.9};
  EXPECT_DOUBLE_EQ(fl::accuracy_spread(uniform), 0.0);
  const std::vector<double> split = {1.0, 0.0};
  EXPECT_DOUBLE_EQ(fl::accuracy_spread(split), 0.5);
  EXPECT_THROW(fl::accuracy_spread({}), std::invalid_argument);
}

// ---- Stratified selector ----

std::vector<fl::ClientRuntimeInfo> make_view(std::size_t n) {
  std::vector<fl::ClientRuntimeInfo> view(n);
  for (std::size_t i = 0; i < n; ++i) {
    view[i].id = i;
    view[i].latency_s = 1.0 + static_cast<double>(i);
    view[i].num_samples = 10;
    view[i].last_loss = 1.0;
    view[i].available = true;
  }
  return view;
}

TEST(Stratified, OnePerClusterWhenKEqualsClusters) {
  // 3 clusters of 2.
  core::StratifiedSelector s({0, 0, 1, 1, 2, 2});
  auto view = make_view(6);
  Rng rng(13);
  const auto picks = s.select(3, view, 0, rng);
  ASSERT_EQ(picks.size(), 3u);
  std::set<int> clusters_hit;
  for (std::size_t id : picks) clusters_hit.insert(static_cast<int>(id / 2));
  EXPECT_EQ(clusters_hit.size(), 3u);  // every cluster covered
}

TEST(Stratified, EventuallyIncludesEveryDevice) {
  core::StratifiedSelector s({0, 0, 0, 1, 1, 1});
  auto view = make_view(6);
  Rng rng(17);
  std::set<std::size_t> seen;
  for (int epoch = 0; epoch < 12; ++epoch) {
    for (std::size_t id : s.select(2, view, epoch, rng)) seen.insert(id);
  }
  EXPECT_EQ(seen.size(), 6u);  // zero-bias coverage
}

TEST(Stratified, SkipsUnavailableDevices) {
  core::StratifiedSelector s({0, 0, 1, 1});
  auto view = make_view(4);
  view[0].available = false;
  view[1].available = false;  // cluster 0 fully down
  Rng rng(19);
  for (int epoch = 0; epoch < 5; ++epoch) {
    for (std::size_t id : s.select(2, view, epoch, rng)) {
      EXPECT_GE(id, 2u);
    }
  }
}

TEST(Stratified, NeverReturnsDuplicates) {
  core::StratifiedSelector s({0, 0, 0, 0, 1});
  auto view = make_view(5);
  Rng rng(23);
  for (int epoch = 0; epoch < 10; ++epoch) {
    const auto picks = s.select(4, view, epoch, rng);
    std::set<std::size_t> unique(picks.begin(), picks.end());
    EXPECT_EQ(unique.size(), picks.size());
  }
}

TEST(Stratified, SecondPassFillsWhenKExceedsClusters) {
  core::StratifiedSelector s({0, 0, 0, 1, 1, 1});
  auto view = make_view(6);
  Rng rng(29);
  const auto picks = s.select(4, view, 0, rng);
  EXPECT_EQ(picks.size(), 4u);
}

TEST(Stratified, NoiseBecomesSingletons) {
  core::StratifiedSelector s({0, -1, 0, -1});
  EXPECT_EQ(s.num_clusters(), 3u);
}

}  // namespace
}  // namespace haccs
