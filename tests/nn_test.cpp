// Tests for src/nn: layer forward/backward correctness (finite-difference
// gradient checks through the full model), loss properties, parameter
// (de)serialization, optimizer behavior, and end-to-end learnability.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.hpp"
#include "src/nn/layer.hpp"
#include "src/nn/loss.hpp"
#include "src/nn/model.hpp"
#include "src/nn/optimizer.hpp"

namespace haccs::nn {
namespace {

TEST(Dense, ForwardComputesAffineMap) {
  Rng rng(1);
  Dense layer(2, 2, rng);
  // Overwrite parameters with known values: W = [[1,2],[3,4]], b = [10, 20].
  auto params = layer.parameters();
  params[0]->data()[0] = 1;
  params[0]->data()[1] = 2;
  params[0]->data()[2] = 3;
  params[0]->data()[3] = 4;
  params[1]->data()[0] = 10;
  params[1]->data()[1] = 20;

  Tensor x({1, 2}, {1.0f, 1.0f});
  const Tensor y = layer.forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 13.0f);  // 1*1 + 2*1 + 10
  EXPECT_FLOAT_EQ(y.at(0, 1), 27.0f);  // 3*1 + 4*1 + 20
}

TEST(Dense, RejectsWrongInputWidth) {
  Rng rng(1);
  Dense layer(3, 2, rng);
  Tensor x({1, 4});
  EXPECT_THROW(layer.forward(x), std::invalid_argument);
}

TEST(ReLULayer, ZeroesNegativeAndPassesPositive) {
  ReLU relu;
  Tensor x({1, 4}, {-1.0f, 0.0f, 2.0f, -3.0f});
  const Tensor y = relu.forward(x);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);

  Tensor g({1, 4}, {1, 1, 1, 1});
  const Tensor gx = relu.backward(g);
  EXPECT_FLOAT_EQ(gx[0], 0.0f);  // blocked at negative input
  EXPECT_FLOAT_EQ(gx[2], 1.0f);
}

TEST(FlattenLayer, RoundTripsShape) {
  Flatten flatten;
  Tensor x({2, 3, 4, 5});
  const Tensor y = flatten.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{2, 60}));
  const Tensor back = flatten.backward(y);
  EXPECT_EQ(back.shape(), x.shape());
}

TEST(DropoutLayer, EvalModeIsIdentity) {
  Rng rng(3);
  Dropout dropout(0.5, rng);
  dropout.set_training(false);
  Tensor x({1, 100});
  x.fill(1.0f);
  const Tensor y = dropout.forward(x);
  for (float v : y.data()) EXPECT_FLOAT_EQ(v, 1.0f);
}

TEST(DropoutLayer, TrainModeScalesSurvivors) {
  Rng rng(3);
  Dropout dropout(0.5, rng);
  Tensor x({1, 2000});
  x.fill(1.0f);
  const Tensor y = dropout.forward(x);
  std::size_t zeros = 0;
  for (float v : y.data()) {
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(v, 2.0f);  // 1 / (1 - 0.5)
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 2000.0, 0.5, 0.06);
}

TEST(DropoutLayer, RejectsBadRate) {
  Rng rng(1);
  EXPECT_THROW(Dropout(1.0, rng), std::invalid_argument);
  EXPECT_THROW(Dropout(-0.1, rng), std::invalid_argument);
}

TEST(Softmax, RowsSumToOne) {
  Tensor logits({2, 3}, {1, 2, 3, -1, 0, 100});
  const Tensor p = softmax(logits);
  for (std::size_t i = 0; i < 2; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_GE(p.at(i, j), 0.0f);
      row += p.at(i, j);
    }
    EXPECT_NEAR(row, 1.0, 1e-5);
  }
  // Large logits must not overflow.
  EXPECT_NEAR(p.at(1, 2), 1.0f, 1e-5);
}

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogC) {
  Tensor logits({1, 10});
  const std::vector<std::int64_t> labels = {3};
  const auto result = softmax_cross_entropy(logits, labels);
  EXPECT_NEAR(result.loss, std::log(10.0), 1e-5);
}

TEST(SoftmaxCrossEntropy, TracksCorrectPredictions) {
  Tensor logits({2, 3}, {5, 0, 0, 0, 0, 5});
  const std::vector<std::int64_t> labels = {0, 1};
  const auto result = softmax_cross_entropy(logits, labels);
  EXPECT_EQ(result.correct, 1u);  // first right, second wrong
}

TEST(SoftmaxCrossEntropy, RejectsOutOfRangeLabel) {
  Tensor logits({1, 3});
  const std::vector<std::int64_t> bad = {3};
  EXPECT_THROW(softmax_cross_entropy(logits, bad), std::invalid_argument);
}

TEST(SoftmaxCrossEntropy, GradientMatchesFiniteDifferences) {
  Rng rng(11);
  Tensor logits({3, 5});
  for (auto& v : logits.data()) v = static_cast<float>(rng.normal());
  const std::vector<std::int64_t> labels = {0, 2, 4};
  const auto result = softmax_cross_entropy(logits, labels);

  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    Tensor plus = logits, minus = logits;
    plus[i] += eps;
    minus[i] -= eps;
    const double fd = (softmax_cross_entropy(plus, labels).loss -
                       softmax_cross_entropy(minus, labels).loss) /
                      (2.0 * eps);
    EXPECT_NEAR(result.grad_logits[i], fd, 1e-3);
  }
}

// Whole-model gradient check: MLP and CNN through the loss.
void check_model_gradients(Sequential& model, std::size_t input_size,
                           const std::vector<std::size_t>& input_shape,
                           std::size_t classes) {
  Rng rng(13);
  Tensor x(input_shape);
  for (auto& v : x.data()) v = static_cast<float>(rng.normal(0, 0.5));
  std::vector<std::int64_t> labels(input_shape[0]);
  for (auto& l : labels) {
    l = static_cast<std::int64_t>(rng.uniform_index(classes));
  }
  (void)input_size;

  model.zero_grad();
  const Tensor logits = model.forward(x);
  const auto loss = softmax_cross_entropy(logits, labels);
  model.backward(loss.grad_logits);
  const auto analytic = model.get_gradients();
  const auto params = model.get_parameters();

  auto loss_at = [&](const std::vector<float>& p) {
    model.set_parameters(p);
    const Tensor out = model.forward(x);
    return softmax_cross_entropy(out, labels).loss;
  };

  const float eps = 1e-2f;
  std::size_t checked = 0;
  for (std::size_t i = 0; i < params.size() && checked < 40;
       i += std::max<std::size_t>(1, params.size() / 40), ++checked) {
    auto plus = params, minus = params;
    plus[i] += eps;
    minus[i] -= eps;
    const double fd = (loss_at(plus) - loss_at(minus)) / (2.0 * eps);
    EXPECT_NEAR(analytic[i], fd, 2e-2) << "param " << i;
  }
  model.set_parameters(params);
}

TEST(Sequential, MlpGradientsMatchFiniteDifferences) {
  Rng rng(17);
  Sequential model = make_mlp(12, {8}, 4, rng);
  check_model_gradients(model, 12, {5, 12}, 4);
}

TEST(Sequential, CnnGradientsMatchFiniteDifferences) {
  Rng rng(19);
  Sequential model = make_cnn_mini(1, 8, 8, 3, rng);
  check_model_gradients(model, 64, {4, 1, 8, 8}, 3);
}

TEST(Sequential, ParameterRoundTrip) {
  Rng rng(23);
  Sequential model = make_mlp(6, {5}, 3, rng);
  const auto original = model.get_parameters();
  EXPECT_EQ(original.size(), model.parameter_count());

  auto modified = original;
  for (auto& v : modified) v += 1.0f;
  model.set_parameters(modified);
  EXPECT_EQ(model.get_parameters(), modified);

  model.set_parameters(original);
  EXPECT_EQ(model.get_parameters(), original);
}

TEST(Sequential, SetParametersSizeChecked) {
  Rng rng(29);
  Sequential model = make_mlp(4, {}, 2, rng);
  std::vector<float> wrong(model.parameter_count() + 1, 0.0f);
  EXPECT_THROW(model.set_parameters(wrong), std::invalid_argument);
  std::vector<float> short_vec(model.parameter_count() - 1, 0.0f);
  EXPECT_THROW(model.set_parameters(short_vec), std::invalid_argument);
}

TEST(Sequential, SameSeedSameInitialization) {
  Rng rng1(31), rng2(31);
  Sequential m1 = make_mlp(10, {7}, 3, rng1);
  Sequential m2 = make_mlp(10, {7}, 3, rng2);
  EXPECT_EQ(m1.get_parameters(), m2.get_parameters());
}

TEST(Lenet, BuildsAndRuns28x28) {
  Rng rng(37);
  Sequential model = make_lenet(1, 28, 28, 10, rng);
  Tensor x({2, 1, 28, 28});
  const Tensor y = model.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{2, 10}));
}

TEST(Lenet, RejectsTinyInputs) {
  Rng rng(1);
  EXPECT_THROW(make_lenet(1, 3, 3, 10, rng), std::invalid_argument);
}

TEST(SgdOptimizer, SingleStepAppliesLearningRate) {
  Rng rng(41);
  Sequential model;
  model.add(std::make_unique<Dense>(1, 1, rng));
  auto params = model.layer(0).parameters();
  params[0]->data()[0] = 1.0f;  // w
  params[1]->data()[0] = 0.0f;  // b
  auto grads = model.layer(0).gradients();
  grads[0]->data()[0] = 2.0f;
  grads[1]->data()[0] = 1.0f;

  SgdOptimizer opt({.learning_rate = 0.1});
  opt.step(model);
  EXPECT_NEAR(params[0]->data()[0], 0.8f, 1e-6);
  EXPECT_NEAR(params[1]->data()[0], -0.1f, 1e-6);
}

TEST(SgdOptimizer, MomentumAccumulates) {
  Rng rng(43);
  Sequential model;
  model.add(std::make_unique<Dense>(1, 1, rng));
  model.layer(0).parameters()[0]->data()[0] = 0.0f;
  model.layer(0).parameters()[1]->data()[0] = 0.0f;

  SgdOptimizer opt({.learning_rate = 1.0, .momentum = 0.5});
  // Constant gradient of 1: updates are 1, 1.5, 1.75, ...
  model.layer(0).gradients()[0]->data()[0] = 1.0f;
  opt.step(model);
  const float after_one = model.layer(0).parameters()[0]->data()[0];
  EXPECT_NEAR(after_one, -1.0f, 1e-6);
  model.layer(0).gradients()[0]->data()[0] = 1.0f;
  opt.step(model);
  EXPECT_NEAR(model.layer(0).parameters()[0]->data()[0], -2.5f, 1e-6);
}

TEST(SgdOptimizer, RejectsBadConfig) {
  EXPECT_THROW(SgdOptimizer({.learning_rate = 0.0}), std::invalid_argument);
  EXPECT_THROW(SgdOptimizer({.learning_rate = 0.1, .momentum = 1.0}),
               std::invalid_argument);
  EXPECT_THROW(
      SgdOptimizer({.learning_rate = 0.1, .momentum = 0.0, .weight_decay = -1.0}),
      std::invalid_argument);
}

TEST(SgdOptimizer, WeightDecayShrinksWeights) {
  Rng rng(47);
  Sequential model;
  model.add(std::make_unique<Dense>(1, 1, rng));
  model.layer(0).parameters()[0]->data()[0] = 10.0f;
  model.zero_grad();
  SgdOptimizer opt(
      {.learning_rate = 0.1, .momentum = 0.0, .weight_decay = 0.5});
  opt.step(model);
  // w <- w - lr * wd * w = 10 - 0.1*0.5*10 = 9.5
  EXPECT_NEAR(model.layer(0).parameters()[0]->data()[0], 9.5f, 1e-5);
}

// End-to-end learnability: a small MLP separates two Gaussian blobs.
TEST(Training, LearnsLinearlySeparableBlobs) {
  Rng rng(53);
  Sequential model = make_mlp(2, {16}, 2, rng);
  SgdOptimizer opt({.learning_rate = 0.1});

  Rng data_rng(54);
  const std::size_t n = 64;
  Tensor x({n, 2});
  std::vector<std::int64_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool positive = i % 2 == 0;
    labels[i] = positive ? 1 : 0;
    const double cx = positive ? 1.5 : -1.5;
    x.at(i, 0) = static_cast<float>(data_rng.normal(cx, 0.5));
    x.at(i, 1) = static_cast<float>(data_rng.normal(-cx, 0.5));
  }

  double first_loss = 0.0, last_loss = 0.0;
  for (int step = 0; step < 150; ++step) {
    model.zero_grad();
    const Tensor logits = model.forward(x);
    const auto loss = softmax_cross_entropy(logits, labels);
    model.backward(loss.grad_logits);
    opt.step(model);
    if (step == 0) first_loss = loss.loss;
    last_loss = loss.loss;
  }
  EXPECT_LT(last_loss, first_loss * 0.2);

  const Tensor logits = model.forward(x);
  const auto final = softmax_cross_entropy(logits, labels);
  EXPECT_GE(static_cast<double>(final.correct) / n, 0.95);
}

}  // namespace
}  // namespace haccs::nn
