// Tests for the hierarchical aggregation tree (DESIGN.md §5j): the FanInServer
// poll/epoll fan-in endpoint (round trips, 256 concurrent peers, slow-peer
// shedding, connection caps), the tree wire codecs, the 3-tier
// root→aggregator→worker pipeline's bit-identity with the flat grouped
// dispatcher, salvage on aggregator loss, StatusServer request parsing, and
// the live join/leave re-cluster tracker.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/core/haccs_config.hpp"
#include "src/core/haccs_selector.hpp"
#include "src/core/haccs_system.hpp"
#include "src/core/live_recluster.hpp"
#include "src/core/pipeline.hpp"
#include "src/fl/engine.hpp"
#include "src/fl/net_driver.hpp"
#include "src/hier/mid_tier.hpp"
#include "src/hier/tree_dispatcher.hpp"
#include "src/net/fanin.hpp"
#include "src/net/loopback.hpp"
#include "src/net/messages.hpp"
#include "src/net/status.hpp"
#include "src/net/tcp.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/obs.hpp"
#include "src/select/random_selector.hpp"
#include "src/stats/summary.hpp"
#include "src/stats/summary_codec.hpp"

namespace haccs {
namespace {

data::FederatedDataset make_fed(std::size_t clients = 8) {
  data::SyntheticImageConfig cfg = data::SyntheticImageConfig::femnist_like(4);
  cfg.height = 10;
  cfg.width = 10;
  cfg.noise_stddev = 0.6;
  data::SyntheticImageGenerator gen(cfg);
  data::PartitionConfig pcfg;
  pcfg.num_clients = clients;
  pcfg.min_samples = 40;
  pcfg.max_samples = 80;
  pcfg.test_samples = 12;
  Rng rng(19);
  return data::partition_majority_label(gen, pcfg, rng);
}

fl::EngineConfig make_engine(std::size_t rounds = 3) {
  fl::EngineConfig cfg;
  cfg.rounds = rounds;
  cfg.clients_per_round = 3;
  cfg.eval_every = 3;
  cfg.local.sgd.learning_rate = 0.08;
  cfg.seed = 23;
  return cfg;
}

std::string record_json_no_phase(const fl::RoundRecord& record) {
  fl::RoundRecord copy = record;
  copy.phase = fl::PhaseTimings{};
  return fl::round_event_json("sync", copy);
}

// ---------------------------------------------------------------------------
// HierFanIn: the poll/epoll fan-in server

/// Pumps the server until one event arrives (asserting progress) — accepts,
/// reads, and flushes happen inside poll().
net::FanInEvent pump_for_event(net::FanInServer& server, int budget_ms = 5000) {
  net::FanInEvent ev;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(budget_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (server.poll(&ev, 20)) return ev;
  }
  ADD_FAILURE() << "no FanIn event within " << budget_ms << " ms";
  return ev;
}

TEST(HierFanIn, HelloRoundTripEcho) {
  net::FanInServer server(net::FanInOptions{});
  auto client = net::connect_tcp("127.0.0.1", server.port());

  ASSERT_EQ(client->send(net::encode_hello({.worker_id = 7, .num_clients = 2}),
                         2000),
            net::TransportStatus::Ok);

  const auto accepted = pump_for_event(server);
  ASSERT_EQ(accepted.kind, net::FanInEvent::Kind::Accepted);
  const std::uint64_t conn = accepted.conn;
  EXPECT_EQ(server.connection_count(), 1u);
  EXPECT_FALSE(server.peer_name(conn).empty());

  const auto framed = pump_for_event(server);
  ASSERT_EQ(framed.kind, net::FanInEvent::Kind::Frame);
  EXPECT_EQ(framed.conn, conn);
  const net::HelloMsg hello = net::decode_hello(framed.frame);
  EXPECT_EQ(hello.worker_id, 7u);
  EXPECT_EQ(hello.num_clients, 2u);

  // Echo it back; flushing happens inside subsequent poll() calls, so pump
  // the server between client receive attempts (one thread drives both).
  ASSERT_TRUE(server.send(conn, framed.frame));
  net::Frame back;
  auto status = net::TransportStatus::Timeout;
  for (int i = 0; i < 200 && status == net::TransportStatus::Timeout; ++i) {
    net::FanInEvent ev;
    server.poll(&ev, 10);
    status = client->recv(&back, 10);
  }
  ASSERT_EQ(status, net::TransportStatus::Ok);
  const net::HelloMsg echoed = net::decode_hello(back);
  EXPECT_EQ(echoed.worker_id, 7u);
}

// The §5j acceptance bar: hundreds of concurrent connections through one
// poll loop with no frame loss.
TEST(HierFanIn, TwoHundredFiftySixConnectionsNoFrameLoss) {
  constexpr std::size_t kPeers = 256;
  net::FanInServer server(net::FanInOptions{});

  std::vector<std::unique_ptr<net::Transport>> clients;
  clients.reserve(kPeers);
  std::set<std::uint32_t> seen;
  std::size_t accepted = 0;
  auto drain = [&](int timeout_ms) {
    net::FanInEvent ev;
    while (server.poll(&ev, timeout_ms)) {
      if (ev.kind == net::FanInEvent::Kind::Accepted) ++accepted;
      if (ev.kind == net::FanInEvent::Kind::Frame) {
        seen.insert(net::decode_hello(ev.frame).worker_id);
      }
    }
  };

  // Interleave connects with polling so the accept backlog never overflows.
  for (std::size_t i = 0; i < kPeers; ++i) {
    clients.push_back(net::connect_tcp("127.0.0.1", server.port()));
    ASSERT_EQ(clients.back()->send(
                  net::encode_hello({.worker_id = static_cast<std::uint32_t>(i),
                                     .num_clients = 1}),
                  2000),
              net::TransportStatus::Ok);
    drain(0);
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (seen.size() < kPeers &&
         std::chrono::steady_clock::now() < deadline) {
    drain(20);
  }

  EXPECT_EQ(server.connection_count(), kPeers);
  EXPECT_EQ(accepted, kPeers);
  ASSERT_EQ(seen.size(), kPeers);  // every frame delivered, none lost
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), kPeers - 1);
}

TEST(HierFanIn, SlowPeerIsShedAtOutboundCap) {
  net::FanInOptions options;
  options.max_outbound_frames = 4;
  net::FanInServer server(options);

  // The peer connects and then never reads.
  auto client = net::connect_tcp("127.0.0.1", server.port());
  const auto accepted = pump_for_event(server);
  ASSERT_EQ(accepted.kind, net::FanInEvent::Kind::Accepted);
  const std::uint64_t conn = accepted.conn;

  // Large frames (256 KiB of params) fill the socket buffer, then the
  // outbound queue, then trip the cap: send() returns false exactly once at
  // the shed point.
  net::TrainJobMsg big;
  big.params.assign(65536, 1.5f);
  const net::Frame frame = net::encode_train_job(big);
  bool shed_on_send = false;
  for (int i = 0; i < 64 && !shed_on_send; ++i) {
    if (!server.send(conn, frame)) {
      shed_on_send = true;
      break;
    }
    net::FanInEvent ev;
    server.poll(&ev, 5);  // attempt a flush between sends
  }
  ASSERT_TRUE(shed_on_send) << "outbound cap never tripped";

  // The next poll surfaces the shed as a Closed event, and the connection
  // id is gone for good (ids are never recycled).
  net::FanInEvent ev;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  bool closed = false;
  while (!closed && std::chrono::steady_clock::now() < deadline) {
    if (!server.poll(&ev, 20)) continue;
    if (ev.kind == net::FanInEvent::Kind::Closed && ev.conn == conn) {
      EXPECT_TRUE(ev.shed);
      closed = true;
    }
  }
  ASSERT_TRUE(closed);
  EXPECT_EQ(server.connection_count(), 0u);
  EXPECT_FALSE(server.send(conn, frame));
  EXPECT_EQ(server.outbound_queued(conn), 0u);
}

TEST(HierFanIn, ConnectionCapClosesExcessPeers) {
  net::FanInOptions options;
  options.max_connections = 2;
  net::FanInServer server(options);

  auto first = net::connect_tcp("127.0.0.1", server.port());
  auto second = net::connect_tcp("127.0.0.1", server.port());
  auto third = net::connect_tcp("127.0.0.1", server.port());

  // Pump the server; the third peer must observe a close, and the server
  // must hold exactly two connections.
  net::Frame frame;
  auto status = net::TransportStatus::Timeout;
  for (int i = 0; i < 200 && status == net::TransportStatus::Timeout; ++i) {
    net::FanInEvent ev;
    server.poll(&ev, 10);
    status = third->recv(&frame, 10);
  }
  EXPECT_EQ(status, net::TransportStatus::Closed);
  EXPECT_EQ(server.connection_count(), 2u);
}

// ---------------------------------------------------------------------------
// HierCodec: tree wire messages

TEST(HierCodec, TopologyHelloRoundTrip) {
  net::TopologyHelloMsg msg;
  msg.agg_id = 3;
  msg.num_aggs = 8;
  msg.worker_begin = 96;
  msg.worker_end = 128;
  msg.num_clients = 4096;
  const net::TopologyHelloMsg back =
      net::decode_topology_hello(net::encode_topology_hello(msg));
  EXPECT_EQ(back.agg_id, 3u);
  EXPECT_EQ(back.num_aggs, 8u);
  EXPECT_EQ(back.worker_begin, 96u);
  EXPECT_EQ(back.worker_end, 128u);
  EXPECT_EQ(back.num_clients, 4096u);
}

TEST(HierCodec, SubtreeChunkRoundTripPreservesBits) {
  net::SubtreeChunkMsg msg;
  msg.epoch = 41;
  msg.agg_id = 2;
  msg.offset = 16384;
  // Edge-case doubles: the fold must be bit-exact, so the codec must be too.
  msg.data = {-0.0, 4.9406564584124654e-324, 1.0 / 3.0,
              -1.7976931348623157e308, 42.0};
  const net::SubtreeChunkMsg back =
      net::decode_subtree_chunk(net::encode_subtree_chunk(msg));
  EXPECT_EQ(back.epoch, 41u);
  EXPECT_EQ(back.agg_id, 2u);
  EXPECT_EQ(back.offset, 16384u);
  ASSERT_EQ(back.data.size(), msg.data.size());
  EXPECT_EQ(std::memcmp(back.data.data(), msg.data.data(),
                        msg.data.size() * sizeof(double)),
            0);
}

TEST(HierCodec, SubtreeUpdateRoundTrip) {
  net::SubtreeUpdateMsg msg;
  msg.epoch = 7;
  msg.agg_id = 1;
  msg.weight = 123.0;
  msg.n_chunks = 9;
  net::SubtreeClientStat ok;
  ok.client_id = 11;
  ok.delivered = 1;
  ok.average_loss = 0.625;
  ok.final_loss = 0.5;
  ok.batches = 17;
  ok.sample_count = 64;
  net::SubtreeClientStat failed;
  failed.client_id = 15;
  failed.delivered = 0;
  failed.failure = static_cast<std::uint8_t>(fl::FailureKind::Timeout);
  msg.stats = {ok, failed};

  const net::SubtreeUpdateMsg back =
      net::decode_subtree_update(net::encode_subtree_update(msg));
  EXPECT_EQ(back.epoch, 7u);
  EXPECT_EQ(back.agg_id, 1u);
  EXPECT_EQ(back.weight, 123.0);
  EXPECT_EQ(back.n_chunks, 9u);
  ASSERT_EQ(back.stats.size(), 2u);
  EXPECT_EQ(back.stats[0].client_id, 11u);
  EXPECT_EQ(back.stats[0].delivered, 1);
  EXPECT_EQ(back.stats[0].average_loss, 0.625);
  EXPECT_EQ(back.stats[0].final_loss, 0.5);
  EXPECT_EQ(back.stats[0].batches, 17u);
  EXPECT_EQ(back.stats[0].sample_count, 64u);
  EXPECT_EQ(back.stats[1].client_id, 15u);
  EXPECT_EQ(back.stats[1].delivered, 0);
  EXPECT_EQ(back.stats[1].failure,
            static_cast<std::uint8_t>(fl::FailureKind::Timeout));
}

// ---------------------------------------------------------------------------
// HierTree: the full 3-tier pipeline

/// An in-process 3-tier federation: the root talks to `aggs` MidTierAggregator
/// threads over loopback pairs; each aggregator fronts its slice of `workers`
/// WorkerLoop threads over real TCP through its FanInServer.
struct TreeHarness {
  TreeHarness(const data::FederatedDataset& fed,
              std::function<nn::Sequential()> factory, std::size_t num_aggs,
              std::size_t num_workers, const fl::EngineConfig& engine)
      : num_workers_(num_workers) {
    const std::size_t per = num_workers / num_aggs;
    for (std::size_t a = 0; a < num_aggs; ++a) {
      hier::MidTierConfig config;
      config.agg_id = static_cast<std::uint32_t>(a);
      config.num_aggs = static_cast<std::uint32_t>(num_aggs);
      config.num_workers = static_cast<std::uint32_t>(num_workers);
      // Small chunks force multi-chunk settles, exercising the root's
      // gated out-of-order fold rather than a trivial one-chunk path.
      config.chunk_params = 64;
      config.max_update_norm = engine.max_update_norm;
      config.round_timeout_ms = 60000;
      aggs_.push_back(std::make_unique<hier::MidTierAggregator>(config));
      pairs_.push_back(net::make_loopback_pair());
    }
    for (std::size_t a = 0; a < num_aggs; ++a) {
      threads_.emplace_back([this, a] {
        agg_ok_[a] = aggs_[a]->run(*pairs_[a].b);
      });
    }
    for (std::size_t w = 0; w < num_workers; ++w) {
      threads_.emplace_back([this, &fed, factory, w, per] {
        auto transport =
            net::connect_tcp("127.0.0.1", aggs_[w / per]->port());
        std::vector<std::uint32_t> hosted;
        for (std::size_t c = w; c < fed.clients.size(); c += num_workers_) {
          hosted.push_back(static_cast<std::uint32_t>(c));
        }
        net::HelloMsg hello;
        hello.worker_id = static_cast<std::uint32_t>(w);
        hello.num_clients = static_cast<std::uint32_t>(hosted.size());
        transport->send(net::encode_hello(hello), 10000);
        for (const std::uint32_t c : hosted) {
          transport->send(
              net::encode_summary(stats::encode_summary_msg(
                  c, stats::summarize_response(fed.clients[c].train))),
              10000);
        }
        fl::WorkerLoopConfig config;
        config.worker_id = static_cast<std::uint32_t>(w);
        fl::WorkerLoop loop(fed, factory, config);
        loop.serve(*transport);
      });
    }
  }

  /// Root side of the handshake: each aggregator announces its subtree with
  /// TopologyHello and relays its workers' Summary frames.
  void drain_handshakes(std::size_t expected_clients) {
    const std::size_t per = num_workers_ / aggs_.size();
    std::size_t total = 0;
    for (std::size_t a = 0; a < aggs_.size(); ++a) {
      net::Frame frame;
      ASSERT_EQ(pairs_[a].a->recv(&frame, 30000), net::TransportStatus::Ok);
      ASSERT_EQ(frame.type, net::MessageType::TopologyHello);
      const net::TopologyHelloMsg hello = net::decode_topology_hello(frame);
      EXPECT_EQ(hello.agg_id, a);
      EXPECT_EQ(hello.num_aggs, aggs_.size());
      EXPECT_EQ(hello.worker_begin, a * per);
      EXPECT_EQ(hello.worker_end, (a + 1) * per);
      for (std::uint32_t i = 0; i < hello.num_clients; ++i) {
        ASSERT_EQ(pairs_[a].a->recv(&frame, 30000), net::TransportStatus::Ok);
        ASSERT_EQ(frame.type, net::MessageType::Summary);
        ++total;
      }
    }
    EXPECT_EQ(total, expected_clients);
  }

  std::vector<net::Transport*> root_transports() const {
    std::vector<net::Transport*> out;
    for (const auto& pair : pairs_) out.push_back(pair.a.get());
    return out;
  }

  void shutdown_and_join() {
    for (auto& pair : pairs_) pair.a->send(net::encode_shutdown(), 5000);
    for (auto& thread : threads_) thread.join();
    threads_.clear();
  }

  ~TreeHarness() {
    if (!threads_.empty()) shutdown_and_join();
  }

  std::size_t num_workers_;
  std::vector<std::unique_ptr<hier::MidTierAggregator>> aggs_;
  std::vector<net::LoopbackPair> pairs_;
  std::vector<std::thread> threads_;
  bool agg_ok_[8] = {};
};

// The PR's headline acceptance criterion: a 3-tier run (root + 2 aggregators
// + 4 workers) is bit-identical to the flat dispatcher running with
// agg_groups = 2 — per-round JSON byte equality AND bitwise-equal final
// parameters. (Grouped-flat vs classic-flat differ in f64 fold association;
// the pinned §5j guarantee is tree ≡ grouped-flat.)
TEST(HierTree, ThreeTierRunBitIdenticalToGroupedFlat) {
  const auto fed = make_fed();
  const auto factory = core::default_model_factory(fed, 99);

  auto run = [&](bool tree) {
    fl::EngineConfig engine = make_engine(3);
    std::vector<float> final_params;
    engine.on_checkpoint = [&](std::size_t,
                               const fl::EngineConfig::RunStateFactory& make) {
      final_params = make().global_params;
    };

    std::vector<std::string> lines;
    if (tree) {
      TreeHarness harness(fed, factory, /*num_aggs=*/2, /*num_workers=*/4,
                          engine);
      harness.drain_handshakes(fed.clients.size());

      hier::TreeDispatcherConfig config;
      config.work.local = engine.local;
      config.work.compression = engine.compression;
      config.num_workers = 4;
      config.recv_timeout_ms = 120000;
      config.max_update_norm = engine.max_update_norm;
      hier::TreeDispatcher dispatcher(harness.root_transports(), config);
      engine.dispatcher = &dispatcher;

      fl::FederatedTrainer trainer(fed, factory, engine);
      select::RandomSelector selector;
      const auto history = trainer.run(selector);
      for (const auto& record : history.records()) {
        lines.push_back(record_json_no_phase(record));
      }
      harness.shutdown_and_join();
      EXPECT_TRUE(harness.agg_ok_[0]);
      EXPECT_TRUE(harness.agg_ok_[1]);
    } else {
      fl::LoopbackCluster cluster(fed, factory, 4);
      fl::TransportDispatcherConfig config;
      config.work.local = engine.local;
      config.work.compression = engine.compression;
      config.recv_timeout_ms = 120000;
      config.agg_groups = 2;
      config.max_update_norm = engine.max_update_norm;
      fl::TransportDispatcher dispatcher(cluster.server_transports(), config);
      engine.dispatcher = &dispatcher;

      fl::FederatedTrainer trainer(fed, factory, engine);
      select::RandomSelector selector;
      const auto history = trainer.run(selector);
      for (const auto& record : history.records()) {
        lines.push_back(record_json_no_phase(record));
      }
    }
    return std::make_pair(lines, final_params);
  };

  const auto [flat_lines, flat_params] = run(/*tree=*/false);
  const auto [tree_lines, tree_params] = run(/*tree=*/true);

  ASSERT_EQ(tree_lines.size(), flat_lines.size());
  for (std::size_t r = 0; r < tree_lines.size(); ++r) {
    EXPECT_EQ(tree_lines[r], flat_lines[r]) << "round " << r;
  }
  ASSERT_EQ(tree_params.size(), flat_params.size());
  ASSERT_FALSE(tree_params.empty());
  EXPECT_EQ(std::memcmp(tree_params.data(), flat_params.data(),
                        flat_params.size() * sizeof(float)),
            0);
}

// Guard-rail for ROADMAP's "non-Dense partial folds" item: the mid tier
// folds Dense only, so a TopK/Int8 client update reaching it must come back
// as a clean per-client rejection — counted in the round's waste accounting
// — never a silent mis-fold into the subtree partial.
TEST(HierTree, MidTierRejectsNonDenseUpdates) {
  const auto fed = make_fed();
  const auto factory = core::default_model_factory(fed, 99);
  for (const auto kind :
       {fl::CompressionKind::TopK, fl::CompressionKind::Int8}) {
    fl::EngineConfig engine = make_engine(2);
    engine.compression.kind = kind;

    TreeHarness harness(fed, factory, /*num_aggs=*/2, /*num_workers=*/4,
                        engine);
    harness.drain_handshakes(fed.clients.size());

    hier::TreeDispatcherConfig config;
    config.work.local = engine.local;
    config.work.compression = engine.compression;
    config.num_workers = 4;
    config.recv_timeout_ms = 120000;
    config.max_update_norm = engine.max_update_norm;
    hier::TreeDispatcher dispatcher(harness.root_transports(), config);
    engine.dispatcher = &dispatcher;

    fl::FederatedTrainer trainer(fed, factory, engine);
    select::RandomSelector selector;
    const auto history = trainer.run(selector);
    harness.shutdown_and_join();

    ASSERT_FALSE(history.records().empty());
    for (const auto& record : history.records()) {
      EXPECT_GT(record.dispatched, 0u);
      EXPECT_TRUE(record.selected.empty())
          << "a non-Dense update was folded (kind "
          << static_cast<int>(kind) << ", epoch " << record.epoch << ")";
      EXPECT_EQ(record.rejected.size(), record.dispatched);
      EXPECT_EQ(record.wasted(), record.dispatched);
    }
    // Nothing ever folded, so the global model must still be bit-identical
    // to its initialization.
    const auto initial = factory().get_parameters();
    const auto& final_params = trainer.final_parameters();
    ASSERT_EQ(final_params.size(), initial.size());
    EXPECT_EQ(std::memcmp(final_params.data(), initial.data(),
                          initial.size() * sizeof(float)),
              0);
  }
}

/// Emulates one mid-tier aggregator for a single round: receives the
/// SelectNotice + TrainJobs, then settles with one chunk + trailer where
/// every client "trained" to params + 1.
void emulate_agg_round(net::Transport& transport, std::uint32_t agg_id) {
  net::Frame frame;
  ASSERT_EQ(transport.recv(&frame, 10000), net::TransportStatus::Ok);
  ASSERT_EQ(frame.type, net::MessageType::SelectNotice);
  const net::SelectNoticeMsg notice = net::decode_select_notice(frame);

  std::vector<float> params;
  for (std::size_t i = 0; i < notice.clients.size(); ++i) {
    ASSERT_EQ(transport.recv(&frame, 10000), net::TransportStatus::Ok);
    ASSERT_EQ(frame.type, net::MessageType::TrainJob);
    params = net::decode_train_job(frame).params;
  }

  net::SubtreeChunkMsg chunk;
  chunk.epoch = notice.epoch;
  chunk.agg_id = agg_id;
  chunk.offset = 0;
  const double weight = 10.0 * notice.clients.size();
  for (const float p : params) {
    chunk.data.push_back(weight * (static_cast<double>(p) + 1.0));
  }
  ASSERT_EQ(transport.send(net::encode_subtree_chunk(chunk), 10000),
            net::TransportStatus::Ok);

  net::SubtreeUpdateMsg update;
  update.epoch = notice.epoch;
  update.agg_id = agg_id;
  update.weight = weight;
  update.n_chunks = 1;
  for (const std::uint32_t c : notice.clients) {
    net::SubtreeClientStat stat;
    stat.client_id = c;
    stat.delivered = 1;
    stat.sample_count = 10;
    stat.batches = 1;
    update.stats.push_back(stat);
  }
  ASSERT_EQ(transport.send(net::encode_subtree_update(update), 10000),
            net::TransportStatus::Ok);
}

// An aggregator that dies before contributing anything is salvaged: its
// slots fail as Crash, the surviving subtree's round still commits.
TEST(HierTree, DeadAggregatorIsSalvagedNotTorn) {
  obs::set_metrics_enabled(true);
  auto live = net::make_loopback_pair();
  auto dead = net::make_loopback_pair();

  const double salvaged_before =
      obs::Registry::global().counter("hier_aggs_salvaged_total").value();

  hier::TreeDispatcherConfig config;
  config.num_workers = 4;
  config.recv_timeout_ms = 10000;
  hier::TreeDispatcher dispatcher({live.a.get(), dead.a.get()}, config);

  std::thread agg([&] { emulate_agg_round(*live.b, 0); });
  // Aggregator 1 accepts its round and then dies before contributing a
  // single chunk — the salvage case (vs the torn case after contributing).
  std::thread dying([&] {
    net::Frame frame;
    dead.b->recv(&frame, 10000);  // SelectNotice
    dead.b->recv(&frame, 10000);  // its one TrainJob
    dead.b.reset();
  });

  // client 0 -> worker 0 -> aggregator 0; client 2 -> worker 2 -> agg 1.
  std::vector<fl::TrainJobSpec> jobs(2);
  jobs[0].slot = 0;
  jobs[0].client_id = 0;
  jobs[1].slot = 1;
  jobs[1].client_id = 2;
  const std::vector<float> params = {1.0f, 2.0f, 3.0f};
  std::vector<fl::TrainOutcome> outcomes(2);
  dispatcher.execute(jobs, params, outcomes);
  agg.join();
  dying.join();

  EXPECT_TRUE(outcomes[0].delivered);
  EXPECT_TRUE(outcomes[0].pre_aggregated);
  EXPECT_EQ(outcomes[0].weight, 10.0);
  EXPECT_FALSE(outcomes[1].delivered);
  EXPECT_EQ(outcomes[1].failure, fl::FailureKind::Crash);
  EXPECT_FALSE(dispatcher.agg_alive(1));
  EXPECT_TRUE(dispatcher.agg_alive(0));

  const auto* partials = dispatcher.partials();
  ASSERT_NE(partials, nullptr);
  ASSERT_EQ(partials->size(), 1u);
  EXPECT_EQ((*partials)[0].weight, 10.0);
  EXPECT_EQ((*partials)[0].updates, 1u);
  ASSERT_EQ((*partials)[0].sum.size(), params.size());
  EXPECT_EQ((*partials)[0].sum[0], 10.0 * 2.0);  // weight * (param + 1)

  EXPECT_EQ(
      obs::Registry::global().counter("hier_aggs_salvaged_total").value(),
      salvaged_before + 1.0);
  obs::set_metrics_enabled(false);
}

// ---------------------------------------------------------------------------
// StatusParsing: the exposition server's request handling (satellite of §5j —
// the endpoint every tier now exposes)

int raw_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  return fd;
}

void raw_send(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    // MSG_NOSIGNAL: the server may legitimately respond-and-close before the
    // whole oversized request is written; EPIPE must not kill the test.
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<std::size_t>(n);
  }
}

std::string raw_read_all(int fd) {
  std::string response;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
  }
  return response;
}

class StatusParsing : public ::testing::Test {
 protected:
  StatusParsing()
      : server_(0, {.metrics_text = [] { return std::string("m 1\n"); },
                    .status_json = [] { return std::string("{\"ok\":true}"); }}) {}

  std::string request(const std::string& bytes) {
    const int fd = raw_connect(server_.port());
    raw_send(fd, bytes);
    const std::string response = raw_read_all(fd);
    ::close(fd);
    return response;
  }

  net::StatusServer server_;
};

TEST_F(StatusParsing, MalformedRequestLineGets404NotAHang) {
  const std::string response = request("NONSENSE\r\n\r\n");
  EXPECT_NE(response.find("404"), std::string::npos) << response;
}

TEST_F(StatusParsing, UnknownTargetGets404) {
  const std::string response = request("GET /nope HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("404"), std::string::npos) << response;
}

TEST_F(StatusParsing, PartialRequestAcrossPollWakeupsIsReassembled) {
  const int fd = raw_connect(server_.port());
  raw_send(fd, "GET /hea");
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  raw_send(fd, "lthz HTTP/1.0\r\n\r\n");
  const std::string response = raw_read_all(fd);
  ::close(fd);
  EXPECT_NE(response.find("200"), std::string::npos) << response;
  EXPECT_NE(response.find("ok"), std::string::npos) << response;
}

TEST_F(StatusParsing, OversizedHeadersAreBoundedAndStillServed) {
  // Far past the server's 4 KiB request cap; the read must stop at the cap
  // and the (valid) request line must still be answered.
  std::string oversized = "GET /metrics HTTP/1.0\r\n";
  oversized.append(8192, 'x');
  oversized += "\r\n\r\n";
  const std::string response = request(oversized);
  EXPECT_NE(response.find("200"), std::string::npos) << response;
  EXPECT_NE(response.find("m 1"), std::string::npos) << response;
}

TEST_F(StatusParsing, BurstOfConnectionsAllServedSerially) {
  // One-connection-at-a-time server, listen backlog 8: a burst of pending
  // peers must all get answers, just serially.
  constexpr int kBurst = 8;
  std::vector<int> fds;
  for (int i = 0; i < kBurst; ++i) fds.push_back(raw_connect(server_.port()));
  for (const int fd : fds) raw_send(fd, "GET /status HTTP/1.0\r\n\r\n");
  int served = 0;
  for (const int fd : fds) {
    const std::string response = raw_read_all(fd);
    if (response.find("200") != std::string::npos &&
        response.find("\"ok\":true") != std::string::npos) {
      ++served;
    }
    ::close(fd);
  }
  EXPECT_EQ(served, kBurst);
}

// ---------------------------------------------------------------------------
// LiveRecluster: serving liveness edges -> incremental re-cluster -> selector

TEST(LiveRecluster, MemberChurnReclustersAndBumpsCounter) {
  obs::set_metrics_enabled(true);
  const auto fed = make_fed(8);
  core::HaccsConfig config;
  const auto summaries = core::compute_summaries(fed, config);

  // 4 members (workers), member m hosts clients {c : c % 4 == m}.
  std::vector<std::vector<std::size_t>> clients_of_member(4);
  for (std::size_t c = 0; c < fed.clients.size(); ++c) {
    clients_of_member[c % 4].push_back(c);
  }

  core::HaccsSelector selector(fed, config);
  core::LiveClusterTracker tracker(summaries, clients_of_member, config);
  EXPECT_EQ(tracker.num_clients(), 8u);
  EXPECT_EQ(tracker.live_clients(), 8u);

  auto& pushes = obs::Registry::global().counter("recluster_live_total");
  const double before = pushes.value();

  // Nothing changed yet: refresh is a no-op.
  EXPECT_FALSE(tracker.refresh(selector));
  EXPECT_EQ(pushes.value(), before);

  // Member 1 dies: its 2 hosted clients depart, labels get repushed.
  tracker.on_member(1, false);
  EXPECT_EQ(tracker.live_clients(), 6u);
  EXPECT_TRUE(tracker.refresh(selector));
  EXPECT_EQ(pushes.value(), before + 1.0);
  // Labels stay full-size; departed clients fall back to singleton clusters
  // via the selector's noise remap, so no -1 survives.
  ASSERT_EQ(selector.cluster_of().size(), 8u);
  for (const int label : selector.cluster_of()) EXPECT_GE(label, 0);

  // Idempotent edge + no-churn refresh: nothing to do.
  tracker.on_member(1, false);
  EXPECT_FALSE(tracker.refresh(selector));
  EXPECT_EQ(pushes.value(), before + 1.0);

  // The member comes back: clients rejoin, one more push.
  tracker.on_member(1, true);
  EXPECT_EQ(tracker.live_clients(), 8u);
  EXPECT_TRUE(tracker.refresh(selector));
  EXPECT_EQ(pushes.value(), before + 2.0);
  obs::set_metrics_enabled(false);
}

}  // namespace
}  // namespace haccs
