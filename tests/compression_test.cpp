// Tests for src/fl/compression: top-k and int8 compressors, error feedback,
// wire sizing, and the end-to-end engine integration (compressed uplinks
// shorten slow clients' rounds without breaking learning).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "src/core/haccs_system.hpp"
#include "src/fl/compression.hpp"
#include "src/select/random_selector.hpp"

namespace haccs::fl {
namespace {

TEST(Compression, WireBytes) {
  const std::size_t n = 1000;
  EXPECT_EQ(dense_wire_bytes(n), 4000u);

  CompressionConfig none;
  EXPECT_EQ(compressed_wire_bytes(n, none), 4000u);

  CompressionConfig topk;
  topk.kind = CompressionKind::TopK;
  topk.topk_fraction = 0.1;
  EXPECT_EQ(compressed_wire_bytes(n, topk), 100u * 8u);

  CompressionConfig q8;
  q8.kind = CompressionKind::Int8;
  EXPECT_EQ(compressed_wire_bytes(n, q8), 1000u + 8u);
}

TEST(Compression, NonePassesThrough) {
  const std::vector<float> update = {1.0f, -2.0f, 0.5f};
  std::vector<float> residual;
  CompressionConfig cfg;
  const auto out = compress_update(update, cfg, residual);
  EXPECT_EQ(out.dense, update);
}

TEST(Compression, TopKKeepsLargestMagnitudes) {
  const std::vector<float> update = {0.1f, -5.0f, 0.2f, 3.0f, -0.05f,
                                     0.3f, 0.01f, -1.0f, 0.0f, 0.4f};
  std::vector<float> residual;
  CompressionConfig cfg;
  cfg.kind = CompressionKind::TopK;
  cfg.topk_fraction = 0.3;  // keep 3 of 10
  cfg.error_feedback = false;
  const auto out = compress_update(update, cfg, residual);
  std::size_t nonzero = 0;
  for (float v : out.dense) {
    if (v != 0.0f) ++nonzero;
  }
  EXPECT_EQ(nonzero, 3u);
  EXPECT_FLOAT_EQ(out.dense[1], -5.0f);
  EXPECT_FLOAT_EQ(out.dense[3], 3.0f);
  EXPECT_FLOAT_EQ(out.dense[7], -1.0f);
}

TEST(Compression, TopKRejectsBadFraction) {
  std::vector<float> residual;
  const std::vector<float> update = {1.0f};
  CompressionConfig cfg;
  cfg.kind = CompressionKind::TopK;
  cfg.topk_fraction = 0.0;
  EXPECT_THROW(compress_update(update, cfg, residual), std::invalid_argument);
}

TEST(Compression, ErrorFeedbackRecoversDroppedMass) {
  // A coordinate too small to ever be in the top-k accumulates in the
  // residual until it wins a slot — the signature property of EF.
  const std::vector<float> update = {1.0f, 0.3f};
  std::vector<float> residual;
  CompressionConfig cfg;
  cfg.kind = CompressionKind::TopK;
  cfg.topk_fraction = 0.5;  // keep 1 of 2
  double transmitted_small = 0.0;
  for (int round = 0; round < 10; ++round) {
    const auto out = compress_update(update, cfg, residual);
    transmitted_small += out.dense[1];
  }
  // Over 10 rounds the small coordinate contributed ~10 * 0.3 total signal;
  // error feedback must have shipped a decent chunk of it.
  EXPECT_GT(transmitted_small, 1.0);
}

TEST(Compression, Int8BoundedQuantizationError) {
  Rng rng(3);
  std::vector<float> update(500);
  for (auto& v : update) v = static_cast<float>(rng.normal());
  std::vector<float> residual;
  CompressionConfig cfg;
  cfg.kind = CompressionKind::Int8;
  cfg.error_feedback = false;
  const auto out = compress_update(update, cfg, residual);
  float lo = 0.0f, hi = 0.0f;
  for (float v : update) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const float step = (hi - lo) / 255.0f;
  for (std::size_t i = 0; i < update.size(); ++i) {
    EXPECT_NEAR(out.dense[i], update[i], step * 0.51f) << i;
  }
}

TEST(Compression, Int8ConstantSignalExact) {
  const std::vector<float> update(10, 2.5f);
  std::vector<float> residual;
  CompressionConfig cfg;
  cfg.kind = CompressionKind::Int8;
  const auto out = compress_update(update, cfg, residual);
  for (float v : out.dense) EXPECT_FLOAT_EQ(v, 2.5f);
}

TEST(Compression, ResidualZeroWithoutErrorFeedback) {
  const std::vector<float> update = {1.0f, 2.0f};
  std::vector<float> residual;
  CompressionConfig cfg;
  cfg.kind = CompressionKind::TopK;
  cfg.topk_fraction = 0.5;
  cfg.error_feedback = false;
  compress_update(update, cfg, residual);
  EXPECT_TRUE(residual.empty());
}

// ---- engine integration ----

TEST(Compression, EngineTrainsWithCompressedUplink) {
  data::SyntheticImageConfig gcfg;
  gcfg.classes = 4;
  gcfg.height = 8;
  gcfg.width = 8;
  gcfg.noise_stddev = 0.3;
  data::SyntheticImageGenerator gen(gcfg);
  data::PartitionConfig pcfg;
  pcfg.num_clients = 8;
  pcfg.min_samples = 40;
  pcfg.max_samples = 60;
  pcfg.test_samples = 12;
  Rng rng(7);
  const auto fed = data::partition_majority_label(gen, pcfg, rng);

  fl::EngineConfig cfg;
  cfg.rounds = 40;
  cfg.clients_per_round = 3;
  cfg.eval_every = 10;
  cfg.local.sgd.learning_rate = 0.08;
  cfg.compression.kind = CompressionKind::TopK;
  cfg.compression.topk_fraction = 0.2;
  FederatedTrainer trainer(fed, core::default_model_factory(fed, 99), cfg);
  select::RandomSelector selector;
  const auto history = trainer.run(selector);
  EXPECT_GT(history.best_accuracy(), 0.5);  // still learns through top-k

  // Compressed uplink strictly reduces per-client latency vs dense.
  fl::EngineConfig dense_cfg = cfg;
  dense_cfg.compression.kind = CompressionKind::None;
  FederatedTrainer dense_trainer(fed, core::default_model_factory(fed, 99),
                                 dense_cfg);
  for (std::size_t i = 0; i < fed.num_clients(); ++i) {
    EXPECT_LT(trainer.client_latency(i), dense_trainer.client_latency(i));
  }
}

}  // namespace
}  // namespace haccs::fl
