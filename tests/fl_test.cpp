// Tests for src/fl: local training, evaluation, training history / TTA, and
// the round engine's invariants (determinism, monotone simulated time,
// selection constraints, FedAvg aggregation).
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/error.hpp"
#include "src/data/partition.hpp"
#include "src/fl/engine.hpp"
#include "src/fl/history.hpp"
#include "src/select/random_selector.hpp"

namespace haccs::fl {
namespace {

data::SyntheticImageGenerator tiny_gen(std::size_t classes = 4) {
  data::SyntheticImageConfig cfg;
  cfg.classes = classes;
  cfg.height = 6;
  cfg.width = 6;
  cfg.noise_stddev = 0.2;
  return data::SyntheticImageGenerator(cfg);
}

data::FederatedDataset tiny_fed(std::size_t clients = 8) {
  auto gen = tiny_gen();
  data::PartitionConfig cfg;
  cfg.num_clients = clients;
  cfg.min_samples = 30;
  cfg.max_samples = 50;
  cfg.test_samples = 12;
  Rng rng(77);
  return data::partition_majority_label(gen, cfg, rng);
}

std::function<nn::Sequential()> tiny_model_factory(std::size_t classes = 4) {
  return [classes] {
    Rng rng(5);
    nn::Sequential model;
    model.add(std::make_unique<nn::Flatten>());
    model.add(std::make_unique<nn::Dense>(36, 16, rng));
    model.add(std::make_unique<nn::ReLU>());
    model.add(std::make_unique<nn::Dense>(16, classes, rng));
    return model;
  };
}

TEST(TrainLocal, ReducesLossOnLocalData) {
  const auto fed = tiny_fed(2);
  auto model = tiny_model_factory()();
  Rng rng(1);
  LocalTrainConfig cfg;
  cfg.epochs = 20;
  cfg.sgd.learning_rate = 0.05;
  const auto result = train_local(model, fed.clients[0].train, cfg, rng);
  EXPECT_GT(result.batches, 0u);
  EXPECT_LT(result.final_loss, std::log(4.0));  // better than uniform
}

TEST(TrainLocal, RejectsEmptyDatasetAndBadConfig) {
  data::Dataset empty({1, 2, 2}, 3);
  auto model = tiny_model_factory()();
  Rng rng(1);
  EXPECT_THROW(train_local(model, empty, {}, rng), std::invalid_argument);

  const auto fed = tiny_fed(2);
  LocalTrainConfig zero_batch;
  zero_batch.batch_size = 0;
  EXPECT_THROW(train_local(model, fed.clients[0].train, zero_batch, rng),
               std::invalid_argument);
}

TEST(Evaluate, UniformModelNearChance) {
  const auto fed = tiny_fed(2);
  auto model = tiny_model_factory()();
  // Zero all parameters: logits all equal => argmax is class 0 everywhere.
  std::vector<float> zeros(model.parameter_count(), 0.0f);
  model.set_parameters(zeros);
  const auto result = evaluate(model, fed.clients[0].test);
  EXPECT_NEAR(result.loss, std::log(4.0), 1e-4);
  EXPECT_EQ(result.samples, fed.clients[0].test.size());
}

TEST(Evaluate, EmptyDatasetGivesZeros) {
  data::Dataset empty({1, 2, 2}, 3);
  auto model = tiny_model_factory()();
  const auto result = evaluate(model, empty);
  EXPECT_EQ(result.samples, 0u);
  EXPECT_DOUBLE_EQ(result.accuracy, 0.0);
}

TEST(History, TimeToAccuracyFindsFirstCrossing) {
  TrainingHistory h;
  h.add({.epoch = 0, .sim_time_s = 10.0, .global_accuracy = 0.2});
  h.add({.epoch = 1, .sim_time_s = 20.0, .global_accuracy = 0.55});
  h.add({.epoch = 2, .sim_time_s = 30.0, .global_accuracy = 0.52});
  h.add({.epoch = 3, .sim_time_s = 40.0, .global_accuracy = 0.9});
  EXPECT_DOUBLE_EQ(h.time_to_accuracy(0.5), 20.0);
  EXPECT_DOUBLE_EQ(h.time_to_accuracy(0.9), 40.0);
  EXPECT_EQ(h.time_to_accuracy(0.95), kNeverReached);
  EXPECT_EQ(h.epochs_to_accuracy(0.5), 1u);
  EXPECT_DOUBLE_EQ(h.best_accuracy(), 0.9);
  EXPECT_DOUBLE_EQ(h.final_accuracy(), 0.9);
  EXPECT_DOUBLE_EQ(h.total_time(), 40.0);
}

TEST(History, RejectsNonMonotoneTime) {
  TrainingHistory h;
  h.add({.epoch = 0, .sim_time_s = 10.0});
  EXPECT_THROW(h.add({.epoch = 1, .sim_time_s = 5.0}), InternalError);
}

TEST(History, SelectionCounts) {
  TrainingHistory h;
  h.add({.epoch = 0, .sim_time_s = 1.0, .selected = {0, 2}});
  h.add({.epoch = 1, .sim_time_s = 2.0, .selected = {2}});
  const auto counts = h.selection_counts(3);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 0u);
  EXPECT_EQ(counts[2], 2u);
}

TEST(History, FormatTta) {
  EXPECT_EQ(format_tta(kNeverReached), "never");
  EXPECT_EQ(format_tta(12.345), "12.3");
}

TEST(Engine, ValidatesConfig) {
  const auto fed = tiny_fed(4);
  EXPECT_THROW(FederatedTrainer(fed, tiny_model_factory(),
                                {.rounds = 1, .clients_per_round = 0}),
               std::invalid_argument);
  EXPECT_THROW(FederatedTrainer(fed, tiny_model_factory(),
                                {.rounds = 1, .clients_per_round = 5}),
               std::invalid_argument);
}

TEST(Engine, ClientViewHasLatenciesAndSamples) {
  const auto fed = tiny_fed(6);
  FederatedTrainer trainer(fed, tiny_model_factory(),
                           {.rounds = 1, .clients_per_round = 2});
  const auto view = trainer.make_client_view();
  ASSERT_EQ(view.size(), 6u);
  for (std::size_t i = 0; i < view.size(); ++i) {
    EXPECT_EQ(view[i].id, i);
    EXPECT_GT(view[i].latency_s, 0.0);
    EXPECT_EQ(view[i].num_samples, fed.clients[i].train.size());
    EXPECT_TRUE(view[i].available);
  }
}

TEST(Engine, SameSeedSameProfiles) {
  const auto fed = tiny_fed(6);
  FederatedTrainer t1(fed, tiny_model_factory(), {.rounds = 1, .clients_per_round = 2, .seed = 9});
  FederatedTrainer t2(fed, tiny_model_factory(), {.rounds = 1, .clients_per_round = 2, .seed = 9});
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(t1.profiles()[i].compute_multiplier,
                     t2.profiles()[i].compute_multiplier);
    EXPECT_DOUBLE_EQ(t1.profiles()[i].bandwidth_mbps,
                     t2.profiles()[i].bandwidth_mbps);
  }
  FederatedTrainer t3(fed, tiny_model_factory(), {.rounds = 1, .clients_per_round = 2, .seed = 10});
  bool any_diff = false;
  for (std::size_t i = 0; i < 6; ++i) {
    any_diff |= t1.profiles()[i].bandwidth_mbps != t3.profiles()[i].bandwidth_mbps;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Engine, RunProducesOneRecordPerRound) {
  const auto fed = tiny_fed(6);
  EngineConfig cfg;
  cfg.rounds = 8;
  cfg.clients_per_round = 3;
  cfg.eval_every = 4;
  FederatedTrainer trainer(fed, tiny_model_factory(), cfg);
  select::RandomSelector selector;
  const auto history = trainer.run(selector);
  ASSERT_EQ(history.records().size(), 8u);
  double prev = 0.0;
  for (const auto& r : history.records()) {
    EXPECT_GE(r.sim_time_s, prev);
    prev = r.sim_time_s;
    EXPECT_LE(r.selected.size(), 3u);
    EXPECT_GT(r.selected.size(), 0u);
  }
}

TEST(Engine, DeterministicAcrossRuns) {
  const auto fed = tiny_fed(6);
  EngineConfig cfg;
  cfg.rounds = 6;
  cfg.clients_per_round = 2;
  cfg.eval_every = 3;
  cfg.seed = 21;
  FederatedTrainer trainer(fed, tiny_model_factory(), cfg);
  select::RandomSelector s1, s2;
  const auto h1 = trainer.run(s1);
  const auto h2 = trainer.run(s2);
  ASSERT_EQ(h1.records().size(), h2.records().size());
  for (std::size_t i = 0; i < h1.records().size(); ++i) {
    EXPECT_EQ(h1.records()[i].selected, h2.records()[i].selected);
    EXPECT_DOUBLE_EQ(h1.records()[i].global_accuracy,
                     h2.records()[i].global_accuracy);
    EXPECT_DOUBLE_EQ(h1.records()[i].sim_time_s, h2.records()[i].sim_time_s);
  }
}

TEST(Engine, RespectsDropoutMask) {
  const auto fed = tiny_fed(6);
  EngineConfig cfg;
  cfg.rounds = 5;
  cfg.clients_per_round = 2;
  FederatedTrainer trainer(fed, tiny_model_factory(), cfg);
  // Clients 0-2 permanently dropped: they must never be selected.
  const auto schedule = sim::make_group_dropout({0, 0, 0, 1, 1, 1}, {0}, 0);
  select::RandomSelector selector;
  const auto history = trainer.run(selector, *schedule);
  for (const auto& r : history.records()) {
    for (std::size_t id : r.selected) EXPECT_GE(id, 3u);
  }
}

TEST(Engine, TrainingImprovesAccuracy) {
  const auto fed = tiny_fed(6);
  EngineConfig cfg;
  cfg.rounds = 60;
  cfg.clients_per_round = 3;
  cfg.eval_every = 10;
  cfg.local.epochs = 2;
  cfg.local.sgd.learning_rate = 0.1;
  FederatedTrainer trainer(fed, tiny_model_factory(), cfg);
  select::RandomSelector selector;
  const auto history = trainer.run(selector);
  // 4 classes, skewed: chance is 0.25; training must clearly beat it.
  EXPECT_GT(history.best_accuracy(), 0.5);
  EXPECT_EQ(trainer.final_per_client_accuracy().size(), 6u);
}

TEST(Engine, RoundDurationIsSelectedStragglerLatency) {
  const auto fed = tiny_fed(5);
  EngineConfig cfg;
  cfg.rounds = 3;
  cfg.clients_per_round = 2;
  FederatedTrainer trainer(fed, tiny_model_factory(), cfg);
  select::RandomSelector selector;
  const auto history = trainer.run(selector);
  for (const auto& r : history.records()) {
    double max_latency = 0.0;
    for (std::size_t id : r.selected) {
      max_latency =
          std::max(max_latency, trainer.client_latency_at(id, r.epoch));
    }
    EXPECT_DOUBLE_EQ(r.round_duration_s, max_latency);
  }
}

TEST(Engine, LatencyJitterIsDeterministicAndBounded) {
  const auto fed = tiny_fed(4);
  EngineConfig cfg;
  cfg.rounds = 2;
  cfg.clients_per_round = 2;
  cfg.latency_jitter_sigma = 0.2;
  FederatedTrainer trainer(fed, tiny_model_factory(), cfg);
  // Deterministic: the same (epoch, client) always yields the same value.
  EXPECT_DOUBLE_EQ(trainer.client_latency_at(1, 3),
                   trainer.client_latency_at(1, 3));
  // Varies across epochs and stays positive.
  bool varies = false;
  for (std::size_t e = 0; e < 10; ++e) {
    const double l = trainer.client_latency_at(1, e);
    EXPECT_GT(l, 0.0);
    varies |= l != trainer.client_latency(1);
  }
  EXPECT_TRUE(varies);

  // Sigma 0 disables jitter entirely.
  cfg.latency_jitter_sigma = 0.0;
  FederatedTrainer no_jitter(fed, tiny_model_factory(), cfg);
  for (std::size_t e = 0; e < 5; ++e) {
    EXPECT_DOUBLE_EQ(no_jitter.client_latency_at(2, e),
                     no_jitter.client_latency(2));
  }
}

}  // namespace
}  // namespace haccs::fl
