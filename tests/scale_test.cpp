// Tests for the million-client selection pipeline (DESIGN.md §5h):
// sketches (count-min, projections, Hellinger estimates), the NeighborIndex
// seam, LSH candidate pruning, sharded clustering with the
// cluster-of-clusters merge, and incremental re-clustering under churn.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>

#include "src/clustering/dbscan.hpp"
#include "src/clustering/neighbor_index.hpp"
#include "src/clustering/optics.hpp"
#include "src/common/rng.hpp"
#include "src/core/haccs_selector.hpp"
#include "src/scale/incremental.hpp"
#include "src/scale/scale.hpp"
#include "src/stats/sketch.hpp"

namespace haccs::scale {
namespace {

constexpr std::size_t kDim = 8;

// A sketch row: the √-probability vector of a distribution concentrated on
// class `label` with `spread` mass leaked onto the next class. Rows of the
// same label are close under the sketch Hellinger; different labels are
// nearly maximally distant.
std::vector<float> labeled_row(std::size_t label, double spread = 0.0) {
  std::vector<double> p(kDim, 0.0);
  p[label % kDim] = 1.0 - spread;
  p[(label + 1) % kDim] = spread;
  std::vector<float> out(kDim);
  for (std::size_t i = 0; i < kDim; ++i) {
    out[i] = static_cast<float>(std::sqrt(p[i]));
  }
  return out;
}

// Three well-separated planted clusters, `per` members each, with a small
// per-member spread so rows are distinct but tightly grouped.
SketchMatrix planted_clusters(std::size_t per, double max_spread = 0.02) {
  SketchMatrix m(kDim);
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t i = 0; i < per; ++i) {
      const double spread =
          max_spread * static_cast<double>(i) / std::max<std::size_t>(per, 1);
      m.append(labeled_row(c * 3, spread));
    }
  }
  return m;
}

ExactDistanceFn exact_of(const SketchMatrix& m) {
  return [&m](std::size_t i, std::size_t j) { return sketch_distance(m, i, j); };
}

ClusterFn dbscan_fn(double eps = 0.3, std::size_t min_pts = 2) {
  return [eps, min_pts](const clustering::NeighborIndex& index) {
    return clustering::dbscan(index, {.eps = eps, .min_pts = min_pts});
  };
}

// Canonical form of a labeling: the set of non-noise member sets.
std::set<std::set<std::size_t>> partition_of(const std::vector<int>& labels) {
  std::map<int, std::set<std::size_t>> by_label;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] >= 0) by_label[labels[i]].insert(i);
  }
  std::set<std::set<std::size_t>> out;
  for (auto& [l, members] : by_label) out.insert(members);
  return out;
}

// ---- sketches ----

TEST(SketchMatrix, AppendAssignRow) {
  SketchMatrix m(3);
  EXPECT_EQ(m.rows(), 0u);
  const std::vector<float> a{1.0f, 2.0f, 3.0f};
  EXPECT_EQ(m.append(a), 0u);
  EXPECT_EQ(m.rows(), 1u);
  EXPECT_FLOAT_EQ(m.row(0)[1], 2.0f);
  const std::vector<float> b{4.0f, 5.0f, 6.0f};
  m.assign_row(0, b);
  EXPECT_FLOAT_EQ(m.row(0)[0], 4.0f);
  EXPECT_THROW(m.append(std::vector<float>{1.0f}), std::invalid_argument);
  EXPECT_THROW(m.assign_row(1, b), std::out_of_range);
  EXPECT_THROW(SketchMatrix(0), std::invalid_argument);
}

TEST(CountMin, NeverUnderestimatesAndBoundsOverestimate) {
  stats::CountMinSketch sketch(/*width=*/64, /*depth=*/4);
  Rng rng(11);
  std::map<std::uint64_t, double> truth;
  for (int i = 0; i < 400; ++i) {
    const std::uint64_t index = rng.uniform_index(10'000);
    const double w = 1.0 + rng.uniform();
    truth[index] += w;
    sketch.add(index, w);
  }
  // Point estimates never undershoot; the e/width overestimate bound holds
  // with probability 1 - e^-depth per query, so allow a small tail.
  const double bound = (std::exp(1.0) / 64.0) * sketch.total();
  std::size_t exceeded = 0;
  for (const auto& [index, count] : truth) {
    const double est = sketch.estimate(index);
    ASSERT_GE(est, count - 1e-9);
    if (est - count > bound) ++exceeded;
  }
  EXPECT_LE(exceeded, truth.size() / 20);
  EXPECT_THROW(sketch.add(1, -1.0), std::invalid_argument);
  EXPECT_THROW(stats::CountMinSketch(0, 4), std::invalid_argument);
}

TEST(CountMin, MergeMatchesCombinedStream) {
  stats::CountMinSketch a(32, 3), b(32, 3), combined(32, 3);
  for (std::uint64_t i = 0; i < 50; ++i) {
    a.add(i, 2.0);
    combined.add(i, 2.0);
  }
  for (std::uint64_t i = 25; i < 75; ++i) {
    b.add(i, 1.0);
    combined.add(i, 1.0);
  }
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.total(), combined.total());
  for (std::uint64_t i = 0; i < 75; ++i) {
    EXPECT_DOUBLE_EQ(a.estimate(i), combined.estimate(i));
  }
  stats::CountMinSketch other(16, 3);
  EXPECT_THROW(a.merge(other), std::invalid_argument);
}

TEST(SketchHellinger, ExactWhenNativeDimensionFits) {
  // Identity embedding: class count <= sketch budget, so the sketch-space
  // estimate must equal the true Hellinger distance bit-for-float-bit.
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> p(6), q(6);
    for (auto& v : p) v = rng.uniform();
    for (auto& v : q) v = rng.uniform();
    const auto ep = stats::project_embedding(stats::sqrt_embedding(p), 16, 1);
    const auto eq = stats::project_embedding(stats::sqrt_embedding(q), 16, 1);
    const double estimate = stats::hellinger_from_embeddings(ep, eq);
    const double exact = stats::hellinger_distance(p, q);
    EXPECT_NEAR(estimate, exact, 1e-6);
  }
}

TEST(SketchHellinger, BoundedErrorUnderProjection) {
  // Native dimension 256 squeezed into 64 buckets: the signed-hash
  // projection preserves L2 in expectation, so the Hellinger estimate must
  // track the exact distance with a modest error.
  Rng rng(17);
  double worst = 0.0, total_err = 0.0;
  constexpr int kTrials = 60;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<double> p(256, 0.0), q(256, 0.0);
    for (int k = 0; k < 12; ++k) {
      p[rng.uniform_index(256)] += rng.uniform();
      q[rng.uniform_index(256)] += rng.uniform();
    }
    const auto ep =
        stats::project_embedding(stats::sqrt_embedding(p), 64, 99);
    const auto eq =
        stats::project_embedding(stats::sqrt_embedding(q), 64, 99);
    const double estimate = stats::hellinger_from_embeddings(ep, eq);
    const double exact = stats::hellinger_distance(p, q);
    const double err = std::abs(estimate - exact);
    worst = std::max(worst, err);
    total_err += err;
  }
  EXPECT_LT(total_err / kTrials, 0.10);
  EXPECT_LT(worst, 0.30);
}

TEST(SketchHellinger, ProjectAddMatchesFlatProjection) {
  // project_add over (index, value) pairs is the same signed-hash scheme as
  // project_embedding on the materialized vector.
  std::vector<double> v(100, 0.0);
  v[3] = 0.5;
  v[42] = 1.25;
  v[99] = 0.25;
  const auto flat = stats::project_embedding(v, 16, 7);
  std::vector<float> incremental(16, 0.0f);
  for (std::size_t i = 0; i < v.size(); ++i) {
    stats::project_add(incremental, i, v[i], 7);
  }
  for (std::size_t b = 0; b < 16; ++b) {
    EXPECT_FLOAT_EQ(incremental[b], flat[b]);
  }
}

// ---- NeighborIndex seam ----

TEST(NeighborIndexSeam, SparseWithAllPairsMatchesDense) {
  // A sparse graph holding every pair is informationally identical to the
  // dense matrix: OPTICS and DBSCAN must produce identical labels through
  // either implementation of the seam.
  const std::vector<double> xs{0.0, 0.1, 0.2, 0.9, 1.0, 1.1, 5.0};
  const auto matrix = clustering::DistanceMatrix::build(
      xs.size(), [&](std::size_t i, std::size_t j) {
        return std::abs(xs[i] - xs[j]);
      });
  clustering::SparseNeighborGraph graph(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    for (std::size_t j = i + 1; j < xs.size(); ++j) {
      graph.add_edge(i, j, std::abs(xs[i] - xs[j]));
    }
  }
  graph.finalize();
  const clustering::DenseNeighborIndex dense(matrix);

  EXPECT_EQ(graph.neighbors_within(0, 0.25), dense.neighbors_within(0, 0.25));
  std::vector<double> scratch;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_DOUBLE_EQ(graph.kth_nearest_distance(i, 2, scratch),
                     dense.kth_nearest_distance(i, 2, scratch));
  }

  const clustering::DbscanConfig db{.eps = 0.25, .min_pts = 2};
  EXPECT_EQ(clustering::dbscan(graph, db), clustering::dbscan(dense, db));

  const clustering::OpticsConfig op{.min_pts = 2, .max_eps = 2.0};
  const auto dense_result = clustering::optics(dense, op);
  const auto sparse_result = clustering::optics(graph, op);
  EXPECT_EQ(dense_result.ordering, sparse_result.ordering);
  EXPECT_EQ(clustering::extract_auto(dense_result, dense, 2),
            clustering::extract_auto(sparse_result, graph, 2));
}

TEST(NeighborIndexSeam, SparseFallbacksForUnknownPairs) {
  clustering::SparseNeighborGraph graph(4);
  graph.add_edge(0, 1, 0.5);
  graph.finalize();
  EXPECT_DOUBLE_EQ(graph.distance(0, 1), 0.5);
  // Unknown pair, no estimator: +inf, i.e. "not a neighbor".
  EXPECT_TRUE(std::isinf(graph.distance(0, 2)));
  // With fewer than k known neighbors the core distance is +inf (not core).
  std::vector<double> scratch;
  EXPECT_TRUE(std::isinf(graph.kth_nearest_distance(0, 2, scratch)));
  // An estimator answers the pruned pairs instead.
  graph.set_estimator([](std::size_t, std::size_t) { return 0.9; });
  EXPECT_DOUBLE_EQ(graph.distance(0, 2), 0.9);
  EXPECT_DOUBLE_EQ(graph.distance(0, 1), 0.5);  // exact edge still wins
}

// ---- sharded clustering ----

TEST(ClusterSharded, SingleShardIsIdentityMerge) {
  // One shard covering everything routes the exact distances through the
  // seam and skips the merge: labels equal clustering the dense matrix
  // directly — the degenerate-merge guarantee the oracle leans on.
  const auto sketches = planted_clusters(6);
  const auto n = sketches.rows();
  ScaleConfig config;
  config.shard_size = n + 1;
  config.exact_cutoff = n + 1;
  ScaleStats stats;
  const auto labels = cluster_sharded(sketches, exact_of(sketches),
                                      dbscan_fn(), config, &stats);

  const auto matrix = clustering::DistanceMatrix::build(
      n, [&](std::size_t i, std::size_t j) {
        return sketch_distance(sketches, i, j);
      });
  const auto direct = dbscan_fn()(clustering::DenseNeighborIndex(matrix));
  EXPECT_EQ(labels, direct);
  EXPECT_EQ(stats.shards, 1u);
  EXPECT_EQ(stats.merge_inputs, 0u);  // identity merge builds no reps
  EXPECT_EQ(stats.exact_distances, n * (n - 1) / 2);
}

TEST(ClusterSharded, ShardedMatchesExactOnSeparatedClusters) {
  // 3 planted clusters of 20 split across shards of 12: the merge must
  // reunify the per-shard fragments into the same partition the exact
  // single-shot clustering finds.
  const auto sketches = planted_clusters(20);
  ScaleConfig config;
  config.shard_size = 12;
  config.exact_cutoff = 12;
  ScaleStats stats;
  const auto sharded = cluster_sharded(sketches, exact_of(sketches),
                                       dbscan_fn(), config, &stats);
  ScaleConfig one_shot;
  one_shot.shard_size = sketches.rows() + 1;
  one_shot.exact_cutoff = sketches.rows() + 1;
  const auto exact = cluster_sharded(sketches, exact_of(sketches),
                                     dbscan_fn(), one_shot, nullptr);
  EXPECT_EQ(partition_of(sharded), partition_of(exact));
  EXPECT_EQ(stats.shards, 5u);
  EXPECT_GE(stats.merge_inputs, 3u);
}

TEST(ClusterSharded, AnnPrunedShardsStillRecoverPlantedClusters) {
  // exact_cutoff below the shard size forces the LSH candidate graph path;
  // planted structure must survive the pruning.
  const auto sketches = planted_clusters(30);
  ScaleConfig config;
  config.shard_size = 45;
  config.exact_cutoff = 8;
  ScaleStats stats;
  const auto labels = cluster_sharded(sketches, exact_of(sketches),
                                      dbscan_fn(), config, &stats);
  EXPECT_GT(stats.candidate_pairs, 0u);
  // Pruning must have evaluated fewer exact distances than all pairs.
  const std::size_t n = sketches.rows();
  EXPECT_LT(stats.exact_distances, n * (n - 1) / 2);
  // Co-membership: each planted cluster ends up together, clusters apart.
  for (std::size_t c = 0; c < 3; ++c) {
    const int label = labels[c * 30];
    EXPECT_GE(label, 0);
    for (std::size_t i = 1; i < 30; ++i) {
      EXPECT_EQ(labels[c * 30 + i], label) << "member " << i << " of " << c;
    }
  }
  EXPECT_NE(labels[0], labels[30]);
  EXPECT_NE(labels[30], labels[60]);
}

TEST(ClusterSharded, AllIdenticalSketchesFormOneCluster) {
  // Degenerate input: every client identical. All LSH keys collide into one
  // oversized bucket; the bounded successor window must still chain the
  // points into a single cluster without materializing all pairs.
  SketchMatrix sketches(kDim);
  for (int i = 0; i < 200; ++i) sketches.append(labeled_row(0));
  ScaleConfig config;
  config.shard_size = 200;
  config.exact_cutoff = 8;
  config.bucket_window = 4;
  ScaleStats stats;
  const auto labels = cluster_sharded(sketches, exact_of(sketches),
                                      dbscan_fn(), config, &stats);
  for (int label : labels) EXPECT_EQ(label, 0);
  EXPECT_LT(stats.candidate_pairs, 200u * 199u / 2u);
}

TEST(MergeShards, UnmergeableShardClustersKeepTheirMembers) {
  // Two shards, one tight cluster each, far apart: the merge's own DBSCAN
  // sees two mutually-distant representatives and calls both noise. The
  // members must keep two distinct clusters — not collapse to noise.
  SketchMatrix sketches(kDim);
  for (int i = 0; i < 4; ++i) sketches.append(labeled_row(0));
  for (int i = 0; i < 4; ++i) sketches.append(labeled_row(4));
  std::vector<ShardClustering> shards(2);
  shards[0].members = {0, 1, 2, 3};
  shards[0].labels = {0, 0, 0, 0};
  shards[1].members = {4, 5, 6, 7};
  shards[1].labels = {0, 0, 0, 0};
  ScaleConfig config;
  const auto global =
      merge_shards(sketches, shards, dbscan_fn(), config, nullptr);
  EXPECT_GE(global[0], 0);
  EXPECT_GE(global[4], 0);
  EXPECT_NE(global[0], global[4]);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(global[i], global[0]);
  for (std::size_t i = 4; i < 8; ++i) EXPECT_EQ(global[i], global[4]);
}

TEST(MergeShards, ShardNoiseStaysNoiseAndEmptyShardsIgnored) {
  SketchMatrix sketches(kDim);
  for (int i = 0; i < 5; ++i) sketches.append(labeled_row(0));
  std::vector<ShardClustering> shards(3);
  shards[0].members = {0, 1};
  shards[0].labels = {0, 0};
  // Shard 1 is empty; shard 2 has one clustered pair and one noise point.
  shards[2].members = {2, 3, 4};
  shards[2].labels = {0, 0, -1};
  ScaleConfig config;
  const auto global =
      merge_shards(sketches, shards, dbscan_fn(), config, nullptr);
  EXPECT_EQ(global[4], -1);
  EXPECT_GE(global[0], 0);
  // Identical sketches: the two shard clusters merge into one.
  EXPECT_EQ(global[0], global[2]);
}

// ---- incremental re-clustering ----

// Convenience: an incremental clusterer whose exact distance is the sketch
// distance over its own (live) rows.
struct IncrementalFixture {
  std::unique_ptr<IncrementalClusterer> inc;

  explicit IncrementalFixture(ScaleConfig config) {
    // Two-phase init: the callback needs the object's address, which is
    // stable behind the unique_ptr.
    inc = std::make_unique<IncrementalClusterer>(
        kDim,
        [this](std::size_t i, std::size_t j) {
          return sketch_distance(inc->sketches(), i, j);
        },
        dbscan_fn(), config);
  }
};

TEST(Incremental, JoinLeaveChurnMatchesFullRebuild) {
  ScaleConfig config;
  config.shard_size = 16;
  config.exact_cutoff = 16;
  config.dirty_threshold = 0.0;  // every churn batch recomputes
  IncrementalFixture fx(config);
  auto& inc = *fx.inc;

  std::vector<std::size_t> ids;
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t i = 0; i < 15; ++i) {
      ids.push_back(inc.add_client(labeled_row(c * 3, 0.01 * (i % 5))));
    }
  }
  inc.rebuild();
  EXPECT_EQ(inc.size(), 45u);
  EXPECT_EQ(inc.cluster_count(), 3u);

  // Churn: leaves from each cluster, joins into existing clusters, and an
  // update that moves a client between clusters.
  inc.remove_client(ids[0]);
  inc.remove_client(ids[16]);
  inc.remove_client(ids[31]);
  for (std::size_t c = 0; c < 3; ++c) {
    inc.add_client(labeled_row(c * 3, 0.015));
  }
  inc.update_client(ids[1], labeled_row(3, 0.005));  // cluster 0 -> cluster 1

  ASSERT_TRUE(inc.recompute_if_dirty());
  const auto incremental_labels = inc.labels();

  // A full rebuild on the same state must agree exactly: clean shards'
  // cached clusterings are what a recompute would produce, and the merge is
  // deterministic.
  inc.rebuild();
  EXPECT_EQ(inc.labels(), incremental_labels);

  // The moved client really did land with its new cluster.
  EXPECT_EQ(inc.label_of(ids[1]), inc.label_of(ids[17]));
}

TEST(Incremental, DirtinessThresholdGatesRecompute) {
  ScaleConfig config;
  config.shard_size = 64;
  config.exact_cutoff = 64;
  config.dirty_threshold = 0.2;
  IncrementalFixture fx(config);
  auto& inc = *fx.inc;
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < 20; ++i) {
    ids.push_back(inc.add_client(labeled_row(i % 2 ? 0 : 4, 0.01)));
  }
  inc.rebuild();
  EXPECT_DOUBLE_EQ(inc.dirty_fraction(), 0.0);
  const std::size_t recomputes_before = inc.stats().shards;

  // 3 churn ops over 20-21 clients: ~15% dirty, below the 20% threshold.
  inc.add_client(labeled_row(0, 0.02));
  inc.update_client(ids[0], labeled_row(0, 0.03));
  inc.remove_client(ids[1]);
  EXPECT_LT(inc.dirty_fraction(), 0.2);
  EXPECT_FALSE(inc.recompute_if_dirty());
  EXPECT_EQ(inc.stats().shards, recomputes_before);

  // Two more ops cross the threshold.
  inc.remove_client(ids[2]);
  inc.remove_client(ids[3]);
  EXPECT_TRUE(inc.recompute_if_dirty());
  EXPECT_DOUBLE_EQ(inc.dirty_fraction(), 0.0);
}

TEST(Incremental, InterimAssignmentUsesNearestCentroidWithinRadius) {
  ScaleConfig config;
  config.assign_radius = 0.25;
  IncrementalFixture fx(config);
  auto& inc = *fx.inc;
  std::vector<std::size_t> a_ids, b_ids;
  for (std::size_t i = 0; i < 5; ++i) {
    a_ids.push_back(inc.add_client(labeled_row(0, 0.01)));
    b_ids.push_back(inc.add_client(labeled_row(4, 0.01)));
  }
  inc.rebuild();
  ASSERT_EQ(inc.cluster_count(), 2u);

  // A joiner near cluster A inherits its label immediately (no recompute).
  const std::size_t near_a = inc.add_client(labeled_row(0, 0.02));
  EXPECT_EQ(inc.label_of(near_a), inc.label_of(a_ids[0]));
  // A joiner far from every centroid opens a fresh singleton cluster.
  const std::size_t loner = inc.add_client(labeled_row(2));
  EXPECT_GE(inc.label_of(loner), static_cast<int>(2));
  EXPECT_NE(inc.label_of(loner), inc.label_of(a_ids[0]));
  EXPECT_NE(inc.label_of(loner), inc.label_of(b_ids[0]));
}

TEST(Incremental, RemovedIdsAreRecycledAndRejected) {
  ScaleConfig config;
  IncrementalFixture fx(config);
  auto& inc = *fx.inc;
  const auto a = inc.add_client(labeled_row(0));
  const auto b = inc.add_client(labeled_row(4));
  (void)b;
  inc.remove_client(a);
  EXPECT_FALSE(inc.alive(a));
  EXPECT_EQ(inc.label_of(a), -1);
  EXPECT_THROW(inc.remove_client(a), std::invalid_argument);
  EXPECT_THROW(inc.update_client(a, labeled_row(1)), std::invalid_argument);
  // The freed row id is reused.
  const auto c = inc.add_client(labeled_row(1));
  EXPECT_EQ(c, a);
  EXPECT_TRUE(inc.alive(c));
}

}  // namespace
}  // namespace haccs::scale

// ---- core integration: the scale toggle ----

namespace haccs::core {
namespace {

std::vector<ClientSummary> response_summaries(
    const std::vector<std::vector<double>>& count_rows) {
  std::vector<ClientSummary> out;
  for (const auto& counts : count_rows) {
    ClientSummary s;
    s.kind = stats::SummaryKind::Response;
    s.response = stats::ResponseSummary(counts.size());
    for (std::size_t b = 0; b < counts.size(); ++b) {
      s.response.label_counts.add_count(b, counts[b]);
    }
    out.push_back(std::move(s));
  }
  return out;
}

TEST(ScaleToggle, SingleShardScalePathMatchesExactLabels) {
  // Two label archetypes plus one outlier. The scale path with one shard
  // must reproduce the exact pipeline's labels identically — the
  // runtime-toggle guarantee, also enforced per-scenario by the fuzzer's
  // diff_scale oracle.
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 6; ++i) rows.push_back({40.0 + i, 1.0, 0.0, 0.0});
  for (int i = 0; i < 6; ++i) rows.push_back({0.0, 1.0, 30.0 + i, 5.0});
  rows.push_back({1.0, 1.0, 1.0, 50.0});
  const auto summaries = response_summaries(rows);

  HaccsConfig config;
  const auto exact = cluster_distances(
      summary_distances(summaries, config.response_distance), config);

  HaccsConfig scaled = config;
  scaled.scale.enabled = true;
  scaled.scale.shard_size = summaries.size() + 1;
  scaled.scale.exact_cutoff = summaries.size() + 1;
  scale::ScaleStats stats;
  EXPECT_EQ(cluster_summaries_scaled(summaries, scaled, &stats), exact);
  EXPECT_EQ(stats.shards, 1u);
}

TEST(ScaleToggle, ResponseEmbeddingIsExactWithinBudget) {
  const auto summaries = response_summaries(
      {{10.0, 0.0, 2.0, 0.0}, {0.0, 7.0, 0.0, 7.0}});
  const auto ea = summary_embedding(summaries[0], 16, 1);
  const auto eb = summary_embedding(summaries[1], 16, 1);
  const double estimate = stats::hellinger_from_embeddings(ea, eb);
  const double exact = ClientSummary::distance(summaries[0], summaries[1]);
  EXPECT_NEAR(estimate, exact, 1e-6);
}

TEST(ScaleToggle, SelectorReclustersIncrementallyUnderDrift) {
  // End-to-end: a selector on the scale path survives construction,
  // selection, and the recluster cadence, and its clusters keep every
  // client representable (noise remapped to singletons).
  data::SyntheticImageConfig gcfg;
  gcfg.classes = 4;
  gcfg.height = 6;
  gcfg.width = 6;
  data::SyntheticImageGenerator gen(gcfg);
  Rng rng(9);
  const auto fed = data::partition_two_per_label(gen, 200, 4, rng);

  HaccsConfig config;
  config.scale.enabled = true;
  config.scale.shard_size = 4;  // force a multi-shard merge
  config.scale.exact_cutoff = 4;
  config.scale.dirty_threshold = 0.0;
  HaccsSelector selector(fed, config);
  ASSERT_NE(selector.incremental(), nullptr);
  EXPECT_EQ(selector.cluster_of().size(), fed.num_clients());
  EXPECT_GE(selector.num_clusters(), 1u);

  // Reclustering with unchanged data is a no-op for membership.
  const auto before = selector.cluster_of();
  selector.recluster(fed);
  EXPECT_EQ(selector.cluster_of(), before);

  std::vector<fl::ClientRuntimeInfo> view(fed.num_clients());
  for (std::size_t i = 0; i < view.size(); ++i) {
    view[i].available = true;
    view[i].latency_s = 1.0 + static_cast<double>(i % 3);
    view[i].last_loss = 1.0;
  }
  Rng select_rng(4);
  const auto picked = selector.select(3, view, 0, select_rng);
  EXPECT_EQ(picked.size(), 3u);
}

}  // namespace
}  // namespace haccs::core
