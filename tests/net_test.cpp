// Tests for the wire protocol + transport layer: CRC32 vectors, wire
// primitive round trips (NaN/Inf bit-exactness), frame encode/decode and
// the incremental parser under split/corrupt/desynchronized input, payload
// codec edge cases, the wire-bytes/pricing parity contract, the summary
// codec, frame-format checkpoints, loopback and TCP transports, and the
// headline guarantee: an engine run dispatched over a transport is
// bit-identical to the direct in-process run, and transport failures reach
// ClientSelector::report_failure like simulated faults.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "src/core/haccs_system.hpp"
#include "src/fl/engine.hpp"
#include "src/fl/net_driver.hpp"
#include "src/fl/protocol.hpp"
#include "src/net/crc32.hpp"
#include "src/net/frame.hpp"
#include "src/net/loopback.hpp"
#include "src/net/messages.hpp"
#include "src/net/tcp.hpp"
#include "src/net/wire.hpp"
#include "src/nn/layer.hpp"
#include "src/nn/serialize.hpp"
#include "src/obs/obs.hpp"
#include "src/select/random_selector.hpp"
#include "src/stats/summary_codec.hpp"

namespace haccs {
namespace {

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

bool same_bits(float a, float b) {
  std::uint32_t ua, ub;
  std::memcmp(&ua, &a, 0);  // silence unused warnings on some compilers
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

// ---------------------------------------------------------------------------
// CRC32

TEST(Crc32, KnownVectors) {
  // The standard CRC-32 (IEEE 802.3) check value.
  const char* check = "123456789";
  EXPECT_EQ(net::crc32(check, 9), 0xCBF43926u);
  EXPECT_EQ(net::crc32("", 0), 0u);
  const std::uint8_t zeros[4] = {0, 0, 0, 0};
  EXPECT_EQ(net::crc32(zeros, 4), 0x2144DF1Cu);
}

TEST(Crc32, SeedChainsIncrementally) {
  const char* data = "hello, federation";
  const std::size_t n = std::strlen(data);
  const std::uint32_t whole = net::crc32(data, n);
  for (std::size_t split = 0; split <= n; ++split) {
    const std::uint32_t first = net::crc32(data, split);
    EXPECT_EQ(net::crc32(data + split, n - split, first), whole)
        << "split at " << split;
  }
}

// ---------------------------------------------------------------------------
// Wire primitives

TEST(Wire, ScalarsRoundTrip) {
  net::WireWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.f32(-1.5f);
  w.f64(3.141592653589793);
  w.string("haccs");
  net::WireReader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.f32(), -1.5f);
  EXPECT_EQ(r.f64(), 3.141592653589793);
  EXPECT_EQ(r.string(), "haccs");
  EXPECT_NO_THROW(r.expect_exhausted());
}

TEST(Wire, NanAndInfRoundTripBitExactly) {
  // A corrupted update must arrive unmodified so server-side validation
  // rejects it for the right reason — the codec must not launder NaN.
  const std::vector<float> values = {kNaN, -kNaN, kInf, -kInf, 0.0f, -0.0f,
                                     std::numeric_limits<float>::denorm_min()};
  net::WireWriter w;
  w.f32_array(values);
  net::WireReader r(w.data());
  const auto back = r.f32_array();
  ASSERT_EQ(back.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_TRUE(same_bits(values[i], back[i])) << "index " << i;
  }
}

TEST(Wire, TruncatedPayloadThrows) {
  net::WireWriter w;
  w.u64(42);
  auto bytes = w.take();
  bytes.pop_back();
  net::WireReader r(bytes);
  EXPECT_THROW(r.u64(), net::WireError);
}

TEST(Wire, AbsurdArrayCountThrowsBeforeAllocating) {
  net::WireWriter w;
  w.u64(std::uint64_t{1} << 60);  // declared count, no elements follow
  net::WireReader r(w.data());
  EXPECT_THROW(r.f32_array(), net::WireError);
}

TEST(Wire, UnconsumedBytesFailExhaustionCheck) {
  net::WireWriter w;
  w.u32(7);
  w.u32(8);
  net::WireReader r(w.data());
  r.u32();
  EXPECT_THROW(r.expect_exhausted(), net::WireError);
}

// ---------------------------------------------------------------------------
// Frames

net::Frame heartbeat_frame(std::uint32_t sender, std::uint64_t epoch) {
  return net::encode_heartbeat({sender, epoch, {}});
}

TEST(Frame, EncodeDecodeRoundTrip) {
  const net::Frame frame = heartbeat_frame(3, 17);
  const auto bytes = net::encode_frame(frame);
  EXPECT_EQ(bytes.size(), net::kFrameHeaderBytes + frame.payload.size());
  net::Frame out;
  std::size_t consumed = 0;
  ASSERT_EQ(net::decode_frame(bytes, &out, &consumed), net::FrameStatus::Ok);
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(out.type, net::MessageType::Heartbeat);
  EXPECT_EQ(out.payload, frame.payload);
}

TEST(Frame, EmptyPayloadRoundTrips) {
  const auto bytes = net::encode_frame(net::encode_shutdown());
  EXPECT_EQ(bytes.size(), net::kFrameHeaderBytes);
  net::Frame out;
  ASSERT_EQ(net::decode_frame(bytes, &out), net::FrameStatus::Ok);
  EXPECT_EQ(out.type, net::MessageType::Shutdown);
  EXPECT_TRUE(out.payload.empty());
}

TEST(Frame, HeaderDamageIsDetected) {
  auto bytes = net::encode_frame(heartbeat_frame(1, 1));
  net::Frame out;
  {
    auto bad = bytes;
    bad[0] = 'X';  // magic
    EXPECT_EQ(net::decode_frame(bad, &out), net::FrameStatus::BadMagic);
  }
  {
    auto bad = bytes;
    bad[4] = 0xFF;  // version
    EXPECT_EQ(net::decode_frame(bad, &out), net::FrameStatus::BadVersion);
  }
  {
    auto bad = bytes;
    bad[11] = 0x7F;  // length high byte -> > kMaxPayloadBytes
    EXPECT_EQ(net::decode_frame(bad, &out), net::FrameStatus::BadLength);
  }
}

TEST(Frame, PayloadDamageFailsChecksum) {
  auto bytes = net::encode_frame(heartbeat_frame(1, 1));
  bytes[net::kFrameHeaderBytes] ^= 0x01;
  net::Frame out;
  EXPECT_EQ(net::decode_frame(bytes, &out), net::FrameStatus::BadChecksum);
}

TEST(Frame, TruncationReportsNeedMore) {
  const auto bytes = net::encode_frame(heartbeat_frame(1, 1));
  net::Frame out;
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(bytes.data(), cut);
    EXPECT_EQ(net::decode_frame(prefix, &out), net::FrameStatus::NeedMore)
        << "prefix length " << cut;
  }
}

TEST(FrameParser, ReassemblesFramesFedByteByByte) {
  // A TCP read returns whatever the kernel has; the parser must reassemble
  // frames from arbitrary fragmentation — here the worst case, 1 byte.
  std::vector<net::Frame> sent;
  std::vector<std::uint8_t> stream;
  for (std::uint32_t i = 0; i < 3; ++i) {
    sent.push_back(heartbeat_frame(i, 100 + i));
    const auto bytes = net::encode_frame(sent.back());
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }
  net::FrameParser parser;
  std::vector<net::Frame> received;
  for (std::uint8_t byte : stream) {
    parser.feed({&byte, 1});
    net::Frame out;
    const auto status = parser.next(&out);
    if (status == net::FrameStatus::Ok) {
      received.push_back(std::move(out));
    } else {
      EXPECT_EQ(status, net::FrameStatus::NeedMore);
    }
  }
  ASSERT_EQ(received.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(received[i].payload, sent[i].payload);
  }
  EXPECT_FALSE(parser.fatal());
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(FrameParser, CorruptFrameIsConsumedAndStreamContinues) {
  std::vector<std::uint8_t> stream;
  for (std::uint32_t i = 0; i < 3; ++i) {
    auto bytes = net::encode_frame(heartbeat_frame(i, i));
    if (i == 1) bytes[net::kFrameHeaderBytes + 2] ^= 0xFF;  // damage frame 1
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }
  net::FrameParser parser;
  parser.feed(stream);
  net::Frame out;
  ASSERT_EQ(parser.next(&out), net::FrameStatus::Ok);
  EXPECT_EQ(net::decode_heartbeat(out).sender_id, 0u);
  ASSERT_EQ(parser.next(&out), net::FrameStatus::BadChecksum);
  ASSERT_EQ(parser.next(&out), net::FrameStatus::Ok);
  EXPECT_EQ(net::decode_heartbeat(out).sender_id, 2u);
  EXPECT_FALSE(parser.fatal());
}

TEST(FrameParser, HeaderDamageIsFatal) {
  auto bytes = net::encode_frame(heartbeat_frame(0, 0));
  bytes[1] ^= 0xFF;  // magic
  net::FrameParser parser;
  parser.feed(bytes);
  net::Frame out;
  EXPECT_EQ(parser.next(&out), net::FrameStatus::BadMagic);
  EXPECT_TRUE(parser.fatal());
}

// ---------------------------------------------------------------------------
// Message codecs

TEST(NetCodec, TrainJobRoundTripsEveryField) {
  net::TrainJobMsg msg;
  msg.epoch = 41;
  msg.client_id = 9;
  msg.rng_seed = 0xFEEDFACECAFEBEEFull;
  msg.algorithm = 1;
  msg.fedprox_mu = 0.03;
  msg.work_fraction = 0.4;
  msg.local_epochs = 3;
  msg.batch_size = 16;
  msg.learning_rate = 0.05;
  msg.momentum = 0.9;
  msg.weight_decay = 1e-4;
  msg.compression_kind = 2;
  msg.topk_fraction = 0.25;
  msg.error_feedback = 0;
  msg.params = {1.0f, -2.5f, kNaN, kInf, 0.0f};
  const auto frame = net::encode_train_job(msg);
  EXPECT_EQ(net::kFrameHeaderBytes + frame.payload.size(),
            fl::train_job_frame_bytes(msg.params.size()));
  const auto back = net::decode_train_job(frame);
  EXPECT_EQ(back.epoch, msg.epoch);
  EXPECT_EQ(back.client_id, msg.client_id);
  EXPECT_EQ(back.rng_seed, msg.rng_seed);
  EXPECT_EQ(back.algorithm, msg.algorithm);
  EXPECT_EQ(back.fedprox_mu, msg.fedprox_mu);
  EXPECT_EQ(back.work_fraction, msg.work_fraction);
  EXPECT_EQ(back.local_epochs, msg.local_epochs);
  EXPECT_EQ(back.batch_size, msg.batch_size);
  EXPECT_EQ(back.learning_rate, msg.learning_rate);
  EXPECT_EQ(back.momentum, msg.momentum);
  EXPECT_EQ(back.weight_decay, msg.weight_decay);
  EXPECT_EQ(back.compression_kind, msg.compression_kind);
  EXPECT_EQ(back.topk_fraction, msg.topk_fraction);
  EXPECT_EQ(back.error_feedback, msg.error_feedback);
  ASSERT_EQ(back.params.size(), msg.params.size());
  for (std::size_t i = 0; i < msg.params.size(); ++i) {
    EXPECT_TRUE(same_bits(back.params[i], msg.params[i])) << "param " << i;
  }
}

TEST(NetCodec, EmptyParamsRoundTrip) {
  net::TrainJobMsg msg;  // zero-length model: degenerate but legal
  const auto back = net::decode_train_job(net::encode_train_job(msg));
  EXPECT_TRUE(back.params.empty());
}

TEST(NetCodec, DecodeRejectsWrongFrameType) {
  EXPECT_THROW(net::decode_hello(heartbeat_frame(0, 0)), net::WireError);
  EXPECT_THROW(net::decode_train_job(heartbeat_frame(0, 0)), net::WireError);
  EXPECT_THROW(net::decode_client_update(heartbeat_frame(0, 0)),
               net::WireError);
}

TEST(NetCodec, DecodeRejectsTruncatedAndTrailingPayloads) {
  net::TrainJobMsg msg;
  msg.params = {1.0f, 2.0f, 3.0f};
  auto frame = net::encode_train_job(msg);
  {
    auto cut = frame;
    cut.payload.resize(cut.payload.size() - 2);
    EXPECT_THROW(net::decode_train_job(cut), net::WireError);
  }
  {
    auto padded = frame;
    padded.payload.push_back(0);
    EXPECT_THROW(net::decode_train_job(padded), net::WireError);
  }
}

TEST(NetCodec, SmallerControlMessagesRoundTrip) {
  {
    const net::HelloMsg back =
        net::decode_hello(net::encode_hello({7, 25}));
    EXPECT_EQ(back.worker_id, 7u);
    EXPECT_EQ(back.num_clients, 25u);
  }
  {
    net::SelectNoticeMsg msg;
    msg.epoch = 12;
    msg.deadline_s = 3.5;
    msg.clients = {1, 4, 1, 5};
    const auto back = net::decode_select_notice(net::encode_select_notice(msg));
    EXPECT_EQ(back.epoch, msg.epoch);
    EXPECT_EQ(back.deadline_s, msg.deadline_s);
    EXPECT_EQ(back.clients, msg.clients);
  }
  {
    net::EvalReportMsg msg{30, 0.825, 0.61, {}};
    const auto back = net::decode_eval_report(net::encode_eval_report(msg));
    EXPECT_EQ(back.epoch, msg.epoch);
    EXPECT_EQ(back.accuracy, msg.accuracy);
    EXPECT_EQ(back.loss, msg.loss);
  }
}

// ---------------------------------------------------------------------------
// Trace-context trailers + TraceShard (DESIGN.md §5i)

TEST(NetCodec, TraceTrailerIsOptionalAndCostsExactly24Bytes) {
  net::TrainJobMsg msg;
  msg.epoch = 3;
  msg.params = {1.0f, 2.0f};
  const auto plain = net::encode_train_job(msg);
  // Untraced frames are byte-identical to pre-trace builds, so the priced
  // overhead constants stay honest.
  EXPECT_EQ(net::kFrameHeaderBytes + plain.payload.size(),
            fl::train_job_frame_bytes(msg.params.size()));
  EXPECT_FALSE(net::decode_train_job(plain).trace.valid());

  msg.trace.trace_id = 0x1234abcd5678ef01ull;
  msg.trace.parent_span = 42;
  msg.trace.round = 7;
  const auto traced = net::encode_train_job(msg);
  EXPECT_EQ(traced.payload.size(), plain.payload.size() + 24);
  const auto back = net::decode_train_job(traced);
  EXPECT_TRUE(back.trace.valid());
  EXPECT_EQ(back.trace.trace_id, msg.trace.trace_id);
  EXPECT_EQ(back.trace.parent_span, msg.trace.parent_span);
  EXPECT_EQ(back.trace.round, msg.trace.round);
}

TEST(NetCodec, TraceTrailerRoundTripsOnEveryServingMessage) {
  obs::TraceContext ctx;
  ctx.trace_id = 0xfeedf00dull;
  ctx.parent_span = 9001;
  ctx.round = 12;
  {
    net::ClientUpdateMsg msg;
    msg.epoch = 12;
    msg.client_id = 4;
    msg.update.size = 0;
    msg.trace = ctx;
    const auto back = net::decode_client_update(net::encode_client_update(msg));
    EXPECT_EQ(back.trace.trace_id, ctx.trace_id);
    EXPECT_EQ(back.trace.parent_span, ctx.parent_span);
    EXPECT_EQ(back.trace.round, ctx.round);
  }
  {
    net::HeartbeatMsg msg;
    msg.sender_id = 2;
    msg.epoch = 12;
    msg.trace = ctx;
    const auto back = net::decode_heartbeat(net::encode_heartbeat(msg));
    EXPECT_EQ(back.sender_id, 2u);
    EXPECT_EQ(back.trace.trace_id, ctx.trace_id);
    EXPECT_EQ(back.trace.round, ctx.round);
  }
  {
    net::EvalReportMsg msg{30, 0.825, 0.61, ctx};
    const auto back = net::decode_eval_report(net::encode_eval_report(msg));
    EXPECT_EQ(back.accuracy, msg.accuracy);
    EXPECT_EQ(back.trace.trace_id, ctx.trace_id);
    EXPECT_EQ(back.trace.parent_span, ctx.parent_span);
  }
}

TEST(NetCodec, TraceShardRoundTripsEveryField) {
  net::TraceShardMsg msg;
  msg.worker_id = 3;
  msg.trace_id = 0xabcdef0011223344ull;
  msg.send_ns = 987654321;
  obs::PortableTraceEvent span;
  span.name = "local_train";
  span.category = "fl";
  span.tid = 7;
  span.ts_ns = 1000;
  span.dur_ns = 2500;
  span.span_id = (4ull << 40) + 1;
  span.parent_id = 99;
  span.round = 5;
  span.instant = false;
  obs::PortableTraceEvent mark;
  mark.name = "job.recv";
  mark.category = "net";
  mark.instant = true;
  msg.events = {span, mark};

  const auto back = net::decode_trace_shard(net::encode_trace_shard(msg));
  EXPECT_EQ(back.worker_id, msg.worker_id);
  EXPECT_EQ(back.trace_id, msg.trace_id);
  EXPECT_EQ(back.send_ns, msg.send_ns);
  ASSERT_EQ(back.events.size(), 2u);
  EXPECT_EQ(back.events[0].name, span.name);
  EXPECT_EQ(back.events[0].category, span.category);
  EXPECT_EQ(back.events[0].tid, span.tid);
  EXPECT_EQ(back.events[0].ts_ns, span.ts_ns);
  EXPECT_EQ(back.events[0].dur_ns, span.dur_ns);
  EXPECT_EQ(back.events[0].span_id, span.span_id);
  EXPECT_EQ(back.events[0].parent_id, span.parent_id);
  EXPECT_EQ(back.events[0].round, span.round);
  EXPECT_FALSE(back.events[0].instant);
  EXPECT_EQ(back.events[1].name, mark.name);
  EXPECT_TRUE(back.events[1].instant);
}

TEST(NetCodec, TraceShardRejectsTruncatedAndTrailingPayloads) {
  net::TraceShardMsg msg;
  msg.worker_id = 1;
  msg.trace_id = 0x77;
  obs::PortableTraceEvent event;
  event.name = "round";
  event.category = "fl";
  msg.events = {event};
  const auto frame = net::encode_trace_shard(msg);
  {
    auto cut = frame;
    cut.payload.resize(cut.payload.size() - 3);
    EXPECT_THROW(net::decode_trace_shard(cut), net::WireError);
  }
  {
    auto padded = frame;
    padded.payload.push_back(0);
    EXPECT_THROW(net::decode_trace_shard(padded), net::WireError);
  }
  {
    // An absurd event count must be rejected before any allocation happens.
    // The count is the u64 after worker_id (u32) + trace_id + send_ns (u64s).
    auto bloated = frame;
    for (std::size_t i = 0; i < 8; ++i) bloated.payload[20 + i] = 0xFF;
    EXPECT_THROW(net::decode_trace_shard(bloated), net::WireError);
  }
}

// ---------------------------------------------------------------------------
// Update payloads + pricing parity

fl::CompressedUpdate compress(const std::vector<float>& update,
                              const fl::CompressionConfig& config) {
  std::vector<float> residual;
  return fl::compress_update(update, config, residual);
}

std::vector<float> ramp(std::size_t n) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = 0.01f * static_cast<float>(i) - 0.3f;
  }
  return v;
}

TEST(NetCodec, UpdateBodyBytesMatchPricingForEveryKind) {
  // The consistency contract: the bytes the codec emits for an update are
  // exactly what fl::compressed_wire_bytes priced into the latency model.
  // Odd length on purpose — TopK's k = ceil(fraction * n) must agree too.
  const std::size_t n = 1237;
  const auto update = ramp(n);
  for (auto kind : {fl::CompressionKind::None, fl::CompressionKind::TopK,
                    fl::CompressionKind::Int8}) {
    fl::CompressionConfig config;
    config.kind = kind;
    config.topk_fraction = 0.07;
    const auto compressed = compress(update, config);
    const auto payload = fl::make_update_payload(compressed, n, config);
    EXPECT_EQ(net::update_body_bytes(payload),
              fl::compressed_wire_bytes(n, config))
        << "kind " << static_cast<int>(kind);

    net::ClientUpdateMsg msg;
    msg.update = payload;
    const auto frame = net::encode_client_update(msg);
    EXPECT_EQ(net::kFrameHeaderBytes + frame.payload.size(),
              fl::update_frame_bytes(n, config))
        << "kind " << static_cast<int>(kind);
  }
}

TEST(NetCodec, UpdatePayloadToDenseIsBitExact) {
  const std::size_t n = 513;
  auto update = ramp(n);
  update[7] = 1e-8f;
  update[200] = -42.0f;
  for (auto kind : {fl::CompressionKind::TopK, fl::CompressionKind::Int8}) {
    fl::CompressionConfig config;
    config.kind = kind;
    const auto compressed = compress(update, config);
    const auto payload = fl::make_update_payload(compressed, n, config);
    // Serialize through a real frame, then reconstruct — the server-side
    // dense view must match the compressor's own reconstruction bit for bit.
    net::ClientUpdateMsg msg;
    msg.update = payload;
    const auto back = net::decode_client_update(net::encode_client_update(msg));
    const auto dense = back.update.to_dense();
    ASSERT_EQ(dense.size(), compressed.dense.size());
    for (std::size_t i = 0; i < dense.size(); ++i) {
      EXPECT_TRUE(same_bits(dense[i], compressed.dense[i])) << "coord " << i;
    }
  }
}

TEST(NetCodec, NanUpdateSurvivesTheWireForServerSideRejection) {
  fl::CompressionConfig config;  // None
  net::ClientUpdateMsg msg;
  msg.update.kind = net::UpdateKind::Dense;
  msg.update.dense = {1.0f, kNaN, -kInf};
  msg.update.size = 3;
  const auto back = net::decode_client_update(net::encode_client_update(msg));
  ASSERT_EQ(back.update.dense.size(), 3u);
  EXPECT_TRUE(std::isnan(back.update.dense[1]));
  EXPECT_TRUE(std::isinf(back.update.dense[2]));
  (void)config;
}

TEST(NetCodec, MakeUpdatePayloadEnforcesPricing) {
  // A hand-built update whose wire size disagrees with the pricing must be
  // rejected — the latency model and the codec are never allowed to drift.
  fl::CompressionConfig config;
  config.kind = fl::CompressionKind::TopK;
  config.topk_fraction = 0.5;
  fl::CompressedUpdate lying;
  lying.dense.resize(10, 0.0f);
  lying.topk_indices = {1};  // one pair where pricing expects five
  lying.topk_values = {2.0f};
  lying.wire_bytes = 8;
  EXPECT_THROW(fl::make_update_payload(lying, 10, config), std::logic_error);
}

TEST(NetCodec, EmptyUpdateRoundTrips) {
  net::ClientUpdateMsg msg;  // n = 0
  const auto back = net::decode_client_update(net::encode_client_update(msg));
  EXPECT_EQ(back.update.size, 0u);
  EXPECT_TRUE(back.update.to_dense().empty());
}

// ---------------------------------------------------------------------------
// Summary codec

std::vector<double> as_vector(std::span<const double> span) {
  return {span.begin(), span.end()};
}

data::Dataset tiny_dataset() {
  data::SyntheticImageConfig cfg = data::SyntheticImageConfig::femnist_like(4);
  cfg.height = 8;
  cfg.width = 8;
  data::SyntheticImageGenerator gen(cfg);
  Rng rng(3);
  data::PartitionConfig pcfg;
  pcfg.num_clients = 1;
  pcfg.min_samples = 40;
  pcfg.max_samples = 40;
  pcfg.test_samples = 5;
  return data::partition_majority_label(gen, pcfg, rng).clients[0].train;
}

TEST(SummaryCodec, ResponseRoundTripsThroughFrame) {
  const auto dataset = tiny_dataset();
  const auto summary = stats::summarize_response(dataset);
  const auto frame =
      net::encode_summary(stats::encode_summary_msg(5, summary));
  const auto msg = net::decode_summary(frame);
  EXPECT_EQ(msg.client_id, 5u);
  const auto back = stats::decode_response_summary(msg);
  EXPECT_EQ(as_vector(back.label_counts.counts()),
            as_vector(summary.label_counts.counts()));
}

TEST(SummaryCodec, ConditionalRoundTripsThroughFrame) {
  const auto dataset = tiny_dataset();
  stats::ConditionalSummaryConfig config;
  const auto summary = stats::summarize_conditional(dataset, config);
  const auto msg = net::decode_summary(
      net::encode_summary(stats::encode_summary_msg(2, summary, config)));
  const auto back = stats::decode_conditional_summary(msg);
  ASSERT_EQ(back.per_label.size(), summary.per_label.size());
  for (std::size_t c = 0; c < summary.per_label.size(); ++c) {
    EXPECT_EQ(as_vector(back.per_label[c].counts()),
              as_vector(summary.per_label[c].counts()));
  }
  // Distances — what clustering actually consumes — survive the wire.
  EXPECT_DOUBLE_EQ(stats::distance(back, summary), 0.0);
}

TEST(SummaryCodec, QuantileRoundTripsThroughFrame) {
  const auto dataset = tiny_dataset();
  stats::QuantileSummaryConfig config;
  const auto summary = stats::summarize_quantiles(dataset, config);
  const auto msg = net::decode_summary(
      net::encode_summary(stats::encode_summary_msg(1, summary, config)));
  const auto back = stats::decode_quantile_summary(msg);
  EXPECT_EQ(back.per_label, summary.per_label);
  EXPECT_EQ(back.mass, summary.mass);
}

TEST(SummaryCodec, MalformedMessagesThrow) {
  const auto dataset = tiny_dataset();
  const auto response = stats::encode_summary_msg(
      0, stats::summarize_response(dataset));
  // Kind mismatch.
  EXPECT_THROW(stats::decode_conditional_summary(response), net::WireError);
  EXPECT_THROW(stats::decode_quantile_summary(response), net::WireError);
  // Empty tables.
  net::SummaryMsg empty = response;
  empty.tables.clear();
  EXPECT_THROW(stats::decode_response_summary(empty), net::WireError);
  // Conditional with an inverted bin range.
  stats::ConditionalSummaryConfig config;
  auto conditional = stats::encode_summary_msg(
      0, stats::summarize_conditional(dataset, config), config);
  conditional.hi = conditional.lo;
  EXPECT_THROW(stats::decode_conditional_summary(conditional), net::WireError);
}

// ---------------------------------------------------------------------------
// Checkpoints (frame-format files)

nn::Sequential tiny_model(std::uint64_t seed) {
  Rng rng(seed);
  nn::Sequential model;
  model.add(std::make_unique<nn::Dense>(6, 3, rng));
  return model;
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
}

TEST(Checkpoint, RoundTripsAsWireFrame) {
  const auto model = tiny_model(11);
  const std::string path = temp_path("ckpt_roundtrip.bin");
  nn::save_parameters(model, path);

  // The file IS one wire frame of type Checkpoint.
  const auto bytes = read_file(path);
  net::Frame frame;
  ASSERT_EQ(net::decode_frame(bytes, &frame), net::FrameStatus::Ok);
  EXPECT_EQ(frame.type, net::MessageType::Checkpoint);

  EXPECT_EQ(nn::load_parameters(path), model.get_parameters());
}

TEST(Checkpoint, TruncatedFileFailsLoudly) {
  const auto model = tiny_model(12);
  const std::string path = temp_path("ckpt_truncated.bin");
  nn::save_parameters(model, path);
  auto bytes = read_file(path);
  bytes.resize(bytes.size() - 5);
  write_file(path, bytes);
  try {
    nn::load_parameters(path);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
  }
}

TEST(Checkpoint, CorruptPayloadFailsCrc) {
  const auto model = tiny_model(13);
  const std::string path = temp_path("ckpt_corrupt.bin");
  nn::save_parameters(model, path);
  auto bytes = read_file(path);
  bytes[net::kFrameHeaderBytes + 9] ^= 0x40;  // flip one parameter bit
  write_file(path, bytes);
  try {
    nn::load_parameters(path);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos);
  }
}

TEST(Checkpoint, GarbageFileIsNotACheckpoint) {
  const std::string path = temp_path("ckpt_garbage.bin");
  write_file(path, {'n', 'o', 't', ' ', 'a', ' ', 'f', 'r', 'a', 'm', 'e'});
  try {
    nn::load_parameters(path);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("not a HACCS checkpoint"),
              std::string::npos);
  }
}

TEST(Checkpoint, LegacyV1FilesStillLoad) {
  // Hand-write the pre-frame format: "HCCS", u32 version, u64 count, floats.
  const std::vector<float> params = {0.5f, -1.25f, 3.0f};
  std::vector<std::uint8_t> bytes = {'H', 'C', 'C', 'S', 1, 0, 0, 0};
  const std::uint64_t count = params.size();
  const auto* cp = reinterpret_cast<const std::uint8_t*>(&count);
  bytes.insert(bytes.end(), cp, cp + sizeof(count));
  const auto* pp = reinterpret_cast<const std::uint8_t*>(params.data());
  bytes.insert(bytes.end(), pp, pp + params.size() * sizeof(float));
  const std::string path = temp_path("ckpt_legacy.bin");
  write_file(path, bytes);
  EXPECT_EQ(nn::load_parameters(path), params);
}

// ---------------------------------------------------------------------------
// Loopback transport

TEST(Loopback, FramesRoundTripBothDirections) {
  auto pair = net::make_loopback_pair();
  ASSERT_EQ(pair.a->send(heartbeat_frame(1, 10)), net::TransportStatus::Ok);
  ASSERT_EQ(pair.b->send(heartbeat_frame(2, 20)), net::TransportStatus::Ok);
  net::Frame out;
  ASSERT_EQ(pair.b->recv(&out, 1000), net::TransportStatus::Ok);
  EXPECT_EQ(net::decode_heartbeat(out).sender_id, 1u);
  ASSERT_EQ(pair.a->recv(&out, 1000), net::TransportStatus::Ok);
  EXPECT_EQ(net::decode_heartbeat(out).sender_id, 2u);
}

TEST(Loopback, RecvTimesOutOnEmptyQueue) {
  auto pair = net::make_loopback_pair();
  net::Frame out;
  EXPECT_EQ(pair.a->recv(&out, 0), net::TransportStatus::Timeout);
  EXPECT_EQ(pair.a->recv(&out, 20), net::TransportStatus::Timeout);
}

TEST(Loopback, InjectedCorruptionSurfacesAsCorruptAndIsCounted) {
  obs::set_metrics_enabled(true);
  const auto before = net::NetMetrics::get().frames_corrupt.value();
  net::LoopbackOptions options;
  options.corrupt_every_n_b = 2;  // every 2nd frame from the worker side
  auto pair = net::make_loopback_pair(options);
  int ok = 0, corrupt = 0;
  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(pair.b->send(heartbeat_frame(9, i)), net::TransportStatus::Ok);
    net::Frame out;
    const auto status = pair.a->recv(&out, 1000);
    if (status == net::TransportStatus::Ok) ++ok;
    if (status == net::TransportStatus::Corrupt) ++corrupt;
  }
  EXPECT_EQ(ok, 3);
  EXPECT_EQ(corrupt, 3);
  EXPECT_EQ(net::NetMetrics::get().frames_corrupt.value() - before, 3u);
  obs::set_metrics_enabled(false);
}

TEST(Loopback, CloseDrainsBufferedFramesThenReportsClosed) {
  auto pair = net::make_loopback_pair();
  ASSERT_EQ(pair.b->send(heartbeat_frame(5, 1)), net::TransportStatus::Ok);
  pair.b->close();
  net::Frame out;
  // The frame sent before close still arrives; then the channel is dead.
  EXPECT_EQ(pair.a->recv(&out, 1000), net::TransportStatus::Ok);
  EXPECT_EQ(pair.a->recv(&out, 1000), net::TransportStatus::Closed);
  EXPECT_EQ(pair.a->send(heartbeat_frame(5, 2)), net::TransportStatus::Closed);
}

// ---------------------------------------------------------------------------
// TCP transport

TEST(Tcp, LocalhostRoundTripIncludingLargeFrames) {
  net::TcpListener listener(0);
  ASSERT_GT(listener.port(), 0);

  std::unique_ptr<net::Transport> server;
  std::thread acceptor([&] { server = listener.accept(5000); });
  net::TcpConnectOptions options;
  options.io_timeout_ms = 5000;
  auto client = net::connect_tcp("127.0.0.1", listener.port(), options);
  acceptor.join();
  ASSERT_NE(client, nullptr);
  ASSERT_NE(server, nullptr);

  // Small control frame one way...
  ASSERT_EQ(client->send(net::encode_hello({4, 2})), net::TransportStatus::Ok);
  net::Frame out;
  ASSERT_EQ(server->recv(&out, 5000), net::TransportStatus::Ok);
  EXPECT_EQ(net::decode_hello(out).worker_id, 4u);

  // ...and a parameter-sized frame the other way, which will span many
  // socket segments and exercise the incremental reassembly.
  net::TrainJobMsg job;
  job.params = ramp(200000);  // ~800 KB
  ASSERT_EQ(server->send(net::encode_train_job(job), 5000),
            net::TransportStatus::Ok);
  ASSERT_EQ(client->recv(&out, 5000), net::TransportStatus::Ok);
  const auto back = net::decode_train_job(out);
  ASSERT_EQ(back.params.size(), job.params.size());
  EXPECT_EQ(back.params, job.params);
}

TEST(Tcp, AcceptTimesOutWithoutAConnection) {
  net::TcpListener listener(0);
  EXPECT_EQ(listener.accept(50), nullptr);
}

TEST(Tcp, ConnectGivesUpAfterConfiguredAttempts) {
  // Grab an ephemeral port, then close the listener so nothing is there.
  std::uint16_t dead_port;
  {
    net::TcpListener listener(0);
    dead_port = listener.port();
  }
  net::TcpConnectOptions options;
  options.attempts = 2;
  options.initial_backoff_ms = 1;
  EXPECT_EQ(net::connect_tcp("127.0.0.1", dead_port, options), nullptr);
}

// ---------------------------------------------------------------------------
// Protocol driver: dispatcher failure mapping

TEST(TransportDispatcher, RecvTimeoutSurfacesAsTimeoutFailure) {
  // One transport, nobody serving the other end: the send lands in the
  // queue, the collect phase times out, the job fails as Timeout.
  auto pair = net::make_loopback_pair();
  fl::TransportDispatcherConfig config;
  config.recv_timeout_ms = 30;
  fl::TransportDispatcher dispatcher({pair.a.get()}, config);

  fl::TrainJobSpec job;
  job.slot = 0;
  job.client_id = 3;
  std::vector<fl::TrainJobSpec> jobs = {job};
  std::vector<float> global = {0.0f, 1.0f};
  std::vector<fl::TrainOutcome> outcomes(1);
  dispatcher.execute(jobs, global, outcomes);
  EXPECT_FALSE(outcomes[0].delivered);
  EXPECT_EQ(outcomes[0].failure, fl::FailureKind::Timeout);
}

TEST(TransportDispatcher, ClosedTransportSurfacesAsCrash) {
  auto pair = net::make_loopback_pair();
  pair.b->close();
  fl::TransportDispatcherConfig config;
  config.recv_timeout_ms = 1000;
  fl::TransportDispatcher dispatcher({pair.a.get()}, config);

  fl::TrainJobSpec job;
  std::vector<fl::TrainJobSpec> jobs = {job};
  std::vector<float> global = {0.0f};
  std::vector<fl::TrainOutcome> outcomes(1);
  dispatcher.execute(jobs, global, outcomes);
  EXPECT_FALSE(outcomes[0].delivered);
  EXPECT_EQ(outcomes[0].failure, fl::FailureKind::Crash);
}

// ---------------------------------------------------------------------------
// Engine over transports

data::FederatedDataset make_fed(std::size_t clients = 10) {
  data::SyntheticImageConfig cfg = data::SyntheticImageConfig::femnist_like(6);
  cfg.height = 10;
  cfg.width = 10;
  cfg.noise_stddev = 0.6;
  data::SyntheticImageGenerator gen(cfg);
  data::PartitionConfig pcfg;
  pcfg.num_clients = clients;
  pcfg.min_samples = 40;
  pcfg.max_samples = 80;
  pcfg.test_samples = 12;
  Rng rng(19);
  return data::partition_majority_label(gen, pcfg, rng);
}

fl::EngineConfig make_engine(std::size_t rounds = 6) {
  fl::EngineConfig cfg;
  cfg.rounds = rounds;
  cfg.clients_per_round = 3;
  cfg.eval_every = 3;
  cfg.local.sgd.learning_rate = 0.08;
  cfg.seed = 23;
  return cfg;
}

fl::TransportDispatcherConfig dispatch_config_for(
    const fl::EngineConfig& engine) {
  fl::TransportDispatcherConfig config;
  config.work.local = engine.local;
  config.work.fedprox = engine.algorithm == fl::LocalAlgorithm::FedProx;
  config.work.fedprox_mu = engine.fedprox_mu;
  config.work.compression = engine.compression;
  config.recv_timeout_ms = 60000;
  return config;
}

fl::TrainingHistory run_direct(const data::FederatedDataset& fed,
                               const fl::EngineConfig& engine) {
  fl::FederatedTrainer trainer(fed, core::default_model_factory(fed, 99),
                               engine);
  select::RandomSelector selector;
  return trainer.run(selector);
}

fl::TrainingHistory run_loopback(const data::FederatedDataset& fed,
                                 fl::EngineConfig engine,
                                 std::size_t num_workers) {
  fl::LoopbackCluster cluster(fed, core::default_model_factory(fed, 99),
                              num_workers);
  fl::TransportDispatcher dispatcher(cluster.server_transports(),
                                     dispatch_config_for(engine));
  engine.dispatcher = &dispatcher;
  fl::FederatedTrainer trainer(fed, core::default_model_factory(fed, 99),
                               engine);
  select::RandomSelector selector;
  return trainer.run(selector);
}

void expect_histories_bit_identical(const fl::TrainingHistory& direct,
                                    const fl::TrainingHistory& transported) {
  ASSERT_EQ(direct.records().size(), transported.records().size());
  for (std::size_t i = 0; i < direct.records().size(); ++i) {
    // Byte-equal structured round events pin EVERY field — accuracies and
    // losses to the last bit, selections, and the uplink/downlink byte
    // accounting that must price identically in both modes.
    EXPECT_EQ(fl::round_event_json("sync", direct.records()[i]),
              fl::round_event_json("sync", transported.records()[i]))
        << "round " << i;
  }
}

TEST(EngineOverTransport, LoopbackRunIsBitIdenticalToDirect) {
  const auto fed = make_fed();
  const auto engine = make_engine();
  const auto direct = run_direct(fed, engine);
  const auto transported = run_loopback(fed, engine, 2);
  expect_histories_bit_identical(direct, transported);
  EXPECT_GT(direct.total_uplink_bytes(), 0u);
  EXPECT_GT(direct.total_downlink_bytes(), 0u);
}

TEST(EngineOverTransport, LoopbackBitIdentityHoldsUnderCompression) {
  // Compressed kinds ship the delta (not the updated parameters), so this
  // pins the global + to_dense() reconstruction path and the per-client
  // residual bookkeeping that lives server-side vs worker-side.
  const auto fed = make_fed();
  auto engine = make_engine();
  engine.compression.kind = fl::CompressionKind::TopK;
  engine.compression.topk_fraction = 0.2;
  const auto direct = run_direct(fed, engine);
  const auto transported = run_loopback(fed, engine, 3);
  expect_histories_bit_identical(direct, transported);
}

TEST(EngineOverTransport, ByteAccountingMatchesFramePricing) {
  const auto fed = make_fed();
  auto engine = make_engine(4);
  engine.compression.kind = fl::CompressionKind::Int8;
  const auto history = run_direct(fed, engine);
  const std::size_t n = core::default_model_factory(fed, 99)()
                            .get_parameters().size();
  for (const auto& r : history.records()) {
    EXPECT_EQ(r.downlink_bytes,
              r.dispatched * fl::train_job_frame_bytes(n));
    // Clean run: every dispatched client's update arrives.
    EXPECT_EQ(r.uplink_bytes,
              r.dispatched * fl::update_frame_bytes(n, engine.compression));
  }
}

/// Random selection plus a log of every report_failure call.
class RecordingSelector final : public fl::ClientSelector {
 public:
  std::vector<std::size_t> select(
      std::size_t k, const std::vector<fl::ClientRuntimeInfo>& clients,
      std::size_t epoch, Rng& rng) override {
    return inner_.select(k, clients, epoch, rng);
  }
  void report_failure(std::size_t client_id, std::size_t epoch,
                      fl::FailureKind kind) override {
    failures.push_back(kind);
  }
  std::string name() const override { return "Recording"; }

  std::vector<fl::FailureKind> failures;

 private:
  select::RandomSelector inner_;
};

TEST(EngineOverTransport, CorruptFramesAreSurvivedAndReported) {
  obs::set_metrics_enabled(true);
  const auto before = net::NetMetrics::get().frames_corrupt.value();

  const auto fed = make_fed();
  auto engine = make_engine(8);
  engine.overcommit = 0.5;  // over-select so damaged rounds still aggregate
  net::LoopbackOptions options;
  options.corrupt_every_n_b = 4;  // every 4th worker frame arrives damaged

  fl::LoopbackCluster cluster(fed, core::default_model_factory(fed, 99), 1,
                              options);
  fl::TransportDispatcher dispatcher(cluster.server_transports(),
                                     dispatch_config_for(engine));
  engine.dispatcher = &dispatcher;
  fl::FederatedTrainer trainer(fed, core::default_model_factory(fed, 99),
                               engine);
  RecordingSelector selector;
  const auto history = trainer.run(selector);

  // The run completes every round despite the wire damage...
  ASSERT_EQ(history.records().size(), 8u);
  // ...the damage is charged as rejected (wasted) work...
  std::size_t rejected = 0;
  for (const auto& r : history.records()) rejected += r.rejected.size();
  EXPECT_GT(rejected, 0u);
  // ...the selector heard about each failure as CorruptUpdate...
  std::size_t corrupt_reports = 0;
  for (auto kind : selector.failures) {
    if (kind == fl::FailureKind::CorruptUpdate) ++corrupt_reports;
  }
  EXPECT_EQ(corrupt_reports, rejected);
  // ...and the wire telemetry counted the damaged frames.
  EXPECT_GE(net::NetMetrics::get().frames_corrupt.value() - before, rejected);
  obs::set_metrics_enabled(false);
}

TEST(EngineOverTransport, WorkerLoopsServeEveryDispatchedJob) {
  const auto fed = make_fed();
  auto engine = make_engine(5);
  fl::LoopbackCluster cluster(fed, core::default_model_factory(fed, 99), 2);
  fl::TransportDispatcher dispatcher(cluster.server_transports(),
                                     dispatch_config_for(engine));
  engine.dispatcher = &dispatcher;
  fl::FederatedTrainer trainer(fed, core::default_model_factory(fed, 99),
                               engine);
  select::RandomSelector selector;
  const auto history = trainer.run(selector);
  cluster.shutdown();
  EXPECT_EQ(cluster.jobs_served(0) + cluster.jobs_served(1),
            history.total_dispatched());
}

}  // namespace
}  // namespace haccs
