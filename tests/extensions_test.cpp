// Tests for the extension features beyond the paper's core algorithm:
// FedProx local training, alternative summary distances, distribution drift
// with dynamic re-clustering, and the gradient-direction scheduler.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/core/gradient_selector.hpp"
#include "src/core/haccs_system.hpp"
#include "src/fl/fedprox.hpp"
#include "src/select/random_selector.hpp"
#include "src/stats/distance.hpp"
#include "src/stats/metrics.hpp"

namespace haccs {
namespace {

data::SyntheticImageGenerator small_gen() {
  data::SyntheticImageConfig cfg;
  cfg.classes = 10;
  cfg.height = 8;
  cfg.width = 8;
  cfg.noise_stddev = 0.3;
  return data::SyntheticImageGenerator(cfg);
}

// ---- FedProx ----

TEST(FedProx, ZeroMuMatchesPlainLocalSgdDirection) {
  auto gen = small_gen();
  data::Dataset ds(gen.sample_shape(), 10);
  Rng fill_rng(3);
  for (std::int64_t c = 0; c < 4; ++c) gen.fill(ds, c, 20, fill_rng);

  auto make_model = [] {
    Rng rng(7);
    nn::Sequential m;
    m.add(std::make_unique<nn::Flatten>());
    m.add(std::make_unique<nn::Dense>(64, 16, rng));
    m.add(std::make_unique<nn::ReLU>());
    m.add(std::make_unique<nn::Dense>(16, 10, rng));
    return m;
  };
  auto m1 = make_model();
  auto m2 = make_model();
  const auto global = m1.get_parameters();

  fl::LocalTrainConfig plain;
  plain.epochs = 2;
  plain.sgd.learning_rate = 0.05;
  Rng r1(11);
  fl::train_local(m1, ds, plain, r1);

  fl::FedProxConfig prox;
  prox.local = plain;
  prox.mu = 0.0;
  Rng r2(11);
  fl::train_local_fedprox(m2, global, ds, prox, r2);

  const auto p1 = m1.get_parameters();
  const auto p2 = m2.get_parameters();
  for (std::size_t i = 0; i < p1.size(); i += 37) {
    EXPECT_NEAR(p1[i], p2[i], 1e-5) << "param " << i;
  }
}

TEST(FedProx, ProximalTermPullsTowardGlobal) {
  auto gen = small_gen();
  data::Dataset ds(gen.sample_shape(), 10);
  Rng fill_rng(5);
  for (std::int64_t c = 0; c < 4; ++c) gen.fill(ds, c, 20, fill_rng);

  auto make_model = [] {
    Rng rng(9);
    nn::Sequential m;
    m.add(std::make_unique<nn::Flatten>());
    m.add(std::make_unique<nn::Dense>(64, 10, rng));
    return m;
  };
  auto weak = make_model();
  auto strong = make_model();
  const auto global = weak.get_parameters();

  fl::FedProxConfig cfg;
  cfg.local.epochs = 5;
  cfg.local.sgd.learning_rate = 0.05;
  cfg.mu = 0.0;
  Rng r1(13);
  fl::train_local_fedprox(weak, global, ds, cfg, r1);
  cfg.mu = 5.0;  // heavy proximal anchor
  Rng r2(13);
  fl::train_local_fedprox(strong, global, ds, cfg, r2);

  auto drift_from_global = [&](nn::Sequential& m) {
    const auto p = m.get_parameters();
    double acc = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i) {
      const double d = p[i] - global[i];
      acc += d * d;
    }
    return std::sqrt(acc);
  };
  EXPECT_LT(drift_from_global(strong), drift_from_global(weak) * 0.8);
}

TEST(FedProx, PartialWorkRunsFewerBatches) {
  auto gen = small_gen();
  data::Dataset ds(gen.sample_shape(), 10);
  Rng fill_rng(7);
  for (std::int64_t c = 0; c < 4; ++c) gen.fill(ds, c, 32, fill_rng);

  Rng model_rng(15);
  nn::Sequential model = nn::make_mlp(64, {8}, 10, model_rng);
  nn::Sequential model2;
  {
    Rng rng2(15);
    model2 = nn::make_mlp(64, {8}, 10, rng2);
  }
  const auto global = model.get_parameters();

  fl::FedProxConfig full;
  full.local.epochs = 2;
  full.local.batch_size = 32;
  full.work_fraction = 1.0;
  Rng r1(17);
  // 128 samples / batch 32 = 4 batches per epoch x 2 epochs = 8 batches.
  // Wrap input into 4D for the MLP: use Flatten-free MLP on flat features,
  // so reshape the dataset? make_mlp expects (N, features); Dataset batches
  // are (N, C, H, W). Add a flatten layer instead:
  (void)model2;
  nn::Sequential flat_model;
  {
    Rng rng3(15);
    flat_model.add(std::make_unique<nn::Flatten>());
    flat_model.add(std::make_unique<nn::Dense>(64, 10, rng3));
  }
  nn::Sequential flat_model_half;
  {
    Rng rng4(15);
    flat_model_half.add(std::make_unique<nn::Flatten>());
    flat_model_half.add(std::make_unique<nn::Dense>(64, 10, rng4));
  }
  const auto flat_global = flat_model.get_parameters();
  const auto full_result =
      fl::train_local_fedprox(flat_model, flat_global, ds, full, r1);
  EXPECT_EQ(full_result.batches, 8u);

  fl::FedProxConfig half = full;
  half.work_fraction = 0.5;
  Rng r2(17);
  const auto half_result =
      fl::train_local_fedprox(flat_model_half, flat_global, ds, half, r2);
  EXPECT_EQ(half_result.batches, 4u);
}

TEST(FedProx, WorkFractionHelper) {
  EXPECT_DOUBLE_EQ(fl::fedprox_work_fraction(1.0), 1.0);
  EXPECT_DOUBLE_EQ(fl::fedprox_work_fraction(2.0), 0.5);
  EXPECT_DOUBLE_EQ(fl::fedprox_work_fraction(10.0), 0.3);  // floored
  EXPECT_DOUBLE_EQ(fl::fedprox_work_fraction(0.5), 1.0);   // clamped to 1
  EXPECT_THROW(fl::fedprox_work_fraction(1.0, 0.0), std::invalid_argument);
}

TEST(FedProx, RejectsBadConfig) {
  auto gen = small_gen();
  data::Dataset ds(gen.sample_shape(), 10);
  Rng fill_rng(9);
  gen.fill(ds, 0, 8, fill_rng);
  Rng model_rng(1);
  nn::Sequential model;
  model.add(std::make_unique<nn::Flatten>());
  model.add(std::make_unique<nn::Dense>(64, 10, model_rng));
  const auto global = model.get_parameters();
  Rng rng(1);

  fl::FedProxConfig bad_mu;
  bad_mu.mu = -1.0;
  EXPECT_THROW(fl::train_local_fedprox(model, global, ds, bad_mu, rng),
               std::invalid_argument);
  fl::FedProxConfig bad_work;
  bad_work.work_fraction = 0.0;
  EXPECT_THROW(fl::train_local_fedprox(model, global, ds, bad_work, rng),
               std::invalid_argument);
  fl::FedProxConfig ok;
  std::vector<float> wrong_global(global.size() + 1, 0.0f);
  EXPECT_THROW(fl::train_local_fedprox(model, wrong_global, ds, ok, rng),
               std::invalid_argument);
}

TEST(FedProx, EngineIntegrationTrains) {
  data::SyntheticImageConfig gcfg;
  gcfg.classes = 4;
  gcfg.height = 8;
  gcfg.width = 8;
  gcfg.noise_stddev = 0.3;
  data::SyntheticImageGenerator gen(gcfg);
  data::PartitionConfig pcfg;
  pcfg.num_clients = 8;
  pcfg.min_samples = 40;
  pcfg.max_samples = 60;
  pcfg.test_samples = 12;
  Rng rng(43);
  const auto fed = data::partition_majority_label(gen, pcfg, rng);

  fl::EngineConfig cfg;
  cfg.rounds = 60;
  cfg.clients_per_round = 3;
  cfg.eval_every = 10;
  cfg.local.sgd.learning_rate = 0.08;
  cfg.initial_loss = std::log(4.0);
  cfg.algorithm = fl::LocalAlgorithm::FedProx;
  cfg.fedprox_mu = 0.01;
  fl::FederatedTrainer trainer(fed, core::default_model_factory(fed, 99), cfg);
  core::HaccsConfig haccs;
  haccs.initial_loss = cfg.initial_loss;
  core::HaccsSelector selector(fed, haccs);
  const auto history = trainer.run(selector);
  EXPECT_GT(history.best_accuracy(), 0.5);
}

TEST(EngineCallback, OnEpochBeginFiresEveryEpoch) {
  auto gen = small_gen();
  data::PartitionConfig pcfg;
  pcfg.num_clients = 6;
  pcfg.min_samples = 20;
  pcfg.max_samples = 30;
  pcfg.test_samples = 8;
  Rng rng(47);
  const auto fed = data::partition_majority_label(gen, pcfg, rng);

  fl::EngineConfig cfg;
  cfg.rounds = 7;
  cfg.clients_per_round = 2;
  cfg.eval_every = 7;
  std::vector<std::size_t> fired;
  cfg.on_epoch_begin = [&](std::size_t epoch) { fired.push_back(epoch); };
  fl::FederatedTrainer trainer(fed, core::default_model_factory(fed, 99), cfg);
  select::RandomSelector selector;
  trainer.run(selector);
  ASSERT_EQ(fired.size(), 7u);
  for (std::size_t e = 0; e < 7; ++e) EXPECT_EQ(fired[e], e);
}

// ---- Alternative distances ----

TEST(DistanceKinds, AllKindsSatisfyBasicAxioms) {
  const std::vector<double> p = {10, 0, 5, 5};
  const std::vector<double> q = {0, 10, 5, 5};
  for (auto kind :
       {stats::DistanceKind::Hellinger, stats::DistanceKind::TotalVariation,
        stats::DistanceKind::SymmetricKl, stats::DistanceKind::JensenShannon,
        stats::DistanceKind::Cosine}) {
    const double dpq = stats::distribution_distance(p, q, kind);
    const double dqp = stats::distribution_distance(q, p, kind);
    const double dpp = stats::distribution_distance(p, p, kind);
    EXPECT_NEAR(dpp, 0.0, 1e-6) << stats::to_string(kind);
    EXPECT_NEAR(dpq, dqp, 1e-9) << stats::to_string(kind);
    EXPECT_GT(dpq, 0.0) << stats::to_string(kind);
  }
}

TEST(DistanceKinds, BoundedKindsStayInUnitInterval) {
  Rng rng(21);
  for (int rep = 0; rep < 50; ++rep) {
    std::vector<double> p(8), q(8);
    for (auto& v : p) v = rng.uniform() < 0.3 ? 0.0 : rng.uniform(0, 100);
    for (auto& v : q) v = rng.uniform() < 0.3 ? 0.0 : rng.uniform(0, 100);
    for (auto kind :
         {stats::DistanceKind::Hellinger, stats::DistanceKind::TotalVariation,
          stats::DistanceKind::JensenShannon, stats::DistanceKind::Cosine}) {
      const double d = stats::distribution_distance(p, q, kind);
      EXPECT_GE(d, 0.0) << stats::to_string(kind);
      EXPECT_LE(d, 1.0 + 1e-9) << stats::to_string(kind);
    }
  }
}

TEST(DistanceKinds, DisjointSupportsAreMaximal) {
  const std::vector<double> p = {1, 0};
  const std::vector<double> q = {0, 1};
  EXPECT_NEAR(stats::distribution_distance(p, q, stats::DistanceKind::Hellinger),
              1.0, 1e-9);
  EXPECT_NEAR(
      stats::distribution_distance(p, q, stats::DistanceKind::TotalVariation),
      1.0, 1e-9);
  EXPECT_NEAR(
      stats::distribution_distance(p, q, stats::DistanceKind::JensenShannon),
      1.0, 1e-3);
  EXPECT_NEAR(stats::distribution_distance(p, q, stats::DistanceKind::Cosine),
              1.0, 1e-9);
}

TEST(DistanceKinds, ParseRoundTrip) {
  for (auto kind :
       {stats::DistanceKind::Hellinger, stats::DistanceKind::TotalVariation,
        stats::DistanceKind::SymmetricKl, stats::DistanceKind::JensenShannon,
        stats::DistanceKind::Cosine}) {
    EXPECT_EQ(stats::parse_distance_kind(stats::to_string(kind)), kind);
  }
  EXPECT_THROW(stats::parse_distance_kind("euclid"), std::invalid_argument);
}

TEST(DistanceKinds, ClusteringWorksUnderEveryKind) {
  auto gen = small_gen();
  Rng rng(23);
  const auto fed = data::partition_two_per_label(gen, 400, 10, rng);
  for (auto kind :
       {stats::DistanceKind::Hellinger, stats::DistanceKind::TotalVariation,
        stats::DistanceKind::JensenShannon}) {
    core::HaccsConfig cfg;
    cfg.response_distance = kind;
    const auto labels = core::cluster_clients(fed, cfg);
    EXPECT_GE(stats::exact_cluster_recovery(labels, fed.true_group), 0.9)
        << stats::to_string(kind);
  }
}

// ---- Drift + dynamic re-clustering ----

TEST(Drift, ApplyLabelDriftChangesMixtures) {
  auto gen = small_gen();
  data::PartitionConfig pcfg;
  pcfg.num_clients = 10;
  pcfg.min_samples = 50;
  pcfg.max_samples = 50;
  pcfg.test_samples = 10;
  Rng rng(25);
  auto fed = data::partition_majority_label(gen, pcfg, rng);
  const auto before = fed.true_label_distribution;

  Rng drift_rng(26);
  data::apply_label_drift(fed, gen, 0.5, drift_rng);

  std::size_t changed = 0;
  for (std::size_t i = 0; i < fed.num_clients(); ++i) {
    if (fed.true_label_distribution[i] != before[i]) ++changed;
    // Sizes preserved.
    EXPECT_EQ(fed.clients[i].train.size(), 50u);
    EXPECT_EQ(fed.clients[i].test.size(), 10u);
    // Data matches the (possibly new) mixture.
    const auto counts = fed.clients[i].train.label_counts();
    for (std::size_t c = 0; c < counts.size(); ++c) {
      if (fed.true_label_distribution[i][c] == 0.0) {
        EXPECT_EQ(counts[c], 0.0);
      }
    }
  }
  EXPECT_GT(changed, 0u);
  EXPECT_LE(changed, 5u);
}

TEST(Drift, ZeroFractionIsNoop) {
  auto gen = small_gen();
  data::PartitionConfig pcfg;
  pcfg.num_clients = 6;
  pcfg.test_samples = 5;
  Rng rng(27);
  auto fed = data::partition_majority_label(gen, pcfg, rng);
  const auto before = fed.true_label_distribution;
  Rng drift_rng(28);
  data::apply_label_drift(fed, gen, 0.0, drift_rng);
  EXPECT_EQ(fed.true_label_distribution, before);
  EXPECT_THROW(data::apply_label_drift(fed, gen, 1.5, drift_rng),
               std::invalid_argument);
}

TEST(Drift, ReclusteringTracksDriftedDistributions) {
  auto gen = small_gen();
  Rng rng(29);
  auto fed = data::partition_two_per_label(gen, 300, 10, rng);

  core::HaccsConfig cfg;
  cfg.recluster_every = 5;
  core::HaccsSelector selector(fed, cfg);
  const auto before = selector.cluster_of();

  // Drift everything, then advance past a recluster boundary via select().
  Rng drift_rng(31);
  data::apply_label_drift(fed, gen, 1.0, drift_rng);

  std::vector<fl::ClientRuntimeInfo> view(fed.num_clients());
  for (std::size_t i = 0; i < view.size(); ++i) {
    view[i].id = i;
    view[i].latency_s = 1.0 + static_cast<double>(i);
    view[i].num_samples = 300;
    view[i].last_loss = 1.0;
    view[i].available = true;
  }
  Rng sel_rng(33);
  selector.select(3, view, /*epoch=*/5, sel_rng);
  const auto after = selector.cluster_of();

  // The drifted mixtures are new random majorities: the assignment must
  // track them (clusters defined by current data, not the stale summary).
  const auto fresh = core::cluster_clients(fed, core::HaccsConfig{});
  core::HaccsSelector fresh_selector(fresh, core::HaccsConfig{});
  // Compare partitions via pairwise co-membership with the reclustered one.
  const auto scores = stats::pairwise_clustering_scores(
      after, fresh_selector.cluster_of());
  EXPECT_GT(scores.rand_index, 0.95);
  (void)before;
}

// ---- Gradient-direction selector ----

TEST(GradientSelector, ValidatesConfig) {
  core::GradientSelectorConfig bad;
  bad.sketch_dim = 0;
  EXPECT_THROW(core::GradientClusterSelector{bad}, std::invalid_argument);
  core::GradientSelectorConfig bad2;
  bad2.recluster_every = 0;
  EXPECT_THROW(core::GradientClusterSelector{bad2}, std::invalid_argument);
}

TEST(GradientSelector, SketchesAreUnitNormAndDeterministic) {
  core::GradientSelectorConfig cfg;
  cfg.sketch_dim = 16;
  core::GradientClusterSelector selector(cfg);
  std::vector<fl::ClientRuntimeInfo> view(3);
  for (std::size_t i = 0; i < 3; ++i) view[i].id = i;
  selector.initialize(view);

  std::vector<float> update(100);
  Rng rng(35);
  for (auto& v : update) v = static_cast<float>(rng.normal());
  selector.report_update(0, update, 0);
  selector.report_update(1, update, 0);

  const auto s0 = selector.sketch(0);
  const auto s1 = selector.sketch(1);
  ASSERT_EQ(s0.size(), 16u);
  double norm = 0.0;
  for (std::size_t d = 0; d < s0.size(); ++d) {
    EXPECT_EQ(s0[d], s1[d]);  // same update => same sketch
    norm += static_cast<double>(s0[d]) * s0[d];
  }
  EXPECT_NEAR(norm, 1.0, 1e-5);
  EXPECT_TRUE(selector.sketch(2).empty());  // never reported
}

TEST(GradientSelector, SimilarUpdatesCluster) {
  core::GradientSelectorConfig cfg;
  cfg.sketch_dim = 32;
  cfg.recluster_every = 1;
  cfg.eps = 0.3;
  core::GradientClusterSelector selector(cfg);

  const std::size_t n = 6;
  std::vector<fl::ClientRuntimeInfo> view(n);
  for (std::size_t i = 0; i < n; ++i) {
    view[i].id = i;
    view[i].latency_s = 1.0;
    view[i].num_samples = 10;
    view[i].last_loss = 1.0;
    view[i].available = true;
  }
  selector.initialize(view);

  // Two gradient directions; clients 0-2 share one, 3-5 the other.
  Rng rng(37);
  std::vector<float> dir_a(200), dir_b(200);
  for (auto& v : dir_a) v = static_cast<float>(rng.normal());
  for (auto& v : dir_b) v = static_cast<float>(rng.normal());
  for (std::size_t i = 0; i < n; ++i) {
    auto update = i < 3 ? dir_a : dir_b;
    // Small per-client perturbation.
    for (auto& v : update) v += static_cast<float>(rng.normal(0.0, 0.05));
    selector.report_update(i, update, 0);
  }
  Rng sel_rng(39);
  selector.select(2, view, /*epoch=*/1, sel_rng);  // triggers recluster

  const auto& labels = selector.cluster_of();
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_EQ(labels[4], labels[5]);
  EXPECT_NE(labels[0], labels[3]);
}

TEST(GradientSelector, RunsEndToEndInEngine) {
  auto gen = small_gen();
  data::PartitionConfig pcfg;
  pcfg.num_clients = 10;
  pcfg.min_samples = 30;
  pcfg.max_samples = 50;
  pcfg.test_samples = 10;
  Rng rng(41);
  const auto fed = data::partition_majority_label(gen, pcfg, rng);

  fl::EngineConfig ecfg;
  ecfg.rounds = 12;
  ecfg.clients_per_round = 4;
  ecfg.eval_every = 6;
  ecfg.local.sgd.learning_rate = 0.08;
  fl::FederatedTrainer trainer(fed, core::default_model_factory(fed, 99), ecfg);

  core::GradientSelectorConfig cfg;
  cfg.recluster_every = 3;
  core::GradientClusterSelector selector(cfg);
  const auto history = trainer.run(selector);
  EXPECT_EQ(history.records().size(), 12u);
  for (const auto& r : history.records()) {
    EXPECT_FALSE(r.selected.empty());
  }
}

}  // namespace
}  // namespace haccs
