// Tests for src/tensor: tensor container semantics and the GEMM /
// convolution / pooling kernels, including numerical checks of the
// convolution backward passes against finite differences.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/tensor/ops.hpp"
#include "src/tensor/tensor.hpp"

namespace haccs {
namespace {

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6u);
  for (float v : t.data()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, RejectsZeroExtent) {
  EXPECT_THROW(Tensor({2, 0}), std::invalid_argument);
}

TEST(Tensor, ValueConstructorChecksSize) {
  EXPECT_THROW(Tensor({2, 2}, {1.0f, 2.0f}), std::invalid_argument);
  Tensor ok({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(ok.at(1, 1), 4.0f);
}

TEST(Tensor, At2dAnd4dIndexing) {
  Tensor t2({2, 3});
  t2.at(1, 2) = 5.0f;
  EXPECT_EQ(t2[5], 5.0f);

  Tensor t4({2, 3, 4, 5});
  t4.at(1, 2, 3, 4) = 7.0f;
  EXPECT_EQ(t4[((1 * 3 + 2) * 4 + 3) * 5 + 4], 7.0f);
}

TEST(Tensor, AtWrongRankThrows) {
  Tensor t({2, 3, 4});
  EXPECT_THROW(t.at(0, 0), std::logic_error);
  EXPECT_THROW(t.at(0, 0, 0, 0), std::logic_error);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.at(2, 1), 6.0f);
  EXPECT_THROW(t.reshaped({4, 2}), std::invalid_argument);
}

TEST(Tensor, Reductions) {
  Tensor t({4}, {1, -2, 3, 6});
  EXPECT_FLOAT_EQ(t.sum(), 8.0f);
  EXPECT_FLOAT_EQ(t.mean(), 2.0f);
  EXPECT_FLOAT_EQ(t.min(), -2.0f);
  EXPECT_FLOAT_EQ(t.max(), 6.0f);
  EXPECT_DOUBLE_EQ(t.squared_norm(), 1 + 4 + 9 + 36);
}

TEST(Tensor, InPlaceArithmetic) {
  Tensor a({2}, {1, 2});
  Tensor b({2}, {3, 4});
  a += b;
  EXPECT_FLOAT_EQ(a[0], 4.0f);
  a -= b;
  EXPECT_FLOAT_EQ(a[1], 2.0f);
  a *= 2.0f;
  EXPECT_FLOAT_EQ(a[0], 2.0f);
  a.add_scaled(b, 0.5f);
  EXPECT_FLOAT_EQ(a[1], 6.0f);
}

TEST(Tensor, ShapeMismatchArithmeticThrows) {
  Tensor a({2}), b({3});
  EXPECT_THROW(a += b, InternalError);
}

// ---- GEMM ----

TEST(Gemm, MatchesHandComputedProduct) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c({2, 2});
  ops::gemm(a, b, c);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Gemm, AccumulateAddsToExisting) {
  Tensor a({1, 1}, {2});
  Tensor b({1, 1}, {3});
  Tensor c({1, 1}, {10});
  ops::gemm(a, b, c, /*accumulate=*/true);
  EXPECT_FLOAT_EQ(c[0], 16.0f);
}

TEST(Gemm, ShapeMismatchThrows) {
  Tensor a({2, 3}), b({2, 2}), c({2, 2});
  EXPECT_THROW(ops::gemm(a, b, c), std::invalid_argument);
}

// gemm_bt and gemm_at agree with explicit transposition through gemm.
TEST(Gemm, TransposedVariantsAgree) {
  Rng rng(3);
  const std::size_t m = 5, k = 7, n = 4;
  Tensor a({m, k}), b_t({n, k}), a_t({k, m}), b({k, n});
  for (auto& v : a.data()) v = static_cast<float>(rng.normal());
  for (auto& v : b.data()) v = static_cast<float>(rng.normal());
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < m; ++j) a_t.at(i, j) = a.at(j, i);
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) b_t.at(i, j) = b.at(j, i);
  }
  Tensor reference({m, n}), via_bt({m, n}), via_at({m, n});
  ops::gemm(a, b, reference);
  ops::gemm_bt(a, b_t, via_bt);
  ops::gemm_at(a_t, b, via_at);
  for (std::size_t i = 0; i < m * n; ++i) {
    EXPECT_NEAR(via_bt[i], reference[i], 1e-4f);
    EXPECT_NEAR(via_at[i], reference[i], 1e-4f);
  }
}

// ---- Convolution ----

ops::Conv2dShape small_conv() {
  return ops::Conv2dShape{/*batch=*/2, /*in_channels=*/2, /*in_h=*/5,
                          /*in_w=*/5, /*out_channels=*/3, /*kernel=*/3,
                          /*stride=*/1, /*padding=*/1};
}

TEST(Conv2d, OutputShape) {
  const auto s = small_conv();
  EXPECT_EQ(s.out_h(), 5u);
  EXPECT_EQ(s.out_w(), 5u);
  const ops::Conv2dShape strided{1, 1, 8, 8, 1, 3, 2, 0};
  EXPECT_EQ(strided.out_h(), 3u);
}

TEST(Conv2d, IdentityKernelCopiesInput) {
  // 1x1 kernel with weight 1 and zero bias is the identity.
  const ops::Conv2dShape s{1, 1, 4, 4, 1, 1, 1, 0};
  Tensor input({1, 1, 4, 4});
  Rng rng(5);
  for (auto& v : input.data()) v = static_cast<float>(rng.normal());
  Tensor weight({1, 1, 1, 1}, {1.0f});
  Tensor bias({1});
  Tensor output({1, 1, 4, 4});
  ops::conv2d_forward(s, input, weight, bias, output);
  for (std::size_t i = 0; i < input.size(); ++i) {
    EXPECT_FLOAT_EQ(output[i], input[i]);
  }
}

TEST(Conv2d, BiasIsAdded) {
  const ops::Conv2dShape s{1, 1, 3, 3, 1, 1, 1, 0};
  Tensor input({1, 1, 3, 3});
  Tensor weight({1, 1, 1, 1}, {0.0f});
  Tensor bias({1}, {2.5f});
  Tensor output({1, 1, 3, 3});
  ops::conv2d_forward(s, input, weight, bias, output);
  for (float v : output.data()) EXPECT_FLOAT_EQ(v, 2.5f);
}

// Finite-difference check of conv2d backward passes.
TEST(Conv2d, BackwardMatchesFiniteDifferences) {
  const auto s = small_conv();
  Rng rng(7);
  Tensor input({s.batch, s.in_channels, s.in_h, s.in_w});
  Tensor weight({s.out_channels, s.in_channels, s.kernel, s.kernel});
  Tensor bias({s.out_channels});
  for (auto& v : input.data()) v = static_cast<float>(rng.normal(0, 0.5));
  for (auto& v : weight.data()) v = static_cast<float>(rng.normal(0, 0.5));
  for (auto& v : bias.data()) v = static_cast<float>(rng.normal(0, 0.5));

  const std::size_t out_size = s.batch * s.out_channels * s.out_h() * s.out_w();
  Tensor grad_out({s.batch, s.out_channels, s.out_h(), s.out_w()});
  for (auto& v : grad_out.data()) v = static_cast<float>(rng.normal(0, 0.5));

  // Scalar objective: L = sum(output * grad_out).
  auto objective = [&](const Tensor& in, const Tensor& w, const Tensor& b) {
    Tensor out({s.batch, s.out_channels, s.out_h(), s.out_w()});
    ops::conv2d_forward(s, in, w, b, out);
    double acc = 0.0;
    for (std::size_t i = 0; i < out_size; ++i) {
      acc += static_cast<double>(out[i]) * grad_out[i];
    }
    return acc;
  };

  Tensor grad_input({s.batch, s.in_channels, s.in_h, s.in_w});
  Tensor grad_weight({s.out_channels, s.in_channels, s.kernel, s.kernel});
  Tensor grad_bias({s.out_channels});
  ops::conv2d_backward_input(s, grad_out, weight, grad_input);
  ops::conv2d_backward_params(s, input, grad_out, grad_weight, grad_bias);

  const float eps = 1e-2f;
  // Check a sample of coordinates in each gradient tensor.
  for (std::size_t i = 0; i < grad_input.size(); i += 17) {
    Tensor plus = input, minus = input;
    plus[i] += eps;
    minus[i] -= eps;
    const double fd =
        (objective(plus, weight, bias) - objective(minus, weight, bias)) /
        (2.0 * eps);
    EXPECT_NEAR(grad_input[i], fd, 5e-2) << "grad_input[" << i << "]";
  }
  for (std::size_t i = 0; i < grad_weight.size(); i += 7) {
    Tensor plus = weight, minus = weight;
    plus[i] += eps;
    minus[i] -= eps;
    const double fd =
        (objective(input, plus, bias) - objective(input, minus, bias)) /
        (2.0 * eps);
    EXPECT_NEAR(grad_weight[i], fd, 5e-2) << "grad_weight[" << i << "]";
  }
  for (std::size_t i = 0; i < grad_bias.size(); ++i) {
    Tensor plus = bias, minus = bias;
    plus[i] += eps;
    minus[i] -= eps;
    const double fd =
        (objective(input, weight, plus) - objective(input, weight, minus)) /
        (2.0 * eps);
    EXPECT_NEAR(grad_bias[i], fd, 5e-2) << "grad_bias[" << i << "]";
  }
}

TEST(Conv2d, Im2colMatchesDirect) {
  // Several shapes spanning both sides of the dispatch threshold.
  const std::vector<ops::Conv2dShape> shapes = {
      {2, 1, 8, 8, 3, 3, 1, 1},    // small
      {3, 3, 16, 16, 8, 5, 1, 2},  // large (im2col territory)
      {1, 2, 10, 10, 4, 3, 2, 0},  // strided, no padding
      {2, 1, 7, 9, 2, 3, 1, 1},    // non-square input
  };
  Rng rng(21);
  for (const auto& s : shapes) {
    Tensor input({s.batch, s.in_channels, s.in_h, s.in_w});
    Tensor weight({s.out_channels, s.in_channels, s.kernel, s.kernel});
    Tensor bias({s.out_channels});
    for (auto& v : input.data()) v = static_cast<float>(rng.normal());
    for (auto& v : weight.data()) v = static_cast<float>(rng.normal());
    for (auto& v : bias.data()) v = static_cast<float>(rng.normal());
    Tensor direct({s.batch, s.out_channels, s.out_h(), s.out_w()});
    Tensor gemm_out({s.batch, s.out_channels, s.out_h(), s.out_w()});
    ops::conv2d_forward_direct(s, input, weight, bias, direct);
    ops::conv2d_forward_im2col(s, input, weight, bias, gemm_out);
    for (std::size_t i = 0; i < direct.size(); ++i) {
      ASSERT_NEAR(direct[i], gemm_out[i], 1e-4f)
          << "shape(" << s.in_channels << "," << s.in_h << ") idx " << i;
    }
  }
}

TEST(Conv2d, Im2colPatchLayout) {
  // 1x1 "image" of 2 channels under a 1x1 kernel: columns == pixels.
  const ops::Conv2dShape s{1, 2, 2, 2, 1, 1, 1, 0};
  const std::vector<float> sample = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<float> columns(2 * 4);
  ops::im2col(s, sample.data(), columns.data());
  EXPECT_EQ(columns, sample);  // identity unroll for 1x1 kernels
}

// ---- Max pooling ----

TEST(MaxPool, SelectsWindowMaxima) {
  const ops::Pool2dShape s{1, 1, 4, 4, 2};
  Tensor input({1, 1, 4, 4}, {1, 2, 3, 4,   //
                              5, 6, 7, 8,   //
                              9, 10, 11, 12,  //
                              13, 14, 15, 16});
  Tensor output({1, 1, 2, 2});
  std::vector<std::size_t> argmax;
  ops::maxpool_forward(s, input, output, argmax);
  EXPECT_FLOAT_EQ(output.at(0, 0, 0, 0), 6.0f);
  EXPECT_FLOAT_EQ(output.at(0, 0, 0, 1), 8.0f);
  EXPECT_FLOAT_EQ(output.at(0, 0, 1, 0), 14.0f);
  EXPECT_FLOAT_EQ(output.at(0, 0, 1, 1), 16.0f);
}

TEST(MaxPool, BackwardRoutesGradToArgmax) {
  const ops::Pool2dShape s{1, 1, 2, 2, 2};
  Tensor input({1, 1, 2, 2}, {1, 9, 3, 4});
  Tensor output({1, 1, 1, 1});
  std::vector<std::size_t> argmax;
  ops::maxpool_forward(s, input, output, argmax);

  Tensor grad_out({1, 1, 1, 1}, {5.0f});
  Tensor grad_in({1, 1, 2, 2});
  ops::maxpool_backward(s, grad_out, argmax, grad_in);
  EXPECT_FLOAT_EQ(grad_in[1], 5.0f);  // position of the 9
  EXPECT_FLOAT_EQ(grad_in[0], 0.0f);
  EXPECT_FLOAT_EQ(grad_in[2], 0.0f);
  EXPECT_FLOAT_EQ(grad_in[3], 0.0f);
}

}  // namespace
}  // namespace haccs
