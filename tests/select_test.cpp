// Tests for src/select: the Random, TiFL, and Oort baseline strategies.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/select/oort.hpp"
#include "src/select/random_selector.hpp"
#include "src/select/tifl.hpp"

namespace haccs::select {
namespace {

std::vector<fl::ClientRuntimeInfo> make_view(std::size_t n) {
  std::vector<fl::ClientRuntimeInfo> view(n);
  for (std::size_t i = 0; i < n; ++i) {
    view[i].id = i;
    // Latency increases with id: client 0 is the fastest.
    view[i].latency_s = 1.0 + static_cast<double>(i);
    view[i].num_samples = 100;
    view[i].last_loss = 1.0;
    view[i].available = true;
  }
  return view;
}

TEST(RandomSelectorTest, ReturnsKDistinctAvailable) {
  RandomSelector s;
  auto view = make_view(10);
  view[3].available = false;
  Rng rng(1);
  for (int rep = 0; rep < 50; ++rep) {
    const auto picks = s.select(4, view, 0, rng);
    EXPECT_EQ(picks.size(), 4u);
    std::set<std::size_t> unique(picks.begin(), picks.end());
    EXPECT_EQ(unique.size(), 4u);
    EXPECT_EQ(unique.count(3), 0u);
  }
}

TEST(RandomSelectorTest, ReturnsAllWhenFewerThanK) {
  RandomSelector s;
  auto view = make_view(3);
  Rng rng(2);
  const auto picks = s.select(10, view, 0, rng);
  EXPECT_EQ(picks.size(), 3u);
}

TEST(RandomSelectorTest, CoversAllClientsOverTime) {
  RandomSelector s;
  auto view = make_view(8);
  Rng rng(3);
  std::set<std::size_t> seen;
  for (int rep = 0; rep < 100; ++rep) {
    for (std::size_t id : s.select(2, view, 0, rng)) seen.insert(id);
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Tifl, TiersOrderedByLatency) {
  TiflConfig cfg;
  cfg.num_tiers = 5;
  TiflSelector s(cfg);
  auto view = make_view(25);
  s.initialize(view);
  ASSERT_EQ(s.num_tiers(), 5u);
  // Lower-latency clients land in lower tiers; with our monotone latencies,
  // tier boundaries are exactly id/5.
  for (std::size_t i = 0; i < 25; ++i) {
    EXPECT_EQ(s.tier_of()[i], i / 5) << "client " << i;
  }
}

TEST(Tifl, FewerClientsThanTiers) {
  TiflConfig cfg;
  cfg.num_tiers = 10;
  TiflSelector s(cfg);
  auto view = make_view(4);
  s.initialize(view);
  EXPECT_EQ(s.num_tiers(), 4u);
}

TEST(Tifl, SelectsWithinOneTier) {
  TiflConfig cfg;
  cfg.num_tiers = 5;
  TiflSelector s(cfg);
  auto view = make_view(25);
  s.initialize(view);
  Rng rng(5);
  const auto picks = s.select(3, view, 0, rng);
  EXPECT_EQ(picks.size(), 3u);
  std::set<std::size_t> tiers;
  for (std::size_t id : picks) tiers.insert(s.tier_of()[id]);
  EXPECT_EQ(tiers.size(), 1u);  // all picks from the sampled tier
}

TEST(Tifl, SpillsIntoNeighborTiersWhenShort) {
  TiflConfig cfg;
  cfg.num_tiers = 5;
  TiflSelector s(cfg);
  auto view = make_view(25);
  s.initialize(view);
  Rng rng(7);
  // Ask for more clients than one tier holds.
  const auto picks = s.select(8, view, 0, rng);
  EXPECT_EQ(picks.size(), 8u);
  std::set<std::size_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 8u);
}

TEST(Tifl, HighLossTiersSampledMoreOften) {
  TiflConfig cfg;
  cfg.num_tiers = 2;
  cfg.expected_rounds = 10000;  // effectively unlimited credits
  TiflSelector s(cfg);
  auto view = make_view(10);
  s.initialize(view);
  // Tier 0 reports low loss, tier 1 high loss.
  for (std::size_t id = 0; id < 5; ++id) s.report_result(id, 0.1, 0);
  for (std::size_t id = 5; id < 10; ++id) s.report_result(id, 2.0, 0);
  Rng rng(9);
  int tier1_picked = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    const auto picks = s.select(1, view, 1, rng);
    ASSERT_EQ(picks.size(), 1u);
    if (s.tier_of()[picks[0]] == 1) ++tier1_picked;
  }
  // Expected share = 2.0 / 2.1 ~ 95%.
  EXPECT_GT(tier1_picked, trials * 3 / 4);
}

TEST(Tifl, SkipsUnavailableTiers) {
  TiflConfig cfg;
  cfg.num_tiers = 2;
  TiflSelector s(cfg);
  auto view = make_view(10);
  s.initialize(view);
  for (std::size_t id = 0; id < 5; ++id) view[id].available = false;  // tier 0
  Rng rng(11);
  for (int t = 0; t < 20; ++t) {
    for (std::size_t id : s.select(2, view, 0, rng)) {
      EXPECT_GE(id, 5u);
    }
  }
}

TEST(Tifl, FailureRefundNeverExceedsInitialCredits) {
  // A failed client refunds 1/k of a credit to its tier; spamming
  // report_failure (duplicate fault notifications, replayed events) must not
  // mint credits beyond the initial grant. Pinned by the fuzzer's edge-case
  // sweep.
  TiflConfig cfg;
  cfg.num_tiers = 5;
  cfg.credit_factor = 2.0;
  cfg.expected_rounds = 200;
  TiflSelector s(cfg);
  auto view = make_view(25);
  s.initialize(view);
  const double initial = s.tier_credits(0);
  EXPECT_DOUBLE_EQ(initial, 2.0 * 200.0 / 5.0);

  // No round charged yet: every refund is already clamped at the grant.
  for (int i = 0; i < 50; ++i) s.report_failure(0, 0, fl::FailureKind::Crash);
  EXPECT_DOUBLE_EQ(s.tier_credits(0), initial);

  // After a real round, refunds restore at most what the round charged.
  Rng rng(31);
  const auto picks = s.select(3, view, 0, rng);
  ASSERT_FALSE(picks.empty());
  const std::size_t charged_tier = s.tier_of()[picks[0]];
  EXPECT_LT(s.tier_credits(charged_tier), initial);
  for (int i = 0; i < 100; ++i) {
    s.report_failure(picks[0], 0, fl::FailureKind::Crash);
    EXPECT_LE(s.tier_credits(charged_tier), initial);
  }
  EXPECT_DOUBLE_EQ(s.tier_credits(charged_tier), initial);
}

TEST(Tifl, RejectsBadConfig) {
  EXPECT_THROW(TiflSelector({.num_tiers = 0}), std::invalid_argument);
  EXPECT_THROW(TiflSelector({.num_tiers = 2, .credit_factor = 0.5}),
               std::invalid_argument);
}

TEST(Oort, DeadlineIsLatencyQuantile) {
  OortConfig cfg;
  cfg.deadline_quantile = 0.8;
  OortSelector s(cfg);
  auto view = make_view(10);  // latencies 1..10
  s.initialize(view);
  EXPECT_NEAR(s.deadline(), 1.0 + 0.8 * 9.0, 1.0);
}

TEST(Oort, UtilityPrefersHighLoss) {
  OortSelector s({});
  auto view = make_view(4);
  s.initialize(view);
  s.report_result(0, 0.1, 0);
  s.report_result(1, 3.0, 0);
  EXPECT_GT(s.utility(view[1], 1), s.utility(view[0], 1));
}

TEST(Oort, UtilityPenalizesSlowClients) {
  OortSelector s({});
  auto view = make_view(10);
  s.initialize(view);
  for (std::size_t id = 0; id < 10; ++id) s.report_result(id, 1.0, 0);
  // Same loss, same samples — but client 9 is beyond the deadline.
  EXPECT_GT(s.utility(view[0], 1), s.utility(view[9], 1));
}

TEST(Oort, SelectsHighestUtilityClients) {
  OortConfig cfg;
  cfg.initial_exploration = 0.0;  // pure exploitation
  cfg.min_exploration = 0.0;
  OortSelector s(cfg);
  auto view = make_view(10);
  s.initialize(view);
  // Make clients 7, 8 clearly the highest-utility (high loss, fast enough).
  for (std::size_t id = 0; id < 10; ++id) s.report_result(id, 0.1, 0);
  view[2].last_loss = 5.0;
  s.report_result(2, 5.0, 0);
  view[4].last_loss = 4.0;
  s.report_result(4, 4.0, 0);
  Rng rng(13);
  const auto picks = s.select(2, view, 1, rng);
  std::set<std::size_t> got(picks.begin(), picks.end());
  EXPECT_TRUE(got.count(2));
  EXPECT_TRUE(got.count(4));
}

TEST(Oort, ExplorationPicksUnexploredClients) {
  OortConfig cfg;
  cfg.initial_exploration = 1.0;  // all slots explore
  cfg.min_exploration = 1.0;
  cfg.exploration_decay = 1.0;
  OortSelector s(cfg);
  auto view = make_view(10);
  s.initialize(view);
  // Observe clients 0..4; 5..9 are unexplored.
  for (std::size_t id = 0; id < 5; ++id) s.report_result(id, 1.0, 0);
  Rng rng(17);
  const auto picks = s.select(3, view, 1, rng);
  for (std::size_t id : picks) EXPECT_GE(id, 5u);
}

TEST(Oort, HonorsAvailability) {
  OortSelector s({});
  auto view = make_view(6);
  s.initialize(view);
  for (std::size_t id = 0; id < 3; ++id) view[id].available = false;
  Rng rng(19);
  for (int t = 0; t < 10; ++t) {
    for (std::size_t id : s.select(2, view, t, rng)) EXPECT_GE(id, 3u);
  }
}

TEST(Oort, RejectsBadConfig) {
  EXPECT_THROW(OortSelector({.alpha = -1.0}), std::invalid_argument);
  EXPECT_THROW(OortSelector({.alpha = 1.0, .deadline_quantile = 0.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace haccs::select
