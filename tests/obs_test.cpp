// Tests for the observability subsystem (DESIGN.md §5e): span nesting and
// thread attribution, counter/histogram correctness under concurrency, JSON
// and JSONL well-formedness, the zero-allocation disabled path, and the
// traced-vs-untraced bit-identity guarantee on the training engine.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/threadpool.hpp"
#include "src/core/haccs_system.hpp"
#include "src/fl/engine.hpp"
#include "src/obs/events.hpp"
#include "src/obs/flight.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/obs.hpp"
#include "src/obs/trace.hpp"
#include "src/select/random_selector.hpp"

// ---------------------------------------------------------------------------
// Allocation counter: replaces global operator new for the whole test binary
// so the disabled-path test can assert "no allocations". Forwarding to
// malloc/free keeps ASan/TSan interception intact.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace haccs {
namespace {

/// Every obs test starts and ends with all pillars off and global state
/// zeroed, so tests cannot leak telemetry into each other (or into the rest
/// of the suite, which asserts exact RNG-driven values).
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { reset_obs(); }
  void TearDown() override { reset_obs(); }

  static void reset_obs() {
    obs::set_trace_enabled(false);
    obs::set_metrics_enabled(false);
    obs::RunEventLog::global().close();
    obs::TraceBuffer::global().clear();
    obs::Registry::global().reset();
    obs::clear_round_context();
    obs::FlightRecorder::global().disable();
  }

  static std::string temp_path(const std::string& name) {
    return ::testing::TempDir() + "obs_test_" + name;
  }
};

// ---------------------------------------------------------------------------
// JSON helpers

TEST_F(ObsTest, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(obs::json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST_F(ObsTest, JsonNumberRejectsNonFinite) {
  EXPECT_EQ(obs::json_number(1.5), "1.5");
  EXPECT_EQ(obs::json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(obs::json_number(std::numeric_limits<double>::quiet_NaN()),
            "null");
}

TEST_F(ObsTest, JsonObjectPreservesOrderAndTypes) {
  obs::JsonObject o;
  o.field("s", "x\"y")
      .field("d", 2.5)
      .field("b", true)
      .field("i", -3)
      .field("u", std::size_t{7})
      .field_raw("a", obs::json_array({1, 2}));
  EXPECT_EQ(o.str(),
            "{\"s\":\"x\\\"y\",\"d\":2.5,\"b\":true,\"i\":-3,\"u\":7,"
            "\"a\":[1,2]}");
}

// ---------------------------------------------------------------------------
// Trace spans

TEST_F(ObsTest, SpanNestingAndThreadAttribution) {
  obs::set_trace_enabled(true);
  const std::uint32_t main_tid = obs::thread_id();
  std::uint32_t worker_tid = 0;
  {
    obs::Span outer("outer", "test");
    {
      obs::Span inner("inner", "test");
    }
    std::thread t([&] {
      obs::set_thread_name("obs-test-worker");
      worker_tid = obs::thread_id();
      obs::Span w("worker_span", "test");
    });
    t.join();
  }
  obs::set_trace_enabled(false);

  const auto events = obs::TraceBuffer::global().snapshot();
  ASSERT_EQ(events.size(), 3u);
  const obs::TraceEvent* outer = nullptr;
  const obs::TraceEvent* inner = nullptr;
  const obs::TraceEvent* worker = nullptr;
  for (const auto& e : events) {
    if (std::string(e.name) == "outer") outer = &e;
    if (std::string(e.name) == "inner") inner = &e;
    if (std::string(e.name) == "worker_span") worker = &e;
  }
  ASSERT_TRUE(outer && inner && worker);
  // Nesting: the outer span strictly encloses the inner one.
  EXPECT_LE(outer->ts_ns, inner->ts_ns);
  EXPECT_GE(outer->ts_ns + outer->dur_ns, inner->ts_ns + inner->dur_ns);
  // Thread attribution: spans carry the id of the thread that opened them.
  EXPECT_EQ(outer->tid, main_tid);
  EXPECT_EQ(inner->tid, main_tid);
  EXPECT_NE(worker->tid, main_tid);
  EXPECT_EQ(worker->tid, worker_tid);
  EXPECT_EQ(obs::thread_name(worker_tid), "obs-test-worker");
}

TEST_F(ObsTest, InstantEventsHaveZeroDuration) {
  obs::set_trace_enabled(true);
  obs::instant("marker", "test");
  obs::set_trace_enabled(false);
  const auto events = obs::TraceBuffer::global().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].instant);
  EXPECT_EQ(events[0].dur_ns, 0u);
  EXPECT_STREQ(events[0].name, "marker");
}

TEST_F(ObsTest, ChromeJsonStructure) {
  obs::set_trace_enabled(true);
  {
    obs::Span s("span_a", "test");
  }
  obs::instant("mark_b", "test");
  obs::set_trace_enabled(false);
  const std::string json = obs::TraceBuffer::global().to_chrome_json();
  // Structural spot-checks; check.sh feeds a real run through a JSON parser.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // thread names
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // complete span
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instant
  EXPECT_NE(json.find("\"name\":\"span_a\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"mark_b\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Metrics

TEST_F(ObsTest, CounterConcurrentIncrements) {
  obs::set_metrics_enabled(true);
  obs::Counter& c = obs::Registry::global().counter("obs_test_concurrent");
  constexpr int kThreads = 8;
  constexpr int kIncs = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncs; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIncs);
}

TEST_F(ObsTest, HistogramBucketsCountAndSum) {
  obs::set_metrics_enabled(true);
  obs::Histogram& h =
      obs::Registry::global().histogram("obs_test_hist", {1.0, 10.0, 100.0});
  // One per bucket: <=1, <=10, <=100, overflow.
  h.observe(0.5);
  h.observe(10.0);  // inclusive upper edge lands in the <=10 bucket
  h.observe(42.0);
  h.observe(1000.0);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 10.0 + 42.0 + 1000.0);
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::uint64_t>{1, 1, 1, 1}));
}

TEST_F(ObsTest, HistogramConcurrentObserves) {
  obs::set_metrics_enabled(true);
  obs::Histogram& h =
      obs::Registry::global().histogram("obs_test_hist_mt", {5.0});
  constexpr int kThreads = 8;
  constexpr int kObs = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kObs; ++i) h.observe(1.0);
    });
  }
  for (auto& t : threads) t.join();
  const std::uint64_t n = static_cast<std::uint64_t>(kThreads) * kObs;
  EXPECT_EQ(h.count(), n);
  // Sum is CAS-accumulated: every observation must land exactly once.
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(n));
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::uint64_t>{n, 0}));
}

TEST_F(ObsTest, RegistrySnapshotIsValidStructure) {
  obs::set_metrics_enabled(true);
  obs::Registry::global().counter("obs_test_c").inc(3);
  obs::Registry::global().gauge("obs_test_g").set(2.5);
  obs::Registry::global().histogram("obs_test_h", {1.0}).observe(0.5);
  const std::string json = obs::Registry::global().to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test_c\":3"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test_g\":2.5"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test_h\":{\"bounds\":[1],"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Disabled path

TEST_F(ObsTest, DisabledPathMutatesNothing) {
  // Flags are off (fixture guarantees it): every probe must be a no-op.
  obs::Counter& c = obs::Registry::global().counter("obs_test_frozen");
  obs::Gauge& g = obs::Registry::global().gauge("obs_test_frozen_g");
  obs::Histogram& h =
      obs::Registry::global().histogram("obs_test_frozen_h", {1.0});
  c.inc(100);
  g.set(9.0);
  h.observe(0.5);
  {
    obs::Span s("frozen_span", "test");
  }
  obs::instant("frozen_instant", "test");
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(obs::TraceBuffer::global().size(), 0u);
}

TEST_F(ObsTest, DisabledPathDoesNotAllocate) {
  // Resolve instruments (registration allocates) before measuring.
  obs::Counter& c = obs::Registry::global().counter("obs_test_noalloc");
  obs::Histogram& h =
      obs::Registry::global().histogram("obs_test_noalloc_h", {1.0});
  obs::thread_id();  // thread registration is also one-time
  const std::uint64_t before = g_alloc_count.load();
  for (int i = 0; i < 1000; ++i) {
    obs::Span span("noalloc_span", "test");
    obs::instant("noalloc_instant", "test");
    c.inc();
    h.observe(1.0);
    obs::StopWatch watch;
    (void)watch.lap_ms();
  }
  EXPECT_EQ(g_alloc_count.load(), before);
}

TEST_F(ObsTest, StopWatchInactiveWhenDisabled) {
  obs::StopWatch off;
  EXPECT_EQ(off.lap_ms(), 0.0);
  obs::set_metrics_enabled(true);
  obs::StopWatch on;
  for (volatile int i = 0; i < 10000; ++i) {
  }
  EXPECT_GT(on.lap_ms(), 0.0);
}

// ---------------------------------------------------------------------------
// Thread pool integration (explicit pool: the global one degrades to inline
// mode on single-core hosts, which would leave these probes unexercised)

TEST_F(ObsTest, ThreadPoolMetricsAndWorkerLanes) {
  obs::set_metrics_enabled(true);
  obs::set_trace_enabled(true);
  const std::uint64_t tasks_before =
      obs::Registry::global().counter("threadpool_tasks_total").value();
  {
    ThreadPool pool(2);
    constexpr std::size_t kTasks = 64;
    std::atomic<std::size_t> ran{0};
    parallel_for(pool, 0, kTasks, [&](std::size_t) {
      obs::Span span("pool_task", "test");
      ran.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(ran.load(), kTasks);
  }
  obs::set_trace_enabled(false);
  // submit() counted every enqueued chunk and tracked queue depth.
  EXPECT_GT(obs::Registry::global().counter("threadpool_tasks_total").value(),
            tasks_before);
  // Spans ran on named worker threads, not the main lane.
  const std::uint32_t main_tid = obs::thread_id();
  bool saw_worker_span = false;
  for (const auto& e : obs::TraceBuffer::global().snapshot()) {
    if (std::string(e.name) != "pool_task") continue;
    EXPECT_NE(e.tid, main_tid);
    EXPECT_EQ(obs::thread_name(e.tid).rfind("worker-", 0), 0u);
    saw_worker_span = true;
  }
  EXPECT_TRUE(saw_worker_span);
}

// ---------------------------------------------------------------------------
// Engine integration: round events, rounds_total, bit-identity

data::FederatedDataset obs_fed() {
  data::SyntheticImageConfig cfg = data::SyntheticImageConfig::femnist_like(10);
  cfg.height = 12;
  cfg.width = 12;
  cfg.noise_stddev = 0.6;
  data::SyntheticImageGenerator gen(cfg);
  data::PartitionConfig pcfg;
  pcfg.num_clients = 10;
  pcfg.min_samples = 40;
  pcfg.max_samples = 80;
  pcfg.test_samples = 16;
  Rng rng(7);
  return data::partition_majority_label(gen, pcfg, rng);
}

fl::EngineConfig obs_engine(std::size_t rounds) {
  fl::EngineConfig cfg;
  cfg.rounds = rounds;
  cfg.clients_per_round = 4;
  cfg.eval_every = 3;
  cfg.seed = 13;
  cfg.local.sgd.learning_rate = 0.08;
  return cfg;
}

fl::TrainingHistory run_once(const data::FederatedDataset& fed,
                             std::size_t rounds) {
  fl::FederatedTrainer trainer(fed, core::default_model_factory(fed, 99),
                               obs_engine(rounds));
  select::RandomSelector selector;
  return trainer.run(selector);
}

TEST_F(ObsTest, EngineEmitsOneEventPerRoundAndCountsRounds) {
  const auto fed = obs_fed();
  constexpr std::size_t kRounds = 6;
  const std::string path = temp_path("events.jsonl");
  obs::set_metrics_enabled(true);
  ASSERT_TRUE(obs::RunEventLog::global().open(path));
  run_once(fed, kRounds);
  obs::RunEventLog::global().close();
  obs::set_metrics_enabled(false);

  EXPECT_EQ(obs::Registry::global().counter("rounds_total").value(), kRounds);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    // Each line is one self-contained JSON object for one round.
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"type\":\"round\""), std::string::npos);
    EXPECT_NE(line.find("\"engine\":\"sync\""), std::string::npos);
    EXPECT_NE(line.find("\"phase_wall_ms\""), std::string::npos);
    const std::string epoch_field =
        "\"epoch\":" + std::to_string(lines) + ",";
    EXPECT_NE(line.find(epoch_field), std::string::npos) << line;
    ++lines;
  }
  EXPECT_EQ(lines, kRounds);
  std::remove(path.c_str());
}

TEST_F(ObsTest, TracedRunMatchesUntraced) {
  const auto fed = obs_fed();
  constexpr std::size_t kRounds = 8;

  // Baseline: everything off (the fixture guarantees it).
  const auto plain = run_once(fed, kRounds);

  // Fully telemetered run: all three pillars live.
  const std::string events_path = temp_path("identity.jsonl");
  obs::set_trace_enabled(true);
  obs::set_metrics_enabled(true);
  ASSERT_TRUE(obs::RunEventLog::global().open(events_path));
  const auto traced = run_once(fed, kRounds);
  reset_obs();
  std::remove(events_path.c_str());

  // Telemetry never consumes RNG, so the run must be bit-identical: exact
  // double equality on purpose.
  ASSERT_EQ(plain.records().size(), traced.records().size());
  for (std::size_t i = 0; i < plain.records().size(); ++i) {
    const auto& a = plain.records()[i];
    const auto& b = traced.records()[i];
    EXPECT_EQ(a.sim_time_s, b.sim_time_s) << "round " << i;
    EXPECT_EQ(a.global_accuracy, b.global_accuracy) << "round " << i;
    EXPECT_EQ(a.global_loss, b.global_loss) << "round " << i;
    EXPECT_EQ(a.selected, b.selected) << "round " << i;
  }
}

// ---------------------------------------------------------------------------
// Cross-process correlation (§5i): span ids, round context, merged export

TEST_F(ObsTest, SpanIdsFormParentChain) {
  obs::set_trace_enabled(true);
  EXPECT_EQ(obs::current_span_id(), 0u);
  std::uint64_t outer_id = 0;
  std::uint64_t inner_id = 0;
  {
    obs::Span outer("chain_outer", "test");
    outer_id = outer.id();
    EXPECT_NE(outer_id, 0u);
    EXPECT_EQ(obs::current_span_id(), outer_id);
    {
      obs::Span inner("chain_inner", "test");
      inner_id = inner.id();
      EXPECT_NE(inner_id, 0u);
      EXPECT_NE(inner_id, outer_id);
      EXPECT_EQ(obs::current_span_id(), inner_id);
    }
    EXPECT_EQ(obs::current_span_id(), outer_id);
  }
  EXPECT_EQ(obs::current_span_id(), 0u);
  obs::set_trace_enabled(false);

  const obs::TraceEvent* outer = nullptr;
  const obs::TraceEvent* inner = nullptr;
  const auto events = obs::TraceBuffer::global().snapshot();
  for (const auto& e : events) {
    if (std::string(e.name) == "chain_outer") outer = &e;
    if (std::string(e.name) == "chain_inner") inner = &e;
  }
  ASSERT_TRUE(outer && inner);
  EXPECT_EQ(outer->span_id, outer_id);
  EXPECT_EQ(outer->parent_id, 0u);
  EXPECT_EQ(inner->span_id, inner_id);
  EXPECT_EQ(inner->parent_id, outer_id);
}

TEST_F(ObsTest, RoundContextStampsRecordedSpans) {
  obs::set_trace_enabled(true);
  EXPECT_FALSE(obs::round_context().valid());
  obs::TraceContext ctx;
  ctx.trace_id = obs::process_trace_id();
  ctx.parent_span = 77;
  ctx.round = 5;
  obs::set_round_context(ctx);
  const obs::TraceContext seen = obs::round_context();
  EXPECT_TRUE(seen.valid());
  EXPECT_EQ(seen.trace_id, ctx.trace_id);
  EXPECT_EQ(seen.parent_span, 77u);
  EXPECT_EQ(seen.round, 5);
  {
    obs::Span s("ctx_span", "test");
  }
  obs::instant("ctx_mark", "test");
  obs::clear_round_context();
  EXPECT_FALSE(obs::round_context().valid());
  obs::set_trace_enabled(false);

  for (const auto& e : obs::TraceBuffer::global().snapshot()) {
    EXPECT_EQ(e.round, 5) << e.name;
    if (std::string(e.name) == "ctx_span") EXPECT_NE(e.span_id, 0u);
    if (std::string(e.name) == "ctx_mark") EXPECT_EQ(e.span_id, 0u);
  }
}

TEST_F(ObsTest, ProcessTraceIdIsStableAndNonzero) {
  const std::uint64_t id = obs::process_trace_id();
  EXPECT_NE(id, 0u);
  EXPECT_EQ(obs::process_trace_id(), id);
}

TEST_F(ObsTest, MergedChromeJsonPlacesWorkersOnOwnTracks) {
  obs::set_trace_enabled(true);
  {
    obs::Span s("round", "fl");
  }
  obs::set_trace_enabled(false);
  const auto server_events = obs::TraceBuffer::global().snapshot();
  ASSERT_EQ(server_events.size(), 1u);

  obs::WorkerTrack track;
  track.worker_id = 1;
  track.label = "worker-1";
  track.clock_offset_ns = 1000;
  obs::PortableTraceEvent ev;
  ev.name = "local_train";
  ev.category = "fl";
  ev.ts_ns = 500;
  ev.dur_ns = 200;
  ev.span_id = 42;
  ev.parent_id = server_events[0].span_id;
  ev.round = 0;
  track.events.push_back(ev);

  const std::string json = obs::merged_chrome_json(server_events, {track});
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  // Server on pid 1, worker 1 on pid 3, both named.
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"haccs_server\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"worker-1\""), std::string::npos);
  // Span-id args survive for parent/child stitching across processes.
  EXPECT_NE(json.find("\"span\":42"), std::string::npos);
  EXPECT_NE(
      json.find("\"parent\":" + std::to_string(server_events[0].span_id)),
      std::string::npos);
  // The worker timestamp is shifted onto the server clock: 500 ns + 1000 ns
  // offset = 1.5 us.
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
}

TEST_F(ObsTest, PrometheusExpositionFormat) {
  obs::set_metrics_enabled(true);
  obs::Registry::global().counter("obs_prom_c").inc(3);
  obs::Registry::global().gauge("obs_prom_g").set(2.5);
  obs::Histogram& h =
      obs::Registry::global().histogram("obs_prom_h", {1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(100.0);
  const std::string text = obs::Registry::global().to_prometheus();

  EXPECT_NE(text.find("# TYPE haccs_obs_prom_c counter\nhaccs_obs_prom_c 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE haccs_obs_prom_g gauge\nhaccs_obs_prom_g 2.5\n"),
            std::string::npos);
  // Histogram buckets are cumulative and end with the +Inf catch-all.
  EXPECT_NE(text.find("haccs_obs_prom_h_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("haccs_obs_prom_h_bucket{le=\"10\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("haccs_obs_prom_h_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("haccs_obs_prom_h_sum 105.5\n"), std::string::npos);
  EXPECT_NE(text.find("haccs_obs_prom_h_count 3\n"), std::string::npos);
  // 0.0.4 text format: every line is "# ..." or "name[{labels}] value".
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') continue;
    EXPECT_EQ(line.rfind("haccs_", 0), 0u) << line;
    EXPECT_NE(line.find(' '), std::string::npos) << line;
  }
}

// ---------------------------------------------------------------------------
// Flight recorder

TEST_F(ObsTest, FlightRecorderRingAndDump) {
  auto& fr = obs::FlightRecorder::global();
  fr.enable(::testing::TempDir(), /*max_rounds=*/4, /*max_log_lines=*/3);
  ASSERT_TRUE(fr.enabled());
  const std::string path = fr.path();
  EXPECT_NE(path.find("flight-"), std::string::npos);

  for (int i = 0; i < 6; ++i) {
    fr.record_round_event("{\"epoch\":" + std::to_string(i) + "}");
  }
  fr.record_log_line("alpha");
  fr.record_log_line("beta");
  fr.record_log_line("gamma");
  fr.record_log_line("delta");
  fr.note_quorum_degraded();  // dumps immediately with its own reason
  ASSERT_TRUE(fr.dump("unit-test"));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string doc = buffer.str();
  EXPECT_EQ(doc.front(), '{');
  EXPECT_NE(doc.find("\"reason\":\"unit-test\""), std::string::npos);
  EXPECT_NE(doc.find("\"degraded_rounds\":1"), std::string::npos);
  // Round ring of 4: epochs 2..5 retained, 0 and 1 evicted.
  EXPECT_EQ(doc.find("{\"epoch\":0}"), std::string::npos);
  EXPECT_EQ(doc.find("{\"epoch\":1}"), std::string::npos);
  EXPECT_NE(doc.find("{\"epoch\":2}"), std::string::npos);
  EXPECT_NE(doc.find("{\"epoch\":5}"), std::string::npos);
  // Log ring of 3: "alpha" evicted, the rest retained in order.
  EXPECT_EQ(doc.find("alpha"), std::string::npos);
  const std::size_t beta = doc.find("beta");
  const std::size_t delta = doc.find("delta");
  ASSERT_NE(beta, std::string::npos);
  ASSERT_NE(delta, std::string::npos);
  EXPECT_LT(beta, delta);
  // The metrics snapshot rides along.
  EXPECT_NE(doc.find("\"metrics\":{"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ObsTest, FlightRecorderDisabledIsNoop) {
  auto& fr = obs::FlightRecorder::global();
  ASSERT_FALSE(fr.enabled());
  fr.record_round_event("{\"epoch\":0}");
  fr.record_log_line("nope");
  fr.note_quorum_degraded();
  EXPECT_FALSE(fr.dump("disabled"));
  EXPECT_TRUE(fr.path().empty());
}

TEST_F(ObsTest, FlightRecorderCrashDumpWritesStableBuffer) {
  auto& fr = obs::FlightRecorder::global();
  fr.enable(::testing::TempDir(), 8, 8);
  fr.record_round_event("{\"epoch\":41}");
  const std::string path = fr.path();
  // Simulate the signal path directly (raising a real SIGSEGV would kill
  // the test binary): only the pre-rendered stable buffer may be written.
  fr.crash_dump();
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string doc = buffer.str();
  EXPECT_NE(doc.find("\"reason\":\"crash\""), std::string::npos);
  EXPECT_NE(doc.find("{\"epoch\":41}"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace haccs
