// Tests for the asynchronous buffered-aggregation engine.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/core/haccs_system.hpp"
#include "src/fl/async_engine.hpp"
#include "src/select/random_selector.hpp"

namespace haccs::fl {
namespace {

data::FederatedDataset make_fed(std::size_t clients = 10,
                                std::uint64_t seed = 7) {
  data::SyntheticImageConfig gcfg;
  gcfg.classes = 4;
  gcfg.height = 8;
  gcfg.width = 8;
  gcfg.noise_stddev = 0.3;
  data::SyntheticImageGenerator gen(gcfg);
  data::PartitionConfig pcfg;
  pcfg.num_clients = clients;
  pcfg.min_samples = 40;
  pcfg.max_samples = 70;
  pcfg.test_samples = 12;
  Rng rng(seed);
  return data::partition_majority_label(gen, pcfg, rng);
}

AsyncEngineConfig make_config(std::size_t aggregations = 30) {
  AsyncEngineConfig cfg;
  cfg.aggregations = aggregations;
  cfg.max_in_flight = 4;
  cfg.buffer_size = 2;
  cfg.eval_every = 10;
  cfg.local.sgd.learning_rate = 0.08;
  cfg.seed = 11;
  return cfg;
}

TEST(AsyncEngine, ValidatesConfig) {
  const auto fed = make_fed(4);
  auto factory = core::default_model_factory(fed, 99);
  {
    auto cfg = make_config();
    cfg.max_in_flight = 0;
    EXPECT_THROW(AsyncFederatedTrainer(fed, factory, cfg),
                 std::invalid_argument);
  }
  {
    auto cfg = make_config();
    cfg.max_in_flight = 5;  // > clients
    EXPECT_THROW(AsyncFederatedTrainer(fed, factory, cfg),
                 std::invalid_argument);
  }
  {
    auto cfg = make_config();
    cfg.buffer_size = 5;  // > max_in_flight
    EXPECT_THROW(AsyncFederatedTrainer(fed, factory, cfg),
                 std::invalid_argument);
  }
  {
    auto cfg = make_config();
    cfg.server_lr = 0.0;
    EXPECT_THROW(AsyncFederatedTrainer(fed, factory, cfg),
                 std::invalid_argument);
  }
}

TEST(AsyncEngine, ProducesOneRecordPerAggregation) {
  const auto fed = make_fed();
  AsyncFederatedTrainer trainer(fed, core::default_model_factory(fed, 99),
                                make_config(25));
  select::RandomSelector selector;
  const auto history = trainer.run(selector);
  ASSERT_EQ(history.records().size(), 25u);
  double prev = 0.0;
  for (const auto& r : history.records()) {
    EXPECT_GE(r.sim_time_s, prev);
    prev = r.sim_time_s;
    // Each aggregation consumed exactly buffer_size updates.
    EXPECT_EQ(r.selected.size(), 2u);
  }
}

TEST(AsyncEngine, DeterministicAcrossRuns) {
  const auto fed = make_fed();
  AsyncFederatedTrainer trainer(fed, core::default_model_factory(fed, 99),
                                make_config(15));
  select::RandomSelector s1, s2;
  const auto h1 = trainer.run(s1);
  const auto h2 = trainer.run(s2);
  ASSERT_EQ(h1.records().size(), h2.records().size());
  for (std::size_t i = 0; i < h1.records().size(); ++i) {
    EXPECT_EQ(h1.records()[i].selected, h2.records()[i].selected);
    EXPECT_DOUBLE_EQ(h1.records()[i].sim_time_s, h2.records()[i].sim_time_s);
    EXPECT_DOUBLE_EQ(h1.records()[i].global_accuracy,
                     h2.records()[i].global_accuracy);
  }
}

TEST(AsyncEngine, LearnsTheTask) {
  const auto fed = make_fed();
  auto cfg = make_config(80);
  AsyncFederatedTrainer trainer(fed, core::default_model_factory(fed, 99),
                                cfg);
  select::RandomSelector selector;
  const auto history = trainer.run(selector);
  EXPECT_GT(history.best_accuracy(), 0.55);
}

TEST(AsyncEngine, MatchesSyncProfilesForSameSeed) {
  const auto fed = make_fed();
  auto async_cfg = make_config();
  EngineConfig sync_cfg;
  sync_cfg.rounds = 5;
  sync_cfg.clients_per_round = 3;
  sync_cfg.seed = async_cfg.seed;
  AsyncFederatedTrainer async_trainer(
      fed, core::default_model_factory(fed, 99), async_cfg);
  FederatedTrainer sync_trainer(fed, core::default_model_factory(fed, 99),
                                sync_cfg);
  for (std::size_t i = 0; i < fed.num_clients(); ++i) {
    EXPECT_DOUBLE_EQ(async_trainer.profiles()[i].bandwidth_mbps,
                     sync_trainer.profiles()[i].bandwidth_mbps);
  }
}

TEST(AsyncEngine, RespectsDropout) {
  const auto fed = make_fed(8);
  auto cfg = make_config(15);
  cfg.max_in_flight = 3;
  cfg.buffer_size = 2;
  AsyncFederatedTrainer trainer(fed, core::default_model_factory(fed, 99),
                                cfg);
  // Clients 0-3 permanently down: they must never appear in any record.
  const auto schedule = sim::make_group_dropout(
      {0, 0, 0, 0, 1, 1, 1, 1}, {0}, 0);
  select::RandomSelector selector;
  const auto history = trainer.run(selector, *schedule);
  for (const auto& r : history.records()) {
    for (std::size_t id : r.selected) EXPECT_GE(id, 4u);
  }
}

TEST(AsyncEngine, WorksWithHaccsSelector) {
  const auto fed = make_fed(10);
  auto cfg = make_config(30);
  AsyncFederatedTrainer trainer(fed, core::default_model_factory(fed, 99),
                                cfg);
  core::HaccsConfig haccs;
  haccs.initial_loss = cfg.initial_loss;
  core::HaccsSelector selector(fed, haccs);
  const auto history = trainer.run(selector);
  EXPECT_EQ(history.records().size(), 30u);
  EXPECT_GT(history.best_accuracy(), 0.3);
}

TEST(AsyncEngine, AggregationsOutpaceSyncRoundsInTime) {
  // With identical hardware and workload, the async engine should complete
  // its aggregations in less simulated time per consumed update than the
  // synchronous engine's straggler-gated rounds.
  const auto fed = make_fed(10, 21);
  auto async_cfg = make_config(20);
  async_cfg.max_in_flight = 5;
  async_cfg.buffer_size = 5;  // one aggregation ~ one 5-client round
  AsyncFederatedTrainer async_trainer(
      fed, core::default_model_factory(fed, 99), async_cfg);
  select::RandomSelector s1;
  const auto async_history = async_trainer.run(s1);

  EngineConfig sync_cfg;
  sync_cfg.rounds = 20;
  sync_cfg.clients_per_round = 5;
  sync_cfg.eval_every = 10;
  sync_cfg.local.sgd.learning_rate = 0.08;
  sync_cfg.seed = async_cfg.seed;
  FederatedTrainer sync_trainer(fed, core::default_model_factory(fed, 99),
                                sync_cfg);
  select::RandomSelector s2;
  const auto sync_history = sync_trainer.run(s2);

  EXPECT_LT(async_history.total_time(), sync_history.total_time());
}

}  // namespace
}  // namespace haccs::fl
