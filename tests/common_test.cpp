// Tests for src/common: RNG determinism and distributions, thread pool,
// flags, and table formatting.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "src/common/flags.hpp"
#include "src/common/rng.hpp"
#include "src/common/table.hpp"
#include "src/common/threadpool.hpp"

namespace haccs {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkIndependence) {
  Rng parent(7);
  Rng child = parent.fork();
  // Child continues deterministically and does not mirror the parent.
  Rng parent2(7);
  Rng child2 = parent2.fork();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child.next_u64(), child2.next_u64());
}

TEST(Rng, UniformIndexInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform_index(17), 17u);
  }
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIndexZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInHalfOpenUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NormalMomentsApproximate) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, LaplaceVarianceMatchesTheory) {
  // Var[Laplace(0, b)] = 2 b^2 — this is Eq. 5 with b = 1/eps.
  Rng rng(17);
  const double b = 2.5;
  double sum = 0.0, sum_sq = 0.0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.laplace(0.0, b);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.1);
  EXPECT_NEAR(var, 2.0 * b * b, 0.8);
}

TEST(Rng, LaplaceRejectsNonpositiveScale) {
  Rng rng(1);
  EXPECT_THROW(rng.laplace(0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(rng.laplace(0.0, -1.0), std::invalid_argument);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(19);
  const std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(Rng, CategoricalRejectsBadWeights) {
  Rng rng(1);
  const std::vector<double> zero = {0.0, 0.0};
  const std::vector<double> negative = {1.0, -0.5};
  EXPECT_THROW(rng.categorical(zero), std::invalid_argument);
  EXPECT_THROW(rng.categorical(negative), std::invalid_argument);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(23);
  const auto sample = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), std::invalid_argument);
}

TEST(Rng, SampleWithReplacementSize) {
  Rng rng(29);
  const std::vector<double> w = {1.0, 2.0};
  EXPECT_EQ(rng.sample_with_replacement(w, 25).size(), 25u);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(ThreadPool, InlineModeRunsTasks) {
  ThreadPool pool(0);
  std::atomic<int> count{0};
  pool.submit([&] { ++count; }).get();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&] { ++count; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  parallel_for(pool, 0, 257, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 5, 5, [](std::size_t) { FAIL(); });
}

TEST(ParallelFor, RethrowsWorkerException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 0, 100,
                            [](std::size_t i) {
                              if (i == 63) throw std::runtime_error("x");
                            }),
               std::runtime_error);
}

TEST(Flags, ParsesAllForms) {
  const char* argv[] = {"prog", "--alpha=2.5",  "--name", "value",
                        "--flag", "--no-thing", "pos1"};
  Flags flags(7, argv);
  EXPECT_DOUBLE_EQ(flags.get_double("alpha", 0.0), 2.5);
  EXPECT_EQ(flags.get_string("name", ""), "value");
  EXPECT_TRUE(flags.get_bool("flag", false));
  EXPECT_FALSE(flags.get_bool("thing", true));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "pos1");
}

TEST(Flags, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags flags(1, argv);
  EXPECT_EQ(flags.get_int("rounds", 42), 42);
  EXPECT_FALSE(flags.has("rounds"));
}

TEST(Flags, RejectsMalformedValues) {
  const char* argv[] = {"prog", "--n=abc"};
  Flags flags(2, argv);
  EXPECT_THROW(flags.get_int("n", 0), std::invalid_argument);
}

TEST(Flags, CheckUnusedDetectsTypos) {
  const char* argv[] = {"prog", "--truly-unknown=1"};
  Flags flags(2, argv);
  EXPECT_THROW(flags.check_unused(), std::invalid_argument);
}

TEST(Table, FormatsAlignedOutput) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2.50"});
  const auto s = t.to_string();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

}  // namespace
}  // namespace haccs
