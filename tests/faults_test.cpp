// Tests for the fault-injection layer: FaultModel determinism, update
// validation, the per-client circuit breaker, engine deadline/over-selection
// accounting, the selectors' report_failure reactions, and the bit-identity
// of the zero-cost default path (faults off, overcommit 0).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <vector>

#include "src/core/haccs_system.hpp"
#include "src/fl/async_engine.hpp"
#include "src/fl/engine.hpp"
#include "src/select/oort.hpp"
#include "src/select/random_selector.hpp"
#include "src/select/tifl.hpp"
#include "src/sim/faults.hpp"

namespace haccs {
namespace {

// ---------------------------------------------------------------------------
// FaultModel

sim::FaultModelConfig mixed_faults(std::uint64_t seed = 42) {
  sim::FaultModelConfig cfg;
  cfg.crash_rate = 0.2;
  cfg.corruption_rate = 0.1;
  cfg.straggler_rate = 0.1;
  cfg.seed = seed;
  return cfg;
}

TEST(FaultModel, DisabledYieldsNoFaults) {
  const sim::FaultModel model({});  // all rates zero
  EXPECT_FALSE(model.enabled());
  for (std::size_t client = 0; client < 20; ++client) {
    for (std::size_t epoch = 0; epoch < 20; ++epoch) {
      EXPECT_EQ(model.at(client, epoch).kind, sim::FaultKind::None);
      EXPECT_FALSE(model.flaky(client));
    }
  }
}

TEST(FaultModel, DeterministicAndOrderIndependent) {
  const sim::FaultModel a(mixed_faults());
  const sim::FaultModel b(mixed_faults());
  // Same config => identical trace, regardless of query order (a is queried
  // client-major, b epoch-major) — this is what guarantees every selection
  // strategy observes the same faults.
  std::vector<sim::FaultEvent> trace_a(30 * 30), trace_b(30 * 30);
  for (std::size_t client = 0; client < 30; ++client) {
    for (std::size_t epoch = 0; epoch < 30; ++epoch) {
      trace_a[client * 30 + epoch] = a.at(client, epoch);
    }
  }
  for (std::size_t epoch = 30; epoch-- > 0;) {
    for (std::size_t client = 30; client-- > 0;) {
      trace_b[client * 30 + epoch] = b.at(client, epoch);
    }
  }
  ASSERT_EQ(trace_a.size(), trace_b.size());
  for (std::size_t i = 0; i < trace_a.size(); ++i) {
    EXPECT_EQ(trace_a[i].kind, trace_b[i].kind);
    EXPECT_DOUBLE_EQ(trace_a[i].crash_frac, trace_b[i].crash_frac);
    EXPECT_DOUBLE_EQ(trace_a[i].latency_multiplier,
                     trace_b[i].latency_multiplier);
    EXPECT_EQ(trace_a[i].corruption, trace_b[i].corruption);
  }
  // Re-querying the same cell returns the identical event (pure function).
  const auto once = a.at(3, 7);
  const auto twice = a.at(3, 7);
  EXPECT_EQ(once.kind, twice.kind);
  EXPECT_DOUBLE_EQ(once.crash_frac, twice.crash_frac);
}

TEST(FaultModel, SeedChangesTrace) {
  const sim::FaultModel a(mixed_faults(1));
  const sim::FaultModel b(mixed_faults(2));
  std::size_t differ = 0;
  for (std::size_t client = 0; client < 20; ++client) {
    for (std::size_t epoch = 0; epoch < 20; ++epoch) {
      if (a.at(client, epoch).kind != b.at(client, epoch).kind) ++differ;
    }
  }
  EXPECT_GT(differ, 0u);
}

TEST(FaultModel, RatesApproximatelyRespected) {
  const sim::FaultModel model(mixed_faults());
  std::size_t crash = 0, corrupt = 0, straggle = 0, total = 0;
  for (std::size_t client = 0; client < 100; ++client) {
    for (std::size_t epoch = 0; epoch < 100; ++epoch) {
      ++total;
      switch (model.at(client, epoch).kind) {
        case sim::FaultKind::Crash: ++crash; break;
        case sim::FaultKind::Corruption: ++corrupt; break;
        case sim::FaultKind::Straggler: ++straggle; break;
        case sim::FaultKind::None: break;
      }
    }
  }
  const auto n = static_cast<double>(total);
  EXPECT_NEAR(static_cast<double>(crash) / n, 0.2, 0.02);
  EXPECT_NEAR(static_cast<double>(corrupt) / n, 0.1, 0.02);
  EXPECT_NEAR(static_cast<double>(straggle) / n, 0.1, 0.02);
}

TEST(FaultModel, EventFieldsWithinBounds) {
  auto cfg = mixed_faults();
  cfg.crash_frac_min = 0.2;
  cfg.crash_frac_max = 0.8;
  const sim::FaultModel model(cfg);
  for (std::size_t client = 0; client < 50; ++client) {
    for (std::size_t epoch = 0; epoch < 50; ++epoch) {
      const auto event = model.at(client, epoch);
      if (event.kind == sim::FaultKind::Crash) {
        EXPECT_GE(event.crash_frac, 0.2);
        EXPECT_LE(event.crash_frac, 0.8);
      }
      if (event.kind == sim::FaultKind::Straggler) {
        EXPECT_GE(event.latency_multiplier, cfg.straggler_scale);
        EXPECT_LE(event.latency_multiplier, cfg.straggler_cap);
      }
    }
  }
}

TEST(FaultModel, FlakyClientsCrashMore) {
  auto cfg = mixed_faults();
  cfg.crash_rate = 0.1;
  cfg.corruption_rate = 0.0;
  cfg.straggler_rate = 0.0;
  cfg.flaky_fraction = 0.3;
  cfg.flaky_crash_boost = 5.0;
  const sim::FaultModel model(cfg);
  // Flakiness is a stable per-client property...
  std::vector<bool> flaky;
  for (std::size_t client = 0; client < 200; ++client) {
    flaky.push_back(model.flaky(client));
    EXPECT_EQ(model.flaky(client), flaky.back());
  }
  EXPECT_GT(std::count(flaky.begin(), flaky.end(), true), 0);
  EXPECT_GT(std::count(flaky.begin(), flaky.end(), false), 0);
  // ...and flaky clients crash at the boosted rate.
  std::size_t crash_flaky = 0, n_flaky = 0, crash_stable = 0, n_stable = 0;
  for (std::size_t client = 0; client < 200; ++client) {
    for (std::size_t epoch = 0; epoch < 100; ++epoch) {
      const bool crashed =
          model.at(client, epoch).kind == sim::FaultKind::Crash;
      if (flaky[client]) {
        ++n_flaky;
        crash_flaky += crashed;
      } else {
        ++n_stable;
        crash_stable += crashed;
      }
    }
  }
  EXPECT_NEAR(static_cast<double>(crash_flaky) / static_cast<double>(n_flaky),
              0.5, 0.05);
  EXPECT_NEAR(
      static_cast<double>(crash_stable) / static_cast<double>(n_stable), 0.1,
      0.05);
}

TEST(FaultModel, ValidatesConfig) {
  {
    auto cfg = mixed_faults();
    cfg.crash_rate = 1.2;
    EXPECT_THROW(sim::FaultModel{cfg}, std::invalid_argument);
  }
  {
    auto cfg = mixed_faults();
    cfg.crash_rate = 0.6;
    cfg.corruption_rate = 0.3;
    cfg.straggler_rate = 0.2;  // sum > 1
    EXPECT_THROW(sim::FaultModel{cfg}, std::invalid_argument);
  }
  {
    auto cfg = mixed_faults();
    cfg.crash_frac_min = 0.9;
    cfg.crash_frac_max = 0.1;
    EXPECT_THROW(sim::FaultModel{cfg}, std::invalid_argument);
  }
  {
    auto cfg = mixed_faults();
    cfg.straggler_cap = 1.0;  // below scale
    EXPECT_THROW(sim::FaultModel{cfg}, std::invalid_argument);
  }
  {
    auto cfg = mixed_faults();
    cfg.flaky_crash_boost = 0.5;
    EXPECT_THROW(sim::FaultModel{cfg}, std::invalid_argument);
  }
}

TEST(FaultModel, CorruptionMangles) {
  sim::FaultModelConfig cfg;
  cfg.corruption_rate = 1.0;
  cfg.corruption_scale = 100.0;
  const sim::FaultModel model(cfg);

  sim::FaultEvent event;
  event.kind = sim::FaultKind::Corruption;

  std::vector<float> delta(200, 1.0f);
  event.corruption = sim::CorruptionMode::MakeNaN;
  model.corrupt(event, delta);
  EXPECT_TRUE(std::isnan(delta[0]));
  EXPECT_TRUE(std::isnan(delta[97]));
  EXPECT_FLOAT_EQ(delta[1], 1.0f);

  delta.assign(200, 1.0f);
  event.corruption = sim::CorruptionMode::MakeInf;
  model.corrupt(event, delta);
  EXPECT_TRUE(std::isinf(delta[0]));

  delta.assign(200, 1.0f);
  event.corruption = sim::CorruptionMode::ScaleExplode;
  model.corrupt(event, delta);
  EXPECT_FLOAT_EQ(delta[0], 100.0f);
  EXPECT_FLOAT_EQ(delta[199], 100.0f);

  // Non-corruption events leave the delta alone.
  delta.assign(200, 1.0f);
  event.kind = sim::FaultKind::Crash;
  model.corrupt(event, delta);
  EXPECT_FLOAT_EQ(delta[0], 1.0f);
}

// ---------------------------------------------------------------------------
// Update validation

TEST(UpdateValidation, AcceptsCleanRejectsNonFinite) {
  const std::vector<float> clean = {0.5f, -1.0f, 0.25f};
  EXPECT_TRUE(fl::update_is_valid(clean, 0.0));
  EXPECT_TRUE(fl::update_is_valid(clean, 10.0));

  std::vector<float> bad = clean;
  bad[1] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_FALSE(fl::update_is_valid(bad, 0.0));

  bad = clean;
  bad[2] = std::numeric_limits<float>::infinity();
  EXPECT_FALSE(fl::update_is_valid(bad, 0.0));
}

TEST(UpdateValidation, EnforcesNormBound) {
  const std::vector<float> delta = {3.0f, 4.0f};  // L2 norm 5
  EXPECT_TRUE(fl::update_is_valid(delta, 0.0));   // 0 = unbounded
  EXPECT_TRUE(fl::update_is_valid(delta, 5.0));
  EXPECT_FALSE(fl::update_is_valid(delta, 4.9));
}

// ---------------------------------------------------------------------------
// Circuit breaker

TEST(CircuitBreaker, OpensAfterConsecutiveFailuresAndRecovers) {
  sim::CircuitBreaker::Config cfg;
  cfg.failure_threshold = 3;
  cfg.base_cooldown = 4;
  sim::CircuitBreaker breaker(cfg);

  EXPECT_EQ(breaker.state(0), sim::CircuitBreaker::State::Closed);
  breaker.record_failure(0);
  breaker.record_failure(1);
  EXPECT_EQ(breaker.state(2), sim::CircuitBreaker::State::Closed);
  EXPECT_EQ(breaker.consecutive_failures(), 2u);

  // A success in between resets the consecutive count.
  breaker.record_success();
  EXPECT_EQ(breaker.consecutive_failures(), 0u);

  breaker.record_failure(3);
  breaker.record_failure(4);
  breaker.record_failure(5);  // third consecutive: trips
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_EQ(breaker.open_until(), 5u + 1u + 4u);
  for (std::size_t epoch = 6; epoch < 10; ++epoch) {
    EXPECT_EQ(breaker.state(epoch), sim::CircuitBreaker::State::Open);
    EXPECT_FALSE(breaker.allows(epoch));
  }
  // Cooldown elapsed: half-open, one probe allowed.
  EXPECT_EQ(breaker.state(10), sim::CircuitBreaker::State::HalfOpen);
  EXPECT_TRUE(breaker.allows(10));

  // Successful probe closes the breaker.
  breaker.record_success();
  EXPECT_EQ(breaker.state(10), sim::CircuitBreaker::State::Closed);
}

TEST(CircuitBreaker, FailedProbeDoublesCooldown) {
  sim::CircuitBreaker::Config cfg;
  cfg.failure_threshold = 2;
  cfg.base_cooldown = 4;
  cfg.max_cooldown = 16;
  sim::CircuitBreaker breaker(cfg);

  breaker.record_failure(0);
  breaker.record_failure(1);  // trip #1: cooldown 4, open until epoch 6
  EXPECT_EQ(breaker.open_until(), 6u);
  ASSERT_EQ(breaker.state(6), sim::CircuitBreaker::State::HalfOpen);

  breaker.record_failure(6);  // failed probe: trip #2, cooldown 8
  EXPECT_EQ(breaker.trips(), 2u);
  EXPECT_EQ(breaker.open_until(), 6u + 1u + 8u);
  ASSERT_EQ(breaker.state(15), sim::CircuitBreaker::State::HalfOpen);

  breaker.record_failure(15);  // trip #3 would be 16 = max_cooldown
  EXPECT_EQ(breaker.open_until(), 15u + 1u + 16u);

  breaker.record_failure(32);  // trip #4: still capped at max_cooldown
  EXPECT_EQ(breaker.open_until(), 32u + 1u + 16u);

  // A success closes it but keeps the trip count: the next trip pays the
  // capped cooldown immediately.
  breaker.record_success();
  EXPECT_EQ(breaker.state(40), sim::CircuitBreaker::State::Closed);
  EXPECT_EQ(breaker.trips(), 4u);
}

TEST(CircuitBreaker, ValidatesConfig) {
  {
    sim::CircuitBreaker::Config cfg;
    cfg.failure_threshold = 0;
    EXPECT_THROW(sim::CircuitBreaker{cfg}, std::invalid_argument);
  }
  {
    sim::CircuitBreaker::Config cfg;
    cfg.base_cooldown = 8;
    cfg.max_cooldown = 4;
    EXPECT_THROW(sim::CircuitBreaker{cfg}, std::invalid_argument);
  }
}

// ---------------------------------------------------------------------------
// Engine integration

data::FederatedDataset make_fed(std::size_t classes = 10,
                                std::size_t clients = 12) {
  data::SyntheticImageConfig cfg =
      data::SyntheticImageConfig::femnist_like(classes);
  cfg.height = 12;
  cfg.width = 12;
  cfg.noise_stddev = 0.6;
  data::SyntheticImageGenerator gen(cfg);
  data::PartitionConfig pcfg;
  pcfg.num_clients = clients;
  pcfg.min_samples = 60;
  pcfg.max_samples = 120;
  pcfg.test_samples = 20;
  pcfg.style_brightness_stddev = 0.2;
  pcfg.style_contrast_stddev = 0.08;
  Rng rng(7);
  return data::partition_majority_label(gen, pcfg, rng);
}

fl::EngineConfig make_engine(std::size_t rounds = 20) {
  fl::EngineConfig cfg;
  cfg.rounds = rounds;
  cfg.clients_per_round = 5;
  cfg.eval_every = 5;
  cfg.local.sgd.learning_rate = 0.08;
  cfg.seed = 13;
  return cfg;
}

struct PinnedRecord {
  double sim_time_s;
  double global_accuracy;
  double global_loss;
  std::vector<std::size_t> selected;
};

// Seeded run captured from the pre-fault-layer engine (commit 23f7f8d's
// tree) with the exact fixture above: the zero-cost-default acceptance
// criterion. Any drift in these doubles means the clean path is no longer
// bit-identical to the pre-PR engine.
const std::vector<PinnedRecord> kPinnedSync = {
    {2.4592208448284709, 0.17500000000000002, 2.6684952057084916, {0, 3, 6, 5, 8}},
    {4.1218140802358345, 0.17500000000000002, 2.6684952057084916, {2, 0, 6, 1, 5}},
    {5.2281820182925891, 0.17500000000000002, 2.6684952057084916, {4, 0, 11, 1, 8}},
    {7.6106378787327129, 0.17500000000000002, 2.6684952057084916, {0, 11, 5, 4, 6}},
    {8.9129245903296592, 0.17500000000000002, 2.6684952057084916, {3, 8, 11, 2, 1}},
    {10.835646134617638, 0.25416666666666665, 2.2498596636302448, {4, 0, 2, 6, 3}},
    {12.225081764077657, 0.25416666666666665, 2.2498596636302448, {6, 9, 5, 0, 8}},
    {13.842845758635269, 0.25416666666666665, 2.2498596636302448, {4, 9, 2, 3, 7}},
    {15.646498338221608, 0.25416666666666665, 2.2498596636302448, {9, 8, 3, 6, 10}},
    {17.360196146113068, 0.25416666666666665, 2.2498596636302448, {11, 2, 3, 1, 5}},
    {18.449487423302728, 0.26250000000000001, 1.9809220097751943, {11, 7, 10, 8, 5}},
    {19.714382216685308, 0.26250000000000001, 1.9809220097751943, {3, 8, 9, 0, 5}},
    {20.97769517768528, 0.26250000000000001, 1.9809220097751943, {0, 9, 1, 11, 5}},
    {22.536000487897368, 0.26250000000000001, 1.9809220097751943, {0, 10, 1, 11, 8}},
    {24.174834736903492, 0.26250000000000001, 1.9809220097751943, {7, 1, 10, 4, 11}},
    {25.861384637227896, 0.32916666666666666, 1.8979171452788226, {10, 8, 5, 9, 2}},
    {27.28619365285531, 0.32916666666666666, 1.8979171452788226, {6, 3, 11, 9, 7}},
    {28.975908908901115, 0.32916666666666666, 1.8979171452788226, {3, 0, 9, 5, 6}},
    {31.494633286698477, 0.32916666666666666, 1.8979171452788226, {9, 5, 3, 0, 6}},
    {32.610126703203107, 0.32916666666666666, 1.9039872757712126, {9, 1, 3, 5, 8}},
};

const std::vector<PinnedRecord> kPinnedAsync = {
    {0.73081671270111603, 0.1875, 2.5877432733579115, {4, 3}},
    {1.2560215242516954, 0.1875, 2.5877432733579115, {0, 5}},
    {1.7511328722613861, 0.1875, 2.5877432733579115, {8, 4}},
    {2.1882251717293606, 0.1875, 2.5877432733579115, {4, 6}},
    {2.5357691713031674, 0.22083333333333333, 2.7293905414824757, {8, 1}},
    {3.1535135166942774, 0.22083333333333333, 2.7293905414824757, {3, 11}},
    {3.5284844540398814, 0.22083333333333333, 2.7293905414824757, {10, 5}},
    {4.1539244261306809, 0.22083333333333333, 2.7293905414824757, {1, 0}},
    {4.6345757493663999, 0.24583333333333332, 2.7579436064973719, {10, 2}},
    {4.8256434022444967, 0.24583333333333332, 2.7579436064973719, {5, 7}},
    {5.9800651487831811, 0.24583333333333332, 2.7579436064973719, {11, 10}},
    {6.1461499223990188, 0.27916666666666662, 2.1563139252308092, {1, 9}},
};

TEST(EngineFaults, DefaultPathBitIdenticalToPrePRPinnedRun) {
  // The pinned doubles were captured before the blocked/packed compute
  // kernels landed. Those kernels reassociate float accumulation (covered by
  // their own tolerance-bounded equivalence tests); the reference backend
  // retains the seed kernels' exact accumulation order, so it is the path
  // that must stay bit-identical to the pre-PR engine.
  ops::set_kernel_backend(ops::KernelBackend::kReference);
  const auto fed = make_fed();
  {
    fl::FederatedTrainer trainer(fed, core::default_model_factory(fed, 99),
                                 make_engine());
    select::RandomSelector selector;
    const auto history = trainer.run(selector);
    ASSERT_EQ(history.records().size(), kPinnedSync.size());
    for (std::size_t i = 0; i < kPinnedSync.size(); ++i) {
      const auto& r = history.records()[i];
      // Exact (bitwise) double equality on purpose: the fault layer must be
      // a zero-cost abstraction when disabled.
      EXPECT_EQ(r.sim_time_s, kPinnedSync[i].sim_time_s) << "round " << i;
      EXPECT_EQ(r.global_accuracy, kPinnedSync[i].global_accuracy)
          << "round " << i;
      EXPECT_EQ(r.global_loss, kPinnedSync[i].global_loss) << "round " << i;
      EXPECT_EQ(r.selected, kPinnedSync[i].selected) << "round " << i;
      EXPECT_EQ(r.dispatched, r.selected.size());
      EXPECT_EQ(r.wasted(), 0u);
      EXPECT_DOUBLE_EQ(r.deadline_s, 0.0);
    }
  }
  {
    fl::AsyncEngineConfig async;
    async.aggregations = 12;
    async.max_in_flight = 4;
    async.buffer_size = 2;
    async.eval_every = 4;
    async.local.sgd.learning_rate = 0.08;
    async.seed = 13;
    fl::AsyncFederatedTrainer trainer(fed, core::default_model_factory(fed, 99),
                                      async);
    select::RandomSelector selector;
    const auto history = trainer.run(selector);
    ASSERT_EQ(history.records().size(), kPinnedAsync.size());
    for (std::size_t i = 0; i < kPinnedAsync.size(); ++i) {
      const auto& r = history.records()[i];
      EXPECT_EQ(r.sim_time_s, kPinnedAsync[i].sim_time_s) << "record " << i;
      EXPECT_EQ(r.global_accuracy, kPinnedAsync[i].global_accuracy)
          << "record " << i;
      EXPECT_EQ(r.global_loss, kPinnedAsync[i].global_loss) << "record " << i;
      EXPECT_EQ(r.selected, kPinnedAsync[i].selected) << "record " << i;
      EXPECT_EQ(r.wasted(), 0u);
    }
  }
  ops::set_kernel_backend(ops::KernelBackend::kOptimized);
}

TEST(EngineFaults, RoundRecordAccountingIsConsistent) {
  const auto fed = make_fed();
  auto engine = make_engine(25);
  engine.faults.crash_rate = 0.25;
  engine.faults.corruption_rate = 0.15;
  engine.faults.straggler_rate = 0.1;
  engine.faults.seed = 31;
  engine.overcommit = 0.6;           // dispatch ceil(5 * 1.6) = 8
  engine.deadline_quantile = 0.8;
  engine.max_update_norm = 50.0;     // catches ScaleExplode corruption
  fl::FederatedTrainer trainer(fed, core::default_model_factory(fed, 99),
                               engine);
  select::RandomSelector selector;
  const auto history = trainer.run(selector);

  std::size_t crashed = 0, late = 0, rejected = 0;
  double prev_time = 0.0;
  for (const auto& r : history.records()) {
    // Every dispatched client has exactly one fate.
    EXPECT_EQ(r.selected.size() + r.crashed.size() + r.late.size() +
                  r.rejected.size(),
              r.dispatched);
    EXPECT_LE(r.dispatched, 8u);
    EXPECT_GT(r.dispatched, 0u);
    EXPECT_GT(r.deadline_s, 0.0);
    // Fates are disjoint.
    std::set<std::size_t> all;
    for (const auto* group : {&r.selected, &r.crashed, &r.late, &r.rejected}) {
      for (std::size_t id : *group) {
        EXPECT_TRUE(all.insert(id).second) << "client in two fate groups";
      }
    }
    // The server never waits past the deadline.
    EXPECT_LE(r.round_duration_s, r.deadline_s + 1e-12);
    EXPECT_GE(r.sim_time_s, prev_time);
    prev_time = r.sim_time_s;
    crashed += r.crashed.size();
    late += r.late.size();
    rejected += r.rejected.size();
  }
  // At these rates every failure mode must actually occur.
  EXPECT_GT(crashed, 0u);
  EXPECT_GT(late, 0u);
  EXPECT_GT(rejected, 0u);
  EXPECT_EQ(history.total_wasted(), crashed + late + rejected);
  EXPECT_GT(history.total_dispatched(), 25u * 5u);

  // Corrupted updates never reach the global model.
  for (float v : trainer.final_parameters()) {
    ASSERT_TRUE(std::isfinite(v));
  }
}

TEST(EngineFaults, OverSelectionClampsToPopulation) {
  const auto fed = make_fed(10, 6);
  auto engine = make_engine(6);
  engine.clients_per_round = 5;
  engine.overcommit = 1.0;  // would ask for 10 of 6 clients
  engine.faults.crash_rate = 0.1;
  engine.faults.seed = 5;
  fl::FederatedTrainer trainer(fed, core::default_model_factory(fed, 99),
                               engine);
  select::RandomSelector selector;
  const auto history = trainer.run(selector);
  for (const auto& r : history.records()) {
    EXPECT_LE(r.dispatched, 6u);
  }
}

TEST(EngineFaults, ProceedsWithShortRoundWhenFewAvailable) {
  const auto fed = make_fed(10, 8);
  auto engine = make_engine(10);
  engine.clients_per_round = 5;
  engine.overcommit = 0.4;
  // Heavy pre-round dropout: often fewer than 5 clients are reachable; the
  // engine must run a short round, not fail an invariant check.
  const auto dropout = sim::make_per_epoch_dropout(8, 0.7, 21);
  fl::FederatedTrainer trainer(fed, core::default_model_factory(fed, 99),
                               engine);
  select::RandomSelector selector;
  const auto history = trainer.run(selector, *dropout);
  ASSERT_EQ(history.records().size(), 10u);
  bool some_short = false;
  for (const auto& r : history.records()) {
    if (r.dispatched < 5u) some_short = true;
  }
  EXPECT_TRUE(some_short);
}

TEST(EngineFaults, BreakerQuarantinesPermanentlyCrashingClients) {
  const auto fed = make_fed(10, 6);
  auto engine = make_engine(12);
  engine.clients_per_round = 6;
  engine.faults.crash_rate = 1.0;  // everyone crashes every dispatch
  engine.faults.seed = 3;
  engine.breaker.failure_threshold = 3;
  engine.breaker.base_cooldown = 4;
  fl::FederatedTrainer trainer(fed, core::default_model_factory(fed, 99),
                               engine);
  select::RandomSelector selector;
  const auto history = trainer.run(selector);
  ASSERT_EQ(history.records().size(), 12u);
  // First three rounds: all six dispatched, all crash. Then every breaker is
  // open and the engine proceeds with empty rounds until cooldowns expire.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(history.records()[i].dispatched, 6u);
    EXPECT_EQ(history.records()[i].crashed.size(), 6u);
  }
  EXPECT_EQ(history.records()[3].dispatched, 0u);
  bool some_empty = false, some_retry = false;
  for (std::size_t i = 3; i < 12; ++i) {
    const auto& r = history.records()[i];
    if (r.dispatched == 0) some_empty = true;
    if (r.dispatched > 0) some_retry = true;  // half-open probes
    EXPECT_EQ(r.selected.size(), 0u);
  }
  EXPECT_TRUE(some_empty);
  EXPECT_TRUE(some_retry);
}

// ---------------------------------------------------------------------------
// Selector failure hooks

std::vector<fl::ClientRuntimeInfo> make_view(
    const std::vector<double>& latencies) {
  std::vector<fl::ClientRuntimeInfo> view;
  for (std::size_t i = 0; i < latencies.size(); ++i) {
    fl::ClientRuntimeInfo info;
    info.id = i;
    info.latency_s = latencies[i];
    info.num_samples = 100;
    info.last_loss = 2.3;
    info.available = true;
    view.push_back(info);
  }
  return view;
}

TEST(HaccsFailure, PenaltyDemotesFailedDeviceWithinItsCluster) {
  core::HaccsConfig cfg;
  cfg.in_cluster = core::InClusterPolicy::MinLatency;
  // One cluster {0, 1, 2}: client 0 is fastest and normally always picked.
  core::HaccsSelector selector({0, 0, 0}, cfg);
  const auto view = make_view({1.0, 2.0, 3.0});
  Rng rng(17);

  auto out = selector.select(1, view, 0, rng);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0u);

  // Two failures: penalty 2 -> 4; effective latency ~3.8 > client 1's 2.0.
  selector.report_failure(0, 0, fl::FailureKind::Crash);
  selector.report_failure(0, 0, fl::FailureKind::Crash);
  EXPECT_DOUBLE_EQ(selector.failure_penalty_of(0), 4.0);
  EXPECT_DOUBLE_EQ(selector.failure_penalty_of(1), 1.0);

  out = selector.select(1, view, 1, rng);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 1u);  // the next-fastest same-cluster device stands in

  // The penalty decays back toward 1 over fault-free epochs.
  const double decayed = selector.failure_penalty_of(0);
  EXPECT_LT(decayed, 4.0);
  EXPECT_GT(decayed, 1.0);
}

TEST(HaccsFailure, ReplacementDrawComesFromTheFailedCluster) {
  core::HaccsConfig cfg;
  cfg.in_cluster = core::InClusterPolicy::MinLatency;
  cfg.rho = 1.0;  // latency-only weights: cluster 0 (fast) dominates the draw
  core::HaccsSelector selector({0, 0, 0, 1, 1, 1}, cfg);
  // Cluster 1 is much slower, so the weighted draw essentially never picks
  // it; only the replacement IOU can.
  const auto view = make_view({1.0, 1.1, 1.2, 50.0, 60.0, 70.0});
  Rng rng(23);

  // Client 4 (cluster 1) fails: cluster 1 is owed a stand-in.
  selector.report_failure(4, 0, fl::FailureKind::Timeout);
  const auto out = selector.select(1, view, 1, rng);
  ASSERT_EQ(out.size(), 1u);
  // The stand-in is the fastest cluster-1 device (client 3), not the failed
  // client's own slot and not a cluster-0 device.
  EXPECT_EQ(out[0], 3u);

  // The IOU is consumed: the next draw reverts to the weighted sampling.
  const auto next = selector.select(1, view, 2, rng);
  ASSERT_EQ(next.size(), 1u);
  EXPECT_LT(next[0], 3u);
}

TEST(HaccsFailure, ReplacementCanBeDisabled) {
  core::HaccsConfig cfg;
  cfg.rho = 1.0;
  cfg.failure_replacement = false;
  cfg.failure_penalty = 1.0;  // fault-unaware baseline
  core::HaccsSelector selector({0, 0, 0, 1, 1, 1}, cfg);
  const auto view = make_view({1.0, 1.1, 1.2, 50.0, 60.0, 70.0});
  Rng rng(23);
  selector.report_failure(4, 0, fl::FailureKind::Timeout);
  EXPECT_DOUBLE_EQ(selector.failure_penalty_of(4), 1.0);
  const auto out = selector.select(1, view, 1, rng);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_LT(out[0], 3u);  // no IOU: the fast cluster keeps the slot
}

TEST(OortFailure, FailurePenalizesUtilityAndSuccessRecoversIt) {
  select::OortConfig cfg;
  select::OortSelector selector(cfg);
  const auto view = make_view({1.0, 2.0, 3.0});
  selector.initialize(view);

  const double before = selector.utility(view[1], 1);
  ASSERT_GT(before, 0.0);
  EXPECT_DOUBLE_EQ(selector.reliability_of(1), 1.0);

  selector.report_failure(1, 1, fl::FailureKind::Crash);
  EXPECT_DOUBLE_EQ(selector.reliability_of(1), 0.5);
  EXPECT_DOUBLE_EQ(selector.utility(view[1], 1), 0.5 * before);

  // Repeated failures floor at min_reliability, never zero.
  for (int i = 0; i < 20; ++i) {
    selector.report_failure(1, 1, fl::FailureKind::Crash);
  }
  EXPECT_DOUBLE_EQ(selector.reliability_of(1), cfg.min_reliability);
  EXPECT_GT(selector.utility(view[1], 1), 0.0);

  // A successful round pulls reliability back toward 1.
  const double floor = selector.reliability_of(1);
  selector.report_result(1, 2.0, 2);
  EXPECT_GT(selector.reliability_of(1), floor);

  // Other clients are untouched.
  EXPECT_DOUBLE_EQ(selector.reliability_of(0), 1.0);
}

TEST(TiflFailure, FailedClientRefundsItsTierCreditShare) {
  select::TiflConfig cfg;
  cfg.num_tiers = 2;
  cfg.expected_rounds = 10;
  cfg.credit_factor = 2.0;  // initial credits: 2 * 10/2 = 10 per tier
  select::TiflSelector selector(cfg);
  const auto view = make_view({1.0, 1.5, 2.0, 5.0, 6.0, 7.0});
  selector.initialize(view);
  ASSERT_EQ(selector.num_tiers(), 2u);
  EXPECT_DOUBLE_EQ(selector.tier_credits(0), 10.0);
  EXPECT_DOUBLE_EQ(selector.tier_credits(1), 10.0);

  Rng rng(9);
  const auto out = selector.select(2, view, 0, rng);
  ASSERT_EQ(out.size(), 2u);
  // Exactly one tier was charged one credit.
  const std::size_t charged =
      selector.tier_credits(0) < 10.0 ? 0u : 1u;
  EXPECT_DOUBLE_EQ(selector.tier_credits(charged), 9.0);

  // A member of the charged tier fails: its 1/k share flows back.
  const std::size_t failed = out[0];
  ASSERT_EQ(selector.tier_of()[failed], charged);
  selector.report_failure(failed, 0, fl::FailureKind::CorruptUpdate);
  EXPECT_DOUBLE_EQ(selector.tier_credits(charged), 9.5);

  // Refunds never push a tier above its initial grant.
  for (int i = 0; i < 10; ++i) {
    selector.report_failure(failed, 0, fl::FailureKind::CorruptUpdate);
  }
  EXPECT_DOUBLE_EQ(selector.tier_credits(charged), 10.0);
}

// ---------------------------------------------------------------------------
// Async engine under faults

TEST(AsyncFaults, CrashesFreeSlotsAndAreAccounted) {
  const auto fed = make_fed();
  fl::AsyncEngineConfig cfg;
  cfg.aggregations = 20;
  cfg.max_in_flight = 4;
  cfg.buffer_size = 2;
  cfg.eval_every = 10;
  cfg.local.sgd.learning_rate = 0.08;
  cfg.seed = 13;
  cfg.faults.crash_rate = 0.3;
  cfg.faults.seed = 44;
  fl::AsyncFederatedTrainer trainer(fed, core::default_model_factory(fed, 99),
                                    cfg);
  select::RandomSelector selector;
  const auto history = trainer.run(selector);
  ASSERT_EQ(history.records().size(), 20u);
  std::size_t crashed = 0, aggregated = 0, dispatched = 0;
  for (const auto& r : history.records()) {
    // Crashes free their slot: every aggregation still collects a full
    // buffer despite the crash rate.
    EXPECT_EQ(r.selected.size(), 2u);
    crashed += r.crashed.size();
    aggregated += r.selected.size();
    dispatched += r.dispatched;
  }
  EXPECT_GT(crashed, 0u);
  EXPECT_GE(dispatched, aggregated + crashed);
  EXPECT_EQ(history.total_wasted(), crashed);
}

TEST(AsyncFaults, CorruptUpdatesAreRejected) {
  const auto fed = make_fed();
  fl::AsyncEngineConfig cfg;
  cfg.aggregations = 15;
  cfg.max_in_flight = 4;
  cfg.buffer_size = 2;
  cfg.eval_every = 10;
  cfg.local.sgd.learning_rate = 0.08;
  cfg.seed = 13;
  cfg.faults.corruption_rate = 0.4;
  cfg.faults.seed = 44;
  cfg.max_update_norm = 50.0;
  fl::AsyncFederatedTrainer trainer(fed, core::default_model_factory(fed, 99),
                                    cfg);
  select::RandomSelector selector;
  const auto history = trainer.run(selector);
  std::size_t rejected = 0;
  for (const auto& r : history.records()) rejected += r.rejected.size();
  EXPECT_GT(rejected, 0u);
  for (float v : trainer.final_parameters()) {
    ASSERT_TRUE(std::isfinite(v));
  }
}

// ---------------------------------------------------------------------------
// fig_faults smoke: the acceptance-criterion comparison

TEST(FigFaultsSmoke, FaultAwareHaccsWastesLessToTargetUnderFlakyCrashes) {
  // Mirrors bench/fig_faults at test scale: a cluster-rich federation (5
  // label groups x 3 clients) where an average 30% of dispatches crash,
  // concentrated on seeded flaky devices. Fault-aware HACCS (over-selection,
  // breaker quarantine, penalty + same-cluster re-sampling) must reach the
  // target accuracy having wasted fewer client-rounds than the fault-unaware
  // configuration.
  const auto fed = make_fed(5, 15);
  const double target = 0.55;
  fl::TrainingHistory histories[2];
  for (int aware = 0; aware <= 1; ++aware) {
    auto engine = make_engine(60);
    engine.faults.crash_rate = 0.15;
    engine.faults.flaky_fraction = 0.25;
    engine.faults.flaky_crash_boost = 5.0;  // flaky devices crash 75% of rounds
    engine.faults.seed = 990;               // = bench's exp.seed + 977
    core::HaccsConfig haccs;
    haccs.rho = 0.5;
    if (aware) {
      engine.overcommit = 0.2;
    } else {
      engine.breaker.failure_threshold = 1000000;  // breaker effectively off
      haccs.failure_penalty = 1.0;
      haccs.failure_replacement = false;
    }
    fl::FederatedTrainer trainer(fed, core::default_model_factory(fed, 99),
                                 engine);
    core::HaccsSelector selector(fed, haccs);
    histories[aware] = trainer.run(selector);
  }
  const auto& plain = histories[0];
  const auto& hardened = histories[1];
  // Both configurations must converge...
  ASSERT_LT(plain.epochs_to_accuracy(target), 60u);
  ASSERT_LT(hardened.epochs_to_accuracy(target), 60u);
  // ...but the fault-aware run wastes fewer client-rounds getting there,
  // and fewer over the whole run, despite dispatching more per round.
  EXPECT_LT(hardened.wasted_until_accuracy(target),
            plain.wasted_until_accuracy(target));
  EXPECT_LT(hardened.total_wasted(), plain.total_wasted());
  EXPECT_GT(hardened.total_dispatched(), plain.total_dispatched());
}

}  // namespace
}  // namespace haccs
