// Tests for src/clustering: distance matrix, DBSCAN, OPTICS ordering and
// core/reachability semantics, and all three flat-cluster extractions.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "src/clustering/dbscan.hpp"
#include "src/clustering/distance_matrix.hpp"
#include "src/clustering/optics.hpp"
#include "src/common/rng.hpp"

namespace haccs::clustering {
namespace {

// Distance matrix from 1-D point positions: d(i,j) = |x_i - x_j|.
DistanceMatrix from_points(const std::vector<double>& xs) {
  return DistanceMatrix::build(xs.size(), [&](std::size_t i, std::size_t j) {
    return std::abs(xs[i] - xs[j]);
  });
}

// Canonical form of a labeling: map of cluster -> member set, dropping noise.
std::map<std::set<std::size_t>, int> partition_of(const std::vector<int>& labels) {
  std::map<int, std::set<std::size_t>> by_label;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] >= 0) by_label[labels[i]].insert(i);
  }
  std::map<std::set<std::size_t>, int> out;
  for (auto& [l, members] : by_label) out[members] = 1;
  return out;
}

TEST(DistanceMatrixTest, BuildSymmetricZeroDiagonal) {
  const auto m = from_points({0.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(m.at(2, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 2.0);
}

TEST(DistanceMatrixTest, RejectsNegativeDistance) {
  EXPECT_THROW(
      DistanceMatrix::build(2, [](std::size_t, std::size_t) { return -1.0; }),
      std::invalid_argument);
  DistanceMatrix m(2);
  EXPECT_THROW(m.set(0, 1, -0.5), std::invalid_argument);
}

TEST(DistanceMatrixTest, NeighborsWithinExcludesSelf) {
  const auto m = from_points({0.0, 0.5, 5.0});
  const auto nbrs = m.neighbors_within(0, 1.0);
  EXPECT_EQ(nbrs, (std::vector<std::size_t>{1}));
}

TEST(DistanceMatrixTest, KthNearest) {
  const auto m = from_points({0.0, 1.0, 2.0, 10.0});
  EXPECT_DOUBLE_EQ(m.kth_nearest_distance(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(m.kth_nearest_distance(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(m.kth_nearest_distance(0, 3), 10.0);
  EXPECT_THROW(m.kth_nearest_distance(0, 0), std::invalid_argument);
  EXPECT_THROW(m.kth_nearest_distance(0, 4), std::invalid_argument);
}

// ---- DBSCAN ----

TEST(Dbscan, FindsTwoWellSeparatedClusters) {
  const auto m = from_points({0.0, 0.1, 0.2, 10.0, 10.1, 10.2});
  const auto labels = dbscan(m, {.eps = 0.5, .min_pts = 2});
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
  for (int l : labels) EXPECT_GE(l, 0);
}

TEST(Dbscan, MarksIsolatedPointsAsNoise) {
  const auto m = from_points({0.0, 0.1, 50.0});
  const auto labels = dbscan(m, {.eps = 0.5, .min_pts = 2});
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[2], -1);
}

TEST(Dbscan, MinPtsControlsCoreDefinition) {
  // A pair is a cluster at min_pts=2 but noise at min_pts=3.
  const auto m = from_points({0.0, 0.1});
  EXPECT_GE(dbscan(m, {.eps = 0.5, .min_pts = 2})[0], 0);
  EXPECT_EQ(dbscan(m, {.eps = 0.5, .min_pts = 3})[0], -1);
}

TEST(Dbscan, ChainsThroughDensityConnectedPoints) {
  // A chain where consecutive points are within eps: one cluster.
  const auto m = from_points({0.0, 0.4, 0.8, 1.2, 1.6});
  const auto labels = dbscan(m, {.eps = 0.5, .min_pts = 2});
  for (int l : labels) EXPECT_EQ(l, labels[0]);
}

TEST(Dbscan, RejectsBadConfig) {
  const auto m = from_points({0.0, 1.0});
  EXPECT_THROW(dbscan(m, {.eps = -1.0, .min_pts = 2}), std::invalid_argument);
  EXPECT_THROW(dbscan(m, {.eps = 1.0, .min_pts = 0}), std::invalid_argument);
}

// ---- OPTICS ----

TEST(Optics, OrderingVisitsEveryPointOnce) {
  const auto m = from_points({0.0, 0.1, 5.0, 5.1, 9.0});
  const auto result = optics(m, {.min_pts = 2, .max_eps = kUndefined});
  std::set<std::size_t> seen(result.ordering.begin(), result.ordering.end());
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Optics, CoreDistanceIsNearestNeighborAtMinPts2) {
  const auto m = from_points({0.0, 0.3, 1.0});
  const auto result = optics(m, {.min_pts = 2, .max_eps = kUndefined});
  EXPECT_DOUBLE_EQ(result.core_distance[0], 0.3);
  EXPECT_DOUBLE_EQ(result.core_distance[1], 0.3);
  EXPECT_DOUBLE_EQ(result.core_distance[2], 0.7);
}

TEST(Optics, ReachabilityLowWithinClusterHighAcross) {
  const auto m = from_points({0.0, 0.1, 0.2, 10.0, 10.1, 10.2});
  const auto result = optics(m, {.min_pts = 2, .max_eps = kUndefined});
  const auto plot = result.reachability_plot();
  // Exactly one finite reachability jump >= ~9.8 (the inter-cluster gap).
  int big_jumps = 0;
  for (double r : plot) {
    if (std::isfinite(r) && r > 5.0) ++big_jumps;
  }
  EXPECT_EQ(big_jumps, 1);
}

TEST(Optics, MaxEpsLimitsReachability) {
  const auto m = from_points({0.0, 0.1, 10.0, 10.1});
  const auto result = optics(m, {.min_pts = 2, .max_eps = 1.0});
  // The two pairs form separate components; each component start has
  // undefined (infinite) reachability.
  const auto plot = result.reachability_plot();
  int undefined_count = 0;
  for (double r : plot) {
    if (!std::isfinite(r)) ++undefined_count;
  }
  EXPECT_EQ(undefined_count, 2);
}

TEST(Optics, ExtractDbscanMatchesDbscan) {
  Rng rng(7);
  // Three Gaussian blobs on a line.
  std::vector<double> xs;
  for (double center : {0.0, 5.0, 11.0}) {
    for (int i = 0; i < 8; ++i) xs.push_back(center + rng.normal(0.0, 0.15));
  }
  const auto m = from_points(xs);
  const auto direct = dbscan(m, {.eps = 1.0, .min_pts = 3});
  const auto result = optics(m, {.min_pts = 3, .max_eps = kUndefined});
  const auto via_optics = extract_dbscan(result, 1.0, 3);
  EXPECT_EQ(partition_of(direct), partition_of(via_optics));
}

TEST(Optics, ExtractAutoRecoversWellSeparatedClusters) {
  const auto m = from_points({0.0, 0.1, 0.2, 10.0, 10.1, 10.2, 20.0, 20.1});
  const auto result = optics(m, {.min_pts = 2, .max_eps = kUndefined});
  const auto labels = extract_auto(result, m, 2);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_EQ(labels[6], labels[7]);
  std::set<int> distinct(labels.begin(), labels.end());
  EXPECT_EQ(distinct.size(), 3u);
}

TEST(Optics, ExtractAutoSingleClusterWhenUniform) {
  // Evenly spaced points: no dominant gap => one cluster (the IID case the
  // paper describes in §V-D1).
  std::vector<double> xs;
  for (int i = 0; i < 12; ++i) xs.push_back(0.1 * i);
  const auto m = from_points(xs);
  const auto result = optics(m, {.min_pts = 2, .max_eps = kUndefined});
  const auto labels = extract_auto(result, m, 2);
  for (int l : labels) EXPECT_EQ(l, labels[0]);
  EXPECT_GE(labels[0], 0);
}

TEST(Optics, ExtractAutoHandlesPairClusters) {
  // Ten pairs (the Fig. 8a layout): every pair must come out as one cluster.
  std::vector<double> xs;
  for (int g = 0; g < 10; ++g) {
    xs.push_back(g * 5.0);
    xs.push_back(g * 5.0 + 0.1);
  }
  const auto m = from_points(xs);
  const auto result = optics(m, {.min_pts = 2, .max_eps = kUndefined});
  const auto labels = extract_auto(result, m, 2);
  std::set<int> distinct;
  for (int g = 0; g < 10; ++g) {
    EXPECT_EQ(labels[2 * g], labels[2 * g + 1]) << "pair " << g;
    EXPECT_GE(labels[2 * g], 0);
    distinct.insert(labels[2 * g]);
  }
  EXPECT_EQ(distinct.size(), 10u);
}

TEST(Optics, ExtractXiFindsValleys) {
  Rng rng(11);
  std::vector<double> xs;
  for (double center : {0.0, 8.0}) {
    for (int i = 0; i < 10; ++i) xs.push_back(center + rng.normal(0.0, 0.1));
  }
  const auto m = from_points(xs);
  const auto result = optics(m, {.min_pts = 3, .max_eps = kUndefined});
  const auto labels = extract_xi(result, 0.05, 3);
  // Points from the same blob that are clustered must share a label, and
  // the two blobs must never share one.
  std::set<int> blob_a, blob_b;
  for (int i = 0; i < 10; ++i) {
    if (labels[i] >= 0) blob_a.insert(labels[i]);
  }
  for (int i = 10; i < 20; ++i) {
    if (labels[i] >= 0) blob_b.insert(labels[i]);
  }
  EXPECT_FALSE(blob_a.empty());
  EXPECT_FALSE(blob_b.empty());
  for (int a : blob_a) EXPECT_EQ(blob_b.count(a), 0u);
}

TEST(Optics, ExtractXiRejectsBadXi) {
  const auto m = from_points({0.0, 1.0});
  const auto result = optics(m, {.min_pts = 2, .max_eps = kUndefined});
  EXPECT_THROW(extract_xi(result, 0.0, 2), std::invalid_argument);
  EXPECT_THROW(extract_xi(result, 1.0, 2), std::invalid_argument);
}

// ---- Degenerate inputs (the fuzzer's edge cases, pinned as unit tests) ----

TEST(Dbscan, AllIdenticalPointsFormOneCluster) {
  // Identical client summaries give an all-zero distance matrix; everything
  // must collapse into a single cluster with no noise.
  const auto m = from_points(std::vector<double>(6, 2.5));
  const auto labels = dbscan(m, {.eps = 0.3, .min_pts = 2});
  ASSERT_EQ(labels.size(), 6u);
  for (int l : labels) EXPECT_EQ(l, 0);
}

TEST(Dbscan, SinglePointIsNoiseBelowMinPts) {
  // One client can never reach min_pts = 2 neighbors: it is noise here, and
  // HaccsSelector::build_clusters remaps it to a singleton cluster.
  const auto m = from_points({1.0});
  const auto labels = dbscan(m, {.eps = 0.3, .min_pts = 2});
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_EQ(labels[0], -1);
}

TEST(Optics, AllIdenticalPointsFormOneCluster) {
  const auto m = from_points(std::vector<double>(5, 0.0));
  const auto result = optics(m, {.min_pts = 2, .max_eps = kUndefined});
  ASSERT_EQ(result.ordering.size(), 5u);
  const auto labels = extract_auto(result, m, 2);
  ASSERT_EQ(labels.size(), 5u);
  for (int l : labels) EXPECT_EQ(l, labels[0]);
  EXPECT_GE(labels[0], 0);
}

TEST(Optics, SinglePointDoesNotCrash) {
  const auto m = from_points({0.7});
  const auto result = optics(m, {.min_pts = 2, .max_eps = kUndefined});
  ASSERT_EQ(result.ordering.size(), 1u);
  const auto auto_labels = extract_auto(result, m, 2);
  ASSERT_EQ(auto_labels.size(), 1u);
  const auto eps_labels = extract_dbscan(result, 0.5, 2);
  ASSERT_EQ(eps_labels.size(), 1u);
}

TEST(Optics, DeterministicOrdering) {
  Rng rng(13);
  std::vector<double> xs;
  for (int i = 0; i < 30; ++i) xs.push_back(rng.uniform(0.0, 10.0));
  const auto m = from_points(xs);
  const auto r1 = optics(m, {.min_pts = 3, .max_eps = kUndefined});
  const auto r2 = optics(m, {.min_pts = 3, .max_eps = kUndefined});
  EXPECT_EQ(r1.ordering, r2.ordering);
  EXPECT_EQ(r1.reachability, r2.reachability);
}

}  // namespace
}  // namespace haccs::clustering
