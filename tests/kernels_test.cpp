// Equivalence tests for the blocked/packed compute kernels.
//
// The optimized GEMM and im2col conv paths reassociate float accumulation,
// so agreement with the retained reference kernels is tolerance-bounded:
// relative error per element scaled by the reduction depth. Shapes cover
// primes, 1, and micro-kernel edge cases (tiles narrower than MR x NR,
// depths straddling KC). HACCS_KERNEL_TEST_ITERS scales the randomized
// iteration count (default 25).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <vector>

#include "src/common/rng.hpp"
#include "src/data/synthetic.hpp"
#include "src/fl/client.hpp"
#include "src/nn/model.hpp"
#include "src/tensor/ops.hpp"

namespace haccs {
namespace {

std::size_t test_iters() {
  if (const char* env = std::getenv("HACCS_KERNEL_TEST_ITERS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 25;
}

Tensor random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Tensor t({rows, cols});
  for (float& v : t.data()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

/// abs tolerance scaled by the reduction depth: each output element is a
/// k-term dot product, so accumulated rounding grows with k.
void expect_close(const Tensor& got, const Tensor& want, std::size_t depth) {
  ASSERT_EQ(got.size(), want.size());
  const float tol =
      1e-5f * static_cast<float>(depth) + 1e-5f;
  const float* g = got.raw();
  const float* w = want.raw();
  for (std::size_t i = 0; i < got.size(); ++i) {
    const float scale = std::max(1.0f, std::fabs(w[i]));
    ASSERT_NEAR(g[i], w[i], tol * scale) << "element " << i;
  }
}

// Odd, prime, and blocking-boundary extents: 1 and primes exercise the
// packed edge tiles, 257 straddles KC=256, 128/64 hit the fast paths.
constexpr std::size_t kShapes[] = {1, 2, 3, 5, 7, 13, 17, 31, 64, 97, 128, 257};

std::size_t pick_shape(Rng& rng) {
  return kShapes[static_cast<std::size_t>(
      rng.uniform(0.0, static_cast<double>(std::size(kShapes)) - 1e-9))];
}

TEST(Kernels, DefaultBackendIsOptimized) {
  EXPECT_EQ(ops::kernel_backend(), ops::KernelBackend::kOptimized);
  ops::set_kernel_backend(ops::KernelBackend::kReference);
  EXPECT_EQ(ops::kernel_backend(), ops::KernelBackend::kReference);
  ops::set_kernel_backend(ops::KernelBackend::kOptimized);
}

TEST(Kernels, GemmMatchesReferenceOnRandomShapes) {
  Rng rng(101);
  for (std::size_t it = 0; it < test_iters(); ++it) {
    const std::size_t m = pick_shape(rng), k = pick_shape(rng),
                      n = pick_shape(rng);
    const bool accumulate = rng.bernoulli(0.5);
    const Tensor a = random_matrix(m, k, rng);
    const Tensor b = random_matrix(k, n, rng);
    Tensor c = random_matrix(m, n, rng);
    Tensor c_ref = c;
    ops::gemm(a, b, c, accumulate);
    ops::gemm_reference(a, b, c_ref, accumulate);
    SCOPED_TRACE("m=" + std::to_string(m) + " k=" + std::to_string(k) +
                 " n=" + std::to_string(n));
    expect_close(c, c_ref, k);
  }
}

TEST(Kernels, GemmBtMatchesReferenceOnRandomShapes) {
  Rng rng(102);
  for (std::size_t it = 0; it < test_iters(); ++it) {
    const std::size_t m = pick_shape(rng), k = pick_shape(rng),
                      n = pick_shape(rng);
    const bool accumulate = rng.bernoulli(0.5);
    const Tensor a = random_matrix(m, k, rng);
    const Tensor b = random_matrix(n, k, rng);
    Tensor c = random_matrix(m, n, rng);
    Tensor c_ref = c;
    ops::gemm_bt(a, b, c, accumulate);
    ops::gemm_bt_reference(a, b, c_ref, accumulate);
    SCOPED_TRACE("m=" + std::to_string(m) + " k=" + std::to_string(k) +
                 " n=" + std::to_string(n));
    expect_close(c, c_ref, k);
  }
}

TEST(Kernels, GemmAtMatchesReferenceOnRandomShapes) {
  Rng rng(103);
  for (std::size_t it = 0; it < test_iters(); ++it) {
    const std::size_t m = pick_shape(rng), k = pick_shape(rng),
                      n = pick_shape(rng);
    const bool accumulate = rng.bernoulli(0.5);
    const Tensor a = random_matrix(k, m, rng);
    const Tensor b = random_matrix(k, n, rng);
    Tensor c = random_matrix(m, n, rng);
    Tensor c_ref = c;
    ops::gemm_at(a, b, c, accumulate);
    ops::gemm_at_reference(a, b, c_ref, accumulate);
    SCOPED_TRACE("m=" + std::to_string(m) + " k=" + std::to_string(k) +
                 " n=" + std::to_string(n));
    expect_close(c, c_ref, k);
  }
}

TEST(Kernels, ReferenceBackendRoutesDispatchingEntryPoints) {
  // Under kReference the dispatching gemm must agree with gemm_reference
  // bit-for-bit (same code path).
  ops::set_kernel_backend(ops::KernelBackend::kReference);
  Rng rng(104);
  const Tensor a = random_matrix(37, 53, rng);
  const Tensor b = random_matrix(53, 29, rng);
  Tensor c({37, 29}), c_ref({37, 29});
  ops::gemm(a, b, c);
  ops::gemm_reference(a, b, c_ref);
  ops::set_kernel_backend(ops::KernelBackend::kOptimized);
  for (std::size_t i = 0; i < c.size(); ++i) {
    ASSERT_EQ(c.raw()[i], c_ref.raw()[i]);
  }
}

TEST(Kernels, GemmPropagatesNaNThroughZeroRows) {
  // The seed kernel skipped a_ik == 0 terms, which silently masked NaN/Inf
  // in B. All paths must now propagate them.
  const std::size_t m = 8, k = 70, n = 90;  // above the small-GEMM cutoff
  Tensor a({m, k});  // all zeros
  Tensor b({k, n});
  b.raw()[5 * n + 7] = std::numeric_limits<float>::quiet_NaN();
  Tensor c({m, n});
  ops::gemm(a, b, c);
  EXPECT_TRUE(std::isnan(c.at(0, 7)));
  EXPECT_TRUE(std::isnan(c.at(7, 7)));
  EXPECT_EQ(c.at(0, 6), 0.0f);
  Tensor c_ref({m, n});
  ops::gemm_reference(a, b, c_ref);
  EXPECT_TRUE(std::isnan(c_ref.at(3, 7)));
}

ops::Conv2dShape conv_shape(std::size_t batch, std::size_t cin, std::size_t h,
                            std::size_t w, std::size_t cout, std::size_t kernel,
                            std::size_t stride, std::size_t padding) {
  return ops::Conv2dShape{batch, cin, h, w, cout, kernel, stride, padding};
}

void fill_random(Tensor& t, Rng& rng) {
  for (float& v : t.data()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
}

TEST(Kernels, ConvBackwardInputIm2colMatchesDirect) {
  Rng rng(105);
  // Odd spatial sizes, padding, and stride 2 exercise the col2im edges.
  const ops::Conv2dShape shapes[] = {
      conv_shape(2, 3, 9, 11, 4, 3, 1, 1),
      conv_shape(1, 1, 7, 7, 2, 5, 2, 2),
      conv_shape(3, 2, 13, 13, 5, 3, 2, 0),
  };
  for (const auto& s : shapes) {
    Tensor grad_output({s.batch, s.out_channels, s.out_h(), s.out_w()});
    Tensor weight({s.out_channels, s.in_channels, s.kernel, s.kernel});
    fill_random(grad_output, rng);
    fill_random(weight, rng);
    Tensor gi({s.batch, s.in_channels, s.in_h, s.in_w});
    Tensor gi_ref = gi;
    ops::conv2d_backward_input_im2col(s, grad_output, weight, gi);
    ops::conv2d_backward_input_direct(s, grad_output, weight, gi_ref);
    expect_close(gi, gi_ref, s.out_channels * s.kernel * s.kernel);
  }
}

TEST(Kernels, ConvBackwardParamsIm2colMatchesDirect) {
  Rng rng(106);
  const ops::Conv2dShape shapes[] = {
      conv_shape(2, 3, 9, 11, 4, 3, 1, 1),
      conv_shape(1, 1, 7, 7, 2, 5, 2, 2),
      conv_shape(3, 2, 13, 13, 5, 3, 2, 0),
  };
  for (const auto& s : shapes) {
    Tensor input({s.batch, s.in_channels, s.in_h, s.in_w});
    Tensor grad_output({s.batch, s.out_channels, s.out_h(), s.out_w()});
    fill_random(input, rng);
    fill_random(grad_output, rng);
    Tensor gw({s.out_channels, s.in_channels, s.kernel, s.kernel});
    Tensor gb({s.out_channels});
    // Accumulation contract: start from nonzero grads on both paths.
    fill_random(gw, rng);
    fill_random(gb, rng);
    Tensor gw_ref = gw;
    Tensor gb_ref = gb;
    ops::conv2d_backward_params_im2col(s, input, grad_output, gw, gb);
    ops::conv2d_backward_params_direct(s, input, grad_output, gw_ref, gb_ref);
    expect_close(gw, gw_ref, s.batch * s.out_h() * s.out_w());
    expect_close(gb, gb_ref, s.batch * s.out_h() * s.out_w());
  }
}

TEST(Kernels, MaxpoolInferMatchesTraining) {
  Rng rng(107);
  const ops::Pool2dShape s{3, 4, 8, 10, 2};
  Tensor input({s.batch, s.channels, s.in_h, s.in_w});
  fill_random(input, rng);
  Tensor out_train({s.batch, s.channels, s.out_h(), s.out_w()});
  Tensor out_infer = out_train;
  std::vector<std::size_t> argmax;
  ops::maxpool_forward(s, input, out_train, argmax);
  ops::maxpool_forward_infer(s, input, out_infer);
  for (std::size_t i = 0; i < out_train.size(); ++i) {
    ASSERT_EQ(out_train.raw()[i], out_infer.raw()[i]);
  }
}

TEST(Kernels, SequentialInferMatchesEvalModeForward) {
  Rng rng(108);
  nn::Sequential model = nn::make_cnn_mini(1, 12, 12, 10, rng);
  Tensor input({4, 1, 12, 12});
  fill_random(input, rng);
  model.set_training(false);
  const Tensor fwd = model.forward(input);
  const Tensor inf = model.infer(input);
  ASSERT_EQ(fwd.size(), inf.size());
  for (std::size_t i = 0; i < fwd.size(); ++i) {
    ASSERT_EQ(fwd.raw()[i], inf.raw()[i]) << "element " << i;
  }
}

/// Pinned training-round check: the same local training run under the
/// reference and optimized backends must land at losses within a small
/// tolerance — the end-to-end statement that kernel reassociation does not
/// change what the federation learns.
TEST(Kernels, TrainingRoundLossMatchesReferenceWithinTolerance) {
  auto make_data = [] {
    data::SyntheticImageConfig cfg = data::SyntheticImageConfig::femnist_like(6);
    cfg.height = 12;
    cfg.width = 12;
    data::SyntheticImageGenerator gen(cfg);
    data::Dataset set({1, 12, 12}, 6);
    Rng rng(55);
    for (std::int64_t label = 0; label < 6; ++label) {
      gen.fill(set, label, 16, rng);
    }
    return set;
  };
  auto run_with = [&](ops::KernelBackend backend) {
    ops::set_kernel_backend(backend);
    Rng model_rng(77);
    nn::Sequential model = nn::make_cnn_mini(1, 12, 12, 6, model_rng);
    fl::LocalTrainConfig cfg;
    cfg.epochs = 3;
    cfg.batch_size = 16;
    cfg.sgd.learning_rate = 0.05;
    Rng train_rng(88);
    const auto result = fl::train_local(model, make_data(), cfg, train_rng);
    ops::set_kernel_backend(ops::KernelBackend::kOptimized);
    return result;
  };
  const auto ref = run_with(ops::KernelBackend::kReference);
  const auto opt = run_with(ops::KernelBackend::kOptimized);
  EXPECT_LT(opt.average_loss, ref.average_loss * 1.001 + 1e-3);
  EXPECT_GT(opt.average_loss, ref.average_loss * 0.999 - 1e-3);
  EXPECT_NEAR(opt.final_loss, ref.final_loss,
              std::max(1e-3, ref.final_loss * 1e-2));
  EXPECT_EQ(opt.batches, ref.batches);
}

}  // namespace
}  // namespace haccs
