// Tests for the fault-tolerant serving mode (DESIGN.md §5g): crash-resume
// run checkpoints (round-trip, damage rejection, resume bit-equivalence),
// seeded transport chaos injection, the serving-mode dispatcher (quorum
// commit, heartbeat liveness escalation, reacquire), and worker session
// resume across reconnects.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/core/haccs_system.hpp"
#include "src/fl/checkpoint.hpp"
#include "src/fl/engine.hpp"
#include "src/fl/net_driver.hpp"
#include "src/net/chaos.hpp"
#include "src/net/frame.hpp"
#include "src/net/loopback.hpp"
#include "src/net/messages.hpp"
#include "src/net/status.hpp"
#include "src/net/wire.hpp"
#include "src/nn/serialize.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/obs.hpp"
#include "src/obs/trace.hpp"
#include "src/select/oort.hpp"
#include "src/select/random_selector.hpp"
#include "src/sim/dropout.hpp"
#include "src/testing/scenario.hpp"

namespace haccs {
namespace {

data::FederatedDataset make_fed(std::size_t clients = 8) {
  data::SyntheticImageConfig cfg = data::SyntheticImageConfig::femnist_like(4);
  cfg.height = 10;
  cfg.width = 10;
  cfg.noise_stddev = 0.6;
  data::SyntheticImageGenerator gen(cfg);
  data::PartitionConfig pcfg;
  pcfg.num_clients = clients;
  pcfg.min_samples = 40;
  pcfg.max_samples = 80;
  pcfg.test_samples = 12;
  Rng rng(19);
  return data::partition_majority_label(gen, pcfg, rng);
}

fl::EngineConfig make_engine(std::size_t rounds = 6) {
  fl::EngineConfig cfg;
  cfg.rounds = rounds;
  cfg.clients_per_round = 3;
  cfg.eval_every = 3;
  cfg.local.sgd.learning_rate = 0.08;
  cfg.seed = 23;
  return cfg;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

/// Records with phase timings zeroed — the resume guarantee is "bit
/// identical modulo wall clock".
std::string record_json_no_phase(const fl::RoundRecord& record) {
  fl::RoundRecord copy = record;
  copy.phase = fl::PhaseTimings{};
  return fl::round_event_json("sync", copy);
}

// ---------------------------------------------------------------------------
// RunCheckpoint: encode/decode and file round trips

fl::RunState sample_state() {
  fl::RunState s;
  s.next_epoch = 7;
  s.sim_time_s = 123.5;
  s.last_accuracy = 0.625;
  s.last_loss = 1.25;
  s.global_params = {1.0f, -2.5f, 0.0f, 3.25f};
  Rng select_rng(41), train_rng(43);
  select_rng.uniform();
  s.select_rng = select_rng.state();
  s.train_rng = train_rng.state();
  s.client_last_loss = {0.5, 1.5, 2.5};
  s.breakers.resize(3);
  s.breakers[1].consecutive_failures = 2;
  s.selector_state = {0xDE, 0xAD, 0xBE, 0xEF};
  fl::RoundRecord rec;
  rec.epoch = 6;
  rec.sim_time_s = 123.5;
  rec.round_duration_s = 9.0;
  rec.global_accuracy = 0.625;
  rec.global_loss = 1.25;
  rec.selected = {1, 2};
  rec.dispatched = 3;
  rec.crashed = {0};
  rec.downlink_bytes = 300;
  rec.uplink_bytes = 200;
  s.records.push_back(rec);
  return s;
}

TEST(RunCheckpoint, EncodeDecodeRoundTrip) {
  const fl::RunState state = sample_state();
  const auto bytes = fl::encode_run_state(state);
  const fl::RunState back = fl::decode_run_state(bytes);

  EXPECT_EQ(back.next_epoch, state.next_epoch);
  EXPECT_EQ(back.sim_time_s, state.sim_time_s);
  EXPECT_EQ(back.last_accuracy, state.last_accuracy);
  EXPECT_EQ(back.last_loss, state.last_loss);
  EXPECT_EQ(back.global_params, state.global_params);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(back.select_rng.s[i], state.select_rng.s[i]);
    EXPECT_EQ(back.train_rng.s[i], state.train_rng.s[i]);
  }
  EXPECT_EQ(back.client_last_loss, state.client_last_loss);
  ASSERT_EQ(back.breakers.size(), state.breakers.size());
  EXPECT_EQ(back.breakers[1].consecutive_failures, 2u);
  EXPECT_EQ(back.selector_state, state.selector_state);
  ASSERT_EQ(back.records.size(), 1u);
  EXPECT_EQ(record_json_no_phase(back.records[0]),
            record_json_no_phase(state.records[0]));
}

TEST(RunCheckpoint, TruncationFailsWithDistinctError) {
  auto bytes = fl::encode_run_state(sample_state());
  bytes.resize(bytes.size() / 2);
  try {
    fl::decode_run_state(bytes);
    FAIL() << "truncated checkpoint decoded";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
  }
}

TEST(RunCheckpoint, PayloadCorruptionFailsCrc) {
  auto bytes = fl::encode_run_state(sample_state());
  bytes[bytes.size() - 3] ^= 0x40;  // flip one payload bit
  try {
    fl::decode_run_state(bytes);
    FAIL() << "corrupt checkpoint decoded";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos)
        << e.what();
  }
}

TEST(RunCheckpoint, VersionSkewFailsWithDistinctError) {
  net::WireWriter w;
  w.string("HACCS-RUN");
  w.u16(fl::kRunStateVersion + 41);
  net::Frame frame;
  frame.type = net::MessageType::Checkpoint;
  frame.payload = w.take();
  try {
    fl::decode_run_state(net::encode_frame(frame));
    FAIL() << "version-skewed checkpoint decoded";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }
}

TEST(RunCheckpoint, ModelCheckpointIsRejectedAsNotARunCheckpoint) {
  // nn/serialize.hpp model checkpoints share the Checkpoint frame type; the
  // run loader must reject them by payload magic, not crash on them.
  const auto fed = make_fed(4);
  const auto path = temp_path("model_ck.bin");
  nn::save_parameters(core::default_model_factory(fed, 99)(), path);
  try {
    fl::decode_run_state(read_file(path));
    FAIL() << "model checkpoint decoded as run state";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("not a run checkpoint"),
              std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(RunCheckpoint, SaveLoadFileRoundTripIsAtomic) {
  const auto path = temp_path("run_ck.bin");
  fl::RunState state = sample_state();
  fl::save_run_state(state, path);
  state.next_epoch = 9;
  fl::save_run_state(state, path);  // overwrite via tmp + rename
  const fl::RunState back = fl::load_run_state(path);
  EXPECT_EQ(back.next_epoch, 9u);
  // No temp litter left behind.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// RunCheckpoint: resume equivalence

TEST(RunCheckpoint, ResumedRunIsBitIdenticalToUninterrupted) {
  const auto fed = make_fed();
  const std::size_t total_rounds = 8, kill_after = 4;
  auto engine = make_engine(total_rounds);

  // Uninterrupted reference with a STATEFUL selector (Oort learns observed
  // losses), so the selector save/load path is load-bearing here.
  select::OortSelector ref_selector{select::OortConfig{}};
  fl::FederatedTrainer ref_trainer(fed, core::default_model_factory(fed, 99),
                                   engine);
  const auto reference = ref_trainer.run(ref_selector);
  ASSERT_EQ(reference.records().size(), total_rounds);

  // Interrupted run: capture the checkpoint after round `kill_after`, then
  // abandon the trainer (our stand-in for kill -9) and resume in a fresh
  // trainer + fresh selector.
  fl::RunState at_kill;
  bool captured = false;
  auto first_half_engine = engine;
  first_half_engine.rounds = kill_after;
  first_half_engine.on_checkpoint =
      [&](std::size_t next_epoch,
          const fl::EngineConfig::RunStateFactory& snapshot) {
        if (next_epoch == kill_after) {
          at_kill = snapshot();
          captured = true;
        }
      };
  select::OortSelector half_selector{select::OortConfig{}};
  fl::FederatedTrainer half_trainer(
      fed, core::default_model_factory(fed, 99), first_half_engine);
  half_trainer.run(half_selector);
  ASSERT_TRUE(captured);
  EXPECT_FALSE(at_kill.selector_state.empty());

  select::OortSelector resumed_selector{select::OortConfig{}};
  fl::FederatedTrainer resumed_trainer(
      fed, core::default_model_factory(fed, 99), engine);
  const auto schedule = sim::make_always_available(fed.num_clients());
  const auto resumed =
      resumed_trainer.run(resumed_selector, *schedule, &at_kill);

  ASSERT_EQ(resumed.records().size(), total_rounds);
  for (std::size_t i = 0; i < total_rounds; ++i) {
    EXPECT_EQ(record_json_no_phase(reference.records()[i]),
              record_json_no_phase(resumed.records()[i]))
        << "round " << i;
  }
  EXPECT_EQ(ref_trainer.final_parameters(),
            resumed_trainer.final_parameters());
}

TEST(RunCheckpoint, EngineEmitsACheckpointEveryRound) {
  const auto fed = make_fed();
  auto engine = make_engine(3);
  std::vector<std::size_t> next_epochs;
  engine.on_checkpoint = [&](std::size_t next_epoch,
                             const fl::EngineConfig::RunStateFactory& snapshot) {
    next_epochs.push_back(next_epoch);
    const fl::RunState state = snapshot();
    EXPECT_EQ(state.next_epoch, next_epoch);
    EXPECT_EQ(state.records.size(), next_epoch);
    EXPECT_FALSE(state.global_params.empty());
  };
  select::RandomSelector selector;
  fl::FederatedTrainer trainer(fed, core::default_model_factory(fed, 99),
                               engine);
  trainer.run(selector);
  EXPECT_EQ(next_epochs, (std::vector<std::size_t>{1, 2, 3}));
}

TEST(RunCheckpoint, StopRequestedDrainsAfterCompletedRound) {
  const auto fed = make_fed();
  auto engine = make_engine(6);
  std::size_t completed = 0;
  // Never calls the factory: a hook that skips a round must cost nothing.
  engine.on_checkpoint = [&](std::size_t next_epoch,
                             const fl::EngineConfig::RunStateFactory&) {
    completed = next_epoch;
  };
  engine.stop_requested = [&] { return completed >= 2; };
  select::RandomSelector selector;
  fl::FederatedTrainer trainer(fed, core::default_model_factory(fed, 99),
                               engine);
  const auto history = trainer.run(selector);
  EXPECT_EQ(history.records().size(), 2u);
}

// ---------------------------------------------------------------------------
// ChaosTransport

net::Frame make_hello(std::uint32_t id) {
  return net::encode_hello(net::HelloMsg{id, 1});
}

TEST(ChaosTransport, WrapIsPassthroughWhenDisabled) {
  auto pair = net::make_loopback_pair({});
  net::Transport* raw = pair.a.get();
  auto wrapped = net::wrap_chaos(std::move(pair.a), net::ChaosOptions{});
  EXPECT_EQ(wrapped.get(), raw);  // zero-cost: same object handed back
}

TEST(ChaosTransport, DropsAreSilentAndCounted) {
  auto pair = net::make_loopback_pair({});
  net::ChaosOptions chaos;
  chaos.drop_rate = 1.0;
  auto sender = net::wrap_chaos(std::move(pair.a), chaos);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(sender->send(make_hello(7)), net::TransportStatus::Ok);
  }
  net::Frame frame;
  EXPECT_EQ(pair.b->recv(&frame, 0), net::TransportStatus::Timeout);
  const auto* chaotic = dynamic_cast<net::ChaosTransport*>(sender.get());
  ASSERT_NE(chaotic, nullptr);
  EXPECT_EQ(chaotic->stats().dropped, 5u);
}

TEST(ChaosTransport, CorruptionIsCaughtByReceiverCrc) {
  auto pair = net::make_loopback_pair({});
  net::ChaosOptions chaos;
  chaos.corrupt_rate = 1.0;
  auto sender = net::wrap_chaos(std::move(pair.a), chaos);
  ASSERT_EQ(sender->send(make_hello(7)), net::TransportStatus::Ok);
  net::Frame frame;
  EXPECT_EQ(pair.b->recv(&frame, 1000), net::TransportStatus::Corrupt);
}

TEST(ChaosTransport, DuplicateDeliversTheFrameTwice) {
  auto pair = net::make_loopback_pair({});
  net::ChaosOptions chaos;
  chaos.duplicate_rate = 1.0;
  auto sender = net::wrap_chaos(std::move(pair.a), chaos);
  ASSERT_EQ(sender->send(make_hello(9)), net::TransportStatus::Ok);
  net::Frame first, second;
  ASSERT_EQ(pair.b->recv(&first, 1000), net::TransportStatus::Ok);
  ASSERT_EQ(pair.b->recv(&second, 1000), net::TransportStatus::Ok);
  EXPECT_EQ(net::decode_hello(first).worker_id, 9u);
  EXPECT_EQ(net::decode_hello(second).worker_id, 9u);
}

TEST(ChaosTransport, ReorderSwapsAdjacentFrames) {
  auto pair = net::make_loopback_pair({});
  net::ChaosOptions chaos;
  chaos.seed = 5;
  chaos.reorder_rate = 1.0;
  auto sender = net::wrap_chaos(std::move(pair.a), chaos);
  ASSERT_EQ(sender->send(make_hello(1)), net::TransportStatus::Ok);
  ASSERT_EQ(sender->send(make_hello(2)), net::TransportStatus::Ok);
  // Frame 1 was held, frame 2 shipped first, then 1 released behind it.
  net::Frame first, second;
  ASSERT_EQ(pair.b->recv(&first, 1000), net::TransportStatus::Ok);
  ASSERT_EQ(pair.b->recv(&second, 1000), net::TransportStatus::Ok);
  EXPECT_EQ(net::decode_hello(first).worker_id, 2u);
  EXPECT_EQ(net::decode_hello(second).worker_id, 1u);
}

TEST(ChaosTransport, DisconnectClosesTheLink) {
  auto pair = net::make_loopback_pair({});
  net::ChaosOptions chaos;
  chaos.disconnect_rate = 1.0;
  auto sender = net::wrap_chaos(std::move(pair.a), chaos);
  EXPECT_EQ(sender->send(make_hello(7)), net::TransportStatus::Closed);
  // The tear-down is sticky: later sends stay Closed.
  EXPECT_EQ(sender->send(make_hello(7)), net::TransportStatus::Closed);
}

TEST(ChaosTransport, SameSeedReplaysTheSameFaultScript) {
  auto script = [](std::uint64_t seed) {
    auto pair = net::make_loopback_pair({});
    net::ChaosOptions chaos;
    chaos.seed = seed;
    chaos.drop_rate = 0.3;
    chaos.corrupt_rate = 0.2;
    chaos.duplicate_rate = 0.2;
    auto sender = net::wrap_chaos(std::move(pair.a), chaos);
    for (std::uint32_t i = 0; i < 50; ++i) sender->send(make_hello(i));
    std::vector<int> observed;
    for (;;) {
      net::Frame frame;
      const auto status = pair.b->recv(&frame, 0);
      if (status == net::TransportStatus::Timeout) break;
      observed.push_back(status == net::TransportStatus::Ok
                             ? static_cast<int>(net::decode_hello(frame)
                                                    .worker_id)
                             : -1);
    }
    return observed;
  };
  const auto a = script(77), b = script(77), c = script(78);
  EXPECT_EQ(a, b);   // bit-exact replay from the seed
  EXPECT_NE(a, c);   // and the seed actually matters
}

// ---------------------------------------------------------------------------
// ServingDispatcher: quorum commit, heartbeat escalation, reacquire

fl::TrainJobSpec job_for(std::size_t slot, std::size_t client_id) {
  fl::TrainJobSpec job;
  job.slot = slot;
  job.client_id = client_id;
  job.epoch = 1;
  job.rng_seed = 7;
  return job;
}

/// A scripted worker endpoint: answers TrainJobs by echoing the params back
/// as a Dense update (no real training — these tests exercise the
/// dispatcher's collection logic, not the math).
void echo_jobs(net::Transport& transport, int count,
               int delay_ms_before_reply = 0, int heartbeat_every_ms = 0) {
  for (int i = 0; i < count; ++i) {
    net::Frame frame;
    if (transport.recv(&frame, 5000) != net::TransportStatus::Ok) return;
    if (frame.type != net::MessageType::TrainJob) {
      --i;
      continue;
    }
    const auto msg = net::decode_train_job(frame);
    if (delay_ms_before_reply > 0) {
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(delay_ms_before_reply);
      while (std::chrono::steady_clock::now() < deadline) {
        if (heartbeat_every_ms > 0) {
          transport.send(net::encode_heartbeat(
              net::HeartbeatMsg{0, msg.epoch, {}}));
          std::this_thread::sleep_for(
              std::chrono::milliseconds(heartbeat_every_ms));
        } else {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
      }
    }
    net::ClientUpdateMsg reply;
    reply.epoch = msg.epoch;
    reply.client_id = msg.client_id;
    reply.batches = 1;
    reply.update.kind = net::UpdateKind::Dense;
    reply.update.size = msg.params.size();
    reply.update.dense = msg.params;
    transport.send(net::encode_client_update(reply));
  }
}

TEST(ServingDispatcher, QuorumCommitsWithoutStragglers) {
  auto fast = net::make_loopback_pair({});
  auto silent = net::make_loopback_pair({});
  std::thread worker([&] { echo_jobs(*fast.b, 1); });

  fl::TransportDispatcherConfig config;
  config.recv_timeout_ms = 30000;
  config.quorum_fraction = 0.5;  // 1 of 2 suffices
  config.quorum_grace_ms = 30;
  fl::TransportDispatcher dispatcher({fast.a.get(), silent.a.get()}, config);

  const std::vector<fl::TrainJobSpec> jobs = {job_for(0, 0), job_for(1, 1)};
  const std::vector<float> params = {1.0f, 2.0f};
  std::vector<fl::TrainOutcome> outcomes(2);
  dispatcher.execute(jobs, params, outcomes);
  worker.join();

  EXPECT_TRUE(outcomes[0].delivered);
  EXPECT_FALSE(outcomes[1].delivered);
  EXPECT_EQ(outcomes[1].failure, fl::FailureKind::Timeout);
}

TEST(ServingDispatcher, SilentWorkerIsEscalatedToCrash) {
  auto fast = net::make_loopback_pair({});
  auto silent = net::make_loopback_pair({});
  std::thread worker([&] { echo_jobs(*fast.b, 1); });

  fl::TransportDispatcherConfig config;
  config.recv_timeout_ms = 30000;
  config.heartbeat_timeout_ms = 100;
  fl::TransportDispatcher dispatcher({fast.a.get(), silent.a.get()}, config);

  const std::vector<fl::TrainJobSpec> jobs = {job_for(0, 0), job_for(1, 1)};
  const std::vector<float> params = {1.0f};
  std::vector<fl::TrainOutcome> outcomes(2);
  dispatcher.execute(jobs, params, outcomes);
  worker.join();

  EXPECT_TRUE(outcomes[0].delivered);
  EXPECT_FALSE(outcomes[1].delivered);
  EXPECT_EQ(outcomes[1].failure, fl::FailureKind::Crash);
}

TEST(ServingDispatcher, HeartbeatsKeepASlowWorkerAlive) {
  // The worker takes 4x the heartbeat timeout to reply but announces
  // liveness throughout — the dispatcher must wait, not escalate.
  auto slow = net::make_loopback_pair({});
  std::thread worker([&] { echo_jobs(*slow.b, 1, /*delay=*/400,
                                     /*heartbeat_every=*/20); });

  fl::TransportDispatcherConfig config;
  config.recv_timeout_ms = 30000;
  config.heartbeat_timeout_ms = 100;
  fl::TransportDispatcher dispatcher({slow.a.get()}, config);

  const std::vector<fl::TrainJobSpec> jobs = {job_for(0, 0)};
  const std::vector<float> params = {1.0f};
  std::vector<fl::TrainOutcome> outcomes(1);
  dispatcher.execute(jobs, params, outcomes);
  worker.join();

  EXPECT_TRUE(outcomes[0].delivered);
}

TEST(ServingDispatcher, ReacquireHandsADeadWorkerItsSlotBack) {
  auto first = net::make_loopback_pair({});
  auto second = net::make_loopback_pair({});
  first.a->close();  // round 1: worker 0's transport is already dead

  std::size_t reacquires = 0;
  fl::TransportDispatcherConfig config;
  config.recv_timeout_ms = 1000;
  config.reacquire = [&](std::size_t w) -> net::Transport* {
    ++reacquires;
    return w == 0 && reacquires > 1 ? second.a.get() : nullptr;
  };
  fl::TransportDispatcher dispatcher({first.a.get()}, config);

  const std::vector<fl::TrainJobSpec> jobs = {job_for(0, 0)};
  const std::vector<float> params = {1.0f};
  std::vector<fl::TrainOutcome> round1(1);
  dispatcher.execute(jobs, params, round1);
  EXPECT_FALSE(round1[0].delivered);
  EXPECT_EQ(round1[0].failure, fl::FailureKind::Crash);

  // Round 2: reacquire supplies the replacement transport and the worker
  // serves again.
  std::thread worker([&] { echo_jobs(*second.b, 1); });
  std::vector<fl::TrainOutcome> round2(1);
  dispatcher.execute(jobs, params, round2);
  worker.join();
  EXPECT_TRUE(round2[0].delivered);
  EXPECT_GE(reacquires, 2u);
}

// ---------------------------------------------------------------------------
// WorkerReconnect: session resume on a fresh transport

TEST(WorkerReconnect, ServeResumesAcrossTransports) {
  const auto fed = make_fed(4);
  fl::WorkerLoopConfig config;
  config.worker_id = 0;
  fl::WorkerLoop loop(fed, core::default_model_factory(fed, 99), config);

  auto serve_one_job = [&](net::LoopbackPair& pair) {
    std::thread server([&] {
      net::TrainJobMsg msg;
      msg.epoch = 1;
      msg.client_id = 0;
      msg.rng_seed = 7;
      msg.local_epochs = 1;
      msg.batch_size = 16;
      msg.learning_rate = 0.05f;
      msg.params = core::default_model_factory(fed, 99)().get_parameters();
      ASSERT_EQ(pair.a->send(net::encode_train_job(msg)),
                net::TransportStatus::Ok);
      net::Frame frame;
      ASSERT_EQ(pair.a->recv(&frame, 30000), net::TransportStatus::Ok);
      EXPECT_EQ(frame.type, net::MessageType::ClientUpdate);
      pair.a->close();  // simulated connection loss
    });
    const auto end = loop.serve(*pair.b);
    server.join();
    EXPECT_EQ(end, fl::WorkerRunEnd::Closed);
  };

  auto session1 = net::make_loopback_pair({});
  serve_one_job(session1);
  EXPECT_EQ(loop.jobs_served(), 1u);

  // Same WorkerLoop, fresh transport: the session resumes and keeps
  // counting (and keeps its residual state — same object).
  auto session2 = net::make_loopback_pair({});
  serve_one_job(session2);
  EXPECT_EQ(loop.jobs_served(), 2u);

  // An orderly Shutdown still ends a session cleanly.
  auto session3 = net::make_loopback_pair({});
  net::Frame shutdown;
  shutdown.type = net::MessageType::Shutdown;
  session3.a->send(shutdown);
  EXPECT_EQ(loop.serve(*session3.b), fl::WorkerRunEnd::Shutdown);
}

TEST(WorkerReconnect, IdleTimeoutReportedDistinctly) {
  const auto fed = make_fed(4);
  fl::WorkerLoopConfig config;
  config.recv_timeout_ms = 30;
  config.exit_on_timeout = true;
  fl::WorkerLoop loop(fed, core::default_model_factory(fed, 99), config);
  auto pair = net::make_loopback_pair({});
  EXPECT_EQ(loop.serve(*pair.b), fl::WorkerRunEnd::IdleTimeout);
}

// ---------------------------------------------------------------------------
// End to end: a full engine run over a hostile loopback wire

TEST(ServingDispatcher, EngineRunCompletesUnderChaos) {
  const auto fed = make_fed();
  auto engine = make_engine(4);
  engine.overcommit = 0.5;

  fl::LoopbackClusterOptions options;
  options.chaos.seed = 11;
  options.chaos.drop_rate = 0.05;
  options.chaos.corrupt_rate = 0.05;
  options.chaos.duplicate_rate = 0.05;
  options.chaos.reorder_rate = 0.05;
  options.worker_heartbeat_interval_ms = 20;
  fl::LoopbackCluster cluster(fed, core::default_model_factory(fed, 99), 2,
                              options);

  fl::TransportDispatcherConfig config;
  config.work.local = engine.local;
  config.work.compression = engine.compression;
  config.recv_timeout_ms = 60000;
  config.heartbeat_timeout_ms = 2000;
  config.quorum_fraction = 0.5;
  config.quorum_grace_ms = 50;
  fl::TransportDispatcher dispatcher(cluster.server_transports(), config);
  engine.dispatcher = &dispatcher;

  fl::FederatedTrainer trainer(fed, core::default_model_factory(fed, 99),
                               engine);
  select::RandomSelector selector;
  const auto history = trainer.run(selector);

  // The guarantee under chaos: every round commits, and every dispatched
  // job lands in exactly one outcome bucket.
  ASSERT_EQ(history.records().size(), 4u);
  for (const auto& r : history.records()) {
    EXPECT_EQ(r.selected.size() + r.crashed.size() + r.late.size() +
                  r.rejected.size(),
              r.dispatched);
  }
}

// ---------------------------------------------------------------------------
// ServingTrace: cross-process span propagation (DESIGN.md §5i)

/// Trace tests flip process-global obs state; bracket them so suite order
/// never bleeds (mirrors the ObsTest fixture).
void reset_trace_state() {
  obs::set_trace_enabled(false);
  obs::TraceBuffer::global().clear();
  obs::clear_round_context();
}

struct ShardCollector {
  std::vector<obs::WorkerTrack> tracks;
  void operator()(net::TraceShardMsg&& shard) {
    obs::WorkerTrack track;
    track.worker_id = shard.worker_id;
    track.label = "worker-" + std::to_string(shard.worker_id);
    track.events = std::move(shard.events);
    tracks.push_back(std::move(track));
  }
};

TEST(ServingTrace, WorkerSpansParentUnderServerRoundSpans) {
  reset_trace_state();
  obs::set_trace_enabled(true);

  const auto fed = make_fed();
  auto engine = make_engine(6);
  fl::LoopbackCluster cluster(fed, core::default_model_factory(fed, 99), 2,
                              fl::LoopbackClusterOptions{});

  ShardCollector collector;
  fl::TransportDispatcherConfig config;
  config.work.local = engine.local;
  config.work.compression = engine.compression;
  config.recv_timeout_ms = 60000;
  config.on_trace_shard = [&](net::TraceShardMsg&& s) {
    collector(std::move(s));
  };
  fl::TransportDispatcher dispatcher(cluster.server_transports(), config);
  engine.dispatcher = &dispatcher;

  fl::FederatedTrainer trainer(fed, core::default_model_factory(fed, 99),
                               engine);
  select::RandomSelector selector;
  const auto history = trainer.run(selector);
  ASSERT_EQ(history.records().size(), 6u);

  // The server's round spans, keyed by span id — the ids workers must have
  // adopted as parents.
  std::map<std::uint64_t, std::int64_t> round_spans;
  const auto server_events = obs::TraceBuffer::global().snapshot();
  for (const auto& event : server_events) {
    if (std::string(event.name) == "round") {
      EXPECT_NE(event.span_id, 0u);
      round_spans[event.span_id] = event.round;
    }
  }
  EXPECT_EQ(round_spans.size(), 6u);

  // Every worker local_train span must point at a real server round span
  // and agree with it on the round index (the cross-process contract).
  ASSERT_FALSE(collector.tracks.empty());
  std::set<std::uint32_t> shipped_workers;
  std::size_t train_spans = 0;
  for (const auto& track : collector.tracks) {
    shipped_workers.insert(track.worker_id);
    for (const auto& event : track.events) {
      if (event.name != "local_train") continue;
      ++train_spans;
      EXPECT_NE(event.span_id, 0u);
      const auto parent = round_spans.find(event.parent_id);
      ASSERT_NE(parent, round_spans.end())
          << "worker span parent " << event.parent_id
          << " is not a server round span";
      EXPECT_EQ(parent->second, event.round);
    }
  }
  EXPECT_GT(train_spans, 0u);
  EXPECT_EQ(shipped_workers.size(), 2u) << "both workers must ship shards";

  // The merged document puts the server on pid 1 and each worker on its own
  // named track.
  const std::string json =
      obs::merged_chrome_json(server_events, collector.tracks);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":3"), std::string::npos);
  EXPECT_NE(json.find("worker-0"), std::string::npos);
  EXPECT_NE(json.find("worker-1"), std::string::npos);

  reset_trace_state();
}

TEST(ServingTrace, TracedServingHistoryMatchesUntraced) {
  // Tracing a serving run must not change what the run computes: the round
  // history (modulo wall-clock phase timings) is byte-identical.
  auto run_once = [&](bool traced) {
    reset_trace_state();
    obs::set_trace_enabled(traced);
    const auto fed = make_fed();
    auto engine = make_engine(4);
    fl::LoopbackCluster cluster(fed, core::default_model_factory(fed, 99), 2,
                                fl::LoopbackClusterOptions{});
    fl::TransportDispatcherConfig config;
    config.work.local = engine.local;
    config.work.compression = engine.compression;
    config.recv_timeout_ms = 60000;
    fl::TransportDispatcher dispatcher(cluster.server_transports(), config);
    engine.dispatcher = &dispatcher;
    fl::FederatedTrainer trainer(fed, core::default_model_factory(fed, 99),
                                 engine);
    select::RandomSelector selector;
    const auto history = trainer.run(selector);
    std::vector<std::string> lines;
    for (const auto& record : history.records()) {
      lines.push_back(record_json_no_phase(record));
    }
    return lines;
  };

  const auto plain = run_once(false);
  const auto traced = run_once(true);
  reset_trace_state();

  ASSERT_EQ(plain.size(), traced.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i], traced[i]) << "round " << i;
  }
}

// ---------------------------------------------------------------------------
// ServingStatus: the exposition endpoint under transport chaos

/// Minimal blocking HTTP/1.0 GET against 127.0.0.1; returns the full
/// response (head + body), empty on connect failure.
std::string http_get(std::uint16_t port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return {};
  }
  const std::string request = "GET " + target + " HTTP/1.0\r\n\r\n";
  (void)!::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
  std::string response;
  char chunk[4096];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(ServingStatus, ScrapesStayConsistentUnderChaos) {
  const auto fed = make_fed();
  auto engine = make_engine(6);
  engine.overcommit = 0.5;

  fl::LoopbackClusterOptions options;
  options.chaos.seed = 11;
  options.chaos.drop_rate = 0.05;
  options.chaos.corrupt_rate = 0.05;
  options.chaos.duplicate_rate = 0.05;
  options.chaos.reorder_rate = 0.05;
  options.worker_heartbeat_interval_ms = 20;
  fl::LoopbackCluster cluster(fed, core::default_model_factory(fed, 99), 2,
                              options);

  fl::ServingStatusBoard board(2);
  fl::TransportDispatcherConfig config;
  config.work.local = engine.local;
  config.work.compression = engine.compression;
  config.recv_timeout_ms = 60000;
  config.heartbeat_timeout_ms = 2000;
  config.quorum_fraction = 0.5;
  config.quorum_grace_ms = 50;
  config.status_board = &board;
  fl::TransportDispatcher dispatcher(cluster.server_transports(), config);
  engine.dispatcher = &dispatcher;

  net::StatusEndpoints endpoints;
  endpoints.metrics_text = [] {
    return obs::Registry::global().to_prometheus();
  };
  endpoints.status_json = [&board] { return board.to_json(); };
  net::StatusServer status(0, endpoints);
  ASSERT_NE(status.port(), 0u);

  fl::FederatedTrainer trainer(fed, core::default_model_factory(fed, 99),
                               engine);
  select::RandomSelector selector;
  fl::TrainingHistory history;
  std::thread run([&] { history = trainer.run(selector); });

  // Scrape while the round loop is live; every response must be well
  // formed regardless of what chaos is doing to the serving links.
  int ok_scrapes = 0;
  for (int i = 0; i < 20; ++i) {
    const auto health = http_get(status.port(), "/healthz");
    const auto metrics = http_get(status.port(), "/metrics");
    const auto status_doc = http_get(status.port(), "/status");
    if (health.empty() || metrics.empty() || status_doc.empty()) continue;
    ++ok_scrapes;
    EXPECT_NE(health.find("200 OK"), std::string::npos);
    EXPECT_NE(health.find("ok"), std::string::npos);
    EXPECT_NE(metrics.find("200 OK"), std::string::npos);
    EXPECT_NE(status_doc.find("200 OK"), std::string::npos);
    EXPECT_NE(status_doc.find("\"workers\":["), std::string::npos);
    EXPECT_NE(status_doc.find("\"id\":0"), std::string::npos);
    EXPECT_NE(status_doc.find("\"id\":1"), std::string::npos);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  run.join();

  EXPECT_GT(ok_scrapes, 0) << "no scrape ever reached the status server";
  ASSERT_EQ(history.records().size(), 6u);

  // After the run the board reflects the final round and every dispatched
  // job of it landed in an outcome bucket (same invariant the chaos run
  // pins, now read through the exposition surface).
  const auto final_doc = http_get(status.port(), "/status");
  EXPECT_NE(final_doc.find("\"round\":5"), std::string::npos);  // 0-based epochs
  EXPECT_NE(final_doc.find("\"collecting\":false"), std::string::npos);

  // Unknown targets 404 rather than confusing a scraper.
  EXPECT_NE(http_get(status.port(), "/nope").find("404"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Scenario plumbing for the chaos knobs

TEST(ChaosScenario, SpecStringRoundTripsChaosKnobs) {
  testing::ScenarioSpec spec;
  EXPECT_FALSE(spec.chaos_enabled());
  spec.seed = 314;
  spec.chaos_drop = 0.05;
  spec.chaos_dup = 0.05;
  spec.chaos_reorder = 0.1;
  spec.chaos_corrupt = 0.05;
  spec.chaos_truncate = 0.02;
  spec.chaos_disconnect = 0.02;
  EXPECT_TRUE(spec.chaos_enabled());
  EXPECT_NO_THROW(testing::validate_spec(spec));

  const auto back = testing::parse_spec_string(testing::to_spec_string(spec));
  EXPECT_EQ(back.chaos_drop, 0.05);
  EXPECT_EQ(back.chaos_dup, 0.05);
  EXPECT_EQ(back.chaos_reorder, 0.1);
  EXPECT_EQ(back.chaos_corrupt, 0.05);
  EXPECT_EQ(back.chaos_truncate, 0.02);
  EXPECT_EQ(back.chaos_disconnect, 0.02);
  EXPECT_TRUE(back.chaos_enabled());

  // The transport-form knobs carry over 1:1 and the chaos seed is a pure
  // function of the spec seed (replayability).
  const auto chaos = testing::build_chaos_options(back);
  EXPECT_TRUE(chaos.enabled());
  EXPECT_EQ(chaos.drop_rate, 0.05);
  EXPECT_EQ(chaos.duplicate_rate, 0.05);
  EXPECT_EQ(chaos.reorder_rate, 0.1);
  EXPECT_EQ(chaos.corrupt_rate, 0.05);
  EXPECT_EQ(chaos.truncate_rate, 0.02);
  EXPECT_EQ(chaos.disconnect_rate, 0.02);
  EXPECT_EQ(chaos.seed, testing::build_chaos_options(spec).seed);

  // Out-of-range rates are rejected like any other malformed spec.
  testing::ScenarioSpec bad = spec;
  bad.chaos_drop = 1.5;
  EXPECT_THROW(testing::validate_spec(bad), std::exception);
}

}  // namespace
}  // namespace haccs
