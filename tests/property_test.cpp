// Property-based test suites (parameterized gtest): invariants that must
// hold across whole input families, not just hand-picked cases.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "src/clustering/dbscan.hpp"
#include "src/clustering/optics.hpp"
#include "src/core/haccs_selector.hpp"
#include "src/data/partition.hpp"
#include "src/nn/model.hpp"
#include "src/sim/latency.hpp"
#include "src/stats/histogram.hpp"
#include "src/stats/privacy.hpp"

namespace haccs {
namespace {

// ---- Hellinger distance is a metric on distributions -----------------

class HellingerProperty : public ::testing::TestWithParam<std::uint64_t> {};

std::vector<double> random_distribution(Rng& rng, std::size_t bins,
                                        double sparsity = 0.3) {
  std::vector<double> p(bins, 0.0);
  double total = 0.0;
  for (auto& v : p) {
    if (rng.uniform() > sparsity) {
      v = rng.uniform();
      total += v;
    }
  }
  if (total == 0.0) {
    p[rng.uniform_index(bins)] = 1.0;
    total = 1.0;
  }
  for (auto& v : p) v /= total;
  return p;
}

TEST_P(HellingerProperty, MetricAxiomsHold) {
  Rng rng(GetParam());
  const std::size_t bins = 2 + rng.uniform_index(60);
  const auto p = random_distribution(rng, bins);
  const auto q = random_distribution(rng, bins);
  const auto r = random_distribution(rng, bins);

  const double dpq = stats::hellinger_distance(p, q);
  const double dqp = stats::hellinger_distance(q, p);
  const double dpp = stats::hellinger_distance(p, p);
  const double dpr = stats::hellinger_distance(p, r);
  const double dqr = stats::hellinger_distance(q, r);

  EXPECT_NEAR(dpp, 0.0, 1e-12);                  // identity
  EXPECT_DOUBLE_EQ(dpq, dqp);                    // symmetry
  EXPECT_GE(dpq, 0.0);                           // non-negativity
  EXPECT_LE(dpq, 1.0 + 1e-12);                   // Eq. 4 bound
  EXPECT_LE(dpq, dpr + dqr + 1e-9);              // triangle inequality
}

TEST_P(HellingerProperty, ScaleInvariance) {
  // Counts and their normalized distribution give the same distance.
  Rng rng(GetParam() ^ 0xabcdef);
  const std::size_t bins = 2 + rng.uniform_index(30);
  auto p = random_distribution(rng, bins);
  auto q = random_distribution(rng, bins);
  auto p_scaled = p;
  auto q_scaled = q;
  const double sp = rng.uniform(1.0, 1000.0);
  const double sq = rng.uniform(1.0, 1000.0);
  for (auto& v : p_scaled) v *= sp;
  for (auto& v : q_scaled) v *= sq;
  EXPECT_NEAR(stats::hellinger_distance(p, q),
              stats::hellinger_distance(p_scaled, q_scaled), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HellingerProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

// ---- Laplace mechanism noise scales with 1/epsilon -------------------

class LaplaceProperty : public ::testing::TestWithParam<double> {};

TEST_P(LaplaceProperty, EmpiricalVarianceMatchesEq5) {
  const double eps = GetParam();
  Rng rng(static_cast<std::uint64_t>(eps * 1e6) + 17);
  const int n = 30000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double noise = rng.laplace(0.0, 1.0 / eps);
    sum += noise;
    sum_sq += noise * noise;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  const double expected = stats::laplace_noise_variance(eps);
  EXPECT_NEAR(var / expected, 1.0, 0.15) << "eps=" << eps;
}

INSTANTIATE_TEST_SUITE_P(Epsilons, LaplaceProperty,
                         ::testing::Values(0.05, 0.1, 0.5, 1.0, 2.0));

// ---- Weighted-SRSWR sampling respects weights -------------------------

class SrswrProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SrswrProperty, EmpiricalFrequenciesTrackWeights) {
  Rng rng(GetParam());
  const std::size_t k = 2 + rng.uniform_index(6);
  std::vector<double> weights(k);
  double total = 0.0;
  for (auto& w : weights) {
    w = rng.uniform(0.1, 5.0);
    total += w;
  }
  const int draws = 30000;
  std::vector<int> counts(k, 0);
  for (int i = 0; i < draws; ++i) ++counts[rng.categorical(weights)];
  for (std::size_t i = 0; i < k; ++i) {
    const double expected = weights[i] / total;
    const double observed = static_cast<double>(counts[i]) / draws;
    EXPECT_NEAR(observed, expected, 0.02) << "slot " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SrswrProperty,
                         ::testing::Range<std::uint64_t>(100, 110));

// ---- Eq. 7 cluster weights -------------------------------------------

class Eq7Property : public ::testing::TestWithParam<double> {};

TEST_P(Eq7Property, WeightsSumAndBounds) {
  // For any rho, theta_i = rho*tau_i + (1-rho)*ACL_i/sum(ACL) with
  // tau_i in [0,1] and the loss terms summing to 1, so:
  //   sum(theta) = rho*sum(tau) + (1-rho)  and  0 <= theta_i <= 1.
  const double rho = GetParam();
  Rng rng(static_cast<std::uint64_t>(rho * 1000) + 3);
  const std::size_t n = 12;
  std::vector<int> labels(n);
  for (auto& l : labels) l = static_cast<int>(rng.uniform_index(4));
  core::HaccsConfig cfg;
  cfg.rho = rho;
  core::HaccsSelector selector(labels, cfg);

  std::vector<fl::ClientRuntimeInfo> view(n);
  for (std::size_t i = 0; i < n; ++i) {
    view[i].id = i;
    view[i].latency_s = rng.uniform(0.5, 10.0);
    view[i].num_samples = 50;
    view[i].last_loss = rng.uniform(0.1, 3.0);
    view[i].available = true;
  }
  const auto weights = selector.cluster_weights(view);

  // Recompute tau sum for the expected total.
  const std::size_t k = selector.num_clusters();
  std::vector<double> avg_latency(k, 0.0);
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t m : selector.clusters()[c]) {
      avg_latency[c] += view[m].latency_s;
    }
    avg_latency[c] /= static_cast<double>(selector.clusters()[c].size());
  }
  const double lmax = *std::max_element(avg_latency.begin(), avg_latency.end());
  double tau_sum = 0.0;
  for (double l : avg_latency) tau_sum += 1.0 - l / lmax;

  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  EXPECT_NEAR(total, rho * tau_sum + (1.0 - rho), 1e-9);
  for (double w : weights) {
    EXPECT_GE(w, -1e-12);
    EXPECT_LE(w, 1.0 + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Rhos, Eq7Property,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0));

// ---- Clustering is invariant to input permutation ---------------------

class PermutationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PermutationProperty, DbscanPartitionUnchangedByRelabeling) {
  Rng rng(GetParam());
  // Random clustered points on a line.
  std::vector<double> xs;
  const std::size_t blobs = 2 + rng.uniform_index(3);
  for (std::size_t b = 0; b < blobs; ++b) {
    const double center = static_cast<double>(b) * 10.0;
    const std::size_t size = 3 + rng.uniform_index(5);
    for (std::size_t i = 0; i < size; ++i) {
      xs.push_back(center + rng.normal(0.0, 0.2));
    }
  }
  const std::size_t n = xs.size();
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  rng.shuffle(perm);

  auto matrix_for = [&](const std::vector<double>& points) {
    return clustering::DistanceMatrix::build(
        points.size(), [&](std::size_t i, std::size_t j) {
          return std::abs(points[i] - points[j]);
        });
  };
  std::vector<double> shuffled(n);
  for (std::size_t i = 0; i < n; ++i) shuffled[i] = xs[perm[i]];

  const auto original =
      clustering::dbscan(matrix_for(xs), {.eps = 1.0, .min_pts = 2});
  const auto permuted =
      clustering::dbscan(matrix_for(shuffled), {.eps = 1.0, .min_pts = 2});

  // Co-membership must be identical under the permutation.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const bool together_orig =
          original[perm[i]] >= 0 && original[perm[i]] == original[perm[j]];
      const bool together_perm =
          permuted[i] >= 0 && permuted[i] == permuted[j];
      EXPECT_EQ(together_orig, together_perm);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PermutationProperty,
                         ::testing::Range<std::uint64_t>(40, 50));

// ---- Latency model monotonicity ---------------------------------------

class LatencyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LatencyProperty, MonotoneInEveryResource) {
  Rng rng(GetParam());
  sim::LatencyModel model({.model_bytes = 100000 + rng.uniform_index(900000),
                           .seconds_per_sample = rng.uniform(0.001, 0.02),
                           .local_epochs = 1 + rng.uniform_index(3)});
  sim::DeviceProfile p = sim::DeviceProfile::sample(rng);
  const std::size_t samples = 50 + rng.uniform_index(200);
  const double base = model.round_latency(p, samples);

  auto worse = p;
  worse.compute_multiplier = p.compute_multiplier * 1.5;
  EXPECT_GT(model.round_latency(worse, samples), base);

  worse = p;
  worse.bandwidth_mbps = p.bandwidth_mbps / 2.0;
  EXPECT_GT(model.round_latency(worse, samples), base);

  worse = p;
  worse.network_latency_s = p.network_latency_s * 2.0;
  EXPECT_GT(model.round_latency(worse, samples), base);

  EXPECT_GT(model.round_latency(p, samples * 2), base);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatencyProperty,
                         ::testing::Range<std::uint64_t>(200, 212));

// ---- Partitioner invariants across all layouts -------------------------

enum class Layout { Majority, GroupTable, Iid, KRandom, FeatureSkew, Dirichlet };

class PartitionProperty
    : public ::testing::TestWithParam<std::tuple<Layout, std::uint64_t>> {};

data::FederatedDataset build(Layout layout, std::uint64_t seed) {
  data::SyntheticImageConfig gcfg;
  gcfg.height = 6;
  gcfg.width = 6;
  data::SyntheticImageGenerator gen(gcfg);
  data::PartitionConfig cfg;
  cfg.num_clients = 20;
  cfg.min_samples = 30;
  cfg.max_samples = 60;
  cfg.test_samples = 10;
  cfg.style_brightness_stddev = 0.2;
  cfg.style_contrast_stddev = 0.1;
  Rng rng(seed);
  switch (layout) {
    case Layout::Majority: return data::partition_majority_label(gen, cfg, rng);
    case Layout::GroupTable: return data::partition_group_table(gen, cfg, rng);
    case Layout::Iid: return data::partition_iid(gen, cfg, rng);
    case Layout::KRandom:
      return data::partition_k_random_labels(gen, cfg, 5, rng);
    case Layout::FeatureSkew:
      return data::partition_feature_skew(gen, cfg, 45.0, rng);
    case Layout::Dirichlet: return data::partition_dirichlet(gen, cfg, 0.5, rng);
  }
  throw std::logic_error("bad layout");
}

TEST_P(PartitionProperty, StructuralInvariantsHold) {
  const auto [layout, seed] = GetParam();
  const auto fed = build(layout, seed);

  ASSERT_EQ(fed.num_clients(), 20u);
  ASSERT_EQ(fed.true_group.size(), 20u);
  ASSERT_EQ(fed.rotation.size(), 20u);
  ASSERT_EQ(fed.true_label_distribution.size(), 20u);
  ASSERT_EQ(fed.style.size(), 20u);

  for (std::size_t i = 0; i < fed.num_clients(); ++i) {
    const auto& client = fed.clients[i];
    EXPECT_GE(client.train.size(), 30u);
    EXPECT_LE(client.train.size(), 60u);
    EXPECT_EQ(client.test.size(), 10u);
    EXPECT_EQ(client.train.num_classes(), fed.num_classes);

    // Mixture is a distribution; observed labels only where mixture > 0.
    const auto& mix = fed.true_label_distribution[i];
    double total = 0.0;
    for (double p : mix) {
      EXPECT_GE(p, 0.0);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
    const auto counts = client.train.label_counts();
    for (std::size_t c = 0; c < counts.size(); ++c) {
      if (mix[c] == 0.0) EXPECT_EQ(counts[c], 0.0) << "client " << i;
    }

    // Same-group clients share identical mixtures.
    for (std::size_t j = i + 1; j < fed.num_clients(); ++j) {
      if (fed.true_group[i] == fed.true_group[j]) {
        EXPECT_EQ(fed.true_label_distribution[i],
                  fed.true_label_distribution[j]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, PartitionProperty,
    ::testing::Combine(::testing::Values(Layout::Majority, Layout::GroupTable,
                                         Layout::Iid, Layout::KRandom,
                                         Layout::FeatureSkew,
                                         Layout::Dirichlet),
                       ::testing::Values(1u, 2u, 3u)));

// ---- Model parameter round-trips under random architectures ------------

class ModelProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModelProperty, GetSetParametersIsIdentity) {
  Rng rng(GetParam());
  std::vector<std::size_t> hidden;
  const std::size_t depth = rng.uniform_index(3);
  for (std::size_t i = 0; i < depth; ++i) {
    hidden.push_back(4 + rng.uniform_index(28));
  }
  const std::size_t input = 2 + rng.uniform_index(30);
  const std::size_t classes = 2 + rng.uniform_index(8);
  nn::Sequential model = nn::make_mlp(input, hidden, classes, rng);

  const auto params = model.get_parameters();
  Tensor x({3, input});
  for (auto& v : x.data()) v = static_cast<float>(rng.normal());
  const Tensor before = model.forward(x);
  model.set_parameters(params);
  const Tensor after = model.forward(x);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i], after[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelProperty,
                         ::testing::Range<std::uint64_t>(300, 315));

}  // namespace
}  // namespace haccs
