// Pinned deterministic tests for the hostile-world scenario engine and the
// selector zoo (ISSUE 10 / TESTING.md "Hostile-world shapes"):
//
//   * one pinned test per hostile shape — flash crowd, diurnal wave,
//     correlated regional outage, mid-training label drift, adversarial
//     (targeted) stragglers;
//   * LiveClusterTracker churn driven by an outage schedule's liveness edges;
//   * selector-zoo unit tests for DppSelector / FedLeccSelector /
//     HicsSelector (contract, save/load round-trip, failure reporting,
//     cluster and diversity sanity);
//   * ScenarioSpec round-trip over every key and the parser's nearest-key
//     suggestion;
//   * an end-to-end check_scenario pin for every hostile shape.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/core/haccs_selector.hpp"
#include "src/core/live_recluster.hpp"
#include "src/core/pipeline.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/obs.hpp"
#include "src/select/dpp.hpp"
#include "src/select/fedlecc.hpp"
#include "src/select/hics.hpp"
#include "src/sim/dropout.hpp"
#include "src/sim/faults.hpp"
#include "src/testing/oracles.hpp"
#include "src/testing/scenario.hpp"

namespace haccs {
namespace {

using testing::HostileKind;
using testing::ScenarioSpec;
using testing::SelectorKind;

ScenarioSpec small_spec() {
  ScenarioSpec spec;
  spec.seed = 7;
  spec.clients = 10;
  spec.per_round = 3;
  spec.rounds = 4;
  spec.classes = 6;
  spec.image = 8;
  spec.min_samples = 20;
  spec.max_samples = 32;
  spec.test_samples = 6;
  return spec;
}

std::vector<fl::ClientRuntimeInfo> make_view(std::size_t n) {
  std::vector<fl::ClientRuntimeInfo> view(n);
  for (std::size_t i = 0; i < n; ++i) {
    view[i].id = i;
    view[i].num_samples = 24 + 2 * i;
    view[i].latency_s = 1.0 + 0.1 * static_cast<double>(i);
    view[i].available = true;
  }
  return view;
}

// ---------------------------------------------------------------------------
// Pinned hostile shape 1: flash crowd

TEST(HostileShapes, FlashCrowdCohortJoinsAtOnce) {
  const auto schedule = sim::make_flash_crowd(10, 0.3, /*join_epoch=*/3, 42);
  ASSERT_EQ(schedule->num_clients(), 10u);

  // Before the join epoch: exactly round(0.3 * 10) = 3 clients absent, and
  // it is the same cohort every epoch (no per-epoch re-draw).
  std::vector<bool> first = schedule->available(0);
  std::size_t absent = 0;
  for (const bool up : first) absent += up ? 0 : 1;
  EXPECT_EQ(absent, 3u);
  for (std::size_t e = 1; e < 3; ++e) {
    EXPECT_EQ(schedule->available(e), first) << "cohort re-drawn at " << e;
  }
  // From the join epoch onward everyone is reachable — the selector's view
  // of the population jumps in a single round.
  for (std::size_t e = 3; e < 8; ++e) {
    for (const bool up : schedule->available(e)) EXPECT_TRUE(up);
  }
}

// ---------------------------------------------------------------------------
// Pinned hostile shape 2: diurnal availability wave

TEST(HostileShapes, DiurnalWaveIsPeriodicWithFixedTrough) {
  constexpr std::size_t kPeriod = 4;
  const auto schedule = sim::make_diurnal_wave(12, 0.5, kPeriod, 99);

  // Periodic: the mask repeats with the wave period.
  for (std::size_t e = 0; e < kPeriod; ++e) {
    EXPECT_EQ(schedule->available(e), schedule->available(e + kPeriod));
    EXPECT_EQ(schedule->available(e), schedule->available(e + 3 * kPeriod));
  }
  // Every client is down for exactly round(0.5 * 4) = 2 epochs per period —
  // an oscillation, not an independent coin flip.
  for (std::size_t c = 0; c < 12; ++c) {
    std::size_t down = 0;
    for (std::size_t e = 0; e < kPeriod; ++e) {
      if (!schedule->available(e)[c]) ++down;
    }
    EXPECT_EQ(down, 2u) << "client " << c;
  }
  // Never a fully-dark epoch: with 12 clients spread over 4 phases, some
  // timezone is always awake.
  for (std::size_t e = 0; e < 2 * kPeriod; ++e) {
    const auto mask = schedule->available(e);
    EXPECT_TRUE(std::any_of(mask.begin(), mask.end(), [](bool b) { return b; }));
  }
}

// ---------------------------------------------------------------------------
// Pinned hostile shape 3: correlated regional outage

TEST(HostileShapes, RegionalOutageDarkensWholeRegionsTogether) {
  const auto schedule = sim::make_regional_outage(
      12, /*regions=*/4, /*down_fraction=*/0.5, /*from=*/2, /*duration=*/2, 7);

  // Outside the outage window everyone is reachable.
  for (const std::size_t e : {0u, 1u, 4u, 5u}) {
    for (const bool up : schedule->available(e)) EXPECT_TRUE(up);
  }
  // During [2, 4): ceil(0.5 * 4) = 2 regions are dark — a nonempty set of
  // clients goes down together and the SAME set stays down for the whole
  // window (correlation a per-client dropout rate can never produce).
  const auto during = schedule->available(2);
  std::size_t dark = 0;
  for (const bool up : during) dark += up ? 0 : 1;
  EXPECT_GT(dark, 0u);
  EXPECT_LT(dark, 12u);
  EXPECT_EQ(schedule->available(3), during);
}

TEST(HostileShapes, OutageLivenessEdgesDriveLiveReclustering) {
  obs::set_metrics_enabled(true);
  const auto spec = small_spec();
  const auto fed = testing::build_dataset(spec);
  const auto config = testing::build_haccs_config(spec);
  const auto summaries = core::compute_summaries(fed, config);

  // 4 members (regions); member m hosts the clients dark together in an
  // outage: here simply c % 4 == m, matching the schedule's region arity.
  std::vector<std::vector<std::size_t>> clients_of_member(4);
  for (std::size_t c = 0; c < fed.clients.size(); ++c) {
    clients_of_member[c % 4].push_back(c);
  }
  core::HaccsSelector selector(fed, config);
  core::LiveClusterTracker tracker(summaries, clients_of_member, config);

  // Drive the tracker with the membership transitions an outage schedule
  // produces: regions 0 and 1 go dark at the outage, then recover.
  tracker.on_member(0, false);
  tracker.on_member(1, false);
  EXPECT_LT(tracker.live_clients(), fed.clients.size());
  EXPECT_TRUE(tracker.refresh(selector));
  ASSERT_EQ(selector.cluster_of().size(), fed.clients.size());
  for (const int label : selector.cluster_of()) EXPECT_GE(label, 0);

  tracker.on_member(0, true);
  tracker.on_member(1, true);
  EXPECT_EQ(tracker.live_clients(), fed.clients.size());
  EXPECT_TRUE(tracker.refresh(selector));
  EXPECT_FALSE(tracker.refresh(selector));  // no churn -> no push
  obs::set_metrics_enabled(false);
}

// ---------------------------------------------------------------------------
// Pinned hostile shape 4: mid-training label-distribution drift

TEST(HostileShapes, DriftHookMutatesDatasetOnlyAtTriggerEpoch) {
  auto spec = small_spec();
  spec.hostile = HostileKind::Drift;
  spec.hostile_frac = 0.5;
  spec.hostile_at = 2;

  auto label_counts = [](const data::FederatedDataset& fed) {
    std::vector<std::vector<double>> out;
    for (const auto& client : fed.clients) {
      out.push_back(client.train.label_counts());
    }
    return out;
  };

  auto fed = testing::build_dataset(spec);
  const auto before = label_counts(fed);
  auto hook = testing::build_drift_hook(spec, fed);
  ASSERT_TRUE(static_cast<bool>(hook));

  hook(0);
  hook(1);
  EXPECT_EQ(label_counts(fed), before) << "drift fired before hostile_at";

  hook(2);
  const auto after = label_counts(fed);
  std::size_t changed = 0;
  for (std::size_t c = 0; c < before.size(); ++c) {
    if (after[c] != before[c]) ++changed;
    // Drift redraws distributions, not dataset sizes.
    double total_before = 0.0, total_after = 0.0;
    for (const double v : before[c]) total_before += v;
    for (const double v : after[c]) total_after += v;
    EXPECT_EQ(total_before, total_after) << "client " << c;
  }
  EXPECT_GT(changed, 0u) << "drift changed no client at the trigger epoch";

  hook(3);
  EXPECT_EQ(label_counts(fed), after) << "drift re-fired after hostile_at";

  // Seeded determinism: a fresh dataset + hook lands on identical counts.
  auto fed2 = testing::build_dataset(spec);
  auto hook2 = testing::build_drift_hook(spec, fed2);
  hook2(2);
  EXPECT_EQ(label_counts(fed2), after);

  // Benign specs get no hook at all.
  auto benign = small_spec();
  auto fed3 = testing::build_dataset(benign);
  EXPECT_FALSE(static_cast<bool>(testing::build_drift_hook(benign, fed3)));
}

// ---------------------------------------------------------------------------
// Pinned hostile shape 5: adversarial (targeted) stragglers

TEST(HostileShapes, TargetedStragglersSlowFixedCohortFromTriggerEpoch) {
  sim::FaultModelConfig base;
  base.crash_rate = 0.1;
  base.straggler_rate = 0.2;
  base.seed = 11;

  sim::FaultModelConfig hostile = base;
  hostile.targeted_fraction = 0.5;
  hostile.targeted_multiplier = 8.0;
  hostile.targeted_from = 2;

  const sim::FaultModel baseline(base);
  const sim::FaultModel adversarial(hostile);
  constexpr std::size_t kClients = 16;

  // The cohort is a pure function of (seed, client): nonempty, proper
  // subset, and identical on a second model with the same config.
  std::vector<bool> cohort(kClients);
  std::size_t targeted_count = 0;
  for (std::size_t c = 0; c < kClients; ++c) {
    cohort[c] = adversarial.targeted(c);
    targeted_count += cohort[c] ? 1 : 0;
    EXPECT_FALSE(baseline.targeted(c));
  }
  EXPECT_GT(targeted_count, 0u);
  EXPECT_LT(targeted_count, kClients);
  const sim::FaultModel again(hostile);
  for (std::size_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(again.targeted(c), cohort[c]);
  }

  auto same_event = [](const sim::FaultEvent& a, const sim::FaultEvent& b) {
    return a.kind == b.kind && a.crash_frac == b.crash_frac &&
           a.latency_multiplier == b.latency_multiplier &&
           a.corruption == b.corruption;
  };
  for (std::size_t e = 0; e < 6; ++e) {
    for (std::size_t c = 0; c < kClients; ++c) {
      const auto expect = baseline.at(c, e);
      const auto got = adversarial.at(c, e);
      if (!cohort[c] || e < 2) {
        // Untargeted clients — and everyone before the trigger epoch — see
        // the IDENTICAL fault trace: targeting must not perturb the shared
        // random stream the paper's methodology depends on.
        EXPECT_TRUE(same_event(got, expect)) << "client " << c << " epoch " << e;
        continue;
      }
      if (expect.kind == sim::FaultKind::Crash ||
          expect.kind == sim::FaultKind::Corruption) {
        // Targeting slows uploads; it never cancels a crash or corruption.
        EXPECT_TRUE(same_event(got, expect)) << "client " << c << " epoch " << e;
      } else {
        EXPECT_EQ(got.kind, sim::FaultKind::Straggler);
        EXPECT_GE(got.latency_multiplier, 8.0);
        // Stacking: a random Pareto excursion beyond the targeted multiplier
        // is kept (max, not overwrite).
        EXPECT_GE(got.latency_multiplier, expect.latency_multiplier);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// build_availability composes base dropout with the hostile shape

TEST(HostileShapes, AvailabilityComposesDropoutAndShape) {
  auto spec = small_spec();
  spec.dropout = 0.3;
  spec.hostile = HostileKind::FlashCrowd;
  spec.hostile_frac = 0.4;
  spec.hostile_at = 2;

  const auto composed = testing::build_availability(spec);
  const auto base = sim::make_per_epoch_dropout(spec.clients, spec.dropout,
                                                spec.seed + 101);
  const auto shape = sim::make_flash_crowd(spec.clients, spec.hostile_frac,
                                           spec.hostile_at, spec.seed + 211);
  for (std::size_t e = 0; e < 6; ++e) {
    const auto got = composed->available(e);
    const auto a = base->available(e);
    const auto b = shape->available(e);
    for (std::size_t c = 0; c < spec.clients; ++c) {
      EXPECT_EQ(got[c], a[c] && b[c]) << "client " << c << " epoch " << e;
    }
  }

  // Benign specs with no dropout collapse to always-available.
  const auto benign = testing::build_availability(small_spec());
  for (std::size_t e = 0; e < 4; ++e) {
    for (const bool up : benign->available(e)) EXPECT_TRUE(up);
  }
}

// ---------------------------------------------------------------------------
// Selector zoo: DPP / FedLECC / HiCS unit tests

using SelectorFactory =
    std::function<std::unique_ptr<fl::ClientSelector>(
        const data::FederatedDataset&)>;

std::vector<std::pair<std::string, SelectorFactory>> zoo_factories() {
  return {
      {"dpp",
       [](const data::FederatedDataset& fed) {
         return std::make_unique<select::DppSelector>(fed, select::DppConfig{});
       }},
      {"fedlecc",
       [](const data::FederatedDataset& fed) {
         return std::make_unique<select::FedLeccSelector>(
             fed, select::FedLeccConfig{});
       }},
      {"hics",
       [](const data::FederatedDataset& fed) {
         return std::make_unique<select::HicsSelector>(fed,
                                                       select::HicsConfig{});
       }},
  };
}

TEST(SelectorZoo, FillsToAvailabilityBoundWithDistinctIds) {
  const auto fed = testing::build_dataset(small_spec());
  for (const auto& [name, make] : zoo_factories()) {
    auto selector = make(fed);
    auto view = make_view(fed.clients.size());
    selector->initialize(view);
    Rng rng(123);
    for (std::size_t t = 0; t < 20; ++t) {
      const auto picked = selector->select(3, view, t, rng);
      ASSERT_EQ(picked.size(), 3u) << name;
      std::set<std::size_t> distinct(picked.begin(), picked.end());
      EXPECT_EQ(distinct.size(), picked.size()) << name;
      for (const std::size_t id : picked) EXPECT_LT(id, view.size()) << name;
    }
    // Only 2 clients up -> exactly those 2 selected.
    for (auto& c : view) c.available = false;
    view[1].available = view[6].available = true;
    const auto pair = selector->select(3, view, 0, rng);
    std::set<std::size_t> got(pair.begin(), pair.end());
    EXPECT_EQ(got, (std::set<std::size_t>{1, 6})) << name;
    // Nobody up -> nobody selected.
    view[1].available = view[6].available = false;
    EXPECT_TRUE(selector->select(3, view, 0, rng).empty()) << name;
  }
}

TEST(SelectorZoo, SaveLoadRoundTripIsByteIdenticalAndBehaviorPreserving) {
  const auto fed = testing::build_dataset(small_spec());
  for (const auto& [name, make] : zoo_factories()) {
    auto a = make(fed);
    const auto view = make_view(fed.clients.size());
    a->initialize(view);
    Rng drive(55);
    for (std::size_t e = 0; e < 3; ++e) {
      const auto picked = a->select(3, view, e, drive);
      for (std::size_t i = 0; i < picked.size(); ++i) {
        if (i == 0) {
          a->report_failure(picked[i], e, fl::FailureKind::Crash);
        } else {
          a->report_result(picked[i], 2.0 - 0.1 * static_cast<double>(e), e);
        }
      }
    }
    const auto blob = a->save_state();
    ASSERT_FALSE(blob.empty()) << name;

    auto b = make(fed);
    b->initialize(view);
    b->load_state(blob);
    EXPECT_EQ(b->save_state(), blob) << name << ": reserialization differs";

    Rng ra(77), rb(77);
    for (std::size_t e = 3; e < 6; ++e) {
      EXPECT_EQ(a->select(3, view, e, ra), b->select(3, view, e, rb))
          << name << ": resumed selector diverges at epoch " << e;
    }

    // A blob from a different selector must be rejected, not half-applied.
    auto foreign = make(fed);
    foreign->initialize(view);
    const auto& other =
        zoo_factories()[name == "dpp" ? 1 : 0];
    auto donor = other.second(fed);
    donor->initialize(view);
    EXPECT_THROW(foreign->load_state(donor->save_state()), std::runtime_error)
        << name;
  }
}

TEST(SelectorZoo, ReportedFailuresLowerReliabilityAndSuccessesRecoverIt) {
  const auto fed = testing::build_dataset(small_spec());
  const auto view = make_view(fed.clients.size());

  select::DppSelector dpp(fed, select::DppConfig{});
  select::FedLeccSelector fedlecc(fed, select::FedLeccConfig{});
  select::HicsSelector hics(fed, select::HicsConfig{});
  dpp.initialize(view);
  fedlecc.initialize(view);
  hics.initialize(view);

  auto probe = [&](auto& selector) {
    const double fresh = selector.reliability_of(4);
    EXPECT_DOUBLE_EQ(fresh, 1.0);
    selector.report_failure(4, 0, fl::FailureKind::Crash);
    const double punished = selector.reliability_of(4);
    EXPECT_LT(punished, fresh);
    selector.report_result(4, 1.2, 1);
    EXPECT_GT(selector.reliability_of(4), punished);
  };
  probe(dpp);
  probe(fedlecc);
  probe(hics);
}

TEST(SelectorZoo, FedLeccClustersIdenticalDistributionsTogether) {
  // Two far-apart groups of identical label distributions: DBSCAN at
  // eps = 0.35 must find exactly two clusters with no cross-membership.
  std::vector<std::vector<double>> counts;
  for (int i = 0; i < 3; ++i) counts.push_back({10.0, 0.0, 0.0, 0.0});
  for (int i = 0; i < 3; ++i) counts.push_back({0.0, 0.0, 0.0, 10.0});
  select::FedLeccSelector selector(counts, select::FedLeccConfig{});
  EXPECT_EQ(selector.num_clusters(), 2u);
  EXPECT_EQ(selector.cluster_of(0), selector.cluster_of(1));
  EXPECT_EQ(selector.cluster_of(0), selector.cluster_of(2));
  EXPECT_EQ(selector.cluster_of(3), selector.cluster_of(4));
  EXPECT_NE(selector.cluster_of(0), selector.cluster_of(3));
}

TEST(SelectorZoo, DppKernelPrefersDiverseSets) {
  // Clients 0 and 1 share a distribution; client 2 is disjoint. Similarity
  // is 1 on the diagonal/twins, and the minimal value for the disjoint pair,
  // so a 2-element draw should almost always include client 2.
  std::vector<std::vector<double>> counts = {
      {8.0, 0.0, 0.0, 0.0},
      {8.0, 0.0, 0.0, 0.0},
      {0.0, 0.0, 0.0, 8.0},
  };
  select::DppSelector selector(counts, select::DppConfig{});
  EXPECT_DOUBLE_EQ(selector.similarity(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(selector.similarity(0, 1), 1.0);
  EXPECT_NEAR(selector.similarity(0, 2), 0.0, 1e-9);

  auto view = make_view(3);
  for (auto& c : view) c.num_samples = 30;  // equal quality
  view[0].latency_s = view[1].latency_s = view[2].latency_s = 1.0;
  selector.initialize(view);
  Rng rng(9);
  std::size_t includes_disjoint = 0;
  constexpr std::size_t kDraws = 200;
  for (std::size_t t = 0; t < kDraws; ++t) {
    const auto picked = selector.select(2, view, 0, rng);
    ASSERT_EQ(picked.size(), 2u);
    if (std::find(picked.begin(), picked.end(), 2u) != picked.end()) {
      ++includes_disjoint;
    }
  }
  EXPECT_GT(includes_disjoint, (8 * kDraws) / 10)
      << "DPP rarely picked the only diverse client";
}

TEST(SelectorZoo, HicsScoresSkewedClientsAboveAverageOnes) {
  // Three average clients and one rare-label client: the rare client's
  // heterogeneity (distance to the population mean) must dominate.
  std::vector<std::vector<double>> counts = {
      {5.0, 5.0, 5.0, 5.0},
      {5.0, 5.0, 5.0, 5.0},
      {5.0, 5.0, 5.0, 5.0},
      {0.0, 0.0, 0.0, 20.0},
  };
  select::HicsSelector selector(counts, select::HicsConfig{});
  for (int c = 0; c < 3; ++c) {
    EXPECT_LT(selector.heterogeneity_of(c), selector.heterogeneity_of(3));
  }
}

// ---------------------------------------------------------------------------
// Spec round-trip and the parser's nearest-key suggestion

TEST(ScenarioSpecRoundTrip, GeneratedSpecsPrintParsePrintIdentically) {
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    const auto spec = testing::generate_scenario(seed);
    const auto printed = testing::to_spec_string(spec);
    const auto reparsed = testing::parse_spec_string(printed);
    EXPECT_EQ(testing::to_spec_string(reparsed), printed) << "seed " << seed;
  }
}

TEST(ScenarioSpecRoundTrip, PrintedSpecCarriesEveryHostileKey) {
  auto spec = small_spec();
  spec.hostile = HostileKind::Outage;
  spec.hostile_frac = 0.5;
  spec.hostile_at = 2;
  spec.hostile_span = 3;
  const auto printed = testing::to_spec_string(spec);
  EXPECT_NE(printed.find("hostile=outage"), std::string::npos) << printed;
  EXPECT_NE(printed.find("hostile_frac=0.5"), std::string::npos) << printed;
  EXPECT_NE(printed.find("hostile_at=2"), std::string::npos) << printed;
  EXPECT_NE(printed.find("hostile_span=3"), std::string::npos) << printed;

  const auto reparsed = testing::parse_spec_string(printed);
  EXPECT_EQ(reparsed.hostile, HostileKind::Outage);
  EXPECT_DOUBLE_EQ(reparsed.hostile_frac, 0.5);
  EXPECT_EQ(reparsed.hostile_at, 2u);
  EXPECT_EQ(reparsed.hostile_span, 3u);
}

TEST(ScenarioSpecRoundTrip, EveryHostileKindNameRoundTrips) {
  for (const auto kind :
       {HostileKind::None, HostileKind::FlashCrowd, HostileKind::Diurnal,
        HostileKind::Outage, HostileKind::Drift,
        HostileKind::TargetedStragglers}) {
    EXPECT_EQ(testing::parse_hostile_kind(testing::to_string(kind)), kind);
  }
  for (const auto kind :
       {SelectorKind::Dpp, SelectorKind::FedLecc, SelectorKind::Hics}) {
    EXPECT_EQ(testing::parse_selector_kind(testing::to_string(kind)), kind);
  }
}

TEST(ScenarioSpecRoundTrip, UnknownKeySuggestsNearestKnownKey) {
  try {
    testing::parse_spec_string("seed=1,hostile_fracc=0.4");
    FAIL() << "parser accepted an unknown key";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown spec key"), std::string::npos) << what;
    EXPECT_NE(what.find("did you mean 'hostile_frac'"), std::string::npos)
        << what;
  }
  // Gibberish far from every key gets the plain error, no bogus suggestion.
  try {
    testing::parse_spec_string("qqqqqqqqqqqq=1");
    FAIL() << "parser accepted an unknown key";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown spec key"), std::string::npos) << what;
    EXPECT_EQ(what.find("did you mean"), std::string::npos) << what;
  }
}

// ---------------------------------------------------------------------------
// End-to-end pin: every hostile shape runs clean through the oracle suite

TEST(HostileShapes, EveryShapeRunsCleanThroughCheckScenario) {
  testing::OracleOptions options;
  options.differential = false;  // covered by the fuzz smoke; keep tier-1 fast
  options.srswr_draws = 800;
  for (const auto kind :
       {HostileKind::FlashCrowd, HostileKind::Diurnal, HostileKind::Outage,
        HostileKind::Drift, HostileKind::TargetedStragglers}) {
    auto spec = small_spec();
    spec.hostile = kind;
    spec.hostile_frac = 0.4;
    spec.hostile_at = 1;
    spec.hostile_span = 2;
    spec.selector = SelectorKind::HaccsPy;
    const auto violations = testing::check_scenario(spec, options);
    for (const auto& v : violations) {
      ADD_FAILURE() << testing::to_string(kind) << ": " << v.oracle << " — "
                    << v.detail << "\n  " << testing::replay_command(spec);
    }
  }
  // And the three new selectors under the nastiest availability shape.
  for (const auto selector :
       {SelectorKind::Dpp, SelectorKind::FedLecc, SelectorKind::Hics}) {
    auto spec = small_spec();
    spec.hostile = HostileKind::Outage;
    spec.hostile_frac = 0.5;
    spec.selector = selector;
    const auto violations = testing::check_scenario(spec, options);
    for (const auto& v : violations) {
      ADD_FAILURE() << testing::to_string(selector) << ": " << v.oracle
                    << " — " << v.detail << "\n  "
                    << testing::replay_command(spec);
    }
  }
}

}  // namespace
}  // namespace haccs
