// Tests for src/core: the summary/clustering pipeline, the HACCS selector
// (Eq. 6/7 weights, Weighted-SRSWR, min-latency in-cluster pick, dropout
// substitution), and the HaccsSystem façade.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "src/core/haccs_selector.hpp"
#include "src/core/haccs_system.hpp"
#include "src/stats/metrics.hpp"

namespace haccs::core {
namespace {

data::SyntheticImageGenerator small_gen(std::size_t classes = 10) {
  data::SyntheticImageConfig cfg;
  cfg.classes = classes;
  cfg.height = 8;
  cfg.width = 8;
  cfg.noise_stddev = 0.25;
  return data::SyntheticImageGenerator(cfg);
}

// A federation with clear-cut groups: two clients per label mixture.
data::FederatedDataset paired_fed(std::size_t samples = 300) {
  auto gen = small_gen();
  Rng rng(3);
  return data::partition_two_per_label(gen, samples, 10, rng);
}

TEST(Pipeline, ResponseSummariesReflectLabelCounts) {
  const auto fed = paired_fed(100);
  HaccsConfig cfg;
  const auto summaries = compute_summaries(fed, cfg);
  ASSERT_EQ(summaries.size(), fed.num_clients());
  for (std::size_t i = 0; i < summaries.size(); ++i) {
    EXPECT_EQ(summaries[i].kind, stats::SummaryKind::Response);
    EXPECT_DOUBLE_EQ(summaries[i].response.label_counts.total(),
                     static_cast<double>(fed.clients[i].train.size()));
  }
}

TEST(Pipeline, DistanceSmallWithinGroupLargeAcross) {
  const auto fed = paired_fed(400);
  HaccsConfig cfg;
  const auto summaries = compute_summaries(fed, cfg);
  const auto d = summary_distances(summaries);
  // Clients 0/1 share a mixture; clients 0/2 do not.
  EXPECT_LT(d.at(0, 1), 0.15);
  EXPECT_GT(d.at(0, 2), 0.3);
}

TEST(Pipeline, ClusterClientsRecoversGroundTruthGroups) {
  const auto fed = paired_fed(400);
  HaccsConfig cfg;  // OPTICS + auto extraction, no noise
  const auto labels = cluster_clients(fed, cfg);
  ASSERT_EQ(labels.size(), 20u);
  // Pairs must co-cluster; distinct pairs must not.
  for (std::size_t g = 0; g < 10; ++g) {
    EXPECT_EQ(labels[2 * g], labels[2 * g + 1]) << "pair " << g;
  }
  std::set<int> distinct(labels.begin(), labels.end());
  EXPECT_EQ(distinct.size(), 10u);
}

TEST(Pipeline, ConditionalSummaryAlsoRecoversGroups) {
  const auto fed = paired_fed(400);
  HaccsConfig cfg;
  cfg.summary = stats::SummaryKind::Conditional;
  const auto labels = cluster_clients(fed, cfg);
  for (std::size_t g = 0; g < 10; ++g) {
    EXPECT_EQ(labels[2 * g], labels[2 * g + 1]) << "pair " << g;
  }
}

TEST(Pipeline, DbscanAlgorithmAlsoWorks) {
  const auto fed = paired_fed(400);
  HaccsConfig cfg;
  cfg.algorithm = ClusterAlgorithm::Dbscan;
  cfg.dbscan.eps = 0.2;
  const auto labels = cluster_clients(fed, cfg);
  for (std::size_t g = 0; g < 10; ++g) {
    EXPECT_EQ(labels[2 * g], labels[2 * g + 1]);
  }
}

TEST(Pipeline, IidDataFormsOneCluster) {
  auto gen = small_gen();
  data::PartitionConfig pcfg;
  pcfg.num_clients = 12;
  pcfg.min_samples = 400;
  pcfg.max_samples = 400;
  pcfg.test_samples = 10;
  Rng rng(5);
  const auto fed = data::partition_iid(gen, pcfg, rng);
  HaccsConfig cfg;
  const auto labels = cluster_clients(fed, cfg);
  // §V-D1: "the clustering for P(y) groups all of the clients into a single
  // cluster" in the IID case.
  for (int l : labels) EXPECT_EQ(l, labels[0]);
  EXPECT_GE(labels[0], 0);
}

TEST(Pipeline, StrongNoiseDegradesClustering) {
  const auto fed = paired_fed(100);
  HaccsConfig clean_cfg;
  HaccsConfig noisy_cfg;
  noisy_cfg.privacy = stats::PrivacyConfig{0.001};  // extreme noise
  const auto clean = cluster_clients(fed, clean_cfg);
  double clean_score = stats::exact_cluster_recovery(clean, fed.true_group);
  double noisy_score_sum = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    noisy_cfg.privacy_seed = 100 + rep;
    const auto noisy = cluster_clients(fed, noisy_cfg);
    noisy_score_sum += stats::exact_cluster_recovery(noisy, fed.true_group);
  }
  EXPECT_DOUBLE_EQ(clean_score, 1.0);
  EXPECT_LT(noisy_score_sum / 5.0, 0.6);
}

TEST(Pipeline, SummaryDistanceKindMismatchThrows) {
  ClientSummary a, b;
  a.kind = stats::SummaryKind::Response;
  b.kind = stats::SummaryKind::Conditional;
  EXPECT_THROW(ClientSummary::distance(a, b), std::invalid_argument);
}

// ---- HaccsSelector ----

std::vector<fl::ClientRuntimeInfo> make_view(
    const std::vector<double>& latencies, const std::vector<double>& losses) {
  std::vector<fl::ClientRuntimeInfo> view(latencies.size());
  for (std::size_t i = 0; i < view.size(); ++i) {
    view[i].id = i;
    view[i].latency_s = latencies[i];
    view[i].num_samples = 100;
    view[i].last_loss = losses[i];
    view[i].available = true;
  }
  return view;
}

TEST(HaccsSelectorTest, NoisePointsBecomeSingletons) {
  HaccsSelector s({0, 0, -1, 1, -1}, HaccsConfig{});
  EXPECT_EQ(s.num_clusters(), 4u);  // {0,1}, {3}, {2}, {4}
  for (int label : s.cluster_of()) EXPECT_GE(label, 0);
}

TEST(HaccsSelectorTest, WeightsMatchEq7) {
  // Two clusters: {0,1} latencies 1,3 (avg 2), {2} latency 4.
  HaccsConfig cfg;
  cfg.rho = 0.5;
  HaccsSelector s({0, 0, 1}, cfg);
  const auto view = make_view({1.0, 3.0, 4.0}, {2.0, 4.0, 1.0});
  const auto w = s.cluster_weights(view);
  ASSERT_EQ(w.size(), 2u);
  // ACL_0 = 3, ACL_1 = 1; latency avg: 2 and 4, max 4.
  // tau_0 = 1 - 2/4 = 0.5, tau_1 = 0.
  // theta_0 = 0.5*0.5 + 0.5*(3/4) = 0.625; theta_1 = 0 + 0.5*(1/4) = 0.125.
  EXPECT_NEAR(w[0], 0.625, 1e-9);
  EXPECT_NEAR(w[1], 0.125, 1e-9);
}

TEST(HaccsSelectorTest, RhoOneIgnoresLoss) {
  HaccsConfig cfg;
  cfg.rho = 1.0;
  HaccsSelector s({0, 1}, cfg);
  const auto w_lowloss = s.cluster_weights(make_view({1.0, 2.0}, {0.1, 0.1}));
  const auto w_highloss = s.cluster_weights(make_view({1.0, 2.0}, {9.0, 0.1}));
  EXPECT_NEAR(w_lowloss[0], w_highloss[0], 1e-12);
  EXPECT_NEAR(w_lowloss[1], w_highloss[1], 1e-12);
}

TEST(HaccsSelectorTest, RhoZeroIgnoresLatency) {
  HaccsConfig cfg;
  cfg.rho = 0.0;
  HaccsSelector s({0, 1}, cfg);
  const auto w_a = s.cluster_weights(make_view({1.0, 50.0}, {1.0, 1.0}));
  const auto w_b = s.cluster_weights(make_view({50.0, 1.0}, {1.0, 1.0}));
  EXPECT_NEAR(w_a[0], w_b[0], 1e-12);
}

TEST(HaccsSelectorTest, RejectsBadRho) {
  HaccsConfig cfg;
  cfg.rho = 1.5;
  EXPECT_THROW(HaccsSelector({0, 1}, cfg), std::invalid_argument);
}

TEST(HaccsSelectorTest, PicksFastestAvailableInCluster) {
  // One cluster of three; the fastest must always be picked first.
  HaccsSelector s({0, 0, 0}, HaccsConfig{});
  auto view = make_view({5.0, 1.0, 3.0}, {1.0, 1.0, 1.0});
  Rng rng(7);
  const auto picks = s.select(1, view, 0, rng);
  ASSERT_EQ(picks.size(), 1u);
  EXPECT_EQ(picks[0], 1u);
  // With the fastest unavailable, the next-fastest stands in (the paper's
  // dropout-robustness mechanism).
  view[1].available = false;
  const auto picks2 = s.select(1, view, 0, rng);
  EXPECT_EQ(picks2[0], 2u);
}

TEST(HaccsSelectorTest, NeverReturnsDuplicatesOrUnavailable) {
  HaccsSelector s({0, 0, 1, 1, 2}, HaccsConfig{});
  auto view = make_view({1, 2, 3, 4, 5}, {1, 1, 1, 1, 1});
  view[0].available = false;
  Rng rng(11);
  for (int rep = 0; rep < 50; ++rep) {
    const auto picks = s.select(4, view, rep, rng);
    std::set<std::size_t> unique(picks.begin(), picks.end());
    EXPECT_EQ(unique.size(), picks.size());
    EXPECT_EQ(unique.count(0), 0u);
  }
}

TEST(HaccsSelectorTest, CapsAtAvailableCount) {
  HaccsSelector s({0, 0, 1}, HaccsConfig{});
  auto view = make_view({1, 2, 3}, {1, 1, 1});
  view[2].available = false;
  Rng rng(13);
  const auto picks = s.select(10, view, 0, rng);
  EXPECT_EQ(picks.size(), 2u);
}

TEST(HaccsSelectorTest, AllUnavailableReturnsEmpty) {
  HaccsSelector s({0, 1}, HaccsConfig{});
  auto view = make_view({1, 2}, {1, 1});
  view[0].available = view[1].available = false;
  Rng rng(17);
  EXPECT_TRUE(s.select(2, view, 0, rng).empty());
}

TEST(HaccsSelectorTest, EntireClusterUnavailableStillFillsK) {
  // Weighted-SRSWR must forfeit draws that land on an emptied cluster and
  // still deliver k participants from the clusters that have devices left.
  HaccsSelector s({0, 0, 1, 1, 2, 2}, HaccsConfig{});
  auto view = make_view({1, 2, 3, 4, 5, 6}, {1, 1, 1, 1, 1, 1});
  view[2].available = view[3].available = false;  // cluster 1 fully out
  Rng rng(29);
  for (int rep = 0; rep < 50; ++rep) {
    const auto picks = s.select(4, view, rep, rng);
    EXPECT_EQ(picks.size(), 4u);
    for (std::size_t id : picks) {
      EXPECT_TRUE(id != 2 && id != 3) << "picked unavailable client " << id;
    }
  }
}

TEST(HaccsSelectorTest, ZeroWeightClusterStillReachableWhenOthersExhaust) {
  // Regression for the fuzzer-found crash (tools/haccs_fuzz seed 163): with
  // rho = 1, Eq. 7 gives the slowest cluster weight exactly 0. If every
  // positive-weight cluster has run out of available devices, the SRSWR
  // redraw used to hand Rng::categorical an all-zero vector and throw; it
  // must instead fall back to the zero-weight cluster.
  HaccsConfig cfg;
  cfg.rho = 1.0;
  HaccsSelector s({0, 0, 1, 1}, cfg);
  auto view = make_view({1.0, 1.0, 10.0, 10.0}, {1, 1, 1, 1});
  view[0].available = view[1].available = false;  // fast cluster gone
  Rng rng(37);
  const auto picks = s.select(2, view, 0, rng);
  ASSERT_EQ(picks.size(), 2u);
  std::set<std::size_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique, (std::set<std::size_t>{2, 3}));
}

TEST(HaccsSelectorTest, NonContiguousLabelsAreCompacted) {
  // Label gaps (possible when a caller feeds hand-built labels) must not
  // leave empty cluster slots behind: co-membership is preserved and ids
  // are renumbered densely.
  HaccsSelector s({0, 5, 5, 9}, HaccsConfig{});
  EXPECT_EQ(s.num_clusters(), 3u);
  const auto& of = s.cluster_of();
  EXPECT_EQ(of[1], of[2]);
  EXPECT_NE(of[0], of[1]);
  EXPECT_NE(of[0], of[3]);
  EXPECT_NE(of[1], of[3]);
  for (int label : of) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 3);
  }
  // And selection over the compacted clusters works end to end.
  auto view = make_view({1, 2, 3, 4}, {1, 1, 1, 1});
  Rng rng(41);
  const auto picks = s.select(3, view, 0, rng);
  EXPECT_EQ(picks.size(), 3u);
}

TEST(HaccsSelectorTest, HighWeightClusterSampledMoreOften) {
  // Cluster 0: high loss; cluster 1: low loss. rho = 0 (pure loss weighting).
  HaccsConfig cfg;
  cfg.rho = 0.0;
  HaccsSelector s({0, 0, 1, 1}, cfg);
  auto view = make_view({1, 1, 1, 1}, {4.0, 4.0, 0.5, 0.5});
  Rng rng(19);
  int cluster0 = 0;
  const int trials = 500;
  for (int t = 0; t < trials; ++t) {
    const auto picks = s.select(1, view, t, rng);
    ASSERT_EQ(picks.size(), 1u);
    if (picks[0] <= 1) ++cluster0;
  }
  // Expected share 4/(4+0.5) ~ 0.89.
  EXPECT_GT(cluster0, trials * 7 / 10);
}

TEST(HaccsSelectorTest, WeightedRandomInClusterCanPickSlower) {
  HaccsConfig cfg;
  cfg.in_cluster = InClusterPolicy::WeightedRandom;
  HaccsSelector s({0, 0}, cfg);
  auto view = make_view({1.0, 2.0}, {1.0, 1.0});
  Rng rng(23);
  std::set<std::size_t> picked;
  for (int t = 0; t < 200; ++t) {
    picked.insert(s.select(1, view, t, rng)[0]);
  }
  EXPECT_EQ(picked.size(), 2u);  // the slower device does get selected
}

TEST(HaccsSelectorTest, NameIncludesSummaryKind) {
  HaccsConfig cfg;
  EXPECT_EQ(HaccsSelector({0}, cfg).name(), "HACCS-P(y)");
  cfg.summary = stats::SummaryKind::Conditional;
  EXPECT_EQ(HaccsSelector({0}, cfg).name(), "HACCS-P(X|y)");
}

TEST(HaccsSelectorTest, ReclusterUpdatesAssignments) {
  const auto fed = paired_fed(300);
  HaccsConfig cfg;
  HaccsSelector s(fed, cfg);
  const auto before = s.cluster_of();
  s.recluster(fed);
  EXPECT_EQ(s.cluster_of(), before);  // same data => same clusters
  EXPECT_EQ(s.num_clusters(), 10u);
}

// ---- HaccsSystem ----

TEST(HaccsSystemTest, EndToEndTrainingRuns) {
  auto gen = small_gen(4);
  data::PartitionConfig pcfg;
  pcfg.num_clients = 8;
  pcfg.min_samples = 30;
  pcfg.max_samples = 40;
  pcfg.test_samples = 10;
  Rng rng(29);
  const auto fed = data::partition_k_random_labels(gen, pcfg, 2, rng);

  fl::EngineConfig ecfg;
  ecfg.rounds = 6;
  ecfg.clients_per_round = 3;
  ecfg.eval_every = 3;
  HaccsSystem system(fed, HaccsConfig{}, ecfg,
                     default_model_factory(fed, 31));
  const auto history = system.train();
  EXPECT_EQ(history.records().size(), 6u);
  EXPECT_GT(history.total_time(), 0.0);
  EXPECT_FALSE(system.cluster_labels().empty());
}

TEST(HaccsSystemTest, DefaultModelFactoryDeterministic) {
  const auto fed = paired_fed(50);
  auto factory = default_model_factory(fed, 7);
  auto m1 = factory();
  auto m2 = factory();
  EXPECT_EQ(m1.get_parameters(), m2.get_parameters());
}

TEST(HaccsSystemTest, CnnFactoryBuilds) {
  const auto fed = paired_fed(50);
  auto factory = default_model_factory(fed, 7, /*use_cnn=*/true);
  auto model = factory();
  Tensor x({2, 1, 8, 8});
  EXPECT_EQ(model.forward(x).shape(), (std::vector<std::size_t>{2, 10}));
}

}  // namespace
}  // namespace haccs::core
