// Tests for src/stats: histograms, Hellinger distance properties (paper
// Eqs. 3-4), the two distribution summaries, the Laplace mechanism (Eq. 5),
// and the clustering / CI metrics.
#include <gtest/gtest.h>

#include <cmath>

#include "src/data/dataset.hpp"
#include "src/stats/histogram.hpp"
#include "src/stats/metrics.hpp"
#include "src/stats/privacy.hpp"
#include "src/stats/summary.hpp"

namespace haccs::stats {
namespace {

TEST(HistogramTest, CountHistogramAccumulates) {
  Histogram h(4);
  h.add_count(0);
  h.add_count(0, 2.0);
  h.add_count(3);
  EXPECT_DOUBLE_EQ(h.counts()[0], 3.0);
  EXPECT_DOUBLE_EQ(h.counts()[3], 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
  EXPECT_THROW(h.add_count(4), std::out_of_range);
}

TEST(HistogramTest, ValueBinning) {
  Histogram h(4, 0.0, 4.0);
  h.observe(0.5);   // bin 0
  h.observe(3.99);  // bin 3
  h.observe(-10.0); // clamps to bin 0
  h.observe(10.0);  // clamps to bin 3
  EXPECT_DOUBLE_EQ(h.counts()[0], 2.0);
  EXPECT_DOUBLE_EQ(h.counts()[3], 2.0);
}

TEST(HistogramTest, ObserveRequiresValueBinned) {
  Histogram h(4);
  EXPECT_THROW(h.observe(1.0), std::logic_error);
}

TEST(HistogramTest, NormalizedSumsToOneOrZero) {
  Histogram h(3);
  EXPECT_EQ(h.normalized(), (std::vector<double>{0, 0, 0}));  // empty => zero
  h.add_count(1, 2.0);
  h.add_count(2, 2.0);
  const auto p = h.normalized();
  EXPECT_DOUBLE_EQ(p[1], 0.5);
  EXPECT_DOUBLE_EQ(p[2], 0.5);
}

TEST(HistogramTest, ClampNonnegative) {
  Histogram h(2);
  h.set_counts({-1.5, 2.0});
  h.clamp_nonnegative();
  EXPECT_DOUBLE_EQ(h.counts()[0], 0.0);
  EXPECT_DOUBLE_EQ(h.counts()[1], 2.0);
}

// ---- Hellinger distance: Eq. 3 / Eq. 4 properties ----

TEST(Hellinger, IdenticalDistributionsGiveZero) {
  const std::vector<double> p = {0.25, 0.25, 0.5};
  EXPECT_NEAR(hellinger_distance(p, p), 0.0, 1e-12);
}

TEST(Hellinger, DisjointSupportsGiveOne) {
  const std::vector<double> p = {1.0, 0.0};
  const std::vector<double> q = {0.0, 1.0};
  EXPECT_NEAR(hellinger_distance(p, q), 1.0, 1e-12);
}

TEST(Hellinger, Symmetric) {
  const std::vector<double> p = {0.7, 0.2, 0.1};
  const std::vector<double> q = {0.1, 0.3, 0.6};
  EXPECT_DOUBLE_EQ(hellinger_distance(p, q), hellinger_distance(q, p));
}

TEST(Hellinger, BoundedAndToleratesZeros) {
  const std::vector<double> p = {0.9, 0.1, 0.0, 0.0};
  const std::vector<double> q = {0.0, 0.0, 0.5, 0.5};
  const double d = hellinger_distance(p, q);
  EXPECT_GE(d, 0.0);
  EXPECT_LE(d, 1.0);
}

TEST(Hellinger, NormalizesUnnormalizedInput) {
  const std::vector<double> counts_a = {30, 10};   // = {0.75, 0.25}
  const std::vector<double> counts_b = {3, 1};
  EXPECT_NEAR(hellinger_distance(counts_a, counts_b), 0.0, 1e-12);
}

TEST(Hellinger, HandComputedValue) {
  // H({1,0},{0.5,0.5}) = sqrt(1 - 1/sqrt(2)) (via 1 - BC identity).
  const std::vector<double> p = {1.0, 0.0};
  const std::vector<double> q = {0.5, 0.5};
  EXPECT_NEAR(hellinger_distance(p, q), std::sqrt(1.0 - std::sqrt(0.5)), 1e-12);
}

TEST(Hellinger, ArityMismatchThrows) {
  const std::vector<double> p = {1.0};
  const std::vector<double> q = {0.5, 0.5};
  EXPECT_THROW(hellinger_distance(p, q), std::invalid_argument);
}

TEST(Hellinger, AverageOverHistogramSets) {
  std::vector<Histogram> a, b;
  a.emplace_back(2);
  a.emplace_back(2);
  b.emplace_back(2);
  b.emplace_back(2);
  a[0].add_count(0);  // identical to b[0]
  b[0].add_count(0);
  a[1].add_count(0);  // disjoint from b[1]
  b[1].add_count(1);
  EXPECT_NEAR(average_hellinger_distance(a, b), 0.5, 1e-12);  // (0 + 1) / 2
}

// ---- Summaries ----

data::Dataset tiny_dataset() {
  data::Dataset ds({2}, 3);
  ds.add(std::vector<float>{0.0f, 1.0f}, 0);
  ds.add(std::vector<float>{0.5f, 1.5f}, 0);
  ds.add(std::vector<float>{2.0f, 3.0f}, 2);
  return ds;
}

TEST(Summary, ResponseCountsLabels) {
  const auto ds = tiny_dataset();
  const auto s = summarize_response(ds);
  EXPECT_DOUBLE_EQ(s.label_counts.counts()[0], 2.0);
  EXPECT_DOUBLE_EQ(s.label_counts.counts()[1], 0.0);
  EXPECT_DOUBLE_EQ(s.label_counts.counts()[2], 1.0);
  EXPECT_EQ(summary_size(s), 3u);
}

TEST(Summary, ConditionalBinsFeaturesPerLabel) {
  const auto ds = tiny_dataset();
  ConditionalSummaryConfig cfg{.bins = 8, .lo = -4.0, .hi = 4.0};
  const auto s = summarize_conditional(ds, cfg);
  ASSERT_EQ(s.per_label.size(), 3u);
  EXPECT_DOUBLE_EQ(s.per_label[0].total(), 4.0);  // 2 samples x 2 features
  EXPECT_DOUBLE_EQ(s.per_label[1].total(), 0.0);  // label absent
  EXPECT_DOUBLE_EQ(s.per_label[2].total(), 2.0);
  EXPECT_EQ(summary_size(s), 24u);  // Θ(c·p): 3 labels x 8 bins
}

TEST(Summary, DistanceZeroForIdenticalData) {
  const auto a = summarize_response(tiny_dataset());
  const auto b = summarize_response(tiny_dataset());
  EXPECT_NEAR(distance(a, b), 0.0, 1e-12);
}

TEST(Summary, KindParsing) {
  EXPECT_EQ(parse_summary_kind("P(y)"), SummaryKind::Response);
  EXPECT_EQ(parse_summary_kind("py"), SummaryKind::Response);
  EXPECT_EQ(parse_summary_kind("P(X|y)"), SummaryKind::Conditional);
  EXPECT_EQ(parse_summary_kind("pxy"), SummaryKind::Conditional);
  EXPECT_THROW(parse_summary_kind("nope"), std::invalid_argument);
  EXPECT_EQ(to_string(SummaryKind::Response), "P(y)");
  EXPECT_EQ(to_string(SummaryKind::Conditional), "P(X|y)");
}

// ---- Laplace mechanism ----

TEST(Privacy, VarianceFormulaMatchesEq5) {
  EXPECT_DOUBLE_EQ(laplace_noise_variance(0.1), 200.0);
  EXPECT_DOUBLE_EQ(laplace_noise_variance(1.0), 2.0);
  EXPECT_THROW(laplace_noise_variance(0.0), std::invalid_argument);
}

TEST(Privacy, NoiseEmpiricalVarianceTracksEpsilon) {
  Rng rng(61);
  const double epsilon = 0.5;
  const int n = 20000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    Histogram h(1);
    h.add_count(0, 100.0);
    // Measure noise before clamping by using a large baseline count.
    privatize_histogram(h, epsilon, rng);
    const double noise = h.counts()[0] - 100.0;
    sum += noise;
    sum_sq += noise * noise;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(var, laplace_noise_variance(epsilon), 1.0);
}

TEST(Privacy, DisabledConfigIsNoop) {
  const auto ds = tiny_dataset();
  auto s = summarize_response(ds);
  Rng rng(3);
  const auto out = privatize(s, PrivacyConfig::none(), rng);
  EXPECT_EQ(out.label_counts.counts()[0], s.label_counts.counts()[0]);
  EXPECT_FALSE(PrivacyConfig::none().enabled());
  EXPECT_TRUE(PrivacyConfig{0.1}.enabled());
}

TEST(Privacy, NoisedCountsStayNonnegative) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    Histogram h(4);
    h.add_count(0, 1.0);  // tiny counts + strong noise
    privatize_histogram(h, 0.01, rng);
    for (double c : h.counts()) EXPECT_GE(c, 0.0);
  }
}

TEST(Privacy, NegativeNoisedBinsClampToZeroExactly) {
  // Tiny counts + strong Laplace noise (scale 1/eps = 20) push bins negative
  // before the clamp. Replaying the identical noise stream shows which bins
  // went negative pre-clamp: those must land on exactly 0, the rest must
  // carry the raw noised value untouched.
  const double epsilon = 0.05;
  Histogram h(6);
  for (std::size_t b = 0; b < 6; ++b) h.add_count(b, 1.0);
  Rng rng(42), replay(42);
  privatize_histogram(h, epsilon, rng);
  bool clamped = false;
  for (std::size_t b = 0; b < 6; ++b) {
    const double raw = 1.0 + replay.laplace(0.0, 1.0 / epsilon);
    if (raw < 0.0) {
      clamped = true;
      EXPECT_EQ(h.counts()[b], 0.0) << "bin " << b;
    } else {
      EXPECT_DOUBLE_EQ(h.counts()[b], raw) << "bin " << b;
    }
  }
  // Seed chosen so the scenario actually exercises the clamp.
  EXPECT_TRUE(clamped);
}

TEST(Privacy, PrivatizedSummariesKeepDistancesValid) {
  // Downstream, summaries are renormalized inside the distance computation;
  // a bin the clamp left at zero must not break the [0, 1] Hellinger bound
  // or produce NaN.
  const auto clean = summarize_response(tiny_dataset());
  Rng rng(11);
  for (int rep = 0; rep < 100; ++rep) {
    const auto a = privatize(clean, PrivacyConfig{0.02}, rng);
    const auto b = privatize(clean, PrivacyConfig{0.02}, rng);
    for (double c : a.label_counts.counts()) EXPECT_GE(c, 0.0);
    const double d = distance(a, b);
    EXPECT_TRUE(std::isfinite(d));
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0 + 1e-12);
  }
}

TEST(Privacy, SmallEpsilonDistortsMore) {
  // With the same seed stream, distance from the true histogram should grow
  // as epsilon shrinks (statistically, over repetitions).
  const auto ds = tiny_dataset();
  const auto clean = summarize_response(ds);
  double distortion_weak = 0.0, distortion_strong = 0.0;
  for (int rep = 0; rep < 50; ++rep) {
    Rng rng_weak(100 + rep), rng_strong(100 + rep);
    const auto weak = privatize(clean, PrivacyConfig{1.0}, rng_weak);
    const auto strong = privatize(clean, PrivacyConfig{0.01}, rng_strong);
    distortion_weak += distance(clean, weak);
    distortion_strong += distance(clean, strong);
  }
  EXPECT_GT(distortion_strong, distortion_weak);
}

TEST(Privacy, ConditionalSummaryNoisedPerBin) {
  const auto ds = tiny_dataset();
  ConditionalSummaryConfig cfg{.bins = 4, .lo = -4.0, .hi = 4.0};
  const auto clean = summarize_conditional(ds, cfg);
  Rng rng(7);
  const auto noised = privatize(clean, PrivacyConfig{0.05}, rng);
  // With eps = 0.05 (scale 20) at least one bin must differ.
  bool any_diff = false;
  for (std::size_t l = 0; l < clean.per_label.size(); ++l) {
    for (std::size_t b = 0; b < clean.per_label[l].bins(); ++b) {
      if (clean.per_label[l].counts()[b] != noised.per_label[l].counts()[b]) {
        any_diff = true;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

// ---- Clustering metrics ----

TEST(Metrics, PerfectClusteringScoresOne) {
  const std::vector<int> truth = {0, 0, 1, 1, 2, 2};
  const std::vector<int> pred = {5, 5, 3, 3, 9, 9};  // same partition, new ids
  const auto s = pairwise_clustering_scores(pred, truth);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_DOUBLE_EQ(s.f1, 1.0);
  EXPECT_DOUBLE_EQ(s.rand_index, 1.0);
  EXPECT_DOUBLE_EQ(exact_cluster_recovery(pred, truth), 1.0);
}

TEST(Metrics, MergedClustersLosePrecision) {
  const std::vector<int> truth = {0, 0, 1, 1};
  const std::vector<int> pred = {0, 0, 0, 0};  // merged everything
  const auto s = pairwise_clustering_scores(pred, truth);
  EXPECT_LT(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_DOUBLE_EQ(exact_cluster_recovery(pred, truth), 0.0);
}

TEST(Metrics, NoisePointsAreSingletons) {
  const std::vector<int> truth = {0, 0, 1};
  const std::vector<int> pred = {0, 0, -1};
  const auto s = pairwise_clustering_scores(pred, truth);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  // Singleton ground-truth group {2} is recovered by the noise singleton.
  EXPECT_DOUBLE_EQ(exact_cluster_recovery(pred, truth), 1.0);
}

TEST(Metrics, PartialRecoveryCountsGroups) {
  const std::vector<int> truth = {0, 0, 1, 1};
  const std::vector<int> pred = {2, 2, 3, 4};  // group 0 recovered, 1 split
  EXPECT_DOUBLE_EQ(exact_cluster_recovery(pred, truth), 0.5);
}

TEST(Metrics, MeanCi95) {
  const std::vector<double> vals = {1.0, 1.0, 1.0};
  const auto r = mean_ci95(vals);
  EXPECT_DOUBLE_EQ(r.mean, 1.0);
  EXPECT_DOUBLE_EQ(r.margin, 0.0);

  const std::vector<double> one = {5.0};
  EXPECT_DOUBLE_EQ(mean_ci95(one).margin, 0.0);

  const std::vector<double> spread = {0.0, 10.0};
  EXPECT_GT(mean_ci95(spread).margin, 0.0);

  EXPECT_THROW(mean_ci95({}), std::invalid_argument);
}

}  // namespace
}  // namespace haccs::stats
