// Cross-module integration tests: full training runs exercising the whole
// stack (data -> summaries -> privacy -> clustering -> scheduling -> FedAvg
// -> simulated clock), checking the paper's qualitative claims end to end.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/core/haccs_system.hpp"
#include "src/select/oort.hpp"
#include "src/select/random_selector.hpp"
#include "src/select/tifl.hpp"

namespace haccs {
namespace {

data::SyntheticImageGenerator make_gen(std::size_t classes = 10) {
  data::SyntheticImageConfig cfg = data::SyntheticImageConfig::femnist_like(classes);
  cfg.height = 12;
  cfg.width = 12;
  cfg.noise_stddev = 0.6;
  return data::SyntheticImageGenerator(cfg);
}

data::FederatedDataset make_fed(std::size_t clients = 20,
                                std::uint64_t seed = 7) {
  auto gen = make_gen();
  data::PartitionConfig cfg;
  cfg.num_clients = clients;
  cfg.min_samples = 60;
  cfg.max_samples = 120;
  cfg.test_samples = 20;
  cfg.style_brightness_stddev = 0.2;
  cfg.style_contrast_stddev = 0.08;
  Rng rng(seed);
  return data::partition_majority_label(gen, cfg, rng);
}

fl::EngineConfig make_engine(std::size_t rounds = 80) {
  fl::EngineConfig cfg;
  cfg.rounds = rounds;
  cfg.clients_per_round = 5;
  cfg.eval_every = 5;
  cfg.local.sgd.learning_rate = 0.08;
  cfg.seed = 13;
  return cfg;
}

TEST(Integration, FullRunIsDeterministic) {
  const auto fed = make_fed(12);
  const auto engine = make_engine(20);
  core::HaccsConfig haccs;
  core::HaccsSystem s1(fed, haccs, engine,
                       core::default_model_factory(fed, 99));
  core::HaccsSystem s2(fed, haccs, engine,
                       core::default_model_factory(fed, 99));
  const auto h1 = s1.train();
  const auto h2 = s2.train();
  ASSERT_EQ(h1.records().size(), h2.records().size());
  for (std::size_t i = 0; i < h1.records().size(); ++i) {
    EXPECT_EQ(h1.records()[i].selected, h2.records()[i].selected);
    EXPECT_DOUBLE_EQ(h1.records()[i].global_accuracy,
                     h2.records()[i].global_accuracy);
  }
}

TEST(Integration, HaccsBeatsRandomOnSkewedData) {
  const auto fed = make_fed(20);
  const auto engine = make_engine(100);
  core::HaccsConfig haccs;
  haccs.rho = 0.5;
  core::HaccsSystem system(fed, haccs, engine,
                           core::default_model_factory(fed, 99));
  const auto haccs_history = system.train();
  select::RandomSelector random;
  const auto random_history = system.train_with(random);

  const double target = 0.6;
  const double haccs_tta = haccs_history.time_to_accuracy(target);
  const double random_tta = random_history.time_to_accuracy(target);
  ASSERT_TRUE(std::isfinite(haccs_tta));
  ASSERT_TRUE(std::isfinite(random_tta));
  // The paper's headline: HACCS reaches the target faster. Generous margin
  // to keep the test robust to incidental tuning.
  EXPECT_LT(haccs_tta, random_tta * 1.02);
}

TEST(Integration, PrivacyPreservingRunStillTrains) {
  const auto fed = make_fed(16);
  const auto engine = make_engine(60);
  core::HaccsConfig haccs;
  haccs.privacy = stats::PrivacyConfig{0.1};
  core::HaccsSystem system(fed, haccs, engine,
                           core::default_model_factory(fed, 99));
  const auto history = system.train();
  EXPECT_GT(history.best_accuracy(), 0.5);
}

TEST(Integration, AllStrategiesReachUsefulAccuracy) {
  const auto fed = make_fed(16);
  const auto engine = make_engine(80);
  core::HaccsConfig haccs;
  core::HaccsSystem system(fed, haccs, engine,
                           core::default_model_factory(fed, 99));

  select::RandomSelector random;
  select::TiflConfig tifl_cfg;
  tifl_cfg.expected_rounds = engine.rounds;
  select::TiflSelector tifl(tifl_cfg);
  select::OortSelector oort({});

  EXPECT_GT(system.train_with(random).best_accuracy(), 0.6);
  EXPECT_GT(system.train_with(tifl).best_accuracy(), 0.6);
  EXPECT_GT(system.train_with(oort).best_accuracy(), 0.6);
  EXPECT_GT(system.train().best_accuracy(), 0.6);
}

TEST(Integration, GroupDropoutCollapsesOnlyDroppedGroups) {
  // Small-scale version of the paper's Fig. 1 finding.
  auto gen = make_gen();
  data::PartitionConfig cfg;
  cfg.num_clients = 20;
  cfg.min_samples = 80;
  cfg.max_samples = 80;
  cfg.test_samples = 20;
  Rng rng(3);
  const auto fed = data::partition_group_table(gen, cfg, rng);

  auto engine = make_engine(160);
  engine.clients_per_round = 6;

  // Keep only groups 0 {6,7} and 3 {2,3}: classes {2,3,6,7} survive, so
  // groups 1 {1,4}, 2 {5,9}, 4 {0,4}, 7 {0,9} lose BOTH of their classes
  // entirely — the paper's worst case in Fig. 1b.
  const auto schedule =
      sim::make_group_dropout(fed.true_group, {1, 2, 4, 5, 6, 7, 8, 9}, 0);
  fl::FederatedTrainer trainer(fed, core::default_model_factory(fed, 99),
                               engine);
  select::RandomSelector selector;
  trainer.run(selector, *schedule);
  const auto& acc = trainer.final_per_client_accuracy();

  double surviving = 0.0, fully_dropped = 0.0;
  std::size_t n_surv = 0, n_full = 0;
  for (std::size_t i = 0; i < 20; ++i) {
    const int g = fed.true_group[i];
    if (g == 0 || g == 3) {
      surviving += acc[i];
      ++n_surv;
    } else if (g == 1 || g == 2 || g == 4 || g == 7) {
      fully_dropped += acc[i];
      ++n_full;
    }
  }
  surviving /= static_cast<double>(n_surv);
  fully_dropped /= static_cast<double>(n_full);
  // Participating groups learn their classes well; groups whose classes
  // vanished from training collapse (paper Fig. 1b).
  EXPECT_GT(surviving, 0.7);
  EXPECT_LT(fully_dropped, surviving - 0.25);
}

TEST(Integration, HaccsSurvivesLossOfFastestClusterMembers) {
  // Permanently drop 30% of devices; clusters keep every distribution
  // represented through surviving members, so accuracy stays high.
  const auto fed = make_fed(20);
  const auto engine = make_engine(100);
  core::HaccsConfig haccs;
  core::HaccsSystem system(fed, haccs, engine,
                           core::default_model_factory(fed, 99));
  const auto schedule =
      sim::make_permanent_random_dropout(fed.num_clients(), 6, 0, 55);
  const auto history = system.train(*schedule);
  EXPECT_GT(history.best_accuracy(), 0.6);
}

TEST(Integration, ConditionalSummaryPipelineTrains) {
  const auto fed = make_fed(16);
  const auto engine = make_engine(60);
  core::HaccsConfig haccs;
  haccs.summary = stats::SummaryKind::Conditional;
  core::HaccsSystem system(fed, haccs, engine,
                           core::default_model_factory(fed, 99));
  const auto history = system.train();
  EXPECT_GT(history.best_accuracy(), 0.5);
}

TEST(Integration, SelectionSpreadsAcrossClusterMembersUnderJitter) {
  // With latency jitter, min-latency-in-cluster rotates among the fastest
  // members instead of hammering exactly one device (§IV-E).
  const auto fed = make_fed(20);
  auto engine = make_engine(120);
  engine.latency_jitter_sigma = 0.25;
  core::HaccsConfig haccs;
  core::HaccsSelector selector(fed, haccs);
  fl::FederatedTrainer trainer(fed, core::default_model_factory(fed, 99),
                               engine);
  const auto history = trainer.run(selector);
  const auto counts = history.selection_counts(fed.num_clients());
  std::size_t participants = 0;
  for (std::size_t c : counts) {
    if (c > 0) ++participants;
  }
  // More devices participate than the cluster count (someone other than a
  // single fixed representative got picked).
  EXPECT_GT(participants, selector.num_clusters());
}

}  // namespace
}  // namespace haccs
