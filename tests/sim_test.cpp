// Tests for src/sim: Table II device profiles (intervals and category
// frequencies), the latency model arithmetic, the simulated clock, and every
// dropout schedule.
#include <gtest/gtest.h>

#include <cmath>

#include "src/sim/dropout.hpp"
#include "src/sim/latency.hpp"
#include "src/sim/profile.hpp"

namespace haccs::sim {
namespace {

TEST(Profile, ValuesStayInsideTableIIIntervals) {
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const auto p = DeviceProfile::sample(rng);
    const auto [clo, chi] = DeviceProfile::compute_multiplier_range(p.compute_category);
    EXPECT_GE(p.compute_multiplier, clo);
    EXPECT_LE(p.compute_multiplier, chi);
    const auto [blo, bhi] = DeviceProfile::bandwidth_range_mbps(p.bandwidth_category);
    EXPECT_GE(p.bandwidth_mbps, blo);
    EXPECT_LE(p.bandwidth_mbps, bhi);
    EXPECT_GE(p.network_latency_s, 0.020);
    EXPECT_LE(p.network_latency_s, 0.200);
  }
}

TEST(Profile, CategoryFrequenciesMatch60_20_15_5) {
  Rng rng(5);
  int counts[4] = {0, 0, 0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<int>(DeviceProfile::sample(rng).compute_category)];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.60, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.20, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.15, 0.02);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.05, 0.01);
}

TEST(Profile, FastCategoryHasNoComputeDelay) {
  const auto [lo, hi] = DeviceProfile::compute_multiplier_range(PerfCategory::Fast);
  EXPECT_DOUBLE_EQ(lo, 1.0);
  EXPECT_DOUBLE_EQ(hi, 1.0);
}

TEST(Profile, CategoryNames) {
  EXPECT_EQ(to_string(PerfCategory::Fast), "fast");
  EXPECT_EQ(to_string(PerfCategory::VerySlow), "very_slow");
}

TEST(Latency, DecomposesIntoTransferPlusCompute) {
  LatencyModel model({.model_bytes = 1000000, .seconds_per_sample = 0.01,
                      .local_epochs = 2});
  DeviceProfile p;
  p.compute_multiplier = 2.0;
  p.bandwidth_mbps = 8.0;  // 8 Mbps = 1e6 bytes/s
  p.network_latency_s = 0.1;

  // transfer: 2*0.1 + 2 * 8e6 bits / 8e6 bps = 0.2 + 2.0
  EXPECT_NEAR(model.transfer_time(p), 2.2, 1e-9);
  // compute: 2.0 * 0.01 * 50 samples * 2 epochs = 2.0
  EXPECT_NEAR(model.compute_time(p, 50), 2.0, 1e-9);
  EXPECT_NEAR(model.round_latency(p, 50), 4.2, 1e-9);
}

TEST(Latency, SlowerProfileMeansHigherLatency) {
  LatencyModel model({});
  DeviceProfile fast, slow;
  fast.compute_multiplier = 1.0;
  fast.bandwidth_mbps = 100.0;
  fast.network_latency_s = 0.02;
  slow.compute_multiplier = 3.0;
  slow.bandwidth_mbps = 2.0;
  slow.network_latency_s = 0.2;
  EXPECT_GT(model.round_latency(slow, 100), model.round_latency(fast, 100));
}

TEST(Latency, RejectsBadConfig) {
  EXPECT_THROW(LatencyModel({.model_bytes = 1, .seconds_per_sample = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(LatencyModel({.model_bytes = 1, .seconds_per_sample = 0.1,
                             .local_epochs = 0}),
               std::invalid_argument);
}

TEST(Clock, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  clock.advance(1.5);
  EXPECT_DOUBLE_EQ(clock.now(), 1.5);
  EXPECT_THROW(clock.advance(-0.1), std::invalid_argument);
}

TEST(Clock, RoundTakesStragglerTime) {
  SimClock clock;
  const std::vector<double> latencies = {1.0, 7.5, 3.0};
  const double duration = clock.advance_round(latencies);
  EXPECT_DOUBLE_EQ(duration, 7.5);
  EXPECT_DOUBLE_EQ(clock.now(), 7.5);
  // Empty round advances nothing.
  EXPECT_DOUBLE_EQ(clock.advance_round({}), 0.0);
  clock.reset();
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
}

TEST(Dropout, AlwaysAvailable) {
  const auto s = make_always_available(5);
  const auto mask = s->available(0);
  EXPECT_EQ(mask.size(), 5u);
  for (bool b : mask) EXPECT_TRUE(b);
  EXPECT_EQ(s->num_clients(), 5u);
}

TEST(Dropout, PerEpochDropsExactFraction) {
  const auto s = make_per_epoch_dropout(50, 0.10, 99);
  for (std::size_t epoch = 0; epoch < 20; ++epoch) {
    const auto mask = s->available(epoch);
    std::size_t dropped = 0;
    for (bool b : mask) {
      if (!b) ++dropped;
    }
    EXPECT_EQ(dropped, 5u) << "epoch " << epoch;
  }
}

TEST(Dropout, PerEpochDeterministicPerSeedAndEpoch) {
  const auto a = make_per_epoch_dropout(30, 0.2, 7);
  const auto b = make_per_epoch_dropout(30, 0.2, 7);
  for (std::size_t epoch : {0u, 3u, 11u}) {
    EXPECT_EQ(a->available(epoch), b->available(epoch));
  }
  // Different epochs give different draws (overwhelmingly likely).
  EXPECT_NE(a->available(0), a->available(1));
  // Different seeds give different draws.
  const auto c = make_per_epoch_dropout(30, 0.2, 8);
  EXPECT_NE(a->available(0), c->available(0));
}

TEST(Dropout, PerEpochRecovery) {
  // The paper recovers devices each epoch: the union of available clients
  // across several epochs should approach everyone.
  const auto s = make_per_epoch_dropout(20, 0.3, 13);
  std::vector<bool> ever(20, false);
  for (std::size_t epoch = 0; epoch < 30; ++epoch) {
    const auto mask = s->available(epoch);
    for (std::size_t i = 0; i < 20; ++i) {
      if (mask[i]) ever[i] = true;
    }
  }
  for (bool b : ever) EXPECT_TRUE(b);
}

TEST(Dropout, PerEpochRejectsBadFraction) {
  EXPECT_THROW(make_per_epoch_dropout(10, -0.1, 1), std::invalid_argument);
  EXPECT_THROW(make_per_epoch_dropout(10, 1.5, 1), std::invalid_argument);
}

TEST(Dropout, PermanentRandomDropsFromEpoch) {
  const auto s = make_permanent_random_dropout(100, 80, 3, 55);
  // Before from_epoch everyone is up.
  for (bool b : s->available(2)) EXPECT_TRUE(b);
  // From epoch 3 on, exactly 80 are down — and the same 80 forever.
  const auto at3 = s->available(3);
  std::size_t down = 0;
  for (bool b : at3) {
    if (!b) ++down;
  }
  EXPECT_EQ(down, 80u);
  EXPECT_EQ(s->available(100), at3);
  EXPECT_THROW(make_permanent_random_dropout(10, 11, 0, 1),
               std::invalid_argument);
}

TEST(Dropout, StaggeredJoinBringsClientsOnline) {
  // Clients join at epochs 0, 3, 3, 10.
  const auto s = make_staggered_join({0, 3, 3, 10});
  EXPECT_EQ(s->num_clients(), 4u);
  EXPECT_EQ(s->available(0), (std::vector<bool>{true, false, false, false}));
  EXPECT_EQ(s->available(2), (std::vector<bool>{true, false, false, false}));
  EXPECT_EQ(s->available(3), (std::vector<bool>{true, true, true, false}));
  EXPECT_EQ(s->available(10), (std::vector<bool>{true, true, true, true}));
  EXPECT_EQ(s->available(100), (std::vector<bool>{true, true, true, true}));
}

TEST(Dropout, GroupDropoutRemovesWholeGroups) {
  // 9 clients in 3 groups of 3.
  const std::vector<int> group_of = {0, 0, 0, 1, 1, 1, 2, 2, 2};
  const auto s = make_group_dropout(group_of, {0, 2}, 1);
  for (bool b : s->available(0)) EXPECT_TRUE(b);
  const auto mask = s->available(1);
  EXPECT_FALSE(mask[0]);
  EXPECT_FALSE(mask[1]);
  EXPECT_FALSE(mask[2]);
  EXPECT_TRUE(mask[3]);
  EXPECT_TRUE(mask[4]);
  EXPECT_TRUE(mask[5]);
  EXPECT_FALSE(mask[6]);
  EXPECT_FALSE(mask[8]);
}

}  // namespace
}  // namespace haccs::sim
