// Tests for the quantile summary kind and the Gaussian privacy mechanism.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/core/pipeline.hpp"
#include "src/stats/metrics.hpp"
#include "src/stats/privacy.hpp"
#include "src/stats/summary.hpp"

namespace haccs::stats {
namespace {

data::Dataset two_label_dataset(double offset_for_label1 = 0.0) {
  data::Dataset ds({4}, 3);
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    std::vector<float> a(4), b(4);
    for (std::size_t j = 0; j < 4; ++j) {
      a[j] = static_cast<float>(rng.normal(0.0, 1.0));
      b[j] = static_cast<float>(rng.normal(offset_for_label1, 1.0));
    }
    ds.add(a, 0);
    ds.add(b, 1);
  }
  return ds;
}

TEST(QuantileSummary, QuantilesAreSortedAndInRange) {
  const auto ds = two_label_dataset();
  QuantileSummaryConfig cfg;
  const auto s = summarize_quantiles(ds, cfg);
  ASSERT_EQ(s.per_label.size(), 3u);
  EXPECT_EQ(s.per_label[0].size(), 9u);
  EXPECT_TRUE(s.per_label[2].empty());  // label 2 absent
  EXPECT_DOUBLE_EQ(s.mass[2], 0.0);
  EXPECT_DOUBLE_EQ(s.mass[0], 200.0);  // 50 samples x 4 features
  for (std::size_t q = 1; q < s.per_label[0].size(); ++q) {
    EXPECT_LE(s.per_label[0][q - 1], s.per_label[0][q]);
  }
  for (double q : s.per_label[0]) {
    EXPECT_GE(q, cfg.lo);
    EXPECT_LE(q, cfg.hi);
  }
  // Median of a standard normal sample is near 0.
  EXPECT_NEAR(s.per_label[0][4], 0.0, 0.3);
}

TEST(QuantileSummary, RejectsBadConfig) {
  const auto ds = two_label_dataset();
  QuantileSummaryConfig zero;
  zero.num_quantiles = 0;
  EXPECT_THROW(summarize_quantiles(ds, zero), std::invalid_argument);
  QuantileSummaryConfig inverted;
  inverted.lo = 1.0;
  inverted.hi = -1.0;
  EXPECT_THROW(summarize_quantiles(ds, inverted), std::invalid_argument);
}

TEST(QuantileSummary, DistanceSeparatesShiftedDistributions) {
  QuantileSummaryConfig cfg;
  const auto same_a = summarize_quantiles(two_label_dataset(0.0), cfg);
  const auto same_b = summarize_quantiles(two_label_dataset(0.0), cfg);
  const auto shifted = summarize_quantiles(two_label_dataset(2.0), cfg);

  const double d_same = quantile_distance(same_a, same_b, cfg);
  const double d_shifted = quantile_distance(same_a, shifted, cfg);
  EXPECT_NEAR(d_same, 0.0, 1e-9);  // identical seeds -> identical sketches
  EXPECT_GT(d_shifted, 0.05);
  EXPECT_LE(d_shifted, 1.0);
  // Symmetry.
  EXPECT_DOUBLE_EQ(quantile_distance(shifted, same_a, cfg), d_shifted);
}

TEST(QuantileSummary, AbsentLabelContributesMaxDistance) {
  QuantileSummaryConfig cfg;
  data::Dataset only0({2}, 2), only1({2}, 2);
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    const std::vector<float> v = {static_cast<float>(rng.normal()),
                                  static_cast<float>(rng.normal())};
    only0.add(v, 0);
    only1.add(v, 1);
  }
  const auto a = summarize_quantiles(only0, cfg);
  const auto b = summarize_quantiles(only1, cfg);
  EXPECT_DOUBLE_EQ(quantile_distance(a, b, cfg), 1.0);
}

TEST(QuantileSummary, PrivatizationPreservesOrderAndRange) {
  const auto ds = two_label_dataset();
  QuantileSummaryConfig cfg;
  const auto clean = summarize_quantiles(ds, cfg);
  Rng rng(9);
  const auto noised = privatize(clean, cfg, PrivacyConfig{0.5}, rng);
  for (std::size_t c = 0; c < noised.per_label.size(); ++c) {
    for (std::size_t q = 0; q < noised.per_label[c].size(); ++q) {
      EXPECT_GE(noised.per_label[c][q], cfg.lo);
      EXPECT_LE(noised.per_label[c][q], cfg.hi);
      if (q > 0) {
        EXPECT_LE(noised.per_label[c][q - 1], noised.per_label[c][q]);
      }
    }
  }
  // Noise actually applied.
  bool any_diff = false;
  for (std::size_t q = 0; q < clean.per_label[0].size(); ++q) {
    any_diff |= clean.per_label[0][q] != noised.per_label[0][q];
  }
  EXPECT_TRUE(any_diff);
}

TEST(QuantileSummary, EndToEndClusteringRecoversGroups) {
  data::SyntheticImageConfig gcfg;
  gcfg.classes = 10;
  gcfg.height = 8;
  gcfg.width = 8;
  data::SyntheticImageGenerator gen(gcfg);
  Rng rng(11);
  const auto fed = data::partition_two_per_label(gen, 300, 10, rng);
  core::HaccsConfig cfg;
  cfg.summary = SummaryKind::Quantile;
  const auto labels = core::cluster_clients(fed, cfg);
  EXPECT_GE(exact_cluster_recovery(labels, fed.true_group), 0.8);
}

TEST(QuantileSummary, KindParses) {
  EXPECT_EQ(parse_summary_kind("quantile"), SummaryKind::Quantile);
  EXPECT_EQ(parse_summary_kind("Q(X|y)"), SummaryKind::Quantile);
  EXPECT_EQ(to_string(SummaryKind::Quantile), "Q(X|y)");
}

// ---- Gaussian mechanism ----

TEST(GaussianMechanism, StddevFormula) {
  // sigma = sqrt(2 ln(1.25/delta)) * sens / eps
  const double sigma = gaussian_noise_stddev(1.0, 1e-5, 1.0);
  EXPECT_NEAR(sigma, std::sqrt(2.0 * std::log(1.25e5)), 1e-9);
  EXPECT_THROW(gaussian_noise_stddev(0.0, 1e-5), std::invalid_argument);
  EXPECT_THROW(gaussian_noise_stddev(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(gaussian_noise_stddev(1.0, 1.0), std::invalid_argument);
}

TEST(GaussianMechanism, EmpiricalVarianceMatches) {
  PrivacyConfig cfg;
  cfg.epsilon = 0.5;
  cfg.delta = 1e-4;
  cfg.mechanism = NoiseMechanism::Gaussian;
  const double sigma = gaussian_noise_stddev(cfg.epsilon, cfg.delta);
  Rng rng(13);
  const int n = 20000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    Histogram h(1);
    h.add_count(0, 10000.0);  // large baseline avoids the clamp
    privatize_histogram(h, cfg, rng);
    const double noise = h.counts()[0] - 10000.0;
    sum += noise;
    sum_sq += noise * noise;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(var / (sigma * sigma), 1.0, 0.1);
}

TEST(GaussianMechanism, ResponseSummaryEndToEnd) {
  data::Dataset ds({1}, 4);
  const std::vector<float> v = {0.0f};
  for (int i = 0; i < 100; ++i) ds.add(v, i % 4);
  const auto clean = summarize_response(ds);

  PrivacyConfig cfg;
  cfg.epsilon = 0.5;
  cfg.mechanism = NoiseMechanism::Gaussian;
  Rng rng(17);
  const auto noised = privatize(clean, cfg, rng);
  bool any_diff = false;
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_GE(noised.label_counts.counts()[b], 0.0);
    any_diff |= noised.label_counts.counts()[b] != clean.label_counts.counts()[b];
  }
  EXPECT_TRUE(any_diff);
}

TEST(GaussianMechanism, ClusteringSurvivesModerateNoise) {
  data::SyntheticImageConfig gcfg;
  gcfg.classes = 10;
  gcfg.height = 8;
  gcfg.width = 8;
  data::SyntheticImageGenerator gen(gcfg);
  Rng rng(19);
  const auto fed = data::partition_two_per_label(gen, 500, 10, rng);
  core::HaccsConfig cfg;
  cfg.privacy.epsilon = 0.5;
  cfg.privacy.mechanism = NoiseMechanism::Gaussian;
  cfg.privacy.delta = 1e-5;
  const auto labels = core::cluster_clients(fed, cfg);
  EXPECT_GE(exact_cluster_recovery(labels, fed.true_group), 0.9);
}

}  // namespace
}  // namespace haccs::stats
