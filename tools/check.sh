#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the test suite — once with
# the default toolchain flags and once under ASan+UBSan (HACCS_SANITIZE).
#
# Usage: tools/check.sh [--skip-sanitize]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
skip_sanitize=0
[[ "${1:-}" == "--skip-sanitize" ]] && skip_sanitize=1

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "$build_dir" -S "$repo" "$@"
  cmake --build "$build_dir" -j "$jobs"
  ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
}

echo "== tier-1: default build =="
run_suite "$repo/build"

if [[ "$skip_sanitize" -eq 0 ]]; then
  echo "== tier-1: ASan+UBSan build =="
  run_suite "$repo/build-sanitize" -DHACCS_SANITIZE=address,undefined
fi

echo "== all checks passed =="
