#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the test suite — once with
# the default toolchain flags and once under ASan+UBSan (HACCS_SANITIZE).
# The sanitizer pass additionally re-runs the kernel equivalence tests with a
# raised randomized-iteration count, so the packed GEMM edge tiles and
# im2col/col2im scatter paths get deep out-of-bounds/UB coverage.
#
# Usage: tools/check.sh [--skip-sanitize]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
skip_sanitize=0
[[ "${1:-}" == "--skip-sanitize" ]] && skip_sanitize=1

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "$build_dir" -S "$repo" "$@"
  cmake --build "$build_dir" -j "$jobs"
  ctest --test-dir "$build_dir" -L tier1 --output-on-failure -j "$jobs"
}

echo "== tier-1: default build =="
run_suite "$repo/build"

echo "== slow tier: fuzz sweep + mutation suites =="
ctest --test-dir "$repo/build" -L slow --output-on-failure -j "$jobs"

echo "== scenario fuzzer: invariant + differential oracles over 50 seeds =="
"$repo/build/tools/haccs_fuzz" --seeds 0..49

echo "== mutation smoke: injected Eq. 7 bug must be caught =="
"$repo/build/tools/haccs_fuzz" --mutate drop-eq7-normalization \
  --seeds 0..10 --expect-violation --no-differential

echo "== telemetry artifacts: traced run produces valid JSON =="
obs_dir="$(mktemp -d)"
trap 'rm -rf "$obs_dir"' EXIT
obs_rounds=12
"$repo/build/tools/haccs_run" \
  --strategy=haccs-py --rounds="$obs_rounds" --clients=12 --per-round=4 \
  --log-level=warn --csv="$obs_dir/traced" \
  --trace="$obs_dir/trace.json" --metrics="$obs_dir/metrics.json" \
  --events="$obs_dir/events.jsonl" --summary-json="$obs_dir/summary.json"
if command -v python3 >/dev/null; then
  python3 -m json.tool "$obs_dir/trace.json" > /dev/null
  python3 -m json.tool "$obs_dir/metrics.json" > /dev/null
  python3 -m json.tool "$obs_dir/summary.json" > /dev/null
  # JSONL: every line parses on its own, one event per round, and the
  # metrics snapshot counted every round.
  python3 - "$obs_dir" "$obs_rounds" <<'EOF'
import json, sys
obs_dir, rounds = sys.argv[1], int(sys.argv[2])
lines = [json.loads(l) for l in open(obs_dir + "/events.jsonl")]
assert len(lines) == rounds, f"expected {rounds} events, got {len(lines)}"
assert all(e["type"] == "round" for e in lines)
metrics = json.load(open(obs_dir + "/metrics.json"))
assert metrics["counters"]["rounds_total"] == rounds, metrics["counters"]
print(f"telemetry OK: {rounds} round events, rounds_total={rounds}")
EOF
else
  echo "python3 not found; skipping JSON validation"
fi

echo "== telemetry off: selector output byte-identical =="
"$repo/build/tools/haccs_run" \
  --strategy=haccs-py --rounds="$obs_rounds" --clients=12 --per-round=4 \
  --log-level=warn --csv="$obs_dir/plain"
diff "$obs_dir/plain_curve.csv" "$obs_dir/traced_curve.csv"
echo "curves identical"

echo "== multi-process smoke: 2 workers over TCP == single-process run =="
# Same workload three ways: haccs_server + 2 haccs_worker processes on an
# ephemeral localhost port, versus the in-process haccs_run. The run is
# bit-identical by design (jobs carry the engine's forked RNG seeds), so the
# final accuracies must match exactly, not approximately.
cmake --build "$repo/build" -j "$jobs" --target haccs_server haccs_worker haccs_run
net_flags=(--rounds=6 --clients=12 --per-round=4 --classes=6 --seed=7)
rm -f "$obs_dir/port"
timeout 120 "$repo/build/examples/haccs_server" \
  --workers=2 --port=0 --port-file="$obs_dir/port" \
  --summary-json="$obs_dir/net_server.json" \
  --trace="$obs_dir/net_trace.json" "${net_flags[@]}" &
server_pid=$!
timeout 120 "$repo/build/examples/haccs_worker" \
  --worker-id=0 --workers=2 --port-file="$obs_dir/port" "${net_flags[@]}" &
w0_pid=$!
timeout 120 "$repo/build/examples/haccs_worker" \
  --worker-id=1 --workers=2 --port-file="$obs_dir/port" "${net_flags[@]}" &
w1_pid=$!
wait "$server_pid" && wait "$w0_pid" && wait "$w1_pid"
"$repo/build/tools/haccs_run" \
  --strategy=haccs-py --log-level=warn \
  --summary-json="$obs_dir/net_direct.json" "${net_flags[@]}"
if command -v python3 >/dev/null; then
  python3 - "$obs_dir" <<'EOF'
import json, sys
obs_dir = sys.argv[1]
tcp = json.load(open(obs_dir + "/net_server.json"))
direct = json.load(open(obs_dir + "/net_direct.json"))
assert tcp["final_accuracy"] == direct["final_accuracy"], (tcp, direct)
assert tcp["uplink_bytes"] == direct["uplink_bytes"], (tcp, direct)
assert tcp["downlink_bytes"] == direct["downlink_bytes"], (tcp, direct)
assert tcp["net_bytes_sent"] >= tcp["downlink_bytes"]
print(f"multi-process OK: final_accuracy={tcp['final_accuracy']} both ways, "
      f"{tcp['net_bytes_sent']} bytes over the wire")
# The merged trace (DESIGN.md §5i): server round spans on pid 1, each
# worker's local_train spans on its own track, parented under a round span
# of the matching round.
trace = json.load(open(obs_dir + "/net_trace.json"))
events = trace["traceEvents"]
pids = {e["pid"] for e in events}
assert 1 in pids and len(pids) >= 3, f"expected server + 2 workers, got {pids}"
round_spans = {e["args"]["span"]: e["args"]["round"] for e in events
               if e.get("name") == "round" and "args" in e}
assert len(round_spans) == 6, round_spans
worker_spans = [e for e in events
                if e.get("name") == "local_train" and e.get("pid", 1) != 1]
assert worker_spans, "no worker local_train spans shipped home"
for e in worker_spans:
    parent = e["args"]["parent"]
    assert parent in round_spans, (e, sorted(round_spans))
    assert round_spans[parent] == e["args"]["round"], e
print(f"merged trace OK: {len(round_spans)} round spans, "
      f"{len(worker_spans)} worker spans on {len(pids) - 1} tracks")
EOF
else
  echo "python3 not found; skipping multi-process summary comparison"
fi

# Serving-mode smokes (chaos wire + kill-9/--resume), shared with CI.
"$repo/tools/serving_smoke.sh" "$repo/build"

if [[ "$skip_sanitize" -eq 0 ]]; then
  echo "== tier-1: ASan+UBSan build =="
  run_suite "$repo/build-sanitize" -DHACCS_SANITIZE=address,undefined

  echo "== kernel equivalence under ASan+UBSan (extended iterations) =="
  HACCS_KERNEL_TEST_ITERS=150 \
    "$repo/build-sanitize/tests/haccs_tests" --gtest_filter='Kernels.*'
  # Same sweep through the portable blocked backend (the AVX2 path is what
  # the CPU dispatch normally picks, so force the fallback explicitly).
  HACCS_KERNEL_TEST_ITERS=150 HACCS_PORTABLE_KERNELS=1 \
    "$repo/build-sanitize/tests/haccs_tests" --gtest_filter='Kernels.*'

  # Wire protocol + transports under ASan+UBSan: codec buffer arithmetic,
  # the incremental frame parser, and the TCP/loopback paths all do manual
  # byte-offset work — exactly where out-of-bounds bugs hide.
  echo "== net protocol under ASan+UBSan =="
  "$repo/build-sanitize/tests/haccs_tests" \
    --gtest_filter='Crc32.*:Wire.*:Frame*.*:NetCodec.*:SummaryCodec.*:Checkpoint.*:Loopback.*:Tcp.*:RunCheckpoint.*:ChaosTransport.*'

  # Observability subsystem under TSan: the trace buffer, metrics registry,
  # and event log are the only components mutated concurrently from the
  # thread pool *and* arbitrary user threads, so they get a dedicated
  # data-race pass (the ASan tree above already ran them for memory safety).
  echo "== obs concurrency under TSan =="
  cmake -B "$repo/build-tsan" -S "$repo" -DHACCS_SANITIZE=thread
  cmake --build "$repo/build-tsan" -j "$jobs" --target haccs_tests
  "$repo/build-tsan/tests/haccs_tests" --gtest_filter='ObsTest.*'

  # Transports under TSan: the loopback queues and the LoopbackCluster
  # worker threads are the net layer's concurrent surface (TCP I/O is
  # single-threaded per connection; the cluster drives real cross-thread
  # frame traffic through the same dispatcher the server binary uses).
  echo "== net transports under TSan =="
  "$repo/build-tsan/tests/haccs_tests" \
    --gtest_filter='Loopback.*:Tcp.*:TransportDispatcher.*:EngineOverTransport.*:ChaosTransport.*:ServingDispatcher.*:WorkerReconnect.*:ServingTrace.*:ServingStatus.*'
fi

echo "== all checks passed =="
