#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the test suite — once with
# the default toolchain flags and once under ASan+UBSan (HACCS_SANITIZE).
# The sanitizer pass additionally re-runs the kernel equivalence tests with a
# raised randomized-iteration count, so the packed GEMM edge tiles and
# im2col/col2im scatter paths get deep out-of-bounds/UB coverage.
#
# Usage: tools/check.sh [--skip-sanitize]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
skip_sanitize=0
[[ "${1:-}" == "--skip-sanitize" ]] && skip_sanitize=1

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "$build_dir" -S "$repo" "$@"
  cmake --build "$build_dir" -j "$jobs"
  ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
}

echo "== tier-1: default build =="
run_suite "$repo/build"

echo "== telemetry artifacts: traced run produces valid JSON =="
obs_dir="$(mktemp -d)"
trap 'rm -rf "$obs_dir"' EXIT
obs_rounds=12
"$repo/build/tools/haccs_run" \
  --strategy=haccs-py --rounds="$obs_rounds" --clients=12 --per-round=4 \
  --log-level=warn --csv="$obs_dir/traced" \
  --trace="$obs_dir/trace.json" --metrics="$obs_dir/metrics.json" \
  --events="$obs_dir/events.jsonl" --summary-json="$obs_dir/summary.json"
if command -v python3 >/dev/null; then
  python3 -m json.tool "$obs_dir/trace.json" > /dev/null
  python3 -m json.tool "$obs_dir/metrics.json" > /dev/null
  python3 -m json.tool "$obs_dir/summary.json" > /dev/null
  # JSONL: every line parses on its own, one event per round, and the
  # metrics snapshot counted every round.
  python3 - "$obs_dir" "$obs_rounds" <<'EOF'
import json, sys
obs_dir, rounds = sys.argv[1], int(sys.argv[2])
lines = [json.loads(l) for l in open(obs_dir + "/events.jsonl")]
assert len(lines) == rounds, f"expected {rounds} events, got {len(lines)}"
assert all(e["type"] == "round" for e in lines)
metrics = json.load(open(obs_dir + "/metrics.json"))
assert metrics["counters"]["rounds_total"] == rounds, metrics["counters"]
print(f"telemetry OK: {rounds} round events, rounds_total={rounds}")
EOF
else
  echo "python3 not found; skipping JSON validation"
fi

echo "== telemetry off: selector output byte-identical =="
"$repo/build/tools/haccs_run" \
  --strategy=haccs-py --rounds="$obs_rounds" --clients=12 --per-round=4 \
  --log-level=warn --csv="$obs_dir/plain"
diff "$obs_dir/plain_curve.csv" "$obs_dir/traced_curve.csv"
echo "curves identical"

if [[ "$skip_sanitize" -eq 0 ]]; then
  echo "== tier-1: ASan+UBSan build =="
  run_suite "$repo/build-sanitize" -DHACCS_SANITIZE=address,undefined

  echo "== kernel equivalence under ASan+UBSan (extended iterations) =="
  HACCS_KERNEL_TEST_ITERS=150 \
    "$repo/build-sanitize/tests/haccs_tests" --gtest_filter='Kernels.*'
  # Same sweep through the portable blocked backend (the AVX2 path is what
  # the CPU dispatch normally picks, so force the fallback explicitly).
  HACCS_KERNEL_TEST_ITERS=150 HACCS_PORTABLE_KERNELS=1 \
    "$repo/build-sanitize/tests/haccs_tests" --gtest_filter='Kernels.*'

  # Observability subsystem under TSan: the trace buffer, metrics registry,
  # and event log are the only components mutated concurrently from the
  # thread pool *and* arbitrary user threads, so they get a dedicated
  # data-race pass (the ASan tree above already ran them for memory safety).
  echo "== obs concurrency under TSan =="
  cmake -B "$repo/build-tsan" -S "$repo" -DHACCS_SANITIZE=thread
  cmake --build "$repo/build-tsan" -j "$jobs" --target haccs_tests
  "$repo/build-tsan/tests/haccs_tests" --gtest_filter='ObsTest.*'
fi

echo "== all checks passed =="
