#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the test suite — once with
# the default toolchain flags and once under ASan+UBSan (HACCS_SANITIZE).
# The sanitizer pass additionally re-runs the kernel equivalence tests with a
# raised randomized-iteration count, so the packed GEMM edge tiles and
# im2col/col2im scatter paths get deep out-of-bounds/UB coverage.
#
# Usage: tools/check.sh [--skip-sanitize]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
skip_sanitize=0
[[ "${1:-}" == "--skip-sanitize" ]] && skip_sanitize=1

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "$build_dir" -S "$repo" "$@"
  cmake --build "$build_dir" -j "$jobs"
  ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
}

echo "== tier-1: default build =="
run_suite "$repo/build"

if [[ "$skip_sanitize" -eq 0 ]]; then
  echo "== tier-1: ASan+UBSan build =="
  run_suite "$repo/build-sanitize" -DHACCS_SANITIZE=address,undefined

  echo "== kernel equivalence under ASan+UBSan (extended iterations) =="
  HACCS_KERNEL_TEST_ITERS=150 \
    "$repo/build-sanitize/tests/haccs_tests" --gtest_filter='Kernels.*'
  # Same sweep through the portable blocked backend (the AVX2 path is what
  # the CPU dispatch normally picks, so force the fallback explicitly).
  HACCS_KERNEL_TEST_ITERS=150 HACCS_PORTABLE_KERNELS=1 \
    "$repo/build-sanitize/tests/haccs_tests" --gtest_filter='Kernels.*'
fi

echo "== all checks passed =="
