#!/usr/bin/env python3
"""Compare a fresh google-benchmark JSON run against a committed baseline.

Usage: bench_check.py BASELINE.json CURRENT.json [--tolerance FRACTION]

Every benchmark present in the baseline must exist in the current run and
its real_time must not exceed baseline * (1 + tolerance). The tolerance is
deliberately generous (default 0.6, overridable via --tolerance or the
HACCS_BENCH_TOLERANCE environment variable): the gate exists to catch gross
regressions — an accidental O(N^2) reintroduction, a dropped cache — not
single-digit-percent noise, which shared CI runners cannot resolve.

Benchmarks only present in the current run (newly added) are reported but
never fail the check; commit the regenerated baseline alongside the change
that added them.
"""
import argparse
import json
import os
import sys


def load_benchmarks(path):
    with open(path) as fh:
        doc = json.load(fh)
    out = {}
    for bench in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions).
        if bench.get("run_type") == "aggregate":
            continue
        out[bench["name"]] = float(bench["real_time"])
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("HACCS_BENCH_TOLERANCE", "0.6")),
        help="allowed slowdown as a fraction of baseline (default 0.6, "
        "i.e. fail above 1.6x; env HACCS_BENCH_TOLERANCE overrides)",
    )
    args = parser.parse_args()

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)
    if not baseline:
        print(f"bench_check: no benchmarks in baseline {args.baseline}",
              file=sys.stderr)
        return 2

    failures = []
    for name, base_time in sorted(baseline.items()):
        if name not in current:
            failures.append(f"{name}: missing from current run")
            continue
        cur_time = current[name]
        ratio = cur_time / base_time if base_time > 0 else float("inf")
        verdict = "ok"
        if ratio > 1.0 + args.tolerance:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: {cur_time:.0f} vs baseline {base_time:.0f} "
                f"({ratio:.2f}x > {1.0 + args.tolerance:.2f}x allowed)")
        print(f"  {name}: {ratio:.2f}x baseline [{verdict}]")

    for name in sorted(set(current) - set(baseline)):
        print(f"  {name}: new benchmark (not in baseline; not gated)")

    if failures:
        print(f"bench_check: {len(failures)} failure(s) vs {args.baseline}:",
              file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"bench_check: {len(baseline)} benchmark(s) within "
          f"{1.0 + args.tolerance:.2f}x of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
