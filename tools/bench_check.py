#!/usr/bin/env python3
"""Compare a fresh google-benchmark JSON run against a committed baseline.

Usage: bench_check.py BASELINE.json CURRENT.json [--suite NAME]
                      [--tolerance FRACTION]

Every benchmark present in the baseline must exist in the current run and
its real_time must not exceed baseline * (1 + tolerance). Tolerances are
deliberately generous: the gate exists to catch gross regressions — an
accidental O(N^2) reintroduction, a dropped cache — not single-digit-percent
noise, which shared CI runners cannot resolve.

Each suite has its own noise threshold because the suites measure different
things: the kernel suite times multi-millisecond compute loops (tight),
the net suite times sub-microsecond codec paths (noisier per-run), and the
scale suite runs allocation-heavy clustering (noisiest). Resolution order:
--tolerance flag, HACCS_BENCH_TOLERANCE_<SUITE> env, HACCS_BENCH_TOLERANCE
env, then the per-suite default.

Benchmarks only present in the current run (newly added) are reported but
never fail the check; commit the regenerated baseline alongside the change
that added them.
"""
import argparse
import json
import os
import sys

# Per-suite default noise thresholds (fraction of baseline; 0.6 = fail
# above 1.6x).
SUITE_TOLERANCE = {
    "kernels": 0.6,
    "net": 0.8,
    "scale": 1.0,
}
DEFAULT_TOLERANCE = 0.6


def resolve_tolerance(suite, flag_value):
    if flag_value is not None:
        return flag_value
    if suite:
        env = os.environ.get(f"HACCS_BENCH_TOLERANCE_{suite.upper()}")
        if env is not None:
            return float(env)
    env = os.environ.get("HACCS_BENCH_TOLERANCE")
    if env is not None:
        return float(env)
    return SUITE_TOLERANCE.get(suite, DEFAULT_TOLERANCE)


def load_benchmarks(path):
    with open(path) as fh:
        doc = json.load(fh)
    out = {}
    for bench in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions).
        if bench.get("run_type") == "aggregate":
            continue
        out[bench["name"]] = float(bench["real_time"])
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--suite",
        default=None,
        help="suite name (kernels|net|scale) selecting the default noise "
        "threshold and the HACCS_BENCH_TOLERANCE_<SUITE> env override",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed slowdown as a fraction of baseline; overrides the "
        "suite default and every env var",
    )
    args = parser.parse_args()
    tolerance = resolve_tolerance(args.suite, args.tolerance)

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)
    if not baseline:
        print(f"bench_check: no benchmarks in baseline {args.baseline}",
              file=sys.stderr)
        return 2

    failures = []
    for name, base_time in sorted(baseline.items()):
        if name not in current:
            failures.append(f"{name}: missing from current run")
            continue
        cur_time = current[name]
        ratio = cur_time / base_time if base_time > 0 else float("inf")
        verdict = "ok"
        if ratio > 1.0 + tolerance:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: {cur_time:.0f} vs baseline {base_time:.0f} "
                f"({ratio:.2f}x > {1.0 + tolerance:.2f}x allowed)")
        print(f"  {name}: {ratio:.2f}x baseline [{verdict}]")

    for name in sorted(set(current) - set(baseline)):
        print(f"  {name}: new benchmark (not in baseline; not gated)")

    suite_tag = f" [{args.suite}]" if args.suite else ""
    if failures:
        print(f"bench_check{suite_tag}: {len(failures)} failure(s) vs "
              f"{args.baseline}:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"bench_check{suite_tag}: {len(baseline)} benchmark(s) within "
          f"{1.0 + tolerance:.2f}x of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
