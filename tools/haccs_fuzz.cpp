// Deterministic scenario fuzzer (TESTING.md "Scenario fuzzing").
//
// Sweeps seeded scenarios through the differential and invariant oracle
// families (src/testing/oracles.hpp). Every failure is shrunk to a minimal
// reproducer and printed as a one-line replay command:
//
//   haccs_fuzz --seeds 0..199             # fixed seed range
//   haccs_fuzz --seeds 500 --time-budget 60
//   haccs_fuzz --replay "seed=41,selector=haccs-py,..."
//   haccs_fuzz --mutate drop-eq7-normalization --seeds 0..20 --expect-violation
//   haccs_fuzz --seeds 0..999 --reproducers shrunk.tsv   # nightly artifact
//
// Exit status: 0 = clean sweep, 1 = violations found (inverted under
// --expect-violation, which is how CI proves the oracles still have teeth),
// 2 = usage error.
#include <chrono>
#include <cstdint>
#include <exception>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/flags.hpp"
#include "src/common/mutation.hpp"
#include "src/testing/oracles.hpp"
#include "src/testing/scenario.hpp"
#include "src/testing/shrink.hpp"

namespace {

using haccs::testing::OracleOptions;
using haccs::testing::ScenarioSpec;

struct SeedRange {
  std::uint64_t first = 0;
  std::uint64_t last = 0;  // inclusive
};

/// "A..B" (inclusive) or "N" (meaning 0..N-1).
SeedRange parse_seeds(const std::string& text) {
  SeedRange range;
  const auto dots = text.find("..");
  if (dots == std::string::npos) {
    const auto count = std::stoull(text);
    if (count == 0) throw std::invalid_argument("--seeds count must be > 0");
    range.last = count - 1;
    return range;
  }
  range.first = std::stoull(text.substr(0, dots));
  range.last = std::stoull(text.substr(dots + 2));
  if (range.last < range.first) {
    throw std::invalid_argument("--seeds range is empty: " + text);
  }
  return range;
}

void print_violations(const ScenarioSpec& spec,
                      const std::vector<haccs::testing::Violation>& violations) {
  std::cout << "FAIL " << haccs::testing::to_spec_string(spec) << "\n";
  for (const auto& v : violations) {
    std::cout << "  [" << v.oracle << "] " << v.detail << "\n";
  }
}

/// Runs oracles on one spec; on failure, shrinks and prints the replay line.
/// With `reproducers` set, each shrunk reproducer is also appended there
/// (one "oracle<TAB>spec" line per failure) so CI can upload the file as an
/// artifact. Returns the number of violations.
std::size_t run_one(const ScenarioSpec& spec, const OracleOptions& options,
                    bool shrink, const std::string& reproducers) {
  const auto violations = haccs::testing::check_scenario(spec, options);
  if (violations.empty()) return 0;
  print_violations(spec, violations);
  ScenarioSpec minimal = spec;
  if (shrink) {
    const auto result = haccs::testing::shrink_scenario(
        spec, violations.front().oracle, options);
    minimal = result.spec;
    std::cout << "  shrunk: " << result.attempts << " candidates tried, "
              << result.reproductions << " kept\n";
  }
  std::cout << "  reproduce: " << haccs::testing::replay_command(minimal)
            << "\n";
  if (!reproducers.empty()) {
    std::ofstream out(reproducers, std::ios::app);
    if (!out) {
      throw std::runtime_error("cannot open --reproducers file: " +
                               reproducers);
    }
    out << violations.front().oracle << "\t"
        << haccs::testing::to_spec_string(minimal) << "\n";
  }
  return violations.size();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    haccs::Flags flags(argc, argv);

    const std::string seeds_text = flags.get_string("seeds", "0..49");
    const double time_budget_s = flags.get_double("time-budget", 0.0);
    const std::string replay = flags.get_string("replay", "");
    const std::string mutate = flags.get_string("mutate", "none");
    const bool expect_violation = flags.get_bool("expect-violation", false);
    const bool shrink = flags.get_bool("shrink", true);
    const bool list_only = flags.get_bool("list", false);
    const std::string reproducers = flags.get_string("reproducers", "");
    OracleOptions options;
    options.differential = flags.get_bool("differential", true);
    options.srswr_draws = static_cast<std::size_t>(
        flags.get_int("srswr-draws", 4000));
    flags.check_unused();

    haccs::mutation::ScopedMutation armed(haccs::mutation::parse(mutate));

    std::size_t total_violations = 0;
    std::size_t scenarios_run = 0;

    if (!replay.empty()) {
      const auto spec = haccs::testing::parse_spec_string(replay);
      total_violations = run_one(spec, options, shrink, reproducers);
      scenarios_run = 1;
    } else {
      const auto range = parse_seeds(seeds_text);
      const auto start = std::chrono::steady_clock::now();
      for (std::uint64_t seed = range.first; seed <= range.last; ++seed) {
        if (time_budget_s > 0.0) {
          const std::chrono::duration<double> elapsed =
              std::chrono::steady_clock::now() - start;
          if (elapsed.count() >= time_budget_s) {
            std::cout << "time budget (" << time_budget_s
                      << "s) exhausted after seed " << (seed - 1) << "\n";
            break;
          }
        }
        const auto spec = haccs::testing::generate_scenario(seed);
        if (list_only) {
          std::cout << haccs::testing::to_spec_string(spec) << "\n";
          continue;
        }
        total_violations += run_one(spec, options, shrink, reproducers);
        ++scenarios_run;
        if (seed == range.last) break;  // avoid overflow on seed+1
      }
    }

    if (!list_only) {
      std::cout << scenarios_run << " scenario(s), " << total_violations
                << " violation(s)\n";
    }
    if (expect_violation) {
      if (total_violations == 0) {
        std::cout << "expected at least one violation but the sweep was "
                     "clean\n";
        return 1;
      }
      return 0;
    }
    return total_violations == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "haccs_fuzz: " << e.what() << "\n";
    return 2;
  }
}
