#!/usr/bin/env bash
# Kernel benchmark runner: builds the Release tree and runs the micro
# benchmark suite with JSON output, producing the tracked perf baseline.
#
# Usage: tools/bench.sh [output.json] [--filter=REGEX]
#
#   output.json   where to write the google-benchmark JSON
#                 (default: BENCH_kernels.json at the repo root — the
#                 committed baseline; regenerate it when kernels change and
#                 commit the diff alongside the change that caused it)
#   --filter=RE   restrict to benchmarks matching RE (default: the compute
#                 kernels — GEMM family, conv, train step, evaluation,
#                 FedAvg accumulation)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

out="$repo/BENCH_kernels.json"
filter='BM_Gemm|BM_Conv2d|BM_MlpTrainStep|BM_Evaluation|BM_FedAvgAccumulate'
for arg in "$@"; do
  case "$arg" in
    --filter=*) filter="${arg#--filter=}" ;;
    *) out="$arg" ;;
  esac
done

cmake -B "$repo/build" -S "$repo" -DCMAKE_BUILD_TYPE=Release
cmake --build "$repo/build" -j "$jobs" --target micro

"$repo/build/bench/micro" \
  --benchmark_filter="$filter" \
  --benchmark_out="$out" \
  --benchmark_out_format=json \
  --benchmark_repetitions=1

echo "wrote $out"
