#!/usr/bin/env bash
# Benchmark runner: builds the Release tree, runs the micro benchmark suite
# with JSON output (the tracked kernel perf baseline), and an end-to-end
# 200-round haccs_run whose machine-readable summary (wall time, TTA, wasted
# client-rounds) is the tracked e2e baseline.
#
# Usage: tools/bench.sh [output.json] [--filter=REGEX] [--skip-e2e]
#        [--e2e-only] [--skip-net] [--net-only]
#
#   output.json   where to write the google-benchmark JSON
#                 (default: BENCH_kernels.json at the repo root — the
#                 committed baseline; regenerate it when kernels change and
#                 commit the diff alongside the change that caused it)
#   --filter=RE   restrict to benchmarks matching RE (default: the compute
#                 kernels — GEMM family, conv, train step, evaluation,
#                 FedAvg accumulation)
#   --skip-e2e    kernel micro benchmarks only
#   --e2e-only    end-to-end run only (writes BENCH_e2e.json)
#   --skip-net    skip the wire-protocol benchmarks
#   --net-only    wire-protocol benchmarks only (writes BENCH_net.json —
#                 CRC32 throughput plus ClientUpdate encode/decode for each
#                 compression kind; regenerate when src/net codecs change)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

out="$repo/BENCH_kernels.json"
filter='BM_Gemm|BM_Conv2d|BM_MlpTrainStep|BM_Evaluation|BM_FedAvgAccumulate'
net_filter='BM_Crc32|BM_EncodeUpdate|BM_DecodeUpdate'
run_micro=1
run_e2e=1
run_net=1
for arg in "$@"; do
  case "$arg" in
    --filter=*) filter="${arg#--filter=}" ;;
    --skip-e2e) run_e2e=0 ;;
    --e2e-only) run_micro=0; run_net=0 ;;
    --skip-net) run_net=0 ;;
    --net-only) run_micro=0; run_e2e=0 ;;
    *) out="$arg" ;;
  esac
done

cmake -B "$repo/build" -S "$repo" -DCMAKE_BUILD_TYPE=Release
if [[ "$run_micro" -eq 1 ]]; then
  cmake --build "$repo/build" -j "$jobs" --target micro

  "$repo/build/bench/micro" \
    --benchmark_filter="$filter" \
    --benchmark_out="$out" \
    --benchmark_out_format=json \
    --benchmark_repetitions=1

  echo "wrote $out"
fi

if [[ "$run_net" -eq 1 ]]; then
  cmake --build "$repo/build" -j "$jobs" --target micro

  "$repo/build/bench/micro" \
    --benchmark_filter="$net_filter" \
    --benchmark_out="$repo/BENCH_net.json" \
    --benchmark_out_format=json \
    --benchmark_repetitions=1

  echo "wrote $repo/BENCH_net.json"
fi

if [[ "$run_e2e" -eq 1 ]]; then
  # Fixed end-to-end config: the default femnist-like workload (50 clients,
  # 10/round) for 200 rounds. --summary-json captures wall time, TTA per
  # target, and dispatched/wasted client-rounds; the committed BENCH_e2e.json
  # is the regression reference for whole-pipeline cost (selection +
  # clustering + training + aggregation), not just kernels.
  cmake --build "$repo/build" -j "$jobs" --target haccs_run
  "$repo/build/tools/haccs_run" \
    --strategy=haccs-py --partition=majority --rounds=200 --seed=1 \
    --log-level=warn --summary-json="$repo/BENCH_e2e.json"
  echo "wrote $repo/BENCH_e2e.json"
fi
