#!/usr/bin/env bash
# Benchmark runner: builds the Release tree, runs the micro benchmark suite
# with JSON output (the tracked kernel perf baseline), and an end-to-end
# 200-round haccs_run whose machine-readable summary (wall time, TTA, wasted
# client-rounds) is the tracked e2e baseline.
#
# Usage: tools/bench.sh [output.json] [--filter=REGEX] [--skip-e2e]
#        [--e2e-only] [--skip-net] [--net-only] [--skip-scale]
#        [--scale-only] [--check]
#
#   output.json   where to write the google-benchmark JSON
#                 (default: BENCH_kernels.json at the repo root — the
#                 committed baseline; regenerate it when kernels change and
#                 commit the diff alongside the change that caused it)
#   --filter=RE   restrict to benchmarks matching RE (default: the compute
#                 kernels — GEMM family, conv, train step, evaluation,
#                 FedAvg accumulation)
#   --skip-e2e    kernel micro benchmarks only
#   --e2e-only    end-to-end run only (writes BENCH_e2e.json)
#   --skip-net    skip the wire-protocol benchmarks
#   --net-only    wire-protocol benchmarks only (writes BENCH_net.json —
#                 CRC32 throughput, ClientUpdate encode/decode for each
#                 compression kind, and the flat-vs-tree round dispatch pair
#                 (§5j); regenerate when src/net or src/hier changes)
#   --skip-scale  skip the scale-pipeline benchmarks
#   --scale-only  scale-pipeline benchmarks only (writes BENCH_scale.json —
#                 sharded clustering + incremental re-cluster at 10k / 100k /
#                 1M clients; regenerate when src/scale changes)
#   --check       regression-gate mode: run to temp files and compare each
#                 google-benchmark suite against its committed BENCH_*.json
#                 via tools/bench_check.py instead of overwriting baselines.
#                 Each suite has its own noise threshold (kernels 0.6, net
#                 0.8, scale 1.0); override per suite with
#                 HACCS_BENCH_TOLERANCE_<SUITE> or globally with
#                 HACCS_BENCH_TOLERANCE. The e2e summary has its own schema
#                 and is not gated.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

out="$repo/BENCH_kernels.json"
filter='BM_Gemm|BM_Conv2d|BM_MlpTrainStep|BM_Evaluation|BM_FedAvgAccumulate'
net_filter='BM_Crc32|BM_EncodeUpdate|BM_DecodeUpdate|BM_FlatRoundDispatch|BM_TreeRoundDispatch'
run_micro=1
run_e2e=1
run_net=1
run_scale=1
check=0
for arg in "$@"; do
  case "$arg" in
    --filter=*) filter="${arg#--filter=}" ;;
    --skip-e2e) run_e2e=0 ;;
    --e2e-only) run_micro=0; run_net=0; run_scale=0 ;;
    --skip-net) run_net=0 ;;
    --net-only) run_micro=0; run_e2e=0; run_scale=0 ;;
    --skip-scale) run_scale=0 ;;
    --scale-only) run_micro=0; run_e2e=0; run_net=0 ;;
    --check) check=1 ;;
    *) out="$arg" ;;
  esac
done

# In check mode, benchmark output goes to a scratch dir and each suite is
# compared against its committed baseline instead of replacing it.
checkdir=""
if [[ "$check" -eq 1 ]]; then
  checkdir="$(mktemp -d)"
  trap 'rm -rf "$checkdir"' EXIT
fi

# check_or_keep SUITE_NAME BASELINE CURRENT: in check mode, gate CURRENT
# against BASELINE; otherwise CURRENT already is the baseline path.
check_or_keep() {
  if [[ "$check" -eq 1 ]]; then
    echo "checking $1 against $2"
    python3 "$repo/tools/bench_check.py" --suite "$1" "$2" "$3"
  else
    echo "wrote $3"
  fi
}

cmake -B "$repo/build" -S "$repo" -DCMAKE_BUILD_TYPE=Release
if [[ "$run_micro" -eq 1 ]]; then
  cmake --build "$repo/build" -j "$jobs" --target micro

  micro_out="$out"
  [[ "$check" -eq 1 ]] && micro_out="$checkdir/kernels.json"
  "$repo/build/bench/micro" \
    --benchmark_filter="$filter" \
    --benchmark_out="$micro_out" \
    --benchmark_out_format=json \
    --benchmark_repetitions=1

  check_or_keep kernels "$out" "$micro_out"
fi

if [[ "$run_net" -eq 1 ]]; then
  cmake --build "$repo/build" -j "$jobs" --target micro

  net_out="$repo/BENCH_net.json"
  [[ "$check" -eq 1 ]] && net_out="$checkdir/net.json"
  "$repo/build/bench/micro" \
    --benchmark_filter="$net_filter" \
    --benchmark_out="$net_out" \
    --benchmark_out_format=json \
    --benchmark_repetitions=1

  check_or_keep net "$repo/BENCH_net.json" "$net_out"
fi

if [[ "$run_scale" -eq 1 ]]; then
  # Scale-pipeline suite (DESIGN.md §5h): full sharded clustering and the
  # incremental re-cluster cycle at 10k / 100k / 1M synthetic clients. The
  # committed BENCH_scale.json pins the headline criterion — a 100k-client
  # incremental re-selection cycle under one second.
  cmake --build "$repo/build" -j "$jobs" --target scale_bench

  scale_out="$repo/BENCH_scale.json"
  [[ "$check" -eq 1 ]] && scale_out="$checkdir/scale.json"
  "$repo/build/bench/scale_bench" \
    --benchmark_out="$scale_out" \
    --benchmark_out_format=json \
    --benchmark_repetitions=1

  check_or_keep scale "$repo/BENCH_scale.json" "$scale_out"
fi

if [[ "$run_e2e" -eq 1 ]]; then
  # Fixed end-to-end config: the default femnist-like workload (50 clients,
  # 10/round) for 200 rounds. --summary-json captures wall time, TTA per
  # target, and dispatched/wasted client-rounds; the committed BENCH_e2e.json
  # is the regression reference for whole-pipeline cost (selection +
  # clustering + training + aggregation), not just kernels.
  cmake --build "$repo/build" -j "$jobs" --target haccs_run
  "$repo/build/tools/haccs_run" \
    --strategy=haccs-py --partition=majority --rounds=200 --seed=1 \
    --log-level=warn --summary-json="$repo/BENCH_e2e.json"
  echo "wrote $repo/BENCH_e2e.json"
fi
