// haccs_top — terminal dashboard for a live haccs_server run.
//
// Polls the server's /status endpoint (see --status-port on haccs_server)
// and renders a refreshing per-worker table: liveness, outstanding jobs,
// delivered updates, sessions, and last-heard age, plus the round/quorum
// header. Plain HTTP/1.0 over a raw socket — no dependencies beyond the
// repo's own table renderer.
//
//   ./haccs_server --status-port=0 --status-port-file=/tmp/sp ... &
//   ./haccs_top --port-file=/tmp/sp
//
// For scripted use, --iterations=N polls N times and exits (exit code 1 if
// every poll failed), and output is sequential frames when stdout is not a
// terminal.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/flags.hpp"
#include "src/common/table.hpp"

namespace {

void print_usage() {
  std::puts(
      "haccs_top — live dashboard for haccs_server --status-port\n"
      "  --port=P         status port (from the server's --status-port)\n"
      "  --port-file=F    read the port from F instead (server writes it\n"
      "                   via --status-port-file)\n"
      "  --host=H         server host (default 127.0.0.1)\n"
      "  --interval-ms=T  poll period (default 1000)\n"
      "  --iterations=N   poll N times then exit; 0 = forever (default 0)\n"
      "  --help           this text");
}

/// One-shot HTTP/1.0 GET; returns the response body, or empty on any
/// failure (connection refused mid-restart is a normal condition here).
std::string http_get(const std::string& host, std::uint16_t port,
                     const char* target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      std::string("GET ") + target + " HTTP/1.0\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t body = response.find("\r\n\r\n");
  if (body == std::string::npos || response.find("200") == std::string::npos) {
    return "";
  }
  return response.substr(body + 4);
}

// ---------------------------------------------------------------------------
// Tolerant field extraction: /status is flat-ish JSON emitted by our own
// JsonObject, so scanning for `"key":` is reliable without a full parser —
// and a field this tool does not know about is simply ignored, keeping old
// haccs_top binaries compatible with newer servers.

std::string extract_raw(const std::string& json, const std::string& key,
                        std::size_t from = 0) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = json.find(needle, from);
  if (at == std::string::npos) return "";
  std::size_t start = at + needle.size();
  std::size_t end = start;
  while (end < json.size() && json[end] != ',' && json[end] != '}' &&
         json[end] != ']') {
    ++end;
  }
  return json.substr(start, end - start);
}

double extract_number(const std::string& json, const std::string& key,
                      double fallback = 0.0, std::size_t from = 0) {
  const std::string raw = extract_raw(json, key, from);
  if (raw.empty()) return fallback;
  try {
    return std::stod(raw);
  } catch (...) {
    return fallback;
  }
}

std::string extract_bool(const std::string& json, const std::string& key,
                         std::size_t from = 0) {
  const std::string raw = extract_raw(json, key, from);
  return raw == "true" ? "yes" : "no";
}

std::string extract_string(const std::string& json, const std::string& key,
                           const std::string& fallback) {
  std::string raw = extract_raw(json, key);
  if (raw.size() >= 2 && raw.front() == '"' && raw.back() == '"') {
    return raw.substr(1, raw.size() - 2);
  }
  return fallback;
}

/// Splits the `"workers":[{...},{...}]` array into per-worker object
/// strings; nested arrays do not occur inside a worker record.
std::vector<std::string> worker_records(const std::string& json) {
  std::vector<std::string> out;
  const std::size_t at = json.find("\"workers\":[");
  if (at == std::string::npos) return out;
  std::size_t pos = at + std::strlen("\"workers\":[");
  while (pos < json.size() && json[pos] != ']') {
    if (json[pos] == '{') {
      const std::size_t close = json.find('}', pos);
      if (close == std::string::npos) break;
      out.push_back(json.substr(pos, close - pos + 1));
      pos = close + 1;
    } else {
      ++pos;
    }
  }
  return out;
}

std::string format_age(double age_ms) {
  if (age_ms < 0) return "never";
  if (age_ms < 10000) return std::to_string(static_cast<long>(age_ms)) + "ms";
  return haccs::Table::num(age_ms / 1000.0, 1) + "s";
}

std::uint16_t wait_for_port_file(const std::string& path, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    std::ifstream in(path);
    int port = 0;
    if (in && (in >> port) && port > 0 && port <= 65535) {
      return static_cast<std::uint16_t>(port);
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      throw std::runtime_error("timed out waiting for port file " + path);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace haccs;
  const Flags flags(argc, argv);
  if (flags.get_bool("help", false)) {
    print_usage();
    return 0;
  }
  const std::string host = flags.get_string("host", "127.0.0.1");
  auto port = static_cast<std::uint16_t>(flags.get_int("port", 0));
  const std::string port_file = flags.get_string("port-file", "");
  const int interval_ms = static_cast<int>(flags.get_int("interval-ms", 1000));
  const long iterations = static_cast<long>(flags.get_int("iterations", 0));
  flags.check_unused();
  if (port == 0 && port_file.empty()) {
    std::fprintf(stderr, "need --port or --port-file (--help for usage)\n");
    return 1;
  }
  if (!port_file.empty()) port = wait_for_port_file(port_file, 30000);

  const bool tty = ::isatty(1) != 0;
  long polled = 0;
  long succeeded = 0;
  for (;;) {
    const std::string status = http_get(host, port, "/status");
    ++polled;
    if (status.empty()) {
      std::printf("haccs_top: %s:%u unreachable (server down or draining)\n",
                  host.c_str(), port);
    } else {
      ++succeeded;
      if (tty) std::printf("\x1b[H\x1b[J");  // home + clear: refresh in place
      // Which tier of a hierarchical federation this endpoint is: "flat"
      // (classic single-tier server), "root" (tree root over mid-tier
      // aggregators), or "mid" (a haccs_agg process). Older servers omit
      // the field.
      const std::string tier = extract_string(status, "tier", "flat");
      std::printf(
          "haccs @ %s:%u [%s]   round %ld   up %ss   clusters %ld   "
          "quorum %.0f/%.0f (%s)   %s\n",
          host.c_str(), port, tier.c_str(),
          static_cast<long>(extract_number(status, "round")),
          Table::num(extract_number(status, "uptime_s"), 0).c_str(),
          static_cast<long>(extract_number(status, "clusters")),
          extract_number(status, "delivered"),
          extract_number(status, "quorum_target"),
          extract_bool(status, "quorum_met") == "yes" ? "met" : "pending",
          extract_bool(status, "collecting") == "yes" ? "collecting"
                                                      : "idle");
      std::printf("downlink %.1f KiB/s   uplink %.1f KiB/s\n",
                  extract_number(status, "downlink_rate_bps") / 1024.0,
                  extract_number(status, "uplink_rate_bps") / 1024.0);
      // Rows are the endpoint's direct peers: workers under a flat server
      // or a mid-tier aggregator, aggregators under a tree root. "QD" is
      // the per-peer outstanding-frame depth (frames queued behind a slow
      // connection — the §5j backpressure gauge; 0 on blocking links).
      Table table({tier == "root" ? "agg" : "worker", "alive", "outstanding",
                   "QD", "updates", "sessions", "last heard"});
      for (const std::string& w : worker_records(status)) {
        table.add_row(
            {std::to_string(static_cast<long>(extract_number(w, "id"))),
             extract_bool(w, "alive"),
             std::to_string(
                 static_cast<long>(extract_number(w, "outstanding"))),
             std::to_string(static_cast<long>(extract_number(w, "queued"))),
             std::to_string(static_cast<long>(extract_number(w, "updates"))),
             std::to_string(static_cast<long>(extract_number(w, "sessions"))),
             format_age(extract_number(w, "last_heard_age_ms", -1))});
      }
      table.print();
    }
    std::fflush(stdout);
    if (iterations > 0 && polled >= iterations) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  return succeeded > 0 ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "haccs_top: %s\n", e.what());
  return 1;
}
