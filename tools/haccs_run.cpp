// haccs_run — the command-line experiment driver.
//
// One binary to run any federated training experiment this library
// supports, entirely from flags: pick a dataset family, a partition, a
// selection strategy, heterogeneity and privacy knobs, optional dropout,
// train, and emit TTA rows / CSV curves / a model checkpoint.
//
//   haccs_run --strategy=haccs-py --partition=majority --rounds=200
//   haccs_run --strategy=oort --partition=dirichlet --alpha=0.3
//   haccs_run --strategy=haccs-pxy --dropout=0.1 --epsilon=0.1 \
//             --save-model=/tmp/model.bin --csv=/tmp/run
//
// Strategies: random | tifl | oort | haccs-py | haccs-pxy | gradient |
//             stratified | dpp | fedlecc | hics
// Partitions: majority | iid | klabels | feature-skew | dirichlet | groups
// Hostile-world shapes (--hostile): flash-crowd | diurnal | outage | drift |
//             targeted-stragglers
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>

#include "bench/harness.hpp"
#include "src/common/table.hpp"
#include "src/fl/run_summary.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/obs.hpp"
#include "src/core/gradient_selector.hpp"
#include "src/core/stratified_selector.hpp"
#include "src/nn/serialize.hpp"
#include "src/select/dpp.hpp"
#include "src/select/fedlecc.hpp"
#include "src/select/hics.hpp"
#include "src/select/oort.hpp"
#include "src/select/random_selector.hpp"
#include "src/select/tifl.hpp"

namespace {

void print_usage() {
  std::puts(
      "haccs_run — federated training experiment driver\n"
      "  --strategy=S    random|tifl|oort|haccs-py|haccs-pxy|haccs-qxy|"
      "gradient|stratified|dpp|fedlecc|hics (default haccs-py)\n"
      "  --partition=P   majority|iid|klabels|feature-skew|dirichlet|groups "
      "(default majority)\n"
      "  --dataset=D     mnist|femnist|cifar (default femnist)\n"
      "  --clients=N --per-round=K --rounds=R --classes=C --seed=N --full\n"
      "  --k=N           labels per client for --partition=klabels (default 5)\n"
      "  --alpha=A       Dirichlet concentration (default 0.5)\n"
      "  --rotation=DEG  feature-skew rotation (default 45)\n"
      "  --rho=R         Eq. 7 trade-off (default 0.5)\n"
      "  --epsilon=E     DP budget for summaries (default: no noise)\n"
      "  --dropout=F     per-epoch unavailable fraction (default 0)\n"
      "  --recluster=N   re-cluster every N epochs (default 0 = static)\n"
      "hostile-world shapes (TESTING.md):\n"
      "  --hostile=K     flash-crowd|diurnal|outage|drift|targeted-stragglers\n"
      "  --hostile-frac=F  affected fraction of clients/regions (default 0.3)\n"
      "  --hostile-at=N    epoch the shape arms at (default 1)\n"
      "  --hostile-span=N  duration / period knob (default 2)\n"
      "scaling (DESIGN.md §5h):\n"
      "  --scale         route clustering through the sketch/shard pipeline\n"
      "  --scale-shard=N          max clients per clustering shard (default 1024)\n"
      "  --scale-sketch-dim=N     sketch embedding width (default 32)\n"
      "  --scale-exact-cutoff=N   dense exact matrix at/below this shard size\n"
      "                           (default 256)\n"
      "  --scale-dirty=F          churn fraction triggering incremental\n"
      "                           re-cluster (default 0.05)\n"
      "  --fedprox       use the FedProx local objective\n"
      "  --mu=M          FedProx proximal coefficient (default 0.01)\n"
      "  --targets=CSV   accuracy targets, e.g. 0.5,0.7,0.8\n"
      "  --save-model=F  write final parameters as a checkpoint\n"
      "  --csv=PREFIX    write <prefix>_curve.csv\n"
      "telemetry (DESIGN.md §5e):\n"
      "  --trace=F       write Chrome trace-event JSON (open in Perfetto)\n"
      "  --metrics=F     write metrics registry snapshot JSON\n"
      "  --events=F      write per-round structured events (JSONL)\n"
      "  --log-level=L   debug|info|warn|error|off (default info)\n"
      "  --summary-json=F  write machine-readable run summary JSON\n"
      "  --help          this text");
}

std::vector<double> parse_targets(const std::string& csv) {
  std::vector<double> out;
  std::size_t start = 0;
  while (start < csv.size()) {
    auto comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    out.push_back(std::stod(csv.substr(start, comma - start)));
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace haccs;
  const auto wall_start = std::chrono::steady_clock::now();
  const Flags flags(argc, argv);
  if (flags.get_bool("help", false)) {
    print_usage();
    return 0;
  }

  bench::ExperimentConfig exp;
  exp.apply_flags(flags);
  const std::string strategy = flags.get_string("strategy", "haccs-py");
  const std::string partition = flags.get_string("partition", "majority");
  const auto k_labels = static_cast<std::size_t>(flags.get_int("k", 5));
  const double alpha = flags.get_double("alpha", 0.5);
  const double rotation = flags.get_double("rotation", 45.0);
  const double rho = flags.get_double("rho", 0.5);
  const double epsilon = flags.get_double("epsilon", 0.0);
  const std::string mechanism = flags.get_string("mechanism", "laplace");
  const double dropout_fraction = flags.get_double("dropout", 0.0);
  const std::string hostile = flags.get_string("hostile", "");
  const double hostile_frac = flags.get_double("hostile-frac", 0.3);
  const auto hostile_at =
      static_cast<std::size_t>(flags.get_int("hostile-at", 1));
  const auto hostile_span =
      static_cast<std::size_t>(flags.get_int("hostile-span", 2));
  const auto recluster =
      static_cast<std::size_t>(flags.get_int("recluster", 0));
  const bool scale_enabled = flags.get_bool("scale", false);
  const auto scale_shard =
      static_cast<std::size_t>(flags.get_int("scale-shard", 1024));
  const auto scale_sketch_dim =
      static_cast<std::size_t>(flags.get_int("scale-sketch-dim", 32));
  const auto scale_exact_cutoff =
      static_cast<std::size_t>(flags.get_int("scale-exact-cutoff", 256));
  const double scale_dirty = flags.get_double("scale-dirty", 0.05);
  const bool fedprox = flags.get_bool("fedprox", false);
  const double mu = flags.get_double("mu", 0.01);
  const auto targets = parse_targets(flags.get_string("targets", "0.5,0.7,0.8"));
  const std::string save_model = flags.get_string("save-model", "");
  const std::string csv = flags.get_string("csv", "");
  const std::string summary_json = flags.get_string("summary-json", "");
  flags.check_unused();

  // ---- data ----
  auto gen = exp.make_generator();
  Rng rng(exp.seed);
  const auto pcfg = exp.make_partition_config();
  data::FederatedDataset fed;
  if (partition == "majority") {
    fed = data::partition_majority_label(gen, pcfg, rng);
  } else if (partition == "iid") {
    fed = data::partition_iid(gen, pcfg, rng);
  } else if (partition == "klabels") {
    fed = data::partition_k_random_labels(gen, pcfg, k_labels, rng);
  } else if (partition == "feature-skew") {
    fed = data::partition_feature_skew(gen, pcfg, rotation, rng);
  } else if (partition == "dirichlet") {
    fed = data::partition_dirichlet(gen, pcfg, alpha, rng);
  } else if (partition == "groups") {
    fed = data::partition_group_table(gen, pcfg, rng);
  } else {
    std::fprintf(stderr, "unknown partition '%s'\n", partition.c_str());
    return 1;
  }

  // ---- engine ----
  auto engine_config = exp.make_engine_config(fed);
  if (fedprox) {
    engine_config.algorithm = fl::LocalAlgorithm::FedProx;
    engine_config.fedprox_mu = mu;
  }
  if (hostile == "targeted-stragglers") {
    engine_config.faults.targeted_fraction = hostile_frac;
    engine_config.faults.targeted_from = hostile_at;
  } else if (hostile == "drift") {
    // Mid-training label-distribution drift: redraw a fraction of every
    // client's training labels at the trigger epoch. The trainer holds a
    // reference to `fed`, so the in-place mutation is what it trains on.
    engine_config.on_epoch_begin = [&fed, &gen, hostile_frac, hostile_at,
                                    seed = exp.seed + 307](std::size_t epoch) {
      if (epoch != hostile_at) return;
      Rng drift_rng(seed);
      data::apply_label_drift(fed, gen, hostile_frac, drift_rng);
    };
  }
  fl::FederatedTrainer trainer(fed, core::default_model_factory(fed, 99),
                               engine_config);

  // ---- strategy ----
  core::HaccsConfig haccs;
  haccs.rho = rho;
  haccs.recluster_every = recluster;
  haccs.initial_loss = engine_config.initial_loss;
  haccs.scale.enabled = scale_enabled;
  haccs.scale.shard_size = scale_shard;
  haccs.scale.sketch_dim = scale_sketch_dim;
  haccs.scale.exact_cutoff = scale_exact_cutoff;
  haccs.scale.dirty_threshold = scale_dirty;
  if (epsilon > 0.0) {
    haccs.privacy = stats::PrivacyConfig{epsilon};
    if (mechanism == "gaussian") {
      haccs.privacy.mechanism = stats::NoiseMechanism::Gaussian;
    } else if (mechanism != "laplace") {
      std::fprintf(stderr, "unknown mechanism '%s'\n", mechanism.c_str());
      return 1;
    }
  }

  std::unique_ptr<fl::ClientSelector> selector;
  if (strategy == "random") {
    selector = std::make_unique<select::RandomSelector>();
  } else if (strategy == "tifl") {
    select::TiflConfig cfg;
    cfg.expected_rounds = engine_config.rounds;
    cfg.initial_loss = engine_config.initial_loss;
    selector = std::make_unique<select::TiflSelector>(cfg);
  } else if (strategy == "oort") {
    select::OortConfig cfg;
    cfg.initial_loss = engine_config.initial_loss;
    selector = std::make_unique<select::OortSelector>(cfg);
  } else if (strategy == "haccs-py") {
    haccs.summary = stats::SummaryKind::Response;
    selector = std::make_unique<core::HaccsSelector>(fed, haccs);
  } else if (strategy == "haccs-pxy") {
    haccs.summary = stats::SummaryKind::Conditional;
    selector = std::make_unique<core::HaccsSelector>(fed, haccs);
  } else if (strategy == "haccs-qxy") {
    haccs.summary = stats::SummaryKind::Quantile;
    selector = std::make_unique<core::HaccsSelector>(fed, haccs);
  } else if (strategy == "gradient") {
    core::GradientSelectorConfig cfg;
    cfg.scheduling = haccs;
    selector = std::make_unique<core::GradientClusterSelector>(cfg);
  } else if (strategy == "stratified") {
    selector = std::make_unique<core::StratifiedSelector>(fed, haccs);
  } else if (strategy == "dpp") {
    select::DppConfig cfg;
    cfg.initial_loss = engine_config.initial_loss;
    selector = std::make_unique<select::DppSelector>(fed, cfg);
  } else if (strategy == "fedlecc") {
    select::FedLeccConfig cfg;
    cfg.initial_loss = engine_config.initial_loss;
    selector = std::make_unique<select::FedLeccSelector>(fed, cfg);
  } else if (strategy == "hics") {
    select::HicsConfig cfg;
    cfg.initial_loss = engine_config.initial_loss;
    selector = std::make_unique<select::HicsSelector>(fed, cfg);
  } else {
    std::fprintf(stderr, "unknown strategy '%s' (--help for options)\n",
                 strategy.c_str());
    return 1;
  }

  // ---- run ----
  std::fprintf(stderr, "running %s on %s/%s: %zu clients, %zu/round, %zu rounds\n",
               selector->name().c_str(), bench::to_string(exp.dataset).c_str(),
               partition.c_str(), fed.num_clients(),
               engine_config.clients_per_round, engine_config.rounds);
  std::unique_ptr<sim::DropoutSchedule> schedule;
  if (dropout_fraction > 0.0) {
    schedule = sim::make_per_epoch_dropout(fed.num_clients(), dropout_fraction,
                                           exp.seed + 101);
  }
  std::unique_ptr<sim::DropoutSchedule> shape;
  if (hostile == "flash-crowd") {
    shape = sim::make_flash_crowd(fed.num_clients(), hostile_frac, hostile_at,
                                  exp.seed + 211);
  } else if (hostile == "diurnal") {
    shape = sim::make_diurnal_wave(fed.num_clients(), hostile_frac,
                                   hostile_span + 1, exp.seed + 211);
  } else if (hostile == "outage") {
    shape = sim::make_regional_outage(fed.num_clients(), 4, hostile_frac,
                                      hostile_at, hostile_span, exp.seed + 211);
  } else if (!hostile.empty() && hostile != "none" && hostile != "drift" &&
             hostile != "targeted-stragglers") {
    std::fprintf(stderr, "unknown hostile shape '%s' (--help for options)\n",
                 hostile.c_str());
    return 1;
  }
  if (shape) {
    schedule = schedule ? sim::make_intersection(std::move(schedule),
                                                 std::move(shape))
                        : std::move(shape);
  }
  fl::TrainingHistory history;
  if (schedule) {
    history = trainer.run(*selector, *schedule);
  } else {
    history = trainer.run(*selector);
  }

  // ---- report ----
  Table summary({"metric", "value"});
  summary.add_row({"strategy", selector->name()});
  summary.add_row({"partition", partition});
  summary.add_row({"final_accuracy", Table::num(history.final_accuracy(), 4)});
  summary.add_row({"best_accuracy", Table::num(history.best_accuracy(), 4)});
  summary.add_row({"total_sim_time_s", Table::num(history.total_time(), 1)});
  summary.add_row(
      {"uplink_bytes", std::to_string(history.total_uplink_bytes())});
  summary.add_row(
      {"downlink_bytes", std::to_string(history.total_downlink_bytes())});
  for (double t : targets) {
    summary.add_row({"tta@" + Table::num(100 * t, 0) + "%",
                     fl::format_tta(history.time_to_accuracy(t))});
  }
  const auto counts = history.selection_counts(fed.num_clients());
  std::size_t included = 0;
  for (std::size_t c : counts) {
    if (c > 0) ++included;
  }
  summary.add_row({"devices_included", std::to_string(included) + "/" +
                                           std::to_string(fed.num_clients())});
  summary.print();

  if (!csv.empty()) {
    Table curve({"epoch", "sim_time_s", "accuracy"});
    double last = -1.0;
    for (const auto& r : history.records()) {
      if (r.global_accuracy == last) continue;
      last = r.global_accuracy;
      curve.add_row({std::to_string(r.epoch), Table::num(r.sim_time_s, 2),
                     Table::num(r.global_accuracy, 4)});
    }
    curve.write_csv(csv + "_curve.csv");
    std::fprintf(stderr, "wrote %s_curve.csv\n", csv.c_str());
  }

  if (!save_model.empty()) {
    auto model = core::default_model_factory(fed, 99)();
    model.set_parameters(trainer.final_parameters());
    nn::save_parameters(model, save_model);
    std::fprintf(stderr, "wrote trained checkpoint to %s\n",
                 save_model.c_str());
  }

  if (!summary_json.empty()) {
    std::size_t dispatched_total = 0, wasted_total = 0;
    for (const auto& r : history.records()) {
      dispatched_total += r.dispatched;
      wasted_total += r.wasted();
    }
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    obs::JsonObject tta;
    for (double t : targets) {
      const std::string key = Table::num(t, 2);
      tta.field(key.c_str(), history.time_to_accuracy(t));
    }
    obs::JsonObject o;
    o.field("strategy", selector->name())
        .field("partition", partition)
        .field("dataset", bench::to_string(exp.dataset))
        .field("rounds", engine_config.rounds)
        .field("clients", fed.num_clients())
        .field("per_round", engine_config.clients_per_round)
        .field("seed", exp.seed);
    fl::append_summary_history(o, history);
    o.field("wall_time_s", wall_s)
        .field("dispatched_client_rounds", dispatched_total)
        .field("wasted_client_rounds", wasted_total);
    fl::append_summary_counters(o);
    o.field_raw("tta_s", tta.str());
    if (!fl::write_summary_json(o, summary_json)) return 1;
  }

  // Telemetry artifacts would also be written by the atexit hook; flushing
  // here surfaces any write error while stderr is still in context.
  obs::flush();
  return 0;
}
