#!/usr/bin/env python3
"""Line-coverage report from gcov data, no gcovr required.

Walks the build tree for .gcda files produced by a -DHACCS_COVERAGE=ON build,
asks gcov for JSON intermediate output, and aggregates per-file line coverage
for sources under --filter. This is the fallback backend for the `coverage`
CMake target on machines without gcovr (see TESTING.md "Coverage").

Usage:
  tools/coverage.py --build-dir build-cov --source-root . --filter src/
"""

import argparse
import json
import os
import subprocess
import sys
from collections import defaultdict


def find_gcda(build_dir):
    for root, _dirs, files in os.walk(build_dir):
        for name in files:
            if name.endswith(".gcda"):
                yield os.path.join(root, name)


def gcov_json(gcda, gcov):
    """One parsed gcov JSON document for a single .gcda, or None on failure."""
    try:
        proc = subprocess.run(
            [gcov, "--json-format", "--stdout", os.path.basename(gcda)],
            cwd=os.path.dirname(gcda),
            capture_output=True,
            text=True,
            check=True,
        )
    except (subprocess.CalledProcessError, OSError) as err:
        print(f"warning: gcov failed on {gcda}: {err}", file=sys.stderr)
        return None
    # --stdout emits one JSON document per input file; we pass exactly one.
    text = proc.stdout.strip()
    if not text:
        return None
    try:
        return json.loads(text)
    except json.JSONDecodeError as err:
        print(f"warning: unparseable gcov output for {gcda}: {err}",
              file=sys.stderr)
        return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", required=True)
    parser.add_argument("--source-root", required=True)
    parser.add_argument("--filter", default="src/",
                        help="source path prefix (relative to --source-root)")
    parser.add_argument("--gcov", default="gcov")
    parser.add_argument("--fail-under", type=float, default=None,
                        help="exit 1 if total line coverage %% is below this")
    args = parser.parse_args()

    source_root = os.path.realpath(args.source_root)
    # file -> line number -> max execution count seen across translation units.
    hits = defaultdict(lambda: defaultdict(int))
    gcda_count = 0
    for gcda in sorted(find_gcda(args.build_dir)):
        doc = gcov_json(gcda, args.gcov)
        if doc is None:
            continue
        gcda_count += 1
        for entry in doc.get("files", []):
            path = entry.get("file", "")
            if not os.path.isabs(path):
                path = os.path.join(source_root, path)
            rel = os.path.relpath(os.path.realpath(path), source_root)
            if not rel.startswith(args.filter):
                continue
            lines = hits[rel]
            for line in entry.get("lines", []):
                number = line.get("line_number")
                if number is not None:
                    lines[number] = max(lines[number], line.get("count", 0))

    if gcda_count == 0:
        print("no .gcda files found — build with -DHACCS_COVERAGE=ON and run "
              "the tests first", file=sys.stderr)
        return 1

    total_lines = total_covered = 0
    width = max((len(f) for f in hits), default=10)
    for rel in sorted(hits):
        lines = hits[rel]
        covered = sum(1 for count in lines.values() if count > 0)
        total_lines += len(lines)
        total_covered += covered
        pct = 100.0 * covered / len(lines) if lines else 0.0
        print(f"{rel:<{width}}  {covered:5d}/{len(lines):<5d}  {pct:6.1f}%")
    pct = 100.0 * total_covered / total_lines if total_lines else 0.0
    print("-" * (width + 22))
    print(f"{'TOTAL':<{width}}  {total_covered:5d}/{total_lines:<5d}  "
          f"{pct:6.1f}%")
    if args.fail_under is not None and pct < args.fail_under:
        print(f"FAIL: {pct:.1f}% < --fail-under {args.fail_under:.1f}%",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
