#!/usr/bin/env bash
# Serving-mode smoke tests across real processes (DESIGN.md §5g):
#
#   1. Chaos smoke — a 2-worker TCP run where every link drops ~5% of frames
#      and injects occasional disconnects, with heartbeat liveness, quorum
#      commit, and checkpointing enabled. The run must complete every round
#      (no hang); lost updates are re-covered by reconnection and quorum
#      degradation.
#   2. Crash-resume smoke — the same workload is SIGKILLed shortly after its
#      first checkpoint lands and restarted with --resume; the resumed run's
#      final metrics must match an uninterrupted reference bit-for-bit.
#   3. Ops-plane smoke (DESIGN.md §5i) — a traced run with the exposition
#      endpoint up: /healthz, /metrics, and /status are scraped mid-run, a
#      worker is SIGKILLed, the server is SIGTERMed, and the flight-recorder
#      dump plus the merged Chrome trace must both be parseable afterwards.
#      Set HACCS_SMOKE_ARTIFACT_DIR to keep the dump + trace (CI uploads
#      them as artifacts).
#
# Usage: tools/serving_smoke.sh [build-dir]   (default: <repo>/build)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
obs_dir="$(mktemp -d)"
trap 'rm -rf "$obs_dir"' EXIT

echo "== chaos smoke: serving mode completes under a hostile TCP wire =="
chaos_flags=(--rounds=3 --clients=12 --per-round=4 --classes=6 --seed=7)
rm -f "$obs_dir/port"
timeout 180 "$build/examples/haccs_server" \
  --workers=2 --port=0 --port-file="$obs_dir/port" \
  --summary-json="$obs_dir/chaos_server.json" \
  --checkpoint="$obs_dir/chaos_ck.bin" \
  --heartbeat-timeout-ms=5000 --quorum=0.75 --quorum-grace-ms=200 \
  --chaos-seed=7 --chaos-drop=0.05 --chaos-disconnect=0.01 \
  "${chaos_flags[@]}" &
server_pid=$!
timeout 180 "$build/examples/haccs_worker" \
  --worker-id=0 --workers=2 --port-file="$obs_dir/port" \
  --heartbeat-interval-ms=500 --reconnect-attempts=40 \
  --chaos-seed=7 --chaos-drop=0.05 "${chaos_flags[@]}" &
w0_pid=$!
timeout 180 "$build/examples/haccs_worker" \
  --worker-id=1 --workers=2 --port-file="$obs_dir/port" \
  --heartbeat-interval-ms=500 --reconnect-attempts=40 \
  --chaos-seed=8 --chaos-drop=0.05 "${chaos_flags[@]}" &
w1_pid=$!
wait "$server_pid" && wait "$w0_pid" && wait "$w1_pid"
if command -v python3 >/dev/null; then
  python3 - "$obs_dir" <<'EOF'
import json, sys
chaos = json.load(open(sys.argv[1] + "/chaos_server.json"))
assert chaos["rounds_completed"] == chaos["rounds"] == 3, chaos
assert chaos["checkpoints_written"] >= 3, chaos
print(f"chaos smoke OK: {chaos['rounds_completed']} rounds under chaos, "
      f"{chaos['net_reconnects']} reconnects, "
      f"{chaos['rounds_quorum_degraded']} quorum-degraded rounds")
EOF
else
  grep -q '"rounds_completed": 3' "$obs_dir/chaos_server.json"
  echo "chaos smoke OK (python3 not found; grepped rounds_completed)"
fi

echo "== crash-resume smoke: kill -9 mid-run, --resume matches uninterrupted =="
resume_flags=(--rounds=60 --clients=12 --per-round=4 --classes=6 --seed=7)
rm -f "$obs_dir/port" "$obs_dir/resume_ck.bin"
timeout 300 "$build/examples/haccs_server" \
  --workers=2 --port=0 --port-file="$obs_dir/port" \
  --summary-json="$obs_dir/resume_ref.json" "${resume_flags[@]}" &
server_pid=$!
timeout 300 "$build/examples/haccs_worker" \
  --worker-id=0 --workers=2 --port-file="$obs_dir/port" "${resume_flags[@]}" &
w0_pid=$!
timeout 300 "$build/examples/haccs_worker" \
  --worker-id=1 --workers=2 --port-file="$obs_dir/port" "${resume_flags[@]}" &
w1_pid=$!
wait "$server_pid" && wait "$w0_pid" && wait "$w1_pid"
rm -f "$obs_dir/port"
# No `timeout` wrapper on this server: it is about to get SIGKILLed directly
# (killing a timeout wrapper would orphan the real process), and if the kill
# races with a fast run finishing, the server exits on its own anyway.
"$build/examples/haccs_server" \
  --workers=2 --port=0 --port-file="$obs_dir/port" \
  --checkpoint="$obs_dir/resume_ck.bin" "${resume_flags[@]}" &
server_pid=$!
timeout 300 "$build/examples/haccs_worker" \
  --worker-id=0 --workers=2 --port-file="$obs_dir/port" \
  --reconnect-attempts=60 "${resume_flags[@]}" &
w0_pid=$!
timeout 300 "$build/examples/haccs_worker" \
  --worker-id=1 --workers=2 --port-file="$obs_dir/port" \
  --reconnect-attempts=60 "${resume_flags[@]}" &
w1_pid=$!
while [[ ! -s "$obs_dir/resume_ck.bin" ]]; do sleep 0.05; done
sleep 0.2
kill -9 "$server_pid" 2>/dev/null
wait "$server_pid" 2>/dev/null || true
rm -f "$obs_dir/port"
timeout 300 "$build/examples/haccs_server" \
  --workers=2 --port=0 --port-file="$obs_dir/port" \
  --checkpoint="$obs_dir/resume_ck.bin" --resume \
  --summary-json="$obs_dir/resume_res.json" "${resume_flags[@]}"
wait "$w0_pid" && wait "$w1_pid"
if command -v python3 >/dev/null; then
  python3 - "$obs_dir" <<'EOF'
import json, sys
obs_dir = sys.argv[1]
ref = json.load(open(obs_dir + "/resume_ref.json"))
res = json.load(open(obs_dir + "/resume_res.json"))
assert res["resumed"] is True, res
assert res["rounds_completed"] == ref["rounds_completed"] == 60, (ref, res)
for key in ("final_accuracy", "best_accuracy", "total_sim_time_s",
            "uplink_bytes", "downlink_bytes"):
    assert ref[key] == res[key], (key, ref[key], res[key])
print(f"crash-resume OK: resumed run matches the uninterrupted one "
      f"(final_accuracy={res['final_accuracy']})")
EOF
else
  grep -q '"resumed": true' "$obs_dir/resume_res.json"
  echo "crash-resume OK (python3 not found; grepped resumed flag)"
fi

if command -v python3 >/dev/null; then
  echo "== ops-plane smoke: scrape, kill a worker, SIGTERM, flight dump =="
  ops_flags=(--rounds=500 --clients=12 --per-round=4 --classes=6 --seed=7)
  rm -f "$obs_dir/port" "$obs_dir/status_port"
  mkdir -p "$obs_dir/flight"
  # No `timeout` wrapper: this server is SIGTERMed by hand below, and a
  # wrapper would swallow the signal instead of forwarding the drain.
  "$build/examples/haccs_server" \
    --workers=2 --port=0 --port-file="$obs_dir/port" \
    --status-port=0 --status-port-file="$obs_dir/status_port" \
    --trace="$obs_dir/ops_trace.json" --flight-dir="$obs_dir/flight" \
    --summary-json="$obs_dir/ops_server.json" \
    --heartbeat-timeout-ms=2000 --quorum=0.5 --quorum-grace-ms=200 \
    "${ops_flags[@]}" &
  server_pid=$!
  # Worker 0 is not wrapped in `timeout`: it is about to get SIGKILLed
  # directly, and killing a wrapper would orphan the real process.
  "$build/examples/haccs_worker" \
    --worker-id=0 --workers=2 --port-file="$obs_dir/port" \
    --heartbeat-interval-ms=500 --reconnect-attempts=40 "${ops_flags[@]}" &
  w0_pid=$!
  timeout 300 "$build/examples/haccs_worker" \
    --worker-id=1 --workers=2 --port-file="$obs_dir/port" \
    --heartbeat-interval-ms=500 --reconnect-attempts=40 "${ops_flags[@]}" &
  w1_pid=$!
  while [[ ! -s "$obs_dir/status_port" ]]; do sleep 0.05; done
  sleep 1  # let a few rounds commit before scraping
  python3 - "$obs_dir" <<'EOF'
import sys, urllib.request
port = open(sys.argv[1] + "/status_port").read().strip()
def get(target):
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{target}",
                                timeout=10) as r:
        assert r.status == 200, (target, r.status)
        return r.read().decode()
assert get("/healthz").strip() == "ok"
metrics = get("/metrics")
assert "# TYPE" in metrics and "haccs_" in metrics, metrics[:200]
status = get("/status")
assert '"workers":[' in status and '"round":' in status, status[:200]
print(f"mid-run scrape OK: /healthz, /metrics ({len(metrics)} B), /status")
EOF
  kill -9 "$w0_pid" 2>/dev/null || true
  wait "$w0_pid" 2>/dev/null || true
  sleep 1  # the server must notice the dead worker and keep committing
  kill -TERM "$server_pid"
  wait "$server_pid"
  wait "$w1_pid" || true
  python3 - "$obs_dir" <<'EOF'
import glob, json, sys
obs_dir = sys.argv[1]
dumps = glob.glob(obs_dir + "/flight/flight-*.json")
assert dumps, "no flight-recorder dump written"
flight = json.load(open(dumps[0]))
for key in ("reason", "rounds", "log_lines", "metrics"):
    assert key in flight, (key, list(flight))
assert flight["reason"] == "sigterm-drain", flight["reason"]
trace = json.load(open(obs_dir + "/ops_trace.json"))
events = trace["traceEvents"]
pids = {e["pid"] for e in events}
assert 1 in pids and len(pids) >= 2, pids
rounds = {e["args"]["span"] for e in events
          if e.get("name") == "round" and "args" in e}
child = [e for e in events
         if e.get("name") == "local_train" and e.get("pid", 1) != 1]
assert child, "no worker local_train spans in the merged trace"
for e in child:
    assert e["args"]["parent"] in rounds, e
print(f"ops-plane OK: flight dump ({flight['reason']}, "
      f"{len(flight['rounds'])} rounds ringed), merged trace with "
      f"{len(pids)} tracks and {len(child)} worker spans")
EOF
  if [[ -n "${HACCS_SMOKE_ARTIFACT_DIR:-}" ]]; then
    mkdir -p "$HACCS_SMOKE_ARTIFACT_DIR"
    cp "$obs_dir"/flight/flight-*.json "$obs_dir/ops_trace.json" \
       "$HACCS_SMOKE_ARTIFACT_DIR/" 2>/dev/null || true
    echo "kept ops artifacts in $HACCS_SMOKE_ARTIFACT_DIR"
  fi
else
  echo "== ops-plane smoke skipped (python3 not found) =="
fi

echo "== serving smoke passed =="
