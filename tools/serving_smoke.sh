#!/usr/bin/env bash
# Serving-mode smoke tests across real processes (DESIGN.md §5g):
#
#   1. Chaos smoke — a 2-worker TCP run where every link drops ~5% of frames
#      and injects occasional disconnects, with heartbeat liveness, quorum
#      commit, and checkpointing enabled. The run must complete every round
#      (no hang); lost updates are re-covered by reconnection and quorum
#      degradation.
#   2. Crash-resume smoke — the same workload is SIGKILLed shortly after its
#      first checkpoint lands and restarted with --resume; the resumed run's
#      final metrics must match an uninterrupted reference bit-for-bit.
#   3. Ops-plane smoke (DESIGN.md §5i) — a traced run with the exposition
#      endpoint up: /healthz, /metrics, and /status are scraped mid-run, a
#      worker is SIGKILLed, the server is SIGTERMed, and the flight-recorder
#      dump plus the merged Chrome trace must both be parseable afterwards.
#      Set HACCS_SMOKE_ARTIFACT_DIR to keep the dump + trace (CI uploads
#      them as artifacts).
#   4. 3-tier smoke (DESIGN.md §5j) — root + 2 mid-tier aggregators + 4
#      workers across 7 real processes over TCP. A clean traced run checks
#      per-tier byte accounting (each aggregator's upstream counters must sum
#      exactly to the root's transport counters) and the merged cross-tier
#      trace; a second run drops ~5% of the frames on one aggregator's
#      uplink under a tight root collection budget and must still complete
#      every round (lost subtree contributions are salvaged or torn per
#      §5j, never hung).
#
# Usage: tools/serving_smoke.sh [build-dir]   (default: <repo>/build)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
obs_dir="$(mktemp -d)"
trap 'rm -rf "$obs_dir"' EXIT

echo "== chaos smoke: serving mode completes under a hostile TCP wire =="
chaos_flags=(--rounds=3 --clients=12 --per-round=4 --classes=6 --seed=7)
rm -f "$obs_dir/port"
timeout 180 "$build/examples/haccs_server" \
  --workers=2 --port=0 --port-file="$obs_dir/port" \
  --summary-json="$obs_dir/chaos_server.json" \
  --checkpoint="$obs_dir/chaos_ck.bin" \
  --heartbeat-timeout-ms=5000 --quorum=0.75 --quorum-grace-ms=200 \
  --chaos-seed=7 --chaos-drop=0.05 --chaos-disconnect=0.01 \
  "${chaos_flags[@]}" &
server_pid=$!
timeout 180 "$build/examples/haccs_worker" \
  --worker-id=0 --workers=2 --port-file="$obs_dir/port" \
  --heartbeat-interval-ms=500 --reconnect-attempts=40 \
  --chaos-seed=7 --chaos-drop=0.05 "${chaos_flags[@]}" &
w0_pid=$!
timeout 180 "$build/examples/haccs_worker" \
  --worker-id=1 --workers=2 --port-file="$obs_dir/port" \
  --heartbeat-interval-ms=500 --reconnect-attempts=40 \
  --chaos-seed=8 --chaos-drop=0.05 "${chaos_flags[@]}" &
w1_pid=$!
wait "$server_pid" && wait "$w0_pid" && wait "$w1_pid"
if command -v python3 >/dev/null; then
  python3 - "$obs_dir" <<'EOF'
import json, sys
chaos = json.load(open(sys.argv[1] + "/chaos_server.json"))
assert chaos["rounds_completed"] == chaos["rounds"] == 3, chaos
assert chaos["checkpoints_written"] >= 3, chaos
print(f"chaos smoke OK: {chaos['rounds_completed']} rounds under chaos, "
      f"{chaos['net_reconnects']} reconnects, "
      f"{chaos['rounds_quorum_degraded']} quorum-degraded rounds")
EOF
else
  grep -q '"rounds_completed": 3' "$obs_dir/chaos_server.json"
  echo "chaos smoke OK (python3 not found; grepped rounds_completed)"
fi

echo "== crash-resume smoke: kill -9 mid-run, --resume matches uninterrupted =="
resume_flags=(--rounds=60 --clients=12 --per-round=4 --classes=6 --seed=7)
rm -f "$obs_dir/port" "$obs_dir/resume_ck.bin"
timeout 300 "$build/examples/haccs_server" \
  --workers=2 --port=0 --port-file="$obs_dir/port" \
  --summary-json="$obs_dir/resume_ref.json" "${resume_flags[@]}" &
server_pid=$!
timeout 300 "$build/examples/haccs_worker" \
  --worker-id=0 --workers=2 --port-file="$obs_dir/port" "${resume_flags[@]}" &
w0_pid=$!
timeout 300 "$build/examples/haccs_worker" \
  --worker-id=1 --workers=2 --port-file="$obs_dir/port" "${resume_flags[@]}" &
w1_pid=$!
wait "$server_pid" && wait "$w0_pid" && wait "$w1_pid"
rm -f "$obs_dir/port"
# No `timeout` wrapper on this server: it is about to get SIGKILLed directly
# (killing a timeout wrapper would orphan the real process), and if the kill
# races with a fast run finishing, the server exits on its own anyway.
"$build/examples/haccs_server" \
  --workers=2 --port=0 --port-file="$obs_dir/port" \
  --checkpoint="$obs_dir/resume_ck.bin" "${resume_flags[@]}" &
server_pid=$!
timeout 300 "$build/examples/haccs_worker" \
  --worker-id=0 --workers=2 --port-file="$obs_dir/port" \
  --reconnect-attempts=60 "${resume_flags[@]}" &
w0_pid=$!
timeout 300 "$build/examples/haccs_worker" \
  --worker-id=1 --workers=2 --port-file="$obs_dir/port" \
  --reconnect-attempts=60 "${resume_flags[@]}" &
w1_pid=$!
while [[ ! -s "$obs_dir/resume_ck.bin" ]]; do sleep 0.05; done
sleep 0.2
kill -9 "$server_pid" 2>/dev/null
wait "$server_pid" 2>/dev/null || true
rm -f "$obs_dir/port"
timeout 300 "$build/examples/haccs_server" \
  --workers=2 --port=0 --port-file="$obs_dir/port" \
  --checkpoint="$obs_dir/resume_ck.bin" --resume \
  --summary-json="$obs_dir/resume_res.json" "${resume_flags[@]}"
wait "$w0_pid" && wait "$w1_pid"
if command -v python3 >/dev/null; then
  python3 - "$obs_dir" <<'EOF'
import json, sys
obs_dir = sys.argv[1]
ref = json.load(open(obs_dir + "/resume_ref.json"))
res = json.load(open(obs_dir + "/resume_res.json"))
assert res["resumed"] is True, res
assert res["rounds_completed"] == ref["rounds_completed"] == 60, (ref, res)
for key in ("final_accuracy", "best_accuracy", "total_sim_time_s",
            "uplink_bytes", "downlink_bytes"):
    assert ref[key] == res[key], (key, ref[key], res[key])
print(f"crash-resume OK: resumed run matches the uninterrupted one "
      f"(final_accuracy={res['final_accuracy']})")
EOF
else
  grep -q '"resumed": true' "$obs_dir/resume_res.json"
  echo "crash-resume OK (python3 not found; grepped resumed flag)"
fi

if command -v python3 >/dev/null; then
  echo "== ops-plane smoke: scrape, kill a worker, SIGTERM, flight dump =="
  ops_flags=(--rounds=500 --clients=12 --per-round=4 --classes=6 --seed=7)
  rm -f "$obs_dir/port" "$obs_dir/status_port"
  mkdir -p "$obs_dir/flight"
  # No `timeout` wrapper: this server is SIGTERMed by hand below, and a
  # wrapper would swallow the signal instead of forwarding the drain.
  "$build/examples/haccs_server" \
    --workers=2 --port=0 --port-file="$obs_dir/port" \
    --status-port=0 --status-port-file="$obs_dir/status_port" \
    --trace="$obs_dir/ops_trace.json" --flight-dir="$obs_dir/flight" \
    --summary-json="$obs_dir/ops_server.json" \
    --heartbeat-timeout-ms=2000 --quorum=0.5 --quorum-grace-ms=200 \
    "${ops_flags[@]}" &
  server_pid=$!
  # Worker 0 is not wrapped in `timeout`: it is about to get SIGKILLed
  # directly, and killing a wrapper would orphan the real process.
  "$build/examples/haccs_worker" \
    --worker-id=0 --workers=2 --port-file="$obs_dir/port" \
    --heartbeat-interval-ms=500 --reconnect-attempts=40 "${ops_flags[@]}" &
  w0_pid=$!
  timeout 300 "$build/examples/haccs_worker" \
    --worker-id=1 --workers=2 --port-file="$obs_dir/port" \
    --heartbeat-interval-ms=500 --reconnect-attempts=40 "${ops_flags[@]}" &
  w1_pid=$!
  while [[ ! -s "$obs_dir/status_port" ]]; do sleep 0.05; done
  sleep 1  # let a few rounds commit before scraping
  python3 - "$obs_dir" <<'EOF'
import sys, urllib.request
port = open(sys.argv[1] + "/status_port").read().strip()
def get(target):
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{target}",
                                timeout=10) as r:
        assert r.status == 200, (target, r.status)
        return r.read().decode()
assert get("/healthz").strip() == "ok"
metrics = get("/metrics")
assert "# TYPE" in metrics and "haccs_" in metrics, metrics[:200]
status = get("/status")
assert '"workers":[' in status and '"round":' in status, status[:200]
print(f"mid-run scrape OK: /healthz, /metrics ({len(metrics)} B), /status")
EOF
  kill -9 "$w0_pid" 2>/dev/null || true
  wait "$w0_pid" 2>/dev/null || true
  sleep 1  # the server must notice the dead worker and keep committing
  kill -TERM "$server_pid"
  wait "$server_pid"
  wait "$w1_pid" || true
  python3 - "$obs_dir" <<'EOF'
import glob, json, sys
obs_dir = sys.argv[1]
dumps = glob.glob(obs_dir + "/flight/flight-*.json")
assert dumps, "no flight-recorder dump written"
flight = json.load(open(dumps[0]))
for key in ("reason", "rounds", "log_lines", "metrics"):
    assert key in flight, (key, list(flight))
assert flight["reason"] == "sigterm-drain", flight["reason"]
trace = json.load(open(obs_dir + "/ops_trace.json"))
events = trace["traceEvents"]
pids = {e["pid"] for e in events}
assert 1 in pids and len(pids) >= 2, pids
rounds = {e["args"]["span"] for e in events
          if e.get("name") == "round" and "args" in e}
child = [e for e in events
         if e.get("name") == "local_train" and e.get("pid", 1) != 1]
assert child, "no worker local_train spans in the merged trace"
for e in child:
    assert e["args"]["parent"] in rounds, e
print(f"ops-plane OK: flight dump ({flight['reason']}, "
      f"{len(flight['rounds'])} rounds ringed), merged trace with "
      f"{len(pids)} tracks and {len(child)} worker spans")
EOF
  if [[ -n "${HACCS_SMOKE_ARTIFACT_DIR:-}" ]]; then
    mkdir -p "$HACCS_SMOKE_ARTIFACT_DIR"
    cp "$obs_dir"/flight/flight-*.json "$obs_dir/ops_trace.json" \
       "$HACCS_SMOKE_ARTIFACT_DIR/" 2>/dev/null || true
    echo "kept ops artifacts in $HACCS_SMOKE_ARTIFACT_DIR"
  fi
else
  echo "== ops-plane smoke skipped (python3 not found) =="
fi

echo "== 3-tier smoke: root + 2 mid-tier aggregators + 4 workers =="
tree_flags=(--rounds=3 --clients=16 --per-round=6 --classes=6 --seed=11)
# launch_tree CHAOS_AGG1=0|1: root + 2 aggs + 4 workers; worker w fronts
# aggregator w/2. Aggregator stderr is captured (the exit line carries the
# per-tier byte counters) and replayed into the log afterwards. In chaos
# mode aggregator 1's uplink drops frames, so the root runs under a tight
# collection budget and the faulty subtree may exit "upstream lost"
# (tolerated); the root and the clean subtree must still exit 0.
launch_tree() {
  local chaos_agg1="$1" agg1_chaos=() root_extra=()
  if [[ "$chaos_agg1" -eq 1 ]]; then
    # Seed chosen so the deterministic draw sequence spares the ~9-frame
    # TopologyHello/Summary handshake (which has no retry path) and first
    # bites on mid-round traffic, where the root's collection budget and
    # salvage/torn machinery absorb the loss.
    agg1_chaos=(--chaos-seed=1 --chaos-drop=0.05 --heartbeat-interval-ms=500)
    root_extra=(--io-timeout-ms=8000)
  fi
  rm -f "$obs_dir/tree_port" "$obs_dir/tree_agg0_port" \
    "$obs_dir/tree_agg1_port" "$obs_dir/tree_server.json" \
    "$obs_dir/tree_trace.json"
  timeout 300 "$build/examples/haccs_server" \
    --workers=4 --aggs=2 --port=0 --port-file="$obs_dir/tree_port" \
    --summary-json="$obs_dir/tree_server.json" \
    --trace="$obs_dir/tree_trace.json" "${root_extra[@]}" \
    "${tree_flags[@]}" &
  server_pid=$!
  timeout 300 "$build/examples/haccs_agg" \
    --agg-id=0 --aggs=2 --workers=4 --listen-port=0 \
    --listen-port-file="$obs_dir/tree_agg0_port" \
    --port-file="$obs_dir/tree_port" 2>"$obs_dir/tree_agg0.log" &
  a0_pid=$!
  timeout 300 "$build/examples/haccs_agg" \
    --agg-id=1 --aggs=2 --workers=4 --listen-port=0 \
    --listen-port-file="$obs_dir/tree_agg1_port" \
    --port-file="$obs_dir/tree_port" "${agg1_chaos[@]}" \
    2>"$obs_dir/tree_agg1.log" &
  a1_pid=$!
  worker_pids=()
  for w in 0 1 2 3; do
    timeout 300 "$build/examples/haccs_worker" \
      --worker-id="$w" --workers=4 \
      --port-file="$obs_dir/tree_agg$((w / 2))_port" "${tree_flags[@]}" &
    worker_pids+=($!)
  done
  wait "$server_pid"
  local rc=0
  wait "$a0_pid"
  wait "$a1_pid" || rc=$?
  for pid in "${worker_pids[@]}"; do wait "$pid" || rc=$?; done
  sed 's/^/[agg0] /' "$obs_dir/tree_agg0.log"
  sed 's/^/[agg1] /' "$obs_dir/tree_agg1.log"
  if [[ "$chaos_agg1" -eq 0 && "$rc" -ne 0 ]]; then
    echo "clean 3-tier run: unexpected nonzero exit ($rc)" >&2
    return 1
  fi
}

launch_tree 0
if command -v python3 >/dev/null; then
  python3 - "$obs_dir" <<'EOF'
import json, re, sys
obs_dir = sys.argv[1]
summary = json.load(open(obs_dir + "/tree_server.json"))
assert summary["tier"] == "root" and summary["aggs"] == 2, summary
assert summary["rounds_completed"] == summary["rounds"] == 3, summary
assert summary["net_frames_corrupt"] == 0, summary
# Per-tier byte accounting (DESIGN.md §5j): every framed byte an aggregator
# sent upstream landed in the root's transport counters and vice versa —
# exact sums, not approximations, because the clean run loses nothing.
up = down = 0
for a in (0, 1):
    log = open(f"{obs_dir}/tree_agg{a}.log").read()
    m = re.search(r"agg \d+: (\w+) after (\d+) round\(s\).*?"
                  r"(\d+) B up / (\d+) B down", log)
    assert m, log
    assert m.group(1) == "shutdown" and int(m.group(2)) == 3, log
    up += int(m.group(3))
    down += int(m.group(4))
assert up == summary["net_bytes_received"], (up, summary)
assert down == summary["net_bytes_sent"], (down, summary)
trace = json.load(open(obs_dir + "/tree_trace.json"))
pids = {e["pid"] for e in trace["traceEvents"]}
assert 1 in pids and len(pids) >= 3, pids
print(f"3-tier smoke OK: {summary['rounds_completed']} rounds, byte "
      f"accounting exact ({up} B up / {down} B down across 2 aggregators), "
      f"merged trace with {len(pids)} tracks")
EOF
else
  grep -q '"rounds_completed": 3' "$obs_dir/tree_server.json"
  echo "3-tier smoke OK (python3 not found; grepped rounds_completed)"
fi
if [[ -n "${HACCS_SMOKE_ARTIFACT_DIR:-}" ]]; then
  mkdir -p "$HACCS_SMOKE_ARTIFACT_DIR"
  cp "$obs_dir/tree_server.json" "$obs_dir/tree_trace.json" \
     "$HACCS_SMOKE_ARTIFACT_DIR/" 2>/dev/null || true
  echo "kept 3-tier artifacts in $HACCS_SMOKE_ARTIFACT_DIR"
fi

echo "== 3-tier smoke: frame drops on one aggregator uplink =="
launch_tree 1
if command -v python3 >/dev/null; then
  python3 - "$obs_dir" <<'EOF'
import json, sys
summary = json.load(open(sys.argv[1] + "/tree_server.json"))
assert summary["rounds_completed"] == summary["rounds"] == 3, summary
print(f"3-tier chaos OK: {summary['rounds_completed']} rounds despite a "
      f"lossy uplink")
EOF
else
  grep -q '"rounds_completed": 3' "$obs_dir/tree_server.json"
  echo "3-tier chaos OK (python3 not found; grepped rounds_completed)"
fi

echo "== serving smoke passed =="
