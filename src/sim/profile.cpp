#include "src/sim/profile.hpp"

#include <span>
#include <stdexcept>

namespace haccs::sim {

std::string to_string(PerfCategory category) {
  switch (category) {
    case PerfCategory::Fast: return "fast";
    case PerfCategory::Medium: return "medium";
    case PerfCategory::Slow: return "slow";
    case PerfCategory::VerySlow: return "very_slow";
  }
  throw std::invalid_argument("to_string: bad PerfCategory");
}

std::pair<double, double> DeviceProfile::compute_multiplier_range(
    PerfCategory c) {
  switch (c) {
    case PerfCategory::Fast: return {1.0, 1.0};  // "No Delay"
    case PerfCategory::Medium: return {1.5, 2.0};
    case PerfCategory::Slow: return {2.0, 2.5};
    case PerfCategory::VerySlow: return {2.5, 3.0};
  }
  throw std::invalid_argument("compute_multiplier_range: bad category");
}

std::pair<double, double> DeviceProfile::bandwidth_range_mbps(PerfCategory c) {
  switch (c) {
    case PerfCategory::Fast: return {75.0, 100.0};
    case PerfCategory::Medium: return {50.0, 75.0};
    case PerfCategory::Slow: return {25.0, 50.0};
    case PerfCategory::VerySlow: return {1.0, 25.0};
  }
  throw std::invalid_argument("bandwidth_range_mbps: bad category");
}

DeviceProfile DeviceProfile::sample(Rng& rng) {
  DeviceProfile p;
  const std::span<const double> probs(kCategoryProbabilities, 4);
  p.compute_category = static_cast<PerfCategory>(rng.categorical(probs));
  p.bandwidth_category = static_cast<PerfCategory>(rng.categorical(probs));

  const auto [clo, chi] = compute_multiplier_range(p.compute_category);
  p.compute_multiplier = clo == chi ? clo : rng.uniform(clo, chi);

  const auto [blo, bhi] = bandwidth_range_mbps(p.bandwidth_category);
  p.bandwidth_mbps = rng.uniform(blo, bhi);

  p.network_latency_s = rng.uniform(0.020, 0.200);
  return p;
}

}  // namespace haccs::sim
