#include "src/sim/faults.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/obs/metrics.hpp"

namespace haccs::sim {

namespace {

// Cached references: registry lookups take a lock, so resolve each counter
// once and reuse the (never-invalidated) reference on every injection.
struct FaultMetrics {
  obs::Counter& crash;
  obs::Counter& corruption;
  obs::Counter& straggler;
  static FaultMetrics& get() {
    static FaultMetrics m{
        obs::Registry::global().counter("faults_crash_total"),
        obs::Registry::global().counter("faults_corruption_total"),
        obs::Registry::global().counter("faults_straggler_total"),
    };
    return m;
  }
};

}  // namespace

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::None: return "none";
    case FaultKind::Crash: return "crash";
    case FaultKind::Corruption: return "corruption";
    case FaultKind::Straggler: return "straggler";
  }
  throw std::invalid_argument("to_string: bad FaultKind");
}

FaultModel::FaultModel(FaultModelConfig config) : config_(config) {
  auto check_rate = [](double r, const char* name) {
    if (r < 0.0 || r > 1.0) {
      throw std::invalid_argument(std::string("FaultModel: ") + name +
                                  " must be in [0, 1]");
    }
  };
  check_rate(config_.crash_rate, "crash_rate");
  check_rate(config_.corruption_rate, "corruption_rate");
  check_rate(config_.straggler_rate, "straggler_rate");
  if (config_.crash_rate + config_.corruption_rate + config_.straggler_rate >
      1.0) {
    throw std::invalid_argument("FaultModel: fault rates sum to > 1");
  }
  if (config_.crash_frac_min < 0.0 ||
      config_.crash_frac_max > 1.0 ||
      config_.crash_frac_min > config_.crash_frac_max) {
    throw std::invalid_argument("FaultModel: bad crash_frac range");
  }
  if (config_.straggler_alpha <= 0.0 || config_.straggler_scale < 1.0 ||
      config_.straggler_cap < config_.straggler_scale) {
    throw std::invalid_argument("FaultModel: bad straggler parameters");
  }
  check_rate(config_.flaky_fraction, "flaky_fraction");
  if (config_.flaky_crash_boost < 1.0) {
    throw std::invalid_argument("FaultModel: flaky_crash_boost must be >= 1");
  }
  check_rate(config_.targeted_fraction, "targeted_fraction");
  if (config_.targeted_multiplier < 1.0 ||
      config_.targeted_multiplier > config_.straggler_cap) {
    throw std::invalid_argument(
        "FaultModel: targeted_multiplier must be in [1, straggler_cap]");
  }
}

bool FaultModel::flaky(std::size_t client) const {
  if (config_.flaky_fraction <= 0.0) return false;
  // Pure in (seed, client): flakiness is a device property, stable across
  // epochs and identical for every strategy.
  Rng rng(config_.seed ^ (0xd1b54a32d192ed03ULL * (client + 1)));
  return rng.uniform() < config_.flaky_fraction;
}

bool FaultModel::targeted(std::size_t client) const {
  if (config_.targeted_fraction <= 0.0) return false;
  // Same (seed, client) purity as flaky(), on an independent stream: the
  // adversarial cohort is fixed for the whole run and identical under every
  // selection strategy.
  Rng rng(config_.seed ^ (0xeb44accab455d165ULL * (client + 1)));
  return rng.uniform() < config_.targeted_fraction;
}

FaultEvent FaultModel::at(std::size_t client, std::size_t epoch) const {
  FaultEvent event;
  if (!config_.enabled()) return event;
  // One fresh generator per (seed, epoch, client), same derivation idiom as
  // the engine's latency jitter: purity in the triple is what guarantees
  // identical traces across strategies regardless of who got selected.
  Rng rng(config_.seed ^ (0xa24baed4963ee407ULL * (epoch + 1)) ^
          (0x9fb21c651e98df25ULL * (client + 1)));
  const double u = rng.uniform();
  double crash_rate = config_.crash_rate;
  if (config_.flaky_fraction > 0.0 && flaky(client)) {
    crash_rate = std::min(
        crash_rate * config_.flaky_crash_boost,
        1.0 - config_.corruption_rate - config_.straggler_rate);
  }
  if (u < crash_rate) {
    event.kind = FaultKind::Crash;
    event.crash_frac =
        rng.uniform(config_.crash_frac_min, config_.crash_frac_max);
    FaultMetrics::get().crash.inc();
  } else if (u < crash_rate + config_.corruption_rate) {
    event.kind = FaultKind::Corruption;
    event.corruption = static_cast<CorruptionMode>(rng.uniform_index(3));
    FaultMetrics::get().corruption.inc();
  } else if (u < crash_rate + config_.corruption_rate +
                     config_.straggler_rate) {
    event.kind = FaultKind::Straggler;
    // Pareto(x_m = scale, alpha) via inverse CDF; clamp the tail.
    const double tail =
        config_.straggler_scale *
        std::pow(1.0 - rng.uniform(), -1.0 / config_.straggler_alpha);
    event.latency_multiplier = std::min(tail, config_.straggler_cap);
    FaultMetrics::get().straggler.inc();
  }
  // Adversarial straggling stacks on top of the random draw: a targeted
  // client is slowed on every dispatch once the adversary activates, unless
  // it crashed/corrupted anyway (a dead client cannot be slow). The random
  // stream above is consumed identically either way, so enabling targeting
  // never perturbs the non-targeted clients' fault trace.
  if (event.kind != FaultKind::Crash && event.kind != FaultKind::Corruption &&
      epoch >= config_.targeted_from && targeted(client)) {
    if (event.kind != FaultKind::Straggler) {
      event.kind = FaultKind::Straggler;
      FaultMetrics::get().straggler.inc();
    }
    event.latency_multiplier =
        std::max(event.latency_multiplier, config_.targeted_multiplier);
  }
  return event;
}

void FaultModel::corrupt(const FaultEvent& event,
                         std::span<float> delta) const {
  if (event.kind != FaultKind::Corruption || delta.empty()) return;
  switch (event.corruption) {
    case CorruptionMode::MakeNaN:
      for (std::size_t i = 0; i < delta.size(); i += 97) {
        delta[i] = std::numeric_limits<float>::quiet_NaN();
      }
      break;
    case CorruptionMode::MakeInf:
      for (std::size_t i = 0; i < delta.size(); i += 97) {
        delta[i] = (i % 2 == 0) ? std::numeric_limits<float>::infinity()
                                : -std::numeric_limits<float>::infinity();
      }
      break;
    case CorruptionMode::ScaleExplode: {
      const auto scale = static_cast<float>(config_.corruption_scale);
      for (float& v : delta) v *= scale;
      break;
    }
  }
}

CircuitBreaker::CircuitBreaker(Config config) : config_(config) {
  if (config_.failure_threshold == 0) {
    throw std::invalid_argument("CircuitBreaker: failure_threshold must be > 0");
  }
  if (config_.base_cooldown == 0 ||
      config_.max_cooldown < config_.base_cooldown) {
    throw std::invalid_argument("CircuitBreaker: bad cooldown range");
  }
}

CircuitBreaker::State CircuitBreaker::state(std::size_t epoch) const {
  if (!tripped_) return State::Closed;
  return epoch < open_until_ ? State::Open : State::HalfOpen;
}

void CircuitBreaker::record_failure(std::size_t epoch) {
  ++consecutive_failures_;
  // A failed half-open probe re-trips immediately; a closed breaker trips
  // once the consecutive-failure threshold is reached.
  const bool trip = tripped_ || consecutive_failures_ >= config_.failure_threshold;
  if (!trip) return;
  ++trips_;
  const std::size_t doublings = std::min<std::size_t>(trips_ - 1, 62);
  const std::size_t cooldown =
      std::min(config_.max_cooldown, config_.base_cooldown << doublings);
  open_until_ = epoch + 1 + cooldown;
  tripped_ = true;
  consecutive_failures_ = 0;
}

void CircuitBreaker::record_success() {
  consecutive_failures_ = 0;
  tripped_ = false;
  // trips_ is kept: a client that keeps flapping pays exponentially longer
  // quarantines on each successive trip.
}

}  // namespace haccs::sim
