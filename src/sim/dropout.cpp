#include "src/sim/dropout.hpp"

#include <algorithm>
#include <stdexcept>

namespace haccs::sim {

namespace {

class AlwaysAvailable final : public DropoutSchedule {
 public:
  explicit AlwaysAvailable(std::size_t n) : n_(n) {}
  std::vector<bool> available(std::size_t) const override {
    return std::vector<bool>(n_, true);
  }
  std::size_t num_clients() const override { return n_; }

 private:
  std::size_t n_;
};

class PerEpochDropout final : public DropoutSchedule {
 public:
  PerEpochDropout(std::size_t n, double fraction, std::uint64_t seed)
      : n_(n), fraction_(fraction), seed_(seed) {
    if (fraction < 0.0 || fraction > 1.0) {
      throw std::invalid_argument("per-epoch dropout: fraction out of [0, 1]");
    }
  }

  std::vector<bool> available(std::size_t epoch) const override {
    // A fresh generator per (seed, epoch) keeps the draw identical no matter
    // how many times or in what order epochs are queried.
    Rng rng(seed_ ^ (0x9e3779b97f4a7c15ULL * (epoch + 1)));
    const auto drop_count =
        static_cast<std::size_t>(fraction_ * static_cast<double>(n_));
    std::vector<bool> mask(n_, true);
    for (std::size_t i : rng.sample_without_replacement(n_, drop_count)) {
      mask[i] = false;
    }
    return mask;
  }

  std::size_t num_clients() const override { return n_; }

 private:
  std::size_t n_;
  double fraction_;
  std::uint64_t seed_;
};

class PermanentRandomDropout final : public DropoutSchedule {
 public:
  PermanentRandomDropout(std::size_t n, std::size_t count,
                         std::size_t from_epoch, std::uint64_t seed)
      : n_(n), from_epoch_(from_epoch), dropped_(n, false) {
    if (count > n) {
      throw std::invalid_argument("permanent dropout: count > num_clients");
    }
    Rng rng(seed);
    for (std::size_t i : rng.sample_without_replacement(n, count)) {
      dropped_[i] = true;
    }
  }

  std::vector<bool> available(std::size_t epoch) const override {
    std::vector<bool> mask(n_, true);
    if (epoch < from_epoch_) return mask;
    for (std::size_t i = 0; i < n_; ++i) mask[i] = !dropped_[i];
    return mask;
  }

  std::size_t num_clients() const override { return n_; }

 private:
  std::size_t n_;
  std::size_t from_epoch_;
  std::vector<bool> dropped_;
};

class StaggeredJoin final : public DropoutSchedule {
 public:
  explicit StaggeredJoin(std::vector<std::size_t> join_epoch_of)
      : join_epoch_of_(std::move(join_epoch_of)) {}

  std::vector<bool> available(std::size_t epoch) const override {
    std::vector<bool> mask(join_epoch_of_.size());
    for (std::size_t i = 0; i < mask.size(); ++i) {
      mask[i] = epoch >= join_epoch_of_[i];
    }
    return mask;
  }

  std::size_t num_clients() const override { return join_epoch_of_.size(); }

 private:
  std::vector<std::size_t> join_epoch_of_;
};

class GroupDropout final : public DropoutSchedule {
 public:
  GroupDropout(std::vector<int> group_of, std::vector<int> dropped_groups,
               std::size_t from_epoch)
      : group_of_(std::move(group_of)),
        dropped_groups_(std::move(dropped_groups)),
        from_epoch_(from_epoch) {}

  std::vector<bool> available(std::size_t epoch) const override {
    std::vector<bool> mask(group_of_.size(), true);
    if (epoch < from_epoch_) return mask;
    for (std::size_t i = 0; i < group_of_.size(); ++i) {
      if (std::find(dropped_groups_.begin(), dropped_groups_.end(),
                    group_of_[i]) != dropped_groups_.end()) {
        mask[i] = false;
      }
    }
    return mask;
  }

  std::size_t num_clients() const override { return group_of_.size(); }

 private:
  std::vector<int> group_of_;
  std::vector<int> dropped_groups_;
  std::size_t from_epoch_;
};

}  // namespace

std::unique_ptr<DropoutSchedule> make_always_available(std::size_t num_clients) {
  return std::make_unique<AlwaysAvailable>(num_clients);
}

std::unique_ptr<DropoutSchedule> make_per_epoch_dropout(std::size_t num_clients,
                                                        double fraction,
                                                        std::uint64_t seed) {
  return std::make_unique<PerEpochDropout>(num_clients, fraction, seed);
}

std::unique_ptr<DropoutSchedule> make_permanent_random_dropout(
    std::size_t num_clients, std::size_t count, std::size_t from_epoch,
    std::uint64_t seed) {
  return std::make_unique<PermanentRandomDropout>(num_clients, count,
                                                  from_epoch, seed);
}

std::unique_ptr<DropoutSchedule> make_staggered_join(
    std::vector<std::size_t> join_epoch_of) {
  return std::make_unique<StaggeredJoin>(std::move(join_epoch_of));
}

std::unique_ptr<DropoutSchedule> make_group_dropout(
    std::vector<int> group_of, std::vector<int> dropped_groups,
    std::size_t from_epoch) {
  return std::make_unique<GroupDropout>(std::move(group_of),
                                        std::move(dropped_groups), from_epoch);
}

}  // namespace haccs::sim
