#include "src/sim/dropout.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace haccs::sim {

namespace {

class AlwaysAvailable final : public DropoutSchedule {
 public:
  explicit AlwaysAvailable(std::size_t n) : n_(n) {}
  std::vector<bool> available(std::size_t) const override {
    return std::vector<bool>(n_, true);
  }
  std::size_t num_clients() const override { return n_; }

 private:
  std::size_t n_;
};

class PerEpochDropout final : public DropoutSchedule {
 public:
  PerEpochDropout(std::size_t n, double fraction, std::uint64_t seed)
      : n_(n), fraction_(fraction), seed_(seed) {
    if (fraction < 0.0 || fraction > 1.0) {
      throw std::invalid_argument("per-epoch dropout: fraction out of [0, 1]");
    }
  }

  std::vector<bool> available(std::size_t epoch) const override {
    // A fresh generator per (seed, epoch) keeps the draw identical no matter
    // how many times or in what order epochs are queried.
    Rng rng(seed_ ^ (0x9e3779b97f4a7c15ULL * (epoch + 1)));
    const auto drop_count =
        static_cast<std::size_t>(fraction_ * static_cast<double>(n_));
    std::vector<bool> mask(n_, true);
    for (std::size_t i : rng.sample_without_replacement(n_, drop_count)) {
      mask[i] = false;
    }
    return mask;
  }

  std::size_t num_clients() const override { return n_; }

 private:
  std::size_t n_;
  double fraction_;
  std::uint64_t seed_;
};

class PermanentRandomDropout final : public DropoutSchedule {
 public:
  PermanentRandomDropout(std::size_t n, std::size_t count,
                         std::size_t from_epoch, std::uint64_t seed)
      : n_(n), from_epoch_(from_epoch), dropped_(n, false) {
    if (count > n) {
      throw std::invalid_argument("permanent dropout: count > num_clients");
    }
    Rng rng(seed);
    for (std::size_t i : rng.sample_without_replacement(n, count)) {
      dropped_[i] = true;
    }
  }

  std::vector<bool> available(std::size_t epoch) const override {
    std::vector<bool> mask(n_, true);
    if (epoch < from_epoch_) return mask;
    for (std::size_t i = 0; i < n_; ++i) mask[i] = !dropped_[i];
    return mask;
  }

  std::size_t num_clients() const override { return n_; }

 private:
  std::size_t n_;
  std::size_t from_epoch_;
  std::vector<bool> dropped_;
};

class StaggeredJoin final : public DropoutSchedule {
 public:
  explicit StaggeredJoin(std::vector<std::size_t> join_epoch_of)
      : join_epoch_of_(std::move(join_epoch_of)) {}

  std::vector<bool> available(std::size_t epoch) const override {
    std::vector<bool> mask(join_epoch_of_.size());
    for (std::size_t i = 0; i < mask.size(); ++i) {
      mask[i] = epoch >= join_epoch_of_[i];
    }
    return mask;
  }

  std::size_t num_clients() const override { return join_epoch_of_.size(); }

 private:
  std::vector<std::size_t> join_epoch_of_;
};

class GroupDropout final : public DropoutSchedule {
 public:
  GroupDropout(std::vector<int> group_of, std::vector<int> dropped_groups,
               std::size_t from_epoch)
      : group_of_(std::move(group_of)),
        dropped_groups_(std::move(dropped_groups)),
        from_epoch_(from_epoch) {}

  std::vector<bool> available(std::size_t epoch) const override {
    std::vector<bool> mask(group_of_.size(), true);
    if (epoch < from_epoch_) return mask;
    for (std::size_t i = 0; i < group_of_.size(); ++i) {
      if (std::find(dropped_groups_.begin(), dropped_groups_.end(),
                    group_of_[i]) != dropped_groups_.end()) {
        mask[i] = false;
      }
    }
    return mask;
  }

  std::size_t num_clients() const override { return group_of_.size(); }

 private:
  std::vector<int> group_of_;
  std::vector<int> dropped_groups_;
  std::size_t from_epoch_;
};

class FlashCrowd final : public DropoutSchedule {
 public:
  FlashCrowd(std::size_t n, double fraction, std::size_t join_epoch,
             std::uint64_t seed)
      : n_(n), join_epoch_(join_epoch), joiner_(n, false) {
    if (fraction < 0.0 || fraction > 1.0) {
      throw std::invalid_argument("flash crowd: fraction out of [0, 1]");
    }
    const auto count =
        static_cast<std::size_t>(fraction * static_cast<double>(n));
    Rng rng(seed ^ 0xf1a5c0b0dULL);
    for (std::size_t i : rng.sample_without_replacement(n, count)) {
      joiner_[i] = true;
    }
  }

  std::vector<bool> available(std::size_t epoch) const override {
    std::vector<bool> mask(n_, true);
    if (epoch >= join_epoch_) return mask;
    for (std::size_t i = 0; i < n_; ++i) mask[i] = !joiner_[i];
    return mask;
  }

  std::size_t num_clients() const override { return n_; }

 private:
  std::size_t n_;
  std::size_t join_epoch_;
  std::vector<bool> joiner_;
};

class DiurnalWave final : public DropoutSchedule {
 public:
  DiurnalWave(std::size_t n, double down_fraction, std::size_t period,
              std::uint64_t seed)
      : n_(n), period_(period), phase_(n, 0) {
    if (down_fraction < 0.0 || down_fraction > 1.0) {
      throw std::invalid_argument("diurnal wave: down_fraction out of [0, 1]");
    }
    if (period == 0) {
      throw std::invalid_argument("diurnal wave: period must be > 0");
    }
    down_span_ = static_cast<std::size_t>(
        down_fraction * static_cast<double>(period) + 0.5);
    Rng rng(seed ^ 0xd1c2a1ULL);
    for (std::size_t i = 0; i < n; ++i) {
      phase_[i] = static_cast<std::size_t>(rng.uniform_index(period));
    }
  }

  std::vector<bool> available(std::size_t epoch) const override {
    std::vector<bool> mask(n_, true);
    for (std::size_t i = 0; i < n_; ++i) {
      mask[i] = ((epoch + phase_[i]) % period_) >= down_span_;
    }
    return mask;
  }

  std::size_t num_clients() const override { return n_; }

 private:
  std::size_t n_;
  std::size_t period_;
  std::size_t down_span_ = 0;
  std::vector<std::size_t> phase_;
};

class RegionalOutage final : public DropoutSchedule {
 public:
  RegionalOutage(std::size_t n, std::size_t num_regions, double down_fraction,
                 std::size_t from_epoch, std::size_t duration,
                 std::uint64_t seed)
      : n_(n), from_epoch_(from_epoch), until_epoch_(from_epoch + duration),
        dark_(n, false) {
    if (down_fraction < 0.0 || down_fraction > 1.0) {
      throw std::invalid_argument("regional outage: fraction out of [0, 1]");
    }
    if (num_regions == 0) {
      throw std::invalid_argument("regional outage: num_regions must be > 0");
    }
    Rng rng(seed ^ 0x0e07a6eULL);
    std::vector<std::size_t> region(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      region[i] = static_cast<std::size_t>(rng.uniform_index(num_regions));
    }
    const auto dark_regions = static_cast<std::size_t>(std::ceil(
        down_fraction * static_cast<double>(num_regions)));
    std::vector<bool> region_dark(num_regions, false);
    for (std::size_t r :
         rng.sample_without_replacement(num_regions, dark_regions)) {
      region_dark[r] = true;
    }
    for (std::size_t i = 0; i < n; ++i) dark_[i] = region_dark[region[i]];
  }

  std::vector<bool> available(std::size_t epoch) const override {
    std::vector<bool> mask(n_, true);
    if (epoch < from_epoch_ || epoch >= until_epoch_) return mask;
    for (std::size_t i = 0; i < n_; ++i) mask[i] = !dark_[i];
    return mask;
  }

  std::size_t num_clients() const override { return n_; }

 private:
  std::size_t n_;
  std::size_t from_epoch_;
  std::size_t until_epoch_;
  std::vector<bool> dark_;
};

class Intersection final : public DropoutSchedule {
 public:
  Intersection(std::unique_ptr<DropoutSchedule> a,
               std::unique_ptr<DropoutSchedule> b)
      : a_(std::move(a)), b_(std::move(b)) {
    if (a_->num_clients() != b_->num_clients()) {
      throw std::invalid_argument(
          "schedule intersection: population size mismatch");
    }
  }

  std::vector<bool> available(std::size_t epoch) const override {
    auto mask = a_->available(epoch);
    const auto other = b_->available(epoch);
    for (std::size_t i = 0; i < mask.size(); ++i) {
      mask[i] = mask[i] && other[i];
    }
    return mask;
  }

  std::size_t num_clients() const override { return a_->num_clients(); }

 private:
  std::unique_ptr<DropoutSchedule> a_;
  std::unique_ptr<DropoutSchedule> b_;
};

}  // namespace

std::unique_ptr<DropoutSchedule> make_always_available(std::size_t num_clients) {
  return std::make_unique<AlwaysAvailable>(num_clients);
}

std::unique_ptr<DropoutSchedule> make_per_epoch_dropout(std::size_t num_clients,
                                                        double fraction,
                                                        std::uint64_t seed) {
  return std::make_unique<PerEpochDropout>(num_clients, fraction, seed);
}

std::unique_ptr<DropoutSchedule> make_permanent_random_dropout(
    std::size_t num_clients, std::size_t count, std::size_t from_epoch,
    std::uint64_t seed) {
  return std::make_unique<PermanentRandomDropout>(num_clients, count,
                                                  from_epoch, seed);
}

std::unique_ptr<DropoutSchedule> make_staggered_join(
    std::vector<std::size_t> join_epoch_of) {
  return std::make_unique<StaggeredJoin>(std::move(join_epoch_of));
}

std::unique_ptr<DropoutSchedule> make_group_dropout(
    std::vector<int> group_of, std::vector<int> dropped_groups,
    std::size_t from_epoch) {
  return std::make_unique<GroupDropout>(std::move(group_of),
                                        std::move(dropped_groups), from_epoch);
}

std::unique_ptr<DropoutSchedule> make_flash_crowd(std::size_t num_clients,
                                                  double fraction,
                                                  std::size_t join_epoch,
                                                  std::uint64_t seed) {
  return std::make_unique<FlashCrowd>(num_clients, fraction, join_epoch, seed);
}

std::unique_ptr<DropoutSchedule> make_diurnal_wave(std::size_t num_clients,
                                                   double down_fraction,
                                                   std::size_t period,
                                                   std::uint64_t seed) {
  return std::make_unique<DiurnalWave>(num_clients, down_fraction, period,
                                       seed);
}

std::unique_ptr<DropoutSchedule> make_regional_outage(
    std::size_t num_clients, std::size_t num_regions, double down_fraction,
    std::size_t from_epoch, std::size_t duration, std::uint64_t seed) {
  return std::make_unique<RegionalOutage>(num_clients, num_regions,
                                          down_fraction, from_epoch, duration,
                                          seed);
}

std::unique_ptr<DropoutSchedule> make_intersection(
    std::unique_ptr<DropoutSchedule> a, std::unique_ptr<DropoutSchedule> b) {
  return std::make_unique<Intersection>(std::move(a), std::move(b));
}

}  // namespace haccs::sim
