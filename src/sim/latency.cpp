#include "src/sim/latency.hpp"

#include <algorithm>
#include <stdexcept>

namespace haccs::sim {

LatencyModel::LatencyModel(LatencyModelConfig config) : config_(config) {
  if (config_.seconds_per_sample <= 0.0) {
    throw std::invalid_argument("LatencyModel: seconds_per_sample must be > 0");
  }
  if (config_.local_epochs == 0) {
    throw std::invalid_argument("LatencyModel: local_epochs must be > 0");
  }
}

double LatencyModel::transfer_time(const DeviceProfile& profile) const {
  const double bits = static_cast<double>(config_.model_bytes) * 8.0;
  const double bandwidth_bps = profile.bandwidth_mbps * 1e6;
  return 2.0 * profile.network_latency_s + 2.0 * bits / bandwidth_bps;
}

double LatencyModel::compute_time(const DeviceProfile& profile,
                                  std::size_t num_samples) const {
  return profile.compute_multiplier * config_.seconds_per_sample *
         static_cast<double>(num_samples) *
         static_cast<double>(config_.local_epochs);
}

double LatencyModel::round_latency(const DeviceProfile& profile,
                                   std::size_t num_samples) const {
  return transfer_time(profile) + compute_time(profile, num_samples);
}

double LatencyModel::round_latency_asymmetric(const DeviceProfile& profile,
                                              std::size_t num_samples,
                                              std::size_t download_bytes,
                                              std::size_t upload_bytes) const {
  const double bits =
      static_cast<double>(download_bytes + upload_bytes) * 8.0;
  const double bandwidth_bps = profile.bandwidth_mbps * 1e6;
  return 2.0 * profile.network_latency_s + bits / bandwidth_bps +
         compute_time(profile, num_samples);
}

double SimClock::advance(double seconds) {
  if (seconds < 0.0) {
    throw std::invalid_argument("SimClock: cannot advance backwards");
  }
  now_s_ += seconds;
  return now_s_;
}

double SimClock::advance_round(std::span<const double> client_latencies) {
  double round = 0.0;
  for (double l : client_latencies) round = std::max(round, l);
  advance(round);
  return round;
}

}  // namespace haccs::sim
