// Client latency model and the simulated training clock.
//
// The paper defines a client's latency as "the expected time required to
// transfer the model parameters to and from the client, plus the time
// required to perform a single epoch" (§IV-D). We model one training round
// for client i as
//
//   latency_i = 2 * network_latency_i            (request + response RTT)
//             + 2 * model_bits / bandwidth_i     (download + upload)
//             + compute_multiplier_i * base_compute_time(samples_i)
//
// and a synchronous FedAvg round takes max over the selected clients — the
// straggler determines the round (this is what makes client selection matter
// for time-to-accuracy). The clock is simulated: results are deterministic
// and independent of the host machine, while preserving the paper's relative
// orderings (DESIGN.md §4, substitution 2).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/sim/profile.hpp"

namespace haccs::sim {

struct LatencyModelConfig {
  /// Serialized model size in bytes (parameters * 4 for float32).
  std::size_t model_bytes = 250000;
  /// Baseline seconds of compute per training sample per local epoch on a
  /// "fast" device.
  double seconds_per_sample = 0.005;
  /// Local epochs per round (scales compute time).
  std::size_t local_epochs = 1;
};

class LatencyModel {
 public:
  explicit LatencyModel(LatencyModelConfig config);

  /// Expected end-to-end latency for one round on a device.
  double round_latency(const DeviceProfile& profile,
                       std::size_t num_samples) const;

  /// Round latency with distinct download/upload payloads (update
  /// compression shrinks the uplink only).
  double round_latency_asymmetric(const DeviceProfile& profile,
                                  std::size_t num_samples,
                                  std::size_t download_bytes,
                                  std::size_t upload_bytes) const;

  /// Transfer-only component (both directions).
  double transfer_time(const DeviceProfile& profile) const;

  /// Compute-only component.
  double compute_time(const DeviceProfile& profile,
                      std::size_t num_samples) const;

  const LatencyModelConfig& config() const { return config_; }

 private:
  LatencyModelConfig config_;
};

/// Simulated wall clock: advances by the straggler latency of each round.
class SimClock {
 public:
  double now() const { return now_s_; }

  /// Advances by `seconds` (must be >= 0) and returns the new time.
  double advance(double seconds);

  /// Advances by the max of the given per-client latencies (a synchronous
  /// round); returns the round duration. Empty input advances by 0.
  double advance_round(std::span<const double> client_latencies);

  void reset() { now_s_ = 0.0; }

  /// Restores the clock to an absolute time (crash-resume: the checkpointed
  /// sim_time_s of the last completed round).
  void set_now(double seconds) { now_s_ = seconds; }

 private:
  double now_s_ = 0.0;
};

}  // namespace haccs::sim
