// Device-availability schedules (paper §III and §V-C).
//
// A schedule answers "which clients are reachable this epoch". Availability
// is a pure function of (seed, epoch) so that, exactly as the paper does,
// "the same set of devices are dropped in each epoch across all the client
// selection strategies" — strategies are compared under identical volatility.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/rng.hpp"

namespace haccs::sim {

class DropoutSchedule {
 public:
  virtual ~DropoutSchedule() = default;

  /// Availability mask for the given epoch; size == num_clients.
  virtual std::vector<bool> available(std::size_t epoch) const = 0;

  virtual std::size_t num_clients() const = 0;
};

/// All clients always available.
std::unique_ptr<DropoutSchedule> make_always_available(std::size_t num_clients);

/// Paper §V-C: a random `fraction` of clients is unavailable each epoch and
/// recovers at the end of the epoch (an independent draw per epoch).
std::unique_ptr<DropoutSchedule> make_per_epoch_dropout(std::size_t num_clients,
                                                        double fraction,
                                                        std::uint64_t seed);

/// Paper Fig. 1a: `count` randomly pre-selected clients are permanently
/// dropped from epoch `from_epoch` onward.
std::unique_ptr<DropoutSchedule> make_permanent_random_dropout(
    std::size_t num_clients, std::size_t count, std::size_t from_epoch,
    std::uint64_t seed);

/// §IV-C "devices joining the system during model training": client i is
/// unavailable until its join epoch, then available from that epoch onward.
std::unique_ptr<DropoutSchedule> make_staggered_join(
    std::vector<std::size_t> join_epoch_of);

/// Paper Fig. 1b: entire pre-selected groups are permanently dropped.
/// `group_of[i]` is client i's group; `dropped_groups` lists group ids to
/// remove from epoch `from_epoch` onward.
std::unique_ptr<DropoutSchedule> make_group_dropout(
    std::vector<int> group_of, std::vector<int> dropped_groups,
    std::size_t from_epoch);

// --- Hostile-world schedules (ROADMAP "Selector zoo + hostile-world
// scenarios"). Each is a pure function of (seed, epoch) like the rest. ---

/// Flash crowd: a seeded cohort of `round(fraction * n)` clients is absent
/// until `join_epoch`, then all join at once — the selector's view of the
/// population doubles in a single round (app launch / regional rollout).
std::unique_ptr<DropoutSchedule> make_flash_crowd(std::size_t num_clients,
                                                  double fraction,
                                                  std::size_t join_epoch,
                                                  std::uint64_t seed);

/// Diurnal availability wave: each client carries a seeded phase in
/// [0, period); it is unreachable while ((epoch + phase) mod period) <
/// round(down_fraction * period). Clients sharing a phase (a "timezone")
/// come and go together, so availability oscillates instead of being an
/// independent per-epoch coin flip.
std::unique_ptr<DropoutSchedule> make_diurnal_wave(std::size_t num_clients,
                                                   double down_fraction,
                                                   std::size_t period,
                                                   std::uint64_t seed);

/// Correlated regional outage: clients are assigned to `num_regions` seeded
/// regions; during [from_epoch, from_epoch + duration) a seeded selection of
/// `ceil(down_fraction * num_regions)` whole regions goes dark together —
/// the failure mode a per-client dropout rate can never produce.
std::unique_ptr<DropoutSchedule> make_regional_outage(
    std::size_t num_clients, std::size_t num_regions, double down_fraction,
    std::size_t from_epoch, std::size_t duration, std::uint64_t seed);

/// Intersection of two schedules over the same population: a client is
/// available iff both say so. Lets hostile shapes compose with the base
/// per-epoch dropout.
std::unique_ptr<DropoutSchedule> make_intersection(
    std::unique_ptr<DropoutSchedule> a, std::unique_ptr<DropoutSchedule> b);

}  // namespace haccs::sim
