// Device-availability schedules (paper §III and §V-C).
//
// A schedule answers "which clients are reachable this epoch". Availability
// is a pure function of (seed, epoch) so that, exactly as the paper does,
// "the same set of devices are dropped in each epoch across all the client
// selection strategies" — strategies are compared under identical volatility.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/rng.hpp"

namespace haccs::sim {

class DropoutSchedule {
 public:
  virtual ~DropoutSchedule() = default;

  /// Availability mask for the given epoch; size == num_clients.
  virtual std::vector<bool> available(std::size_t epoch) const = 0;

  virtual std::size_t num_clients() const = 0;
};

/// All clients always available.
std::unique_ptr<DropoutSchedule> make_always_available(std::size_t num_clients);

/// Paper §V-C: a random `fraction` of clients is unavailable each epoch and
/// recovers at the end of the epoch (an independent draw per epoch).
std::unique_ptr<DropoutSchedule> make_per_epoch_dropout(std::size_t num_clients,
                                                        double fraction,
                                                        std::uint64_t seed);

/// Paper Fig. 1a: `count` randomly pre-selected clients are permanently
/// dropped from epoch `from_epoch` onward.
std::unique_ptr<DropoutSchedule> make_permanent_random_dropout(
    std::size_t num_clients, std::size_t count, std::size_t from_epoch,
    std::uint64_t seed);

/// §IV-C "devices joining the system during model training": client i is
/// unavailable until its join epoch, then available from that epoch onward.
std::unique_ptr<DropoutSchedule> make_staggered_join(
    std::vector<std::size_t> join_epoch_of);

/// Paper Fig. 1b: entire pre-selected groups are permanently dropped.
/// `group_of[i]` is client i's group; `dropped_groups` lists group ids to
/// remove from epoch `from_epoch` onward.
std::unique_ptr<DropoutSchedule> make_group_dropout(
    std::vector<int> group_of, std::vector<int> dropped_groups,
    std::size_t from_epoch);

}  // namespace haccs::sim
