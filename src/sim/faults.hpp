// Mid-round fault injection (robustness extension, DESIGN.md "Fault model").
//
// DropoutSchedule decides who is reachable *before* selection; real
// deployments also lose clients *after* dispatch. FaultModel injects three
// post-dispatch failure modes, each a pure function of (seed, client, epoch):
//
//   * Crash      — the client dies after `crash_frac * latency` elapsed; its
//                  update never arrives and its compute is wasted;
//   * Corruption — the update arrives but is garbage (NaN/Inf entries or a
//                  norm-exploded delta) and must be rejected server-side;
//   * Straggler  — a heavy-tail (Pareto) latency multiplier on top of the
//                  engine's log-normal jitter, modeling transient overload.
//
// Because events depend only on (seed, client, epoch) — never on draw order
// — every selection strategy observes the identical fault trace, matching
// the paper's same-dropout-for-all-strategies methodology (§V-C).
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "src/common/rng.hpp"

namespace haccs::sim {

enum class FaultKind { None, Crash, Corruption, Straggler };

std::string to_string(FaultKind kind);

/// How a corrupted update is mangled. The mode is part of the seeded fault
/// trace so validation tests see all three shapes deterministically.
enum class CorruptionMode {
  MakeNaN,       ///< sprinkle quiet NaNs through the delta
  MakeInf,       ///< sprinkle +/-inf through the delta
  ScaleExplode,  ///< multiply the delta by `corruption_scale` (finite garbage)
};

struct FaultModelConfig {
  /// Per-(client, epoch) probability of a mid-round crash.
  double crash_rate = 0.0;
  /// Crash instant as a fraction of the client's effective latency, drawn
  /// uniformly from [crash_frac_min, crash_frac_max].
  double crash_frac_min = 0.05;
  double crash_frac_max = 0.95;
  /// Fraction of clients that are persistently "flaky": their crash rate is
  /// `crash_rate * flaky_crash_boost` (clamped so all rates still sum to 1).
  /// Which clients are flaky is a pure function of (seed, client) — the same
  /// devices are volatile under every strategy. 0 disables (uniform crashes).
  double flaky_fraction = 0.0;
  double flaky_crash_boost = 4.0;

  /// Per-(client, epoch) probability of returning a corrupted update.
  double corruption_rate = 0.0;
  /// Multiplier used by CorruptionMode::ScaleExplode.
  double corruption_scale = 1.0e4;

  /// Per-(client, epoch) probability of a heavy-tail latency excursion.
  double straggler_rate = 0.0;
  /// Pareto tail index of the excursion multiplier (smaller = heavier tail).
  double straggler_alpha = 1.5;
  /// Pareto scale: the minimum excursion multiplier.
  double straggler_scale = 2.0;
  /// Hard cap on the multiplier (keeps simulated clocks finite).
  double straggler_cap = 64.0;

  /// Adversarial (targeted) stragglers: a fixed, seeded cohort of
  /// `targeted_fraction * n` clients is slowed by `targeted_multiplier` on
  /// EVERY dispatch from epoch `targeted_from` onward — not the Pareto
  /// random excursion above but a persistent adversary (e.g. colluding
  /// devices throttling uploads). Which clients are targeted is a pure
  /// function of (seed, client), so every strategy faces the same cohort.
  double targeted_fraction = 0.0;
  double targeted_multiplier = 8.0;
  std::size_t targeted_from = 0;

  std::uint64_t seed = 1;

  bool enabled() const {
    return crash_rate > 0.0 || corruption_rate > 0.0 || straggler_rate > 0.0 ||
           targeted_fraction > 0.0;
  }
};

/// The fault assigned to one (client, epoch) dispatch. Fields other than
/// `kind` are meaningful only for the matching kind.
struct FaultEvent {
  FaultKind kind = FaultKind::None;
  double crash_frac = 1.0;          ///< Crash: fraction of latency survived
  double latency_multiplier = 1.0;  ///< Straggler: >= straggler_scale
  CorruptionMode corruption = CorruptionMode::MakeNaN;
};

class FaultModel {
 public:
  explicit FaultModel(FaultModelConfig config);

  const FaultModelConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled(); }

  /// The fault (if any) for this dispatch. Pure in (config.seed, client,
  /// epoch): order-independent and identical across strategies.
  FaultEvent at(std::size_t client, std::size_t epoch) const;

  /// Whether this client is persistently flaky (boosted crash rate). Pure in
  /// (config.seed, client); always false when flaky_fraction == 0.
  bool flaky(std::size_t client) const;

  /// Whether this client belongs to the adversarial straggler cohort. Pure
  /// in (config.seed, client); always false when targeted_fraction == 0.
  bool targeted(std::size_t client) const;

  /// Applies `event`'s corruption mode to a delta in place (no-op unless
  /// kind == Corruption). Deterministic — no RNG involved.
  void corrupt(const FaultEvent& event, std::span<float> delta) const;

 private:
  FaultModelConfig config_;
};

/// Per-client circuit breaker with exponential cooldown.
///
/// Closed: dispatch allowed. After `failure_threshold` consecutive failures
/// the breaker opens for `base_cooldown * 2^(trips-1)` epochs (capped at
/// `max_cooldown`); while open the client must not be dispatched. When the
/// cooldown elapses the breaker is half-open: one probe dispatch is allowed —
/// success closes it, another failure re-opens it with a doubled cooldown.
class CircuitBreaker {
 public:
  struct Config {
    std::size_t failure_threshold = 3;
    std::size_t base_cooldown = 4;   ///< epochs, first trip
    std::size_t max_cooldown = 256;  ///< cooldown growth cap
  };

  enum class State { Closed, Open, HalfOpen };

  /// Checkpointable mutable state (fl/checkpoint.hpp): everything the
  /// breaker accumulates across epochs, so a resumed server quarantines the
  /// same clients an uninterrupted run would.
  struct Snapshot {
    std::size_t consecutive_failures = 0;
    std::size_t trips = 0;
    std::size_t open_until = 0;
    bool tripped = false;
  };

  explicit CircuitBreaker(Config config);

  State state(std::size_t epoch) const;
  /// True when the client may be dispatched at `epoch` (Closed or HalfOpen).
  bool allows(std::size_t epoch) const { return state(epoch) != State::Open; }

  void record_failure(std::size_t epoch);
  void record_success();

  std::size_t consecutive_failures() const { return consecutive_failures_; }
  std::size_t trips() const { return trips_; }
  /// First epoch at which a tripped breaker becomes half-open.
  std::size_t open_until() const { return open_until_; }

  Snapshot snapshot() const {
    return Snapshot{consecutive_failures_, trips_, open_until_, tripped_};
  }
  void restore(const Snapshot& snap) {
    consecutive_failures_ = snap.consecutive_failures;
    trips_ = snap.trips;
    open_until_ = snap.open_until;
    tripped_ = snap.tripped;
  }

 private:
  Config config_;
  std::size_t consecutive_failures_ = 0;
  std::size_t trips_ = 0;
  std::size_t open_until_ = 0;
  bool tripped_ = false;  ///< open/half-open until the next success
};

}  // namespace haccs::sim
