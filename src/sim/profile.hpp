// System-heterogeneity device profiles (paper Table II).
//
// Each client draws a compute category and a bandwidth category
// independently with probabilities 60% / 20% / 15% / 5% (fast / medium /
// slow / very slow); numeric values are drawn uniformly over the category's
// interval. Network latency is 20-200 ms for every category, per the table.
#pragma once

#include <string>

#include "src/common/rng.hpp"

namespace haccs::sim {

enum class PerfCategory : int { Fast = 0, Medium = 1, Slow = 2, VerySlow = 3 };

std::string to_string(PerfCategory category);

/// Category assignment probabilities, in enum order (paper §V-A).
inline constexpr double kCategoryProbabilities[4] = {0.60, 0.20, 0.15, 0.05};

struct DeviceProfile {
  PerfCategory compute_category = PerfCategory::Fast;
  PerfCategory bandwidth_category = PerfCategory::Fast;

  /// Multiplier on baseline compute time: 1.0 (fast), 1.5-2.0, 2.0-2.5,
  /// 2.5-3.0 per Table II.
  double compute_multiplier = 1.0;
  /// Link bandwidth in Mbps: 75-100, 50-75, 25-50, 1-25 per Table II.
  double bandwidth_mbps = 100.0;
  /// One-way network latency in seconds: uniform over 20-200 ms.
  double network_latency_s = 0.02;

  /// Draws a profile with the Table II category probabilities and intervals.
  static DeviceProfile sample(Rng& rng);

  /// The Table II interval bounds (exposed for tests / the micro bench).
  static std::pair<double, double> compute_multiplier_range(PerfCategory c);
  static std::pair<double, double> bandwidth_range_mbps(PerfCategory c);
};

}  // namespace haccs::sim
