// Symmetric pairwise-distance matrix.
//
// The HACCS server computes all pairwise summary distances once at the start
// of training (Algorithm 1, "computed at the start of training"); both
// density-based clustering algorithms then operate purely on this matrix.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace haccs::clustering {

class DistanceMatrix {
 public:
  /// Zero-initialized n x n matrix.
  explicit DistanceMatrix(std::size_t n);

  /// Builds the matrix by evaluating `distance(i, j)` for every i < j
  /// (diagonal fixed at 0, symmetry enforced). Evaluation is parallelized
  /// with balanced pairing: task t computes rows t and n-1-t, so every task
  /// does exactly n-1 column evaluations (a plain per-row split gives the
  /// first worker ~2x the last's load, since row i only owns n-i-1 columns).
  static DistanceMatrix build(
      std::size_t n,
      const std::function<double(std::size_t, std::size_t)>& distance);

  std::size_t size() const { return n_; }

  double at(std::size_t i, std::size_t j) const { return data_[i * n_ + j]; }
  void set(std::size_t i, std::size_t j, double value);

  /// Indices of all points within `eps` of `center` (excluding the center
  /// itself), i.e. the eps-neighborhood used by DBSCAN/OPTICS.
  std::vector<std::size_t> neighbors_within(std::size_t center,
                                            double eps) const;

  /// Distance to the k-th nearest other point (k >= 1) — the core-distance
  /// primitive.
  double kth_nearest_distance(std::size_t center, std::size_t k) const;

  /// Same, reusing `scratch` for the row copy instead of allocating an
  /// n-element vector per call (OPTICS computes one core distance per point,
  /// which made the per-call allocation a measurable cost at scale).
  double kth_nearest_distance(std::size_t center, std::size_t k,
                              std::vector<double>& scratch) const;

 private:
  std::size_t n_;
  std::vector<double> data_;
};

}  // namespace haccs::clustering
