#include "src/clustering/distance_matrix.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/common/threadpool.hpp"
#include "src/obs/trace.hpp"

namespace haccs::clustering {

DistanceMatrix::DistanceMatrix(std::size_t n) : n_(n), data_(n * n, 0.0) {
  if (n == 0) throw std::invalid_argument("DistanceMatrix: empty");
}

DistanceMatrix DistanceMatrix::build(
    std::size_t n,
    const std::function<double(std::size_t, std::size_t)>& distance) {
  DistanceMatrix m(n);
  obs::Span span("distance_matrix", "clustering");
  auto fill_row = [&](std::size_t i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = distance(i, j);
      if (d < 0.0) {
        throw std::invalid_argument("DistanceMatrix: negative distance");
      }
      // Each (i, j) cell is written by exactly one row task; (j, i) mirrors
      // are written by row i only, so there are no concurrent writers.
      m.data_[i * n + j] = d;
      m.data_[j * n + i] = d;
    }
  };
  // Balanced pairing: row i owns n-i-1 columns, so task t takes the short
  // row t and the long row n-1-t together — every task does exactly n-1
  // column evaluations instead of the first worker getting ~2x the last's.
  parallel_for(0, (n + 1) / 2, [&](std::size_t t) {
    fill_row(t);
    const std::size_t mirror = n - 1 - t;
    if (mirror != t) fill_row(mirror);
  });
  return m;
}

void DistanceMatrix::set(std::size_t i, std::size_t j, double value) {
  if (i >= n_ || j >= n_) throw std::out_of_range("DistanceMatrix::set");
  if (value < 0.0) {
    throw std::invalid_argument("DistanceMatrix: negative distance");
  }
  data_[i * n_ + j] = value;
  data_[j * n_ + i] = value;
}

std::vector<std::size_t> DistanceMatrix::neighbors_within(std::size_t center,
                                                          double eps) const {
  if (center >= n_) throw std::out_of_range("neighbors_within");
  std::vector<std::size_t> out;
  for (std::size_t j = 0; j < n_; ++j) {
    if (j != center && at(center, j) <= eps) out.push_back(j);
  }
  return out;
}

double DistanceMatrix::kth_nearest_distance(std::size_t center,
                                            std::size_t k) const {
  std::vector<double> scratch;
  return kth_nearest_distance(center, k, scratch);
}

double DistanceMatrix::kth_nearest_distance(std::size_t center, std::size_t k,
                                            std::vector<double>& scratch) const {
  if (center >= n_) throw std::out_of_range("kth_nearest_distance");
  if (k == 0 || k >= n_) {
    throw std::invalid_argument("kth_nearest_distance: k must be in [1, n)");
  }
  scratch.clear();
  scratch.reserve(n_ - 1);
  for (std::size_t j = 0; j < n_; ++j) {
    if (j != center) scratch.push_back(at(center, j));
  }
  std::nth_element(scratch.begin(),
                   scratch.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   scratch.end());
  return scratch[k - 1];
}

}  // namespace haccs::clustering
