#include "src/clustering/optics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/common/error.hpp"
#include "src/obs/trace.hpp"

namespace haccs::clustering {

std::vector<double> OpticsResult::reachability_plot() const {
  std::vector<double> plot;
  plot.reserve(ordering.size());
  for (std::size_t p : ordering) plot.push_back(reachability[p]);
  return plot;
}

OpticsResult optics(const NeighborIndex& index, const OpticsConfig& config) {
  if (config.min_pts == 0) throw std::invalid_argument("optics: min_pts == 0");
  obs::Span span("optics", "clustering");
  const std::size_t n = index.size();
  OpticsResult result;
  result.ordering.reserve(n);
  result.reachability.assign(n, kUndefined);
  result.core_distance.assign(n, kUndefined);

  // Precompute core distances: distance to the (min_pts - 1)-th nearest
  // other point, defined only when that distance is within max_eps. A sparse
  // index with fewer than min_pts - 1 candidate neighbors answers +infinity,
  // which the isfinite guard maps to "not a core point".
  std::vector<double> scratch;
  for (std::size_t p = 0; p < n; ++p) {
    if (config.min_pts == 1) {
      result.core_distance[p] = 0.0;
      continue;
    }
    if (config.min_pts - 1 < n) {
      const double d = index.kth_nearest_distance(p, config.min_pts - 1, scratch);
      if (std::isfinite(d) && d <= config.max_eps) result.core_distance[p] = d;
    }
  }

  std::vector<bool> processed(n, false);
  // Seed list with linear min-extraction: O(n^2) overall, which is fine for
  // the client counts one shard of a federated scheduler sees (tens to
  // thousands; src/scale bounds shard sizes).
  std::vector<std::size_t> seeds;

  auto update_seeds = [&](std::size_t center) {
    const double core = result.core_distance[center];
    if (core == kUndefined) return;
    index.for_each_neighbor_within(
        center, config.max_eps, [&](std::size_t o, double d) {
          if (processed[o]) return;
          const double new_reach = std::max(core, d);
          if (new_reach < result.reachability[o]) {
            if (result.reachability[o] == kUndefined) seeds.push_back(o);
            result.reachability[o] = new_reach;
          }
        });
  };

  for (std::size_t start = 0; start < n; ++start) {
    if (processed[start]) continue;
    processed[start] = true;
    result.ordering.push_back(start);
    update_seeds(start);
    while (!seeds.empty()) {
      // Extract the seed with minimum reachability (ties: lowest id, for
      // deterministic ordering).
      std::size_t best = 0;
      for (std::size_t i = 1; i < seeds.size(); ++i) {
        const double ri = result.reachability[seeds[i]];
        const double rb = result.reachability[seeds[best]];
        if (ri < rb || (ri == rb && seeds[i] < seeds[best])) best = i;
      }
      const std::size_t q = seeds[best];
      seeds.erase(seeds.begin() + static_cast<std::ptrdiff_t>(best));
      if (processed[q]) continue;
      processed[q] = true;
      result.ordering.push_back(q);
      update_seeds(q);
    }
  }
  HACCS_CHECK(result.ordering.size() == n);
  return result;
}

OpticsResult optics(const DistanceMatrix& distances,
                    const OpticsConfig& config) {
  return optics(DenseNeighborIndex(distances), config);
}

std::vector<int> extract_dbscan(const OpticsResult& result, double eps,
                                std::size_t min_pts) {
  (void)min_pts;  // core distances already encode the min_pts used by optics()
  const std::size_t n = result.ordering.size();
  std::vector<int> labels(n, -1);
  int cluster = -1;
  int next_cluster = 0;
  for (std::size_t p : result.ordering) {
    if (result.reachability[p] > eps) {
      if (result.core_distance[p] <= eps) {
        cluster = next_cluster++;
        labels[p] = cluster;
      } else {
        labels[p] = -1;  // noise
        cluster = -1;
      }
    } else {
      // Reachable from the previous cluster at this eps. A reachable point
      // whose predecessor was noise can only occur after a component break,
      // which reachability > eps already covers; cluster >= 0 here.
      labels[p] = cluster >= 0 ? cluster : (cluster = next_cluster++);
    }
  }
  return labels;
}

namespace {

/// The ξ comparisons treat the virtual point past the end as +inf.
struct Plot {
  const std::vector<double>& r;
  std::size_t n;
  double at(std::size_t i) const { return i < n ? r[i] : kUndefined; }
  bool steep_down(std::size_t i, double xi) const {
    return at(i) * (1.0 - xi) >= at(i + 1);
  }
  bool down(std::size_t i) const { return at(i) >= at(i + 1); }
  bool steep_up(std::size_t i, double xi) const {
    return at(i) <= at(i + 1) * (1.0 - xi);
  }
  bool up(std::size_t i) const { return at(i) <= at(i + 1); }
};

struct SteepDownArea {
  std::size_t start;
  std::size_t end;
  double mib;  // maximum in between (since the area ended)
};

}  // namespace

std::vector<int> extract_xi(const OpticsResult& result, double xi,
                            std::size_t min_cluster_size) {
  if (xi <= 0.0 || xi >= 1.0) {
    throw std::invalid_argument("extract_xi: xi must be in (0, 1)");
  }
  const std::vector<double> plot = result.reachability_plot();
  const std::size_t n = plot.size();
  if (min_cluster_size < 2) min_cluster_size = 2;
  Plot P{plot, n};

  std::vector<SteepDownArea> sdas;
  std::vector<std::pair<std::size_t, std::size_t>> clusters;  // [s, e]

  auto filter_sdas = [&](double mib) {
    std::vector<SteepDownArea> kept;
    for (auto& d : sdas) {
      if (P.at(d.start) * (1.0 - xi) >= mib) {
        d.mib = std::max(d.mib, mib);
        kept.push_back(d);
      }
    }
    sdas = std::move(kept);
  };

  // Walks to the end of a steep region. Up to min_pts-ish non-steep (but
  // still monotone) points may interrupt a steep area; we allow
  // min_cluster_size interruptions, mirroring the original paper's MinPts.
  auto extend = [&](std::size_t i, auto&& is_steep, auto&& is_mono) {
    std::size_t end = i;
    std::size_t non_steep = 0;
    std::size_t j = i + 1;
    while (j + 1 <= n) {
      if (!is_mono(j)) break;
      if (is_steep(j)) {
        end = j;
        non_steep = 0;
      } else {
        ++non_steep;
        if (non_steep >= min_cluster_size) break;
      }
      ++j;
    }
    return end;
  };

  double mib = 0.0;
  std::size_t index = 0;
  while (index + 1 < n + 1) {  // compare against the virtual +inf at n
    mib = std::max(mib, P.at(index));
    if (P.steep_down(index, xi)) {
      filter_sdas(mib);
      const std::size_t d_start = index;
      const std::size_t d_end =
          extend(index, [&](std::size_t j) { return P.steep_down(j, xi); },
                 [&](std::size_t j) { return P.down(j); });
      sdas.push_back({d_start, d_end, 0.0});
      index = d_end + 1;
      mib = P.at(index);
    } else if (P.steep_up(index, xi)) {
      filter_sdas(mib);
      const std::size_t u_start = index;
      const std::size_t u_end =
          extend(index, [&](std::size_t j) { return P.steep_up(j, xi); },
                 [&](std::size_t j) { return P.up(j); });
      index = u_end + 1;
      mib = P.at(index);
      const double end_val = P.at(u_end + 1);
      for (const auto& d : sdas) {
        // Condition 4 of the ξ method: the in-between maximum must sit below
        // both boundary reachabilities (scaled by 1 - ξ).
        if (d.mib > std::min(P.at(d.start), end_val) * (1.0 - xi)) continue;
        std::size_t s = d.start;
        std::size_t e = u_end;
        if (P.at(d.start) * (1.0 - xi) >= end_val) {
          // Down side reaches deeper: trim the start to the first point
          // at or below the closing reachability.
          for (std::size_t j = d.start; j <= d.end; ++j) {
            if (P.at(j) <= end_val) {
              s = j;
              break;
            }
          }
        } else if (end_val * (1.0 - xi) >= P.at(d.start)) {
          // Up side reaches higher: trim the end to the last point at or
          // below the opening reachability.
          for (std::size_t j = u_end + 1; j-- > u_start;) {
            if (P.at(j) <= P.at(d.start)) {
              e = j;
              break;
            }
          }
        }
        if (s > d.end || e < u_start) continue;
        if (e + 1 - s < min_cluster_size) continue;
        clusters.emplace_back(s, e);
      }
    } else {
      ++index;
    }
  }

  // Leaf labeling: larger (outer) clusters first so inner clusters overwrite.
  std::sort(clusters.begin(), clusters.end(),
            [](const auto& a, const auto& b) {
              return (a.second - a.first) > (b.second - b.first);
            });
  std::vector<int> labels(n, -1);
  int next_label = 0;
  for (const auto& [s, e] : clusters) {
    const int label = next_label++;
    for (std::size_t i = s; i <= e && i < n; ++i) {
      labels[result.ordering[i]] = label;
    }
  }
  return labels;
}

namespace {

/// Mean silhouette coefficient of a labeling over the raw distances.
/// s(i) = (b_i - a_i) / max(a_i, b_i) with a_i the mean distance to the
/// point's own cluster and b_i the smallest mean distance to any other
/// cluster. Noise points contribute 0 — so a cut that "improves" its
/// clusters by declaring loose-but-real clusters noise pays for every point
/// it discards, and over-coarse cuts pay through inflated a_i.
double mean_silhouette(const std::vector<int>& labels,
                       const NeighborIndex& index) {
  const std::size_t n = labels.size();
  int max_label = -1;
  for (int l : labels) max_label = std::max(max_label, l);
  if (max_label < 1) return 0.0;  // fewer than two clusters: no structure
  const auto k = static_cast<std::size_t>(max_label) + 1;

  std::vector<std::size_t> cluster_size(k, 0);
  for (int l : labels) {
    if (l >= 0) ++cluster_size[static_cast<std::size_t>(l)];
  }

  double total = 0.0;
  std::vector<double> sum_to_cluster(k);
  for (std::size_t i = 0; i < n; ++i) {
    if (labels[i] < 0) continue;  // noise contributes 0
    std::fill(sum_to_cluster.begin(), sum_to_cluster.end(), 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i || labels[j] < 0) continue;
      sum_to_cluster[static_cast<std::size_t>(labels[j])] += index.distance(i, j);
    }
    const auto own = static_cast<std::size_t>(labels[i]);
    if (cluster_size[own] < 2) continue;  // singleton: silhouette 0
    const double a =
        sum_to_cluster[own] / static_cast<double>(cluster_size[own] - 1);
    if (!std::isfinite(a)) continue;  // estimator-less sparse pair
    double b = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < k; ++c) {
      if (c == own || cluster_size[c] == 0) continue;
      b = std::min(b, sum_to_cluster[c] / static_cast<double>(cluster_size[c]));
    }
    if (!std::isfinite(b)) continue;
    const double denom = std::max(a, b);
    if (denom > 0.0) total += (b - a) / denom;
  }
  return total / static_cast<double>(n);
}

}  // namespace

std::vector<int> extract_auto(const OpticsResult& result,
                              const NeighborIndex& index,
                              std::size_t min_pts) {
  // "One cluster" fallback: a cut above every finite reachability.
  auto one_cluster = [&](double max_finite) {
    return extract_dbscan(result, max_finite * (1.0 + 1e-9) + 1e-18, min_pts);
  };

  std::vector<double> finite;
  for (double r : result.reachability) {
    if (std::isfinite(r)) finite.push_back(r);
  }
  if (finite.size() < 4) {
    return one_cluster(finite.empty() ? 1.0 : *std::max_element(finite.begin(),
                                                                finite.end()));
  }
  std::sort(finite.begin(), finite.end());
  std::vector<double> gaps;
  gaps.reserve(finite.size() - 1);
  for (std::size_t i = 0; i + 1 < finite.size(); ++i) {
    gaps.push_back(finite[i + 1] - finite[i]);
  }
  std::vector<double> sorted_gaps = gaps;
  std::sort(sorted_gaps.begin(), sorted_gaps.end());
  const double median_gap = sorted_gaps[sorted_gaps.size() / 2];

  // Candidate cuts: gaps that (a) dominate the typical spacing — ruling out
  // smooth profiles like evenly-spaced chains — and (b) leave a substantial
  // fraction of reachability values on each side — ruling out "gaps"
  // produced by a single stray value at either end of a concentrated
  // profile, which is exactly what IID data yields.
  struct Candidate {
    double eps;
    double gap;
  };
  std::vector<Candidate> candidates;
  const auto n = static_cast<double>(finite.size());
  for (std::size_t i = 0; i + 1 < finite.size(); ++i) {
    const double frac_below = static_cast<double>(i + 1) / n;
    if (frac_below < 0.25 || frac_below > 0.92) continue;
    if (gaps[i] <= 3.0 * median_gap || gaps[i] <= 1e-12) continue;
    candidates.push_back({(finite[i] + finite[i + 1]) / 2.0, gaps[i]});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) { return a.gap > b.gap; });
  if (candidates.size() > 5) candidates.resize(5);

  // Score each candidate clustering by mean silhouette on the raw distances
  // and keep the best; accept a split only when the silhouette shows real
  // structure. IID data fails this (every pairwise distance is the same
  // sampling noise, silhouette ~0) and degrades to a single cluster, the
  // paper's §V-D1 expectation.
  constexpr double kMinSilhouette = 0.25;
  double best_score = kMinSilhouette;
  std::vector<int> best_labels;
  for (const auto& candidate : candidates) {
    auto labels = extract_dbscan(result, candidate.eps, min_pts);
    const double score = mean_silhouette(labels, index);
    if (score > best_score) {
      best_score = score;
      best_labels = std::move(labels);
    }
  }
  if (!best_labels.empty()) return best_labels;
  return one_cluster(finite.back());
}

std::vector<int> extract_auto(const OpticsResult& result,
                              const DistanceMatrix& distances,
                              std::size_t min_pts) {
  return extract_auto(result, DenseNeighborIndex(distances), min_pts);
}

}  // namespace haccs::clustering

