#include "src/clustering/neighbor_index.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace haccs::clustering {

std::vector<std::size_t> NeighborIndex::neighbors_within(std::size_t center,
                                                         double eps) const {
  std::vector<std::size_t> out;
  for_each_neighbor_within(center, eps,
                           [&](std::size_t j, double) { out.push_back(j); });
  return out;
}

// ---------------------------------------------------------------------------
// DenseNeighborIndex

void DenseNeighborIndex::for_each_neighbor_within(
    std::size_t center, double eps,
    const std::function<void(std::size_t, double)>& visit) const {
  const std::size_t n = matrix_->size();
  if (center >= n) throw std::out_of_range("for_each_neighbor_within");
  for (std::size_t j = 0; j < n; ++j) {
    if (j == center) continue;
    const double d = matrix_->at(center, j);
    if (d <= eps) visit(j, d);
  }
}

double DenseNeighborIndex::kth_nearest_distance(
    std::size_t center, std::size_t k, std::vector<double>& scratch) const {
  return matrix_->kth_nearest_distance(center, k, scratch);
}

// ---------------------------------------------------------------------------
// SparseNeighborGraph

SparseNeighborGraph::SparseNeighborGraph(std::size_t n) : adjacency_(n) {
  if (n == 0) throw std::invalid_argument("SparseNeighborGraph: empty");
}

void SparseNeighborGraph::add_edge(std::size_t i, std::size_t j, double d) {
  if (finalized_) {
    throw std::logic_error("SparseNeighborGraph: add_edge after finalize");
  }
  if (i >= adjacency_.size() || j >= adjacency_.size() || i == j) {
    throw std::out_of_range("SparseNeighborGraph::add_edge");
  }
  if (d < 0.0 || !std::isfinite(d)) {
    throw std::invalid_argument("SparseNeighborGraph: bad distance");
  }
  adjacency_[i].push_back({j, d});
  adjacency_[j].push_back({i, d});
}

void SparseNeighborGraph::finalize() {
  edges_ = 0;
  for (auto& adj : adjacency_) {
    std::sort(adj.begin(), adj.end(), [](const Edge& a, const Edge& b) {
      return a.to != b.to ? a.to < b.to : a.d < b.d;
    });
    adj.erase(std::unique(adj.begin(), adj.end(),
                          [](const Edge& a, const Edge& b) {
                            return a.to == b.to;
                          }),
              adj.end());
    adj.shrink_to_fit();
    edges_ += adj.size();
  }
  edges_ /= 2;
  finalized_ = true;
}

double SparseNeighborGraph::distance(std::size_t i, std::size_t j) const {
  if (i == j) return 0.0;
  const auto& adj = adjacency_[i];
  const auto it = std::lower_bound(
      adj.begin(), adj.end(), j,
      [](const Edge& e, std::size_t to) { return e.to < to; });
  if (it != adj.end() && it->to == j) return it->d;
  if (estimator_) return estimator_(i, j);
  return std::numeric_limits<double>::infinity();
}

void SparseNeighborGraph::for_each_neighbor_within(
    std::size_t center, double eps,
    const std::function<void(std::size_t, double)>& visit) const {
  for (const Edge& e : adjacency_[center]) {
    if (e.d <= eps) visit(e.to, e.d);
  }
}

double SparseNeighborGraph::kth_nearest_distance(
    std::size_t center, std::size_t k, std::vector<double>& scratch) const {
  if (center >= adjacency_.size()) {
    throw std::out_of_range("kth_nearest_distance");
  }
  if (k == 0) {
    throw std::invalid_argument("kth_nearest_distance: k must be >= 1");
  }
  const auto& adj = adjacency_[center];
  if (adj.size() < k) return std::numeric_limits<double>::infinity();
  scratch.clear();
  for (const Edge& e : adj) scratch.push_back(e.d);
  std::nth_element(scratch.begin(),
                   scratch.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   scratch.end());
  return scratch[k - 1];
}

}  // namespace haccs::clustering
