#include "src/clustering/dbscan.hpp"

#include <deque>
#include <stdexcept>

#include "src/obs/trace.hpp"

namespace haccs::clustering {

std::vector<int> dbscan(const NeighborIndex& index, const DbscanConfig& config) {
  if (config.eps < 0.0) throw std::invalid_argument("dbscan: eps < 0");
  if (config.min_pts == 0) throw std::invalid_argument("dbscan: min_pts == 0");
  obs::Span span("dbscan", "clustering");
  const std::size_t n = index.size();
  constexpr int kUnvisited = -2;
  constexpr int kNoise = -1;
  std::vector<int> labels(n, kUnvisited);

  auto is_core = [&](const std::vector<std::size_t>& nbrs) {
    return nbrs.size() + 1 >= config.min_pts;  // +1 counts the point itself
  };

  int next_cluster = 0;
  for (std::size_t p = 0; p < n; ++p) {
    if (labels[p] != kUnvisited) continue;
    auto nbrs = index.neighbors_within(p, config.eps);
    if (!is_core(nbrs)) {
      labels[p] = kNoise;
      continue;
    }
    const int cluster = next_cluster++;
    labels[p] = cluster;
    std::deque<std::size_t> frontier(nbrs.begin(), nbrs.end());
    while (!frontier.empty()) {
      const std::size_t q = frontier.front();
      frontier.pop_front();
      if (labels[q] == kNoise) labels[q] = cluster;  // border point
      if (labels[q] != kUnvisited) continue;
      labels[q] = cluster;
      auto q_nbrs = index.neighbors_within(q, config.eps);
      if (is_core(q_nbrs)) {
        for (std::size_t r : q_nbrs) {
          if (labels[r] == kUnvisited || labels[r] == kNoise) {
            frontier.push_back(r);
          }
        }
      }
    }
  }
  return labels;
}

std::vector<int> dbscan(const DistanceMatrix& distances,
                        const DbscanConfig& config) {
  return dbscan(DenseNeighborIndex(distances), config);
}

}  // namespace haccs::clustering
