// OPTICS (Ankerst et al., SIGMOD'99) over a precomputed distance matrix.
//
// OPTICS produces a reachability ordering rather than a flat clustering;
// three extraction methods turn it into cluster labels:
//   * extract_dbscan(eps)   — the DBSCAN-equivalent cut at a fixed eps;
//   * extract_xi(xi)        — the paper's steep-area ξ method;
//   * extract_auto()        — parameter-free cut at the largest gap in the
//                             reachability profile (HACCS's default: the
//                             paper chose OPTICS for having one fewer
//                             hyperparameter than DBSCAN, and auto-gap keeps
//                             the flat extraction hyperparameter-free too).
// Labels follow the DBSCAN convention: ids from 0, noise = -1.
#pragma once

#include <limits>
#include <vector>

#include "src/clustering/distance_matrix.hpp"
#include "src/clustering/neighbor_index.hpp"

namespace haccs::clustering {

inline constexpr double kUndefined = std::numeric_limits<double>::infinity();

struct OpticsConfig {
  std::size_t min_pts = 2;
  /// Neighborhood cap; infinity means "consider all points" (fine for the
  /// client-count scales HACCS deals with).
  double max_eps = kUndefined;
};

struct OpticsResult {
  /// Visit order of all points.
  std::vector<std::size_t> ordering;
  /// Reachability distance per point (indexed by point id); kUndefined for
  /// points never reached within max_eps (and the first point of each
  /// connected component).
  std::vector<double> reachability;
  /// Core distance per point; kUndefined when the point is not a core point
  /// within max_eps.
  std::vector<double> core_distance;

  /// Reachability values in visit order — the "reachability plot".
  std::vector<double> reachability_plot() const;
};

/// OPTICS over any neighbor index. Eps-neighborhoods and core distances are
/// served by the index, so the same algorithm runs on the exact dense matrix
/// (DenseNeighborIndex — bit-identical to the pre-seam row scans) or on an
/// ANN-pruned SparseNeighborGraph whose cost scales with candidate degree.
OpticsResult optics(const NeighborIndex& index, const OpticsConfig& config);

/// Exact path: dense-matrix adapter over the seam.
OpticsResult optics(const DistanceMatrix& distances, const OpticsConfig& config);

/// DBSCAN-equivalent clustering at `eps` from an OPTICS result.
std::vector<int> extract_dbscan(const OpticsResult& result, double eps,
                                std::size_t min_pts);

/// ξ-extraction: clusters are ranges of the ordering bounded by ξ-steep
/// down/up areas (reachability drops/rises by a factor of at least 1 - ξ).
/// Returns the *leaf* clusters of the hierarchy (each point's innermost
/// cluster), noise = -1.
std::vector<int> extract_xi(const OpticsResult& result, double xi,
                            std::size_t min_cluster_size);

/// Parameter-free extraction. Candidate cut levels are the dominant gaps in
/// the sorted reachability profile (gaps that clearly exceed the typical
/// spacing and leave a substantial fraction of points on each side). Each
/// candidate clustering is scored by validity on the original distances —
/// mean within-cluster distance over mean cross-cluster distance — and the
/// best cut is accepted only when that ratio shows real structure
/// (within ≪ cross). Otherwise everything forms one cluster, which is the
/// correct degeneration for IID data (paper §V-D1).
std::vector<int> extract_auto(const OpticsResult& result,
                              const NeighborIndex& index,
                              std::size_t min_pts);

std::vector<int> extract_auto(const OpticsResult& result,
                              const DistanceMatrix& distances,
                              std::size_t min_pts);

}  // namespace haccs::clustering
