// Neighbor-query seam between distance storage and the density-based
// clustering algorithms.
//
// OPTICS and DBSCAN only ever ask three questions of the pairwise distances:
// "who is within eps of p", "how far is p's k-th nearest neighbor", and
// (for extraction scoring) "how far apart are i and j". NeighborIndex is
// that contract. Two implementations exist:
//
//   * DenseNeighborIndex  — adapter over the exact O(N²) DistanceMatrix.
//     Query results are bit-identical to the pre-seam row scans, so the
//     exact pipeline's output is unchanged (the runtime-toggle guarantee).
//   * SparseNeighborGraph — adjacency lists holding exact distances for the
//     ANN-pruned candidate pairs only (src/scale), with an optional
//     estimator (sketch-space Hellinger) answering distance() for pairs the
//     pruning skipped. Memory and query cost scale with the candidate
//     degree, not N.
#pragma once

#include <cstddef>
#include <functional>
#include <limits>
#include <vector>

#include "src/clustering/distance_matrix.hpp"

namespace haccs::clustering {

class NeighborIndex {
 public:
  virtual ~NeighborIndex() = default;

  virtual std::size_t size() const = 0;

  /// Distance between two points. Sparse implementations may answer with a
  /// bounded-error estimate for pairs outside the candidate set.
  virtual double distance(std::size_t i, std::size_t j) const = 0;

  /// Invokes `visit(j, d)` for every j != center with d(center, j) <= eps,
  /// in ascending j order (determinism contract: OPTICS tie-breaking and
  /// DBSCAN frontier order depend on it).
  virtual void for_each_neighbor_within(
      std::size_t center, double eps,
      const std::function<void(std::size_t, double)>& visit) const = 0;

  /// Distance to the k-th nearest other point (k >= 1) — the core-distance
  /// primitive. `scratch` is caller-provided storage reused across calls
  /// (OPTICS calls this once per point; a fresh allocation per call was a
  /// measurable cost at scale). Returns +infinity when fewer than k
  /// neighbors are known to the index.
  virtual double kth_nearest_distance(std::size_t center, std::size_t k,
                                      std::vector<double>& scratch) const = 0;

  /// Convenience form of for_each_neighbor_within collecting the ids.
  std::vector<std::size_t> neighbors_within(std::size_t center,
                                            double eps) const;
};

/// Exact adapter over a dense DistanceMatrix (the pre-PR behavior).
class DenseNeighborIndex final : public NeighborIndex {
 public:
  explicit DenseNeighborIndex(const DistanceMatrix& matrix)
      : matrix_(&matrix) {}

  std::size_t size() const override { return matrix_->size(); }
  double distance(std::size_t i, std::size_t j) const override {
    return matrix_->at(i, j);
  }
  void for_each_neighbor_within(
      std::size_t center, double eps,
      const std::function<void(std::size_t, double)>& visit) const override;
  double kth_nearest_distance(std::size_t center, std::size_t k,
                              std::vector<double>& scratch) const override;

 private:
  const DistanceMatrix* matrix_;
};

/// Sparse symmetric neighbor graph over exact distances for candidate pairs.
/// Built by scale::build_candidate_graph; adjacency is sorted by neighbor id
/// after finalize(). Pairs without an edge fall back to `estimator` (when
/// set) or +infinity, which density queries treat as "not a neighbor".
class SparseNeighborGraph final : public NeighborIndex {
 public:
  explicit SparseNeighborGraph(std::size_t n);

  /// Records d(i, j) = d(j, i) = d. Duplicate edges are tolerated
  /// (deduplicated by finalize()); negative distances throw.
  void add_edge(std::size_t i, std::size_t j, double d);

  /// Sorts adjacency by neighbor id and deduplicates. Must be called before
  /// any query; add_edge after finalize() throws.
  void finalize();

  /// Estimator for pairs outside the candidate set (e.g. sketch-space
  /// Hellinger). Without one, distance() returns +infinity for such pairs.
  void set_estimator(std::function<double(std::size_t, std::size_t)> est) {
    estimator_ = std::move(est);
  }

  std::size_t size() const override { return adjacency_.size(); }
  std::size_t edge_count() const { return edges_; }
  double distance(std::size_t i, std::size_t j) const override;
  void for_each_neighbor_within(
      std::size_t center, double eps,
      const std::function<void(std::size_t, double)>& visit) const override;
  double kth_nearest_distance(std::size_t center, std::size_t k,
                              std::vector<double>& scratch) const override;

 private:
  struct Edge {
    std::size_t to;
    double d;
  };
  std::vector<std::vector<Edge>> adjacency_;
  std::size_t edges_ = 0;
  bool finalized_ = false;
  std::function<double(std::size_t, std::size_t)> estimator_;
};

}  // namespace haccs::clustering
