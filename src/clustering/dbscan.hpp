// DBSCAN (Ester et al., KDD'96) over a precomputed distance matrix.
//
// Returned labels: cluster ids 0, 1, ... in order of discovery; -1 marks
// noise. A point is a core point when its eps-neighborhood (excluding
// itself) contains at least `min_pts - 1` other points, i.e. `min_pts`
// points counting itself — matching the original paper's convention.
#pragma once

#include <vector>

#include "src/clustering/distance_matrix.hpp"
#include "src/clustering/neighbor_index.hpp"

namespace haccs::clustering {

struct DbscanConfig {
  double eps = 0.3;
  std::size_t min_pts = 2;
};

/// DBSCAN over any neighbor index (dense-exact or ANN-pruned sparse; see
/// neighbor_index.hpp for the seam contract).
std::vector<int> dbscan(const NeighborIndex& index, const DbscanConfig& config);

std::vector<int> dbscan(const DistanceMatrix& distances,
                        const DbscanConfig& config);

}  // namespace haccs::clustering
