#include "src/common/threadpool.hpp"

#include <algorithm>
#include <exception>

#include "src/obs/metrics.hpp"
#include "src/obs/obs.hpp"

namespace haccs {

namespace {
/// Set while the current thread is a pool worker; nested parallel_for calls
/// from inside a task run inline instead of re-entering the queue (blocking
/// a worker on the queue it is supposed to drain can deadlock the pool).
thread_local bool t_inside_pool_worker = false;

obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& gauge =
      obs::Registry::global().gauge("threadpool_queue_depth");
  return gauge;
}

obs::Counter& tasks_counter() {
  static obs::Counter& counter =
      obs::Registry::global().counter("threadpool_tasks_total");
  return counter;
}
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] {
      // Register with the trace thread registry up front so trace lanes and
      // log lines carry stable worker names even for pre-enable threads.
      obs::set_thread_name("worker-" + std::to_string(i + 1));
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> wrapped(std::move(task));
  auto fut = wrapped.get_future();
  if (workers_.empty()) {
    wrapped();  // inline mode
    return fut;
  }
  tasks_counter().inc();
  {
    std::lock_guard lock(mutex_);
    queue_.push(std::move(wrapped));
    queue_depth_gauge().set(static_cast<double>(queue_.size()));
  }
  cv_.notify_one();
  return fut;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 1 ? hw - 1 : 0u;
  }());
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      queue_depth_gauge().set(static_cast<double>(queue_.size()));
    }
    t_inside_pool_worker = true;
    task();  // exceptions are captured by the packaged_task's future
    t_inside_pool_worker = false;
  }
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t workers = pool.size();
  if (workers == 0 || n == 1 || t_inside_pool_worker) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const std::size_t chunks = std::min(n, workers + 1);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    if (lo >= hi) break;
    futures.push_back(pool.submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  parallel_for(ThreadPool::global(), begin, end, fn);
}

}  // namespace haccs
