#include "src/common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace haccs {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table: row arity mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << " |\n";
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|" : "|") << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

namespace {
std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Table: cannot open " + path);
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << csv_escape(row[c]);
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace haccs
