// Minimal leveled logging to stderr.
//
// Benches and examples narrate progress at Info level; the FL round engine
// logs per-round details at Debug. The level is process-global and defaults
// to Info; tests set it to Warn to keep ctest output clean.
//
// Each line is prefixed with an ISO-8601 UTC timestamp, the level tag, and
// the obs thread id ("2026-08-05T12:34:56.789Z [INFO ] [t00] ..."), so log
// lines line up with trace lanes and run events from the same process.
#pragma once

#include <sstream>
#include <string>

namespace haccs {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses "debug" / "info" / "warn" / "error" / "off" (case-insensitive).
/// Throws std::invalid_argument on anything else.
LogLevel parse_log_level(const std::string& name);

namespace detail {
void log_line(LogLevel level, const std::string& message);

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace haccs

#define HACCS_LOG(level)                                  \
  if (static_cast<int>(::haccs::LogLevel::level) <        \
      static_cast<int>(::haccs::log_level())) {           \
  } else                                                  \
    ::haccs::detail::LogStream(::haccs::LogLevel::level)

#define HACCS_DEBUG HACCS_LOG(Debug)
#define HACCS_INFO HACCS_LOG(Info)
#define HACCS_WARN HACCS_LOG(Warn)
#define HACCS_ERROR HACCS_LOG(Error)
