// Deterministic, explicitly-seeded random number generation.
//
// Every stochastic component in this repository takes an Rng (or a seed used
// to construct one) explicitly; there is no global RNG state. This makes all
// experiments bit-reproducible: the paper's dropout experiment (§V-C) relies
// on seeding the generators so the same devices drop under every strategy.
//
// The core generator is xoshiro256**, seeded via SplitMix64 per the
// recommendation of its authors. Distribution sampling is implemented here
// (rather than via <random> distributions) so results are identical across
// standard-library implementations.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace haccs {

/// SplitMix64: used to expand a single 64-bit seed into generator state and
/// to derive independent child seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** pseudo-random generator with explicit seeding and a suite of
/// deterministic distribution samplers.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// The full generator state, exposed so long-running services can
  /// checkpoint and resume a stream bit-exactly (fl/checkpoint.hpp). The
  /// Box-Muller cache is part of the state: dropping it would shift every
  /// subsequent normal() draw by one.
  struct State {
    std::uint64_t s[4] = {0, 0, 0, 0};
    double cached_normal = 0.0;
    bool has_cached_normal = false;
  };

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL);

  /// UniformRandomBitGenerator interface (usable with std::shuffle etc.).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64();

  /// Derive an independent child generator; children with distinct streams
  /// never share state with the parent after the call.
  Rng fork();

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection-free
  /// Lemire reduction with rejection fallback).
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (deterministic, cache of second value).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Laplace(mu, b) via inverse-CDF. Used by the differential-privacy
  /// Laplace mechanism (paper Eq. 5): scale b = 1/epsilon.
  double laplace(double mu, double b);

  /// Exponential with rate lambda.
  double exponential(double lambda);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Sample an index from an unnormalized non-negative weight vector.
  /// Throws std::invalid_argument if all weights are zero or any is negative.
  std::size_t categorical(std::span<const double> weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = uniform_index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// k distinct indices drawn uniformly from [0, n) (partial Fisher-Yates).
  /// Requires k <= n.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// k indices drawn from the categorical distribution given by `weights`,
  /// with replacement (the paper's Weighted-SRSWR primitive).
  std::vector<std::size_t> sample_with_replacement(
      std::span<const double> weights, std::size_t k);

  State state() const {
    State out;
    for (std::size_t i = 0; i < 4; ++i) out.s[i] = s_[i];
    out.cached_normal = cached_normal_;
    out.has_cached_normal = has_cached_normal_;
    return out;
  }

  void set_state(const State& state) {
    for (std::size_t i = 0; i < 4; ++i) s_[i] = state.s[i];
    cached_normal_ = state.cached_normal;
    has_cached_normal_ = state.has_cached_normal;
  }

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace haccs
