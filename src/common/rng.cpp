#include "src/common/rng.hpp"

#include <cmath>
#include <numbers>

namespace haccs {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::fork() { return Rng(next_u64()); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("uniform_index: n must be > 0");
  // Rejection sampling over the largest multiple of n to avoid modulo bias.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % n;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
  const auto range =
      static_cast<std::uint64_t>(hi - lo) + 1;  // hi-lo < 2^63 in practice
  return lo + static_cast<std::int64_t>(uniform_index(range));
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1, u2;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::laplace(double mu, double b) {
  if (b <= 0.0) throw std::invalid_argument("laplace: scale must be > 0");
  // Inverse CDF: u in (-1/2, 1/2), x = mu - b * sign(u) * ln(1 - 2|u|).
  const double u = uniform() - 0.5;
  const double sign = (u < 0.0) ? -1.0 : 1.0;
  return mu - b * sign * std::log(1.0 - 2.0 * std::abs(u));
}

double Rng::exponential(double lambda) {
  if (lambda <= 0.0) throw std::invalid_argument("exponential: rate must be > 0");
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::size_t Rng::categorical(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0 || !std::isfinite(w)) {
      throw std::invalid_argument("categorical: weights must be finite and >= 0");
    }
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("categorical: total weight must be > 0");
  }
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  // Floating-point rounding: return the last index with positive weight.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  if (k > n) {
    throw std::invalid_argument("sample_without_replacement: k > n");
  }
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + uniform_index(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

std::vector<std::size_t> Rng::sample_with_replacement(
    std::span<const double> weights, std::size_t k) {
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) out.push_back(categorical(weights));
  return out;
}

}  // namespace haccs
