// Test-only mutation hooks for the fuzzer's mutation-smoke check
// (TESTING.md "Mutation smoke").
//
// A mutation is a deliberate, compile-time-injected bug that the fuzzing
// oracles must detect — the standing proof that the oracle suite has teeth.
// Hook sites live in production code behind `#if HACCS_MUTATIONS` (a CMake
// option, ON by default for development/CI builds, OFF for deployments) and
// check a single relaxed atomic, so with the flag compiled in but no
// mutation armed the production path is unchanged.
#pragma once

#include <atomic>
#include <stdexcept>
#include <string>

namespace haccs::mutation {

enum class Kind {
  None,
  /// haccs_selector.cpp cluster_weights: use the raw cluster average loss
  /// instead of the ACL_i / ΣACL_j normalized term in Eq. 7 — the selection
  /// distribution silently skews toward lossy clusters without crashing.
  DropEq7Normalization,
  /// haccs_selector.cpp report_failure: skip the multiplicative penalty on
  /// a failed client — the selector keeps re-dispatching crashing devices at
  /// full priority. Detected by the failure_penalty oracle.
  DropFailurePenalty,
  /// distance.cpp distribution_distance: silently answer L2 between the
  /// normalized distributions when Hellinger is requested — cluster
  /// structure degrades without crashing. Detected by the distance_recompute
  /// oracle.
  ClusterDistanceL2,
};

inline std::atomic<Kind>& active_mutation() {
  static std::atomic<Kind> active{Kind::None};
  return active;
}

inline bool enabled(Kind kind) {
  return active_mutation().load(std::memory_order_relaxed) == kind;
}

inline void set_active(Kind kind) {
  active_mutation().store(kind, std::memory_order_relaxed);
}

inline std::string to_string(Kind kind) {
  switch (kind) {
    case Kind::None: return "none";
    case Kind::DropEq7Normalization: return "drop-eq7-normalization";
    case Kind::DropFailurePenalty: return "drop-failure-penalty";
    case Kind::ClusterDistanceL2: return "cluster-distance-l2";
  }
  throw std::invalid_argument("bad mutation Kind");
}

inline Kind parse(const std::string& name) {
  if (name == "none") return Kind::None;
  if (name == "drop-eq7-normalization") return Kind::DropEq7Normalization;
  if (name == "drop-failure-penalty") return Kind::DropFailurePenalty;
  if (name == "cluster-distance-l2") return Kind::ClusterDistanceL2;
  throw std::invalid_argument("unknown mutation: " + name);
}

/// RAII arm/disarm so a test can never leak an active mutation.
class ScopedMutation {
 public:
  explicit ScopedMutation(Kind kind) { set_active(kind); }
  ~ScopedMutation() { set_active(Kind::None); }
  ScopedMutation(const ScopedMutation&) = delete;
  ScopedMutation& operator=(const ScopedMutation&) = delete;
};

}  // namespace haccs::mutation
