// Tiny command-line flag parser for bench and example binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--name` /
// `--no-name`. Unknown flags are an error so typos in experiment sweeps fail
// fast instead of silently running the default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace haccs {

class Flags {
 public:
  /// Parses argv; throws std::invalid_argument on malformed input.
  Flags(int argc, const char* const* argv);

  /// True if the flag was present on the command line.
  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& default_value) const;
  std::int64_t get_int(const std::string& name,
                       std::int64_t default_value) const;
  double get_double(const std::string& name, double default_value) const;
  bool get_bool(const std::string& name, bool default_value) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Call after all get_* lookups: throws std::invalid_argument listing any
  /// flag that was provided but never consumed (i.e. a typo).
  void check_unused() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> consumed_;
  std::vector<std::string> positional_;
};

}  // namespace haccs
