// Error-handling helpers.
//
// Library code throws exceptions for precondition violations (cheap to check,
// caller-facing) and uses HACCS_CHECK for internal invariants. Following the
// C++ Core Guidelines (I.10, E.2) we never signal errors through return codes
// in the public API.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace haccs {

/// Thrown when an internal invariant is violated — indicates a bug in this
/// library rather than bad user input.
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "HACCS_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InternalError(os.str());
}
}  // namespace detail

}  // namespace haccs

#define HACCS_CHECK(expr)                                              \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::haccs::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
    }                                                                  \
  } while (false)

#define HACCS_CHECK_MSG(expr, msg)                                     \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::haccs::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                  \
  } while (false)
