// A small fixed-size thread pool with a blocking task queue, plus a
// parallel_for helper with static chunking.
//
// Training clients within a federated round are independent, as are rows of a
// pairwise distance matrix — both are dispatched through parallel_for. The
// pool degrades gracefully to inline execution when constructed with zero
// workers or when running on a single hardware thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace haccs {

class ThreadPool {
 public:
  /// Creates `threads` worker threads. `threads == 0` means "inline mode":
  /// submitted tasks run on the calling thread.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 in inline mode).
  std::size_t size() const { return workers_.size(); }

  /// Submit a task; the returned future reports completion or exception.
  std::future<void> submit(std::function<void()> task);

  /// A process-wide default pool sized to hardware_concurrency() - 1.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Runs fn(i) for each i in [begin, end) across the pool with static
/// chunking. Blocks until every index has completed. Exceptions from any
/// chunk are rethrown (the first one encountered).
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

/// Convenience overload using the global pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

}  // namespace haccs
