#include "src/common/flags.hpp"

#include <stdexcept>

namespace haccs {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) throw std::invalid_argument("bare '--' not supported");
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--no-foo` form for booleans.
    if (body.rfind("no-", 0) == 0) {
      values_[body.substr(3)] = "false";
      continue;
    }
    // `--name value` if the next token is not itself a flag; otherwise a
    // bare boolean `--name`.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";
    }
  }
}

bool Flags::has(const std::string& name) const {
  auto it = values_.find(name);
  if (it != values_.end()) consumed_[name] = true;
  return it != values_.end();
}

std::string Flags::get_string(const std::string& name,
                              const std::string& default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  consumed_[name] = true;
  return it->second;
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  consumed_[name] = true;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects an integer, got '" +
                                it->second + "'");
  }
}

double Flags::get_double(const std::string& name, double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  consumed_[name] = true;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" +
                                it->second + "'");
  }
}

bool Flags::get_bool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  consumed_[name] = true;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("flag --" + name + " expects a boolean, got '" +
                              v + "'");
}

void Flags::check_unused() const {
  std::string unused;
  for (const auto& [name, _] : values_) {
    if (!consumed_.count(name)) {
      if (!unused.empty()) unused += ", ";
      unused += "--" + name;
    }
  }
  if (!unused.empty()) {
    throw std::invalid_argument("unknown flags: " + unused);
  }
}

}  // namespace haccs
