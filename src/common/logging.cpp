#include "src/common/logging.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <mutex>
#include <stdexcept>

namespace haccs {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Info)};
std::mutex g_io_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level = static_cast<int>(level); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

LogLevel parse_log_level(const std::string& name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "debug") return LogLevel::Debug;
  if (lower == "info") return LogLevel::Info;
  if (lower == "warn") return LogLevel::Warn;
  if (lower == "error") return LogLevel::Error;
  if (lower == "off") return LogLevel::Off;
  throw std::invalid_argument("unknown log level: " + name);
}

namespace detail {
void log_line(LogLevel level, const std::string& message) {
  std::lock_guard lock(g_io_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_tag(level), message.c_str());
}
}  // namespace detail

}  // namespace haccs
