#include "src/common/logging.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>
#include <stdexcept>

#include "src/obs/flight.hpp"
#include "src/obs/obs.hpp"

namespace haccs {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Info)};
std::mutex g_io_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level = static_cast<int>(level); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

LogLevel parse_log_level(const std::string& name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "debug") return LogLevel::Debug;
  if (lower == "info") return LogLevel::Info;
  if (lower == "warn") return LogLevel::Warn;
  if (lower == "error") return LogLevel::Error;
  if (lower == "off") return LogLevel::Off;
  throw std::invalid_argument("unknown log level: " + name);
}

namespace detail {
void log_line(LogLevel level, const std::string& message) {
  // ISO-8601 UTC timestamp with millisecond precision, then the level tag
  // and the small dense thread id obs hands out (the same id trace exports
  // use, so a log line can be matched to its trace lane).
  const auto now = std::chrono::system_clock::now();
  const auto since_epoch = now.time_since_epoch();
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      since_epoch)
                      .count() %
                  1000;
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  std::tm utc{};
  gmtime_r(&secs, &utc);
  char stamp[40];
  std::snprintf(stamp, sizeof(stamp), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, static_cast<int>(ms));
  {
    std::lock_guard lock(g_io_mutex);
    std::fprintf(stderr, "%s [%s] [t%02u] %s\n", stamp, level_tag(level),
                 obs::thread_id(), message.c_str());
  }
  // Mirror formatted lines into the flight recorder's ring so crash dumps
  // carry the log tail. One relaxed atomic when the recorder is disarmed.
  if (obs::FlightRecorder::global().enabled()) {
    char prefix[64];
    std::snprintf(prefix, sizeof(prefix), "%s [%s] [t%02u] ", stamp,
                  level_tag(level), obs::thread_id());
    obs::FlightRecorder::global().record_log_line(prefix + message);
  }
}
}  // namespace detail

}  // namespace haccs
