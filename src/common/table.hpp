// Aligned console tables and CSV emission for the benchmark harness.
//
// Every bench binary prints its results twice: a human-readable aligned table
// (the rows the paper's figure/table reports) and, when --csv=<path> is
// given, a machine-readable CSV for plotting.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace haccs {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Formats numbers with fixed precision for use in add_row.
  static std::string num(double value, int precision = 2);

  /// Renders the aligned table to a string (including header separator).
  std::string to_string() const;

  /// Prints to stdout.
  void print() const;

  /// Writes RFC-4180-ish CSV (fields containing commas/quotes are quoted).
  void write_csv(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return header_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace haccs
