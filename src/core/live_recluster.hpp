// Live join/leave re-clustering for serving mode (DESIGN.md §5h phase 2).
//
// A long-lived federation's population is not static: workers crash, shed,
// and reconnect (§5g serving mode, §5j slow-peer shedding), and each edge
// takes a whole slice of clients with it. This tracker keeps the HACCS
// cluster structure honest against the LIVE population: every liveness edge
// from the dispatcher (worker or aggregator granularity) marks that member's
// hosted clients as departed or rejoined in a scale::IncrementalClusterer,
// and the next refresh() re-clusters the survivors and pushes the new
// labels into the selector. Departed clients fall back to singleton
// clusters (label -1 → HaccsSelector's noise remap), so scheduling weight
// redistributes to the distributions that are actually reachable.
//
// Cost model is the §5h incremental contract: below the dirtiness threshold
// a membership change pays only a nearest-centroid assignment; above it,
// the affected shards re-cluster and the merge refreshes. The exposed
// `recluster_live_total` counter counts label pushes.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "src/core/haccs_config.hpp"
#include "src/core/haccs_selector.hpp"
#include "src/core/pipeline.hpp"
#include "src/scale/incremental.hpp"

namespace haccs::core {

class LiveClusterTracker {
 public:
  /// `summaries` are the collected client summaries, indexed by client id.
  /// `clients_of_member` maps each liveness-edge member (a worker in flat
  /// serving, an aggregator subtree in tree mode) to the client ids it
  /// hosts. All members start alive.
  LiveClusterTracker(std::vector<ClientSummary> summaries,
                     std::vector<std::vector<std::size_t>> clients_of_member,
                     HaccsConfig config);

  /// Liveness edge from the dispatcher (on_liveness): member `m` died or
  /// came back. Idempotent per state; cheap — the re-cluster itself is
  /// deferred to refresh().
  void on_member(std::size_t member, bool alive);

  /// Re-clusters the live population and pushes fresh labels into
  /// `selector` iff membership changed since the last refresh. Returns
  /// whether labels were pushed (each push bumps recluster_live_total).
  bool refresh(HaccsSelector& selector);

  std::size_t live_clients() const { return live_count_; }
  std::size_t num_clients() const { return live_.size(); }
  const scale::IncrementalClusterer& clusterer() const { return *clusterer_; }

 private:
  /// Summaries keyed by CLUSTERER id (ids are recycled; the clusterer's
  /// exact-distance callback captures this store by shared_ptr).
  std::shared_ptr<std::vector<ClientSummary>> store_;
  std::vector<ClientSummary> summaries_;  ///< keyed by client id, immutable
  std::vector<std::vector<std::size_t>> clients_of_member_;
  HaccsConfig config_;
  std::unique_ptr<scale::IncrementalClusterer> clusterer_;
  std::vector<std::size_t> id_of_client_;  ///< valid while live_[c]
  std::vector<bool> live_;
  std::vector<bool> member_alive_;
  std::size_t live_count_ = 0;
  bool dirty_ = false;
};

}  // namespace haccs::core
