#include "src/core/pipeline.hpp"

#include <cmath>
#include <stdexcept>

#include "src/common/error.hpp"
#include "src/common/threadpool.hpp"
#include "src/obs/trace.hpp"
#include "src/stats/sketch.hpp"

namespace haccs::core {

std::string to_string(Extraction e) {
  switch (e) {
    case Extraction::Auto: return "auto";
    case Extraction::Xi: return "xi";
    case Extraction::Dbscan: return "dbscan";
  }
  throw std::invalid_argument("to_string: bad Extraction");
}

std::string to_string(ClusterAlgorithm a) {
  switch (a) {
    case ClusterAlgorithm::Optics: return "optics";
    case ClusterAlgorithm::Dbscan: return "dbscan";
  }
  throw std::invalid_argument("to_string: bad ClusterAlgorithm");
}

std::string to_string(InClusterPolicy p) {
  switch (p) {
    case InClusterPolicy::MinLatency: return "min_latency";
    case InClusterPolicy::WeightedRandom: return "weighted_random";
  }
  throw std::invalid_argument("to_string: bad InClusterPolicy");
}

double ClientSummary::distance(const ClientSummary& a, const ClientSummary& b,
                               stats::DistanceKind kind) {
  if (a.kind != b.kind) {
    throw std::invalid_argument("ClientSummary::distance: kind mismatch");
  }
  if (a.kind == stats::SummaryKind::Response) {
    return stats::distribution_distance(a.response.label_counts.counts(),
                                        b.response.label_counts.counts(),
                                        kind);
  }
  if (a.kind == stats::SummaryKind::Quantile) {
    return stats::quantile_distance(a.quantile, b.quantile, a.quantile_config);
  }
  return stats::distance(a.conditional, b.conditional);
}

std::vector<ClientSummary> compute_summaries(
    const data::FederatedDataset& dataset, const HaccsConfig& config) {
  obs::Span span("compute_summaries", "clustering");
  std::vector<ClientSummary> summaries;
  summaries.reserve(dataset.clients.size());
  Rng noise_root(config.privacy_seed);
  for (const auto& client : dataset.clients) {
    ClientSummary s;
    s.kind = config.summary;
    Rng client_noise = noise_root.fork();  // independent stream per device
    if (config.summary == stats::SummaryKind::Response) {
      s.response = stats::privatize(stats::summarize_response(client.train),
                                    config.privacy, client_noise);
    } else if (config.summary == stats::SummaryKind::Quantile) {
      s.quantile_config = config.quantile;
      s.quantile = stats::privatize(
          stats::summarize_quantiles(client.train, config.quantile),
          config.quantile, config.privacy, client_noise);
    } else {
      s.conditional = stats::privatize(
          stats::summarize_conditional(client.train, config.conditional),
          config.privacy, client_noise);
    }
    summaries.push_back(std::move(s));
  }
  return summaries;
}

clustering::DistanceMatrix summary_distances(
    const std::vector<ClientSummary>& summaries,
    stats::DistanceKind response_kind) {
  if (summaries.empty()) {
    throw std::invalid_argument("summary_distances: no summaries");
  }
  return clustering::DistanceMatrix::build(
      summaries.size(), [&](std::size_t i, std::size_t j) {
        return ClientSummary::distance(summaries[i], summaries[j],
                                       response_kind);
      });
}

namespace {

/// "Everyone similar" vs "everyone different": when extraction finds no
/// structure it returns a single all-encompassing cluster, but that is only
/// the right degeneration when the summaries actually are similar. Hellinger
/// distances carry an absolute scale (Eq. 4: bounded in [0, 1], with values
/// ≲0.2 indistinguishable from sampling noise), so a single cluster whose
/// mean pairwise distance is large means the opposite — no two clients share
/// a distribution — and each client must represent itself (the selector
/// remaps noise to singleton clusters). The paper's Table III shows exactly
/// this regime: P(X|y) summaries yielding 31 clusters over 50 devices.
constexpr double kSingleClusterMeanDistanceCap = 0.3;

std::vector<int> dissolve_implausible_single_cluster(
    std::vector<int> labels, const clustering::NeighborIndex& index) {
  int max_label = -1;
  for (int l : labels) max_label = std::max(max_label, l);
  if (max_label != 0) return labels;  // zero or 2+ clusters: keep as-is
  double sum = 0.0;
  std::size_t count = 0;
  const std::size_t n = index.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = index.distance(i, j);
      if (!std::isfinite(d)) continue;  // estimator-less sparse pair
      sum += d;
      ++count;
    }
  }
  if (count > 0 && sum / static_cast<double>(count) >
                       kSingleClusterMeanDistanceCap) {
    std::fill(labels.begin(), labels.end(), -1);
  }
  return labels;
}

}  // namespace

std::vector<int> cluster_index(const clustering::NeighborIndex& index,
                               const HaccsConfig& config) {
  if (config.algorithm == ClusterAlgorithm::Dbscan) {
    return clustering::dbscan(index, config.dbscan);
  }
  const auto result = clustering::optics(index, config.optics);
  std::vector<int> labels;
  switch (config.extraction) {
    case Extraction::Auto:
      labels = clustering::extract_auto(result, index, config.optics.min_pts);
      break;
    case Extraction::Xi:
      labels = clustering::extract_xi(result, config.xi, config.optics.min_pts);
      break;
    case Extraction::Dbscan:
      labels = clustering::extract_dbscan(result, config.dbscan.eps,
                                          config.optics.min_pts);
      break;
  }
  return dissolve_implausible_single_cluster(std::move(labels), index);
}

std::vector<int> cluster_distances(const clustering::DistanceMatrix& distances,
                                   const HaccsConfig& config) {
  return cluster_index(clustering::DenseNeighborIndex(distances), config);
}

std::vector<float> summary_embedding(const ClientSummary& summary,
                                     std::size_t dim, std::uint64_t seed) {
  if (summary.kind == stats::SummaryKind::Response) {
    // √-probability vector of P(y): identity-embedded (hence exact) when
    // the class count fits the budget, signed-hash-projected otherwise.
    const auto sqrt_probs =
        stats::sqrt_embedding(summary.response.label_counts.counts());
    return stats::project_embedding(sqrt_probs, dim, seed);
  }
  // Virtual feature space for structured summaries: (label, position) pairs
  // packed into one index. The per-label stride only has to exceed any
  // realistic bin/quantile count for indices to stay collision-free.
  constexpr std::uint64_t kLabelStride = 1u << 16;
  std::vector<float> out(dim, 0.0f);
  if (summary.kind == stats::SummaryKind::Conditional) {
    // Per-label √-histograms scaled by the label's √ mass share. The
    // embedding has unit norm, and pairwise L2² / 2 approximates the
    // mass-weighted average Hellinger used for exact distances.
    double total = 0.0;
    for (const auto& h : summary.conditional.per_label) total += h.total();
    for (std::size_t c = 0; c < summary.conditional.per_label.size(); ++c) {
      const auto& h = summary.conditional.per_label[c];
      if (total <= 0.0 || h.total() <= 0.0) continue;
      const double w = std::sqrt(h.total() / total);
      const auto part = stats::sqrt_embedding(h.counts());
      for (std::size_t b = 0; b < part.size(); ++b) {
        stats::project_add(out, c * kLabelStride + b, w * part[b], seed);
      }
    }
    return out;
  }
  // Quantile summaries: range-normalized quantile positions scaled by the
  // label's √ mass share, normalized by √(num quantiles) so the embedding
  // norm stays <= 1 and distances land in [0, 1] like the exact
  // quantile_distance.
  const auto& q = summary.quantile;
  double total = 0.0;
  for (double m : q.mass) total += m;
  const double range =
      std::max(summary.quantile_config.hi - summary.quantile_config.lo, 1e-12);
  for (std::size_t c = 0; c < q.per_label.size(); ++c) {
    if (q.per_label[c].empty() || total <= 0.0 || c >= q.mass.size()) continue;
    const double w = std::sqrt(q.mass[c] / total) /
                     std::sqrt(static_cast<double>(q.per_label[c].size()));
    for (std::size_t k = 0; k < q.per_label[c].size(); ++k) {
      const double pos = (q.per_label[c][k] - summary.quantile_config.lo) / range;
      stats::project_add(out, c * kLabelStride + k, w * pos, seed);
    }
  }
  return out;
}

std::vector<int> cluster_summaries_scaled(
    const std::vector<ClientSummary>& summaries, const HaccsConfig& config,
    scale::ScaleStats* stats) {
  obs::Span span("cluster_scaled", "clustering");
  if (summaries.empty()) {
    throw std::invalid_argument("cluster_summaries_scaled: no summaries");
  }
  std::vector<std::vector<float>> rows(summaries.size());
  parallel_for(0, summaries.size(), [&](std::size_t i) {
    rows[i] =
        summary_embedding(summaries[i], config.scale.sketch_dim,
                          config.scale.seed);
  });
  scale::SketchMatrix sketches(config.scale.sketch_dim);
  sketches.reserve(summaries.size());
  for (const auto& row : rows) sketches.append(row);

  const auto exact = [&summaries, &config](std::size_t i, std::size_t j) {
    return ClientSummary::distance(summaries[i], summaries[j],
                                   config.response_distance);
  };
  const auto cluster = [&config](const clustering::NeighborIndex& index) {
    return cluster_index(index, config);
  };
  return scale::cluster_sharded(sketches, exact, cluster, config.scale, stats);
}

std::vector<int> cluster_clients(const data::FederatedDataset& dataset,
                                 const HaccsConfig& config) {
  obs::Span span("cluster_clients", "clustering");
  const auto summaries = compute_summaries(dataset, config);
  if (config.scale.enabled) {
    return cluster_summaries_scaled(summaries, config);
  }
  const auto distances = summary_distances(summaries, config.response_distance);
  return cluster_distances(distances, config);
}

}  // namespace haccs::core
