#include "src/core/pipeline.hpp"

#include <stdexcept>

#include "src/common/error.hpp"
#include "src/obs/trace.hpp"

namespace haccs::core {

std::string to_string(Extraction e) {
  switch (e) {
    case Extraction::Auto: return "auto";
    case Extraction::Xi: return "xi";
    case Extraction::Dbscan: return "dbscan";
  }
  throw std::invalid_argument("to_string: bad Extraction");
}

std::string to_string(ClusterAlgorithm a) {
  switch (a) {
    case ClusterAlgorithm::Optics: return "optics";
    case ClusterAlgorithm::Dbscan: return "dbscan";
  }
  throw std::invalid_argument("to_string: bad ClusterAlgorithm");
}

std::string to_string(InClusterPolicy p) {
  switch (p) {
    case InClusterPolicy::MinLatency: return "min_latency";
    case InClusterPolicy::WeightedRandom: return "weighted_random";
  }
  throw std::invalid_argument("to_string: bad InClusterPolicy");
}

double ClientSummary::distance(const ClientSummary& a, const ClientSummary& b,
                               stats::DistanceKind kind) {
  if (a.kind != b.kind) {
    throw std::invalid_argument("ClientSummary::distance: kind mismatch");
  }
  if (a.kind == stats::SummaryKind::Response) {
    return stats::distribution_distance(a.response.label_counts.counts(),
                                        b.response.label_counts.counts(),
                                        kind);
  }
  if (a.kind == stats::SummaryKind::Quantile) {
    return stats::quantile_distance(a.quantile, b.quantile, a.quantile_config);
  }
  return stats::distance(a.conditional, b.conditional);
}

std::vector<ClientSummary> compute_summaries(
    const data::FederatedDataset& dataset, const HaccsConfig& config) {
  obs::Span span("compute_summaries", "clustering");
  std::vector<ClientSummary> summaries;
  summaries.reserve(dataset.clients.size());
  Rng noise_root(config.privacy_seed);
  for (const auto& client : dataset.clients) {
    ClientSummary s;
    s.kind = config.summary;
    Rng client_noise = noise_root.fork();  // independent stream per device
    if (config.summary == stats::SummaryKind::Response) {
      s.response = stats::privatize(stats::summarize_response(client.train),
                                    config.privacy, client_noise);
    } else if (config.summary == stats::SummaryKind::Quantile) {
      s.quantile_config = config.quantile;
      s.quantile = stats::privatize(
          stats::summarize_quantiles(client.train, config.quantile),
          config.quantile, config.privacy, client_noise);
    } else {
      s.conditional = stats::privatize(
          stats::summarize_conditional(client.train, config.conditional),
          config.privacy, client_noise);
    }
    summaries.push_back(std::move(s));
  }
  return summaries;
}

clustering::DistanceMatrix summary_distances(
    const std::vector<ClientSummary>& summaries,
    stats::DistanceKind response_kind) {
  if (summaries.empty()) {
    throw std::invalid_argument("summary_distances: no summaries");
  }
  return clustering::DistanceMatrix::build(
      summaries.size(), [&](std::size_t i, std::size_t j) {
        return ClientSummary::distance(summaries[i], summaries[j],
                                       response_kind);
      });
}

namespace {

/// "Everyone similar" vs "everyone different": when extraction finds no
/// structure it returns a single all-encompassing cluster, but that is only
/// the right degeneration when the summaries actually are similar. Hellinger
/// distances carry an absolute scale (Eq. 4: bounded in [0, 1], with values
/// ≲0.2 indistinguishable from sampling noise), so a single cluster whose
/// mean pairwise distance is large means the opposite — no two clients share
/// a distribution — and each client must represent itself (the selector
/// remaps noise to singleton clusters). The paper's Table III shows exactly
/// this regime: P(X|y) summaries yielding 31 clusters over 50 devices.
constexpr double kSingleClusterMeanDistanceCap = 0.3;

std::vector<int> dissolve_implausible_single_cluster(
    std::vector<int> labels, const clustering::DistanceMatrix& distances) {
  int max_label = -1;
  for (int l : labels) max_label = std::max(max_label, l);
  if (max_label != 0) return labels;  // zero or 2+ clusters: keep as-is
  double sum = 0.0;
  std::size_t count = 0;
  const std::size_t n = distances.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      sum += distances.at(i, j);
      ++count;
    }
  }
  if (count > 0 && sum / static_cast<double>(count) >
                       kSingleClusterMeanDistanceCap) {
    std::fill(labels.begin(), labels.end(), -1);
  }
  return labels;
}

}  // namespace

std::vector<int> cluster_distances(const clustering::DistanceMatrix& distances,
                                   const HaccsConfig& config) {
  if (config.algorithm == ClusterAlgorithm::Dbscan) {
    return clustering::dbscan(distances, config.dbscan);
  }
  const auto result = clustering::optics(distances, config.optics);
  std::vector<int> labels;
  switch (config.extraction) {
    case Extraction::Auto:
      labels =
          clustering::extract_auto(result, distances, config.optics.min_pts);
      break;
    case Extraction::Xi:
      labels = clustering::extract_xi(result, config.xi, config.optics.min_pts);
      break;
    case Extraction::Dbscan:
      labels = clustering::extract_dbscan(result, config.dbscan.eps,
                                          config.optics.min_pts);
      break;
  }
  return dissolve_implausible_single_cluster(std::move(labels), distances);
}

std::vector<int> cluster_clients(const data::FederatedDataset& dataset,
                                 const HaccsConfig& config) {
  obs::Span span("cluster_clients", "clustering");
  const auto summaries = compute_summaries(dataset, config);
  const auto distances = summary_distances(summaries, config.response_distance);
  return cluster_distances(distances, config);
}

}  // namespace haccs::core
