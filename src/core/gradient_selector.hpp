// Gradient-direction clustered selection — the paper's §IV-A alternative
// summary ("gradients of the loss function or model weights could also be
// leveraged... devices may have gradients that point in similar
// directions"), implemented so the trade-off the paper predicts can be
// measured: gradient clusters need re-clustering every few epochs because
// directions change as the model trains, where data summaries stay stable.
//
// Each participant's parameter update is sketched by a seeded Gaussian
// random projection (Johnson-Lindenstrauss: cosine structure survives the
// projection), so the server keeps O(sketch_dim) floats per client instead
// of a full model copy. Clients never yet observed form singleton clusters.
// Selection reuses the HACCS cluster machinery (Eqs. 6-7, Weighted-SRSWR,
// min-latency in-cluster).
#pragma once

#include "src/core/haccs_selector.hpp"

namespace haccs::core {

struct GradientSelectorConfig {
  /// Sketch dimensionality for the random projection.
  std::size_t sketch_dim = 64;
  /// Re-cluster every N epochs (gradients go stale quickly; the paper notes
  /// this summary "requires that... clustering be performed each epoch").
  std::size_t recluster_every = 5;
  /// Cosine-distance threshold for the DBSCAN grouping of sketches.
  double eps = 0.3;
  std::uint64_t projection_seed = 211;
  /// Shared scheduling knobs (rho, in-cluster policy, initial loss).
  HaccsConfig scheduling;
};

class GradientClusterSelector final : public fl::ClientSelector {
 public:
  explicit GradientClusterSelector(GradientSelectorConfig config);

  void initialize(const std::vector<fl::ClientRuntimeInfo>& clients) override;
  std::vector<std::size_t> select(std::size_t k,
                                  const std::vector<fl::ClientRuntimeInfo>& clients,
                                  std::size_t epoch, Rng& rng) override;
  void report_result(std::size_t client_id, double loss,
                     std::size_t epoch) override;
  void report_update(std::size_t client_id, std::span<const float> update,
                     std::size_t epoch) override;
  std::string name() const override { return "HACCS-gradient"; }

  std::size_t num_clusters() const { return inner_.num_clusters(); }
  const std::vector<int>& cluster_of() const { return inner_.cluster_of(); }

  /// The stored sketch of a client (empty if never observed) — for tests.
  std::span<const float> sketch(std::size_t client_id) const;

 private:
  void recluster(std::size_t num_clients);

  GradientSelectorConfig config_;
  HaccsSelector inner_;
  std::vector<std::vector<float>> sketches_;  // per client; empty = unseen
  /// Projection matrix rows are generated lazily per model dimension chunk
  /// from the seed, so the full model-size matrix never materializes.
  std::size_t model_dim_ = 0;
};

}  // namespace haccs::core
