#include "src/core/stratified_selector.hpp"

#include <algorithm>
#include <stdexcept>

namespace haccs::core {

StratifiedSelector::StratifiedSelector(const data::FederatedDataset& dataset,
                                       HaccsConfig config) {
  build(cluster_clients(dataset, config));
}

StratifiedSelector::StratifiedSelector(std::vector<int> cluster_labels) {
  build(std::move(cluster_labels));
}

void StratifiedSelector::build(std::vector<int> raw_labels) {
  int max_label = -1;
  for (int l : raw_labels) max_label = std::max(max_label, l);
  int next = max_label + 1;
  for (int& l : raw_labels) {
    if (l < 0) l = next++;  // noise -> singleton
  }
  clusters_.assign(static_cast<std::size_t>(next), {});
  for (std::size_t i = 0; i < raw_labels.size(); ++i) {
    clusters_[static_cast<std::size_t>(raw_labels[i])].push_back(i);
  }
  std::erase_if(clusters_, [](const auto& c) { return c.empty(); });
  member_cursor_.assign(clusters_.size(), 0);
}

std::vector<std::size_t> StratifiedSelector::select(
    std::size_t k, const std::vector<fl::ClientRuntimeInfo>& clients,
    std::size_t /*epoch*/, Rng& /*rng*/) {
  if (clusters_.empty()) {
    throw std::logic_error("StratifiedSelector: no clusters");
  }
  // Order each cluster's members by current latency so cursor rotation walks
  // fastest -> slowest -> fastest..., spreading work deterministically.
  std::vector<std::vector<std::size_t>> ordered(clusters_.size());
  for (std::size_t c = 0; c < clusters_.size(); ++c) {
    for (std::size_t id : clusters_[c]) {
      if (clients[id].available) ordered[c].push_back(id);
    }
    std::sort(ordered[c].begin(), ordered[c].end(),
              [&](std::size_t a, std::size_t b) {
                if (clients[a].latency_s != clients[b].latency_s) {
                  return clients[a].latency_s < clients[b].latency_s;
                }
                return a < b;
              });
  }

  std::vector<std::size_t> out;
  std::vector<std::size_t> taken(clusters_.size(), 0);
  // Walk clusters starting at the rotating cursor until k picks or no
  // available device remains anywhere.
  std::size_t scanned_without_pick = 0;
  std::size_t c = next_cluster_ % clusters_.size();
  while (out.size() < k && scanned_without_pick < clusters_.size()) {
    auto& pool = ordered[c];
    if (taken[c] < pool.size()) {
      const std::size_t pick =
          pool[(member_cursor_[c] + taken[c]) % pool.size()];
      // The modulo walk can revisit; guard against duplicates.
      if (std::find(out.begin(), out.end(), pick) == out.end()) {
        out.push_back(pick);
        ++taken[c];
        scanned_without_pick = 0;
      } else {
        ++taken[c];
        continue;  // try the same cluster's next member before moving on
      }
    } else {
      ++scanned_without_pick;
    }
    c = (c + 1) % clusters_.size();
  }

  // Advance the rotors so the next epoch starts one cluster later and each
  // cluster's next member gets its turn.
  next_cluster_ = (next_cluster_ + 1) % clusters_.size();
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    if (taken[i] > 0 && !ordered[i].empty()) {
      member_cursor_[i] = (member_cursor_[i] + taken[i]) % ordered[i].size();
    }
  }
  return out;
}

}  // namespace haccs::core
