#include "src/core/haccs_selector.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "src/common/error.hpp"
#include "src/common/mutation.hpp"
#include "src/net/wire.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace haccs::core {

HaccsSelector::HaccsSelector(const data::FederatedDataset& dataset,
                             HaccsConfig config)
    : config_(config), dataset_(&dataset) {
  if (config_.rho < 0.0 || config_.rho > 1.0) {
    throw std::invalid_argument("HaccsSelector: rho must be in [0, 1]");
  }
  if (config_.scale.enabled) {
    recluster_scaled(dataset, /*initial=*/true);
  } else {
    build_clusters(cluster_clients(dataset, config_));
  }
}

HaccsSelector::HaccsSelector(std::vector<int> cluster_labels,
                             HaccsConfig config)
    : config_(config) {
  if (config_.rho < 0.0 || config_.rho > 1.0) {
    throw std::invalid_argument("HaccsSelector: rho must be in [0, 1]");
  }
  build_clusters(std::move(cluster_labels));
}

std::string HaccsSelector::name() const {
  return "HACCS-" + stats::to_string(config_.summary);
}

void HaccsSelector::recluster(const data::FederatedDataset& dataset) {
  obs::Span span("recluster", "clustering");
  obs::Registry::global().counter("recluster_total").inc();
  if (config_.scale.enabled) {
    recluster_scaled(dataset, /*initial=*/false);
    return;
  }
  build_clusters(cluster_clients(dataset, config_));
}

void HaccsSelector::recluster_scaled(const data::FederatedDataset& dataset,
                                     bool initial) {
  obs::Span span("recluster_scaled", "clustering");
  auto summaries = compute_summaries(dataset, config_);
  if (incremental_ == nullptr) {
    scale_summaries_ = std::make_shared<std::vector<ClientSummary>>();
    // The callbacks capture the summary store and config by value (not
    // `this`), so moving the selector cannot dangle them.
    auto exact = [store = scale_summaries_,
                  kind = config_.response_distance](std::size_t i,
                                                    std::size_t j) {
      return ClientSummary::distance((*store)[i], (*store)[j], kind);
    };
    auto cluster = [config = config_](const clustering::NeighborIndex& index) {
      return cluster_index(index, config);
    };
    incremental_ = std::make_unique<scale::IncrementalClusterer>(
        config_.scale.sketch_dim, std::move(exact), std::move(cluster),
        config_.scale);
  }
  auto& store = *scale_summaries_;
  const std::size_t old_n = scale_ids_.size();
  const std::size_t new_n = summaries.size();

  // Surviving clients: refresh those whose sketch changed (drift). A client
  // with an identical sketch keeps its cached summary and clean shard.
  for (std::size_t i = 0; i < std::min(old_n, new_n); ++i) {
    const auto sketch = summary_embedding(summaries[i], config_.scale.sketch_dim,
                                          config_.scale.seed);
    const auto current = incremental_->sketches().row(scale_ids_[i]);
    if (!std::equal(current.begin(), current.end(), sketch.begin())) {
      store[scale_ids_[i]] = summaries[i];
      incremental_->update_client(scale_ids_[i], sketch);
    }
  }
  // Leaves: the dataset shrank — retire the tail.
  for (std::size_t i = new_n; i < old_n; ++i) {
    incremental_->remove_client(scale_ids_[i]);
  }
  if (new_n < old_n) scale_ids_.resize(new_n);
  // Joins: the dataset grew.
  for (std::size_t i = old_n; i < new_n; ++i) {
    const auto sketch = summary_embedding(summaries[i], config_.scale.sketch_dim,
                                          config_.scale.seed);
    const std::size_t id = incremental_->add_client(sketch);
    if (store.size() <= id) store.resize(id + 1);
    store[id] = summaries[i];
    scale_ids_.push_back(id);
  }

  if (initial) {
    incremental_->rebuild();
  } else {
    incremental_->recompute_if_dirty();
  }

  std::vector<int> labels(new_n, -1);
  for (std::size_t i = 0; i < new_n; ++i) {
    labels[i] = incremental_->label_of(scale_ids_[i]);
  }
  build_clusters(std::move(labels));
}

void HaccsSelector::set_clusters(std::vector<int> cluster_labels) {
  if (!cluster_of_.empty() && cluster_labels.size() != cluster_of_.size()) {
    throw std::invalid_argument("set_clusters: arity mismatch");
  }
  build_clusters(std::move(cluster_labels));
}

void HaccsSelector::build_clusters(std::vector<int> raw_labels) {
  // Remap noise (-1) to fresh singleton cluster ids: a client whose
  // distribution matches nobody must still be representable in scheduling.
  int max_label = -1;
  for (int l : raw_labels) max_label = std::max(max_label, l);
  int next = max_label + 1;
  for (int& l : raw_labels) {
    if (l < 0) l = next++;
  }
  cluster_of_ = std::move(raw_labels);
  // Reliability penalties survive reclustering (they describe devices, not
  // clusters); replacement IOUs do not (their cluster ids are stale).
  penalty_.resize(cluster_of_.size(), 1.0);
  replacement_queue_.clear();
  clusters_.assign(static_cast<std::size_t>(next), {});
  for (std::size_t i = 0; i < cluster_of_.size(); ++i) {
    clusters_[static_cast<std::size_t>(cluster_of_[i])].push_back(i);
  }
  // Drop empty cluster slots (possible when labels are non-contiguous).
  std::erase_if(clusters_, [](const auto& c) { return c.empty(); });
  // Rebuild the id map to match the compacted cluster list.
  for (std::size_t c = 0; c < clusters_.size(); ++c) {
    for (std::size_t member : clusters_[c]) {
      cluster_of_[member] = static_cast<int>(c);
    }
  }
  obs::Registry::global()
      .gauge("haccs_clusters")
      .set(static_cast<double>(clusters_.size()));
}

void HaccsSelector::report_failure(std::size_t client_id, std::size_t /*epoch*/,
                                   fl::FailureKind /*kind*/) {
  if (client_id >= cluster_of_.size()) return;
  // Decay the failed device's intra-cluster priority: its effective latency
  // is inflated by the penalty, so the next-fastest same-distribution device
  // stands in — the paper's robustness story applied to mid-round faults.
  double factor = config_.failure_penalty;
#if HACCS_MUTATIONS
  if (mutation::enabled(mutation::Kind::DropFailurePenalty)) factor = 1.0;
#endif
  penalty_[client_id] = std::min(penalty_[client_id] * factor, 1.0e6);
  // Owe the cluster a replacement: the distribution keeps its seat.
  if (config_.failure_replacement) {
    replacement_queue_.push_back(
        static_cast<std::size_t>(cluster_of_[client_id]));
  }
}

double HaccsSelector::failure_penalty_of(std::size_t client_id) const {
  return client_id < penalty_.size() ? penalty_[client_id] : 1.0;
}

std::vector<std::uint8_t> HaccsSelector::save_state() const {
  net::WireWriter w;
  w.string("HACCS");
  w.u16(1);  // state-blob version
  w.f64_array(penalty_);
  w.u64(replacement_queue_.size());
  for (std::size_t cluster : replacement_queue_) {
    w.u64(static_cast<std::uint64_t>(cluster));
  }
  return w.take();
}

void HaccsSelector::load_state(std::span<const std::uint8_t> state) {
  net::WireReader r(state);
  if (r.string() != "HACCS") {
    throw std::runtime_error("HaccsSelector: state blob from another selector");
  }
  if (r.u16() != 1) {
    throw std::runtime_error("HaccsSelector: unsupported state version");
  }
  auto penalty = r.f64_array();
  if (penalty.size() != penalty_.size()) {
    throw std::runtime_error("HaccsSelector: state population mismatch");
  }
  const auto queue_len = r.u64();
  std::vector<std::size_t> queue;
  queue.reserve(static_cast<std::size_t>(queue_len));
  for (std::uint64_t i = 0; i < queue_len; ++i) {
    queue.push_back(static_cast<std::size_t>(r.u64()));
  }
  r.expect_exhausted();
  penalty_ = std::move(penalty);
  replacement_queue_ = std::move(queue);
}

std::vector<double> HaccsSelector::cluster_weights(
    const std::vector<fl::ClientRuntimeInfo>& clients) const {
  HACCS_CHECK_MSG(clients.size() == cluster_of_.size(),
                  "HaccsSelector: view arity mismatch");
  const std::size_t k = clusters_.size();
  std::vector<double> avg_loss(k, 0.0), avg_latency(k, 0.0);
  for (std::size_t c = 0; c < k; ++c) {
    double loss_sum = 0.0, latency_sum = 0.0;
    for (std::size_t member : clusters_[c]) {
      loss_sum += clients[member].last_loss;
      latency_sum += clients[member].latency_s;
    }
    const auto n = static_cast<double>(clusters_[c].size());
    avg_loss[c] = loss_sum / n;
    avg_latency[c] = latency_sum / n;
  }

  const double latency_max =
      *std::max_element(avg_latency.begin(), avg_latency.end());
  double loss_total = 0.0;
  for (double l : avg_loss) loss_total += l;

  std::vector<double> weights(k, 0.0);
  for (std::size_t c = 0; c < k; ++c) {
    const double tau =
        latency_max > 0.0 ? 1.0 - avg_latency[c] / latency_max : 0.0;  // Eq. 6
    double norm_loss = loss_total > 0.0 ? avg_loss[c] / loss_total : 0.0;
#if HACCS_MUTATIONS
    // Deliberate bug for the fuzzer's mutation-smoke check (TESTING.md):
    // skips the ACL_i / ΣACL_j normalization.
    if (mutation::enabled(mutation::Kind::DropEq7Normalization)) {
      norm_loss = avg_loss[c];
    }
#endif
    weights[c] = config_.rho * tau + (1.0 - config_.rho) * norm_loss;  // Eq. 7
  }
  // Degenerate case (single cluster with rho = 1 gives all-zero weights):
  // fall back to uniform so sampling stays well-defined.
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) std::fill(weights.begin(), weights.end(), 1.0);
  return weights;
}

std::vector<std::size_t> HaccsSelector::select(
    std::size_t k, const std::vector<fl::ClientRuntimeInfo>& clients,
    std::size_t epoch, Rng& rng) {
  // §IV-C adaptation: refresh cluster assignments from current summaries on
  // the configured cadence (the dataset reference sees any drift applied by
  // the experiment's epoch callback).
  if (config_.recluster_every > 0 && dataset_ != nullptr && epoch > 0 &&
      epoch % config_.recluster_every == 0) {
    recluster(*dataset_);
  }
  const auto weights = cluster_weights(clients);

  // Remaining (available, not yet chosen) members per cluster.
  std::vector<std::vector<std::size_t>> remaining(clusters_.size());
  std::size_t total_available = 0;
  for (std::size_t c = 0; c < clusters_.size(); ++c) {
    for (std::size_t member : clusters_[c]) {
      if (clients[member].available) {
        remaining[c].push_back(member);
        ++total_available;
      }
    }
  }
  if (total_available == 0) return {};
  k = std::min(k, total_available);

  // Reliability penalties decay toward 1 each epoch (exactly 1 stays 1, so
  // fault-free runs take the identical code path).
  for (double& p : penalty_) {
    p = 1.0 + (p - 1.0) * config_.failure_penalty_decay;
  }

  // Effective latency for in-cluster ranking: expected latency inflated by
  // the device's reliability penalty.
  auto effective_latency = [&](std::size_t id) {
    return clients[id].latency_s * penalty_[id];
  };

  auto pick_from = [&](std::vector<std::size_t>& pool) -> std::size_t {
    HACCS_CHECK(!pool.empty());
    std::size_t chosen_index = 0;
    if (config_.in_cluster == InClusterPolicy::MinLatency) {
      for (std::size_t i = 1; i < pool.size(); ++i) {
        if (effective_latency(pool[i]) <
            effective_latency(pool[chosen_index])) {
          chosen_index = i;
        }
      }
    } else {
      // Latency-weighted sampling: weight ∝ 1 / latency, so stragglers keep
      // a nonzero chance (§V-E's bias mitigation).
      std::vector<double> w;
      w.reserve(pool.size());
      for (std::size_t id : pool) {
        w.push_back(1.0 / std::max(effective_latency(id), 1e-9));
      }
      chosen_index = rng.categorical(w);
    }
    const std::size_t client_id = pool[chosen_index];
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(chosen_index));
    return client_id;
  };

  std::vector<std::size_t> out;
  out.reserve(k);
  // Replacement IOUs first: clusters that lost a device to a mid-round
  // fault re-sample a stand-in from the *same* cluster before the weighted
  // draw, keeping the selection cluster-faithful under churn.
  if (!replacement_queue_.empty()) {
    for (std::size_t cluster : replacement_queue_) {
      if (out.size() >= k) break;
      if (cluster < remaining.size() && !remaining[cluster].empty()) {
        out.push_back(pick_from(remaining[cluster]));
      }
    }
    replacement_queue_.clear();
  }
  // Weighted-SRSWR over clusters: each of the k slots samples a cluster
  // independently (with replacement); a sampled cluster that has run out of
  // available devices forfeits the draw to the next-weighted cluster.
  while (out.size() < k) {
    std::size_t cluster = rng.categorical(weights);
    if (remaining[cluster].empty()) {
      // Redraw among clusters that still have devices; guaranteed to exist
      // because out.size() < k <= total_available.
      std::vector<double> fallback(weights);
      double fallback_total = 0.0;
      for (std::size_t c = 0; c < fallback.size(); ++c) {
        if (remaining[c].empty()) fallback[c] = 0.0;
        fallback_total += fallback[c];
      }
      if (fallback_total <= 0.0) {
        // Every cluster with devices left has Eq. 7 weight exactly 0 (rho=1
        // zeroes the slowest cluster): draw uniformly among them instead of
        // handing categorical() an all-zero vector. Found by the scenario
        // fuzzer (seed 163 under over-selection).
        for (std::size_t c = 0; c < fallback.size(); ++c) {
          fallback[c] = remaining[c].empty() ? 0.0 : 1.0;
        }
      }
      cluster = rng.categorical(fallback);
    }
    out.push_back(pick_from(remaining[cluster]));
  }
  return out;
}

}  // namespace haccs::core
