// HaccsSystem — the end-to-end public API (paper Fig. 2).
//
// Ties the whole stack together: a federated dataset, a model factory, the
// simulated heterogeneous testbed, and a selection strategy. Quickstart:
//
//   auto gen = data::SyntheticImageGenerator(
//       data::SyntheticImageConfig::femnist_like());
//   Rng rng(1);
//   auto fed = data::partition_majority_label(gen, {}, rng);
//   core::HaccsSystem system(fed, core::HaccsConfig{}, fl::EngineConfig{},
//                            core::default_model_factory(fed, 99));
//   auto history = system.train();            // HACCS scheduling
//   double tta = history.time_to_accuracy(0.8);
//
// Baselines run on the identical substrate via train_with(), which is how
// every benchmark in bench/ produces its strategy comparisons.
#pragma once

#include <functional>
#include <memory>

#include "src/core/haccs_selector.hpp"
#include "src/fl/engine.hpp"

namespace haccs::core {

class HaccsSystem {
 public:
  HaccsSystem(const data::FederatedDataset& dataset, HaccsConfig haccs_config,
              fl::EngineConfig engine_config,
              std::function<nn::Sequential()> model_factory);

  /// Trains with the HACCS selector; a fresh selector (and clustering) is
  /// built per call.
  fl::TrainingHistory train();
  fl::TrainingHistory train(const sim::DropoutSchedule& dropout);

  /// Trains with an arbitrary strategy on the same substrate.
  fl::TrainingHistory train_with(fl::ClientSelector& selector);
  fl::TrainingHistory train_with(fl::ClientSelector& selector,
                                 const sim::DropoutSchedule& dropout);

  /// The cluster labels HACCS would use right now (runs the pipeline).
  std::vector<int> cluster_labels() const;

  fl::FederatedTrainer& trainer() { return trainer_; }
  const HaccsConfig& haccs_config() const { return haccs_config_; }

 private:
  const data::FederatedDataset& dataset_;
  HaccsConfig haccs_config_;
  fl::FederatedTrainer trainer_;
};

/// A model factory suited to the dataset's sample shape: LeNet-style CNN
/// when `use_cnn`, otherwise an MLP over flattened features. The returned
/// factory is deterministic in `seed`.
std::function<nn::Sequential()> default_model_factory(
    const data::FederatedDataset& dataset, std::uint64_t seed,
    bool use_cnn = false);

}  // namespace haccs::core
