#include "src/core/live_recluster.hpp"

#include <utility>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace haccs::core {

LiveClusterTracker::LiveClusterTracker(
    std::vector<ClientSummary> summaries,
    std::vector<std::vector<std::size_t>> clients_of_member,
    HaccsConfig config)
    : store_(std::make_shared<std::vector<ClientSummary>>()),
      summaries_(std::move(summaries)),
      clients_of_member_(std::move(clients_of_member)),
      config_(std::move(config)),
      id_of_client_(summaries_.size(), 0),
      live_(summaries_.size(), false),
      member_alive_(clients_of_member_.size(), true) {
  // Callbacks capture the summary store and config by value (not `this`),
  // mirroring HaccsSelector::recluster_scaled, so the tracker is movable.
  auto exact = [store = store_, kind = config_.response_distance](
                   std::size_t i, std::size_t j) {
    return ClientSummary::distance((*store)[i], (*store)[j], kind);
  };
  auto cluster = [config = config_](const clustering::NeighborIndex& index) {
    return cluster_index(index, config);
  };
  clusterer_ = std::make_unique<scale::IncrementalClusterer>(
      config_.scale.sketch_dim, std::move(exact), std::move(cluster),
      config_.scale);
  for (std::size_t c = 0; c < summaries_.size(); ++c) {
    const auto sketch = summary_embedding(
        summaries_[c], config_.scale.sketch_dim, config_.scale.seed);
    const std::size_t id = clusterer_->add_client(sketch);
    if (store_->size() <= id) store_->resize(id + 1);
    (*store_)[id] = summaries_[c];
    id_of_client_[c] = id;
    live_[c] = true;
    ++live_count_;
  }
  clusterer_->rebuild();
}

void LiveClusterTracker::on_member(std::size_t member, bool alive) {
  if (member >= member_alive_.size() || member_alive_[member] == alive) {
    return;
  }
  member_alive_[member] = alive;
  for (std::size_t c : clients_of_member_[member]) {
    if (c >= live_.size() || live_[c] == alive) continue;
    if (alive) {
      const auto sketch = summary_embedding(
          summaries_[c], config_.scale.sketch_dim, config_.scale.seed);
      const std::size_t id = clusterer_->add_client(sketch);
      if (store_->size() <= id) store_->resize(id + 1);
      (*store_)[id] = summaries_[c];
      id_of_client_[c] = id;
      ++live_count_;
    } else {
      clusterer_->remove_client(id_of_client_[c]);
      --live_count_;
    }
    live_[c] = alive;
  }
  dirty_ = true;
}

bool LiveClusterTracker::refresh(HaccsSelector& selector) {
  if (!dirty_) return false;
  dirty_ = false;
  obs::Span span("recluster_live", "clustering");
  // Honors the §5h dirtiness budget: small churn pays only the interim
  // nearest-centroid assignment add/remove already performed.
  clusterer_->recompute_if_dirty();
  std::vector<int> labels(live_.size(), -1);
  for (std::size_t c = 0; c < live_.size(); ++c) {
    if (live_[c]) labels[c] = clusterer_->label_of(id_of_client_[c]);
  }
  // Departed clients stay -1: HaccsSelector remaps them to singleton
  // clusters, so they carry no shared scheduling weight while gone.
  selector.set_clusters(std::move(labels));
  obs::Registry::global().counter("recluster_live_total").inc();
  return true;
}

}  // namespace haccs::core
