#include "src/core/haccs_system.hpp"

#include <stdexcept>

namespace haccs::core {

HaccsSystem::HaccsSystem(const data::FederatedDataset& dataset,
                         HaccsConfig haccs_config,
                         fl::EngineConfig engine_config,
                         std::function<nn::Sequential()> model_factory)
    : dataset_(dataset),
      haccs_config_(haccs_config),
      trainer_(dataset, std::move(model_factory), engine_config) {}

fl::TrainingHistory HaccsSystem::train() {
  HaccsSelector selector(dataset_, haccs_config_);
  return trainer_.run(selector);
}

fl::TrainingHistory HaccsSystem::train(const sim::DropoutSchedule& dropout) {
  HaccsSelector selector(dataset_, haccs_config_);
  return trainer_.run(selector, dropout);
}

fl::TrainingHistory HaccsSystem::train_with(fl::ClientSelector& selector) {
  return trainer_.run(selector);
}

fl::TrainingHistory HaccsSystem::train_with(
    fl::ClientSelector& selector, const sim::DropoutSchedule& dropout) {
  return trainer_.run(selector, dropout);
}

std::vector<int> HaccsSystem::cluster_labels() const {
  return cluster_clients(dataset_, haccs_config_);
}

std::function<nn::Sequential()> default_model_factory(
    const data::FederatedDataset& dataset, std::uint64_t seed, bool use_cnn) {
  if (dataset.clients.empty()) {
    throw std::invalid_argument("default_model_factory: empty dataset");
  }
  const auto shape = dataset.clients[0].train.sample_shape();
  if (shape.size() != 3) {
    throw std::invalid_argument(
        "default_model_factory: expected (C, H, W) samples");
  }
  const std::size_t channels = shape[0], h = shape[1], w = shape[2];
  const std::size_t classes = dataset.num_classes;
  if (use_cnn) {
    return [=] {
      Rng rng(seed);
      return nn::make_lenet(channels, h, w, classes, rng);
    };
  }
  return [=] {
    Rng rng(seed);
    nn::Sequential model;
    model.add(std::make_unique<nn::Flatten>());
    model.add(std::make_unique<nn::Dense>(channels * h * w, 64, rng));
    model.add(std::make_unique<nn::ReLU>());
    model.add(std::make_unique<nn::Dense>(64, classes, rng));
    return model;
  };
}

}  // namespace haccs::core
