// The HACCS client-selection strategy (paper §IV-D, Algorithm 1).
//
// At construction the selector runs the summary/clustering pipeline once
// ("computed at the start of training"). Each epoch it:
//   1. computes per-cluster average loss (ACL_i) and average latency from
//      the engine's runtime view,
//   2. forms sampling weights θ_i = ρ·τ_i + (1-ρ)·ACL_i / ΣACL_j  (Eq. 7)
//      with τ_i = 1 − Latency_i / Latency_max                     (Eq. 6),
//   3. draws k clusters by weighted simple random sampling *with*
//      replacement (Weighted-SRSWR),
//   4. takes the lowest-latency available device not yet chosen from each
//      sampled cluster (or latency-weighted random, §V-E's alternative).
//
// Noise points from the clustering are treated as singleton clusters, so a
// client with a unique distribution still represents itself. Devices that
// dropped out are skipped within their cluster — the paper's robustness
// story: the next-fastest device with the same distribution stands in.
#pragma once

#include <memory>

#include "src/core/pipeline.hpp"
#include "src/fl/selector.hpp"
#include "src/scale/incremental.hpp"

namespace haccs::core {

class HaccsSelector final : public fl::ClientSelector {
 public:
  /// Runs the clustering pipeline on `dataset` immediately.
  HaccsSelector(const data::FederatedDataset& dataset, HaccsConfig config);

  /// Uses precomputed cluster labels (for tests / ablations).
  HaccsSelector(std::vector<int> cluster_labels, HaccsConfig config);

  std::vector<std::size_t> select(std::size_t k,
                                  const std::vector<fl::ClientRuntimeInfo>& clients,
                                  std::size_t epoch, Rng& rng) override;
  std::string name() const override;

  /// Failure-aware reaction (robustness extension): the failed device's
  /// intra-cluster priority is decayed and its cluster is queued for a
  /// guaranteed replacement draw on the next select() — selection stays
  /// cluster-faithful under churn (the same distribution keeps its seat).
  void report_failure(std::size_t client_id, std::size_t epoch,
                      fl::FailureKind kind) override;

  /// Accumulated reliability penalty of a client (1 = no penalty) —
  /// exposed for tests.
  double failure_penalty_of(std::size_t client_id) const;

  /// Crash-resume state: failure penalties and the pending replacement
  /// queue. Clusters themselves are rebuilt deterministically from the
  /// dataset, so they are not part of the blob.
  std::vector<std::uint8_t> save_state() const override;
  void load_state(std::span<const std::uint8_t> state) override;

  /// Re-runs clustering (e.g. after clients join/leave or summaries change,
  /// §IV-C's real-time adaptation). With config.scale.enabled this is
  /// incremental: unchanged clients keep their cached shard clustering, and
  /// a full recompute happens only when churn crosses the dirtiness
  /// threshold (scale::IncrementalClusterer).
  void recluster(const data::FederatedDataset& dataset);

  /// The incremental clusterer backing the scale path (null when
  /// config.scale.enabled is false or the selector was label-constructed).
  /// Exposed for tests and the --summary-json report.
  const scale::IncrementalClusterer* incremental() const {
    return incremental_.get();
  }

  /// Replaces the cluster assignment wholesale (noise remapped to
  /// singletons). Used by dynamic schedulers that derive clusters from
  /// signals other than data summaries (e.g. gradient directions).
  void set_clusters(std::vector<int> cluster_labels);

  /// Cluster label per client; -1 never appears here (noise points are
  /// remapped to singleton clusters).
  const std::vector<int>& cluster_of() const { return cluster_of_; }
  std::size_t num_clusters() const { return clusters_.size(); }
  const std::vector<std::vector<std::size_t>>& clusters() const {
    return clusters_;
  }

  /// Eq. 7 weights for the given runtime view (exposed for tests).
  std::vector<double> cluster_weights(
      const std::vector<fl::ClientRuntimeInfo>& clients) const;

 private:
  void build_clusters(std::vector<int> raw_labels);
  /// Scale path: sync the incremental clusterer with the dataset (joins,
  /// leaves, changed summaries) and refresh clusters_ from its labels.
  void recluster_scaled(const data::FederatedDataset& dataset, bool initial);

  HaccsConfig config_;
  /// Set only by the dataset-constructing constructor; enables
  /// config_.recluster_every. The dataset must outlive the selector.
  const data::FederatedDataset* dataset_ = nullptr;
  std::vector<int> cluster_of_;
  std::vector<std::vector<std::size_t>> clusters_;
  /// Reliability penalty per client (>= 1; decays toward 1 each epoch).
  std::vector<double> penalty_;
  /// Clusters owed a replacement draw after a member failed mid-round.
  std::vector<std::size_t> replacement_queue_;

  /// Scale path state. Summaries live behind a shared_ptr because the
  /// clusterer's exact-distance callback captures them; the selector can be
  /// moved without dangling the callback.
  std::shared_ptr<std::vector<ClientSummary>> scale_summaries_;
  std::unique_ptr<scale::IncrementalClusterer> incremental_;
  /// Dataset index -> clusterer client id.
  std::vector<std::size_t> scale_ids_;
};

}  // namespace haccs::core
