// Configuration for the HACCS scheduler (paper §IV).
#pragma once

#include <cstdint>
#include <string>

#include "src/clustering/dbscan.hpp"
#include "src/clustering/optics.hpp"
#include "src/scale/scale_config.hpp"
#include "src/stats/distance.hpp"
#include "src/stats/privacy.hpp"
#include "src/stats/summary.hpp"

namespace haccs::core {

/// How flat clusters are extracted from the OPTICS ordering.
enum class Extraction {
  Auto,    ///< largest-gap cut (default; hyperparameter-free)
  Xi,      ///< the ξ steep-area method
  Dbscan,  ///< fixed-eps cut
};

/// Which density-based algorithm clusters the summary distances.
enum class ClusterAlgorithm {
  Optics,  ///< the paper's choice (§IV-C)
  Dbscan,  ///< ablation alternative
};

/// How a device is picked inside a sampled cluster.
enum class InClusterPolicy {
  MinLatency,      ///< the paper's Algorithm 1: fastest available device
  WeightedRandom,  ///< §V-E's suggested mitigation: latency-weighted sampling
};

std::string to_string(Extraction e);
std::string to_string(ClusterAlgorithm a);
std::string to_string(InClusterPolicy p);

struct HaccsConfig {
  /// Which distribution summary clients report (P(y), P(X|y), or Q(X|y)).
  stats::SummaryKind summary = stats::SummaryKind::Response;
  stats::ConditionalSummaryConfig conditional;
  stats::QuantileSummaryConfig quantile;

  /// Distance between P(y) summaries. The paper uses Hellinger (Eq. 3);
  /// alternatives are provided for the ablation in bench/ablation_distance.
  /// P(X|y) summaries always use the mass-weighted Hellinger.
  stats::DistanceKind response_distance = stats::DistanceKind::Hellinger;

  /// Differential privacy on the reported summaries; PrivacyConfig::none()
  /// disables noise.
  stats::PrivacyConfig privacy = stats::PrivacyConfig::none();
  /// Seed for the per-client DP noise streams.
  std::uint64_t privacy_seed = 7;

  /// Eq. 7 trade-off between latency (rho -> 1) and loss (rho -> 0).
  double rho = 0.5;

  ClusterAlgorithm algorithm = ClusterAlgorithm::Optics;
  clustering::OpticsConfig optics{.min_pts = 2,
                                  .max_eps = clustering::kUndefined};
  Extraction extraction = Extraction::Auto;
  double xi = 0.05;                       ///< for Extraction::Xi
  clustering::DbscanConfig dbscan{.eps = 0.3, .min_pts = 2};

  InClusterPolicy in_cluster = InClusterPolicy::MinLatency;

  /// Million-client scaling (DESIGN.md §5h). Disabled by default: the exact
  /// O(N²) pipeline runs unchanged. When enabled, clustering goes through
  /// sketched summaries, ANN candidate pruning, sharding, and the
  /// cluster-of-clusters merge (src/scale), with incremental re-clustering
  /// under churn in HaccsSelector.
  scale::ScaleConfig scale;

  /// Re-run the summary/clustering pipeline every N epochs (0 = cluster once
  /// at the start of training, the paper's Algorithm 1 default). Nonzero
  /// values implement §IV-C's real-time adaptation: clients resubmitting
  /// summaries as their data drifts get fresh cluster assignments while
  /// training is in progress.
  std::size_t recluster_every = 0;

  /// Loss assumed for clusters never yet trained.
  double initial_loss = 2.302585;

  /// Reliability penalty multiplier applied to a device's intra-cluster
  /// priority when it fails mid-round (crash/timeout/corruption): its
  /// effective latency is scaled by the accumulated penalty, so the
  /// next-fastest same-cluster device stands in on subsequent rounds.
  double failure_penalty = 2.0;
  /// Per-epoch multiplicative decay pulling accumulated penalties back
  /// toward 1 (a device that behaves again regains its priority).
  double failure_penalty_decay = 0.95;
  /// Re-sample a same-cluster stand-in on the round after a member fails
  /// (keeps every distribution represented under churn). Set false — with
  /// failure_penalty = 1 — for a fault-unaware HACCS baseline in ablations.
  bool failure_replacement = true;
};

}  // namespace haccs::core
