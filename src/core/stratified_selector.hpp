// Stratified cluster coverage — an additional scheduling strategy in the
// direction the paper names as future work (§V-E: "exploring additional
// scheduling strategies will be an important future research direction").
//
// Where Algorithm 1 samples clusters WITH replacement (Weighted-SRSWR, so a
// high-weight cluster can fill several of the k slots), the stratified
// policy guarantees coverage first: each round deterministically walks the
// clusters in a rotating order, taking one device per cluster until k slots
// are filled; when k exceeds the cluster count the remainder is filled by a
// second pass. In-cluster picks rotate round-robin over members ordered by
// latency, so every device participates periodically regardless of loss —
// the zero-bias end of the spectrum (contrast with rho in Eq. 7).
#pragma once

#include "src/core/haccs_config.hpp"
#include "src/core/pipeline.hpp"
#include "src/fl/selector.hpp"

namespace haccs::core {

class StratifiedSelector final : public fl::ClientSelector {
 public:
  /// Clusters `dataset` with the given config (summary/privacy/clustering
  /// knobs are honored; rho and in_cluster are ignored by this policy).
  StratifiedSelector(const data::FederatedDataset& dataset, HaccsConfig config);

  /// Uses precomputed cluster labels (noise remapped to singletons).
  explicit StratifiedSelector(std::vector<int> cluster_labels);

  std::vector<std::size_t> select(std::size_t k,
                                  const std::vector<fl::ClientRuntimeInfo>& clients,
                                  std::size_t epoch, Rng& rng) override;
  std::string name() const override { return "HACCS-stratified"; }

  std::size_t num_clusters() const { return clusters_.size(); }
  const std::vector<std::vector<std::size_t>>& clusters() const {
    return clusters_;
  }

 private:
  void build(std::vector<int> raw_labels);

  std::vector<std::vector<std::size_t>> clusters_;
  /// Rotating start cluster and per-cluster member cursors.
  std::size_t next_cluster_ = 0;
  std::vector<std::size_t> member_cursor_;
};

}  // namespace haccs::core
