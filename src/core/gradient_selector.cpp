#include "src/core/gradient_selector.hpp"

#include <cmath>
#include <stdexcept>

#include "src/stats/distance.hpp"

namespace haccs::core {

GradientClusterSelector::GradientClusterSelector(GradientSelectorConfig config)
    : config_(config), inner_(std::vector<int>{}, config.scheduling) {
  if (config_.sketch_dim == 0) {
    throw std::invalid_argument("GradientClusterSelector: zero sketch dim");
  }
  if (config_.recluster_every == 0) {
    throw std::invalid_argument(
        "GradientClusterSelector: recluster_every must be > 0");
  }
}

void GradientClusterSelector::initialize(
    const std::vector<fl::ClientRuntimeInfo>& clients) {
  sketches_.assign(clients.size(), {});
  // Everyone starts as a singleton: no gradient information yet.
  std::vector<int> singletons(clients.size());
  for (std::size_t i = 0; i < clients.size(); ++i) {
    singletons[i] = static_cast<int>(i);
  }
  inner_ = HaccsSelector(std::move(singletons), config_.scheduling);
}

void GradientClusterSelector::report_result(std::size_t client_id, double loss,
                                            std::size_t epoch) {
  inner_.report_result(client_id, loss, epoch);
}

void GradientClusterSelector::report_update(std::size_t client_id,
                                            std::span<const float> update,
                                            std::size_t /*epoch*/) {
  if (client_id >= sketches_.size()) return;
  if (model_dim_ == 0) model_dim_ = update.size();

  // Sparse Johnson-Lindenstrauss sketch: each model coordinate scatters into
  // two signed sketch slots chosen by a hash of its index. O(model_dim).
  std::vector<float> sketch(config_.sketch_dim, 0.0f);
  for (std::size_t i = 0; i < update.size(); ++i) {
    SplitMix64 h(config_.projection_seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
    const std::uint64_t bits = h.next();
    const std::size_t d1 = bits % config_.sketch_dim;
    const std::size_t d2 = (bits >> 20) % config_.sketch_dim;
    const float s1 = (bits >> 40) & 1 ? 1.0f : -1.0f;
    const float s2 = (bits >> 41) & 1 ? 1.0f : -1.0f;
    sketch[d1] += s1 * update[i];
    sketch[d2] += s2 * update[i];
  }
  // Unit-normalize: cosine structure is what clusters gradient directions.
  double norm = 0.0;
  for (float v : sketch) norm += static_cast<double>(v) * v;
  norm = std::sqrt(norm);
  if (norm > 0.0) {
    for (float& v : sketch) v = static_cast<float>(v / norm);
  }
  sketches_[client_id] = std::move(sketch);
}

void GradientClusterSelector::recluster(std::size_t num_clients) {
  auto distance = [&](std::size_t i, std::size_t j) -> double {
    if (sketches_[i].empty() || sketches_[j].empty()) {
      return 1.0;  // unseen clients match nobody
    }
    std::vector<double> a(sketches_[i].begin(), sketches_[i].end());
    std::vector<double> b(sketches_[j].begin(), sketches_[j].end());
    // Sketches can be negative; shift into the cosine on raw dot product.
    double dot = 0.0;
    for (std::size_t d = 0; d < a.size(); ++d) dot += a[d] * b[d];
    return std::min(1.0, std::max(0.0, 1.0 - dot));  // unit vectors
  };
  const auto matrix = clustering::DistanceMatrix::build(num_clients, distance);
  const auto labels =
      clustering::dbscan(matrix, {.eps = config_.eps, .min_pts = 2});
  inner_.set_clusters(labels);
}

std::vector<std::size_t> GradientClusterSelector::select(
    std::size_t k, const std::vector<fl::ClientRuntimeInfo>& clients,
    std::size_t epoch, Rng& rng) {
  if (sketches_.size() != clients.size()) initialize(clients);
  if (epoch > 0 && epoch % config_.recluster_every == 0) {
    recluster(clients.size());
  }
  return inner_.select(k, clients, epoch, rng);
}

std::span<const float> GradientClusterSelector::sketch(
    std::size_t client_id) const {
  if (client_id >= sketches_.size()) {
    throw std::out_of_range("GradientClusterSelector::sketch");
  }
  return sketches_[client_id];
}

}  // namespace haccs::core
