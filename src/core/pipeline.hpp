// The HACCS summary -> privacy -> distance -> clustering pipeline
// (paper Fig. 2, steps 1-2, and Algorithm 1's "computed at the start of
// training" preamble).
//
// Exposed as free functions so the scheduler, the privacy experiments
// (Fig. 8a), and the examples can each run exactly the production path.
#pragma once

#include <vector>

#include "src/clustering/distance_matrix.hpp"
#include "src/core/haccs_config.hpp"
#include "src/data/partition.hpp"

namespace haccs::core {

/// A client's reported summary — exactly one of the two kinds is populated,
/// matching `kind`.
struct ClientSummary {
  stats::SummaryKind kind = stats::SummaryKind::Response;
  stats::ResponseSummary response{1};
  stats::ConditionalSummary conditional;
  stats::QuantileSummary quantile;
  stats::QuantileSummaryConfig quantile_config;

  /// Distance between two summaries of the same kind. Response summaries
  /// use `kind` (Hellinger per §IV-A unless ablated); conditional summaries
  /// always use the mass-weighted Hellinger.
  static double distance(const ClientSummary& a, const ClientSummary& b,
                         stats::DistanceKind kind = stats::DistanceKind::Hellinger);
};

/// Computes each client's (optionally privatized) summary. This is the
/// client-side step: in a deployment each device computes and noises its own
/// summary before transmission; the per-client noise stream is forked from
/// `config.privacy_seed`.
std::vector<ClientSummary> compute_summaries(
    const data::FederatedDataset& dataset, const HaccsConfig& config);

/// Pairwise summary distances (server side).
clustering::DistanceMatrix summary_distances(
    const std::vector<ClientSummary>& summaries,
    stats::DistanceKind response_kind = stats::DistanceKind::Hellinger);

/// Runs the configured clustering on a distance matrix. Labels >= 0 are
/// clusters; -1 is noise.
std::vector<int> cluster_distances(const clustering::DistanceMatrix& distances,
                                   const HaccsConfig& config);

/// Full pipeline: summaries -> distances -> clusters.
std::vector<int> cluster_clients(const data::FederatedDataset& dataset,
                                 const HaccsConfig& config);

}  // namespace haccs::core
