// The HACCS summary -> privacy -> distance -> clustering pipeline
// (paper Fig. 2, steps 1-2, and Algorithm 1's "computed at the start of
// training" preamble).
//
// Exposed as free functions so the scheduler, the privacy experiments
// (Fig. 8a), and the examples can each run exactly the production path.
#pragma once

#include <vector>

#include "src/clustering/distance_matrix.hpp"
#include "src/clustering/neighbor_index.hpp"
#include "src/core/haccs_config.hpp"
#include "src/data/partition.hpp"
#include "src/scale/scale.hpp"

namespace haccs::core {

/// A client's reported summary — exactly one of the two kinds is populated,
/// matching `kind`.
struct ClientSummary {
  stats::SummaryKind kind = stats::SummaryKind::Response;
  stats::ResponseSummary response{1};
  stats::ConditionalSummary conditional;
  stats::QuantileSummary quantile;
  stats::QuantileSummaryConfig quantile_config;

  /// Distance between two summaries of the same kind. Response summaries
  /// use `kind` (Hellinger per §IV-A unless ablated); conditional summaries
  /// always use the mass-weighted Hellinger.
  static double distance(const ClientSummary& a, const ClientSummary& b,
                         stats::DistanceKind kind = stats::DistanceKind::Hellinger);
};

/// Computes each client's (optionally privatized) summary. This is the
/// client-side step: in a deployment each device computes and noises its own
/// summary before transmission; the per-client noise stream is forked from
/// `config.privacy_seed`.
std::vector<ClientSummary> compute_summaries(
    const data::FederatedDataset& dataset, const HaccsConfig& config);

/// Pairwise summary distances (server side).
clustering::DistanceMatrix summary_distances(
    const std::vector<ClientSummary>& summaries,
    stats::DistanceKind response_kind = stats::DistanceKind::Hellinger);

/// Runs the configured clustering through the NeighborIndex seam. Labels
/// >= 0 are clusters; -1 is noise. With a DenseNeighborIndex this is
/// bit-identical to the pre-seam matrix path; sparse indexes (src/scale)
/// answer the same queries from the ANN candidate graph.
std::vector<int> cluster_index(const clustering::NeighborIndex& index,
                               const HaccsConfig& config);

/// Runs the configured clustering on a distance matrix. Labels >= 0 are
/// clusters; -1 is noise.
std::vector<int> cluster_distances(const clustering::DistanceMatrix& distances,
                                   const HaccsConfig& config);

/// Fixed-width sketch embedding of a summary (the scale pipeline's client
/// representation): the √-probability vector of the summary's distribution,
/// signed-hash-projected down to `dim` when it is wider. Sketch-space
/// L2 / √2 then estimates the summary distance — exactly, for P(y)
/// summaries with at most `dim` classes.
std::vector<float> summary_embedding(const ClientSummary& summary,
                                     std::size_t dim, std::uint64_t seed);

/// Scale path: sketch embeddings -> ANN-pruned shards -> cluster-of-clusters
/// merge (scale::cluster_sharded), with exact summary distances evaluated
/// only for candidate pairs. `stats` (optional) receives work accounting.
std::vector<int> cluster_summaries_scaled(
    const std::vector<ClientSummary>& summaries, const HaccsConfig& config,
    scale::ScaleStats* stats = nullptr);

/// Full pipeline: summaries -> distances -> clusters. Dispatches to the
/// scale path when config.scale.enabled; otherwise runs the exact O(N²)
/// pipeline unchanged.
std::vector<int> cluster_clients(const data::FederatedDataset& dataset,
                                 const HaccsConfig& config);

}  // namespace haccs::core
