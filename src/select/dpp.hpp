// Determinantal-point-process selection (Zhang et al., "Federated Learning
// with Client Diversity via Determinantal Point Processes"-style baselines;
// see PAPERS.md), re-implemented from the published idea.
//
// Clients are scored by a quality x diversity kernel
//
//   L_ij = q_i * q_j * S_ij,   S_ij = 1 - Hellinger(p_i, p_j)
//
// where p_i is client i's label distribution and q_i combines sample count,
// observed loss, and delivery reliability. A draw from the DPP favors sets
// whose label distributions are mutually far apart — directly attacking the
// same non-IID waste HACCS clusters away, but without an explicit clustering
// stage. Exact sampling is O(n^3); we use the standard stochastic greedy MAP
// approximation (categorical over conditional marginal gains), which keeps
// selection deterministic in the engine's selection stream.
#pragma once

#include <vector>

#include "src/data/partition.hpp"
#include "src/fl/selector.hpp"

namespace haccs::select {

struct DppConfig {
  /// Loss assumed for never-trained clients (ln 10: uniform over 10 classes).
  double initial_loss = 2.302585;
  /// Reliability multiplier applied per reported failure; successes recover.
  double failure_factor = 0.5;
  double min_reliability = 1.0 / 64.0;
};

class DppSelector final : public fl::ClientSelector {
 public:
  /// `label_counts[i]` is client i's per-class label count (or distribution;
  /// normalized internally). The similarity kernel is fixed at construction.
  DppSelector(std::vector<std::vector<double>> label_counts, DppConfig config);
  /// Convenience: summarize each client's training split of `dataset`.
  explicit DppSelector(const data::FederatedDataset& dataset,
                       DppConfig config = {});

  void initialize(const std::vector<fl::ClientRuntimeInfo>& clients) override;
  std::vector<std::size_t> select(
      std::size_t k, const std::vector<fl::ClientRuntimeInfo>& clients,
      std::size_t epoch, Rng& rng) override;
  void report_result(std::size_t client_id, double loss,
                     std::size_t epoch) override;
  void report_failure(std::size_t client_id, std::size_t epoch,
                      fl::FailureKind kind) override;
  std::string name() const override { return "DPP"; }

  /// Kernel similarity between two clients (1 - Hellinger) — for tests.
  double similarity(std::size_t a, std::size_t b) const;
  double reliability_of(std::size_t client_id) const;

  std::vector<std::uint8_t> save_state() const override;
  void load_state(std::span<const std::uint8_t> state) override;

 private:
  double quality(const fl::ClientRuntimeInfo& client) const;

  DppConfig config_;
  std::size_t population_ = 0;
  std::vector<double> similarity_;   // n x n, row-major; structural
  std::vector<double> observed_loss_;  // NaN until first observation
  std::vector<double> reliability_;    // in (0, 1]
};

}  // namespace haccs::select
