// Oort baseline (Lai et al., "Oort: Efficient Federated Learning via Guided
// Participant Selection", OSDI'21), re-implemented from the published
// description.
//
// Each client carries a utility combining a statistical term (sample count x
// observed loss — the paper's gradient-norm proxy) with a system term that
// penalizes clients slower than the developer's preferred round duration T:
//
//   U_i = |B_i| * loss_i * (T / t_i)^alpha   if t_i > T, else |B_i| * loss_i
//
// plus an exploration bonus sqrt(0.1 * ln(R) / last_round_i) for clients not
// recently observed. A decaying epsilon fraction of the k slots explores
// never-tried clients at random; the rest exploit the top-utility clients.
#pragma once

#include "src/fl/selector.hpp"

namespace haccs::select {

struct OortConfig {
  /// System-penalty exponent (alpha in the Oort paper).
  double alpha = 2.0;
  /// Preferred round duration T as a quantile of the client latency
  /// distribution (Oort tunes T to a "developer-preferred" duration; the
  /// 80th percentile keeps most clients unpenalized).
  double deadline_quantile = 0.8;
  /// Initial / minimum exploration fraction with multiplicative decay.
  double initial_exploration = 0.3;
  double min_exploration = 0.1;
  double exploration_decay = 0.98;
  /// Loss assumed for never-trained clients.
  double initial_loss = 2.302585;
  /// Reliability multiplier applied on each reported failure (utility is
  /// scaled by the client's accumulated reliability; successes recover it).
  double failure_factor = 0.5;
  /// Reliability floor so a flaky client keeps a nonzero utility.
  double min_reliability = 1.0 / 64.0;
};

class OortSelector final : public fl::ClientSelector {
 public:
  explicit OortSelector(OortConfig config);

  void initialize(const std::vector<fl::ClientRuntimeInfo>& clients) override;
  std::vector<std::size_t> select(std::size_t k,
                                  const std::vector<fl::ClientRuntimeInfo>& clients,
                                  std::size_t epoch, Rng& rng) override;
  void report_result(std::size_t client_id, double loss,
                     std::size_t epoch) override;
  /// Failure-aware reaction: multiplicative utility penalty (Oort's own
  /// reliability story), recovered gradually by later successes.
  void report_failure(std::size_t client_id, std::size_t epoch,
                      fl::FailureKind kind) override;
  std::string name() const override { return "Oort"; }

  /// Current utility of a client (exposed for tests).
  double utility(const fl::ClientRuntimeInfo& client, std::size_t epoch) const;

  double deadline() const { return deadline_s_; }
  /// Reliability multiplier of a client (1 = never failed) — for tests.
  double reliability_of(std::size_t client_id) const;

  /// Crash-resume state: deadline, observed losses, participation history,
  /// and reliability multipliers.
  std::vector<std::uint8_t> save_state() const override;
  void load_state(std::span<const std::uint8_t> state) override;

 private:
  OortConfig config_;
  double deadline_s_ = 0.0;
  std::vector<double> observed_loss_;     // NaN until first observation
  std::vector<std::size_t> last_round_;   // last participation epoch + 1
  std::vector<double> reliability_;       // utility multiplier in (0, 1]
};

}  // namespace haccs::select
