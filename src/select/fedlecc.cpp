#include "src/select/fedlecc.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/clustering/dbscan.hpp"
#include "src/clustering/distance_matrix.hpp"
#include "src/net/wire.hpp"
#include "src/stats/distance.hpp"

namespace haccs::select {

namespace {

std::vector<std::vector<double>> counts_of(const data::FederatedDataset& fed) {
  std::vector<std::vector<double>> counts;
  counts.reserve(fed.clients.size());
  for (const auto& client : fed.clients) {
    counts.push_back(client.train.label_counts());
  }
  return counts;
}

}  // namespace

FedLeccSelector::FedLeccSelector(std::vector<std::vector<double>> label_counts,
                                 FedLeccConfig config)
    : config_(config), population_(label_counts.size()) {
  if (population_ == 0) {
    throw std::invalid_argument("FedLeccSelector: empty population");
  }
  if (config_.eps <= 0.0 || config_.min_pts == 0) {
    throw std::invalid_argument("FedLeccSelector: bad DBSCAN parameters");
  }
  const auto matrix = clustering::DistanceMatrix::build(
      population_, [&](std::size_t i, std::size_t j) {
        return stats::distribution_distance(label_counts[i], label_counts[j],
                                            stats::DistanceKind::Hellinger);
      });
  cluster_of_ =
      clustering::dbscan(matrix, {config_.eps, config_.min_pts});
  // Noise points (-1) become singleton clusters: an outlier distribution is
  // exactly the client a diversity-seeking policy must still reach.
  int next = 0;
  for (int label : cluster_of_) next = std::max(next, label + 1);
  for (int& label : cluster_of_) {
    if (label < 0) label = next++;
  }
  clusters_.assign(static_cast<std::size_t>(next), {});
  for (std::size_t i = 0; i < population_; ++i) {
    clusters_[static_cast<std::size_t>(cluster_of_[i])].push_back(i);
  }
  observed_loss_.assign(population_, std::numeric_limits<double>::quiet_NaN());
  reliability_.assign(population_, 1.0);
}

FedLeccSelector::FedLeccSelector(const data::FederatedDataset& dataset,
                                 FedLeccConfig config)
    : FedLeccSelector(counts_of(dataset), config) {}

void FedLeccSelector::initialize(
    const std::vector<fl::ClientRuntimeInfo>& clients) {
  if (clients.size() != population_) {
    throw std::invalid_argument(
        "FedLeccSelector: runtime view does not match the clustered "
        "population");
  }
}

double FedLeccSelector::loss_of(std::size_t client_id) const {
  return std::isnan(observed_loss_[client_id]) ? config_.initial_loss
                                               : observed_loss_[client_id];
}

double FedLeccSelector::reliability_of(std::size_t client_id) const {
  return client_id < reliability_.size() ? reliability_[client_id] : 1.0;
}

void FedLeccSelector::report_result(std::size_t client_id, double loss,
                                    std::size_t /*epoch*/) {
  if (client_id >= observed_loss_.size()) return;
  observed_loss_[client_id] = loss;
  reliability_[client_id] += 0.5 * (1.0 - reliability_[client_id]);
}

void FedLeccSelector::report_failure(std::size_t client_id,
                                     std::size_t /*epoch*/,
                                     fl::FailureKind /*kind*/) {
  if (client_id >= reliability_.size()) return;
  reliability_[client_id] = std::max(
      config_.min_reliability, reliability_[client_id] * config_.failure_factor);
}

std::vector<std::size_t> FedLeccSelector::select(
    std::size_t k, const std::vector<fl::ClientRuntimeInfo>& clients,
    std::size_t /*epoch*/, Rng& rng) {
  if (clients.size() != population_) initialize(clients);

  auto ids = fl::available_ids(clients);
  if (ids.size() <= k) return ids;

  std::vector<std::size_t> out;
  out.reserve(k);

  // Per-cluster remaining available members, maintained across draws.
  std::vector<std::vector<std::size_t>> open(clusters_.size());
  for (std::size_t id : ids) {
    open[static_cast<std::size_t>(cluster_of_[id])].push_back(id);
  }

  std::vector<double> weight(clusters_.size());
  while (out.size() < k) {
    double total = 0.0;
    for (std::size_t c = 0; c < clusters_.size(); ++c) {
      // Remaining loss mass of the cluster: |members| x mean observed (or
      // initial) loss — big, badly-fit clusters get drawn more often.
      double loss_sum = 0.0;
      for (std::size_t id : open[c]) loss_sum += loss_of(id);
      weight[c] = loss_sum;
      total += weight[c];
    }
    if (total <= 0.0) break;  // cannot happen: losses are positive
    const std::size_t c = rng.categorical(weight);
    // Exploit within the drawn cluster: highest reliability-weighted loss,
    // ties broken toward the faster, then lower-id, client.
    std::size_t best = open[c].front();
    double best_score = -1.0;
    for (std::size_t id : open[c]) {
      const double score = loss_of(id) * reliability_[id];
      if (score > best_score ||
          (score == best_score &&
           (clients[id].latency_s < clients[best].latency_s ||
            (clients[id].latency_s == clients[best].latency_s && id < best)))) {
        best = id;
        best_score = score;
      }
    }
    out.push_back(best);
    auto& members = open[c];
    members.erase(std::find(members.begin(), members.end(), best));
  }
  return out;
}

std::vector<std::uint8_t> FedLeccSelector::save_state() const {
  net::WireWriter w;
  w.string("FedLECC");
  w.u16(1);  // state-blob version
  w.f64_array(observed_loss_);
  w.f64_array(reliability_);
  return w.take();
}

void FedLeccSelector::load_state(std::span<const std::uint8_t> state) {
  net::WireReader r(state);
  if (r.string() != "FedLECC") {
    throw std::runtime_error(
        "FedLeccSelector: state blob from another selector");
  }
  if (r.u16() != 1) {
    throw std::runtime_error("FedLeccSelector: unsupported state version");
  }
  auto observed = r.f64_array();
  auto reliability = r.f64_array();
  r.expect_exhausted();
  if (observed.size() != population_ || reliability.size() != population_) {
    throw std::runtime_error("FedLeccSelector: state population mismatch");
  }
  observed_loss_ = std::move(observed);
  reliability_ = std::move(reliability);
}

}  // namespace haccs::select
