// Heterogeneity-weighted importance selection (HiCS-style: weight clients by
// how far their label distribution sits from the population aggregate; see
// PAPERS.md), re-implemented from the published idea.
//
// Each client gets a static heterogeneity score het_i = Hellinger(p_i, p̄)
// against the population-mean label distribution; per round, clients are
// drawn WITHOUT replacement with probability proportional to
//
//   (base + het_i) * loss_i * reliability_i * (t_min / t_i)^beta
//
// — loss keeps the statistical-utility signal, the latency term softly
// prefers fast clients, and the heterogeneity factor keeps rare
// distributions represented, which is the one-shot (non-clustered) version
// of the coverage HACCS gets from Eq. 7.
#pragma once

#include <vector>

#include "src/data/partition.hpp"
#include "src/fl/selector.hpp"

namespace haccs::select {

struct HicsConfig {
  /// Additive floor so a perfectly-average client keeps a nonzero weight.
  double base = 0.05;
  /// Exponent of the (t_min / t_i) latency preference; 0 disables it.
  double latency_beta = 0.5;
  /// Loss assumed for never-trained clients.
  double initial_loss = 2.302585;
  /// Reliability multiplier applied per reported failure; successes recover.
  double failure_factor = 0.5;
  double min_reliability = 1.0 / 64.0;
};

class HicsSelector final : public fl::ClientSelector {
 public:
  /// `label_counts[i]` is client i's per-class label count (or distribution;
  /// normalized internally). Heterogeneity scores are fixed at construction.
  HicsSelector(std::vector<std::vector<double>> label_counts,
               HicsConfig config);
  explicit HicsSelector(const data::FederatedDataset& dataset,
                        HicsConfig config = {});

  void initialize(const std::vector<fl::ClientRuntimeInfo>& clients) override;
  std::vector<std::size_t> select(
      std::size_t k, const std::vector<fl::ClientRuntimeInfo>& clients,
      std::size_t epoch, Rng& rng) override;
  void report_result(std::size_t client_id, double loss,
                     std::size_t epoch) override;
  void report_failure(std::size_t client_id, std::size_t epoch,
                      fl::FailureKind kind) override;
  std::string name() const override { return "HiCS"; }

  /// Static heterogeneity score of a client — for tests.
  double heterogeneity_of(std::size_t client_id) const;
  double reliability_of(std::size_t client_id) const;

  std::vector<std::uint8_t> save_state() const override;
  void load_state(std::span<const std::uint8_t> state) override;

 private:
  HicsConfig config_;
  std::size_t population_ = 0;
  std::vector<double> heterogeneity_;  // structural
  std::vector<double> observed_loss_;  // NaN until first observation
  std::vector<double> reliability_;    // in (0, 1]
};

}  // namespace haccs::select
