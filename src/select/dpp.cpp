#include "src/select/dpp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/net/wire.hpp"
#include "src/stats/distance.hpp"

namespace haccs::select {

namespace {

std::vector<std::vector<double>> counts_of(const data::FederatedDataset& fed) {
  std::vector<std::vector<double>> counts;
  counts.reserve(fed.clients.size());
  for (const auto& client : fed.clients) {
    counts.push_back(client.train.label_counts());
  }
  return counts;
}

}  // namespace

DppSelector::DppSelector(std::vector<std::vector<double>> label_counts,
                         DppConfig config)
    : config_(config), population_(label_counts.size()) {
  if (population_ == 0) {
    throw std::invalid_argument("DppSelector: empty population");
  }
  if (config_.failure_factor <= 0.0 || config_.failure_factor > 1.0) {
    throw std::invalid_argument("DppSelector: bad failure_factor");
  }
  similarity_.assign(population_ * population_, 1.0);
  for (std::size_t i = 0; i < population_; ++i) {
    for (std::size_t j = i + 1; j < population_; ++j) {
      const double s =
          1.0 - stats::distribution_distance(label_counts[i], label_counts[j],
                                             stats::DistanceKind::Hellinger);
      similarity_[i * population_ + j] = s;
      similarity_[j * population_ + i] = s;
    }
  }
  observed_loss_.assign(population_, std::numeric_limits<double>::quiet_NaN());
  reliability_.assign(population_, 1.0);
}

DppSelector::DppSelector(const data::FederatedDataset& dataset,
                         DppConfig config)
    : DppSelector(counts_of(dataset), config) {}

void DppSelector::initialize(
    const std::vector<fl::ClientRuntimeInfo>& clients) {
  if (clients.size() != population_) {
    throw std::invalid_argument(
        "DppSelector: runtime view does not match the summarized population");
  }
}

double DppSelector::similarity(std::size_t a, std::size_t b) const {
  return similarity_[a * population_ + b];
}

double DppSelector::reliability_of(std::size_t client_id) const {
  return client_id < reliability_.size() ? reliability_[client_id] : 1.0;
}

double DppSelector::quality(const fl::ClientRuntimeInfo& client) const {
  const double loss = std::isnan(observed_loss_[client.id])
                          ? config_.initial_loss
                          : observed_loss_[client.id];
  // sqrt keeps the kernel's quality^2 diagonal linear in (samples x loss),
  // the same statistical-utility shape Oort exploits.
  const double q = std::sqrt(static_cast<double>(client.num_samples) *
                             std::max(loss, 1.0e-6)) *
                   reliability_[client.id];
  return std::max(q, 1.0e-9);
}

void DppSelector::report_result(std::size_t client_id, double loss,
                                std::size_t /*epoch*/) {
  if (client_id >= observed_loss_.size()) return;
  observed_loss_[client_id] = loss;
  reliability_[client_id] += 0.5 * (1.0 - reliability_[client_id]);
}

void DppSelector::report_failure(std::size_t client_id, std::size_t /*epoch*/,
                                 fl::FailureKind /*kind*/) {
  if (client_id >= reliability_.size()) return;
  reliability_[client_id] = std::max(
      config_.min_reliability, reliability_[client_id] * config_.failure_factor);
}

std::vector<std::size_t> DppSelector::select(
    std::size_t k, const std::vector<fl::ClientRuntimeInfo>& clients,
    std::size_t /*epoch*/, Rng& rng) {
  if (clients.size() != population_) initialize(clients);

  auto ids = fl::available_ids(clients);
  if (ids.size() <= k) return ids;

  const std::size_t n = ids.size();
  // Conditional marginal gains under the kernel restricted to the available
  // set: d2[i] starts at L_ii = q_i^2 and shrinks as picked items explain
  // item i's direction (incremental Cholesky conditioning).
  std::vector<double> q(n);
  for (std::size_t i = 0; i < n; ++i) q[i] = quality(clients[ids[i]]);
  std::vector<double> d2(n);
  for (std::size_t i = 0; i < n; ++i) d2[i] = q[i] * q[i];
  std::vector<std::vector<double>> c(n);  // Cholesky rows vs. picked items
  std::vector<bool> picked(n, false);

  std::vector<std::size_t> out;
  out.reserve(k);
  std::vector<double> gain(n);
  while (out.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      gain[i] = picked[i] ? 0.0 : std::max(d2[i], 0.0);
      total += gain[i];
    }
    std::size_t j;
    if (total > 1.0e-12) {
      j = rng.categorical(gain);
    } else {
      // Kernel exhausted (remaining items linearly dependent on the picks):
      // fall back to a uniform draw over the leftovers.
      std::vector<std::size_t> rest;
      for (std::size_t i = 0; i < n; ++i) {
        if (!picked[i]) rest.push_back(i);
      }
      j = rest[rng.uniform_index(rest.size())];
    }
    picked[j] = true;
    out.push_back(ids[j]);
    if (d2[j] > 1.0e-12) {
      const double denom = std::sqrt(d2[j]);
      for (std::size_t i = 0; i < n; ++i) {
        if (picked[i]) continue;
        double lij = q[i] * q[j] * similarity(ids[i], ids[j]);
        for (std::size_t t = 0; t < c[j].size(); ++t) lij -= c[i][t] * c[j][t];
        const double e = lij / denom;
        c[i].push_back(e);
        d2[i] -= e * e;
      }
      c[j].push_back(denom);  // keep row lengths aligned for later dots
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        if (!picked[i]) c[i].push_back(0.0);
      }
      c[j].push_back(0.0);
    }
  }
  return out;
}

std::vector<std::uint8_t> DppSelector::save_state() const {
  net::WireWriter w;
  w.string("DPP");
  w.u16(1);  // state-blob version
  w.f64_array(observed_loss_);
  w.f64_array(reliability_);
  return w.take();
}

void DppSelector::load_state(std::span<const std::uint8_t> state) {
  net::WireReader r(state);
  if (r.string() != "DPP") {
    throw std::runtime_error("DppSelector: state blob from another selector");
  }
  if (r.u16() != 1) {
    throw std::runtime_error("DppSelector: unsupported state version");
  }
  auto observed = r.f64_array();
  auto reliability = r.f64_array();
  r.expect_exhausted();
  if (observed.size() != population_ || reliability.size() != population_) {
    throw std::runtime_error("DppSelector: state population mismatch");
  }
  observed_loss_ = std::move(observed);
  reliability_ = std::move(reliability);
}

}  // namespace haccs::select
