#include "src/select/random_selector.hpp"

#include <algorithm>

namespace haccs::select {

std::vector<std::size_t> RandomSelector::select(
    std::size_t k, const std::vector<fl::ClientRuntimeInfo>& clients,
    std::size_t /*epoch*/, Rng& rng) {
  auto ids = fl::available_ids(clients);
  if (ids.size() <= k) return ids;
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t pick : rng.sample_without_replacement(ids.size(), k)) {
    out.push_back(ids[pick]);
  }
  return out;
}

}  // namespace haccs::select
