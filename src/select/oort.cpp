#include "src/select/oort.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "src/net/wire.hpp"

namespace haccs::select {

OortSelector::OortSelector(OortConfig config) : config_(config) {
  if (config_.alpha < 0.0) {
    throw std::invalid_argument("OortSelector: alpha must be >= 0");
  }
  if (config_.deadline_quantile <= 0.0 || config_.deadline_quantile > 1.0) {
    throw std::invalid_argument("OortSelector: bad deadline quantile");
  }
}

void OortSelector::initialize(
    const std::vector<fl::ClientRuntimeInfo>& clients) {
  observed_loss_.assign(clients.size(),
                        std::numeric_limits<double>::quiet_NaN());
  last_round_.assign(clients.size(), 0);
  reliability_.assign(clients.size(), 1.0);

  std::vector<double> latencies;
  latencies.reserve(clients.size());
  for (const auto& c : clients) latencies.push_back(c.latency_s);
  std::sort(latencies.begin(), latencies.end());
  const auto idx = static_cast<std::size_t>(
      config_.deadline_quantile * static_cast<double>(latencies.size() - 1));
  deadline_s_ = latencies[idx];
}

void OortSelector::report_result(std::size_t client_id, double loss,
                                 std::size_t epoch) {
  if (client_id >= observed_loss_.size()) return;
  observed_loss_[client_id] = loss;
  last_round_[client_id] = epoch + 1;
  // Successful delivery recovers half the reliability gap (1.0 stays 1.0
  // exactly, so fault-free runs are unchanged).
  reliability_[client_id] += 0.5 * (1.0 - reliability_[client_id]);
}

void OortSelector::report_failure(std::size_t client_id, std::size_t /*epoch*/,
                                  fl::FailureKind /*kind*/) {
  if (client_id >= reliability_.size()) return;
  reliability_[client_id] = std::max(
      config_.min_reliability, reliability_[client_id] * config_.failure_factor);
}

std::vector<std::uint8_t> OortSelector::save_state() const {
  net::WireWriter w;
  w.string("Oort");
  w.u16(1);  // state-blob version
  w.f64(deadline_s_);
  w.f64_array(observed_loss_);  // NaN sentinels round-trip bit-exactly
  w.u64(last_round_.size());
  for (std::size_t r : last_round_) w.u64(static_cast<std::uint64_t>(r));
  w.f64_array(reliability_);
  return w.take();
}

void OortSelector::load_state(std::span<const std::uint8_t> state) {
  net::WireReader r(state);
  if (r.string() != "Oort") {
    throw std::runtime_error("OortSelector: state blob from another selector");
  }
  if (r.u16() != 1) {
    throw std::runtime_error("OortSelector: unsupported state version");
  }
  const double deadline = r.f64();
  auto observed = r.f64_array();
  const auto rounds_len = r.u64();
  std::vector<std::size_t> rounds;
  rounds.reserve(static_cast<std::size_t>(rounds_len));
  for (std::uint64_t i = 0; i < rounds_len; ++i) {
    rounds.push_back(static_cast<std::size_t>(r.u64()));
  }
  auto reliability = r.f64_array();
  r.expect_exhausted();
  if (observed.size() != observed_loss_.size() ||
      rounds.size() != last_round_.size() ||
      reliability.size() != reliability_.size()) {
    throw std::runtime_error("OortSelector: state population mismatch");
  }
  deadline_s_ = deadline;
  observed_loss_ = std::move(observed);
  last_round_ = std::move(rounds);
  reliability_ = std::move(reliability);
}

double OortSelector::reliability_of(std::size_t client_id) const {
  return client_id < reliability_.size() ? reliability_[client_id] : 1.0;
}

double OortSelector::utility(const fl::ClientRuntimeInfo& client,
                             std::size_t epoch) const {
  const double loss = std::isnan(observed_loss_[client.id])
                          ? config_.initial_loss
                          : observed_loss_[client.id];
  double u = static_cast<double>(client.num_samples) * loss;
  if (client.latency_s > deadline_s_ && deadline_s_ > 0.0) {
    u *= std::pow(deadline_s_ / client.latency_s, config_.alpha);
  }
  // Temporal-uncertainty bonus for clients not observed recently.
  if (last_round_[client.id] > 0 && epoch + 1 > last_round_[client.id]) {
    u += std::sqrt(0.1 * std::log(static_cast<double>(epoch + 1)) /
                   static_cast<double>(last_round_[client.id])) *
         static_cast<double>(client.num_samples);
  }
  // Reliability penalty from reported mid-round failures (1.0 when clean).
  return u * reliability_[client.id];
}

std::vector<std::size_t> OortSelector::select(
    std::size_t k, const std::vector<fl::ClientRuntimeInfo>& clients,
    std::size_t epoch, Rng& rng) {
  if (observed_loss_.size() != clients.size()) initialize(clients);

  auto ids = fl::available_ids(clients);
  if (ids.size() <= k) return ids;

  // Split available ids into explored (have an observation) and unexplored.
  std::vector<std::size_t> explored, unexplored;
  for (std::size_t id : ids) {
    (std::isnan(observed_loss_[id]) ? unexplored : explored).push_back(id);
  }

  const double eps = std::max(
      config_.min_exploration,
      config_.initial_exploration *
          std::pow(config_.exploration_decay, static_cast<double>(epoch)));
  auto explore_slots = std::min(
      unexplored.size(),
      static_cast<std::size_t>(std::llround(eps * static_cast<double>(k))));

  std::vector<std::size_t> out;
  out.reserve(k);

  // Exploration: uniform over never-observed clients.
  if (explore_slots > 0) {
    for (std::size_t pick :
         rng.sample_without_replacement(unexplored.size(), explore_slots)) {
      out.push_back(unexplored[pick]);
    }
  }

  // Exploitation: highest-utility clients fill the remaining slots. When
  // there are not enough explored clients, spill into unexplored ones (which
  // all share the initial-loss utility) ordered by utility as well.
  std::vector<std::size_t> pool;
  for (std::size_t id : ids) {
    if (std::find(out.begin(), out.end(), id) == out.end()) pool.push_back(id);
  }
  std::sort(pool.begin(), pool.end(), [&](std::size_t a, std::size_t b) {
    const double ua = utility(clients[a], epoch);
    const double ub = utility(clients[b], epoch);
    if (ua != ub) return ua > ub;
    return a < b;  // deterministic tie-break
  });
  for (std::size_t id : pool) {
    if (out.size() >= k) break;
    out.push_back(id);
  }
  return out;
}

}  // namespace haccs::select
