// TiFL baseline (Chai et al., "TiFL: A Tier-based Federated Learning
// System", HPDC'20), re-implemented from the published description.
//
// Clients are profiled once and grouped into latency tiers. Each epoch one
// tier is chosen — adaptively, weighted by the tiers' average observed loss
// so that poorly-performing tiers get more training — subject to per-tier
// credits that bound how often any single tier can be picked. The k
// participants are then drawn uniformly from the chosen tier's available
// clients, falling back to neighboring tiers when the tier is short.
#pragma once

#include "src/fl/selector.hpp"

namespace haccs::select {

struct TiflConfig {
  std::size_t num_tiers = 5;
  /// Per-tier selection budget, as a multiple of the fair share
  /// (rounds / num_tiers). Must be >= 1 or no schedule is feasible.
  double credit_factor = 2.0;
  std::size_t expected_rounds = 200;
  /// Loss value assumed for tiers before any observation.
  double initial_loss = 2.302585;
};

class TiflSelector final : public fl::ClientSelector {
 public:
  explicit TiflSelector(TiflConfig config);

  void initialize(const std::vector<fl::ClientRuntimeInfo>& clients) override;
  std::vector<std::size_t> select(std::size_t k,
                                  const std::vector<fl::ClientRuntimeInfo>& clients,
                                  std::size_t epoch, Rng& rng) override;
  void report_result(std::size_t client_id, double loss,
                     std::size_t epoch) override;
  /// Failure-aware reaction: a failed client refunds its share (1/k of a
  /// credit) to its tier — the tier should not be charged for work that
  /// never landed.
  void report_failure(std::size_t client_id, std::size_t epoch,
                      fl::FailureKind kind) override;
  std::string name() const override { return "TiFL"; }

  /// Tier id per client (valid after initialize) — exposed for tests.
  const std::vector<std::size_t>& tier_of() const { return tier_of_; }
  std::size_t num_tiers() const { return tiers_.size(); }
  /// Remaining credits of a tier — exposed for tests.
  double tier_credits(std::size_t tier) const { return tiers_.at(tier).credits; }

  /// Crash-resume state: per-tier credits and loss statistics (tier
  /// membership is rebuilt deterministically by initialize()).
  std::vector<std::uint8_t> save_state() const override;
  void load_state(std::span<const std::uint8_t> state) override;

 private:
  struct Tier {
    std::vector<std::size_t> members;
    double credits = 0.0;
    double loss_sum = 0.0;
    std::size_t loss_count = 0;

    double average_loss(double initial) const {
      return loss_count > 0 ? loss_sum / static_cast<double>(loss_count)
                            : initial;
    }
  };

  TiflConfig config_;
  std::vector<Tier> tiers_;
  std::vector<std::size_t> tier_of_;
  /// k of the most recent select() — sizes the per-client credit refund.
  std::size_t last_k_ = 1;
  /// Initial per-tier credit grant — refunds never exceed it.
  double initial_credits_ = 0.0;
};

}  // namespace haccs::select
