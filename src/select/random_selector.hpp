// Random selection baseline: k clients uniformly at random from the
// available set each epoch (the paper's "Random Selection" baseline).
#pragma once

#include "src/fl/selector.hpp"

namespace haccs::select {

class RandomSelector final : public fl::ClientSelector {
 public:
  std::vector<std::size_t> select(std::size_t k,
                                  const std::vector<fl::ClientRuntimeInfo>& clients,
                                  std::size_t epoch, Rng& rng) override;
  std::string name() const override { return "Random"; }
};

}  // namespace haccs::select
