#include "src/select/hics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/net/wire.hpp"
#include "src/stats/distance.hpp"

namespace haccs::select {

namespace {

std::vector<std::vector<double>> counts_of(const data::FederatedDataset& fed) {
  std::vector<std::vector<double>> counts;
  counts.reserve(fed.clients.size());
  for (const auto& client : fed.clients) {
    counts.push_back(client.train.label_counts());
  }
  return counts;
}

}  // namespace

HicsSelector::HicsSelector(std::vector<std::vector<double>> label_counts,
                           HicsConfig config)
    : config_(config), population_(label_counts.size()) {
  if (population_ == 0) {
    throw std::invalid_argument("HicsSelector: empty population");
  }
  if (config_.base < 0.0 || config_.latency_beta < 0.0) {
    throw std::invalid_argument("HicsSelector: bad config");
  }
  // Population-mean distribution: normalize each client first so a large
  // client cannot pass for "the average" by sheer sample mass.
  std::size_t classes = 0;
  for (const auto& counts : label_counts) {
    classes = std::max(classes, counts.size());
  }
  std::vector<double> mean(classes, 0.0);
  for (auto& counts : label_counts) {
    counts.resize(classes, 0.0);
    double total = 0.0;
    for (double c : counts) total += std::max(c, 0.0);
    if (total <= 0.0) continue;
    for (std::size_t j = 0; j < classes; ++j) {
      mean[j] += std::max(counts[j], 0.0) / total;
    }
  }
  heterogeneity_.reserve(population_);
  for (const auto& counts : label_counts) {
    heterogeneity_.push_back(stats::distribution_distance(
        counts, mean, stats::DistanceKind::Hellinger));
  }
  observed_loss_.assign(population_, std::numeric_limits<double>::quiet_NaN());
  reliability_.assign(population_, 1.0);
}

HicsSelector::HicsSelector(const data::FederatedDataset& dataset,
                           HicsConfig config)
    : HicsSelector(counts_of(dataset), config) {}

void HicsSelector::initialize(
    const std::vector<fl::ClientRuntimeInfo>& clients) {
  if (clients.size() != population_) {
    throw std::invalid_argument(
        "HicsSelector: runtime view does not match the scored population");
  }
}

double HicsSelector::heterogeneity_of(std::size_t client_id) const {
  return client_id < heterogeneity_.size() ? heterogeneity_[client_id] : 0.0;
}

double HicsSelector::reliability_of(std::size_t client_id) const {
  return client_id < reliability_.size() ? reliability_[client_id] : 1.0;
}

void HicsSelector::report_result(std::size_t client_id, double loss,
                                 std::size_t /*epoch*/) {
  if (client_id >= observed_loss_.size()) return;
  observed_loss_[client_id] = loss;
  reliability_[client_id] += 0.5 * (1.0 - reliability_[client_id]);
}

void HicsSelector::report_failure(std::size_t client_id, std::size_t /*epoch*/,
                                  fl::FailureKind /*kind*/) {
  if (client_id >= reliability_.size()) return;
  reliability_[client_id] = std::max(
      config_.min_reliability, reliability_[client_id] * config_.failure_factor);
}

std::vector<std::size_t> HicsSelector::select(
    std::size_t k, const std::vector<fl::ClientRuntimeInfo>& clients,
    std::size_t /*epoch*/, Rng& rng) {
  if (clients.size() != population_) initialize(clients);

  auto ids = fl::available_ids(clients);
  if (ids.size() <= k) return ids;

  double min_latency = std::numeric_limits<double>::infinity();
  for (std::size_t id : ids) {
    min_latency = std::min(min_latency, clients[id].latency_s);
  }
  std::vector<double> weight(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const std::size_t id = ids[i];
    const double loss = std::isnan(observed_loss_[id]) ? config_.initial_loss
                                                       : observed_loss_[id];
    double w = (config_.base + heterogeneity_[id]) *
               std::max(loss, 1.0e-6) * reliability_[id];
    if (config_.latency_beta > 0.0 && clients[id].latency_s > 0.0 &&
        min_latency > 0.0) {
      w *= std::pow(min_latency / clients[id].latency_s, config_.latency_beta);
    }
    weight[i] = std::max(w, 1.0e-12);
  }

  // k categorical draws without replacement (zero out each pick).
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t draw = 0; draw < k; ++draw) {
    const std::size_t i = rng.categorical(weight);
    out.push_back(ids[i]);
    weight[i] = 0.0;
  }
  return out;
}

std::vector<std::uint8_t> HicsSelector::save_state() const {
  net::WireWriter w;
  w.string("HiCS");
  w.u16(1);  // state-blob version
  w.f64_array(observed_loss_);
  w.f64_array(reliability_);
  return w.take();
}

void HicsSelector::load_state(std::span<const std::uint8_t> state) {
  net::WireReader r(state);
  if (r.string() != "HiCS") {
    throw std::runtime_error("HicsSelector: state blob from another selector");
  }
  if (r.u16() != 1) {
    throw std::runtime_error("HicsSelector: unsupported state version");
  }
  auto observed = r.f64_array();
  auto reliability = r.f64_array();
  r.expect_exhausted();
  if (observed.size() != population_ || reliability.size() != population_) {
    throw std::runtime_error("HicsSelector: state population mismatch");
  }
  observed_loss_ = std::move(observed);
  reliability_ = std::move(reliability);
}

}  // namespace haccs::select
