#include "src/select/tifl.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "src/net/wire.hpp"

namespace haccs::select {

TiflSelector::TiflSelector(TiflConfig config) : config_(config) {
  if (config_.num_tiers == 0) {
    throw std::invalid_argument("TiflSelector: num_tiers must be > 0");
  }
  if (config_.credit_factor < 1.0) {
    throw std::invalid_argument("TiflSelector: credit_factor must be >= 1");
  }
}

void TiflSelector::initialize(
    const std::vector<fl::ClientRuntimeInfo>& clients) {
  const std::size_t n = clients.size();
  const std::size_t tiers = std::min(config_.num_tiers, n);

  // Profile step: order clients by expected latency, split into equal tiers
  // (tier 0 = fastest).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return clients[a].latency_s < clients[b].latency_s;
  });

  tiers_.assign(tiers, Tier{});
  tier_of_.assign(n, 0);
  const double fair_share =
      static_cast<double>(config_.expected_rounds) / static_cast<double>(tiers);
  initial_credits_ = config_.credit_factor * fair_share;
  for (auto& t : tiers_) t.credits = initial_credits_;

  for (std::size_t rank = 0; rank < n; ++rank) {
    const std::size_t tier = std::min(rank * tiers / n, tiers - 1);
    tiers_[tier].members.push_back(order[rank]);
    tier_of_[order[rank]] = tier;
  }
}

std::vector<std::uint8_t> TiflSelector::save_state() const {
  net::WireWriter w;
  w.string("TiFL");
  w.u16(1);  // state-blob version
  w.u64(tiers_.size());
  for (const Tier& t : tiers_) {
    w.f64(t.credits);
    w.f64(t.loss_sum);
    w.u64(t.loss_count);
  }
  w.u64(last_k_);
  return w.take();
}

void TiflSelector::load_state(std::span<const std::uint8_t> state) {
  net::WireReader r(state);
  if (r.string() != "TiFL") {
    throw std::runtime_error("TiflSelector: state blob from another selector");
  }
  if (r.u16() != 1) {
    throw std::runtime_error("TiflSelector: unsupported state version");
  }
  const auto num_tiers = r.u64();
  if (num_tiers != tiers_.size()) {
    throw std::runtime_error("TiflSelector: state tier-count mismatch");
  }
  std::vector<Tier> restored = tiers_;  // keep initialize()'s memberships
  for (Tier& t : restored) {
    t.credits = r.f64();
    t.loss_sum = r.f64();
    t.loss_count = static_cast<std::size_t>(r.u64());
  }
  const auto last_k = static_cast<std::size_t>(r.u64());
  r.expect_exhausted();
  tiers_ = std::move(restored);
  last_k_ = last_k;
}

void TiflSelector::report_result(std::size_t client_id, double loss,
                                 std::size_t /*epoch*/) {
  if (client_id >= tier_of_.size()) return;
  auto& tier = tiers_[tier_of_[client_id]];
  tier.loss_sum += loss;
  ++tier.loss_count;
}

void TiflSelector::report_failure(std::size_t client_id, std::size_t /*epoch*/,
                                  fl::FailureKind /*kind*/) {
  if (client_id >= tier_of_.size()) return;
  // The round charged the chosen tier one credit for k clients' work; a
  // client that never delivered refunds its 1/k share (spill-over clients
  // refund their own tier).
  auto& tier = tiers_[tier_of_[client_id]];
  tier.credits = std::min(
      initial_credits_,
      tier.credits + 1.0 / static_cast<double>(std::max<std::size_t>(last_k_, 1)));
}

std::vector<std::size_t> TiflSelector::select(
    std::size_t k, const std::vector<fl::ClientRuntimeInfo>& clients,
    std::size_t /*epoch*/, Rng& rng) {
  if (tiers_.empty()) initialize(clients);
  last_k_ = std::max<std::size_t>(k, 1);

  // Adaptive tier choice: probability proportional to average tier loss,
  // restricted to tiers with remaining credits and at least one available
  // client.
  std::vector<double> weights(tiers_.size(), 0.0);
  bool any = false;
  for (std::size_t t = 0; t < tiers_.size(); ++t) {
    if (tiers_[t].credits < 1.0) continue;
    const bool has_available =
        std::any_of(tiers_[t].members.begin(), tiers_[t].members.end(),
                    [&](std::size_t id) { return clients[id].available; });
    if (!has_available) continue;
    weights[t] = tiers_[t].average_loss(config_.initial_loss);
    any = true;
  }
  if (!any) {
    // Credits exhausted everywhere: fall back to uniform over available
    // tiers (keeps training alive past the configured horizon).
    for (std::size_t t = 0; t < tiers_.size(); ++t) {
      const bool has_available =
          std::any_of(tiers_[t].members.begin(), tiers_[t].members.end(),
                      [&](std::size_t id) { return clients[id].available; });
      weights[t] = has_available ? 1.0 : 0.0;
    }
  }

  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) return {};  // nobody available at all
  const std::size_t chosen = rng.categorical(weights);
  tiers_[chosen].credits -= 1.0;

  // Uniform draw of k clients within the tier; if it is short, spill into
  // the remaining tiers ordered by distance (prefer similar performance).
  std::vector<std::size_t> pool;
  for (std::size_t id : tiers_[chosen].members) {
    if (clients[id].available) pool.push_back(id);
  }
  std::vector<std::size_t> out;
  if (pool.size() <= k) {
    out = pool;
    for (std::size_t radius = 1;
         out.size() < k && radius < tiers_.size(); ++radius) {
      for (int sign : {-1, +1}) {
        const std::ptrdiff_t t =
            static_cast<std::ptrdiff_t>(chosen) + sign * static_cast<std::ptrdiff_t>(radius);
        if (t < 0 || t >= static_cast<std::ptrdiff_t>(tiers_.size())) continue;
        for (std::size_t id : tiers_[static_cast<std::size_t>(t)].members) {
          if (out.size() >= k) break;
          if (clients[id].available &&
              std::find(out.begin(), out.end(), id) == out.end()) {
            out.push_back(id);
          }
        }
      }
    }
    return out;
  }
  for (std::size_t pick : rng.sample_without_replacement(pool.size(), k)) {
    out.push_back(pool[pick]);
  }
  return out;
}

}  // namespace haccs::select
