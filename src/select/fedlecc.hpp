// Label-distribution clustered selection (FedLECC-style: cluster clients by
// label-distribution distance once, then spread each round's picks across
// clusters; see PAPERS.md), re-implemented from the published idea.
//
// Unlike HACCS's OPTICS + Weighted-SRSWR over Eq. 7 weights, this baseline
// clusters with plain DBSCAN over the Hellinger matrix and draws clusters
// proportionally to (available mass x mean observed loss), then exploits the
// highest-loss member within the drawn cluster. Noise points become
// singleton clusters so every client stays reachable.
#pragma once

#include <vector>

#include "src/data/partition.hpp"
#include "src/fl/selector.hpp"

namespace haccs::select {

struct FedLeccConfig {
  /// DBSCAN cut over the Hellinger distance matrix.
  double eps = 0.35;
  std::size_t min_pts = 2;
  /// Loss assumed for never-trained clients.
  double initial_loss = 2.302585;
  /// Reliability multiplier applied per reported failure; successes recover.
  double failure_factor = 0.5;
  double min_reliability = 1.0 / 64.0;
};

class FedLeccSelector final : public fl::ClientSelector {
 public:
  /// `label_counts[i]` is client i's per-class label count (or distribution;
  /// normalized internally). Clustering happens once, at construction.
  FedLeccSelector(std::vector<std::vector<double>> label_counts,
                  FedLeccConfig config);
  explicit FedLeccSelector(const data::FederatedDataset& dataset,
                           FedLeccConfig config = {});

  void initialize(const std::vector<fl::ClientRuntimeInfo>& clients) override;
  std::vector<std::size_t> select(
      std::size_t k, const std::vector<fl::ClientRuntimeInfo>& clients,
      std::size_t epoch, Rng& rng) override;
  void report_result(std::size_t client_id, double loss,
                     std::size_t epoch) override;
  void report_failure(std::size_t client_id, std::size_t epoch,
                      fl::FailureKind kind) override;
  std::string name() const override { return "FedLECC"; }

  std::size_t num_clusters() const { return clusters_.size(); }
  int cluster_of(std::size_t client_id) const { return cluster_of_[client_id]; }
  double reliability_of(std::size_t client_id) const;

  std::vector<std::uint8_t> save_state() const override;
  void load_state(std::span<const std::uint8_t> state) override;

 private:
  double loss_of(std::size_t client_id) const;

  FedLeccConfig config_;
  std::size_t population_ = 0;
  std::vector<int> cluster_of_;                    // structural
  std::vector<std::vector<std::size_t>> clusters_; // structural
  std::vector<double> observed_loss_;  // NaN until first observation
  std::vector<double> reliability_;    // in (0, 1]
};

}  // namespace haccs::select
