#include "src/net/chaos.hpp"

#include <utility>

#include "src/common/logging.hpp"

namespace haccs::net {

ChaosTransport::ChaosTransport(std::unique_ptr<Transport> inner,
                               ChaosOptions options)
    : inner_(std::move(inner)), options_(options), rng_(options.seed) {
  if (!inner_) {
    throw std::invalid_argument("ChaosTransport: null inner transport");
  }
}

ChaosTransport::~ChaosTransport() { close(); }

TransportStatus ChaosTransport::send(const Frame& frame, int timeout_ms) {
  return mangle_and_send(encode_frame(frame), timeout_ms);
}

TransportStatus ChaosTransport::send_raw(std::span<const std::uint8_t> encoded,
                                         int timeout_ms) {
  return mangle_and_send({encoded.begin(), encoded.end()}, timeout_ms);
}

TransportStatus ChaosTransport::mangle_and_send(
    std::vector<std::uint8_t> encoded, int timeout_ms) {
  // Decide the frame's fate under the lock (one deterministic draw order),
  // then perform inner sends outside it so a slow wire never serializes
  // against the RNG.
  std::vector<std::vector<std::uint8_t>> to_send;
  bool tear_down = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (disconnected_) return TransportStatus::Closed;
    if (options_.disconnect_rate > 0.0 &&
        rng_.bernoulli(options_.disconnect_rate)) {
      ++stats_.disconnects;
      disconnected_ = true;
      has_held_ = false;
      held_.clear();
      tear_down = true;
    } else if (options_.drop_rate > 0.0 && rng_.bernoulli(options_.drop_rate)) {
      ++stats_.dropped;
      // The caller sees Ok — exactly what a lossy network looks like from
      // the sender's side of a kernel buffer.
    } else {
      if (options_.corrupt_rate > 0.0 &&
          rng_.bernoulli(options_.corrupt_rate) &&
          encoded.size() > kFrameHeaderBytes) {
        ++stats_.corrupted;
        const std::size_t payload_len = encoded.size() - kFrameHeaderBytes;
        const std::size_t at =
            kFrameHeaderBytes + rng_.uniform_index(payload_len);
        encoded[at] ^= static_cast<std::uint8_t>(1u << rng_.uniform_index(8));
      }
      if (options_.truncate_rate > 0.0 &&
          rng_.bernoulli(options_.truncate_rate) && encoded.size() > 1) {
        ++stats_.truncated;
        encoded.resize(1 + rng_.uniform_index(encoded.size() - 1));
      }
      const bool duplicate = options_.duplicate_rate > 0.0 &&
                             rng_.bernoulli(options_.duplicate_rate);
      if (duplicate) ++stats_.duplicated;
      const bool hold = options_.reorder_rate > 0.0 &&
                        rng_.bernoulli(options_.reorder_rate) && !has_held_;
      if (hold) {
        ++stats_.reordered;
        held_ = encoded;
        has_held_ = true;
        if (duplicate) to_send.push_back(encoded);
      } else {
        to_send.push_back(encoded);
        if (duplicate) to_send.push_back(encoded);
        if (has_held_) {
          to_send.push_back(std::move(held_));
          held_.clear();
          has_held_ = false;
        }
      }
    }
  }
  if (tear_down) {
    HACCS_WARN << "chaos: injected disconnect on " << inner_->peer();
    inner_->close();
    return TransportStatus::Closed;
  }
  for (const auto& buf : to_send) {
    const TransportStatus status = inner_->send_raw(buf, timeout_ms);
    if (status != TransportStatus::Ok) return status;
  }
  return TransportStatus::Ok;
}

TransportStatus ChaosTransport::recv(Frame* out, int timeout_ms) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (disconnected_) return TransportStatus::Closed;
  }
  return inner_->recv(out, timeout_ms);
}

void ChaosTransport::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    disconnected_ = true;
    has_held_ = false;
    held_.clear();
  }
  inner_->close();
}

std::string ChaosTransport::peer() const {
  return "chaos(" + inner_->peer() + ")";
}

ChaosStats ChaosTransport::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::unique_ptr<Transport> wrap_chaos(std::unique_ptr<Transport> inner,
                                      const ChaosOptions& options) {
  if (!options.enabled()) return inner;
  return std::make_unique<ChaosTransport>(std::move(inner), options);
}

}  // namespace haccs::net
