#include "src/net/loopback.hpp"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <vector>

#include "src/obs/trace.hpp"

namespace haccs::net {

namespace {

/// One direction of the pair: a bounded queue of encoded frames.
struct Channel {
  std::mutex mutex;
  std::condition_variable readable;
  std::condition_variable writable;
  std::deque<std::vector<std::uint8_t>> frames;
  bool closed = false;

  std::size_t sent_count = 0;  ///< frames pushed (corruption cadence)
};

struct Shared {
  explicit Shared(const LoopbackOptions& opts) : options(opts) {}
  LoopbackOptions options;
  Channel a_to_b;
  Channel b_to_a;
};

class LoopbackTransport final : public Transport {
 public:
  LoopbackTransport(std::shared_ptr<Shared> shared, bool is_a)
      : shared_(std::move(shared)), is_a_(is_a) {}

  ~LoopbackTransport() override { close(); }

  TransportStatus send(const Frame& frame, int timeout_ms) override {
    std::vector<std::uint8_t> encoded;
    {
      obs::Span span("net_encode", "net");
      encoded = encode_frame(frame);
    }
    return push_encoded(std::move(encoded), timeout_ms);
  }

  TransportStatus send_raw(std::span<const std::uint8_t> encoded,
                           int timeout_ms) override {
    return push_encoded({encoded.begin(), encoded.end()}, timeout_ms);
  }

 private:
  TransportStatus push_encoded(std::vector<std::uint8_t> encoded,
                               int timeout_ms) {
    Channel& ch = is_a_ ? shared_->a_to_b : shared_->b_to_a;
    const std::size_t corrupt_every = is_a_
                                          ? shared_->options.corrupt_every_n_a
                                          : shared_->options.corrupt_every_n_b;
    const std::size_t bytes = encoded.size();
    {
      obs::Span span("net_send", "net");
      std::unique_lock<std::mutex> lock(ch.mutex);
      if (!wait_until(lock, ch.writable, timeout_ms, [&] {
            return ch.closed || ch.frames.size() < shared_->options.max_queue;
          })) {
        return TransportStatus::Timeout;
      }
      if (ch.closed) return TransportStatus::Closed;
      ++ch.sent_count;
      if (corrupt_every > 0 && ch.sent_count % corrupt_every == 0 &&
          encoded.size() > kFrameHeaderBytes) {
        // Flip one payload bit: the CRC check on the far side must catch it.
        encoded[kFrameHeaderBytes] ^= 0x40;
      }
      ch.frames.push_back(std::move(encoded));
      ch.readable.notify_one();
    }
    NetMetrics& m = NetMetrics::get();
    m.bytes_sent.inc(bytes);
    m.frames_sent.inc();
    m.frame_bytes.observe(static_cast<double>(bytes));
    return TransportStatus::Ok;
  }

 public:
  TransportStatus recv(Frame* out, int timeout_ms) override {
    Channel& ch = is_a_ ? shared_->b_to_a : shared_->a_to_b;
    std::vector<std::uint8_t> encoded;
    {
      obs::Span span("net_recv", "net");
      std::unique_lock<std::mutex> lock(ch.mutex);
      if (!wait_until(lock, ch.readable, timeout_ms,
                      [&] { return ch.closed || !ch.frames.empty(); })) {
        return TransportStatus::Timeout;
      }
      if (ch.frames.empty()) return TransportStatus::Closed;
      encoded = std::move(ch.frames.front());
      ch.frames.pop_front();
      ch.writable.notify_one();
    }
    NetMetrics& m = NetMetrics::get();
    m.bytes_received.inc(encoded.size());
    obs::Span span("net_decode", "net");
    const FrameStatus status = decode_frame(encoded, out);
    if (status != FrameStatus::Ok) {
      m.frames_corrupt.inc();
      return TransportStatus::Corrupt;
    }
    m.frames_received.inc();
    return TransportStatus::Ok;
  }

  void close() override {
    for (Channel* ch : {&shared_->a_to_b, &shared_->b_to_a}) {
      std::lock_guard<std::mutex> lock(ch->mutex);
      ch->closed = true;
      ch->readable.notify_all();
      ch->writable.notify_all();
    }
  }

  std::string peer() const override {
    return is_a_ ? "loopback:worker" : "loopback:server";
  }

 private:
  /// Waits for `ready` with the transport timeout convention (<0 forever).
  template <typename Pred>
  static bool wait_until(std::unique_lock<std::mutex>& lock,
                         std::condition_variable& cv, int timeout_ms,
                         Pred ready) {
    if (timeout_ms < 0) {
      cv.wait(lock, ready);
      return true;
    }
    return cv.wait_for(lock, std::chrono::milliseconds(timeout_ms), ready);
  }

  std::shared_ptr<Shared> shared_;
  bool is_a_;
};

}  // namespace

LoopbackPair make_loopback_pair(const LoopbackOptions& options) {
  auto shared = std::make_shared<Shared>(options);
  LoopbackPair pair;
  pair.a = std::make_unique<LoopbackTransport>(shared, true);
  pair.b = std::make_unique<LoopbackTransport>(shared, false);
  return pair;
}

}  // namespace haccs::net
