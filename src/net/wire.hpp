// Little-endian wire primitives: WireWriter appends scalars/arrays to a byte
// buffer, WireReader consumes them with bounds checking.
//
// Floats travel as their IEEE-754 bit patterns (std::bit_cast), so NaN and
// Inf payloads round-trip bit-exactly — a corrupted client update must
// arrive unmodified for server-side validation to reject it for the right
// reason (fl::update_is_valid), not be laundered by the codec. All multi-
// byte values are little-endian on the wire regardless of host order; on the
// little-endian hosts we target this compiles to plain loads/stores.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace haccs::net {

/// Thrown by WireReader on truncated or over-long payloads. Distinct from
/// std::runtime_error so transports can map it to a Corrupt verdict.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

class WireWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v) { put_le(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void f32(float v) { put_le(std::bit_cast<std::uint32_t>(v)); }
  void f64(double v) { put_le(std::bit_cast<std::uint64_t>(v)); }

  /// Raw bytes, no length prefix (callers write the count themselves).
  void bytes(const void* data, std::size_t len) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + len);
  }

  /// Length-prefixed (u64 count) element arrays.
  void f32_array(std::span<const float> v) {
    u64(v.size());
    for (float x : v) f32(x);
  }
  void f64_array(std::span<const double> v) {
    u64(v.size());
    for (double x : v) f64(x);
  }
  void u32_array(std::span<const std::uint32_t> v) {
    u64(v.size());
    for (std::uint32_t x : v) u32(x);
  }
  void u8_array(std::span<const std::uint8_t> v) {
    u64(v.size());
    bytes(v.data(), v.size());
  }
  void string(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }

  std::size_t size() const { return bytes_.size(); }
  const std::vector<std::uint8_t>& data() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> bytes_;
};

class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return take_le<std::uint8_t>(); }
  std::uint16_t u16() { return take_le<std::uint16_t>(); }
  std::uint32_t u32() { return take_le<std::uint32_t>(); }
  std::uint64_t u64() { return take_le<std::uint64_t>(); }
  float f32() { return std::bit_cast<float>(take_le<std::uint32_t>()); }
  double f64() { return std::bit_cast<double>(take_le<std::uint64_t>()); }

  std::vector<float> f32_array() {
    const std::uint64_t n = checked_count(u64(), sizeof(float));
    std::vector<float> out(static_cast<std::size_t>(n));
    for (auto& x : out) x = f32();
    return out;
  }
  std::vector<double> f64_array() {
    const std::uint64_t n = checked_count(u64(), sizeof(double));
    std::vector<double> out(static_cast<std::size_t>(n));
    for (auto& x : out) x = f64();
    return out;
  }
  std::vector<std::uint32_t> u32_array() {
    const std::uint64_t n = checked_count(u64(), sizeof(std::uint32_t));
    std::vector<std::uint32_t> out(static_cast<std::size_t>(n));
    for (auto& x : out) x = u32();
    return out;
  }
  std::vector<std::uint8_t> u8_array() {
    const std::uint64_t n = checked_count(u64(), 1);
    std::vector<std::uint8_t> out(static_cast<std::size_t>(n));
    copy_bytes(out.data(), out.size());
    return out;
  }
  std::string string() {
    const std::uint64_t n = checked_count(u64(), 1);
    std::string out(static_cast<std::size_t>(n), '\0');
    copy_bytes(out.data(), out.size());
    return out;
  }

  std::size_t remaining() const { return data_.size() - pos_; }

  /// Throws WireError unless every byte was consumed — a well-formed decoder
  /// must account for the entire payload (trailing garbage means the frame
  /// does not hold what its type tag claims).
  void expect_exhausted() const {
    if (remaining() != 0) {
      throw WireError("wire: " + std::to_string(remaining()) +
                      " unconsumed payload bytes");
    }
  }

 private:
  template <typename T>
  T take_le() {
    if (remaining() < sizeof(T)) throw WireError("wire: truncated payload");
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  /// Validates a declared element count against the bytes actually present
  /// before allocating (a corrupt count must not drive a huge allocation).
  std::uint64_t checked_count(std::uint64_t n, std::size_t elem_size) {
    if (n > remaining() / elem_size) {
      throw WireError("wire: declared array exceeds payload");
    }
    return n;
  }

  void copy_bytes(void* dst, std::size_t len) {
    if (remaining() < len) throw WireError("wire: truncated payload");
    if (len > 0) std::memcpy(dst, data_.data() + pos_, len);
    pos_ += len;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace haccs::net
