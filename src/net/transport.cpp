#include "src/net/transport.hpp"

namespace haccs::net {

const char* to_string(TransportStatus status) {
  switch (status) {
    case TransportStatus::Ok: return "ok";
    case TransportStatus::Timeout: return "timeout";
    case TransportStatus::Closed: return "closed";
    case TransportStatus::Corrupt: return "corrupt";
  }
  return "unknown";
}

NetMetrics& NetMetrics::get() {
  // Frame sizes span four orders of magnitude (a 28-byte heartbeat to a
  // ~400 KB parameter frame), so the buckets are powers of four in bytes.
  static const std::vector<double> kByteBuckets = {
      64, 256, 1024, 4096, 16384, 65536, 262144, 1048576};
  static NetMetrics metrics{
      obs::Registry::global().counter("net_bytes_sent_total"),
      obs::Registry::global().counter("net_bytes_received_total"),
      obs::Registry::global().counter("net_frames_sent_total"),
      obs::Registry::global().counter("net_frames_received_total"),
      obs::Registry::global().counter("net_frames_corrupt_total"),
      obs::Registry::global().histogram("net_frame_bytes", kByteBuckets),
  };
  return metrics;
}

}  // namespace haccs::net
