#include "src/net/frame.hpp"

#include <cstring>

#include "src/net/crc32.hpp"
#include "src/net/wire.hpp"

namespace haccs::net {

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  WireWriter w;
  w.bytes(kFrameMagic, sizeof(kFrameMagic));
  w.u16(kWireVersion);
  w.u16(static_cast<std::uint16_t>(frame.type));
  w.u32(static_cast<std::uint32_t>(frame.payload.size()));
  w.u32(crc32(frame.payload.data(), frame.payload.size()));
  w.bytes(frame.payload.data(), frame.payload.size());
  return w.take();
}

const char* to_string(FrameStatus status) {
  switch (status) {
    case FrameStatus::Ok: return "ok";
    case FrameStatus::NeedMore: return "need-more";
    case FrameStatus::BadMagic: return "bad-magic";
    case FrameStatus::BadVersion: return "bad-version";
    case FrameStatus::BadLength: return "bad-length";
    case FrameStatus::BadChecksum: return "bad-checksum";
  }
  return "unknown";
}

namespace {

/// Decodes one frame from the front of `bytes`. Shared by the one-shot and
/// incremental paths; `consumed` is set only on Ok / BadChecksum (the two
/// outcomes that advance past a complete frame).
FrameStatus decode_front(std::span<const std::uint8_t> bytes, Frame* out,
                         std::size_t* consumed) {
  if (bytes.size() < kFrameHeaderBytes) {
    if (bytes.empty()) return FrameStatus::NeedMore;
    // An impossible prefix is reportable before the full header arrives.
    if (std::memcmp(bytes.data(), kFrameMagic,
                    std::min(bytes.size(), sizeof(kFrameMagic))) != 0) {
      return FrameStatus::BadMagic;
    }
    return FrameStatus::NeedMore;
  }
  WireReader r(bytes);
  std::uint8_t magic[4];
  magic[0] = r.u8(); magic[1] = r.u8(); magic[2] = r.u8(); magic[3] = r.u8();
  if (std::memcmp(magic, kFrameMagic, sizeof(kFrameMagic)) != 0) {
    return FrameStatus::BadMagic;
  }
  const std::uint16_t version = r.u16();
  if (version != kWireVersion) return FrameStatus::BadVersion;
  const std::uint16_t type = r.u16();
  const std::uint32_t len = r.u32();
  const std::uint32_t expected_crc = r.u32();
  if (len > kMaxPayloadBytes) return FrameStatus::BadLength;
  if (bytes.size() < kFrameHeaderBytes + len) return FrameStatus::NeedMore;

  const std::uint8_t* payload = bytes.data() + kFrameHeaderBytes;
  if (consumed) *consumed = kFrameHeaderBytes + len;
  if (crc32(payload, len) != expected_crc) return FrameStatus::BadChecksum;
  out->type = static_cast<MessageType>(type);
  out->payload.assign(payload, payload + len);
  return FrameStatus::Ok;
}

}  // namespace

FrameStatus decode_frame(std::span<const std::uint8_t> bytes, Frame* out,
                         std::size_t* consumed) {
  std::size_t used = 0;
  const FrameStatus status = decode_front(bytes, out, &used);
  if (status == FrameStatus::Ok && used != bytes.size()) {
    // One-shot decode demands exactly one frame (checkpoint files).
    return FrameStatus::BadLength;
  }
  if (consumed) *consumed = used;
  return status;
}

void FrameParser::feed(std::span<const std::uint8_t> bytes) {
  // Compact the consumed prefix before growing — keeps the buffer bounded
  // by one in-flight frame rather than the whole connection history.
  if (start_ > 0) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(start_));
    start_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

FrameStatus FrameParser::next(Frame* out) {
  if (fatal_) return FrameStatus::BadMagic;
  if (buffered() == 0) return FrameStatus::NeedMore;
  std::size_t consumed = 0;
  const FrameStatus status = decode_front(
      std::span<const std::uint8_t>(buffer_).subspan(start_), out, &consumed);
  switch (status) {
    case FrameStatus::Ok:
    case FrameStatus::BadChecksum:
      start_ += consumed;  // skip the frame either way; stream stays aligned
      return status;
    case FrameStatus::NeedMore:
      return status;
    case FrameStatus::BadMagic:
    case FrameStatus::BadVersion:
    case FrameStatus::BadLength:
      fatal_ = true;  // boundary lost: resynchronizing would mean guessing
      return status;
  }
  return FrameStatus::BadMagic;
}

}  // namespace haccs::net
