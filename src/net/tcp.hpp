// TCP transport: blocking sockets with poll-based per-call timeouts.
//
// Design points:
//   * One socket per worker connection; frames are written whole and parsed
//     incrementally on receive (FrameParser), so a frame split across
//     segments — the normal case for parameter payloads — reassembles
//     transparently.
//   * Every send/recv takes its own timeout and polls toward a deadline;
//     there is no background thread. The protocol driver owns pacing.
//   * connect_tcp retries with exponential backoff — the worker usually
//     races the server to the port in the 2-process launch.
//   * A CRC-damaged frame surfaces as Corrupt and the stream continues;
//     header damage (desynchronized stream) surfaces as Closed, matching
//     the frame parser's recoverable/fatal split.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/net/transport.hpp"

namespace haccs::net {

struct TcpConnectOptions {
  int attempts = 20;           ///< connect() tries before giving up
  int initial_backoff_ms = 50; ///< doubles per failed attempt (cap 2 s)
  int io_timeout_ms = -1;      ///< default timeout for send/recv (<0 = none)
};

/// Connects to host:port (IPv4 dotted quad or "localhost"). Returns nullptr
/// after all attempts fail.
std::unique_ptr<Transport> connect_tcp(const std::string& host,
                                       std::uint16_t port,
                                       const TcpConnectOptions& options = {});

/// Listening socket for the server side.
class TcpListener {
 public:
  /// Binds and listens on 127.0.0.1:`port` (port 0 = ephemeral; see port()).
  /// Throws std::runtime_error on bind failure.
  explicit TcpListener(std::uint16_t port, int backlog = 16);
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// The bound port (resolves ephemeral binds).
  std::uint16_t port() const { return port_; }

  /// Accepts one connection; nullptr on timeout (<0 = wait forever).
  std::unique_ptr<Transport> accept(int timeout_ms = -1);

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace haccs::net
