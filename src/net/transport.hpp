// Transport: the message-boundary abstraction between the FL protocol and
// the bytes underneath.
//
// A transport moves whole frames with per-call timeouts. Two
// implementations: LoopbackTransport (queue-backed, in-process — the
// engine's loopback run is bit-identical to direct dispatch) and
// TcpTransport (blocking sockets + poll). Both run every frame through the
// real encoder/decoder, so CRC verification, byte counters, and the frame-
// size histogram measure actual serialized traffic in either mode.
//
// Error model: Ok / Timeout / Closed / Corrupt. Corrupt means a frame
// arrived but failed its CRC (or decoded to garbage) — the connection is
// still usable (frame boundaries held), the payload is lost. The protocol
// driver maps Corrupt and Timeout onto ClientSelector::report_failure
// exactly like sim::FaultModel crashes, so selectors cannot tell simulated
// faults from real wire damage.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "src/net/frame.hpp"
#include "src/obs/metrics.hpp"

namespace haccs::net {

enum class TransportStatus : std::uint8_t {
  Ok = 0,
  Timeout,  ///< nothing arrived / nothing writable within the deadline
  Closed,   ///< peer hung up or the connection is unrecoverable
  Corrupt,  ///< a frame arrived damaged (bad CRC); stream still aligned
};

const char* to_string(TransportStatus status);

class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends one frame. Blocks up to `timeout_ms` (<0 = wait forever).
  /// Thread-safe: concurrent senders interleave at frame (not byte)
  /// granularity, so a worker's heartbeat thread can share the transport
  /// with its serving loop.
  virtual TransportStatus send(const Frame& frame, int timeout_ms = -1) = 0;

  /// Sends pre-encoded frame bytes verbatim (no CRC recomputation). This is
  /// the injection seam ChaosTransport uses to put deliberately damaged
  /// bytes on the wire; send() is encode_frame + send_raw. Same timeout and
  /// thread-safety contract as send().
  virtual TransportStatus send_raw(std::span<const std::uint8_t> encoded,
                                   int timeout_ms = -1) = 0;

  /// Receives one frame into `out`. Blocks up to `timeout_ms` (<0 = wait
  /// forever). On Corrupt the damaged frame was consumed; the next recv
  /// reads the following frame.
  virtual TransportStatus recv(Frame* out, int timeout_ms = -1) = 0;

  /// Closes the endpoint; pending and future calls on either side fail with
  /// Closed. Idempotent.
  virtual void close() = 0;

  /// Human-readable peer description for logs ("loopback", "127.0.0.1:4242").
  virtual std::string peer() const = 0;
};

/// Shared wire telemetry (obs registry instruments, cached once). Both
/// transports report through these, so `net_bytes_*_total` means "bytes any
/// transport moved" process-wide.
struct NetMetrics {
  obs::Counter& bytes_sent;
  obs::Counter& bytes_received;
  obs::Counter& frames_sent;
  obs::Counter& frames_received;
  obs::Counter& frames_corrupt;
  obs::Histogram& frame_bytes;

  static NetMetrics& get();
};

}  // namespace haccs::net
