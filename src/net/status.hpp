// Live exposition endpoint (DESIGN.md §5i): a deliberately tiny HTTP/1.0
// server for poll-based scrapers — Prometheus on /metrics, a JSON ops view
// on /status, and a liveness probe on /healthz.
//
// Scope is "scrape target", not "web server": one accept loop on one
// background thread, one connection served at a time, connection closed
// after every response (HTTP/1.0 semantics), request line parsed with a
// find(' '). The serving hot path never touches this thread — endpoint
// closures read lock-free registry atomics and the dispatcher's status
// board, so a scrape costs the scraper, not the round loop.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace haccs::net {

/// Bodies for the two content endpoints; called on the server thread per
/// scrape, so they must only read concurrently-safe state (atomics,
/// mutex-guarded snapshots). /healthz is built in.
struct StatusEndpoints {
  std::function<std::string()> metrics_text;  ///< /metrics (Prometheus 0.0.4)
  std::function<std::string()> status_json;   ///< /status  (application/json)
};

class StatusServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept loop.
  /// Throws std::runtime_error when the port cannot be bound.
  StatusServer(std::uint16_t port, StatusEndpoints endpoints);
  ~StatusServer();
  StatusServer(const StatusServer&) = delete;
  StatusServer& operator=(const StatusServer&) = delete;

  /// The bound port (the ephemeral assignment when constructed with 0).
  std::uint16_t port() const { return port_; }

  /// Stops the accept loop and joins the thread; idempotent.
  void stop();

 private:
  void run();
  void serve_one(int client_fd);

  StatusEndpoints endpoints_;
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace haccs::net
