// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the integrity
// check shared by every wire frame and by nn::serialize checkpoints.
//
// A CRC is the right tool here (vs a cryptographic hash): frames cross
// sockets and disks where the threat model is bit rot and truncation, not an
// adversary, and a table-driven CRC costs ~1 cycle/byte. The incremental
// form (seed with a previous crc) lets the TCP transport checksum a frame
// without first gathering it into one buffer.
#pragma once

#include <cstddef>
#include <cstdint>

namespace haccs::net {

/// CRC-32 of `data[0..len)`. Pass a previous result as `seed` to extend a
/// running checksum across several buffers; the default seed starts fresh.
std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed = 0);

}  // namespace haccs::net
