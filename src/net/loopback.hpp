// Loopback transport: a pair of in-process endpoints over bounded byte
// queues.
//
// Frames are really serialized on send and really decoded (CRC checked) on
// recv — the loopback is the wire format running at memory speed, not a
// bypass. That is what makes it both a faithful test double for the TCP
// path and the substrate for the bit-identity guarantee: the bytes a worker
// thread sees are exactly the bytes a worker process would.
//
// Fault injection: `corrupt_every_n` flips one payload byte in every Nth
// frame sent through an endpoint, producing genuine CRC failures downstream
// — how tests drive the engine's Corrupt-handling path without a lossy
// network.
#pragma once

#include <cstddef>
#include <memory>

#include "src/net/transport.hpp"

namespace haccs::net {

struct LoopbackOptions {
  /// Frames a direction buffers before send blocks (backpressure).
  std::size_t max_queue = 1024;
  /// Flip a payload byte in every Nth frame sent from endpoint A (the
  /// server side of make_loopback_pair). 0 disables.
  std::size_t corrupt_every_n_a = 0;
  /// Same, for frames sent from endpoint B (the worker side).
  std::size_t corrupt_every_n_b = 0;
};

struct LoopbackPair {
  std::unique_ptr<Transport> a;  ///< conventionally the server end
  std::unique_ptr<Transport> b;  ///< conventionally the worker end
};

/// Creates two connected endpoints. Either may be moved to another thread;
/// each endpoint is internally synchronized (one sender + one receiver per
/// endpoint at a time).
LoopbackPair make_loopback_pair(const LoopbackOptions& options = {});

}  // namespace haccs::net
