// ChaosTransport: seeded fault injection for the wire (DESIGN.md §5g).
//
// A decorator that sits between the protocol driver and a real transport
// (loopback or TCP) and damages outbound traffic the way hostile networks
// do: dropped frames, duplicates, reordering, single-bit payload corruption,
// mid-frame truncation, and mid-stream disconnects. Every event is drawn
// from an explicitly seeded Rng, so a chaos run replays bit-exactly from
// (seed, traffic) — the fuzzer's chaos scenarios are as reproducible as its
// clean ones.
//
// Injection happens below encode_frame via Transport::send_raw, so the
// receiver exercises its real defenses: CRC verification catches corruption
// (-> Corrupt, stream still aligned), the frame parser catches truncation
// (on loopback the damaged buffer decodes as Corrupt; on TCP the byte
// stream desynchronizes and the connection degrades to Closed — both are
// failure modes the dispatcher must survive). The receive path is passed
// through untouched: chaos on a duplex link is modeled by wrapping each
// endpoint's sender.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/rng.hpp"
#include "src/net/transport.hpp"

namespace haccs::net {

struct ChaosOptions {
  std::uint64_t seed = 1;
  /// Per-frame probability the frame is silently discarded.
  double drop_rate = 0.0;
  /// Per-frame probability the frame is sent twice back-to-back.
  double duplicate_rate = 0.0;
  /// Per-frame probability the frame is held back and shipped after the
  /// next frame (pairwise reorder — the minimal out-of-order delivery).
  double reorder_rate = 0.0;
  /// Per-frame probability one payload byte is bit-flipped (CRC must catch).
  double corrupt_rate = 0.0;
  /// Per-frame probability the frame is cut short mid-stream.
  double truncate_rate = 0.0;
  /// Per-frame probability the connection is torn down before the send;
  /// this and all later sends fail with Closed until the peer reconnects.
  double disconnect_rate = 0.0;

  bool enabled() const {
    return drop_rate > 0.0 || duplicate_rate > 0.0 || reorder_rate > 0.0 ||
           corrupt_rate > 0.0 || truncate_rate > 0.0 || disconnect_rate > 0.0;
  }
};

/// Counts of injected events, for tests and run summaries.
struct ChaosStats {
  std::size_t dropped = 0;
  std::size_t duplicated = 0;
  std::size_t reordered = 0;
  std::size_t corrupted = 0;
  std::size_t truncated = 0;
  std::size_t disconnects = 0;

  std::size_t total() const {
    return dropped + duplicated + reordered + corrupted + truncated +
           disconnects;
  }
};

class ChaosTransport final : public Transport {
 public:
  ChaosTransport(std::unique_ptr<Transport> inner, ChaosOptions options);
  ~ChaosTransport() override;

  TransportStatus send(const Frame& frame, int timeout_ms = -1) override;
  TransportStatus send_raw(std::span<const std::uint8_t> encoded,
                           int timeout_ms = -1) override;
  TransportStatus recv(Frame* out, int timeout_ms = -1) override;
  void close() override;
  std::string peer() const override;

  ChaosStats stats() const;

 private:
  /// The chaos pipeline for one outbound frame. Caller holds no lock.
  TransportStatus mangle_and_send(std::vector<std::uint8_t> encoded,
                                  int timeout_ms);

  std::unique_ptr<Transport> inner_;
  ChaosOptions options_;
  mutable std::mutex mutex_;  ///< guards rng_, held_, stats_, disconnected_
  Rng rng_;
  /// Frame held back by a reorder event, shipped after the next send.
  std::vector<std::uint8_t> held_;
  bool has_held_ = false;
  bool disconnected_ = false;
  ChaosStats stats_;
};

/// Wraps `inner` in a ChaosTransport when `options.enabled()`; otherwise
/// returns `inner` unchanged (zero-cost when chaos is off).
std::unique_ptr<Transport> wrap_chaos(std::unique_ptr<Transport> inner,
                                      const ChaosOptions& options);

}  // namespace haccs::net
