#include "src/net/messages.hpp"

#include "src/net/wire.hpp"

namespace haccs::net {

namespace {

/// Decoder entry: checks the frame's type tag before parsing.
WireReader reader_for(const Frame& frame, MessageType expected,
                      const char* what) {
  if (frame.type != expected) {
    throw WireError(std::string("decode: frame is not a ") + what);
  }
  return WireReader(frame.payload);
}

/// Update payload: kind u8, dense-size u64, element-count u64, then the body
/// (which is exactly the bytes fl::compressed_wire_bytes prices — see
/// update_body_bytes).
void encode_update_payload(WireWriter& w, const UpdatePayload& p) {
  w.u8(static_cast<std::uint8_t>(p.kind));
  w.u64(p.size);
  switch (p.kind) {
    case UpdateKind::Dense:
      if (p.dense.size() != p.size) {
        throw WireError("encode: dense update size mismatch");
      }
      w.u64(p.dense.size());
      for (float v : p.dense) w.f32(v);
      return;
    case UpdateKind::SparseTopK:
      if (p.indices.size() != p.values.size()) {
        throw WireError("encode: top-k index/value arity mismatch");
      }
      w.u64(p.indices.size());
      for (std::uint32_t i : p.indices) w.u32(i);
      for (float v : p.values) w.f32(v);
      return;
    case UpdateKind::Int8:
      if (p.codes.size() != p.size) {
        throw WireError("encode: int8 update size mismatch");
      }
      w.u64(p.codes.size());
      w.f32(p.lo);
      w.f32(p.step);
      w.bytes(p.codes.data(), p.codes.size());
      return;
  }
  throw WireError("encode: bad update kind");
}

UpdatePayload decode_update_payload(WireReader& r) {
  UpdatePayload p;
  const auto kind = r.u8();
  p.size = r.u64();
  const std::uint64_t count = r.u64();
  switch (static_cast<UpdateKind>(kind)) {
    case UpdateKind::Dense: {
      p.kind = UpdateKind::Dense;
      if (count != p.size) throw WireError("decode: dense count mismatch");
      if (count > r.remaining() / sizeof(float)) {
        throw WireError("decode: dense update exceeds payload");
      }
      p.dense.resize(static_cast<std::size_t>(count));
      for (auto& v : p.dense) v = r.f32();
      return p;
    }
    case UpdateKind::SparseTopK: {
      p.kind = UpdateKind::SparseTopK;
      if (count > p.size || count > r.remaining() / 8) {
        throw WireError("decode: top-k count exceeds payload");
      }
      p.indices.resize(static_cast<std::size_t>(count));
      p.values.resize(static_cast<std::size_t>(count));
      for (auto& i : p.indices) {
        i = r.u32();
        if (i >= p.size) throw WireError("decode: top-k index out of range");
      }
      for (auto& v : p.values) v = r.f32();
      return p;
    }
    case UpdateKind::Int8: {
      p.kind = UpdateKind::Int8;
      if (count != p.size) throw WireError("decode: int8 count mismatch");
      p.lo = r.f32();
      p.step = r.f32();
      if (count > r.remaining()) {
        throw WireError("decode: int8 update exceeds payload");
      }
      p.codes.resize(static_cast<std::size_t>(count));
      for (auto& c : p.codes) c = r.u8();
      return p;
    }
  }
  throw WireError("decode: bad update kind");
}

/// Trace-context trailer (24 bytes), written only for a valid context so
/// untraced frames stay byte-identical to pre-trace builds. Decoders call
/// the read side after every declared field: leftover payload either holds
/// exactly one trailer or the frame is malformed (a partial trailer fails
/// the u64 reads, so the existing trailing-garbage rejection still holds).
void encode_trace_ctx(WireWriter& w, const obs::TraceContext& ctx) {
  if (!ctx.valid()) return;
  w.u64(ctx.trace_id);
  w.u64(ctx.parent_span);
  w.u64(static_cast<std::uint64_t>(ctx.round));
}

obs::TraceContext decode_trace_ctx(WireReader& r) {
  obs::TraceContext ctx;
  if (r.remaining() > 0) {
    ctx.trace_id = r.u64();
    ctx.parent_span = r.u64();
    ctx.round = static_cast<std::int64_t>(r.u64());
  }
  return ctx;
}

}  // namespace

std::vector<float> UpdatePayload::to_dense() const {
  const auto n = static_cast<std::size_t>(size);
  switch (kind) {
    case UpdateKind::Dense:
      return dense;
    case UpdateKind::SparseTopK: {
      std::vector<float> out(n, 0.0f);
      for (std::size_t i = 0; i < indices.size(); ++i) {
        out[indices[i]] = values[i];
      }
      return out;
    }
    case UpdateKind::Int8: {
      std::vector<float> out(n);
      // The exact arithmetic the compressor used for its own dense view —
      // dequantization on the server matches the client bit for bit.
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = lo + static_cast<float>(codes[i]) * step;
      }
      return out;
    }
  }
  throw WireError("to_dense: bad update kind");
}

std::size_t update_body_bytes(const UpdatePayload& payload) {
  switch (payload.kind) {
    case UpdateKind::Dense:
      return payload.dense.size() * sizeof(float);
    case UpdateKind::SparseTopK:
      return payload.indices.size() * (sizeof(std::uint32_t) + sizeof(float));
    case UpdateKind::Int8:
      return payload.codes.size() + 2 * sizeof(float);
  }
  throw WireError("update_body_bytes: bad update kind");
}

Frame encode_hello(const HelloMsg& msg) {
  WireWriter w;
  w.u32(msg.worker_id);
  w.u32(msg.num_clients);
  return Frame{MessageType::Hello, w.take()};
}

HelloMsg decode_hello(const Frame& frame) {
  auto r = reader_for(frame, MessageType::Hello, "Hello");
  HelloMsg msg;
  msg.worker_id = r.u32();
  msg.num_clients = r.u32();
  r.expect_exhausted();
  return msg;
}

Frame encode_train_job(const TrainJobMsg& msg) {
  WireWriter w;
  w.u64(msg.epoch);
  w.u32(msg.client_id);
  w.u64(msg.rng_seed);
  w.u8(msg.algorithm);
  w.f64(msg.fedprox_mu);
  w.f64(msg.work_fraction);
  w.u64(msg.local_epochs);
  w.u64(msg.batch_size);
  w.f64(msg.learning_rate);
  w.f64(msg.momentum);
  w.f64(msg.weight_decay);
  w.u8(msg.compression_kind);
  w.f64(msg.topk_fraction);
  w.u8(msg.error_feedback);
  w.f32_array(msg.params);
  encode_trace_ctx(w, msg.trace);
  return Frame{MessageType::TrainJob, w.take()};
}

TrainJobMsg decode_train_job(const Frame& frame) {
  auto r = reader_for(frame, MessageType::TrainJob, "TrainJob");
  TrainJobMsg msg;
  msg.epoch = r.u64();
  msg.client_id = r.u32();
  msg.rng_seed = r.u64();
  msg.algorithm = r.u8();
  msg.fedprox_mu = r.f64();
  msg.work_fraction = r.f64();
  msg.local_epochs = r.u64();
  msg.batch_size = r.u64();
  msg.learning_rate = r.f64();
  msg.momentum = r.f64();
  msg.weight_decay = r.f64();
  msg.compression_kind = r.u8();
  msg.topk_fraction = r.f64();
  msg.error_feedback = r.u8();
  msg.params = r.f32_array();
  msg.trace = decode_trace_ctx(r);
  r.expect_exhausted();
  return msg;
}

Frame encode_client_update(const ClientUpdateMsg& msg) {
  WireWriter w;
  w.u64(msg.epoch);
  w.u32(msg.client_id);
  w.f64(msg.average_loss);
  w.f64(msg.final_loss);
  w.u64(msg.batches);
  w.u64(msg.sample_count);
  encode_update_payload(w, msg.update);
  encode_trace_ctx(w, msg.trace);
  return Frame{MessageType::ClientUpdate, w.take()};
}

ClientUpdateMsg decode_client_update(const Frame& frame) {
  auto r = reader_for(frame, MessageType::ClientUpdate, "ClientUpdate");
  ClientUpdateMsg msg;
  msg.epoch = r.u64();
  msg.client_id = r.u32();
  msg.average_loss = r.f64();
  msg.final_loss = r.f64();
  msg.batches = r.u64();
  msg.sample_count = r.u64();
  msg.update = decode_update_payload(r);
  msg.trace = decode_trace_ctx(r);
  r.expect_exhausted();
  return msg;
}

Frame encode_select_notice(const SelectNoticeMsg& msg) {
  WireWriter w;
  w.u64(msg.epoch);
  w.f64(msg.deadline_s);
  w.u32_array(msg.clients);
  return Frame{MessageType::SelectNotice, w.take()};
}

SelectNoticeMsg decode_select_notice(const Frame& frame) {
  auto r = reader_for(frame, MessageType::SelectNotice, "SelectNotice");
  SelectNoticeMsg msg;
  msg.epoch = r.u64();
  msg.deadline_s = r.f64();
  msg.clients = r.u32_array();
  r.expect_exhausted();
  return msg;
}

Frame encode_heartbeat(const HeartbeatMsg& msg) {
  WireWriter w;
  w.u32(msg.sender_id);
  w.u64(msg.epoch);
  encode_trace_ctx(w, msg.trace);
  return Frame{MessageType::Heartbeat, w.take()};
}

HeartbeatMsg decode_heartbeat(const Frame& frame) {
  auto r = reader_for(frame, MessageType::Heartbeat, "Heartbeat");
  HeartbeatMsg msg;
  msg.sender_id = r.u32();
  msg.epoch = r.u64();
  msg.trace = decode_trace_ctx(r);
  r.expect_exhausted();
  return msg;
}

Frame encode_eval_report(const EvalReportMsg& msg) {
  WireWriter w;
  w.u64(msg.epoch);
  w.f64(msg.accuracy);
  w.f64(msg.loss);
  encode_trace_ctx(w, msg.trace);
  return Frame{MessageType::EvalReport, w.take()};
}

EvalReportMsg decode_eval_report(const Frame& frame) {
  auto r = reader_for(frame, MessageType::EvalReport, "EvalReport");
  EvalReportMsg msg;
  msg.epoch = r.u64();
  msg.accuracy = r.f64();
  msg.loss = r.f64();
  msg.trace = decode_trace_ctx(r);
  r.expect_exhausted();
  return msg;
}

Frame encode_summary(const SummaryMsg& msg) {
  WireWriter w;
  w.u32(msg.client_id);
  w.u8(msg.kind);
  w.f64(msg.lo);
  w.f64(msg.hi);
  w.u64(msg.tables.size());
  for (const auto& table : msg.tables) w.f64_array(table);
  w.f64_array(msg.mass);
  return Frame{MessageType::Summary, w.take()};
}

SummaryMsg decode_summary(const Frame& frame) {
  auto r = reader_for(frame, MessageType::Summary, "Summary");
  SummaryMsg msg;
  msg.client_id = r.u32();
  msg.kind = r.u8();
  msg.lo = r.f64();
  msg.hi = r.f64();
  const std::uint64_t rows = r.u64();
  // Each row costs at least its 8-byte count on the wire.
  if (rows > r.remaining() / sizeof(std::uint64_t)) {
    throw WireError("decode: summary table count exceeds payload");
  }
  msg.tables.resize(static_cast<std::size_t>(rows));
  for (auto& table : msg.tables) table = r.f64_array();
  msg.mass = r.f64_array();
  r.expect_exhausted();
  return msg;
}

Frame encode_trace_shard(const TraceShardMsg& msg) {
  WireWriter w;
  w.u32(msg.worker_id);
  w.u64(msg.trace_id);
  w.u64(msg.send_ns);
  w.u64(msg.events.size());
  for (const obs::PortableTraceEvent& e : msg.events) {
    w.string(e.name);
    w.string(e.category);
    w.u32(e.tid);
    w.u64(e.ts_ns);
    w.u64(e.dur_ns);
    w.u64(e.span_id);
    w.u64(e.parent_id);
    w.u64(static_cast<std::uint64_t>(e.round));
    w.u8(e.instant ? 1 : 0);
  }
  return Frame{MessageType::TraceShard, w.take()};
}

TraceShardMsg decode_trace_shard(const Frame& frame) {
  auto r = reader_for(frame, MessageType::TraceShard, "TraceShard");
  TraceShardMsg msg;
  msg.worker_id = r.u32();
  msg.trace_id = r.u64();
  msg.send_ns = r.u64();
  const std::uint64_t count = r.u64();
  // Every event costs at least its two string counts (16) plus the fixed
  // fields (tid 4, five u64s 40, instant 1) = 61 bytes on the wire.
  if (count > r.remaining() / 61) {
    throw WireError("decode: trace shard event count exceeds payload");
  }
  msg.events.resize(static_cast<std::size_t>(count));
  for (obs::PortableTraceEvent& e : msg.events) {
    e.name = r.string();
    e.category = r.string();
    e.tid = r.u32();
    e.ts_ns = r.u64();
    e.dur_ns = r.u64();
    e.span_id = r.u64();
    e.parent_id = r.u64();
    e.round = static_cast<std::int64_t>(r.u64());
    e.instant = r.u8() != 0;
  }
  r.expect_exhausted();
  return msg;
}

Frame encode_topology_hello(const TopologyHelloMsg& msg) {
  WireWriter w;
  w.u32(msg.agg_id);
  w.u32(msg.num_aggs);
  w.u32(msg.worker_begin);
  w.u32(msg.worker_end);
  w.u32(msg.num_clients);
  return Frame{MessageType::TopologyHello, w.take()};
}

TopologyHelloMsg decode_topology_hello(const Frame& frame) {
  auto r = reader_for(frame, MessageType::TopologyHello, "TopologyHello");
  TopologyHelloMsg msg;
  msg.agg_id = r.u32();
  msg.num_aggs = r.u32();
  msg.worker_begin = r.u32();
  msg.worker_end = r.u32();
  msg.num_clients = r.u32();
  if (msg.worker_end < msg.worker_begin) {
    throw WireError("decode: topology worker range inverted");
  }
  r.expect_exhausted();
  return msg;
}

Frame encode_subtree_chunk(const SubtreeChunkMsg& msg) {
  WireWriter w;
  w.u64(msg.epoch);
  w.u32(msg.agg_id);
  w.u64(msg.offset);
  w.f64_array(msg.data);
  return Frame{MessageType::SubtreeChunk, w.take()};
}

SubtreeChunkMsg decode_subtree_chunk(const Frame& frame) {
  auto r = reader_for(frame, MessageType::SubtreeChunk, "SubtreeChunk");
  SubtreeChunkMsg msg;
  msg.epoch = r.u64();
  msg.agg_id = r.u32();
  msg.offset = r.u64();
  msg.data = r.f64_array();
  r.expect_exhausted();
  return msg;
}

Frame encode_subtree_update(const SubtreeUpdateMsg& msg) {
  WireWriter w;
  w.u64(msg.epoch);
  w.u32(msg.agg_id);
  w.f64(msg.weight);
  w.u64(msg.n_chunks);
  w.u64(msg.stats.size());
  for (const SubtreeClientStat& s : msg.stats) {
    w.u32(s.client_id);
    w.u8(s.delivered);
    w.u8(s.failure);
    w.f64(s.average_loss);
    w.f64(s.final_loss);
    w.u64(s.batches);
    w.u64(s.sample_count);
  }
  return Frame{MessageType::SubtreeUpdate, w.take()};
}

SubtreeUpdateMsg decode_subtree_update(const Frame& frame) {
  auto r = reader_for(frame, MessageType::SubtreeUpdate, "SubtreeUpdate");
  SubtreeUpdateMsg msg;
  msg.epoch = r.u64();
  msg.agg_id = r.u32();
  msg.weight = r.f64();
  msg.n_chunks = r.u64();
  const std::uint64_t count = r.u64();
  // Each stat costs 38 fixed bytes on the wire.
  if (count > r.remaining() / 38) {
    throw WireError("decode: subtree stat count exceeds payload");
  }
  msg.stats.resize(static_cast<std::size_t>(count));
  for (SubtreeClientStat& s : msg.stats) {
    s.client_id = r.u32();
    s.delivered = r.u8();
    s.failure = r.u8();
    s.average_loss = r.f64();
    s.final_loss = r.f64();
    s.batches = r.u64();
    s.sample_count = r.u64();
  }
  r.expect_exhausted();
  return msg;
}

Frame encode_shutdown() { return Frame{MessageType::Shutdown, {}}; }

std::size_t train_job_overhead_bytes() {
  // frame header + fixed fields + the params array's 8-byte count; the
  // params data itself (4 bytes per parameter) is the variable part.
  return kFrameHeaderBytes + 95;
}

std::size_t client_update_overhead_bytes() {
  // frame header + fixed fields + update kind/size/count tags; the tensor
  // body (update_body_bytes == fl::compressed_wire_bytes) is the rest.
  return kFrameHeaderBytes + 61;
}

}  // namespace haccs::net
