// Payload codecs for the FL protocol messages (DESIGN.md §5f).
//
// This layer knows wire shapes, not FL semantics: UpdateKind mirrors
// fl::CompressionKind but src/net stays dependency-free of src/fl — the
// bridge (fl/protocol.hpp) converts between the two. Every decode_* throws
// WireError on malformed payloads (truncation, absurd counts, trailing
// bytes), which transports surface as a Corrupt verdict.
//
// Update tensor bodies are sized exactly as fl::compressed_wire_bytes prices
// them — Dense 4n, TopK k*(4+4), Int8 n+8 — so the latency model's priced
// bytes ARE the bytes on the wire (asserted by update_body_bytes and pinned
// in tests/net_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "src/net/frame.hpp"
#include "src/obs/trace.hpp"

namespace haccs::net {

// ---------------------------------------------------------------------------
// Client update payloads

/// Wire form of one model-update tensor. Mirrors fl::CompressionKind; values
/// are wire-stable.
enum class UpdateKind : std::uint8_t {
  Dense = 0,      ///< float32 per coordinate
  SparseTopK = 1, ///< (u32 index, f32 value) per kept coordinate
  Int8 = 2,       ///< u8 code per coordinate + lo/step dequant scalars
};

struct UpdatePayload {
  UpdateKind kind = UpdateKind::Dense;
  std::uint64_t size = 0;  ///< dense length n of the update
  std::vector<float> dense;            ///< Dense: n values
  std::vector<std::uint32_t> indices;  ///< SparseTopK: kept coordinates
  std::vector<float> values;           ///< SparseTopK: kept values
  std::vector<std::uint8_t> codes;     ///< Int8: n quantization codes
  float lo = 0.0f;    ///< Int8 dequantization offset
  float step = 0.0f;  ///< Int8 dequantization step

  /// Dense reconstruction (what the server applies). SparseTopK scatters
  /// into zeros; Int8 computes lo + code * step — the identical arithmetic
  /// the compressor used, so reconstruction is bit-exact with the sender's
  /// own dense view.
  std::vector<float> to_dense() const;
};

/// Bytes of the tensor body alone (kind/size tags and message metadata
/// excluded). This must equal fl::compressed_wire_bytes for the same update
/// — the consistency contract between the latency model and the codec.
std::size_t update_body_bytes(const UpdatePayload& payload);

// ---------------------------------------------------------------------------
// Protocol messages

/// worker -> server, once per connection: who is calling and how many of the
/// federation's clients it hosts.
struct HelloMsg {
  std::uint32_t worker_id = 0;
  std::uint32_t num_clients = 0;
};

/// server -> worker: everything one client needs to run its local round.
/// Ships the full training recipe so a worker needs only its data shard and
/// the model factory; `rng_seed` is the engine's forked per-client stream,
/// which is what keeps a remote round bit-identical to the in-process one.
struct TrainJobMsg {
  std::uint64_t epoch = 0;
  std::uint32_t client_id = 0;
  std::uint64_t rng_seed = 0;
  std::uint8_t algorithm = 0;      ///< fl::LocalAlgorithm
  double fedprox_mu = 0.0;
  double work_fraction = 1.0;
  std::uint64_t local_epochs = 1;
  std::uint64_t batch_size = 32;
  double learning_rate = 0.01;
  double momentum = 0.0;
  double weight_decay = 0.0;
  std::uint8_t compression_kind = 0;  ///< fl::CompressionKind
  double topk_fraction = 0.1;
  std::uint8_t error_feedback = 1;
  std::vector<float> params;  ///< global parameters (downlink payload)
  /// Optional trace-context trailer (DESIGN.md §5i): encoded only when
  /// valid(), so an untraced run's frames are byte-identical to pre-trace
  /// builds. Trace bytes are deliberately excluded from the latency model's
  /// priced overhead constants.
  obs::TraceContext trace;
};

/// worker -> server: the trained update plus local-round statistics.
///
/// Payload semantics by kind: Dense frames carry the UPDATED PARAMETERS
/// themselves (FedAvg's classic uplink — shipping the delta and re-adding
/// the global would not be bit-exact in float arithmetic); SparseTopK and
/// Int8 frames carry the compressed DELTA, which the server reconstructs as
/// global + to_dense() — the identical arithmetic the in-process path uses.
struct ClientUpdateMsg {
  std::uint64_t epoch = 0;
  std::uint32_t client_id = 0;
  double average_loss = 0.0;
  double final_loss = 0.0;
  std::uint64_t batches = 0;
  std::uint64_t sample_count = 0;
  UpdatePayload update;
  /// Optional trailer: the TrainJob's context echoed back for correlation.
  obs::TraceContext trace;
};

/// server -> worker: ids picked this round (round control / observability).
struct SelectNoticeMsg {
  std::uint64_t epoch = 0;
  double deadline_s = 0.0;
  std::vector<std::uint32_t> clients;
};

struct HeartbeatMsg {
  std::uint32_t sender_id = 0;
  std::uint64_t epoch = 0;
  /// Optional trailer: the last context the sender saw (liveness probes can
  /// then be placed on the round timeline).
  obs::TraceContext trace;
};

/// server -> worker after a global evaluation.
struct EvalReportMsg {
  std::uint64_t epoch = 0;
  double accuracy = 0.0;
  double loss = 0.0;
  /// Optional trailer; a valid context also tells the worker the server is
  /// tracing, prompting a final TraceShard before shutdown.
  obs::TraceContext trace;
};

/// worker -> server: one client's distribution summary (paper §IV-A uplink).
/// `tables` is generic — one row for a P(y) histogram, one row per label for
/// P(X|y) histograms or quantile sketches; stats/summary_codec.hpp maps the
/// concrete summary types onto it.
struct SummaryMsg {
  std::uint32_t client_id = 0;
  std::uint8_t kind = 0;  ///< stats::SummaryKind
  double lo = 0.0, hi = 0.0;
  std::vector<std::vector<double>> tables;
  std::vector<double> mass;
};

/// worker -> server: the worker's buffered spans for committed rounds
/// (DESIGN.md §5i), shipped at the first job of a new round and again on
/// shutdown. `send_ns` is the sender's now_ns() at ship time — the server
/// subtracts it from its own receive-time clock to place the shard on the
/// merged timeline.
struct TraceShardMsg {
  std::uint32_t worker_id = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t send_ns = 0;
  std::vector<obs::PortableTraceEvent> events;
};

// ---------------------------------------------------------------------------
// Hierarchical aggregation messages (DESIGN.md §5j)

/// aggregator -> root, once per connection: which contiguous worker range
/// this mid-tier node fronts. Followed by the subtree's relayed Summary
/// frames, exactly like a worker's Hello is followed by its summaries.
struct TopologyHelloMsg {
  std::uint32_t agg_id = 0;
  std::uint32_t num_aggs = 0;
  std::uint32_t worker_begin = 0;  ///< first worker id in the subtree
  std::uint32_t worker_end = 0;    ///< one past the last worker id
  std::uint32_t num_clients = 0;   ///< clients hosted across the subtree
};

/// aggregator -> root: one fixed-size chunk of the subtree's weighted
/// partial sum (Σ w_i · updated_i in f64, chunked so the root never buffers
/// a whole per-peer model — the `allreduce_ring_chunked` idiom). `offset`
/// is the chunk's first parameter index; chunks arrive in index order per
/// aggregator.
struct SubtreeChunkMsg {
  std::uint64_t epoch = 0;
  std::uint32_t agg_id = 0;
  std::uint64_t offset = 0;
  std::vector<double> data;
};

/// Per-client training stats forwarded upstream alongside the partial sum,
/// so the root's engine can do its normal per-slot bookkeeping (losses,
/// breakers, selector reports) without seeing the raw updates.
struct SubtreeClientStat {
  std::uint32_t client_id = 0;
  std::uint8_t delivered = 0;  ///< 1 = folded into the partial sum
  std::uint8_t failure = 0;    ///< fl::FailureKind when delivered == 0
  double average_loss = 0.0;
  double final_loss = 0.0;
  std::uint64_t batches = 0;
  std::uint64_t sample_count = 0;  ///< the FedAvg weight
};

/// aggregator -> root: end-of-round trailer after the last SubtreeChunk.
/// `weight` is Σ sample_count over folded clients — integers, so the sum is
/// exact in f64 and the root's total weight is grouping-independent.
struct SubtreeUpdateMsg {
  std::uint64_t epoch = 0;
  std::uint32_t agg_id = 0;
  double weight = 0.0;
  std::uint64_t n_chunks = 0;  ///< chunks this aggregator sent for the epoch
  std::vector<SubtreeClientStat> stats;
};

// Shutdown carries no payload: an empty MessageType::Shutdown frame.

Frame encode_hello(const HelloMsg& msg);
HelloMsg decode_hello(const Frame& frame);

Frame encode_train_job(const TrainJobMsg& msg);
TrainJobMsg decode_train_job(const Frame& frame);

Frame encode_client_update(const ClientUpdateMsg& msg);
ClientUpdateMsg decode_client_update(const Frame& frame);

Frame encode_select_notice(const SelectNoticeMsg& msg);
SelectNoticeMsg decode_select_notice(const Frame& frame);

Frame encode_heartbeat(const HeartbeatMsg& msg);
HeartbeatMsg decode_heartbeat(const Frame& frame);

Frame encode_eval_report(const EvalReportMsg& msg);
EvalReportMsg decode_eval_report(const Frame& frame);

Frame encode_summary(const SummaryMsg& msg);
SummaryMsg decode_summary(const Frame& frame);

Frame encode_trace_shard(const TraceShardMsg& msg);
TraceShardMsg decode_trace_shard(const Frame& frame);

Frame encode_topology_hello(const TopologyHelloMsg& msg);
TopologyHelloMsg decode_topology_hello(const Frame& frame);

Frame encode_subtree_chunk(const SubtreeChunkMsg& msg);
SubtreeChunkMsg decode_subtree_chunk(const Frame& frame);

Frame encode_subtree_update(const SubtreeUpdateMsg& msg);
SubtreeUpdateMsg decode_subtree_update(const Frame& frame);

Frame encode_shutdown();

/// Fixed per-message wire overhead (frame header + metadata, excluding the
/// tensor body) — the constants fl/protocol.hpp uses to price whole frames
/// so RoundRecord byte accounting matches what transports actually move.
std::size_t train_job_overhead_bytes();
std::size_t client_update_overhead_bytes();

}  // namespace haccs::net
