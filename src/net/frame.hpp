// Framed messages: the unit everything on a HACCS wire travels in.
//
// Frame layout (little-endian, 16-byte header + payload):
//
//   offset  size  field
//   0       4     magic "HNET"
//   4       2     wire version (kWireVersion)
//   6       2     message type (MessageType)
//   8       4     payload length in bytes
//   12      4     CRC-32 of the payload
//   16      len   payload
//
// The CRC covers the payload only: a corrupted header already fails the
// magic/version/length checks, and excluding it lets nn::serialize reuse a
// frame as the checkpoint file format (header rewritten tools still verify
// the parameters). Decoding is incremental (FrameParser) because a TCP read
// returns whatever the kernel has — a frame routinely arrives split across
// several reads, and several small frames can arrive in one.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace haccs::net {

inline constexpr std::uint8_t kFrameMagic[4] = {'H', 'N', 'E', 'T'};
inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 16;
/// Upper bound on a single payload — far above any model this repo ships
/// (the CIFAR-size MLP is ~800 KB) but small enough that a corrupt length
/// field cannot drive a multi-GiB allocation.
inline constexpr std::size_t kMaxPayloadBytes = std::size_t{1} << 30;

/// Every message the FL protocol exchanges. Values are wire-stable: append
/// new types, never renumber.
enum class MessageType : std::uint16_t {
  Hello = 1,         ///< worker -> server: capabilities handshake
  SelectNotice = 2,  ///< server -> worker: clients picked this round
  TrainJob = 3,      ///< server -> worker: params + one client's train order
  ClientUpdate = 4,  ///< worker -> server: compressed update + train stats
  Heartbeat = 5,     ///< either direction: liveness probe
  EvalReport = 6,    ///< server -> worker: global accuracy after an eval
  Summary = 7,       ///< worker -> server: distribution summary (§IV-A)
  Shutdown = 8,      ///< server -> worker: drain and exit
  Checkpoint = 9,    ///< file frame: nn::serialize parameter checkpoint
  TraceShard = 10,   ///< worker -> server: buffered trace spans (§5i)
  TopologyHello = 11,  ///< aggregator -> root: subtree handshake (§5j)
  SubtreeUpdate = 12,  ///< aggregator -> root: partial-FedAvg round trailer
  SubtreeChunk = 13,   ///< aggregator -> root: one chunk of the partial sum
};

struct Frame {
  MessageType type = MessageType::Heartbeat;
  std::vector<std::uint8_t> payload;
};

/// Serializes a frame (header + payload, CRC filled in).
std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Outcome of an attempted frame decode.
enum class FrameStatus {
  Ok,           ///< one whole frame decoded
  NeedMore,     ///< prefix is valid so far; feed more bytes
  BadMagic,     ///< first bytes are not a frame
  BadVersion,   ///< version field != kWireVersion
  BadLength,    ///< declared payload exceeds kMaxPayloadBytes
  BadChecksum,  ///< payload present but CRC mismatch
};

const char* to_string(FrameStatus status);

/// One-shot decode of a complete buffer (checkpoint files, tests). Returns
/// Ok only when `bytes` holds exactly one whole frame; `consumed` (optional)
/// receives the frame's full size on Ok.
FrameStatus decode_frame(std::span<const std::uint8_t> bytes, Frame* out,
                         std::size_t* consumed = nullptr);

/// Incremental frame decoder for stream transports. Feed arbitrary chunks;
/// poll next() for completed frames. A corrupt frame (bad CRC) is consumed
/// and reported once, then parsing resumes at the following frame — one
/// mangled payload must not poison the rest of the stream. Header-level
/// damage (bad magic/version/length) is unrecoverable: frame boundaries are
/// lost, so the connection must be dropped.
class FrameParser {
 public:
  void feed(std::span<const std::uint8_t> bytes);

  /// Decodes the next frame out of the buffered bytes. Ok fills `out`;
  /// NeedMore means feed() more; BadChecksum consumed the damaged frame;
  /// BadMagic/BadVersion/BadLength poison the parser (fatal() turns true).
  FrameStatus next(Frame* out);

  /// True once an unrecoverable header error was seen.
  bool fatal() const { return fatal_; }

  std::size_t buffered() const { return buffer_.size() - start_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t start_ = 0;  ///< consumed prefix (compacted lazily)
  bool fatal_ = false;
};

}  // namespace haccs::net
