#include "src/net/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/common/logging.hpp"
#include "src/obs/trace.hpp"

namespace haccs::net {

namespace {

using Clock = std::chrono::steady_clock;

/// Milliseconds left before `deadline`; -1 for "no deadline"; 0 when past.
int remaining_ms(bool has_deadline, Clock::time_point deadline) {
  if (!has_deadline) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  return left <= 0 ? 0 : static_cast<int>(left);
}

/// poll() one fd for `events`; true when ready, false on timeout.
/// Throws on hard poll errors other than EINTR.
bool poll_fd(int fd, short events, int timeout_ms) {
  pollfd p{};
  p.fd = fd;
  p.events = events;
  for (;;) {
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno != EINTR) {
      throw std::runtime_error(std::string("poll: ") + std::strerror(errno));
    }
  }
}

class TcpTransport final : public Transport {
 public:
  TcpTransport(int fd, std::string peer, int default_timeout_ms)
      : fd_(fd), peer_(std::move(peer)), default_timeout_ms_(default_timeout_ms) {
    const int one = 1;
    // Frames are latency-sensitive round-trip messages; never Nagle-delay
    // the small control frames behind a parameter payload.
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // Non-blocking I/O: poll() owns all waiting, so every call honors its
    // deadline even mid-frame (a blocking send could stall past the timeout
    // inside the kernel once poll reported partial writability).
    const int fl = ::fcntl(fd_, F_GETFL, 0);
    if (fl >= 0) ::fcntl(fd_, F_SETFL, fl | O_NONBLOCK);
  }

  ~TcpTransport() override { close(); }

  TransportStatus send(const Frame& frame, int timeout_ms) override {
    std::vector<std::uint8_t> encoded;
    {
      obs::Span span("net_encode", "net");
      encoded = encode_frame(frame);
    }
    return send_raw(encoded, timeout_ms);
  }

  TransportStatus send_raw(std::span<const std::uint8_t> encoded,
                           int timeout_ms) override {
    if (timeout_ms < 0) timeout_ms = default_timeout_ms_;
    obs::Span span("net_send", "net");
    const bool has_deadline = timeout_ms >= 0;
    const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    // One frame's bytes go out contiguously even when a heartbeat thread
    // shares the transport: an interleaved write would desynchronize the
    // peer's frame parser permanently.
    std::lock_guard<std::mutex> lock(send_mutex_);
    if (fd_ < 0) return TransportStatus::Closed;
    std::size_t sent = 0;
    while (sent < encoded.size()) {
      if (!poll_fd(fd_, POLLOUT, remaining_ms(has_deadline, deadline))) {
        return TransportStatus::Timeout;
      }
      const ssize_t n = ::send(fd_, encoded.data() + sent,
                               encoded.size() - sent, MSG_NOSIGNAL);
      if (n < 0) {
        // EINTR (signal) and EAGAIN (poll raced the kernel buffer) are
        // retryable mid-frame — a short write is never a fatal Closed.
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
        return TransportStatus::Closed;
      }
      sent += static_cast<std::size_t>(n);
    }
    NetMetrics& m = NetMetrics::get();
    m.bytes_sent.inc(encoded.size());
    m.frames_sent.inc();
    m.frame_bytes.observe(static_cast<double>(encoded.size()));
    return TransportStatus::Ok;
  }

  TransportStatus recv(Frame* out, int timeout_ms) override {
    if (fd_ < 0) return TransportStatus::Closed;
    if (timeout_ms < 0) timeout_ms = default_timeout_ms_;
    obs::Span span("net_recv", "net");
    const bool has_deadline = timeout_ms >= 0;
    const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    NetMetrics& m = NetMetrics::get();
    for (;;) {
      // Drain buffered bytes first: several frames can land in one read.
      {
        obs::Span decode_span("net_decode", "net");
        const FrameStatus status = parser_.next(out);
        if (status == FrameStatus::Ok) {
          m.frames_received.inc();
          return TransportStatus::Ok;
        }
        if (status == FrameStatus::BadChecksum) {
          m.frames_corrupt.inc();
          return TransportStatus::Corrupt;
        }
        if (status != FrameStatus::NeedMore) {
          // Desynchronized stream: the connection is unusable.
          HACCS_WARN << "tcp recv from " << peer_
                     << ": fatal frame error: " << to_string(status);
          return TransportStatus::Closed;
        }
      }
      if (!poll_fd(fd_, POLLIN, remaining_ms(has_deadline, deadline))) {
        return TransportStatus::Timeout;
      }
      std::uint8_t chunk[64 * 1024];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n == 0) return TransportStatus::Closed;  // orderly EOF
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
        return TransportStatus::Closed;
      }
      m.bytes_received.inc(static_cast<std::uint64_t>(n));
      parser_.feed({chunk, static_cast<std::size_t>(n)});
    }
  }

  void close() override {
    // shutdown() first, outside the lock: it wakes a sender blocked in
    // poll() (POLLOUT -> POLLERR) so the mutex frees promptly, and unblocks
    // a concurrent recv().
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
    std::lock_guard<std::mutex> lock(send_mutex_);
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  std::string peer() const override { return peer_; }

 private:
  int fd_;
  std::string peer_;
  int default_timeout_ms_;
  FrameParser parser_;
  std::mutex send_mutex_;
};

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string ip = (host == "localhost") ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("tcp: bad IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

std::unique_ptr<Transport> connect_tcp(const std::string& host,
                                       std::uint16_t port,
                                       const TcpConnectOptions& options) {
  const sockaddr_in addr = make_addr(host, port);
  int backoff_ms = options.initial_backoff_ms;
  for (int attempt = 0; attempt < options.attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, 2000);
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) continue;
    int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr));
    if (rc != 0 && errno == EINTR) {
      // POSIX: an EINTR'd connect keeps completing in the background.
      // Retrying connect() would fail with EALREADY/EISCONN, so wait for
      // writability and read the real outcome from SO_ERROR instead of
      // treating the interruption as a failed attempt.
      try {
        if (poll_fd(fd, POLLOUT, 2000)) {
          int so_error = -1;
          socklen_t len = sizeof(so_error);
          if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) == 0 &&
              so_error == 0) {
            rc = 0;
          }
        }
      } catch (const std::exception&) {
        rc = -1;
      }
    }
    if (rc == 0) {
      return std::make_unique<TcpTransport>(
          fd, host + ":" + std::to_string(port), options.io_timeout_ms);
    }
    ::close(fd);
  }
  HACCS_WARN << "tcp: connect to " << host << ":" << port << " failed after "
             << options.attempts << " attempts";
  return nullptr;
}

TcpListener::TcpListener(std::uint16_t port, int backlog) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("tcp: socket: ") +
                             std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = make_addr("127.0.0.1", port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("tcp: bind 127.0.0.1:" + std::to_string(port) +
                             ": " + err);
  }
  if (::listen(fd_, backlog) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("tcp: listen: " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<Transport> TcpListener::accept(int timeout_ms) {
  if (fd_ < 0) return nullptr;
  if (!poll_fd(fd_, POLLIN, timeout_ms)) return nullptr;
  sockaddr_in peer{};
  socklen_t len = sizeof(peer);
  int fd;
  do {
    // A signal between poll() and accept() must not surface as "no
    // connection": the pending connection is still queued, so retry.
    fd = ::accept(fd_, reinterpret_cast<sockaddr*>(&peer), &len);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return nullptr;
  char ip[INET_ADDRSTRLEN] = "?";
  ::inet_ntop(AF_INET, &peer.sin_addr, ip, sizeof(ip));
  return std::make_unique<TcpTransport>(
      fd, std::string(ip) + ":" + std::to_string(ntohs(peer.sin_port)), -1);
}

}  // namespace haccs::net
