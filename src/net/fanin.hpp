// FanInServer: a single-threaded poll/epoll fan-in endpoint (DESIGN.md §5j).
//
// The flat serving path dedicates one accepted Transport per worker and
// blocks on it — fine for a handful of peers, hopeless for the hundreds of
// connections a mid-tier aggregator fronts. FanInServer multiplexes every
// downstream connection through one PollGroup (epoll on Linux, poll
// elsewhere) with per-connection read/write buffering:
//
//   * Inbound: each connection owns a FrameParser; decoded frames queue up
//     to `max_inbound_frames` per peer. At the cap the connection's read
//     interest is dropped, so backpressure propagates through TCP to the
//     sender instead of growing server memory.
//   * Outbound: send() enqueues encoded frames and flushes them as the
//     socket drains. A peer that falls more than `max_outbound_frames`
//     behind is shed (connection closed, Closed event emitted) — the
//     caller escalates exactly like a heartbeat-expired crash.
//
// Single-threaded contract: poll(), send(), and close_conn() are called
// from one thread. Peers are identified by a monotonically increasing
// connection id, never recycled, so a stale id after a reconnect is simply
// unknown rather than aliased.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/net/frame.hpp"

namespace haccs::net {

/// Readiness multiplexer over a set of fds: epoll on __linux__, poll
/// fallback elsewhere. Level-triggered in both implementations.
class PollGroup {
 public:
  struct Ready {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool error = false;  ///< POLLERR / POLLHUP / EPOLLERR / EPOLLHUP
  };

  PollGroup();
  ~PollGroup();
  PollGroup(const PollGroup&) = delete;
  PollGroup& operator=(const PollGroup&) = delete;

  void add(int fd, bool read, bool write);
  void update(int fd, bool read, bool write);
  void remove(int fd);

  /// Waits up to `timeout_ms` (-1 = forever) and fills `out` with the ready
  /// set. Returns the number of ready fds (0 on timeout). EINTR retries.
  std::size_t wait(std::vector<Ready>& out, int timeout_ms);

  std::size_t size() const { return interest_.size(); }

 private:
  std::unordered_map<int, short> interest_;  ///< fd -> poll-style mask
#ifdef __linux__
  int epoll_fd_ = -1;
#endif
};

struct FanInOptions {
  std::uint16_t port = 0;  ///< 0 = ephemeral (read back via port())
  /// Accepted connections beyond this are closed immediately.
  std::size_t max_connections = 4096;
  /// Decoded-but-undelivered frames buffered per connection before its
  /// read interest is dropped (TCP backpressure to the sender).
  std::size_t max_inbound_frames = 64;
  /// Queued outbound frames before the peer is shed as too slow.
  std::size_t max_outbound_frames = 64;
};

struct FanInEvent {
  enum class Kind {
    Accepted,  ///< new connection; `conn` is its id
    Frame,     ///< one decoded frame from `conn`
    Closed,    ///< peer hung up, errored, or was shed for slowness
    Corrupt,   ///< a frame from `conn` failed its CRC (stream still aligned)
  };
  Kind kind = Kind::Frame;
  std::uint64_t conn = 0;
  Frame frame;         ///< valid for Kind::Frame
  bool shed = false;   ///< Kind::Closed: true when the server shed the peer
};

class FanInServer {
 public:
  explicit FanInServer(const FanInOptions& options);
  ~FanInServer();
  FanInServer(const FanInServer&) = delete;
  FanInServer& operator=(const FanInServer&) = delete;

  std::uint16_t port() const { return port_; }

  /// Pumps accepts and socket I/O, then delivers one event. Returns false
  /// when nothing happened within `timeout_ms`.
  bool poll(FanInEvent* out, int timeout_ms);

  /// Queues one frame for `conn`. Returns false when the connection is
  /// unknown or was just shed for exceeding the outbound cap (a Closed
  /// event with shed=true is then delivered by the next poll()).
  bool send(std::uint64_t conn, const Frame& frame);

  /// Closes a connection without emitting a Closed event (caller-driven).
  void close_conn(std::uint64_t conn);

  std::size_t connection_count() const { return conns_.size(); }
  /// Outbound frames queued for a peer — the backpressure gauge /status
  /// and haccs_top report. 0 for unknown connections.
  std::size_t outbound_queued(std::uint64_t conn) const;
  /// Decoded frames buffered from a peer but not yet delivered by poll().
  std::size_t inbound_queued(std::uint64_t conn) const;
  std::string peer_name(std::uint64_t conn) const;

 private:
  struct Conn {
    int fd = -1;
    std::string peer;
    FrameParser parser;
    std::deque<std::vector<std::uint8_t>> outbound;
    std::size_t out_offset = 0;     ///< bytes of outbound.front() written
    std::size_t undelivered = 0;    ///< decoded frames still in ready_
    bool read_suppressed = false;
  };

  void accept_pending();
  void read_conn(std::uint64_t id, Conn& conn);
  bool flush_conn(Conn& conn);  ///< false when the connection died
  void drop_conn(std::uint64_t id, bool emit_closed, bool shed);
  void sync_interest(Conn& conn);
  bool pop_ready(FanInEvent* out);

  FanInOptions options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  PollGroup group_;
  std::unordered_map<std::uint64_t, Conn> conns_;
  std::unordered_map<int, std::uint64_t> by_fd_;
  std::deque<FanInEvent> ready_;
  std::uint64_t next_id_ = 1;
  std::vector<PollGroup::Ready> scratch_;
};

}  // namespace haccs::net
