#include "src/net/status.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "src/common/logging.hpp"
#include "src/obs/metrics.hpp"

namespace haccs::net {

namespace {

/// Accept-loop poll slice: long enough to idle cheaply, short enough that
/// stop() returns promptly.
constexpr int kPollSliceMs = 200;
/// A scraper that cannot send one request line or drain one response within
/// this budget is dropped; it can simply scrape again.
constexpr int kClientIoMs = 2000;

void write_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    pollfd p{};
    p.fd = fd;
    p.events = POLLOUT;
    const int rc = ::poll(&p, 1, kClientIoMs);
    if (rc <= 0 && errno != EINTR) return;
    if (rc <= 0) continue;
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return;
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::string http_response(const char* status, const char* content_type,
                          const std::string& body) {
  return std::string("HTTP/1.0 ") + status +
         "\r\nContent-Type: " + content_type +
         "\r\nContent-Length: " + std::to_string(body.size()) +
         "\r\nConnection: close\r\n\r\n" + body;
}

}  // namespace

StatusServer::StatusServer(std::uint16_t port, StatusEndpoints endpoints)
    : endpoints_(std::move(endpoints)) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("status: socket: ") +
                             std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("status: bind 127.0.0.1:" +
                             std::to_string(port) + ": " + err);
  }
  if (::listen(fd_, 8) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("status: listen: " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  thread_ = std::thread([this] { run(); });
}

StatusServer::~StatusServer() { stop(); }

void StatusServer::stop() {
  if (!thread_.joinable()) return;
  stop_.store(true, std::memory_order_relaxed);
  thread_.join();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void StatusServer::run() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd p{};
    p.fd = fd_;
    p.events = POLLIN;
    const int rc = ::poll(&p, 1, kPollSliceMs);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0) continue;
    sockaddr_in peer{};
    socklen_t len = sizeof(peer);
    int client;
    do {
      client = ::accept(fd_, reinterpret_cast<sockaddr*>(&peer), &len);
    } while (client < 0 && errno == EINTR);
    if (client < 0) continue;
    serve_one(client);
    ::close(client);
  }
}

void StatusServer::serve_one(int client_fd) {
  // Read until the end of the request head (or 4 KiB — scrape requests are
  // one line plus a few headers; anything bigger is not a scraper).
  std::string request;
  while (request.size() < 4096 &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find('\n') == std::string::npos) {
    pollfd p{};
    p.fd = client_fd;
    p.events = POLLIN;
    const int rc = ::poll(&p, 1, kClientIoMs);
    if (rc <= 0 && errno != EINTR) return;
    if (rc <= 0) continue;
    char chunk[1024];
    const ssize_t n = ::recv(client_fd, chunk, sizeof(chunk), 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return;
    }
    request.append(chunk, static_cast<std::size_t>(n));
  }
  // "GET /path HTTP/1.0" — everything after the method up to the next space.
  std::string target = "/";
  const std::size_t sp = request.find(' ');
  if (sp != std::string::npos) {
    const std::size_t end = request.find(' ', sp + 1);
    target = request.substr(sp + 1, end == std::string::npos
                                        ? std::string::npos
                                        : end - sp - 1);
  }
  static obs::Counter& scrapes =
      obs::Registry::global().counter("status_requests_total");
  scrapes.inc();
  std::string response;
  try {
    if (target == "/healthz") {
      response = http_response("200 OK", "text/plain", "ok\n");
    } else if (target == "/metrics" && endpoints_.metrics_text) {
      response = http_response("200 OK", "text/plain; version=0.0.4",
                               endpoints_.metrics_text());
    } else if (target == "/status" && endpoints_.status_json) {
      response = http_response("200 OK", "application/json",
                               endpoints_.status_json());
    } else {
      response = http_response("404 Not Found", "text/plain", "not found\n");
    }
  } catch (const std::exception& e) {
    response = http_response("500 Internal Server Error", "text/plain",
                             std::string(e.what()) + "\n");
  }
  write_all(client_fd, response);
}

}  // namespace haccs::net
