#include "src/net/fanin.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "src/common/logging.hpp"
#include "src/net/transport.hpp"

namespace haccs::net {

namespace {

void set_nonblocking(int fd) {
  const int fl = ::fcntl(fd, F_GETFL, 0);
  if (fl >= 0) ::fcntl(fd, F_SETFL, fl | O_NONBLOCK);
}

}  // namespace

// ---------------------------------------------------------------------------
// PollGroup

#ifdef __linux__

PollGroup::PollGroup() {
  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) {
    throw std::runtime_error(std::string("epoll_create1: ") +
                             std::strerror(errno));
  }
}

PollGroup::~PollGroup() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

namespace {
std::uint32_t epoll_mask(short events) {
  std::uint32_t m = 0;
  if (events & POLLIN) m |= EPOLLIN;
  if (events & POLLOUT) m |= EPOLLOUT;
  return m;
}
}  // namespace

void PollGroup::add(int fd, bool read, bool write) {
  const short mask =
      static_cast<short>((read ? POLLIN : 0) | (write ? POLLOUT : 0));
  interest_[fd] = mask;
  epoll_event ev{};
  ev.events = epoll_mask(mask);
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
}

void PollGroup::update(int fd, bool read, bool write) {
  const short mask =
      static_cast<short>((read ? POLLIN : 0) | (write ? POLLOUT : 0));
  interest_[fd] = mask;
  epoll_event ev{};
  ev.events = epoll_mask(mask);
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
}

void PollGroup::remove(int fd) {
  interest_.erase(fd);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

std::size_t PollGroup::wait(std::vector<Ready>& out, int timeout_ms) {
  out.clear();
  epoll_event events[128];
  int rc;
  do {
    rc = ::epoll_wait(epoll_fd_, events, 128, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc <= 0) return 0;
  out.reserve(static_cast<std::size_t>(rc));
  for (int i = 0; i < rc; ++i) {
    Ready r;
    r.fd = events[i].data.fd;
    r.readable = (events[i].events & EPOLLIN) != 0;
    r.writable = (events[i].events & EPOLLOUT) != 0;
    r.error = (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
    out.push_back(r);
  }
  return out.size();
}

#else  // poll() fallback

PollGroup::PollGroup() = default;
PollGroup::~PollGroup() = default;

void PollGroup::add(int fd, bool read, bool write) {
  interest_[fd] =
      static_cast<short>((read ? POLLIN : 0) | (write ? POLLOUT : 0));
}

void PollGroup::update(int fd, bool read, bool write) { add(fd, read, write); }

void PollGroup::remove(int fd) { interest_.erase(fd); }

std::size_t PollGroup::wait(std::vector<Ready>& out, int timeout_ms) {
  out.clear();
  std::vector<pollfd> fds;
  fds.reserve(interest_.size());
  for (const auto& [fd, mask] : interest_) {
    fds.push_back(pollfd{fd, mask, 0});
  }
  int rc;
  do {
    rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc <= 0) return 0;
  for (const pollfd& p : fds) {
    if (p.revents == 0) continue;
    Ready r;
    r.fd = p.fd;
    r.readable = (p.revents & POLLIN) != 0;
    r.writable = (p.revents & POLLOUT) != 0;
    r.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    out.push_back(r);
  }
  return out.size();
}

#endif

// ---------------------------------------------------------------------------
// FanInServer

FanInServer::FanInServer(const FanInOptions& options) : options_(options) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("fanin: socket: ") +
                             std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 128) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("fanin: bind/listen: " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }
  set_nonblocking(listen_fd_);
  group_.add(listen_fd_, true, false);
}

FanInServer::~FanInServer() {
  for (auto& [id, conn] : conns_) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

bool FanInServer::pop_ready(FanInEvent* out) {
  if (ready_.empty()) return false;
  *out = std::move(ready_.front());
  ready_.pop_front();
  if (out->kind == FanInEvent::Kind::Frame) {
    auto it = conns_.find(out->conn);
    if (it != conns_.end() && it->second.undelivered > 0) {
      --it->second.undelivered;
      // Delivering a frame may reopen a backpressured connection.
      if (it->second.read_suppressed &&
          it->second.undelivered < options_.max_inbound_frames) {
        it->second.read_suppressed = false;
        sync_interest(it->second);
      }
    }
  }
  return true;
}

bool FanInServer::poll(FanInEvent* out, int timeout_ms) {
  if (pop_ready(out)) return true;
  const std::size_t n = group_.wait(scratch_, timeout_ms);
  for (std::size_t i = 0; i < n; ++i) {
    const PollGroup::Ready r = scratch_[i];
    if (r.fd == listen_fd_) {
      accept_pending();
      continue;
    }
    const auto fd_it = by_fd_.find(r.fd);
    if (fd_it == by_fd_.end()) continue;
    const std::uint64_t id = fd_it->second;
    Conn& conn = conns_[id];
    if (r.writable) {
      if (!flush_conn(conn)) {
        drop_conn(id, /*emit_closed=*/true, /*shed=*/false);
        continue;
      }
      sync_interest(conn);
    }
    if (r.readable) read_conn(id, conn);
    // Error-only readiness (peer reset with nothing readable): the read
    // path above surfaces orderly EOFs; a pure error drops the conn here.
    if (r.error && !r.readable && conns_.count(id) != 0) {
      drop_conn(id, /*emit_closed=*/true, /*shed=*/false);
    }
  }
  return pop_ready(out);
}

void FanInServer::accept_pending() {
  for (;;) {
    sockaddr_in peer{};
    socklen_t len = sizeof(peer);
    const int fd =
        ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &len);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: drained the backlog
    }
    if (conns_.size() >= options_.max_connections) {
      ::close(fd);
      HACCS_WARN << "fanin: connection limit (" << options_.max_connections
                 << ") reached, refusing peer";
      continue;
    }
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    char ip[INET_ADDRSTRLEN] = "?";
    ::inet_ntop(AF_INET, &peer.sin_addr, ip, sizeof(ip));
    const std::uint64_t id = next_id_++;
    Conn& conn = conns_[id];
    conn.fd = fd;
    conn.peer = std::string(ip) + ":" + std::to_string(ntohs(peer.sin_port));
    by_fd_[fd] = id;
    group_.add(fd, true, false);
    FanInEvent ev;
    ev.kind = FanInEvent::Kind::Accepted;
    ev.conn = id;
    ready_.push_back(std::move(ev));
  }
}

void FanInServer::read_conn(std::uint64_t id, Conn& conn) {
  NetMetrics& m = NetMetrics::get();
  while (!conn.read_suppressed) {
    std::uint8_t chunk[64 * 1024];
    const ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
    if (n == 0) {
      drop_conn(id, /*emit_closed=*/true, /*shed=*/false);
      return;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      drop_conn(id, /*emit_closed=*/true, /*shed=*/false);
      return;
    }
    m.bytes_received.inc(static_cast<std::uint64_t>(n));
    conn.parser.feed({chunk, static_cast<std::size_t>(n)});
    // Decode everything the parser buffered — the bytes are already in
    // memory, so the inbound cap gates further reads, not decoding.
    for (;;) {
      FanInEvent ev;
      ev.conn = id;
      const FrameStatus status = conn.parser.next(&ev.frame);
      if (status == FrameStatus::Ok) {
        m.frames_received.inc();
        ev.kind = FanInEvent::Kind::Frame;
        ++conn.undelivered;
        ready_.push_back(std::move(ev));
        continue;
      }
      if (status == FrameStatus::BadChecksum) {
        m.frames_corrupt.inc();
        ev.kind = FanInEvent::Kind::Corrupt;
        ready_.push_back(std::move(ev));
        continue;
      }
      if (status == FrameStatus::NeedMore) break;
      // Desynchronized stream: unrecoverable.
      HACCS_WARN << "fanin: fatal frame error from " << conn.peer << ": "
                 << to_string(status);
      drop_conn(id, /*emit_closed=*/true, /*shed=*/false);
      return;
    }
    if (conn.undelivered >= options_.max_inbound_frames) {
      conn.read_suppressed = true;
      sync_interest(conn);
    }
  }
}

bool FanInServer::flush_conn(Conn& conn) {
  NetMetrics& m = NetMetrics::get();
  while (!conn.outbound.empty()) {
    const std::vector<std::uint8_t>& front = conn.outbound.front();
    const ssize_t n =
        ::send(conn.fd, front.data() + conn.out_offset,
               front.size() - conn.out_offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;
    }
    m.bytes_sent.inc(static_cast<std::uint64_t>(n));
    conn.out_offset += static_cast<std::size_t>(n);
    if (conn.out_offset == front.size()) {
      m.frames_sent.inc();
      m.frame_bytes.observe(static_cast<double>(front.size()));
      conn.outbound.pop_front();
      conn.out_offset = 0;
    }
  }
  return true;
}

void FanInServer::sync_interest(Conn& conn) {
  group_.update(conn.fd, !conn.read_suppressed, !conn.outbound.empty());
}

bool FanInServer::send(std::uint64_t id, const Frame& frame) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return false;
  Conn& conn = it->second;
  if (conn.outbound.size() >= options_.max_outbound_frames) {
    // Slow-peer shedding: the peer is not draining its socket; holding more
    // frames for it would grow without bound. Closing surfaces as a crash
    // to the aggregation layer, which re-covers the work like any other
    // dead peer.
    HACCS_WARN << "fanin: shedding slow peer " << conn.peer << " ("
               << conn.outbound.size() << " frames queued)";
    drop_conn(id, /*emit_closed=*/true, /*shed=*/true);
    return false;
  }
  conn.outbound.push_back(encode_frame(frame));
  if (!flush_conn(conn)) {
    drop_conn(id, /*emit_closed=*/true, /*shed=*/false);
    return false;
  }
  sync_interest(conn);
  return true;
}

void FanInServer::close_conn(std::uint64_t id) {
  drop_conn(id, /*emit_closed=*/false, /*shed=*/false);
}

void FanInServer::drop_conn(std::uint64_t id, bool emit_closed, bool shed) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  group_.remove(conn.fd);
  by_fd_.erase(conn.fd);
  ::close(conn.fd);
  if (emit_closed) {
    FanInEvent ev;
    ev.kind = FanInEvent::Kind::Closed;
    ev.conn = id;
    ev.shed = shed;
    ready_.push_back(std::move(ev));
  }
  conns_.erase(it);
}

std::size_t FanInServer::outbound_queued(std::uint64_t id) const {
  const auto it = conns_.find(id);
  return it == conns_.end() ? 0 : it->second.outbound.size();
}

std::size_t FanInServer::inbound_queued(std::uint64_t id) const {
  const auto it = conns_.find(id);
  return it == conns_.end() ? 0 : it->second.undelivered;
}

std::string FanInServer::peer_name(std::uint64_t id) const {
  const auto it = conns_.find(id);
  return it == conns_.end() ? "?" : it->second.peer;
}

}  // namespace haccs::net
