#include "src/hier/mid_tier.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "src/common/logging.hpp"
#include "src/net/wire.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/obs.hpp"

namespace haccs::hier {

namespace {

/// Poll slice for the alternating upstream/downstream pump: short enough
/// that neither side starves the other, long enough not to spin.
constexpr int kSliceMs = 5;

std::int64_t steady_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Per-tier wire/fold telemetry (§5j): `hier_upstream_bytes_*` count exactly
/// the framed bytes this aggregator exchanged with the root, so a clean
/// 3-tier run's per-tier byte accounting sums to the root's transport
/// counters (asserted by the serving smoke).
struct HierMetrics {
  obs::Counter& rounds = obs::Registry::global().counter("hier_rounds_total");
  obs::Counter& folded =
      obs::Registry::global().counter("hier_updates_folded_total");
  obs::Counter& rejected =
      obs::Registry::global().counter("hier_updates_rejected_total");
  obs::Counter& jobs_relayed =
      obs::Registry::global().counter("hier_jobs_relayed_total");
  obs::Counter& worker_failures =
      obs::Registry::global().counter("hier_worker_failures_total");
  obs::Counter& upstream_sent =
      obs::Registry::global().counter("hier_upstream_bytes_sent_total");
  obs::Counter& upstream_received =
      obs::Registry::global().counter("hier_upstream_bytes_received_total");

  static HierMetrics& get() {
    static HierMetrics metrics;
    return metrics;
  }
};

std::size_t frame_wire_bytes(const net::Frame& frame) {
  return net::kFrameHeaderBytes + frame.payload.size();
}

}  // namespace

MidTierAggregator::MidTierAggregator(const MidTierConfig& config)
    : config_(config), fanin_(config.fanin) {
  if (config_.num_aggs == 0 || config_.num_workers == 0 ||
      config_.num_workers % config_.num_aggs != 0) {
    throw std::invalid_argument(
        "MidTierAggregator: num_aggs must evenly divide num_workers");
  }
  if (config_.agg_id >= config_.num_aggs) {
    throw std::invalid_argument("MidTierAggregator: agg_id out of range");
  }
  if (config_.chunk_params == 0) {
    throw std::invalid_argument("MidTierAggregator: chunk_params must be > 0");
  }
  const std::uint32_t per = config_.num_workers / config_.num_aggs;
  worker_begin_ = config_.agg_id * per;
  worker_end_ = worker_begin_ + per;
  conn_of_worker_.assign(per, 0);
  pending_.resize(per);
}

void MidTierAggregator::note_heard(std::size_t local) {
  if (fl::ServingStatusBoard* board = config_.status_board) {
    if (local < board->num_workers()) {
      board->worker(local).last_heard_ms.store(steady_ms(),
                                               std::memory_order_relaxed);
    }
  }
}

void MidTierAggregator::sync_board(std::size_t local) {
  fl::ServingStatusBoard* board = config_.status_board;
  if (!board || local >= board->num_workers()) return;
  auto& row = board->worker(local);
  row.outstanding.store(pending_[local].size(), std::memory_order_relaxed);
  row.alive.store(conn_of_worker_[local] != 0, std::memory_order_relaxed);
  row.queued.store(fanin_.outbound_queued(conn_of_worker_[local]),
                   std::memory_order_relaxed);
}

bool MidTierAggregator::send_upstream(net::Transport& upstream,
                                      const net::Frame& frame) {
  const auto status = upstream.send(frame);
  if (status != net::TransportStatus::Ok) {
    HACCS_WARN << "agg " << config_.agg_id
               << ": upstream send failed: " << net::to_string(status);
    return false;
  }
  const std::size_t bytes = frame_wire_bytes(frame);
  stats_.upstream_bytes_sent += bytes;
  HierMetrics::get().upstream_sent.inc(bytes);
  return true;
}

void MidTierAggregator::broadcast_downstream(const net::Frame& frame) {
  for (std::uint64_t conn : conn_of_worker_) {
    if (conn != 0) fanin_.send(conn, frame);
  }
}

bool MidTierAggregator::handshake(net::Transport& upstream) {
  const std::int64_t deadline = config_.handshake_timeout_ms > 0
                                    ? steady_ms() + config_.handshake_timeout_ms
                                    : -1;
  auto complete = [&] {
    for (std::uint64_t conn : conn_of_worker_) {
      if (conn == 0) return false;
    }
    for (const auto& [conn, owed] : summaries_pending_) {
      if (owed > 0) return false;
    }
    return true;
  };
  while (!complete()) {
    if (deadline >= 0 && steady_ms() > deadline) {
      HACCS_WARN << "agg " << config_.agg_id
                 << ": handshake timeout; workers connected: "
                 << fanin_.connection_count() << "/" << conn_of_worker_.size();
      return false;
    }
    net::FanInEvent ev;
    if (fanin_.poll(&ev, 50)) handle_downstream(upstream, ev);
  }

  net::TopologyHelloMsg hello;
  hello.agg_id = config_.agg_id;
  hello.num_aggs = config_.num_aggs;
  hello.worker_begin = worker_begin_;
  hello.worker_end = worker_end_;
  hello.num_clients = total_clients_;
  if (!send_upstream(upstream, net::encode_topology_hello(hello))) return false;
  for (const net::Frame& frame : summary_frames_) {
    if (!send_upstream(upstream, frame)) return false;
  }
  summary_frames_.clear();
  summary_frames_.shrink_to_fit();
  handshook_ = true;
  HACCS_INFO << "agg " << config_.agg_id << ": subtree up (workers ["
             << worker_begin_ << ", " << worker_end_ << "), " << total_clients_
             << " clients)";
  return true;
}

bool MidTierAggregator::run(net::Transport& upstream) {
  if (!handshake(upstream)) return false;
  std::int64_t next_heartbeat = config_.heartbeat_interval_ms > 0
                                    ? steady_ms() + config_.heartbeat_interval_ms
                                    : -1;
  for (;;) {
    bool busy = false;
    // Upstream: drain whatever the root has queued.
    for (;;) {
      net::Frame frame;
      const auto status = upstream.recv(&frame, 0);
      if (status == net::TransportStatus::Ok) {
        busy = true;
        const std::size_t bytes = frame_wire_bytes(frame);
        stats_.upstream_bytes_received += bytes;
        HierMetrics::get().upstream_received.inc(bytes);
        if (frame.type == net::MessageType::Shutdown) {
          broadcast_downstream(net::encode_shutdown());
          // Grace window: relay the workers' final TraceShards upstream
          // before the root stops draining us.
          const std::int64_t drain_deadline = steady_ms() + 1000;
          while (fanin_.connection_count() > 0 &&
                 steady_ms() < drain_deadline) {
            net::FanInEvent ev;
            if (fanin_.poll(&ev, 20)) handle_downstream(upstream, ev);
          }
          return true;
        }
        if (!handle_upstream(upstream, frame)) return false;
        continue;
      }
      if (status == net::TransportStatus::Corrupt) {
        // Lost control traffic; the round deadline absorbs the damage.
        busy = true;
        continue;
      }
      if (status == net::TransportStatus::Closed) {
        HACCS_WARN << "agg " << config_.agg_id
                   << ": upstream closed; shutting subtree down";
        broadcast_downstream(net::encode_shutdown());
        return false;
      }
      break;  // Timeout: nothing pending
    }
    // Downstream: drain ready worker events.
    for (;;) {
      net::FanInEvent ev;
      if (!fanin_.poll(&ev, 0)) break;
      busy = true;
      handle_downstream(upstream, ev);
    }
    // Round bookkeeping: settle when every expected client is accounted
    // for, or when the deadline fails the stragglers.
    if (round_.open) {
      if (round_.deadline_ms >= 0 && steady_ms() > round_.deadline_ms) {
        HACCS_WARN << "agg " << config_.agg_id << ": round " << round_.epoch
                   << " deadline; failing "
                   << round_.expected.size() - round_.settled_count
                   << " straggler(s)";
        fail_unsettled(fl::FailureKind::Timeout);
      }
      if (round_.settled_count == round_.expected.size() && !round_.implicit) {
        if (!settle_round(upstream)) return false;
      }
    }
    if (next_heartbeat >= 0 && steady_ms() >= next_heartbeat) {
      net::HeartbeatMsg beat;
      beat.sender_id = config_.agg_id;
      beat.epoch = round_.epoch;
      if (!send_upstream(upstream, net::encode_heartbeat(beat))) return false;
      next_heartbeat = steady_ms() + config_.heartbeat_interval_ms;
    }
    if (!busy) {
      // Idle: block briefly on the fan-in side (which also flushes pending
      // outbound frames); the upstream link is re-polled next iteration.
      net::FanInEvent ev;
      if (fanin_.poll(&ev, kSliceMs)) handle_downstream(upstream, ev);
    }
  }
}

bool MidTierAggregator::handle_upstream(net::Transport& /*upstream*/,
                                        const net::Frame& frame) {
  switch (frame.type) {
    case net::MessageType::SelectNotice:
      try {
        open_round(net::decode_select_notice(frame));
      } catch (const net::WireError& e) {
        HACCS_WARN << "agg " << config_.agg_id
                   << ": bad SelectNotice: " << e.what();
      }
      break;
    case net::MessageType::TrainJob:
      relay_train_job(frame);
      break;
    case net::MessageType::EvalReport:
      // Round-committed marker: relay so workers ship their trace shards.
      broadcast_downstream(frame);
      break;
    default:
      break;  // Heartbeat etc.: informational
  }
  return true;
}

void MidTierAggregator::open_round(const net::SelectNoticeMsg& msg) {
  if (round_.open) {
    HACCS_WARN << "agg " << config_.agg_id << ": round " << round_.epoch
               << " abandoned (" << round_.settled_count << "/"
               << round_.expected.size() << " settled) for round " << msg.epoch;
  }
  round_ = Round{};
  round_.open = true;
  round_.epoch = msg.epoch;
  for (std::uint32_t id : msg.clients) {
    const std::uint32_t w = id % config_.num_workers;
    if (w < worker_begin_ || w >= worker_end_) continue;  // not our subtree
    register_client(id);
  }
  if (config_.round_timeout_ms > 0) {
    round_.deadline_ms = steady_ms() + config_.round_timeout_ms;
  }
  for (auto& queue : pending_) queue.clear();
  if (fl::ServingStatusBoard* board = config_.status_board) {
    board->round.store(round_.epoch, std::memory_order_relaxed);
    board->dispatched.store(round_.expected.size(), std::memory_order_relaxed);
    board->delivered.store(0, std::memory_order_relaxed);
    board->collecting.store(true, std::memory_order_relaxed);
    for (std::size_t l = 0; l < conn_of_worker_.size(); ++l) sync_board(l);
  }
}

std::size_t MidTierAggregator::register_client(std::uint32_t client_id) {
  const auto it = round_.index_of.find(client_id);
  if (it != round_.index_of.end()) return it->second;
  const std::size_t index = round_.expected.size();
  round_.expected.push_back(client_id);
  net::SubtreeClientStat stat;
  stat.client_id = client_id;
  stat.delivered = 0;
  stat.failure = static_cast<std::uint8_t>(fl::FailureKind::Crash);
  round_.stats.push_back(stat);
  round_.settled.push_back(0);
  round_.index_of.emplace(client_id, index);
  return index;
}

void MidTierAggregator::relay_train_job(const net::Frame& frame) {
  net::TrainJobMsg msg;
  try {
    msg = net::decode_train_job(frame);
  } catch (const net::WireError& e) {
    HACCS_WARN << "agg " << config_.agg_id << ": bad TrainJob: " << e.what();
    return;
  }
  if (!round_.open) {
    // The SelectNotice was lost (hostile link): open an implicit round
    // scoped by the job's epoch. Its client set grows in arrival order —
    // which IS slot order, since the root relays jobs in slot order over
    // one in-order link — and it settles only on the deadline, because the
    // expected set is never known to be complete.
    round_ = Round{};
    round_.open = true;
    round_.implicit = true;
    round_.epoch = msg.epoch;
    if (config_.round_timeout_ms > 0) {
      round_.deadline_ms = steady_ms() + config_.round_timeout_ms;
    }
    for (auto& queue : pending_) queue.clear();
  }
  if (msg.epoch != round_.epoch) return;  // stale round — drop
  if (!round_.have_global) {
    round_.global = std::move(msg.params);
    round_.have_global = true;
  }
  const std::uint32_t w = msg.client_id % config_.num_workers;
  if (w < worker_begin_ || w >= worker_end_) {
    HACCS_WARN << "agg " << config_.agg_id << ": TrainJob for client "
               << msg.client_id << " outside subtree — dropped";
    return;
  }
  const std::size_t index = register_client(msg.client_id);
  const std::size_t local = w - worker_begin_;
  const std::uint64_t conn = conn_of_worker_[local];
  if (conn == 0) {
    // The worker is gone; fail the client now rather than on the deadline.
    if (!round_.settled[index]) {
      round_.stats[index].failure =
          static_cast<std::uint8_t>(fl::FailureKind::Crash);
      settle_slot(index);
      advance_fold();
    }
    return;
  }
  pending_[local].push_back(msg.client_id);
  HierMetrics::get().jobs_relayed.inc();
  // A false return means the peer was just shed; the Closed event the next
  // poll delivers fails this client along with the rest of the queue.
  fanin_.send(conn, frame);
  sync_board(local);
}

void MidTierAggregator::handle_downstream(net::Transport& upstream,
                                          const net::FanInEvent& ev) {
  using Kind = net::FanInEvent::Kind;
  switch (ev.kind) {
    case Kind::Accepted:
      break;  // identity arrives with the Hello frame
    case Kind::Frame: {
      const auto known = worker_of_conn_.find(ev.conn);
      if (known != worker_of_conn_.end()) note_heard(known->second);
      switch (ev.frame.type) {
        case net::MessageType::Hello: {
          net::HelloMsg hello;
          try {
            hello = net::decode_hello(ev.frame);
          } catch (const net::WireError& e) {
            HACCS_WARN << "agg " << config_.agg_id
                       << ": bad Hello: " << e.what();
            fanin_.close_conn(ev.conn);
            return;
          }
          if (hello.worker_id < worker_begin_ ||
              hello.worker_id >= worker_end_) {
            HACCS_WARN << "agg " << config_.agg_id << ": worker "
                       << hello.worker_id << " outside subtree — refused";
            fanin_.close_conn(ev.conn);
            return;
          }
          const std::size_t local = hello.worker_id - worker_begin_;
          if (const std::uint64_t old = conn_of_worker_[local];
              old != 0 && old != ev.conn) {
            // Reconnect: the fresh session replaces the stale one.
            worker_of_conn_.erase(old);
            summaries_pending_.erase(old);
            fanin_.close_conn(old);
          }
          conn_of_worker_[local] = ev.conn;
          worker_of_conn_[ev.conn] = local;
          summaries_pending_[ev.conn] = hello.num_clients;
          if (fl::ServingStatusBoard* board = config_.status_board) {
            if (local < board->num_workers()) {
              board->worker(local).sessions.fetch_add(1,
                                                      std::memory_order_relaxed);
            }
          }
          note_heard(local);
          sync_board(local);
          break;
        }
        case net::MessageType::Summary: {
          auto owed = summaries_pending_.find(ev.conn);
          if (owed == summaries_pending_.end() || owed->second == 0) {
            break;  // unexpected — drop
          }
          --owed->second;
          if (!handshook_) {
            summary_frames_.push_back(ev.frame);
            ++total_clients_;
          }
          // Post-handshake (reconnect) summaries were already relayed.
          break;
        }
        case net::MessageType::ClientUpdate:
          try {
            handle_update(net::decode_client_update(ev.frame));
          } catch (const net::WireError& e) {
            HACCS_WARN << "agg " << config_.agg_id
                       << ": undecodable ClientUpdate: " << e.what();
            if (known != worker_of_conn_.end()) {
              fail_front(known->second, fl::FailureKind::CorruptUpdate);
            }
          }
          break;
        case net::MessageType::TraceShard:
          // Worker spans ride through unchanged; the root re-bases their
          // clocks exactly as it does for directly-attached workers.
          send_upstream(upstream, ev.frame);
          break;
        default:
          break;  // Heartbeat: liveness noted above
      }
      break;
    }
    case Kind::Corrupt: {
      const auto known = worker_of_conn_.find(ev.conn);
      if (known != worker_of_conn_.end()) {
        note_heard(known->second);
        fail_front(known->second, fl::FailureKind::CorruptUpdate);
      }
      break;
    }
    case Kind::Closed: {
      const auto known = worker_of_conn_.find(ev.conn);
      if (known == worker_of_conn_.end()) return;
      const std::size_t local = known->second;
      HACCS_WARN << "agg " << config_.agg_id << ": worker "
                 << worker_begin_ + local
                 << (ev.shed ? " shed (slow peer); " : " closed; ")
                 << pending_[local].size() << " job(s) abandoned";
      worker_of_conn_.erase(known);
      summaries_pending_.erase(ev.conn);
      conn_of_worker_[local] = 0;
      ++stats_.worker_failures;
      HierMetrics::get().worker_failures.inc();
      fail_worker_pending(local, fl::FailureKind::Crash);
      sync_board(local);
      break;
    }
  }
}

void MidTierAggregator::handle_update(net::ClientUpdateMsg&& msg) {
  if (!round_.open || msg.epoch != round_.epoch) return;  // stale — drop
  const auto it = round_.index_of.find(msg.client_id);
  if (it == round_.index_of.end()) return;
  const std::size_t index = it->second;
  if (round_.settled[index]) return;  // duplicate — drop
  // The update arrived: it is no longer the corrupt-attribution candidate.
  const std::size_t local =
      (msg.client_id % config_.num_workers) - worker_begin_;
  auto& queue = pending_[local];
  const auto pos = std::find(queue.begin(), queue.end(), msg.client_id);
  if (pos != queue.end()) queue.erase(pos);
  round_.stash.emplace(msg.client_id, std::move(msg));
  advance_fold();
  sync_board(local);
}

void MidTierAggregator::advance_fold() {
  while (round_.next_fold < round_.expected.size()) {
    const std::size_t index = round_.next_fold;
    if (round_.settled[index]) {
      ++round_.next_fold;
      continue;
    }
    const auto it = round_.stash.find(round_.expected[index]);
    if (it == round_.stash.end()) break;  // frontier still outstanding
    fold_update(index, it->second);
    round_.stash.erase(it);
    ++round_.next_fold;
  }
}

void MidTierAggregator::fold_update(std::size_t index,
                                    net::ClientUpdateMsg& msg) {
  net::SubtreeClientStat& stat = round_.stats[index];
  stat.average_loss = msg.average_loss;
  stat.final_loss = msg.final_loss;
  stat.batches = msg.batches;
  stat.sample_count = msg.sample_count;
  // The mid tier folds Dense only (ROADMAP "non-Dense partial folds"): the
  // upstream bit-identity proof is Dense-scoped, so a TopK/Int8 update is
  // rejected per-client — counted in waste accounting — rather than folded
  // through an unproven reconstruction.
  bool ok = round_.have_global &&
            msg.update.kind == net::UpdateKind::Dense &&
            msg.update.size == round_.global.size();
  if (ok) {
    // Reconstruction identical to the flat dispatcher's handle_frame: Dense
    // carries the updated parameters directly.
    std::vector<float> updated = std::move(msg.update.dense);
    ok = fl::fold_into_partial(round_.partial, updated, round_.global,
                               static_cast<double>(msg.sample_count),
                               config_.max_update_norm);
  }
  if (ok) {
    stat.delivered = 1;
    ++stats_.folded;
    HierMetrics::get().folded.inc();
    if (fl::ServingStatusBoard* board = config_.status_board) {
      board->delivered.fetch_add(1, std::memory_order_relaxed);
      const std::size_t local =
          (stat.client_id % config_.num_workers) - worker_begin_;
      if (local < board->num_workers()) {
        board->worker(local).updates.fetch_add(1, std::memory_order_relaxed);
      }
    }
  } else {
    // Same accounting as the engine's own validation rejection.
    stat.delivered = 0;
    stat.failure = static_cast<std::uint8_t>(fl::FailureKind::CorruptUpdate);
    ++stats_.rejected;
    HierMetrics::get().rejected.inc();
  }
  settle_slot(index);
}

void MidTierAggregator::settle_slot(std::size_t index) {
  round_.settled[index] = 1;
  ++round_.settled_count;
}

void MidTierAggregator::fail_front(std::size_t local, fl::FailureKind kind) {
  auto& queue = pending_[local];
  while (!queue.empty()) {
    const std::uint32_t client = queue.front();
    queue.pop_front();
    const auto it = round_.index_of.find(client);
    if (it == round_.index_of.end() || round_.settled[it->second]) continue;
    round_.stats[it->second].failure = static_cast<std::uint8_t>(kind);
    settle_slot(it->second);
    advance_fold();
    sync_board(local);
    return;
  }
}

void MidTierAggregator::fail_worker_pending(std::size_t local,
                                            fl::FailureKind kind) {
  while (!pending_[local].empty()) fail_front(local, kind);
}

void MidTierAggregator::fail_unsettled(fl::FailureKind kind) {
  // Stashed updates arrived in time — fail only the truly missing clients,
  // then let the fold frontier pass the failures and fold the stash.
  for (std::size_t i = 0; i < round_.expected.size(); ++i) {
    if (round_.settled[i]) continue;
    if (round_.stash.count(round_.expected[i]) > 0) continue;
    round_.stats[i].failure = static_cast<std::uint8_t>(kind);
    settle_slot(i);
  }
  advance_fold();
  for (std::size_t i = 0; i < round_.expected.size(); ++i) {
    if (round_.settled[i]) continue;
    round_.stats[i].failure = static_cast<std::uint8_t>(kind);
    settle_slot(i);
  }
  for (auto& queue : pending_) queue.clear();
  round_.stash.clear();
  round_.implicit = false;  // the expected set is final now — settle
}

bool MidTierAggregator::settle_round(net::Transport& upstream) {
  obs::Span span("subtree_settle", "hier");
  std::uint64_t n_chunks = 0;
  if (round_.partial.updates > 0) {
    const std::vector<double>& sum = round_.partial.sum;
    for (std::size_t offset = 0; offset < sum.size();
         offset += config_.chunk_params) {
      const std::size_t len =
          std::min(config_.chunk_params, sum.size() - offset);
      net::SubtreeChunkMsg chunk;
      chunk.epoch = round_.epoch;
      chunk.agg_id = config_.agg_id;
      chunk.offset = offset;
      chunk.data.assign(
          sum.begin() + static_cast<std::ptrdiff_t>(offset),
          sum.begin() + static_cast<std::ptrdiff_t>(offset + len));
      if (!send_upstream(upstream, net::encode_subtree_chunk(chunk))) {
        return false;
      }
      ++n_chunks;
    }
  }
  net::SubtreeUpdateMsg trailer;
  trailer.epoch = round_.epoch;
  trailer.agg_id = config_.agg_id;
  trailer.weight = round_.partial.weight;
  trailer.n_chunks = n_chunks;
  trailer.stats = std::move(round_.stats);
  if (!send_upstream(upstream, net::encode_subtree_update(trailer))) {
    return false;
  }
  ++stats_.rounds;
  HierMetrics::get().rounds.inc();
  round_ = Round{};
  if (fl::ServingStatusBoard* board = config_.status_board) {
    board->collecting.store(false, std::memory_order_relaxed);
  }
  return true;
}

}  // namespace haccs::hier
