#include "src/hier/tree_dispatcher.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "src/common/logging.hpp"
#include "src/net/wire.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/obs.hpp"

namespace haccs::hier {

namespace {

/// Per-aggregator poll slice while collecting (same cadence as the flat
/// serving path).
constexpr int kSliceMs = 10;

/// Chunks stashed per aggregator before the root stops reading from it —
/// TCP backpressure then holds the data at the sender, which is what bounds
/// root memory to O(chunk × aggregators).
constexpr std::size_t kMaxStashChunks = 8;

std::int64_t steady_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct TreeMetrics {
  obs::Counter& chunks =
      obs::Registry::global().counter("hier_root_chunks_folded_total");
  obs::Counter& torn =
      obs::Registry::global().counter("hier_rounds_torn_total");
  obs::Counter& salvaged =
      obs::Registry::global().counter("hier_aggs_salvaged_total");

  static TreeMetrics& get() {
    static TreeMetrics metrics;
    return metrics;
  }
};

}  // namespace

TreeDispatcher::TreeDispatcher(std::vector<net::Transport*> aggs,
                               TreeDispatcherConfig config)
    : aggs_(std::move(aggs)), config_(std::move(config)) {
  if (aggs_.empty()) {
    throw std::invalid_argument("TreeDispatcher: no aggregators");
  }
  if (config_.num_workers == 0 ||
      config_.num_workers % aggs_.size() != 0) {
    throw std::invalid_argument(
        "TreeDispatcher: aggregator count must evenly divide num_workers");
  }
  dead_.assign(aggs_.size(), false);
  partials_.assign(1, fl::PartialAggregate{});
}

std::size_t TreeDispatcher::group_of(std::size_t client_id) const {
  return (client_id % config_.num_workers) /
         (config_.num_workers / aggs_.size());
}

void TreeDispatcher::set_dead(std::size_t a, bool dead) {
  if (dead_[a] == dead) return;
  dead_[a] = dead;
  if (config_.on_liveness) config_.on_liveness(a, !dead);
  sync_board(a);
}

void TreeDispatcher::sync_board(std::size_t a) {
  if (fl::ServingStatusBoard* board = config_.status_board) {
    if (a < board->num_workers()) {
      board->worker(a).alive.store(!dead_[a], std::memory_order_relaxed);
    }
  }
}

bool TreeDispatcher::agg_finished(const AggRound& round,
                                  std::size_t model_size) const {
  if (!round.trailer) return false;
  if (round.update.n_chunks == 0) return true;
  return round.folded_chunks == round.update.n_chunks &&
         round.folded_upto == model_size;
}

bool TreeDispatcher::gate_open(const std::vector<AggRound>& rounds,
                               std::size_t a, std::uint64_t end) const {
  for (std::size_t p = 0; p < a; ++p) {
    const AggRound& prev = rounds[p];
    if (!prev.participating) continue;  // contributes nothing — skip
    if (prev.trailer && prev.update.n_chunks == 0) continue;
    if (prev.folded_upto < end) return false;
  }
  return true;
}

void TreeDispatcher::try_fold(std::vector<AggRound>& rounds,
                              std::vector<double>& acc) {
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t a = 0; a < rounds.size(); ++a) {
      AggRound& round = rounds[a];
      if (!round.participating) continue;
      const auto it = round.stash.find(round.folded_upto);
      if (it == round.stash.end()) continue;  // next chunk not here yet
      const std::uint64_t end = round.folded_upto + it->second.size();
      if (end > acc.size()) {
        HACCS_WARN << "tree: agg " << a << " chunk overruns the model ("
                   << end << " > " << acc.size() << ") — dropped";
        round.stash.erase(it);
        continue;
      }
      if (!gate_open(rounds, a, end)) continue;
      const std::vector<double>& data = it->second;
      for (std::size_t k = 0; k < data.size(); ++k) {
        acc[round.folded_upto + k] += data[k];
      }
      round.folded_upto = end;
      ++round.folded_chunks;
      round.stash.erase(it);
      TreeMetrics::get().chunks.inc();
      progress = true;
    }
  }
}

void TreeDispatcher::execute(std::span<const fl::TrainJobSpec> jobs,
                             const std::vector<float>& global_params,
                             std::vector<fl::TrainOutcome>& outcomes) {
  const std::size_t num_aggs = aggs_.size();
  const std::uint64_t epoch = jobs.empty() ? 0 : jobs.front().epoch;
  partials_.assign(1, fl::PartialAggregate{});
  std::vector<AggRound> rounds(num_aggs);

  if (fl::ServingStatusBoard* board = config_.status_board) {
    board->round.store(epoch, std::memory_order_relaxed);
    board->dispatched.store(jobs.size(), std::memory_order_relaxed);
    board->delivered.store(0, std::memory_order_relaxed);
    board->collecting.store(true, std::memory_order_relaxed);
    for (std::size_t a = 0; a < num_aggs; ++a) sync_board(a);
  }

  for (std::size_t j = 0; j < jobs.size(); ++j) {
    rounds[group_of(jobs[j].client_id)].job_indices.push_back(j);
  }

  auto fail_agg_jobs = [&](std::size_t a, fl::FailureKind kind) {
    for (const std::size_t j : rounds[a].job_indices) {
      fl::TrainOutcome& out = outcomes[jobs[j].slot];
      if (out.delivered || out.pre_aggregated) continue;
      out.delivered = false;
      out.failure = kind;
    }
  };

  const obs::TraceContext trace_ctx =
      obs::trace_enabled() ? obs::round_context() : obs::TraceContext{};

  // Fan-out: SelectNotice scopes the subtree round (and fixes the fold
  // order), then the TrainJobs follow in slot order down the same link.
  for (std::size_t a = 0; a < num_aggs; ++a) {
    AggRound& round = rounds[a];
    if (round.job_indices.empty()) continue;
    if (dead_[a]) {
      fail_agg_jobs(a, fl::FailureKind::Crash);
      continue;
    }
    net::SelectNoticeMsg notice;
    notice.epoch = epoch;
    for (const std::size_t j : round.job_indices) {
      notice.clients.push_back(static_cast<std::uint32_t>(jobs[j].client_id));
    }
    const auto status = aggs_[a]->send(net::encode_select_notice(notice),
                                       config_.send_timeout_ms);
    if (status != net::TransportStatus::Ok) {
      if (status == net::TransportStatus::Closed) set_dead(a, true);
      fail_agg_jobs(a, status == net::TransportStatus::Timeout
                           ? fl::FailureKind::Timeout
                           : fl::FailureKind::Crash);
      continue;
    }
    bool alive = true;
    for (const std::size_t j : round.job_indices) {
      const fl::TrainJobSpec& job = jobs[j];
      net::TrainJobMsg msg;
      msg.epoch = job.epoch;
      msg.client_id = static_cast<std::uint32_t>(job.client_id);
      msg.rng_seed = job.rng_seed;
      msg.algorithm = config_.work.fedprox ? 1 : 0;
      msg.fedprox_mu = config_.work.fedprox_mu;
      msg.work_fraction = job.work_fraction;
      msg.local_epochs = config_.work.local.epochs;
      msg.batch_size = config_.work.local.batch_size;
      msg.learning_rate = config_.work.local.sgd.learning_rate;
      msg.momentum = config_.work.local.sgd.momentum;
      msg.weight_decay = config_.work.local.sgd.weight_decay;
      msg.compression_kind =
          static_cast<std::uint8_t>(config_.work.compression.kind);
      msg.topk_fraction = config_.work.compression.topk_fraction;
      msg.error_feedback = config_.work.compression.error_feedback ? 1 : 0;
      msg.params = global_params;
      msg.trace = trace_ctx;
      const auto js =
          aggs_[a]->send(net::encode_train_job(msg), config_.send_timeout_ms);
      if (js != net::TransportStatus::Ok) {
        if (js == net::TransportStatus::Closed) set_dead(a, true);
        fail_agg_jobs(a, js == net::TransportStatus::Timeout
                             ? fl::FailureKind::Timeout
                             : fl::FailureKind::Crash);
        alive = false;
        break;
      }
    }
    round.participating = alive;
  }

  // Collection: fold gated chunks as they arrive.
  std::vector<double> acc(global_params.size(), 0.0);
  const std::int64_t start = steady_ms();
  std::vector<std::int64_t> last_heard(num_aggs, start);
  bool torn = false;

  auto all_done = [&] {
    for (std::size_t a = 0; a < num_aggs; ++a) {
      if (rounds[a].participating &&
          !agg_finished(rounds[a], global_params.size())) {
        return false;
      }
    }
    return true;
  };
  auto drop_agg = [&](std::size_t a, fl::FailureKind kind) {
    AggRound& round = rounds[a];
    if (round.folded_upto > 0 || round.folded_chunks > 0) {
      // Its partial sum is already mixed into the shared accumulator and
      // cannot be unfolded — the whole round tears.
      torn = true;
      return;
    }
    // Salvage: nothing folded, so this subtree simply contributed nothing —
    // bitwise the flat run with those workers dead.
    round.participating = false;
    round.trailer = false;
    round.stash.clear();
    fail_agg_jobs(a, kind);
    TreeMetrics::get().salvaged.inc();
  };

  while (!torn && !all_done()) {
    const std::int64_t now = steady_ms();
    if (config_.recv_timeout_ms >= 0 &&
        now - start > config_.recv_timeout_ms) {
      HACCS_WARN << "tree: round " << epoch << " collection budget ("
                 << config_.recv_timeout_ms << " ms) exhausted";
      for (std::size_t a = 0; a < num_aggs; ++a) {
        if (rounds[a].participating &&
            !agg_finished(rounds[a], global_params.size())) {
          drop_agg(a, fl::FailureKind::Timeout);
        }
      }
      break;
    }
    for (std::size_t a = 0; a < num_aggs && !torn; ++a) {
      AggRound& round = rounds[a];
      if (!round.participating ||
          agg_finished(round, global_params.size())) {
        continue;
      }
      if (round.stash.size() >= kMaxStashChunks) {
        // Ahead of the fold gate: stop reading so TCP holds the bytes at
        // the sender instead of growing root memory.
        try_fold(rounds, acc);
        continue;
      }
      net::Frame frame;
      const auto status = aggs_[a]->recv(&frame, kSliceMs);
      switch (status) {
        case net::TransportStatus::Ok: {
          last_heard[a] = steady_ms();
          if (fl::ServingStatusBoard* board = config_.status_board) {
            if (a < board->num_workers()) {
              board->worker(a).last_heard_ms.store(last_heard[a],
                                                   std::memory_order_relaxed);
            }
          }
          switch (frame.type) {
            case net::MessageType::SubtreeChunk:
              try {
                auto msg = net::decode_subtree_chunk(frame);
                if (msg.epoch != epoch) break;  // stale round — drop
                round.stash.emplace(msg.offset, std::move(msg.data));
                try_fold(rounds, acc);
              } catch (const net::WireError& e) {
                HACCS_WARN << "tree: bad SubtreeChunk from agg " << a << ": "
                           << e.what();
              }
              break;
            case net::MessageType::SubtreeUpdate:
              try {
                auto msg = net::decode_subtree_update(frame);
                if (msg.epoch != epoch) break;
                round.update = std::move(msg);
                round.trailer = true;
                try_fold(rounds, acc);  // n_chunks == 0 may open gates
              } catch (const net::WireError& e) {
                HACCS_WARN << "tree: bad SubtreeUpdate from agg " << a << ": "
                           << e.what();
              }
              break;
            case net::MessageType::TraceShard:
              if (config_.on_trace_shard) {
                try {
                  config_.on_trace_shard(net::decode_trace_shard(frame));
                } catch (const net::WireError& e) {
                  HACCS_WARN << "tree: undecodable TraceShard: " << e.what();
                }
              }
              break;
            default:
              break;  // Heartbeat: liveness refreshed above
          }
          break;
        }
        case net::TransportStatus::Corrupt:
          // Proof of life, but the frame (possibly a chunk) is gone — the
          // aggregator can no longer finish; the budget tears the round.
          last_heard[a] = steady_ms();
          HACCS_WARN << "tree: corrupt frame from agg " << a;
          break;
        case net::TransportStatus::Closed:
          HACCS_WARN << "tree: agg " << a << " ("
                     << aggs_[a]->peer() << ") closed";
          set_dead(a, true);
          drop_agg(a, fl::FailureKind::Crash);
          break;
        case net::TransportStatus::Timeout:
          if (config_.heartbeat_timeout_ms > 0 &&
              steady_ms() - last_heard[a] > config_.heartbeat_timeout_ms) {
            HACCS_WARN << "tree: agg " << a << " silent for > "
                       << config_.heartbeat_timeout_ms
                       << " ms; declaring dead";
            set_dead(a, true);
            drop_agg(a, fl::FailureKind::Crash);
          }
          break;
      }
    }
  }

  if (torn) {
    // Fail every slot: total weight goes to zero and the engine leaves the
    // model untouched — a torn round is a no-op, never a half-aggregate.
    TreeMetrics::get().torn.inc();
    HACCS_WARN << "tree: round " << epoch
               << " torn (aggregator lost after contributing); "
               << jobs.size() << " job(s) failed";
    for (const fl::TrainJobSpec& job : jobs) {
      fl::TrainOutcome& out = outcomes[job.slot];
      out.delivered = false;
      out.pre_aggregated = false;
      out.failure = fl::FailureKind::Crash;
      out.updated.clear();
    }
    partials_.assign(1, fl::PartialAggregate{});
    if (fl::ServingStatusBoard* board = config_.status_board) {
      board->collecting.store(false, std::memory_order_relaxed);
    }
    return;
  }

  // Settle: per-client stats -> outcomes, trailer weights -> the merged
  // partial. Clients a trailer never mentions keep their default Crash.
  std::unordered_map<std::uint32_t, std::size_t> job_of_client;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    job_of_client[static_cast<std::uint32_t>(jobs[j].client_id)] = j;
  }
  fl::PartialAggregate& merged = partials_[0];
  for (std::size_t a = 0; a < num_aggs; ++a) {
    AggRound& round = rounds[a];
    if (!round.participating || !round.trailer) continue;
    for (const net::SubtreeClientStat& stat : round.update.stats) {
      const auto it = job_of_client.find(stat.client_id);
      if (it == job_of_client.end()) continue;  // not this round's client
      fl::TrainOutcome& out = outcomes[jobs[it->second].slot];
      if (stat.delivered) {
        out.delivered = true;
        out.pre_aggregated = true;
        out.weight = static_cast<double>(stat.sample_count);
        out.result.average_loss = stat.average_loss;
        out.result.final_loss = stat.final_loss;
        out.result.batches = static_cast<std::size_t>(stat.batches);
        ++merged.updates;
        if (fl::ServingStatusBoard* board = config_.status_board) {
          board->delivered.fetch_add(1, std::memory_order_relaxed);
          if (a < board->num_workers()) {
            board->worker(a).updates.fetch_add(1, std::memory_order_relaxed);
          }
        }
      } else {
        out.delivered = false;
        out.failure = stat.failure <=
                              static_cast<std::uint8_t>(
                                  fl::FailureKind::CorruptUpdate)
                          ? static_cast<fl::FailureKind>(stat.failure)
                          : fl::FailureKind::Crash;
      }
    }
    merged.weight += round.update.weight;
  }
  if (merged.updates > 0) merged.sum = std::move(acc);

  if (fl::ServingStatusBoard* board = config_.status_board) {
    board->collecting.store(false, std::memory_order_relaxed);
  }
}

}  // namespace haccs::hier
