// TreeDispatcher: the root of the hierarchical aggregation tree
// (DESIGN.md §5j).
//
// The engine's RoundDispatcher seam, implemented over A mid-tier aggregator
// transports instead of W worker transports. Fan-out sends each aggregator
// a SelectNotice scoping its subtree's slice of the round (in slot order —
// that order IS the fold order downstream) and relays every TrainJob to the
// aggregator owning its client. Collection receives SubtreeChunk frames and
// folds them into ONE f64 accumulator with group-ordered gating: a chunk
// from aggregator g covering elements [a, b) folds only once every live
// aggregator g' < g has folded past b (or finished) — so the per-element
// add sequence is exactly "group 0's sum, then group 1's, ..." and the
// merged result is bit-identical to a flat dispatcher running with
// agg_groups = A. Peak buffering is O(chunk × aggregators): chunks ahead of
// the gate wait in a per-aggregator stash that drains as predecessors
// advance (the `allreduce_ring_chunked` idiom).
//
// Failure containment: an aggregator that dies BEFORE contributing any
// chunk is salvaged — its slots fail as Crash, everyone else's round
// commits (bitwise what a flat run with those workers dead produces). An
// aggregator that dies AFTER some of its chunks folded tears the whole
// round: the shared accumulator cannot be unfolded, so every slot fails and
// the model is untouched (total weight 0).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/fl/dispatch.hpp"
#include "src/fl/net_driver.hpp"
#include "src/net/messages.hpp"
#include "src/net/transport.hpp"

namespace haccs::hier {

struct TreeDispatcherConfig {
  fl::LocalWorkConfig work;
  /// Federation-wide worker count; aggregator of a client =
  /// (client_id % num_workers) / (num_workers / num_aggs). Must be a
  /// multiple of the aggregator count.
  std::size_t num_workers = 0;
  int send_timeout_ms = 30000;
  /// Whole-round collection budget (<0 = wait forever).
  int recv_timeout_ms = 120000;
  /// An aggregator silent for this long while it owes its trailer is
  /// declared dead (0 disables; heartbeats reset the clock).
  int heartbeat_timeout_ms = 0;
  /// Update-norm threshold, forwarded for documentation parity with the
  /// flat grouped mode (validation runs at the mid tier).
  double max_update_norm = 0.0;
  /// Receives relayed worker TraceShard frames (§5i).
  std::function<void(net::TraceShardMsg&&)> on_trace_shard;
  /// Live-status mirror; rows are AGGREGATORS here, not workers.
  fl::ServingStatusBoard* status_board = nullptr;
  /// Liveness edges per aggregator index (drives live re-cluster, §5h).
  std::function<void(std::size_t, bool)> on_liveness;
};

class TreeDispatcher final : public fl::RoundDispatcher {
 public:
  TreeDispatcher(std::vector<net::Transport*> aggs,
                 TreeDispatcherConfig config);

  void execute(std::span<const fl::TrainJobSpec> jobs,
               const std::vector<float>& global_params,
               std::vector<fl::TrainOutcome>& outcomes) override;

  /// One merged PartialAggregate: the group-ordered fold of every
  /// aggregator's partial sum (§5j bit-identity doc in dispatch.hpp).
  const std::vector<fl::PartialAggregate>* partials() const override {
    return &partials_;
  }

  bool agg_alive(std::size_t a) const { return !dead_[a]; }

 private:
  /// Per-aggregator collection state for one execute() call.
  struct AggRound {
    std::vector<std::size_t> job_indices;  ///< into the jobs span, slot order
    bool participating = false;  ///< alive at fan-out with jobs to run
    std::map<std::uint64_t, std::vector<double>> stash;  ///< offset -> chunk
    std::uint64_t folded_upto = 0;   ///< element frontier folded into acc
    std::uint64_t folded_chunks = 0;
    bool trailer = false;
    net::SubtreeUpdateMsg update;
    bool torn = false;  ///< died after contributing — poisons the round
  };

  std::size_t group_of(std::size_t client_id) const;
  void set_dead(std::size_t a, bool dead);
  /// Folds every gated chunk it can, round-robin until no progress.
  void try_fold(std::vector<AggRound>& rounds, std::vector<double>& acc);
  /// A chunk ending at `end` from aggregator `a` may fold only when every
  /// participating predecessor has folded past `end` or finished.
  bool gate_open(const std::vector<AggRound>& rounds, std::size_t a,
                 std::uint64_t end) const;
  bool agg_finished(const AggRound& round, std::size_t model_size) const;
  void sync_board(std::size_t a);

  std::vector<net::Transport*> aggs_;
  TreeDispatcherConfig config_;
  std::vector<bool> dead_;
  std::vector<fl::PartialAggregate> partials_;
};

}  // namespace haccs::hier
