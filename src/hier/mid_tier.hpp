// MidTierAggregator: the middle tier of the hierarchical aggregation tree
// (DESIGN.md §5j).
//
// One aggregator process fronts a contiguous slice of the federation's
// workers. Downstream it runs a FanInServer (poll/epoll multiplexing, one
// socket per worker, per-connection buffering and backpressure); upstream it
// speaks the same framed protocol to the root over a single Transport:
//
//   * handshake — collect Hello + Summary frames from every subtree worker,
//     then announce the subtree with TopologyHello and relay the summaries.
//   * rounds — the root's SelectNotice opens a round and fixes the fold
//     order (the subtree's clients in slot order); TrainJob frames are
//     relayed verbatim to the owning worker (client_id % num_workers);
//     ClientUpdates are folded into ONE weighted partial sum with the
//     engine's exact arithmetic (fold_into_partial), out-of-order arrivals
//     stashed until the fold frontier reaches them.
//   * settle — the partial sum goes upstream as bounded SubtreeChunk frames
//     followed by a SubtreeUpdate trailer carrying per-client stats, so the
//     root's engine keeps its normal bookkeeping without the raw updates.
//
// Failure mapping mirrors the flat dispatcher exactly: a dead worker fails
// its pending clients as Crash, a corrupt frame fails the oldest
// outstanding client as CorruptUpdate, the round deadline fails stragglers
// as Timeout — so the root cannot tell a tree run's failures from a flat
// run's.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "src/fl/dispatch.hpp"
#include "src/fl/net_driver.hpp"
#include "src/net/fanin.hpp"
#include "src/net/messages.hpp"
#include "src/net/transport.hpp"

namespace haccs::hier {

struct MidTierConfig {
  std::uint32_t agg_id = 0;
  std::uint32_t num_aggs = 1;
  /// Federation-wide worker count; this aggregator fronts the contiguous
  /// slice [agg_id * per, (agg_id + 1) * per) with per = num_workers /
  /// num_aggs (num_aggs must divide num_workers).
  std::uint32_t num_workers = 1;
  /// f64 elements per SubtreeChunk — bounds the root's per-peer buffering
  /// to O(chunk_params × aggregators) instead of O(model × aggregators).
  std::size_t chunk_params = 16384;
  /// Update-norm validation threshold; must match EngineConfig's so the
  /// fold rejects exactly the updates the engine itself would reject.
  double max_update_norm = 0.0;
  /// Upstream liveness cadence (0 = no heartbeats).
  int heartbeat_interval_ms = 0;
  /// Budget from round open to settle; stragglers fail as Timeout rather
  /// than wedging the subtree (0 = wait forever).
  int round_timeout_ms = 30000;
  /// Budget for the downstream Hello/Summary handshake.
  int handshake_timeout_ms = 60000;
  net::FanInOptions fanin;
  /// Live-status mirror (rows = subtree workers, indexed from 0); the
  /// `queued` gauge mirrors FanInServer::outbound_queued. May be null.
  fl::ServingStatusBoard* status_board = nullptr;
};

struct MidTierStats {
  std::size_t rounds = 0;            ///< rounds settled upstream
  std::size_t folded = 0;            ///< updates folded into partials
  std::size_t rejected = 0;          ///< updates failing norm validation
  std::size_t worker_failures = 0;   ///< downstream closes/sheds observed
  std::uint64_t upstream_bytes_sent = 0;
  std::uint64_t upstream_bytes_received = 0;
};

class MidTierAggregator {
 public:
  explicit MidTierAggregator(const MidTierConfig& config);

  std::uint16_t port() const { return fanin_.port(); }
  std::uint32_t worker_begin() const { return worker_begin_; }
  std::uint32_t worker_end() const { return worker_end_; }
  const MidTierStats& stats() const { return stats_; }

  /// Runs the aggregator to completion: downstream handshake, TopologyHello
  /// + summary relay, then rounds until the root sends Shutdown (relayed to
  /// the workers) or the upstream link dies. Returns false on handshake or
  /// upstream failure.
  bool run(net::Transport& upstream);

 private:
  /// One open round, scoped by the root's SelectNotice.
  struct Round {
    bool open = false;
    /// Opened by a TrainJob because the SelectNotice was lost: the expected
    /// set grows in arrival order and the round settles only on deadline.
    bool implicit = false;
    std::uint64_t epoch = 0;
    std::vector<std::uint32_t> expected;  ///< subtree clients, slot order
    std::unordered_map<std::uint32_t, std::size_t> index_of;
    std::vector<net::SubtreeClientStat> stats;  ///< parallel to expected
    std::vector<std::uint8_t> settled;          ///< parallel to expected
    std::size_t settled_count = 0;
    /// Fold frontier: updates fold strictly in `expected` order; arrivals
    /// ahead of the frontier wait in `stash`.
    std::size_t next_fold = 0;
    std::unordered_map<std::uint32_t, net::ClientUpdateMsg> stash;
    fl::PartialAggregate partial;
    std::vector<float> global;  ///< captured from the round's first TrainJob
    bool have_global = false;
    std::int64_t deadline_ms = -1;
  };

  bool handshake(net::Transport& upstream);
  /// Returns false when the upstream link is gone.
  bool handle_upstream(net::Transport& upstream, const net::Frame& frame);
  void handle_downstream(net::Transport& upstream, const net::FanInEvent& ev);
  void open_round(const net::SelectNoticeMsg& msg);
  /// Adds `client_id` to the open round (no-op if present); returns its
  /// slot index.
  std::size_t register_client(std::uint32_t client_id);
  void relay_train_job(const net::Frame& frame);
  void handle_update(net::ClientUpdateMsg&& msg);
  /// Folds stashed updates at the frontier, in slot order.
  void advance_fold();
  void fold_update(std::size_t index, net::ClientUpdateMsg& msg);
  void settle_slot(std::size_t index);
  /// Fails every unsettled client routed to subtree worker `local` (local
  /// index, 0-based within the slice).
  void fail_worker_pending(std::size_t local, fl::FailureKind kind);
  void fail_front(std::size_t local, fl::FailureKind kind);
  /// Deadline path: fails every client with no stashed update, then folds
  /// the stash past the failures (fold order stays slot order).
  void fail_unsettled(fl::FailureKind kind);
  /// Ships SubtreeChunks + the SubtreeUpdate trailer and clears the round.
  bool settle_round(net::Transport& upstream);
  bool send_upstream(net::Transport& upstream, const net::Frame& frame);
  void broadcast_downstream(const net::Frame& frame);
  void sync_board(std::size_t local);
  void note_heard(std::size_t local);

  MidTierConfig config_;
  std::uint32_t worker_begin_ = 0;
  std::uint32_t worker_end_ = 0;
  net::FanInServer fanin_;
  /// Local worker index -> FanInServer connection id (0 = not connected).
  std::vector<std::uint64_t> conn_of_worker_;
  std::unordered_map<std::uint64_t, std::size_t> worker_of_conn_;
  /// Connections that said Hello but still owe this many Summary frames
  /// (handshake, or a reconnecting worker re-sending its summaries).
  std::unordered_map<std::uint64_t, std::size_t> summaries_pending_;
  /// Unsettled clients per local worker, relay order — the FIFO corrupt
  /// frames are attributed against (same rule as the flat dispatcher).
  std::vector<std::deque<std::uint32_t>> pending_;
  /// Summary frames collected during the handshake, relayed after
  /// TopologyHello.
  std::vector<net::Frame> summary_frames_;
  std::uint32_t total_clients_ = 0;
  bool handshook_ = false;
  Round round_;
  MidTierStats stats_;
};

}  // namespace haccs::hier
