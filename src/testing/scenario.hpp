// Seeded scenario generation for the fuzzing harness (TESTING.md).
//
// A ScenarioSpec is one point in the configuration cross-product the system
// supports: dataset shape x partitioner x selector x compression x fault
// model x clustering algorithm x DP budget x scheduling knobs. Every field
// round-trips through a compact `key=value,...` spec string, so any failure
// the fuzzer finds is replayable from a single command line:
//
//   haccs_fuzz --replay "seed=41,selector=haccs-py,crash=0.2,..."
//
// generate_scenario(seed) draws a spec from the space as a pure function of
// the seed — the same seed always produces the same scenario, on every
// machine. Dimensions are drawn independently so the sweep covers the
// pairwise interactions (faults x compression, DP x clustering, ...) that
// example-based tests cannot enumerate.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/core/haccs_config.hpp"
#include "src/data/partition.hpp"
#include "src/fl/compression.hpp"
#include "src/fl/engine.hpp"
#include "src/fl/selector.hpp"
#include "src/net/chaos.hpp"

namespace haccs::testing {

enum class PartitionKind { Majority, Iid, KLabels, Dirichlet, FeatureSkew };
enum class SelectorKind { Random, Tifl, Oort, HaccsPy, HaccsPxy, HaccsQxy,
                          Stratified, Dpp, FedLecc, Hics };

/// Time-structured adversity (ROADMAP "hostile-world scenarios"): one shape
/// per spec, parameterized by hostile_frac / hostile_at / hostile_span.
enum class HostileKind {
  None,
  FlashCrowd,          ///< frac of clients all join at epoch hostile_at
  Diurnal,             ///< availability wave, period hostile_span
  Outage,              ///< correlated regional blackout for hostile_span epochs
  Drift,               ///< frac of clients' label distributions redrawn
  TargetedStragglers,  ///< fixed adversarial cohort slowed from hostile_at
};

std::string to_string(PartitionKind kind);
std::string to_string(SelectorKind kind);
std::string to_string(HostileKind kind);
PartitionKind parse_partition_kind(const std::string& name);
SelectorKind parse_selector_kind(const std::string& name);
HostileKind parse_hostile_kind(const std::string& name);

/// True for the selector kinds that run the HACCS clustering pipeline (and
/// therefore expose cluster_weights / Eq. 7 to the oracles).
bool is_haccs_selector(SelectorKind kind);

struct ScenarioSpec {
  std::uint64_t seed = 1;

  // Workload shape (kept tiny: the fuzzer's value is breadth, not depth).
  std::size_t clients = 10;
  std::size_t per_round = 3;
  std::size_t rounds = 4;
  std::size_t classes = 6;
  std::size_t image = 10;       ///< square image side
  std::size_t min_samples = 24;
  std::size_t max_samples = 48;
  std::size_t test_samples = 8;

  PartitionKind partition = PartitionKind::Majority;
  std::size_t klabels = 3;      ///< for PartitionKind::KLabels
  double alpha = 0.5;           ///< Dirichlet concentration
  double rotation = 30.0;       ///< feature-skew rotation, degrees

  SelectorKind selector = SelectorKind::HaccsPy;
  core::ClusterAlgorithm algorithm = core::ClusterAlgorithm::Optics;
  core::Extraction extraction = core::Extraction::Auto;
  stats::DistanceKind distance = stats::DistanceKind::Hellinger;
  double rho = 0.5;

  double epsilon = 0.0;         ///< DP budget; 0 = no noise
  stats::NoiseMechanism mechanism = stats::NoiseMechanism::Laplace;

  fl::CompressionKind compression = fl::CompressionKind::None;
  double topk_fraction = 0.2;

  // Fault / robustness knobs (engine-simulated, seeded).
  double crash_rate = 0.0;
  double corruption_rate = 0.0;
  double straggler_rate = 0.0;
  double overcommit = 0.0;
  double deadline_quantile = 0.0;
  double max_update_norm = 0.0;
  double dropout = 0.0;

  bool fedprox = false;
  /// Loopback worker count used by the transported-dispatch differential.
  std::size_t workers = 2;

  // Transport chaos knobs (per-frame probabilities on every loopback link,
  // both directions). All zero = clean wire; any non-zero switches the
  // transported-dispatch oracle from the bit-identity differential to the
  // chaos-liveness check (a hostile wire legitimately perturbs outcomes).
  double chaos_drop = 0.0;
  double chaos_dup = 0.0;
  double chaos_reorder = 0.0;
  double chaos_corrupt = 0.0;
  double chaos_truncate = 0.0;
  double chaos_disconnect = 0.0;

  // Hostile-world shape (HostileKind::None = benign). `hostile_frac` is the
  // affected fraction (joining cohort / wave trough / dark regions / drifted
  // clients / adversarial cohort); `hostile_at` the epoch the adversity
  // starts; `hostile_span` its duration or wave period.
  HostileKind hostile = HostileKind::None;
  double hostile_frac = 0.3;
  std::size_t hostile_at = 1;
  std::size_t hostile_span = 2;

  bool hostile_enabled() const { return hostile != HostileKind::None; }

  bool chaos_enabled() const {
    return chaos_drop > 0.0 || chaos_dup > 0.0 || chaos_reorder > 0.0 ||
           chaos_corrupt > 0.0 || chaos_truncate > 0.0 ||
           chaos_disconnect > 0.0;
  }
};

/// Draws a scenario as a pure function of `seed`.
ScenarioSpec generate_scenario(std::uint64_t seed);

/// Compact one-line `key=value,...` form; emits every field (stable order).
std::string to_spec_string(const ScenarioSpec& spec);

/// Parses a spec string; unknown keys or malformed values throw
/// std::invalid_argument. Omitted keys keep their ScenarioSpec defaults.
ScenarioSpec parse_spec_string(const std::string& text);

/// Sanity bounds the generator guarantees and replayed specs must satisfy
/// (per_round <= clients, rho in [0,1], ...); throws on violation.
void validate_spec(const ScenarioSpec& spec);

// --- Builders: spec -> the production objects the oracles exercise. ---

data::FederatedDataset build_dataset(const ScenarioSpec& spec);
fl::EngineConfig build_engine_config(const ScenarioSpec& spec);
core::HaccsConfig build_haccs_config(const ScenarioSpec& spec);
std::unique_ptr<fl::ClientSelector> build_selector(
    const ScenarioSpec& spec, const data::FederatedDataset& dataset);
/// The deterministic model factory every run of this scenario shares.
std::function<nn::Sequential()> build_model_factory(
    const ScenarioSpec& spec, const data::FederatedDataset& dataset);
/// Chaos knobs in transport form; seeded from spec.seed so a replayed spec
/// injects the identical fault script.
net::ChaosOptions build_chaos_options(const ScenarioSpec& spec);
/// The availability schedule every run of this scenario shares: the base
/// per-epoch dropout composed with the availability-shaped hostile kinds
/// (flash crowd, diurnal wave, regional outage). Never null — benign specs
/// get an always-available schedule.
std::unique_ptr<sim::DropoutSchedule> build_availability(
    const ScenarioSpec& spec);
/// EngineConfig::on_epoch_begin hook applying mid-training label drift to
/// `dataset` (in place, seeded by the spec). Empty unless hostile == Drift.
/// `dataset` must be the pristine build_dataset output and must outlive the
/// hook; runs that share a dataset object must each use a FRESH copy, since
/// the drift mutates it.
std::function<void(std::size_t)> build_drift_hook(const ScenarioSpec& spec,
                                                  data::FederatedDataset& fed);

}  // namespace haccs::testing
