// Oracle framework for the deterministic scenario fuzzer (TESTING.md).
//
// check_scenario() runs one generated ScenarioSpec through two oracle
// families and returns every violation found:
//
//   Differential — the same scenario under paired configurations whose
//   outputs the system guarantees to agree:
//     * dispatch:  in-process vs loopback-transported rounds, byte-equal
//                  round_event_json (the PR-4 guarantee). When the spec
//                  enables transport chaos this becomes the chaos-liveness
//                  oracle instead: the serving-mode dispatcher must commit
//                  every round over the hostile wire (no hang) with all
//                  damage attributed through the failure buckets, so the
//                  RoundRecord conservation invariants hold unchanged;
//     * telemetry: traced vs untraced runs, byte-equal modulo wall-clock
//                  phase timings (the PR-3 guarantee);
//     * kernels:   reference vs optimized GEMM/conv backends on a one-round
//                  run — identical selection/fault structure (round 0 is
//                  loss-independent), parameter vectors within a small
//                  relative L2 distance (per-element tolerance is invalid
//                  end-to-end: ReLU boundaries flip between backends).
//
//   Invariant / metamorphic — properties provable from the paper and the
//   design, checked on the system's own outputs:
//     * summary distances symmetric, zero on self, bounded in [0, 1];
//     * histogram/summary mass conservation against sample counts;
//     * DP-noised histograms non-negative after renormalization;
//     * permuting client order leaves cluster co-membership invariant
//       (up to relabeling; skipped for OPTICS ξ-extraction, which is
//       order-sensitive by construction);
//     * Eq. 7 θ weights match an independent recomputation, are
//       non-negative, and normalize to 1; empirical Weighted-SRSWR cluster
//       frequencies track θ;
//     * RoundRecord conservation: dispatched = aggregated + crashed + late
//       + rejected, wire bytes = frames x codec pricing, rounds respect the
//       deadline, and the simulated clock accumulates exactly.
//
// Every check is a pure function of the spec, so a violation reproduces
// from its spec string alone (tools/haccs_fuzz --replay).
#pragma once

#include <string>
#include <vector>

#include "src/testing/scenario.hpp"

namespace haccs::testing {

struct Violation {
  std::string oracle;  ///< stable oracle id, e.g. "eq7_weights"
  std::string detail;  ///< human-readable description of the mismatch
};

struct OracleOptions {
  /// Run the differential family (three extra training runs per scenario).
  bool differential = true;
  /// Draws for the empirical Weighted-SRSWR frequency check.
  std::size_t srswr_draws = 4000;
};

/// Runs every applicable oracle on the scenario. Empty result = clean.
/// Exceptions escaping any oracle are themselves reported as violations
/// (oracle id "exception") rather than thrown.
std::vector<Violation> check_scenario(const ScenarioSpec& spec,
                                      const OracleOptions& options = {});

/// True when `violations` contains the named oracle (prefix match, so
/// "exception" matches "exception:engine_run").
bool has_oracle(const std::vector<Violation>& violations,
                const std::string& oracle);

/// The one-line reproducer printed on failure.
std::string replay_command(const ScenarioSpec& spec);

}  // namespace haccs::testing
