#include "src/testing/oracles.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "src/core/haccs_selector.hpp"
#include "src/core/pipeline.hpp"
#include "src/fl/history.hpp"
#include "src/fl/net_driver.hpp"
#include "src/fl/protocol.hpp"
#include "src/net/wire.hpp"
#include "src/obs/obs.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/dropout.hpp"
#include "src/stats/privacy.hpp"
#include "src/tensor/ops.hpp"

namespace haccs::testing {

namespace {

/// Collects violations; at most one per oracle id so a systematic breakage
/// (e.g. every round's accounting off) reports once, not per round.
class Reporter {
 public:
  void fail(const std::string& oracle, const std::string& detail) {
    for (const auto& v : violations_) {
      if (v.oracle == oracle) return;
    }
    violations_.push_back({oracle, detail});
  }

  bool clean() const { return violations_.empty(); }
  std::vector<Violation> take() { return std::move(violations_); }

 private:
  std::vector<Violation> violations_;
};

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

bool close(double a, double b, double abs_tol, double rel_tol = 0.0) {
  return std::abs(a - b) <=
         abs_tol + rel_tol * std::max(std::abs(a), std::abs(b));
}

// ---------------------------------------------------------------------------
// Invariant family: summaries, distances, clustering

void check_summary_mass(const data::FederatedDataset& fed,
                        const ScenarioSpec& spec, Reporter& out) {
  const stats::ConditionalSummaryConfig ccfg;
  const stats::QuantileSummaryConfig qcfg;
  for (std::size_t i = 0; i < fed.num_clients(); ++i) {
    const auto& train = fed.clients[i].train;
    const auto n = static_cast<double>(train.size());
    const double features = n * static_cast<double>(train.sample_size());

    const auto response = stats::summarize_response(train);
    if (!close(response.label_counts.total(), n, 1e-6)) {
      out.fail("summary_mass",
               "response histogram mass " +
                   fmt(response.label_counts.total()) + " != sample count " +
                   fmt(n) + " on client " + std::to_string(i));
      return;
    }

    if (spec.selector == SelectorKind::HaccsPxy) {
      const auto cond = stats::summarize_conditional(train, ccfg);
      double mass = 0.0;
      for (const auto& h : cond.per_label) mass += h.total();
      if (!close(mass, features, 1e-6 * std::max(features, 1.0))) {
        out.fail("summary_mass",
                 "conditional histogram mass " + fmt(mass) +
                     " != feature count " + fmt(features) + " on client " +
                     std::to_string(i));
        return;
      }
    }
    if (spec.selector == SelectorKind::HaccsQxy) {
      const auto quant = stats::summarize_quantiles(train, qcfg);
      const double mass =
          std::accumulate(quant.mass.begin(), quant.mass.end(), 0.0);
      if (!close(mass, features, 1e-6 * std::max(features, 1.0))) {
        out.fail("summary_mass",
                 "quantile sketch mass " + fmt(mass) + " != feature count " +
                     fmt(features) + " on client " + std::to_string(i));
        return;
      }
    }
  }
}

void check_distance_invariants(
    const std::vector<core::ClientSummary>& summaries,
    const ScenarioSpec& spec, Reporter& out) {
  const auto matrix = core::summary_distances(summaries, spec.distance);
  const std::size_t n = matrix.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (matrix.at(i, i) != 0.0) {
      out.fail("distance_bounds", "nonzero diagonal at " + std::to_string(i) +
                                      ": " + fmt(matrix.at(i, i)));
    }
    // Zero on identical summaries: a summary vs itself through the public
    // distance function (not just the matrix's fixed diagonal).
    const double self =
        core::ClientSummary::distance(summaries[i], summaries[i],
                                      spec.distance);
    if (!(self >= 0.0 && self <= 1e-9)) {
      out.fail("distance_identity",
               "distance(s, s) = " + fmt(self) + " for client " +
                   std::to_string(i));
    }
    // SymmetricKl is the one deliberately unbounded kind.
    const bool bounded = spec.distance != stats::DistanceKind::SymmetricKl;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = matrix.at(i, j);
      if (!std::isfinite(d) || d < 0.0 ||
          (bounded && d > 1.0 + 1e-12)) {
        out.fail("distance_bounds",
                 "d(" + std::to_string(i) + "," + std::to_string(j) + ") = " +
                     fmt(d) + " outside [0, 1]");
      }
      if (matrix.at(j, i) != d) {
        out.fail("distance_symmetry",
                 "matrix asymmetric at (" + std::to_string(i) + "," +
                     std::to_string(j) + ")");
      }
      // The underlying distance function must itself be symmetric (the
      // matrix builder only evaluates i < j, so check the function too).
      const double swapped =
          core::ClientSummary::distance(summaries[j], summaries[i],
                                        spec.distance);
      if (!close(swapped, d, 1e-12)) {
        out.fail("distance_symmetry",
                 "distance(a,b) != distance(b,a): " + fmt(d) + " vs " +
                     fmt(swapped));
      }
    }
  }
}

/// Independent Hellinger recomputation against the production distance path
/// (which routes through stats::distribution_distance — the site of the
/// cluster-distance-l2 mutation). Deliberately naive: clamp, normalize,
/// paired square-root differences.
void check_distance_recompute(const std::vector<core::ClientSummary>& summaries,
                              const ScenarioSpec& spec, Reporter& out) {
  if (spec.distance != stats::DistanceKind::Hellinger) return;
  auto naive = [](std::span<const double> p, std::span<const double> q) {
    double pt = 0.0, qt = 0.0;
    for (double v : p) pt += std::max(v, 0.0);
    for (double v : q) qt += std::max(v, 0.0);
    double acc = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i) {
      const double pi = pt > 0.0 ? std::max(p[i], 0.0) / pt : 0.0;
      const double qi = qt > 0.0 ? std::max(q[i], 0.0) / qt : 0.0;
      const double d = std::sqrt(pi) - std::sqrt(qi);
      acc += d * d;
    }
    return std::sqrt(acc / 2.0);
  };
  for (std::size_t i = 0; i < summaries.size(); ++i) {
    if (summaries[i].kind != stats::SummaryKind::Response) return;
    for (std::size_t j = i + 1; j < summaries.size(); ++j) {
      const double expected =
          naive(summaries[i].response.label_counts.counts(),
                summaries[j].response.label_counts.counts());
      const double got = core::ClientSummary::distance(
          summaries[i], summaries[j], spec.distance);
      if (!close(got, expected, 1e-9)) {
        out.fail("distance_recompute",
                 "d(" + std::to_string(i) + "," + std::to_string(j) + ") = " +
                     fmt(got) + " but independent Hellinger recomputation "
                     "gives " + fmt(expected));
        return;
      }
    }
  }
}

/// Cluster co-membership relation: same(i, j) iff both carry the same
/// non-noise label (noise points are singletons — never "same" as anyone).
bool same_cluster(const std::vector<int>& labels, std::size_t i,
                  std::size_t j) {
  return labels[i] >= 0 && labels[i] == labels[j];
}

void check_cluster_permutation_invariance(
    const std::vector<core::ClientSummary>& summaries,
    const core::HaccsConfig& haccs, const ScenarioSpec& spec, Reporter& out) {
  // The ξ steep-area extraction is genuinely order-sensitive: the OPTICS
  // ordering itself depends on tie-breaking by index, and ξ cuts on steep
  // areas of that ordering. Auto (largest-gap) and fixed-eps cuts depend
  // only on the reachability MST, which is permutation-invariant — the
  // oracle applies to those (verified over seeds 0..199; ξ reliably fails).
  if (haccs.algorithm == core::ClusterAlgorithm::Optics &&
      haccs.extraction == core::Extraction::Xi) {
    return;
  }
  const auto matrix = core::summary_distances(summaries, spec.distance);
  const auto labels = core::cluster_distances(matrix, haccs);

  // Permute the already-computed summaries (so DP noise, drawn per client,
  // rides along with its client) and re-cluster.
  const std::size_t n = summaries.size();
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  Rng rng(spec.seed ^ 0x9e3779b97f4a7c15ULL);
  rng.shuffle(perm);
  std::vector<core::ClientSummary> permuted;
  permuted.reserve(n);
  for (std::size_t p : perm) permuted.push_back(summaries[p]);
  const auto pmatrix = core::summary_distances(permuted, spec.distance);
  // position_of[i]: where client i landed in the permuted order.
  std::vector<std::size_t> position_of(n);
  for (std::size_t pos = 0; pos < n; ++pos) position_of[perm[pos]] = pos;
  const auto plabels = core::cluster_distances(pmatrix, haccs);

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const bool orig = same_cluster(labels, i, j);
      const bool permd =
          same_cluster(plabels, position_of[i], position_of[j]);
      if (orig != permd) {
        out.fail("cluster_permutation",
                 "clients " + std::to_string(i) + "," + std::to_string(j) +
                     " co-clustered=" + (orig ? "true" : "false") +
                     " originally but " + (permd ? "true" : "false") +
                     " after permuting client order");
        return;
      }
    }
  }
}

/// Scale-vs-exact differential (DESIGN.md §5h). With one shard covering
/// every client and a dense exact cutoff, the scale pipeline routes the
/// very same exact distances through the NeighborIndex seam and the
/// identity merge — its labels must be *identical* to the legacy dense
/// path, for every summary kind, extraction, and DP setting the fuzzer
/// generates. A genuinely sharded run may legitimately differ on arbitrary
/// fuzz data (the merge clusters centroids, not members), so multi-shard
/// output is checked for well-formedness and determinism instead.
void check_scale_differential(
    const std::vector<core::ClientSummary>& summaries,
    const core::HaccsConfig& haccs, Reporter& out) {
  const std::size_t n = summaries.size();
  const auto exact_labels = core::cluster_distances(
      core::summary_distances(summaries, haccs.response_distance), haccs);

  core::HaccsConfig scaled = haccs;
  scaled.scale.enabled = true;
  scaled.scale.shard_size = n + 1;    // single shard: identity merge
  scaled.scale.exact_cutoff = n + 1;  // dense exact distances
  const auto single = core::cluster_summaries_scaled(summaries, scaled);
  if (single != exact_labels) {
    for (std::size_t i = 0; i < n; ++i) {
      if (single[i] != exact_labels[i]) {
        out.fail("diff_scale",
                 "single-shard scale labels diverge from the exact path at "
                 "client " + std::to_string(i) + ": " +
                     std::to_string(single[i]) + " vs " +
                     std::to_string(exact_labels[i]));
        break;
      }
    }
    return;
  }

  // Sharded + ANN-pruned run: labels must be well-formed and the pipeline
  // deterministic (same input, same output — shard parallelism must not
  // leak scheduling order into the result).
  scaled.scale.shard_size = std::max<std::size_t>(2, n / 3);
  scaled.scale.exact_cutoff = std::max<std::size_t>(2, n / 6);
  const auto sharded = core::cluster_summaries_scaled(summaries, scaled);
  if (sharded.size() != n) {
    out.fail("diff_scale", "sharded label arity " +
                               std::to_string(sharded.size()) + " != " +
                               std::to_string(n));
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (sharded[i] < -1 || sharded[i] >= static_cast<int>(n)) {
      out.fail("diff_scale", "sharded label out of range on client " +
                                 std::to_string(i) + ": " +
                                 std::to_string(sharded[i]));
      return;
    }
  }
  const auto replay = core::cluster_summaries_scaled(summaries, scaled);
  if (replay != sharded) {
    out.fail("diff_scale",
             "sharded clustering is nondeterministic: two runs on identical "
             "input disagree");
  }
}

void check_dp_nonnegative(const std::vector<core::ClientSummary>& summaries,
                          Reporter& out) {
  for (std::size_t i = 0; i < summaries.size(); ++i) {
    const auto& s = summaries[i];
    if (s.kind == stats::SummaryKind::Response) {
      for (double c : s.response.label_counts.counts()) {
        if (c < 0.0 || !std::isfinite(c)) {
          out.fail("dp_nonnegative", "negative/non-finite noised bin " +
                                         fmt(c) + " on client " +
                                         std::to_string(i));
          return;
        }
      }
    } else if (s.kind == stats::SummaryKind::Conditional) {
      for (const auto& h : s.conditional.per_label) {
        for (double c : h.counts()) {
          if (c < 0.0 || !std::isfinite(c)) {
            out.fail("dp_nonnegative", "negative/non-finite noised bin " +
                                           fmt(c) + " on client " +
                                           std::to_string(i));
            return;
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Invariant family: Eq. 7 weights and Weighted-SRSWR sampling

/// Straightforward independent reimplementation of Eq. 6/7 (kept deliberately
/// naive — its whole value is being a second opinion on the selector's).
std::vector<double> eq7_reference(
    const core::HaccsSelector& selector, double rho,
    const std::vector<fl::ClientRuntimeInfo>& clients) {
  const auto& clusters = selector.clusters();
  const std::size_t k = clusters.size();
  std::vector<double> avg_loss(k, 0.0), avg_latency(k, 0.0);
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t member : clusters[c]) {
      avg_loss[c] += clients[member].last_loss;
      avg_latency[c] += clients[member].latency_s;
    }
    avg_loss[c] /= static_cast<double>(clusters[c].size());
    avg_latency[c] /= static_cast<double>(clusters[c].size());
  }
  const double lat_max =
      *std::max_element(avg_latency.begin(), avg_latency.end());
  const double loss_total =
      std::accumulate(avg_loss.begin(), avg_loss.end(), 0.0);
  std::vector<double> weights(k, 0.0);
  for (std::size_t c = 0; c < k; ++c) {
    const double tau = lat_max > 0.0 ? 1.0 - avg_latency[c] / lat_max : 0.0;
    const double acl = loss_total > 0.0 ? avg_loss[c] / loss_total : 0.0;
    weights[c] = rho * tau + (1.0 - rho) * acl;
  }
  if (std::accumulate(weights.begin(), weights.end(), 0.0) <= 0.0) {
    std::fill(weights.begin(), weights.end(), 1.0);
  }
  return weights;
}

void check_eq7_and_srswr(const ScenarioSpec& spec,
                         const data::FederatedDataset& fed,
                         const std::vector<fl::ClientRuntimeInfo>& view,
                         const OracleOptions& options, Reporter& out) {
  const auto haccs = build_haccs_config(spec);
  core::HaccsSelector selector(fed, haccs);
  const auto weights = selector.cluster_weights(view);
  const auto expected = eq7_reference(selector, spec.rho, view);

  if (weights.size() != selector.num_clusters()) {
    out.fail("eq7_weights", "weight count " + std::to_string(weights.size()) +
                                " != cluster count " +
                                std::to_string(selector.num_clusters()));
    return;
  }
  double total = 0.0;
  for (std::size_t c = 0; c < weights.size(); ++c) {
    if (!std::isfinite(weights[c]) || weights[c] < 0.0) {
      out.fail("eq7_weights", "weight[" + std::to_string(c) + "] = " +
                                  fmt(weights[c]) + " (must be finite, >= 0)");
      return;
    }
    if (!close(weights[c], expected[c], 1e-12, 1e-12)) {
      out.fail("eq7_weights",
               "weight[" + std::to_string(c) + "] = " + fmt(weights[c]) +
                   " but independent Eq. 7 recomputation gives " +
                   fmt(expected[c]));
      return;
    }
    total += weights[c];
  }
  if (!(total > 0.0)) {
    out.fail("eq7_weights", "weights sum to " + fmt(total));
    return;
  }
  // The sampling distribution θ_c = w_c / Σw must be a distribution.
  double theta_sum = 0.0;
  for (double w : weights) theta_sum += w / total;
  if (!close(theta_sum, 1.0, 1e-9)) {
    out.fail("eq7_weights", "normalized θ sums to " + fmt(theta_sum));
    return;
  }

  // Empirical Weighted-SRSWR check: single-slot selections land in cluster c
  // with frequency θ_c. Uses the selector's own RNG path end-to-end, so a
  // bug anywhere between Eq. 7 and the categorical draw shows up here.
  const std::size_t draws = options.srswr_draws;
  if (draws == 0) return;
  std::vector<std::size_t> hits(weights.size(), 0);
  Rng rng(spec.seed ^ 0x5b5b5b5bULL);
  for (std::size_t d = 0; d < draws; ++d) {
    const auto picked = selector.select(1, view, 0, rng);
    if (picked.size() != 1) {
      out.fail("srswr_frequency",
               "select(1) returned " + std::to_string(picked.size()) +
                   " clients");
      return;
    }
    hits[static_cast<std::size_t>(selector.cluster_of()[picked[0]])]++;
  }
  for (std::size_t c = 0; c < weights.size(); ++c) {
    const double theta = weights[c] / total;
    const double freq = static_cast<double>(hits[c]) /
                        static_cast<double>(draws);
    const double sigma =
        std::sqrt(theta * (1.0 - theta) / static_cast<double>(draws));
    const double tolerance = 5.0 * sigma + 2.0 / static_cast<double>(draws);
    if (std::abs(freq - theta) > tolerance) {
      out.fail("srswr_frequency",
               "cluster " + std::to_string(c) + " sampled at frequency " +
                   fmt(freq) + " but θ = " + fmt(theta) + " (tolerance " +
                   fmt(tolerance) + " over " + std::to_string(draws) +
                   " draws)");
      return;
    }
  }
}

void check_selection_contract(const ScenarioSpec& spec,
                              const data::FederatedDataset& fed,
                              const std::vector<fl::ClientRuntimeInfo>& view,
                              Reporter& out) {
  auto selector = build_selector(spec, fed);
  selector->initialize(view);
  Rng rng(spec.seed ^ 0xc0ffeeULL);
  const auto picked = selector->select(spec.per_round, view, 0, rng);
  if (picked.size() > spec.per_round) {
    out.fail("selection_contract", "selector returned " +
                                       std::to_string(picked.size()) +
                                       " > k = " +
                                       std::to_string(spec.per_round));
  }
  std::vector<std::size_t> sorted(picked);
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    out.fail("selection_contract", "selector returned duplicate client ids");
  }
  for (std::size_t id : picked) {
    if (id >= view.size()) {
      out.fail("selection_contract",
               "selector returned out-of-range id " + std::to_string(id));
    }
  }
  // Metamorphic edge: nobody available -> nobody selected.
  auto nobody = view;
  for (auto& c : nobody) c.available = false;
  auto fresh = build_selector(spec, fed);
  fresh->initialize(view);
  const auto empty = fresh->select(spec.per_round, nobody, 0, rng);
  if (!empty.empty()) {
    out.fail("selection_contract",
             "selector picked " + std::to_string(empty.size()) +
                 " clients from an all-unavailable view");
  }
}

/// Validates one selection against a view: distinct, in-range, available,
/// and exactly min(k, #available). Every selector in the zoo fills to the
/// availability bound, so a short selection means probability mass leaked.
bool selection_fills(const std::vector<std::size_t>& picked, std::size_t k,
                     const std::vector<fl::ClientRuntimeInfo>& view,
                     const std::string& where, Reporter& out) {
  std::size_t avail = 0;
  for (const auto& c : view) avail += c.available ? 1 : 0;
  const std::size_t expected = std::min(k, avail);
  if (picked.size() != expected) {
    out.fail("selection_mass",
             where + ": selector returned " + std::to_string(picked.size()) +
                 " clients but min(k, available) = " +
                 std::to_string(expected));
    return false;
  }
  std::vector<std::size_t> sorted(picked);
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    out.fail("selection_mass", where + ": duplicate client ids");
    return false;
  }
  for (std::size_t id : picked) {
    if (id >= view.size()) {
      out.fail("selection_mass",
               where + ": out-of-range id " + std::to_string(id));
      return false;
    }
    if (!view[id].available) {
      out.fail("selection_mass",
               where + ": selected unavailable client " + std::to_string(id));
      return false;
    }
  }
  return true;
}

/// Selector-generic: across repeated draws — full availability and seeded
/// partial-availability masks — every selection must carry exactly
/// min(k, #available) distinct, in-range, available clients.
void check_selection_mass(const ScenarioSpec& spec,
                          const data::FederatedDataset& fed,
                          const std::vector<fl::ClientRuntimeInfo>& view,
                          Reporter& out) {
  auto selector = build_selector(spec, fed);
  selector->initialize(view);
  Rng rng(spec.seed ^ 0x5e1ec7103a55ULL);
  for (std::size_t t = 0; t < 40; ++t) {
    const auto picked =
        selector->select(spec.per_round, view, t % spec.rounds, rng);
    if (!selection_fills(picked, spec.per_round, view,
                         "full view, draw " + std::to_string(t), out)) {
      return;
    }
  }
  // Partial availability: each client up with probability 0.6 (at least one
  // forced up so the expected fill is never vacuously zero).
  Rng mask_rng(spec.seed ^ 0xab1e5ULL);
  for (std::size_t t = 0; t < 10; ++t) {
    auto masked = view;
    std::size_t avail = 0;
    for (auto& c : masked) {
      c.available = mask_rng.bernoulli(0.6);
      avail += c.available ? 1 : 0;
    }
    if (avail == 0) masked[t % masked.size()].available = true;
    const auto picked =
        selector->select(spec.per_round, masked, t % spec.rounds, rng);
    if (!selection_fills(picked, spec.per_round, masked,
                         "partial mask " + std::to_string(t), out)) {
      return;
    }
  }
}

/// Selector-generic: after a client escalates to Crash and drops out of the
/// availability mask (as a tripped circuit breaker would make it), no
/// selector may keep dispatching to it — and the survivors must still fill
/// the round.
void check_dead_client(const ScenarioSpec& spec,
                       const data::FederatedDataset& fed,
                       const std::vector<fl::ClientRuntimeInfo>& view,
                       Reporter& out) {
  if (view.size() < 2) return;
  auto selector = build_selector(spec, fed);
  selector->initialize(view);
  const std::size_t victim = spec.seed % view.size();
  for (std::size_t r = 0; r < 3; ++r) {
    selector->report_failure(victim, r, fl::FailureKind::Crash);
  }
  auto masked = view;
  masked[victim].available = false;
  Rng rng(spec.seed ^ 0xdeadc11e47ULL);
  const std::size_t expected = std::min(spec.per_round, view.size() - 1);
  for (std::size_t t = 0; t < 30; ++t) {
    const auto picked =
        selector->select(spec.per_round, masked, t % spec.rounds, rng);
    for (std::size_t id : picked) {
      if (id == victim) {
        out.fail("dead_client",
                 "selector dispatched to crashed, unavailable client " +
                     std::to_string(victim));
        return;
      }
    }
    if (picked.size() != expected) {
      out.fail("dead_client",
               "with one dead client the selector returned " +
                   std::to_string(picked.size()) + " but min(k, n-1) = " +
                   std::to_string(expected));
      return;
    }
  }
}

/// Selector-generic crash-resume contract: save_state() after some traffic,
/// load into a fresh selector, and (for stateful selectors) demand
/// byte-identical re-serialization plus identical subsequent selections
/// under identically seeded RNGs. Foreign blobs must be rejected.
void check_state_roundtrip(const ScenarioSpec& spec,
                           const data::FederatedDataset& fed,
                           const std::vector<fl::ClientRuntimeInfo>& view,
                           Reporter& out) {
  auto a = build_selector(spec, fed);
  a->initialize(view);
  Rng drive(spec.seed ^ 0x57a7e5a3eULL);
  for (std::size_t e = 0; e < 3; ++e) {
    const auto picked = a->select(spec.per_round, view, e, drive);
    for (std::size_t id : picked) {
      if (drive.bernoulli(0.2)) {
        a->report_failure(id, e, fl::FailureKind::Timeout);
      } else {
        a->report_result(id, 1.0 + 0.01 * static_cast<double>(id), e);
      }
    }
  }
  const auto blob = a->save_state();
  auto b = build_selector(spec, fed);
  b->initialize(view);
  // Stateless selectors (empty blob, no-op load) pass trivially; they make
  // no resume promise beyond "fresh start".
  if (blob.empty()) return;
  b->load_state(blob);
  const auto reblob = b->save_state();
  if (reblob != blob) {
    out.fail("state_roundtrip",
             "save(load(blob)) is not byte-identical to blob (" +
                 std::to_string(reblob.size()) + " vs " +
                 std::to_string(blob.size()) + " bytes)");
    return;
  }
  for (std::size_t e = 3; e < 6; ++e) {
    Rng ra(spec.seed ^ (0xab5e1ULL + e));
    Rng rb(spec.seed ^ (0xab5e1ULL + e));
    const auto pa = a->select(spec.per_round, view, e, ra);
    const auto pb = b->select(spec.per_round, view, e, rb);
    if (pa != pb) {
      out.fail("state_roundtrip",
               "resumed selector diverges from the original at epoch " +
                   std::to_string(e));
      return;
    }
  }
  net::WireWriter foreign;
  foreign.string("NotASelectorState");
  foreign.u16(1);
  bool threw = false;
  try {
    b->load_state(foreign.take());
  } catch (const std::exception&) {
    threw = true;
  }
  if (!threw) {
    out.fail("state_roundtrip", "selector accepted a foreign state blob");
  }
}

/// HACCS-specific: report_failure must leave a multiplicative penalty > 1 on
/// the failed client (the drop-failure-penalty mutation erases it, so the
/// selector keeps re-dispatching crashing devices at full priority).
void check_failure_penalty(const ScenarioSpec& spec,
                           const data::FederatedDataset& fed, Reporter& out) {
  const auto haccs = build_haccs_config(spec);
  if (haccs.failure_penalty <= 1.0) return;  // fault-unaware ablation
  core::HaccsSelector selector(fed, haccs);
  selector.report_failure(0, 0, fl::FailureKind::Crash);
  const double penalty = selector.failure_penalty_of(0);
  if (!(penalty > 1.0)) {
    out.fail("failure_penalty",
             "after a Crash report the failure penalty is " + fmt(penalty) +
                 " (expected > 1: the selector would keep re-dispatching a "
                 "crashing device at full priority)");
  }
}

// ---------------------------------------------------------------------------
// Invariant family: RoundRecord conservation

void check_round_accounting(const fl::TrainingHistory& history,
                            const ScenarioSpec& spec, std::size_t param_count,
                            Reporter& out) {
  const auto engine = build_engine_config(spec);
  std::size_t dispatch_target = engine.clients_per_round;
  if (engine.overcommit > 0.0) {
    dispatch_target = std::min<std::size_t>(
        static_cast<std::size_t>(
            std::ceil(static_cast<double>(engine.clients_per_round) *
                      (1.0 + engine.overcommit))),
        spec.clients);
  }
  double prev_time = 0.0;
  for (const auto& r : history.records()) {
    const std::string where = " (epoch " + std::to_string(r.epoch) + ")";
    // Conservation: every dispatched client ends in exactly one bucket.
    const std::size_t accounted = r.selected.size() + r.crashed.size() +
                                  r.late.size() + r.rejected.size();
    if (accounted != r.dispatched) {
      out.fail("round_accounting",
               "dispatched " + std::to_string(r.dispatched) + " != " +
                   std::to_string(r.selected.size()) + " aggregated + " +
                   std::to_string(r.wasted()) + " wasted" + where);
      return;
    }
    if (r.dispatched > dispatch_target) {
      out.fail("round_accounting",
               "dispatched " + std::to_string(r.dispatched) +
                   " exceeds over-selection target " +
                   std::to_string(dispatch_target) + where);
      return;
    }
    std::vector<std::size_t> all;
    all.insert(all.end(), r.selected.begin(), r.selected.end());
    all.insert(all.end(), r.crashed.begin(), r.crashed.end());
    all.insert(all.end(), r.late.begin(), r.late.end());
    all.insert(all.end(), r.rejected.begin(), r.rejected.end());
    std::sort(all.begin(), all.end());
    if (std::adjacent_find(all.begin(), all.end()) != all.end()) {
      out.fail("round_accounting",
               "a client appears in two outcome buckets" + where);
      return;
    }
    if (!all.empty() && all.back() >= spec.clients) {
      out.fail("round_accounting",
               "out-of-range client id " + std::to_string(all.back()) + where);
      return;
    }

    // Wire-byte conservation against the codec pricing: every dispatched
    // client got a TrainJob frame; every arrived update (aggregated or
    // rejected — crashed and late clients never deliver) is one
    // ClientUpdate frame.
    const std::size_t downlink =
        r.dispatched * fl::train_job_frame_bytes(param_count);
    if (r.downlink_bytes != downlink) {
      out.fail("byte_accounting",
               "downlink_bytes " + std::to_string(r.downlink_bytes) +
                   " != dispatched x frame = " + std::to_string(downlink) +
                   where);
      return;
    }
    const std::size_t arrived = r.selected.size() + r.rejected.size();
    const std::size_t uplink =
        arrived * fl::update_frame_bytes(param_count, engine.compression);
    if (r.uplink_bytes != uplink) {
      out.fail("byte_accounting",
               "uplink_bytes " + std::to_string(r.uplink_bytes) +
                   " != arrived x frame = " + std::to_string(uplink) + where);
      return;
    }

    // Deadline semantics: the server never waits past the deadline.
    if (r.deadline_s > 0.0 && r.round_duration_s > r.deadline_s + 1e-12) {
      out.fail("deadline", "round lasted " + fmt(r.round_duration_s) +
                               "s past deadline " + fmt(r.deadline_s) + "s" +
                               where);
      return;
    }
    // The simulated clock accumulates round durations exactly (the engine
    // performs literally this addition).
    if (r.sim_time_s != prev_time + r.round_duration_s) {
      out.fail("sim_clock", "sim_time " + fmt(r.sim_time_s) + " != " +
                                fmt(prev_time) + " + " +
                                fmt(r.round_duration_s) + where);
      return;
    }
    prev_time = r.sim_time_s;

    if (!(r.global_accuracy >= 0.0 && r.global_accuracy <= 1.0)) {
      out.fail("eval_bounds",
               "accuracy " + fmt(r.global_accuracy) + " outside [0, 1]" +
                   where);
      return;
    }
    if (!std::isfinite(r.global_loss) || r.global_loss < 0.0) {
      out.fail("eval_bounds", "loss " + fmt(r.global_loss) + where);
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Differential family

struct RunArtifacts {
  fl::TrainingHistory history;
  std::vector<float> final_parameters;
};

RunArtifacts run_with(const ScenarioSpec& spec,
                      const data::FederatedDataset& fed,
                      std::function<void(std::size_t)> on_epoch_begin,
                      fl::RoundDispatcher* dispatcher) {
  auto engine = build_engine_config(spec);
  engine.dispatcher = dispatcher;
  engine.on_epoch_begin = std::move(on_epoch_begin);
  fl::FederatedTrainer trainer(fed, build_model_factory(spec, fed), engine);
  auto selector = build_selector(spec, fed);
  const auto schedule = build_availability(spec);
  RunArtifacts artifacts;
  artifacts.history = trainer.run(*selector, *schedule);
  artifacts.final_parameters = trainer.final_parameters();
  return artifacts;
}

/// Runs directly on `fed`, drifting it in place when the spec says so. The
/// caller owns the aliasing: anything else reading `fed` during the run (a
/// loopback worker fleet) sees the drifted data too — which is exactly what
/// the transported-dispatch differential needs.
RunArtifacts run_scenario_mut(const ScenarioSpec& spec,
                              data::FederatedDataset& fed,
                              fl::RoundDispatcher* dispatcher = nullptr) {
  return run_with(spec, fed, build_drift_hook(spec, fed), dispatcher);
}

RunArtifacts run_scenario(const ScenarioSpec& spec,
                          const data::FederatedDataset& fed,
                          fl::RoundDispatcher* dispatcher = nullptr) {
  if (spec.hostile == HostileKind::Drift) {
    // Drift mutates the dataset mid-run; every run gets a FRESH copy of the
    // pristine dataset so the (seeded, deterministic) drift replays
    // identically instead of compounding across runs.
    data::FederatedDataset working = fed;
    return run_scenario_mut(spec, working, dispatcher);
  }
  return run_with(spec, fed, {}, dispatcher);
}

std::string record_json_no_phase(const fl::RoundRecord& record) {
  fl::RoundRecord copy = record;
  copy.phase = fl::PhaseTimings{};
  return fl::round_event_json("sync", copy);
}

void compare_histories(const fl::TrainingHistory& a,
                       const fl::TrainingHistory& b,
                       const std::string& oracle, const std::string& what,
                       Reporter& out) {
  if (a.records().size() != b.records().size()) {
    out.fail(oracle, what + ": " + std::to_string(a.records().size()) +
                         " vs " + std::to_string(b.records().size()) +
                         " rounds");
    return;
  }
  for (std::size_t i = 0; i < a.records().size(); ++i) {
    const std::string lhs = record_json_no_phase(a.records()[i]);
    const std::string rhs = record_json_no_phase(b.records()[i]);
    if (lhs != rhs) {
      out.fail(oracle, what + " diverges at round " + std::to_string(i) +
                           ": " + lhs + " vs " + rhs);
      return;
    }
  }
}

void check_loopback_differential(const ScenarioSpec& spec,
                                 const data::FederatedDataset& fed,
                                 const RunArtifacts& baseline, Reporter& out) {
  const auto engine = build_engine_config(spec);
  // Drift note: workers hold a reference to the dataset they were built on,
  // so engine and fleet must share ONE working copy — the on_epoch_begin
  // drift (applied between rounds, while workers idle) then reaches both
  // sides and the transported run stays bit-identical to the baseline.
  data::FederatedDataset working = fed;
  fl::LoopbackCluster cluster(working, build_model_factory(spec, working),
                              spec.workers);
  fl::TransportDispatcherConfig dcfg;
  dcfg.work.local = engine.local;
  dcfg.work.fedprox = engine.algorithm == fl::LocalAlgorithm::FedProx;
  dcfg.work.fedprox_mu = engine.fedprox_mu;
  dcfg.work.compression = engine.compression;
  dcfg.recv_timeout_ms = 60000;
  fl::TransportDispatcher dispatcher(cluster.server_transports(), dcfg);
  const auto transported = run_scenario_mut(spec, working, &dispatcher);
  compare_histories(baseline.history, transported.history,
                    "diff_loopback_dispatch",
                    "in-process vs loopback-transported run", out);
}

void check_chaos_liveness(const ScenarioSpec& spec,
                          const data::FederatedDataset& fed, Reporter& out) {
  // Under an actively hostile wire the transported run legitimately diverges
  // from the in-process baseline (lost updates become Crash/Timeout/Corrupt
  // failures), so the bit-identity differential does not apply. What the
  // serving mode guarantees instead: the run COMPLETES — every round
  // commits, no hang — and the damage is fully attributed through the
  // normal failure buckets, so every RoundRecord conservation invariant
  // still holds on the chaotic history.
  const auto engine = build_engine_config(spec);
  fl::LoopbackClusterOptions copts;
  copts.chaos = build_chaos_options(spec);
  copts.worker_heartbeat_interval_ms = 25;
  // Shared working copy for the same drift-aliasing reason as the loopback
  // differential (workers reference the dataset they were built on).
  data::FederatedDataset working = fed;
  fl::LoopbackCluster cluster(working, build_model_factory(spec, working),
                              spec.workers, copts);
  fl::TransportDispatcherConfig dcfg;
  dcfg.work.local = engine.local;
  dcfg.work.fedprox = engine.algorithm == fl::LocalAlgorithm::FedProx;
  dcfg.work.fedprox_mu = engine.fedprox_mu;
  dcfg.work.compression = engine.compression;
  dcfg.recv_timeout_ms = 60000;  // whole-round budget: bounds any hang
  dcfg.heartbeat_timeout_ms = 2000;
  dcfg.quorum_fraction = 0.5;
  dcfg.quorum_grace_ms = 50;
  fl::TransportDispatcher dispatcher(cluster.server_transports(), dcfg);
  const auto chaotic = run_scenario_mut(spec, working, &dispatcher);
  if (chaotic.history.records().size() != spec.rounds) {
    out.fail("chaos_liveness",
             "chaotic run committed " +
                 std::to_string(chaotic.history.records().size()) + " of " +
                 std::to_string(spec.rounds) + " rounds");
    return;
  }
  check_round_accounting(chaotic.history, spec,
                         chaotic.final_parameters.size(), out);
}

void check_traced_differential(const ScenarioSpec& spec,
                               const data::FederatedDataset& fed,
                               const RunArtifacts& baseline, Reporter& out) {
  obs::set_trace_enabled(true);
  obs::set_metrics_enabled(true);
  RunArtifacts traced;
  try {
    traced = run_scenario(spec, fed);
  } catch (...) {
    obs::set_trace_enabled(false);
    obs::set_metrics_enabled(false);
    obs::TraceBuffer::global().clear();
    throw;
  }
  obs::set_trace_enabled(false);
  obs::set_metrics_enabled(false);
  obs::TraceBuffer::global().clear();
  compare_histories(baseline.history, traced.history, "diff_telemetry",
                    "untraced vs traced run", out);
}

void check_kernel_differential(const ScenarioSpec& spec,
                               const data::FederatedDataset& fed,
                               Reporter& out) {
  // One round only: in round 0 every client's last_loss is still
  // initial_loss, so selection (and the seeded fault trace) cannot depend on
  // the kernel backend — structure must match exactly, parameters within fp
  // tolerance.
  ScenarioSpec one_round = spec;
  one_round.rounds = 1;
  const auto previous = ops::kernel_backend();
  RunArtifacts opt, ref;
  try {
    ops::set_kernel_backend(ops::KernelBackend::kOptimized);
    opt = run_scenario(one_round, fed);
    ops::set_kernel_backend(ops::KernelBackend::kReference);
    ref = run_scenario(one_round, fed);
    ops::set_kernel_backend(previous);
  } catch (...) {
    ops::set_kernel_backend(previous);
    throw;
  }
  const auto& ro = opt.history.records();
  const auto& rr = ref.history.records();
  if (ro.size() != 1 || rr.size() != 1) {
    out.fail("diff_kernels", "expected exactly one round");
    return;
  }
  auto ids = [](const std::vector<std::size_t>& v) {
    std::string s;
    for (std::size_t id : v) s += std::to_string(id) + " ";
    return s;
  };
  if (ro[0].selected != rr[0].selected || ro[0].crashed != rr[0].crashed ||
      ro[0].late != rr[0].late || ro[0].rejected != rr[0].rejected ||
      ro[0].dispatched != rr[0].dispatched ||
      ro[0].downlink_bytes != rr[0].downlink_bytes ||
      ro[0].uplink_bytes != rr[0].uplink_bytes) {
    out.fail("diff_kernels",
             "round-0 structure differs between kernel backends: selected [" +
                 ids(ro[0].selected) + "] vs [" + ids(rr[0].selected) + "]");
    return;
  }
  if (opt.final_parameters.size() != ref.final_parameters.size()) {
    out.fail("diff_kernels", "parameter count differs between backends");
    return;
  }
  // Per-element comparison is not a valid oracle here: a pre-activation
  // landing within fp noise of a ReLU boundary flips its gradient mask
  // between backends, legitimately moving individual weights. The guarantee
  // that survives end-to-end training is aggregate: the whole parameter
  // vector stays within a small relative L2 distance, and nothing blows up.
  double diff_sq = 0.0, norm_sq = 0.0;
  for (std::size_t p = 0; p < opt.final_parameters.size(); ++p) {
    const double a = opt.final_parameters[p];
    const double b = ref.final_parameters[p];
    if (!std::isfinite(a) || !std::isfinite(b)) {
      out.fail("diff_kernels",
               "non-finite parameter " + std::to_string(p) + ": optimized " +
                   fmt(a) + " vs reference " + fmt(b));
      return;
    }
    diff_sq += (a - b) * (a - b);
    norm_sq += std::max(a * a, b * b);
  }
  const double rel = norm_sq > 0.0 ? std::sqrt(diff_sq / norm_sq) : 0.0;
  if (rel > 5e-2) {
    out.fail("diff_kernels",
             "parameter vectors diverge between kernel backends: relative "
             "L2 distance " + fmt(rel));
  }
}

template <typename Fn>
void guarded(Reporter& out, const std::string& section, Fn&& fn) {
  try {
    fn();
  } catch (const std::exception& e) {
    out.fail("exception:" + section, e.what());
  } catch (...) {
    out.fail("exception:" + section, "non-std exception");
  }
}

}  // namespace

std::vector<Violation> check_scenario(const ScenarioSpec& spec,
                                      const OracleOptions& options) {
  Reporter out;
  guarded(out, "spec", [&] { validate_spec(spec); });
  if (!out.clean()) return out.take();

  data::FederatedDataset fed;
  guarded(out, "dataset", [&] { fed = build_dataset(spec); });
  if (!out.clean()) return out.take();

  guarded(out, "summaries", [&] {
    check_summary_mass(fed, spec, out);
    const auto haccs = build_haccs_config(spec);
    const auto summaries = core::compute_summaries(fed, haccs);
    check_distance_invariants(summaries, spec, out);
    check_distance_recompute(summaries, spec, out);
    check_dp_nonnegative(summaries, out);
    check_cluster_permutation_invariance(summaries, haccs, spec, out);
    check_scale_differential(summaries, haccs, out);
  });

  guarded(out, "selector", [&] {
    // The runtime view a real run would hand the selector (profiles and
    // latencies derived from the engine seed).
    fl::FederatedTrainer trainer(fed, build_model_factory(spec, fed),
                                 build_engine_config(spec));
    const auto view = trainer.make_client_view();
    check_selection_contract(spec, fed, view, out);
    check_selection_mass(spec, fed, view, out);
    check_dead_client(spec, fed, view, out);
    check_state_roundtrip(spec, fed, view, out);
    if (is_haccs_selector(spec.selector)) {
      check_eq7_and_srswr(spec, fed, view, options, out);
      check_failure_penalty(spec, fed, out);
    }
  });

  RunArtifacts baseline;
  bool ran = false;
  guarded(out, "engine_run", [&] {
    baseline = run_scenario(spec, fed);
    ran = true;
    const std::size_t params = baseline.final_parameters.size();
    check_round_accounting(baseline.history, spec, params, out);
  });

  if (options.differential && ran) {
    if (spec.chaos_enabled()) {
      guarded(out, "chaos_liveness",
              [&] { check_chaos_liveness(spec, fed, out); });
    } else {
      guarded(out, "diff_loopback_dispatch",
              [&] { check_loopback_differential(spec, fed, baseline, out); });
    }
    guarded(out, "diff_telemetry",
            [&] { check_traced_differential(spec, fed, baseline, out); });
    guarded(out, "diff_kernels",
            [&] { check_kernel_differential(spec, fed, out); });
  }
  return out.take();
}

bool has_oracle(const std::vector<Violation>& violations,
                const std::string& oracle) {
  for (const auto& v : violations) {
    if (v.oracle.rfind(oracle, 0) == 0) return true;
  }
  return false;
}

std::string replay_command(const ScenarioSpec& spec) {
  return "haccs_fuzz --replay \"" + to_spec_string(spec) + "\"";
}

}  // namespace haccs::testing
