#include "src/testing/scenario.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "src/common/rng.hpp"
#include "src/core/haccs_selector.hpp"
#include "src/core/haccs_system.hpp"
#include "src/core/stratified_selector.hpp"
#include "src/data/synthetic.hpp"
#include "src/select/dpp.hpp"
#include "src/select/fedlecc.hpp"
#include "src/select/hics.hpp"
#include "src/select/oort.hpp"
#include "src/select/random_selector.hpp"
#include "src/select/tifl.hpp"
#include "src/sim/dropout.hpp"

namespace haccs::testing {

namespace {

template <typename T>
T pick(Rng& rng, std::initializer_list<T> options) {
  const auto* begin = options.begin();
  return begin[rng.uniform_index(options.size())];
}

std::string format_double(double v) {
  std::ostringstream os;
  os << v;  // shortest round-trippable form for the grid values we draw
  return os.str();
}

}  // namespace

std::string to_string(PartitionKind kind) {
  switch (kind) {
    case PartitionKind::Majority: return "majority";
    case PartitionKind::Iid: return "iid";
    case PartitionKind::KLabels: return "klabels";
    case PartitionKind::Dirichlet: return "dirichlet";
    case PartitionKind::FeatureSkew: return "feature-skew";
  }
  throw std::invalid_argument("bad PartitionKind");
}

std::string to_string(SelectorKind kind) {
  switch (kind) {
    case SelectorKind::Random: return "random";
    case SelectorKind::Tifl: return "tifl";
    case SelectorKind::Oort: return "oort";
    case SelectorKind::HaccsPy: return "haccs-py";
    case SelectorKind::HaccsPxy: return "haccs-pxy";
    case SelectorKind::HaccsQxy: return "haccs-qxy";
    case SelectorKind::Stratified: return "stratified";
    case SelectorKind::Dpp: return "dpp";
    case SelectorKind::FedLecc: return "fedlecc";
    case SelectorKind::Hics: return "hics";
  }
  throw std::invalid_argument("bad SelectorKind");
}

std::string to_string(HostileKind kind) {
  switch (kind) {
    case HostileKind::None: return "none";
    case HostileKind::FlashCrowd: return "flash-crowd";
    case HostileKind::Diurnal: return "diurnal";
    case HostileKind::Outage: return "outage";
    case HostileKind::Drift: return "drift";
    case HostileKind::TargetedStragglers: return "targeted-stragglers";
  }
  throw std::invalid_argument("bad HostileKind");
}

PartitionKind parse_partition_kind(const std::string& name) {
  if (name == "majority") return PartitionKind::Majority;
  if (name == "iid") return PartitionKind::Iid;
  if (name == "klabels") return PartitionKind::KLabels;
  if (name == "dirichlet") return PartitionKind::Dirichlet;
  if (name == "feature-skew") return PartitionKind::FeatureSkew;
  throw std::invalid_argument("unknown partition kind: " + name);
}

SelectorKind parse_selector_kind(const std::string& name) {
  if (name == "random") return SelectorKind::Random;
  if (name == "tifl") return SelectorKind::Tifl;
  if (name == "oort") return SelectorKind::Oort;
  if (name == "haccs-py") return SelectorKind::HaccsPy;
  if (name == "haccs-pxy") return SelectorKind::HaccsPxy;
  if (name == "haccs-qxy") return SelectorKind::HaccsQxy;
  if (name == "stratified") return SelectorKind::Stratified;
  if (name == "dpp") return SelectorKind::Dpp;
  if (name == "fedlecc") return SelectorKind::FedLecc;
  if (name == "hics") return SelectorKind::Hics;
  throw std::invalid_argument("unknown selector kind: " + name);
}

HostileKind parse_hostile_kind(const std::string& name) {
  if (name == "none") return HostileKind::None;
  if (name == "flash-crowd") return HostileKind::FlashCrowd;
  if (name == "diurnal") return HostileKind::Diurnal;
  if (name == "outage") return HostileKind::Outage;
  if (name == "drift") return HostileKind::Drift;
  if (name == "targeted-stragglers") return HostileKind::TargetedStragglers;
  throw std::invalid_argument("unknown hostile kind: " + name);
}

bool is_haccs_selector(SelectorKind kind) {
  return kind == SelectorKind::HaccsPy || kind == SelectorKind::HaccsPxy ||
         kind == SelectorKind::HaccsQxy;
}

namespace {

std::string algorithm_name(core::ClusterAlgorithm a) {
  return a == core::ClusterAlgorithm::Optics ? "optics" : "dbscan";
}

core::ClusterAlgorithm parse_algorithm(const std::string& name) {
  if (name == "optics") return core::ClusterAlgorithm::Optics;
  if (name == "dbscan") return core::ClusterAlgorithm::Dbscan;
  throw std::invalid_argument("unknown clustering algorithm: " + name);
}

std::string extraction_name(core::Extraction e) {
  switch (e) {
    case core::Extraction::Auto: return "auto";
    case core::Extraction::Xi: return "xi";
    case core::Extraction::Dbscan: return "dbscan";
  }
  throw std::invalid_argument("bad Extraction");
}

core::Extraction parse_extraction(const std::string& name) {
  if (name == "auto") return core::Extraction::Auto;
  if (name == "xi") return core::Extraction::Xi;
  if (name == "dbscan") return core::Extraction::Dbscan;
  throw std::invalid_argument("unknown extraction: " + name);
}

std::string compression_name(fl::CompressionKind kind) {
  switch (kind) {
    case fl::CompressionKind::None: return "none";
    case fl::CompressionKind::TopK: return "topk";
    case fl::CompressionKind::Int8: return "int8";
  }
  throw std::invalid_argument("bad CompressionKind");
}

fl::CompressionKind parse_compression(const std::string& name) {
  if (name == "none") return fl::CompressionKind::None;
  if (name == "topk") return fl::CompressionKind::TopK;
  if (name == "int8") return fl::CompressionKind::Int8;
  throw std::invalid_argument("unknown compression kind: " + name);
}

std::string mechanism_name(stats::NoiseMechanism m) {
  return m == stats::NoiseMechanism::Laplace ? "laplace" : "gaussian";
}

stats::NoiseMechanism parse_mechanism(const std::string& name) {
  if (name == "laplace") return stats::NoiseMechanism::Laplace;
  if (name == "gaussian") return stats::NoiseMechanism::Gaussian;
  throw std::invalid_argument("unknown noise mechanism: " + name);
}

// Every key parse_spec_string understands, for the did-you-mean suggestion.
const char* const kSpecKeys[] = {
    "seed", "clients", "per_round", "rounds", "classes", "image",
    "min_samples", "max_samples", "test_samples", "partition", "klabels",
    "alpha", "rotation", "selector", "algorithm", "extraction", "distance",
    "rho", "epsilon", "mechanism", "compression", "topk_fraction", "crash",
    "corruption", "straggler", "overcommit", "deadline", "max_norm",
    "dropout", "fedprox", "workers", "chaos_drop", "chaos_dup",
    "chaos_reorder", "chaos_corrupt", "chaos_truncate", "chaos_disconnect",
    "hostile", "hostile_frac", "hostile_at", "hostile_span"};

std::size_t edit_distance(const std::string& a, const std::string& b) {
  // Plain Levenshtein, one rolling row; key names are short so O(|a||b|) is
  // nothing.
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t subst = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      diag = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, subst});
    }
  }
  return row[b.size()];
}

std::string unknown_key_message(const std::string& key) {
  std::string message = "unknown spec key: " + key;
  std::size_t best = std::string::npos;
  const char* best_key = nullptr;
  for (const char* candidate : kSpecKeys) {
    const std::size_t d = edit_distance(key, candidate);
    if (d < best) {
      best = d;
      best_key = candidate;
    }
  }
  // Only suggest when the typo is plausibly a typo of that key: within 3
  // edits or so — "chaos_dorp" suggests chaos_drop, "zzz" suggests nothing.
  if (best_key != nullptr && best <= std::max<std::size_t>(2, key.size() / 3)) {
    message += " (did you mean '" + std::string(best_key) + "'?)";
  }
  return message;
}

}  // namespace

ScenarioSpec generate_scenario(std::uint64_t seed) {
  // A dedicated stream, decorrelated from the engine's use of the same seed.
  Rng rng(seed ^ 0xf0220a7a5c0e3ULL);
  ScenarioSpec s;
  s.seed = seed;

  s.clients = 8 + rng.uniform_index(9);             // 8..16
  s.per_round = 2 + rng.uniform_index(3);           // 2..4
  s.rounds = 2 + rng.uniform_index(4);              // 2..5
  s.classes = pick(rng, {4ul, 6ul, 8ul});
  s.image = pick(rng, {8ul, 10ul});
  s.min_samples = 20 + rng.uniform_index(12);
  s.max_samples = s.min_samples + 8 + rng.uniform_index(24);
  s.test_samples = 6 + rng.uniform_index(6);

  s.partition = pick(rng, {PartitionKind::Majority, PartitionKind::Iid,
                           PartitionKind::KLabels, PartitionKind::Dirichlet,
                           PartitionKind::FeatureSkew});
  s.klabels = 2 + rng.uniform_index(3);
  s.alpha = pick(rng, {0.1, 0.3, 0.5, 1.0});
  s.rotation = pick(rng, {15.0, 30.0, 45.0});

  s.selector = pick(rng, {SelectorKind::Random, SelectorKind::Tifl,
                          SelectorKind::Oort, SelectorKind::HaccsPy,
                          SelectorKind::HaccsPy, SelectorKind::HaccsPxy,
                          SelectorKind::HaccsQxy, SelectorKind::Stratified,
                          SelectorKind::Dpp, SelectorKind::FedLecc,
                          SelectorKind::Hics});
  s.algorithm = pick(rng, {core::ClusterAlgorithm::Optics,
                           core::ClusterAlgorithm::Dbscan});
  s.extraction = pick(rng, {core::Extraction::Auto, core::Extraction::Auto,
                            core::Extraction::Xi, core::Extraction::Dbscan});
  s.distance = pick(rng, {stats::DistanceKind::Hellinger,
                          stats::DistanceKind::Hellinger,
                          stats::DistanceKind::TotalVariation,
                          stats::DistanceKind::JensenShannon,
                          stats::DistanceKind::Cosine});
  s.rho = pick(rng, {0.0, 0.25, 0.5, 0.75, 1.0});

  s.epsilon = pick(rng, {0.0, 0.0, 0.05, 0.1, 0.5, 2.0});
  s.mechanism = pick(rng, {stats::NoiseMechanism::Laplace,
                           stats::NoiseMechanism::Gaussian});

  s.compression = pick(rng, {fl::CompressionKind::None,
                             fl::CompressionKind::None,
                             fl::CompressionKind::TopK,
                             fl::CompressionKind::Int8});
  s.topk_fraction = pick(rng, {0.1, 0.2, 0.5});

  // Faults off for roughly half the scenarios so the clean-path invariants
  // (and exact byte accounting) stay heavily exercised too.
  if (rng.bernoulli(0.5)) {
    s.crash_rate = pick(rng, {0.0, 0.1, 0.25});
    s.corruption_rate = pick(rng, {0.0, 0.1, 0.2});
    s.straggler_rate = pick(rng, {0.0, 0.1, 0.3});
  }
  s.overcommit = pick(rng, {0.0, 0.0, 0.34, 0.5});
  s.deadline_quantile = pick(rng, {0.0, 0.0, 0.8, 0.9});
  s.max_update_norm = pick(rng, {0.0, 0.0, 50.0});
  s.dropout = pick(rng, {0.0, 0.0, 0.1, 0.3});

  s.fedprox = rng.bernoulli(0.25);
  s.workers = 1 + rng.uniform_index(3);  // 1..3

  // Transport chaos on ~1/4 of scenarios: rates stay small so runs finish
  // (every lost update costs a liveness/quorum timeout), but any non-zero
  // rate sends the scenario down the serving-mode collection path.
  if (rng.bernoulli(0.25)) {
    s.chaos_drop = pick(rng, {0.0, 0.05, 0.1});
    s.chaos_dup = pick(rng, {0.0, 0.05});
    s.chaos_reorder = pick(rng, {0.0, 0.1});
    s.chaos_corrupt = pick(rng, {0.0, 0.05});
    s.chaos_truncate = pick(rng, {0.0, 0.02});
    s.chaos_disconnect = pick(rng, {0.0, 0.0, 0.02});
  }

  // Hostile-world shapes on ~30% of scenarios: one time-structured adversity
  // per spec (TESTING.md). hostile_at = 1 always lands mid-run (rounds >= 2),
  // so the selector sees both the benign and hostile regimes in one run.
  if (rng.bernoulli(0.3)) {
    s.hostile = pick(rng, {HostileKind::FlashCrowd, HostileKind::Diurnal,
                           HostileKind::Outage, HostileKind::Drift,
                           HostileKind::TargetedStragglers});
    s.hostile_frac = pick(rng, {0.2, 0.3, 0.5});
    s.hostile_at = 1;
    s.hostile_span = 1 + rng.uniform_index(3);  // 1..3
  }

  validate_spec(s);
  return s;
}

void validate_spec(const ScenarioSpec& s) {
  auto fail = [](const std::string& what) {
    throw std::invalid_argument("bad scenario spec: " + what);
  };
  if (s.clients == 0 || s.clients > 512) fail("clients out of range");
  if (s.per_round == 0 || s.per_round > s.clients) fail("per_round > clients");
  if (s.rounds == 0 || s.rounds > 64) fail("rounds out of range");
  if (s.classes < 2 || s.classes > 62) fail("classes out of range");
  if (s.image < 6 || s.image > 32) fail("image out of range");
  if (s.min_samples == 0 || s.max_samples < s.min_samples) {
    fail("sample range");
  }
  if (s.test_samples == 0) fail("test_samples == 0");
  if (s.rho < 0.0 || s.rho > 1.0) fail("rho outside [0, 1]");
  if (s.epsilon < 0.0) fail("epsilon < 0");
  if (s.topk_fraction <= 0.0 || s.topk_fraction > 1.0) fail("topk_fraction");
  for (double rate : {s.crash_rate, s.corruption_rate, s.straggler_rate}) {
    if (rate < 0.0 || rate > 1.0) fail("fault rate outside [0, 1]");
  }
  if (s.overcommit < 0.0) fail("overcommit < 0");
  if (s.deadline_quantile < 0.0 || s.deadline_quantile > 1.0) {
    fail("deadline_quantile outside [0, 1]");
  }
  if (s.max_update_norm < 0.0) fail("max_update_norm < 0");
  if (s.dropout < 0.0 || s.dropout >= 1.0) fail("dropout outside [0, 1)");
  if (s.workers == 0 || s.workers > 8) fail("workers out of range");
  if (s.klabels == 0 || s.klabels > s.classes) fail("klabels out of range");
  if (s.alpha <= 0.0) fail("alpha <= 0");
  for (double rate : {s.chaos_drop, s.chaos_dup, s.chaos_reorder,
                      s.chaos_corrupt, s.chaos_truncate, s.chaos_disconnect}) {
    if (rate < 0.0 || rate > 1.0) fail("chaos rate outside [0, 1]");
  }
  if (s.hostile_frac < 0.0 || s.hostile_frac > 1.0) {
    fail("hostile_frac outside [0, 1]");
  }
  if (s.hostile_at > 64) fail("hostile_at out of range");
  if (s.hostile_span == 0 || s.hostile_span > 64) {
    fail("hostile_span out of range");
  }
}

std::string to_spec_string(const ScenarioSpec& s) {
  std::ostringstream os;
  os << "seed=" << s.seed << ",clients=" << s.clients
     << ",per_round=" << s.per_round << ",rounds=" << s.rounds
     << ",classes=" << s.classes << ",image=" << s.image
     << ",min_samples=" << s.min_samples << ",max_samples=" << s.max_samples
     << ",test_samples=" << s.test_samples
     << ",partition=" << to_string(s.partition) << ",klabels=" << s.klabels
     << ",alpha=" << format_double(s.alpha)
     << ",rotation=" << format_double(s.rotation)
     << ",selector=" << to_string(s.selector)
     << ",algorithm=" << algorithm_name(s.algorithm)
     << ",extraction=" << extraction_name(s.extraction)
     << ",distance=" << stats::to_string(s.distance)
     << ",rho=" << format_double(s.rho)
     << ",epsilon=" << format_double(s.epsilon)
     << ",mechanism=" << mechanism_name(s.mechanism)
     << ",compression=" << compression_name(s.compression)
     << ",topk_fraction=" << format_double(s.topk_fraction)
     << ",crash=" << format_double(s.crash_rate)
     << ",corruption=" << format_double(s.corruption_rate)
     << ",straggler=" << format_double(s.straggler_rate)
     << ",overcommit=" << format_double(s.overcommit)
     << ",deadline=" << format_double(s.deadline_quantile)
     << ",max_norm=" << format_double(s.max_update_norm)
     << ",dropout=" << format_double(s.dropout)
     << ",fedprox=" << (s.fedprox ? 1 : 0) << ",workers=" << s.workers
     << ",chaos_drop=" << format_double(s.chaos_drop)
     << ",chaos_dup=" << format_double(s.chaos_dup)
     << ",chaos_reorder=" << format_double(s.chaos_reorder)
     << ",chaos_corrupt=" << format_double(s.chaos_corrupt)
     << ",chaos_truncate=" << format_double(s.chaos_truncate)
     << ",chaos_disconnect=" << format_double(s.chaos_disconnect)
     << ",hostile=" << to_string(s.hostile)
     << ",hostile_frac=" << format_double(s.hostile_frac)
     << ",hostile_at=" << s.hostile_at
     << ",hostile_span=" << s.hostile_span;
  return os.str();
}

ScenarioSpec parse_spec_string(const std::string& text) {
  ScenarioSpec s;
  std::size_t start = 0;
  while (start < text.size()) {
    auto comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const std::string item = text.substr(start, comma - start);
    start = comma + 1;
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("spec item without '=': " + item);
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    try {
      if (key == "seed") s.seed = std::stoull(value);
      else if (key == "clients") s.clients = std::stoul(value);
      else if (key == "per_round") s.per_round = std::stoul(value);
      else if (key == "rounds") s.rounds = std::stoul(value);
      else if (key == "classes") s.classes = std::stoul(value);
      else if (key == "image") s.image = std::stoul(value);
      else if (key == "min_samples") s.min_samples = std::stoul(value);
      else if (key == "max_samples") s.max_samples = std::stoul(value);
      else if (key == "test_samples") s.test_samples = std::stoul(value);
      else if (key == "partition") s.partition = parse_partition_kind(value);
      else if (key == "klabels") s.klabels = std::stoul(value);
      else if (key == "alpha") s.alpha = std::stod(value);
      else if (key == "rotation") s.rotation = std::stod(value);
      else if (key == "selector") s.selector = parse_selector_kind(value);
      else if (key == "algorithm") s.algorithm = parse_algorithm(value);
      else if (key == "extraction") s.extraction = parse_extraction(value);
      else if (key == "distance") s.distance = stats::parse_distance_kind(value);
      else if (key == "rho") s.rho = std::stod(value);
      else if (key == "epsilon") s.epsilon = std::stod(value);
      else if (key == "mechanism") s.mechanism = parse_mechanism(value);
      else if (key == "compression") s.compression = parse_compression(value);
      else if (key == "topk_fraction") s.topk_fraction = std::stod(value);
      else if (key == "crash") s.crash_rate = std::stod(value);
      else if (key == "corruption") s.corruption_rate = std::stod(value);
      else if (key == "straggler") s.straggler_rate = std::stod(value);
      else if (key == "overcommit") s.overcommit = std::stod(value);
      else if (key == "deadline") s.deadline_quantile = std::stod(value);
      else if (key == "max_norm") s.max_update_norm = std::stod(value);
      else if (key == "dropout") s.dropout = std::stod(value);
      else if (key == "fedprox") s.fedprox = std::stoi(value) != 0;
      else if (key == "workers") s.workers = std::stoul(value);
      else if (key == "chaos_drop") s.chaos_drop = std::stod(value);
      else if (key == "chaos_dup") s.chaos_dup = std::stod(value);
      else if (key == "chaos_reorder") s.chaos_reorder = std::stod(value);
      else if (key == "chaos_corrupt") s.chaos_corrupt = std::stod(value);
      else if (key == "chaos_truncate") s.chaos_truncate = std::stod(value);
      else if (key == "chaos_disconnect") s.chaos_disconnect = std::stod(value);
      else if (key == "hostile") s.hostile = parse_hostile_kind(value);
      else if (key == "hostile_frac") s.hostile_frac = std::stod(value);
      else if (key == "hostile_at") s.hostile_at = std::stoul(value);
      else if (key == "hostile_span") s.hostile_span = std::stoul(value);
      else throw std::invalid_argument(unknown_key_message(key));
    } catch (const std::invalid_argument&) {
      throw;
    } catch (const std::exception&) {
      throw std::invalid_argument("bad value for spec key " + key + ": " +
                                  value);
    }
  }
  validate_spec(s);
  return s;
}

data::FederatedDataset build_dataset(const ScenarioSpec& spec) {
  data::SyntheticImageConfig cfg =
      data::SyntheticImageConfig::femnist_like(spec.classes);
  cfg.height = spec.image;
  cfg.width = spec.image;
  cfg.noise_stddev = 0.6;
  data::SyntheticImageGenerator gen(cfg);

  data::PartitionConfig pcfg;
  pcfg.num_clients = spec.clients;
  pcfg.min_samples = spec.min_samples;
  pcfg.max_samples = spec.max_samples;
  pcfg.test_samples = spec.test_samples;
  // Mild per-client style jitter so the P(X|y)/Q(X|y) summaries have real
  // feature heterogeneity to measure (matches the bench harness default).
  pcfg.style_brightness_stddev = 0.1;
  pcfg.style_contrast_stddev = 0.1;

  Rng rng(spec.seed ^ 0xda7a5e3dULL);
  switch (spec.partition) {
    case PartitionKind::Majority:
      return data::partition_majority_label(gen, pcfg, rng);
    case PartitionKind::Iid:
      return data::partition_iid(gen, pcfg, rng);
    case PartitionKind::KLabels:
      return data::partition_k_random_labels(gen, pcfg, spec.klabels, rng);
    case PartitionKind::Dirichlet:
      return data::partition_dirichlet(gen, pcfg, spec.alpha, rng);
    case PartitionKind::FeatureSkew:
      return data::partition_feature_skew(gen, pcfg, spec.rotation, rng);
  }
  throw std::invalid_argument("bad PartitionKind");
}

fl::EngineConfig build_engine_config(const ScenarioSpec& spec) {
  fl::EngineConfig cfg;
  cfg.rounds = spec.rounds;
  cfg.clients_per_round = spec.per_round;
  cfg.eval_every = 2;
  cfg.seed = spec.seed;
  cfg.local.sgd.learning_rate = 0.08;
  cfg.local.batch_size = 16;
  if (spec.fedprox) {
    cfg.algorithm = fl::LocalAlgorithm::FedProx;
    cfg.fedprox_mu = 0.01;
  }
  cfg.compression.kind = spec.compression;
  cfg.compression.topk_fraction = spec.topk_fraction;
  cfg.faults.crash_rate = spec.crash_rate;
  cfg.faults.corruption_rate = spec.corruption_rate;
  cfg.faults.straggler_rate = spec.straggler_rate;
  cfg.faults.seed = spec.seed + 13;
  if (spec.hostile == HostileKind::TargetedStragglers) {
    cfg.faults.targeted_fraction = spec.hostile_frac;
    cfg.faults.targeted_from = spec.hostile_at;
  }
  cfg.overcommit = spec.overcommit;
  cfg.deadline_quantile = spec.deadline_quantile;
  cfg.max_update_norm = spec.max_update_norm;
  return cfg;
}

core::HaccsConfig build_haccs_config(const ScenarioSpec& spec) {
  core::HaccsConfig cfg;
  switch (spec.selector) {
    case SelectorKind::HaccsPxy:
      cfg.summary = stats::SummaryKind::Conditional;
      break;
    case SelectorKind::HaccsQxy:
      cfg.summary = stats::SummaryKind::Quantile;
      break;
    default:
      cfg.summary = stats::SummaryKind::Response;
      break;
  }
  cfg.response_distance = spec.distance;
  cfg.algorithm = spec.algorithm;
  cfg.extraction = spec.extraction;
  cfg.rho = spec.rho;
  if (spec.epsilon > 0.0) {
    cfg.privacy = stats::PrivacyConfig{spec.epsilon};
    cfg.privacy.mechanism = spec.mechanism;
  }
  return cfg;
}

std::unique_ptr<fl::ClientSelector> build_selector(
    const ScenarioSpec& spec, const data::FederatedDataset& dataset) {
  const auto haccs = build_haccs_config(spec);
  switch (spec.selector) {
    case SelectorKind::Random:
      return std::make_unique<select::RandomSelector>();
    case SelectorKind::Tifl: {
      select::TiflConfig cfg;
      cfg.expected_rounds = spec.rounds;
      return std::make_unique<select::TiflSelector>(cfg);
    }
    case SelectorKind::Oort:
      return std::make_unique<select::OortSelector>(select::OortConfig{});
    case SelectorKind::HaccsPy:
    case SelectorKind::HaccsPxy:
    case SelectorKind::HaccsQxy:
      return std::make_unique<core::HaccsSelector>(dataset, haccs);
    case SelectorKind::Stratified:
      return std::make_unique<core::StratifiedSelector>(dataset, haccs);
    case SelectorKind::Dpp:
      return std::make_unique<select::DppSelector>(dataset,
                                                   select::DppConfig{});
    case SelectorKind::FedLecc:
      return std::make_unique<select::FedLeccSelector>(dataset,
                                                       select::FedLeccConfig{});
    case SelectorKind::Hics:
      return std::make_unique<select::HicsSelector>(dataset,
                                                    select::HicsConfig{});
  }
  throw std::invalid_argument("bad SelectorKind");
}

std::function<nn::Sequential()> build_model_factory(
    const ScenarioSpec& /*spec*/, const data::FederatedDataset& dataset) {
  return core::default_model_factory(dataset, 99);
}

net::ChaosOptions build_chaos_options(const ScenarioSpec& spec) {
  net::ChaosOptions chaos;
  chaos.seed = spec.seed ^ 0xc4a05eedULL;
  chaos.drop_rate = spec.chaos_drop;
  chaos.duplicate_rate = spec.chaos_dup;
  chaos.reorder_rate = spec.chaos_reorder;
  chaos.corrupt_rate = spec.chaos_corrupt;
  chaos.truncate_rate = spec.chaos_truncate;
  chaos.disconnect_rate = spec.chaos_disconnect;
  return chaos;
}

std::unique_ptr<sim::DropoutSchedule> build_availability(
    const ScenarioSpec& spec) {
  // The base per-epoch dropout uses seed + 101 — the derivation run_scenario
  // has always used, so benign replays stay bit-identical to older builds.
  std::unique_ptr<sim::DropoutSchedule> schedule =
      spec.dropout > 0.0
          ? sim::make_per_epoch_dropout(spec.clients, spec.dropout,
                                        spec.seed + 101)
          : sim::make_always_available(spec.clients);
  std::unique_ptr<sim::DropoutSchedule> hostile;
  switch (spec.hostile) {
    case HostileKind::FlashCrowd:
      hostile = sim::make_flash_crowd(spec.clients, spec.hostile_frac,
                                      spec.hostile_at, spec.seed + 211);
      break;
    case HostileKind::Diurnal:
      // Period = span + 1 keeps the trough strictly shorter than the period
      // for any frac < 1, so the wave never blacks out a whole cycle.
      hostile = sim::make_diurnal_wave(spec.clients, spec.hostile_frac,
                                       spec.hostile_span + 1, spec.seed + 211);
      break;
    case HostileKind::Outage:
      hostile = sim::make_regional_outage(spec.clients, /*num_regions=*/4,
                                          spec.hostile_frac, spec.hostile_at,
                                          spec.hostile_span, spec.seed + 211);
      break;
    case HostileKind::None:
    case HostileKind::Drift:
    case HostileKind::TargetedStragglers:
      break;  // not availability-shaped
  }
  if (hostile) {
    schedule = sim::make_intersection(std::move(schedule), std::move(hostile));
  }
  return schedule;
}

std::function<void(std::size_t)> build_drift_hook(const ScenarioSpec& spec,
                                                  data::FederatedDataset& fed) {
  if (spec.hostile != HostileKind::Drift) return {};
  // Rebuild the generator exactly as build_dataset configured it, so drifted
  // clients are redrawn from the same class prototypes they came from.
  data::SyntheticImageConfig cfg =
      data::SyntheticImageConfig::femnist_like(spec.classes);
  cfg.height = spec.image;
  cfg.width = spec.image;
  cfg.noise_stddev = 0.6;
  const std::size_t at = spec.hostile_at;
  const double frac = spec.hostile_frac;
  const std::uint64_t seed = spec.seed + 307;
  return [&fed, cfg, at, frac, seed](std::size_t epoch) {
    if (epoch != at) return;
    data::SyntheticImageGenerator gen(cfg);
    Rng rng(seed);
    data::apply_label_drift(fed, gen, frac, rng);
  };
}

}  // namespace haccs::testing
