#include "src/testing/shrink.hpp"

#include <functional>
#include <vector>

namespace haccs::testing {

namespace {

/// One candidate simplification. Returns true when it changed the spec
/// (an unchanged spec is skipped — no oracle run wasted).
using Pass = std::function<bool(ScenarioSpec&)>;

std::vector<Pass> simplification_passes() {
  std::vector<Pass> passes;
  auto add = [&](Pass p) { passes.push_back(std::move(p)); };

  // Ordered roughly by how much noise each knob removes from a reproducer:
  // chaos and fault machinery first, then the heavyweight subsystems, then
  // workload size, then algorithm knobs back to their defaults.
  add([](ScenarioSpec& s) {
    const bool changed = s.chaos_enabled();
    s.chaos_drop = s.chaos_dup = s.chaos_reorder = 0.0;
    s.chaos_corrupt = s.chaos_truncate = s.chaos_disconnect = 0.0;
    return changed;
  });
  add([](ScenarioSpec& s) {
    // Drop the hostile-world shape entirely, resetting its knobs to the
    // defaults so the shrunk spec round-trips through the printer cleanly.
    const bool changed = s.hostile != HostileKind::None;
    s.hostile = HostileKind::None;
    s.hostile_frac = 0.3;
    s.hostile_at = 1;
    s.hostile_span = 2;
    return changed;
  });
  add([](ScenarioSpec& s) {
    const bool changed = s.crash_rate != 0.0 || s.corruption_rate != 0.0 ||
                         s.straggler_rate != 0.0;
    s.crash_rate = s.corruption_rate = s.straggler_rate = 0.0;
    return changed;
  });
  add([](ScenarioSpec& s) {
    const bool changed = s.dropout != 0.0;
    s.dropout = 0.0;
    return changed;
  });
  add([](ScenarioSpec& s) {
    const bool changed = s.overcommit != 0.0 || s.deadline_quantile != 0.0 ||
                         s.max_update_norm != 0.0;
    s.overcommit = s.deadline_quantile = s.max_update_norm = 0.0;
    return changed;
  });
  add([](ScenarioSpec& s) {
    const bool changed = s.compression != fl::CompressionKind::None;
    s.compression = fl::CompressionKind::None;
    return changed;
  });
  add([](ScenarioSpec& s) {
    const bool changed = s.epsilon != 0.0;
    s.epsilon = 0.0;
    return changed;
  });
  add([](ScenarioSpec& s) {
    const bool changed = s.fedprox;
    s.fedprox = false;
    return changed;
  });
  add([](ScenarioSpec& s) {
    const bool changed = s.workers != 1;
    s.workers = 1;
    return changed;
  });
  add([](ScenarioSpec& s) {
    const bool changed = s.partition != PartitionKind::Majority;
    s.partition = PartitionKind::Majority;
    return changed;
  });
  add([](ScenarioSpec& s) {
    if (s.rounds <= 1) return false;
    s.rounds = (s.rounds + 1) / 2;
    return true;
  });
  add([](ScenarioSpec& s) {
    // Halve the population, keeping per_round feasible.
    if (s.clients <= 4) return false;
    s.clients = (s.clients + 1) / 2;
    if (s.per_round > s.clients) s.per_round = s.clients;
    return true;
  });
  add([](ScenarioSpec& s) {
    if (s.per_round <= 2) return false;
    s.per_round -= 1;
    return true;
  });
  add([](ScenarioSpec& s) {
    if (s.classes <= 4) return false;
    s.classes = 4;
    if (s.klabels > s.classes) s.klabels = s.classes;
    return true;
  });
  add([](ScenarioSpec& s) {
    if (s.image <= 8) return false;
    s.image = 8;
    return true;
  });
  add([](ScenarioSpec& s) {
    if (s.min_samples <= 16 && s.max_samples <= 24) return false;
    s.min_samples = 16;
    s.max_samples = 24;
    return true;
  });
  add([](ScenarioSpec& s) {
    if (s.test_samples <= 6) return false;
    s.test_samples = 6;
    return true;
  });
  add([](ScenarioSpec& s) {
    const bool changed = s.distance != stats::DistanceKind::Hellinger;
    s.distance = stats::DistanceKind::Hellinger;
    return changed;
  });
  add([](ScenarioSpec& s) {
    const bool changed = s.algorithm != core::ClusterAlgorithm::Optics ||
                         s.extraction != core::Extraction::Auto;
    s.algorithm = core::ClusterAlgorithm::Optics;
    s.extraction = core::Extraction::Auto;
    return changed;
  });
  add([](ScenarioSpec& s) {
    const bool changed = s.rho != 0.5;
    s.rho = 0.5;
    return changed;
  });
  return passes;
}

}  // namespace

ShrinkResult shrink_scenario(const ScenarioSpec& spec,
                             const std::string& oracle,
                             const OracleOptions& options) {
  ShrinkResult result;
  result.spec = spec;
  const auto passes = simplification_passes();

  bool improved = true;
  while (improved) {
    improved = false;
    for (const auto& pass : passes) {
      ScenarioSpec candidate = result.spec;
      if (!pass(candidate)) continue;
      try {
        validate_spec(candidate);
      } catch (const std::exception&) {
        continue;  // pass produced an out-of-bounds spec; skip it
      }
      ++result.attempts;
      const auto violations = check_scenario(candidate, options);
      if (has_oracle(violations, oracle)) {
        ++result.reproductions;
        result.spec = candidate;
        improved = true;
      }
    }
  }
  return result;
}

}  // namespace haccs::testing
