// Greedy scenario shrinking: reduce a failing ScenarioSpec to a minimal
// reproducer (TESTING.md "Replaying and shrinking failures").
//
// The shrinker applies ordered simplification passes (turn faults off, drop
// compression, drop DP, shrink the workload, default the clustering knobs,
// ...) and keeps a simplification only when the SAME oracle still fires on
// the simplified spec. Passes repeat to a fixpoint, so the result is
// 1-minimal with respect to the pass list: undoing any single kept
// simplification makes the spec strictly larger without being needed to
// reproduce the failure.
#pragma once

#include <cstddef>
#include <string>

#include "src/testing/oracles.hpp"
#include "src/testing/scenario.hpp"

namespace haccs::testing {

struct ShrinkResult {
  /// The minimal spec that still reproduces the original oracle failure.
  ScenarioSpec spec;
  /// Candidate specs evaluated (each is a full oracle run).
  std::size_t attempts = 0;
  /// How many candidates reproduced the failure (kept simplifications).
  std::size_t reproductions = 0;
};

/// Shrinks `spec`, preserving a failure of the oracle named `oracle`
/// (matched by prefix, like has_oracle). `spec` itself is assumed to fail;
/// if no simplification reproduces, the result is `spec` unchanged.
ShrinkResult shrink_scenario(const ScenarioSpec& spec,
                             const std::string& oracle,
                             const OracleOptions& options = {});

}  // namespace haccs::testing
