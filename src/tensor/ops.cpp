#include "src/tensor/ops.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/threadpool.hpp"
#include "src/obs/metrics.hpp"
#include "src/tensor/gemm_blocked.hpp"

namespace haccs::ops {

namespace {

// One registry lookup per process; inc() itself is a relaxed-load no-op
// while metrics are disabled, so the hot path stays untouched.
obs::Counter& gemm_calls_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("gemm_backend_calls");
  return c;
}

void check_matrix(const Tensor& t, const char* name) {
  if (t.rank() != 2) {
    throw std::invalid_argument(std::string("gemm: ") + name +
                                " must be rank-2, got " + t.shape_string());
  }
}

// Minimum per-thread row count before parallel dispatch pays off.
constexpr std::size_t kParallelRowThreshold = 64;

template <typename Kernel>
void dispatch_rows(std::size_t m, Kernel&& kernel) {
  if (m >= kParallelRowThreshold && ThreadPool::global().size() > 0) {
    parallel_for(0, m, kernel);
  } else {
    for (std::size_t i = 0; i < m; ++i) kernel(i);
  }
}

KernelBackend initial_backend() {
  const char* env = std::getenv("HACCS_KERNEL_BACKEND");
  if (env != nullptr && std::string_view(env) == "reference") {
    return KernelBackend::kReference;
  }
  return KernelBackend::kOptimized;
}

std::atomic<KernelBackend> g_backend{initial_backend()};

/// Resolved once per process: AVX2+FMA backend when the CPU supports it and
/// HACCS_PORTABLE_KERNELS is not set, else the portable blocked backend.
detail::BlockedGemmFn blocked_gemm_fn() {
  static const detail::BlockedGemmFn fn = [] {
#if defined(HACCS_HAVE_AVX2_KERNELS)
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma") &&
        std::getenv("HACCS_PORTABLE_KERNELS") == nullptr) {
      return detail::avx2::gemm_blocked;
    }
#endif
    return detail::portable::gemm_blocked;
  }();
  return fn;
}

// Below this m*n*k volume the packing overhead of the blocked kernel is not
// worth paying; small products run through plain loops instead.
constexpr std::size_t kSmallGemmVolume = 4096;

/// C(m,n) (+)= A(m,k) * B(k,n), all row-major contiguous.
void gemm_raw(std::size_t m, std::size_t n, std::size_t k, const float* a,
              const float* b, float* c, bool accumulate) {
  if (m * n * k <= kSmallGemmVolume) {
    for (std::size_t i = 0; i < m; ++i) {
      float* crow = c + i * n;
      if (!accumulate) std::fill(crow, crow + n, 0.0f);
      const float* arow = a + i * k;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float aik = arow[kk];
        const float* brow = b + kk * n;
        for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
    return;
  }
  blocked_gemm_fn()(m, n, k, a, /*a_is=*/k, /*a_ks=*/1, b, /*b_ks=*/n,
                    /*b_js=*/1, c, accumulate);
}

/// C(m,n) (+)= A(m,k) * B(n,k)^T, all row-major contiguous.
void gemm_bt_raw(std::size_t m, std::size_t n, std::size_t k, const float* a,
                 const float* b, float* c, bool accumulate) {
  if (m * n * k <= kSmallGemmVolume) {
    for (std::size_t i = 0; i < m; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        const float* brow = b + j * k;
        float acc = accumulate ? crow[j] : 0.0f;
        for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
        crow[j] = acc;
      }
    }
    return;
  }
  blocked_gemm_fn()(m, n, k, a, /*a_is=*/k, /*a_ks=*/1, b, /*b_ks=*/1,
                    /*b_js=*/k, c, accumulate);
}

/// C(m,n) (+)= A(k,m)^T * B(k,n), all row-major contiguous.
void gemm_at_raw(std::size_t m, std::size_t n, std::size_t k, const float* a,
                 const float* b, float* c, bool accumulate) {
  if (m * n * k <= kSmallGemmVolume) {
    if (!accumulate) std::fill(c, c + m * n, 0.0f);
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float* arow = a + kk * m;
      const float* brow = b + kk * n;
      for (std::size_t i = 0; i < m; ++i) {
        const float aki = arow[i];
        float* crow = c + i * n;
        for (std::size_t j = 0; j < n; ++j) crow[j] += aki * brow[j];
      }
    }
    return;
  }
  blocked_gemm_fn()(m, n, k, a, /*a_is=*/1, /*a_ks=*/m, b, /*b_ks=*/n,
                    /*b_js=*/1, c, accumulate);
}

}  // namespace

void set_kernel_backend(KernelBackend backend) {
  g_backend.store(backend, std::memory_order_relaxed);
}

KernelBackend kernel_backend() {
  return g_backend.load(std::memory_order_relaxed);
}

void gemm_reference(const Tensor& a, const Tensor& b, Tensor& c,
                    bool accumulate) {
  check_matrix(a, "A");
  check_matrix(b, "B");
  check_matrix(c, "C");
  const std::size_t m = a.extent(0), k = a.extent(1), n = b.extent(1);
  if (b.extent(0) != k || c.extent(0) != m || c.extent(1) != n) {
    throw std::invalid_argument("gemm: shape mismatch " + a.shape_string() +
                                " x " + b.shape_string() + " -> " +
                                c.shape_string());
  }
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  dispatch_rows(m, [&](std::size_t i) {
    float* crow = pc + i * n;
    if (!accumulate) std::fill(crow, crow + n, 0.0f);
    const float* arow = pa + i * k;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = arow[kk];
      const float* brow = pb + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  });
}

void gemm(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate) {
  gemm_calls_counter().inc();
  if (kernel_backend() == KernelBackend::kReference) {
    gemm_reference(a, b, c, accumulate);
    return;
  }
  check_matrix(a, "A");
  check_matrix(b, "B");
  check_matrix(c, "C");
  const std::size_t m = a.extent(0), k = a.extent(1), n = b.extent(1);
  if (b.extent(0) != k || c.extent(0) != m || c.extent(1) != n) {
    throw std::invalid_argument("gemm: shape mismatch " + a.shape_string() +
                                " x " + b.shape_string() + " -> " +
                                c.shape_string());
  }
  gemm_raw(m, n, k, a.raw(), b.raw(), c.raw(), accumulate);
}

void gemm_bt_reference(const Tensor& a, const Tensor& b, Tensor& c,
                       bool accumulate) {
  check_matrix(a, "A");
  check_matrix(b, "B");
  check_matrix(c, "C");
  const std::size_t m = a.extent(0), k = a.extent(1), n = b.extent(0);
  if (b.extent(1) != k || c.extent(0) != m || c.extent(1) != n) {
    throw std::invalid_argument("gemm_bt: shape mismatch");
  }
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  dispatch_rows(m, [&](std::size_t i) {
    const float* arow = pa + i * k;
    float* crow = pc + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      float acc = accumulate ? crow[j] : 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] = acc;
    }
  });
}

void gemm_bt(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate) {
  gemm_calls_counter().inc();
  if (kernel_backend() == KernelBackend::kReference) {
    gemm_bt_reference(a, b, c, accumulate);
    return;
  }
  check_matrix(a, "A");
  check_matrix(b, "B");
  check_matrix(c, "C");
  const std::size_t m = a.extent(0), k = a.extent(1), n = b.extent(0);
  if (b.extent(1) != k || c.extent(0) != m || c.extent(1) != n) {
    throw std::invalid_argument("gemm_bt: shape mismatch");
  }
  gemm_bt_raw(m, n, k, a.raw(), b.raw(), c.raw(), accumulate);
}

void gemm_at_reference(const Tensor& a, const Tensor& b, Tensor& c,
                       bool accumulate) {
  check_matrix(a, "A");
  check_matrix(b, "B");
  check_matrix(c, "C");
  const std::size_t k = a.extent(0), m = a.extent(1), n = b.extent(1);
  if (b.extent(0) != k || c.extent(0) != m || c.extent(1) != n) {
    throw std::invalid_argument("gemm_at: shape mismatch");
  }
  if (!accumulate) c.fill(0.0f);
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  // C[i][j] += sum_kk A[kk][i] * B[kk][j]; iterate kk outermost for
  // sequential access to both A and B rows.
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* arow = pa + kk * m;
    const float* brow = pb + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float aki = arow[i];
      float* crow = pc + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aki * brow[j];
    }
  }
}

void gemm_at(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate) {
  gemm_calls_counter().inc();
  if (kernel_backend() == KernelBackend::kReference) {
    gemm_at_reference(a, b, c, accumulate);
    return;
  }
  check_matrix(a, "A");
  check_matrix(b, "B");
  check_matrix(c, "C");
  const std::size_t k = a.extent(0), m = a.extent(1), n = b.extent(1);
  if (b.extent(0) != k || c.extent(0) != m || c.extent(1) != n) {
    throw std::invalid_argument("gemm_at: shape mismatch");
  }
  gemm_at_raw(m, n, k, a.raw(), b.raw(), c.raw(), accumulate);
}

namespace {

void check_conv_shapes(const Conv2dShape& s, const Tensor& input,
                       const Tensor& weight, const Tensor& bias) {
  HACCS_CHECK_MSG(s.kernel > 0 && s.stride > 0, "conv2d: bad kernel/stride");
  HACCS_CHECK_MSG(s.in_h + 2 * s.padding >= s.kernel &&
                      s.in_w + 2 * s.padding >= s.kernel,
                  "conv2d: kernel larger than padded input");
  if (input.rank() != 4 || input.extent(0) != s.batch ||
      input.extent(1) != s.in_channels || input.extent(2) != s.in_h ||
      input.extent(3) != s.in_w) {
    throw std::invalid_argument("conv2d: input shape mismatch " +
                                input.shape_string());
  }
  if (weight.rank() != 4 || weight.extent(0) != s.out_channels ||
      weight.extent(1) != s.in_channels || weight.extent(2) != s.kernel ||
      weight.extent(3) != s.kernel) {
    throw std::invalid_argument("conv2d: weight shape mismatch " +
                                weight.shape_string());
  }
  if (bias.rank() != 1 || bias.extent(0) != s.out_channels) {
    throw std::invalid_argument("conv2d: bias shape mismatch");
  }
}

// The GEMM path wins once the patch matrix has real volume; tiny kernels on
// tiny images are faster through the direct loops (no packing).
bool conv_gemm_pays_off(const Conv2dShape& s) {
  return s.in_channels * s.kernel * s.kernel * s.out_h() * s.out_w() >= 4096;
}

}  // namespace

void im2col(const Conv2dShape& s, const float* sample, float* columns) {
  const std::size_t oh = s.out_h(), ow = s.out_w();
  const std::size_t out_plane = oh * ow;
  const std::size_t in_plane = s.in_h * s.in_w;
  // Row (ci, ky, kx), column (y, x): the input pixel feeding that tap.
  std::size_t row = 0;
  for (std::size_t ci = 0; ci < s.in_channels; ++ci) {
    const float* in_c = sample + ci * in_plane;
    for (std::size_t ky = 0; ky < s.kernel; ++ky) {
      for (std::size_t kx = 0; kx < s.kernel; ++kx, ++row) {
        float* out_row = columns + row * out_plane;
        for (std::size_t y = 0; y < oh; ++y) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(y * s.stride + ky) -
              static_cast<std::ptrdiff_t>(s.padding);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(s.in_h)) {
            std::fill(out_row + y * ow, out_row + (y + 1) * ow, 0.0f);
            continue;
          }
          for (std::size_t x = 0; x < ow; ++x) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(x * s.stride + kx) -
                static_cast<std::ptrdiff_t>(s.padding);
            out_row[y * ow + x] =
                (ix < 0 || ix >= static_cast<std::ptrdiff_t>(s.in_w))
                    ? 0.0f
                    : in_c[iy * static_cast<std::ptrdiff_t>(s.in_w) + ix];
          }
        }
      }
    }
  }
}

void col2im(const Conv2dShape& s, const float* columns, float* sample_grad) {
  const std::size_t oh = s.out_h(), ow = s.out_w();
  const std::size_t out_plane = oh * ow;
  const std::size_t in_plane = s.in_h * s.in_w;
  std::size_t row = 0;
  for (std::size_t ci = 0; ci < s.in_channels; ++ci) {
    float* grad_c = sample_grad + ci * in_plane;
    for (std::size_t ky = 0; ky < s.kernel; ++ky) {
      for (std::size_t kx = 0; kx < s.kernel; ++kx, ++row) {
        const float* col_row = columns + row * out_plane;
        for (std::size_t y = 0; y < oh; ++y) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(y * s.stride + ky) -
              static_cast<std::ptrdiff_t>(s.padding);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(s.in_h)) continue;
          for (std::size_t x = 0; x < ow; ++x) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(x * s.stride + kx) -
                static_cast<std::ptrdiff_t>(s.padding);
            if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(s.in_w)) continue;
            grad_c[iy * static_cast<std::ptrdiff_t>(s.in_w) + ix] +=
                col_row[y * ow + x];
          }
        }
      }
    }
  }
}

void conv2d_forward_im2col(const Conv2dShape& s, const Tensor& input,
                           const Tensor& weight, const Tensor& bias,
                           Tensor& output) {
  check_conv_shapes(s, input, weight, bias);
  const std::size_t out_plane = s.out_h() * s.out_w();
  const std::size_t patch = s.in_channels * s.kernel * s.kernel;
  if (output.size() != s.batch * s.out_channels * out_plane) {
    throw std::invalid_argument("conv2d: output shape mismatch");
  }
  // Weight viewed flat as (Cout, patch), columns as (patch, out_plane):
  // output_n = W * columns + bias. Column scratch is per-thread and reused
  // across samples and calls (no per-sample allocation).
  const float* w = weight.raw();
  const float* b = bias.raw();
  const float* in = input.raw();
  float* out = output.raw();
  dispatch_rows(s.batch, [&](std::size_t n) {
    thread_local std::vector<float> cols;
    cols.resize(patch * out_plane);
    im2col(s, in + n * s.in_channels * s.in_h * s.in_w, cols.data());
    float* dst = out + n * s.out_channels * out_plane;
    gemm_raw(s.out_channels, out_plane, patch, w, cols.data(), dst,
             /*accumulate=*/false);
    for (std::size_t co = 0; co < s.out_channels; ++co) {
      float* drow = dst + co * out_plane;
      const float bias_c = b[co];
      for (std::size_t i = 0; i < out_plane; ++i) drow[i] += bias_c;
    }
  });
}

void conv2d_forward(const Conv2dShape& s, const Tensor& input,
                    const Tensor& weight, const Tensor& bias, Tensor& output) {
  if (kernel_backend() == KernelBackend::kOptimized && conv_gemm_pays_off(s)) {
    conv2d_forward_im2col(s, input, weight, bias, output);
  } else {
    conv2d_forward_direct(s, input, weight, bias, output);
  }
}

void conv2d_forward_direct(const Conv2dShape& s, const Tensor& input,
                           const Tensor& weight, const Tensor& bias,
                           Tensor& output) {
  check_conv_shapes(s, input, weight, bias);
  const std::size_t oh = s.out_h(), ow = s.out_w();
  if (output.rank() != 4 || output.extent(0) != s.batch ||
      output.extent(1) != s.out_channels || output.extent(2) != oh ||
      output.extent(3) != ow) {
    throw std::invalid_argument("conv2d: output shape mismatch");
  }
  const float* in = input.raw();
  const float* w = weight.raw();
  const float* b = bias.raw();
  float* out = output.raw();
  const std::size_t in_plane = s.in_h * s.in_w;
  const std::size_t out_plane = oh * ow;

  dispatch_rows(s.batch, [&](std::size_t n) {
    const float* in_n = in + n * s.in_channels * in_plane;
    float* out_n = out + n * s.out_channels * out_plane;
    for (std::size_t co = 0; co < s.out_channels; ++co) {
      float* out_c = out_n + co * out_plane;
      const float bias_c = b[co];
      for (std::size_t y = 0; y < oh; ++y) {
        for (std::size_t x = 0; x < ow; ++x) {
          float acc = bias_c;
          for (std::size_t ci = 0; ci < s.in_channels; ++ci) {
            const float* in_c = in_n + ci * in_plane;
            const float* w_c = w + (co * s.in_channels + ci) * s.kernel * s.kernel;
            for (std::size_t ky = 0; ky < s.kernel; ++ky) {
              // signed arithmetic for the padded coordinate
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(y * s.stride + ky) -
                  static_cast<std::ptrdiff_t>(s.padding);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(s.in_h)) continue;
              for (std::size_t kx = 0; kx < s.kernel; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(x * s.stride + kx) -
                    static_cast<std::ptrdiff_t>(s.padding);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(s.in_w)) continue;
                acc += in_c[iy * static_cast<std::ptrdiff_t>(s.in_w) + ix] *
                       w_c[ky * s.kernel + kx];
              }
            }
          }
          out_c[y * ow + x] = acc;
        }
      }
    }
  });
}

void conv2d_backward_input(const Conv2dShape& s, const Tensor& grad_output,
                           const Tensor& weight, Tensor& grad_input) {
  if (kernel_backend() == KernelBackend::kOptimized && conv_gemm_pays_off(s)) {
    conv2d_backward_input_im2col(s, grad_output, weight, grad_input);
  } else {
    conv2d_backward_input_direct(s, grad_output, weight, grad_input);
  }
}

void conv2d_backward_input_im2col(const Conv2dShape& s,
                                  const Tensor& grad_output,
                                  const Tensor& weight, Tensor& grad_input) {
  const std::size_t oh = s.out_h(), ow = s.out_w();
  HACCS_CHECK_MSG(grad_output.rank() == 4 && grad_output.extent(2) == oh &&
                      grad_output.extent(3) == ow,
                  "conv2d_backward_input: grad_output shape");
  const std::size_t out_plane = oh * ow;
  const std::size_t in_plane = s.in_h * s.in_w;
  const std::size_t patch = s.in_channels * s.kernel * s.kernel;
  grad_input.fill(0.0f);
  const float* go = grad_output.raw();
  const float* w = weight.raw();  // flat (Cout, patch)
  float* gi = grad_input.raw();
  // Per sample: dcols(patch, out_plane) = W^T * dY_n, then scatter back.
  dispatch_rows(s.batch, [&](std::size_t n) {
    thread_local std::vector<float> dcols;
    dcols.resize(patch * out_plane);
    gemm_at_raw(patch, out_plane, s.out_channels, w,
                go + n * s.out_channels * out_plane, dcols.data(),
                /*accumulate=*/false);
    col2im(s, dcols.data(), gi + n * s.in_channels * in_plane);
  });
}

void conv2d_backward_input_direct(const Conv2dShape& s,
                                  const Tensor& grad_output,
                                  const Tensor& weight, Tensor& grad_input) {
  const std::size_t oh = s.out_h(), ow = s.out_w();
  HACCS_CHECK_MSG(grad_output.rank() == 4 && grad_output.extent(2) == oh &&
                      grad_output.extent(3) == ow,
                  "conv2d_backward_input: grad_output shape");
  grad_input.fill(0.0f);
  const float* go = grad_output.raw();
  const float* w = weight.raw();
  float* gi = grad_input.raw();
  const std::size_t in_plane = s.in_h * s.in_w;
  const std::size_t out_plane = oh * ow;

  dispatch_rows(s.batch, [&](std::size_t n) {
    const float* go_n = go + n * s.out_channels * out_plane;
    float* gi_n = gi + n * s.in_channels * in_plane;
    for (std::size_t co = 0; co < s.out_channels; ++co) {
      const float* go_c = go_n + co * out_plane;
      for (std::size_t y = 0; y < oh; ++y) {
        for (std::size_t x = 0; x < ow; ++x) {
          const float g = go_c[y * ow + x];
          for (std::size_t ci = 0; ci < s.in_channels; ++ci) {
            float* gi_c = gi_n + ci * in_plane;
            const float* w_c =
                w + (co * s.in_channels + ci) * s.kernel * s.kernel;
            for (std::size_t ky = 0; ky < s.kernel; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(y * s.stride + ky) -
                  static_cast<std::ptrdiff_t>(s.padding);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(s.in_h)) continue;
              for (std::size_t kx = 0; kx < s.kernel; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(x * s.stride + kx) -
                    static_cast<std::ptrdiff_t>(s.padding);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(s.in_w)) continue;
                gi_c[iy * static_cast<std::ptrdiff_t>(s.in_w) + ix] +=
                    g * w_c[ky * s.kernel + kx];
              }
            }
          }
        }
      }
    }
  });
}

void conv2d_backward_params(const Conv2dShape& s, const Tensor& input,
                            const Tensor& grad_output, Tensor& grad_weight,
                            Tensor& grad_bias) {
  if (kernel_backend() == KernelBackend::kOptimized && conv_gemm_pays_off(s)) {
    conv2d_backward_params_im2col(s, input, grad_output, grad_weight,
                                  grad_bias);
  } else {
    conv2d_backward_params_direct(s, input, grad_output, grad_weight,
                                  grad_bias);
  }
}

void conv2d_backward_params_im2col(const Conv2dShape& s, const Tensor& input,
                                   const Tensor& grad_output,
                                   Tensor& grad_weight, Tensor& grad_bias) {
  const std::size_t oh = s.out_h(), ow = s.out_w();
  const std::size_t out_plane = oh * ow;
  const std::size_t in_plane = s.in_h * s.in_w;
  const std::size_t patch = s.in_channels * s.kernel * s.kernel;
  const float* in = input.raw();
  const float* go = grad_output.raw();
  float* gw = grad_weight.raw();  // flat (Cout, patch)
  float* gb = grad_bias.raw();
  // Serial over batch: the gradient accumulators are shared across samples
  // and the per-element accumulation order must not depend on thread count.
  // The per-sample GEMM itself may still parallelize over row panels.
  thread_local std::vector<float> cols;
  cols.resize(patch * out_plane);
  for (std::size_t n = 0; n < s.batch; ++n) {
    im2col(s, in + n * s.in_channels * in_plane, cols.data());
    const float* go_n = go + n * s.out_channels * out_plane;
    // dW(Cout, patch) += dY_n(Cout, out_plane) * cols^T(out_plane, patch).
    gemm_bt_raw(s.out_channels, patch, out_plane, go_n, cols.data(), gw,
                /*accumulate=*/true);
    for (std::size_t co = 0; co < s.out_channels; ++co) {
      const float* go_c = go_n + co * out_plane;
      float acc = 0.0f;
      for (std::size_t i = 0; i < out_plane; ++i) acc += go_c[i];
      gb[co] += acc;
    }
  }
}

void conv2d_backward_params_direct(const Conv2dShape& s, const Tensor& input,
                                   const Tensor& grad_output,
                                   Tensor& grad_weight, Tensor& grad_bias) {
  const std::size_t oh = s.out_h(), ow = s.out_w();
  const float* in = input.raw();
  const float* go = grad_output.raw();
  float* gw = grad_weight.raw();
  float* gb = grad_bias.raw();
  const std::size_t in_plane = s.in_h * s.in_w;
  const std::size_t out_plane = oh * ow;

  // Serial over batch: grad accumulators are shared across samples.
  for (std::size_t n = 0; n < s.batch; ++n) {
    const float* in_n = in + n * s.in_channels * in_plane;
    const float* go_n = go + n * s.out_channels * out_plane;
    for (std::size_t co = 0; co < s.out_channels; ++co) {
      const float* go_c = go_n + co * out_plane;
      for (std::size_t y = 0; y < oh; ++y) {
        for (std::size_t x = 0; x < ow; ++x) {
          const float g = go_c[y * ow + x];
          gb[co] += g;
          for (std::size_t ci = 0; ci < s.in_channels; ++ci) {
            const float* in_c = in_n + ci * in_plane;
            float* gw_c = gw + (co * s.in_channels + ci) * s.kernel * s.kernel;
            for (std::size_t ky = 0; ky < s.kernel; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(y * s.stride + ky) -
                  static_cast<std::ptrdiff_t>(s.padding);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(s.in_h)) continue;
              for (std::size_t kx = 0; kx < s.kernel; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(x * s.stride + kx) -
                    static_cast<std::ptrdiff_t>(s.padding);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(s.in_w)) continue;
                gw_c[ky * s.kernel + kx] +=
                    g * in_c[iy * static_cast<std::ptrdiff_t>(s.in_w) + ix];
              }
            }
          }
        }
      }
    }
  }
}

namespace {

template <bool RecordArgmax>
void maxpool_forward_impl(const Pool2dShape& s, const Tensor& input,
                          Tensor& output, std::vector<std::size_t>* argmax) {
  HACCS_CHECK_MSG(s.window > 0 && s.in_h >= s.window && s.in_w >= s.window,
                  "maxpool: bad window");
  const std::size_t oh = s.out_h(), ow = s.out_w();
  if (output.size() != s.batch * s.channels * oh * ow) {
    throw std::invalid_argument("maxpool: output shape mismatch");
  }
  if constexpr (RecordArgmax) argmax->resize(output.size());
  const float* in = input.raw();
  float* out = output.raw();
  const std::size_t in_plane = s.in_h * s.in_w;
  const std::size_t out_plane = oh * ow;

  for (std::size_t n = 0; n < s.batch; ++n) {
    for (std::size_t c = 0; c < s.channels; ++c) {
      const std::size_t in_base = (n * s.channels + c) * in_plane;
      const std::size_t out_base = (n * s.channels + c) * out_plane;
      for (std::size_t y = 0; y < oh; ++y) {
        for (std::size_t x = 0; x < ow; ++x) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t wy = 0; wy < s.window; ++wy) {
            for (std::size_t wx = 0; wx < s.window; ++wx) {
              const std::size_t idx = in_base +
                                      (y * s.window + wy) * s.in_w +
                                      (x * s.window + wx);
              if (in[idx] > best) {
                best = in[idx];
                best_idx = idx;
              }
            }
          }
          out[out_base + y * ow + x] = best;
          if constexpr (RecordArgmax) {
            (*argmax)[out_base + y * ow + x] = best_idx;
          }
        }
      }
    }
  }
}

}  // namespace

void maxpool_forward(const Pool2dShape& s, const Tensor& input, Tensor& output,
                     std::vector<std::size_t>& argmax) {
  maxpool_forward_impl<true>(s, input, output, &argmax);
}

void maxpool_forward_infer(const Pool2dShape& s, const Tensor& input,
                           Tensor& output) {
  maxpool_forward_impl<false>(s, input, output, nullptr);
}

void maxpool_backward(const Pool2dShape& s, const Tensor& grad_output,
                      const std::vector<std::size_t>& argmax,
                      Tensor& grad_input) {
  if (grad_output.size() != argmax.size()) {
    throw std::invalid_argument("maxpool_backward: argmax size mismatch");
  }
  (void)s;
  grad_input.fill(0.0f);
  const float* go = grad_output.raw();
  float* gi = grad_input.raw();
  for (std::size_t i = 0; i < argmax.size(); ++i) gi[argmax[i]] += go[i];
}

}  // namespace haccs::ops
